(* damd — run one instance of the faithful interdomain-routing protocol.

   Pick a topology, optionally seat deviants, and watch the construction
   phases certify (or not), the execution clear, and the per-node
   accounting settle.

     dune exec bin/damd_cli.exe -- --topology fig1
     dune exec bin/damd_cli.exe -- --topology er:12:0.3 --seed 7 \
         --deviant 3:miscompute-routing:-2 --deviant 5:underreport:0.5
     dune exec bin/damd_cli.exe -- --topology ring:8 --no-checking \
         --deviant 1:underreport:0
     dune exec bin/damd_cli.exe -- --topology chordal:16:4 --loss 0.05 *)

module Rng = Damd_util.Rng
module Table = Damd_util.Table
module Graph = Damd_graph.Graph
module Gen = Damd_graph.Gen
module Traffic = Damd_fpss.Traffic
module Tables = Damd_fpss.Tables
module Adversary = Damd_faithful.Adversary
module Bank = Damd_faithful.Bank
module Runner = Damd_faithful.Runner
module Scale = Damd_faithful.Scale
module Sparse = Damd_fpss.Sparse
module Biconnect = Damd_graph.Biconnect
module Obs = Damd_obs.Obs
module Export = Damd_obs.Export
module Clock = Damd_obs.Clock
module Json = Damd_util.Json

(* Every --trace-out writes the pair: the canonical damd-trace/1 document
   at PATH and the Chrome trace_event twin next to it. *)
let chrome_path path =
  if Filename.check_suffix path ".json" then
    Filename.chop_suffix path ".json" ^ ".chrome.json"
  else path ^ ".chrome.json"

let write_trace ?meta ~path obs =
  Export.write ?meta ~path obs;
  let cp = chrome_path path in
  Export.write_chrome ?meta ~path:cp obs;
  Printf.printf "trace written to %s (damd-trace/1) and %s (chrome://tracing)\n"
    path cp

(* [as:N:M] also carries commercial edge annotations; commands that only
   need the graph take [parse_topology], the topo inspector keeps them. *)
let parse_topology_full spec seed =
  let rng = Rng.create seed in
  let fail () =
    raise
      (Invalid_argument
         (Printf.sprintf
            "unknown topology %S (expected fig1 | ring:N | torus:R:C | \
             chordal:N:CHORDS | er:N:P | ba:N:M | as:N:M | waxman:N)"
            spec))
  in
  match String.split_on_char ':' spec with
  | [ "fig1" ] -> (fst (Gen.figure1 ()), None)
  | [ "torus"; rows; cols ] ->
      let rows = int_of_string rows and cols = int_of_string cols in
      ( Gen.torus ~rows ~cols
          ~costs:(Gen.draw_costs rng (Gen.Uniform_int (1, 10)) (rows * cols)),
        None )
  | [ "ring"; n ] ->
      let n = int_of_string n in
      (Gen.ring ~n ~costs:(Gen.draw_costs rng (Gen.Uniform_int (1, 10)) n), None)
  | [ "chordal"; n; chords ] ->
      ( Gen.chordal_ring rng ~n:(int_of_string n) ~chords:(int_of_string chords)
          (Gen.Uniform_int (1, 10)),
        None )
  | [ "er"; n; p ] ->
      ( Gen.erdos_renyi rng ~n:(int_of_string n) ~p:(float_of_string p)
          (Gen.Uniform_int (1, 10)),
        None )
  | [ "ba"; n; m ] ->
      ( Gen.barabasi_albert rng ~n:(int_of_string n) ~m:(int_of_string m)
          (Gen.Uniform_int (1, 10)),
        None )
  | [ "as"; n; m ] ->
      let g, annotations =
        Gen.as_like rng ~n:(int_of_string n) ~m:(int_of_string m)
          (Gen.Uniform_int (1, 10))
      in
      (g, Some annotations)
  | [ "waxman"; n ] ->
      ( Gen.waxman rng ~n:(int_of_string n) ~alpha:0.7 ~beta:0.4
          (Gen.Uniform_int (1, 10)),
        None )
  | _ -> fail ()

let parse_topology spec seed = fst (parse_topology_full spec seed)

let parse_deviation spec =
  let fail () =
    raise
      (Invalid_argument
         (Printf.sprintf
            "bad --deviant %S (expected NODE:KIND[:PARAM] with KIND one of \
             misreport | inconsistent | corrupt-cost | drop-routing | drop-pricing | \
             corrupt-routing | corrupt-pricing | spoof-routing | spoof-pricing | \
             miscompute-routing | miscompute-pricing | underreport | misroute | \
             silent | lying-checker | collude)"
            spec))
  in
  match String.split_on_char ':' spec with
  | node :: kind :: rest -> (
      let node = int_of_string node in
      let param default = match rest with [ p ] -> float_of_string p | _ -> default in
      let iparam () = match rest with [ p ] -> int_of_string p | _ -> fail () in
      let deviation =
        match kind with
        | "misreport" -> Adversary.Misreport_cost (param 5.)
        | "inconsistent" -> Adversary.Inconsistent_cost (1., param 8.)
        | "corrupt-cost" -> Adversary.Corrupt_cost_forward (param 3.)
        | "drop-routing" -> Adversary.Drop_routing_copies
        | "drop-pricing" -> Adversary.Drop_pricing_copies
        | "corrupt-routing" -> Adversary.Corrupt_routing_copies (param 2.)
        | "corrupt-pricing" -> Adversary.Corrupt_pricing_copies (param 2.)
        | "spoof-routing" -> Adversary.Spoof_routing_update (param 3.)
        | "spoof-pricing" -> Adversary.Spoof_pricing_update (param 3.)
        | "miscompute-routing" -> Adversary.Miscompute_routing (param 2.)
        | "miscompute-pricing" -> Adversary.Miscompute_pricing (param 2.)
        | "underreport" -> Adversary.Underreport_payments (param 0.5)
        | "misroute" -> Adversary.Misroute_packets
        | "silent" -> Adversary.Silent_in_construction
        | "lying-checker" -> Adversary.Lying_checker
        | "collude" -> Adversary.Collude_with (iparam ())
        | _ -> fail ()
      in
      (node, deviation))
  | _ -> fail ()

let run_routing topology seed deviants no_checking no_copies deferred latency loss
    hotspots rate verbose =
  let g = parse_topology topology seed in
  let n = Graph.n g in
  let traffic =
    if hotspots > 0 then Traffic.hotspot (Rng.create (seed + 1)) ~n ~hotspots ~rate
    else Traffic.uniform ~n ~rate
  in
  let deviations = Array.make n Adversary.Faithful in
  List.iter
    (fun spec ->
      let who, d = parse_deviation spec in
      if who < 0 || who >= n then
        raise (Invalid_argument (Printf.sprintf "deviant node %d out of range" who));
      deviations.(who) <- d)
    deviants;
  let params =
    {
      Runner.default_params with
      Runner.checking = not no_checking;
      copies = not no_copies;
      deferred_certification = deferred;
      latency_seed = latency;
      channel_loss = (match loss with Some p -> Some (p, seed + 2) | None -> None);
    }
  in
  Printf.printf "topology %s: %d nodes, %d edges, biconnected=%b, diameter=%d\n"
    topology n (Graph.num_edges g)
    (Damd_graph.Biconnect.is_biconnected g)
    (Graph.hop_diameter g);
  Array.iteri
    (fun i d ->
      if d <> Adversary.Faithful then
        Printf.printf "deviant: node %d runs %s\n" i (Adversary.name d))
    deviations;
  print_newline ();
  let r = Runner.run ~params ~graph:g ~traffic ~deviations () in
  Printf.printf "construction: %s after %d restart(s); %d messages, %.1f KB%s\n"
    (if r.Runner.completed then "CERTIFIED" else "STUCK")
    r.Runner.restarts r.Runner.construction_messages
    (float_of_int r.Runner.construction_bytes /. 1024.)
    (match r.Runner.stuck_phase with Some p -> " (in " ^ p ^ ")" | None -> "");
  if r.Runner.completed then
    Printf.printf "execution: %d packet messages; bank channel %.1f KB\n"
      r.Runner.execution_messages
      (float_of_int r.Runner.bank_bytes /. 1024.);
  if r.Runner.detections <> [] then begin
    Printf.printf "\ndetections:\n";
    List.iter
      (fun d -> Format.printf "  %a@." Bank.pp_detection d)
      r.Runner.detections
  end;
  print_newline ();
  let t = Table.create [ "node"; "deviation"; "utility" ] in
  Array.iteri
    (fun i u ->
      Table.add_row t
        [ string_of_int i; Adversary.name deviations.(i); Table.cell_float u ])
    r.Runner.utilities;
  Table.print t;
  (match r.Runner.tables with
  | Some tables when verbose ->
      print_newline ();
      print_endline "certified lowest-cost paths (src -> dst: path [payments]):";
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then
            match Tables.path tables ~src ~dst with
            | Some path ->
                let payments =
                  Tables.packet_payments tables ~src ~dst
                  |> List.map (fun (k, p) -> Printf.sprintf "%d:%g" k p)
                  |> String.concat " "
                in
                Printf.printf "  %d -> %d: %s [%s]\n" src dst
                  (String.concat "-" (List.map string_of_int path))
                  payments
            | None -> ()
        done
      done
  | Some _ | None -> ());
  if not r.Runner.completed then exit 1

(* --- topology generation / inspection --- *)

let spread_dests n k =
  let k = max 1 (min k n) in
  Array.init k (fun i -> i * n / k)

let run_topo topology seed converge dests_k dot_path =
  let t0 = Clock.now_ns () in
  let g, annotations = parse_topology_full topology seed in
  let gen_s = Clock.s_since t0 in
  let n = Graph.n g in
  let e = Graph.num_edges g in
  let dmin = ref max_int and dmax = ref 0 in
  for i = 0 to n - 1 do
    let d = Graph.degree g i in
    if d < !dmin then dmin := d;
    if d > !dmax then dmax := d
  done;
  let dmean = 2. *. float_of_int e /. float_of_int (max 1 n) in
  Printf.printf "topology %s (seed %d): n=%d edges=%d generated in %.3fs\n"
    topology seed n e gen_s;
  Printf.printf "degree: min=%d mean=%.2f max=%d\n" !dmin dmean !dmax;
  let hubs = Array.init n (fun i -> (Graph.degree g i, i)) in
  Array.sort (fun (da, a) (db, b) -> compare (db, a) (da, b)) hubs;
  Printf.printf "top hubs:";
  for r = 0 to min 4 (n - 1) do
    let d, i = hubs.(r) in
    Printf.printf " %d(deg %d)" i d
  done;
  print_newline ();
  Printf.printf "connected=%b biconnected=%b\n" (Graph.is_connected g)
    (Biconnect.is_biconnected g);
  (match annotations with
  | None -> ()
  | Some ann ->
      let peers =
        List.length (List.filter (fun (_, _, r) -> r = Gen.Peer) ann)
      in
      Printf.printf
        "commercial relations: %d peer (tier-1 core), %d customer-provider\n"
        peers
        (List.length ann - peers));
  (match dot_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Graph.to_dot g);
      close_out oc;
      Printf.printf "dot written to %s\n" path);
  if converge then begin
    let dests = spread_dests n dests_k in
    let t1 = Clock.now_ns () in
    let report, sp = Scale.run ~dests g in
    let run_s = Clock.s_since t1 in
    Printf.printf "faithful run (k=%d dests): %s in %.3fs\n" report.Scale.k
      (if report.Scale.completed then "completed" else "HALTED AT CHECKPOINT")
      run_s;
    Printf.printf "rounds: flood=%d routing=%d pricing=%d\n"
      report.Scale.rounds_flood report.Scale.rounds_routing
      report.Scale.rounds_pricing;
    Printf.printf "messages: construction=%d checkpoint=%d\n"
      report.Scale.construction_messages report.Scale.checkpoint_messages;
    Printf.printf "sparse state: %d words\n" (Sparse.state_words sp);
    Printf.printf "delivered=%d payments=%.2f true-cost=%.2f\n"
      report.Scale.delivered report.Scale.total_payments
      report.Scale.total_true_cost;
    List.iter
      (fun (d : Scale.detection) ->
        Printf.printf "detected node %d in %s (residual %g)\n" d.Scale.culprit
          (match d.Scale.phase with `Routing -> "routing" | `Pricing -> "pricing")
          d.Scale.residual)
      report.Scale.detections;
    if not report.Scale.completed then exit 1
  end

open Cmdliner

let topology =
  Arg.(
    value
    & opt string "fig1"
    & info [ "t"; "topology"; "graph" ] ~docv:"SPEC"
        ~doc:
          "Topology: fig1 | ring:N | torus:R:C | chordal:N:C | er:N:P | \
           ba:N:M | as:N:M | waxman:N.")

let seed =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let deviants =
  Arg.(
    value & opt_all string []
    & info [ "d"; "deviant" ] ~docv:"NODE:KIND[:PARAM]"
        ~doc:"Seat a deviant (repeatable), e.g. 3:miscompute-routing:-2.")

let no_checking =
  Arg.(value & flag & info [ "no-checking" ] ~doc:"Disable checkers and the bank.")

let no_copies =
  Arg.(value & flag & info [ "no-copies" ] ~doc:"Plain FPSS: no checker copies.")

let deferred =
  Arg.(
    value & flag
    & info [ "deferred-certification" ]
        ~doc:"Certify only once, at the end of construction (E8 ablation).")

let latency =
  Arg.(
    value
    & opt (some int) None
    & info [ "latency-seed" ] ~docv:"SEED" ~doc:"Heterogeneous per-link latencies.")

let loss =
  Arg.(
    value
    & opt (some float) None
    & info [ "loss" ] ~docv:"P" ~doc:"Drop construction messages with probability P.")

let hotspots =
  Arg.(
    value & opt int 0
    & info [ "hotspots" ] ~docv:"K" ~doc:"Hotspot traffic toward K destinations.")

let rate =
  Arg.(value & opt float 1. & info [ "rate" ] ~docv:"R" ~doc:"Traffic rate per pair.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the certified tables.")

(* --- the election protocol --- *)

let parse_election_deviation spec =
  let fail () =
    raise
      (Invalid_argument
         (Printf.sprintf
            "bad --deviant %S (expected NODE:KIND[:PARAM] with KIND one of \
             underbid | overbid | misreport-cost | inconsistent | corrupt-forward | \
             miscompute-winner | refuse)"
            spec))
  in
  let module Election = Damd_faithful.Election in
  match String.split_on_char ':' spec with
  | node :: kind :: rest -> (
      let node = int_of_string node in
      let param default = match rest with [ p ] -> float_of_string p | _ -> default in
      let deviation =
        match kind with
        | "underbid" -> Election.Underbid_power
        | "overbid" -> Election.Overbid_power (param 3.)
        | "misreport-cost" -> Election.Misreport_cost (param 0.)
        | "inconsistent" -> Election.Inconsistent_bid (param 3.)
        | "corrupt-forward" -> Election.Corrupt_bid_forward (param 2.)
        | "miscompute-winner" -> Election.Miscompute_winner
        | "refuse" -> Election.Refuse_to_serve
        | _ -> fail ()
      in
      (node, deviation))
  | _ -> fail ()

let run_election topology seed deviants no_checking benefit =
  let module Election = Damd_faithful.Election in
  let module Leader = Damd_mech.Leader_election in
  let g = parse_topology topology seed in
  let n = Graph.n g in
  let profile = Leader.sample_profile ~n (Rng.create (seed + 10)) in
  let deviations = Array.make n Election.Honest in
  List.iter
    (fun spec ->
      let who, d = parse_election_deviation spec in
      if who < 0 || who >= n then
        raise (Invalid_argument (Printf.sprintf "deviant node %d out of range" who));
      deviations.(who) <- d)
    deviants;
  let params =
    { Election.default_params with Election.checking = not no_checking; benefit }
  in
  Printf.printf "topology %s: %d nodes; benefit=%g\n" topology n benefit;
  Array.iteri
    (fun i d ->
      if d <> Election.Honest then
        Printf.printf "deviant: node %d runs %s\n" i (Election.deviation_name d))
    deviations;
  let r = Election.run ~params ~graph:g ~profile ~deviations () in
  Printf.printf "\nelection: %s after %d restart(s); %d messages\n"
    (if r.Election.completed then "CERTIFIED" else "STUCK")
    r.Election.restarts r.Election.messages;
  (match r.Election.leader with
  | Some l ->
      Printf.printf "leader: node %d (power %.2f, cost %.2f)\n" l
        profile.(l).Leader.power profile.(l).Leader.cost
  | None -> print_endline "no leader elected");
  List.iter (fun d -> Printf.printf "detection: %s\n" d) r.Election.detections;
  print_newline ();
  let t = Table.create [ "node"; "power"; "cost"; "deviation"; "utility" ] in
  Array.iteri
    (fun i u ->
      Table.add_row t
        [
          string_of_int i;
          Table.cell_float profile.(i).Leader.power;
          Table.cell_float profile.(i).Leader.cost;
          Election.deviation_name deviations.(i);
          Table.cell_float u;
        ])
    r.Election.utilities;
  Table.print t;
  if not r.Election.completed then exit 1

let benefit_arg =
  Arg.(value & opt float 2. & info [ "benefit" ] ~docv:"B" ~doc:"Per-unit-power benefit.")

(* --- the specification linter --- *)

let run_lint topology seed mutate json_path list_mutations =
  let module Speccheck = Damd_speccheck in
  let module Check = Speccheck.Check in
  let module Lint = Speccheck.Lint in
  if list_mutations then
    List.iter
      (fun name ->
        Printf.printf "%-28s lint:%-22s verify:%-22s analyze:%s\n" name
          (Option.value ~default:"-" (Speccheck.Mutate.expected name))
          (Option.value ~default:"-" (Speccheck.Mutate.expected_verify name))
          (Option.value ~default:"-" (Speccheck.Mutate.expected_analyze name)))
      Speccheck.Mutate.names
  else begin
    let g = parse_topology topology seed in
    (match mutate with
    | Some m when not (Speccheck.Mutate.known m) ->
        raise
          (Invalid_argument
             (Printf.sprintf
                "unknown mutation %S (see `damd lint --list-mutations`)" m))
    | _ -> ());
    let report =
      Lint.run ~adversary:Adversary.all_labels ?mutation:mutate ~graph:g
        ~topology Damd_speccheck.Fpss_spec.ir
    in
    Printf.printf "lint: spec %s, topology %s%s\n" report.Lint.spec topology
      (match mutate with Some m -> ", mutation " ^ m | None -> "");
    if report.Lint.findings = [] then print_endline "no findings"
    else begin
      let t = Table.create [ "id"; "severity"; "location"; "explanation" ] in
      List.iter
        (fun (f : Check.finding) ->
          Table.add_row t
            [
              f.Check.id;
              Check.severity_to_string f.Check.severity;
              f.Check.location;
              f.Check.message;
            ])
        report.Lint.findings;
      Table.print t
    end;
    Printf.printf "%d error(s)\n" (Lint.error_count report);
    (match json_path with
    | None -> ()
    | Some path ->
        Damd_util.Json.to_file path (Lint.to_json report);
        Printf.printf "report written to %s (schema damd-lint/1)\n" path);
    exit (Lint.exit_code report)
  end

let mutate_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mutate" ] ~docv:"RULE"
        ~doc:
          "Lint a seeded mutation of the stock spec instead (e.g. \
           drop-checkpoint); must produce its expected error finding and \
           exit 1. See --list-mutations.")

let lint_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the damd-lint/1 report here.")

let list_mutations_arg =
  Arg.(
    value & flag
    & info [ "list-mutations" ]
        ~doc:
          "List the seeded mutations with both expected finding ids: the \
           static lint finding and the flow/exploration finding `damd \
           verify' must additionally produce.")

(* --- the flow verifier --- *)

let run_verify topology seed mutate json_path bound por_s domains key_audit
    trace_out =
  let module Speccheck = Damd_speccheck in
  let module Check = Speccheck.Check in
  let module Explore = Speccheck.Explore in
  let module Verify = Speccheck.Verify in
  let g = parse_topology topology seed in
  (match mutate with
  | Some m when not (Speccheck.Mutate.known m) ->
      raise
        (Invalid_argument
           (Printf.sprintf
              "unknown mutation %S (see `damd lint --list-mutations`)" m))
  | _ -> ());
  let por =
    match por_s with
    | "on" -> true
    | "off" -> false
    | s ->
        raise
          (Invalid_argument
             (Printf.sprintf "bad --por %S (expected on | off)" s))
  in
  let obs =
    match trace_out with None -> Obs.noop | Some _ -> Obs.memory ()
  in
  let observed = Damd_faithful.Flow.observations () in
  let report =
    Verify.run ~adversary:Adversary.all_labels ?mutation:mutate ~bound ~obs
      ~por ~domains ~audit:key_audit ~observed ~graph:g ~topology
      Damd_speccheck.Fpss_spec.ir
  in
  (match trace_out with
  | None -> ()
  | Some path ->
      write_trace
        ~meta:
          [
            ("command", Json.String "verify");
            ("topology", Json.String topology);
            ("seed", Json.Int seed);
            ("bound", Json.Int bound);
            ("por", Json.Bool por);
          ]
        ~path obs);
  Printf.printf "verify: spec %s, topology %s%s\n" report.Verify.spec topology
    (match mutate with Some m -> ", mutation " ^ m | None -> "");
  let st = report.Verify.stats in
  Printf.printf
    "explored %d canonical states over %d scenarios (frontier peak %d%s)\n"
    st.Explore.states_explored st.Explore.scenarios st.Explore.frontier_peak
    (if st.Explore.truncated then ", TRUNCATED" else "");
  Printf.printf "por=%s domains=%d, %.0f states/sec\n"
    (if st.Explore.por then "on" else "off")
    st.Explore.domains
    (if st.Explore.elapsed_s > 0. then
       float_of_int st.Explore.states_explored /. st.Explore.elapsed_s
     else 0.);
  Printf.printf "detection-complete: %b\nno-false-accusation: %b\n"
    (Verify.detection_complete report)
    (Verify.no_false_accusation report);
  print_newline ();
  let vt = Table.create [ "deviation"; "verdict"; "detail" ] in
  List.iter
    (fun (dev, v) ->
      let verdict, detail =
        match v with
        | Explore.Detected { depth; certifier } ->
            ( "detected",
              Printf.sprintf "depth %d, %s" depth
                (Option.value ~default:"progress timeout" certifier) )
        | Explore.Undetected { witness } -> ("UNDETECTED", witness)
        | Explore.Exempt { reason } -> ("exempt", reason)
        | Explore.Truncated -> ("truncated", "state bound exhausted")
      in
      Table.add_row vt [ Speccheck.Dev.to_string dev; verdict; detail ])
    report.Verify.verdicts;
  Table.print vt;
  if report.Verify.findings = [] then print_endline "no findings"
  else begin
    let t = Table.create [ "id"; "severity"; "location"; "explanation" ] in
    List.iter
      (fun (f : Check.finding) ->
        Table.add_row t
          [
            f.Check.id;
            Check.severity_to_string f.Check.severity;
            f.Check.location;
            f.Check.message;
          ])
      report.Verify.findings;
    Table.print t
  end;
  Printf.printf "%d error(s)\n" (Verify.error_count report);
  (match json_path with
  | None -> ()
  | Some path ->
      Damd_util.Json.to_file path (Verify.to_json report);
      Printf.printf "report written to %s (schema damd-verify/1)\n" path);
  exit (Verify.exit_code report)

let bound_arg =
  Arg.(
    value & opt int 50_000
    & info [ "bound" ] ~docv:"N"
        ~doc:"Per-scenario canonical-state cap for the exploration layer.")

let verify_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the damd-verify/1 report here.")

let por_arg =
  Arg.(
    value & opt string "on"
    & info [ "por" ] ~docv:"on|off"
        ~doc:
          "Partial-order reduction for the exploration layer: prune \
           redundant interleavings of phase-internal faithful steps. Exact \
           (verdicts and findings match the unreduced sweep); self-disables \
           when the in-phase suggested play is cyclic.")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"K"
        ~doc:
          "Scenario fan-out width (0 = auto, 1 = sequential). Requires an \
           OCaml 5 build; --trace-out forces sequential.")

let key_audit_arg =
  Arg.(
    value & flag
    & info [ "key-audit" ]
        ~doc:
          "Cross-check every packed dedup key against the structural \
           canonical key and abort on a collision (codec regression \
           tripwire; roughly doubles exploration memory).")

(* --- the static analyzer --- *)

let run_analyze topology seed mutate json_path bound differential
    explore_bound trace_out =
  let module Speccheck = Damd_speccheck in
  let module Check = Speccheck.Check in
  let module Absint = Speccheck.Absint in
  let module Analyze = Speccheck.Analyze in
  let g = parse_topology topology seed in
  (match mutate with
  | Some m when not (Speccheck.Mutate.known m) ->
      raise
        (Invalid_argument
           (Printf.sprintf
              "unknown mutation %S (see `damd lint --list-mutations`)" m))
  | _ -> ());
  let obs =
    match trace_out with None -> Obs.noop | Some _ -> Obs.memory ()
  in
  let report =
    Analyze.run ~adversary:Adversary.all_labels ?mutation:mutate ~bound
      ~differential ~explore_bound ~obs ~graph:g ~topology
      Damd_speccheck.Fpss_spec.ir
  in
  (match trace_out with
  | None -> ()
  | Some path ->
      write_trace
        ~meta:
          [
            ("command", Json.String "analyze");
            ("topology", Json.String topology);
            ("seed", Json.Int seed);
            ("differential", Json.Bool differential);
          ]
        ~path obs);
  Printf.printf "analyze: spec %s, topology %s%s\n" report.Analyze.spec
    topology
    (match mutate with Some m -> ", mutation " ^ m | None -> "");
  let res = report.Analyze.result in
  Printf.printf "abstract states: %d in %.4fs; blind spots: %d%s\n"
    res.Absint.states_explored res.Absint.elapsed_s
    (Analyze.blind_spots report)
    (match Analyze.frontier_sound report with
    | None -> ""
    | Some b -> Printf.sprintf "; frontier sound vs exploration: %b" b);
  print_newline ();
  let ft = Table.create [ "action"; "taint"; "flow path" ] in
  List.iter
    (fun sm ->
      Table.add_row ft
        [
          sm.Absint.sm_action;
          Speccheck.Taint.to_string sm.Absint.sm_out;
          String.concat " -> " sm.Absint.sm_path;
        ])
    res.Absint.flows;
  Table.print ft;
  print_newline ();
  let vt =
    Table.create [ "deviation"; "static verdict"; "certifier"; "distance" ]
  in
  List.iter
    (fun fr ->
      let verdict =
        match fr.Absint.fr_verdict with
        | Absint.Scertified { depth; certifier; _ } ->
            Printf.sprintf "certified (depth %d, %s)" depth
              (Option.value ~default:"progress timeout" certifier)
        | Absint.Sblind _ -> "BLIND"
        | Absint.Sexempt _ -> "exempt"
        | Absint.Struncated -> "truncated"
      in
      Table.add_row vt
        [
          Speccheck.Dev.to_string fr.Absint.fr_dev;
          verdict;
          (match (fr.Absint.fr_certifier, fr.Absint.fr_phase) with
          | Some c, Some p -> Printf.sprintf "%s @ %s" c p
          | Some c, None -> c
          | None, _ -> "-");
          (match fr.Absint.fr_distance with
          | Some d -> string_of_int d
          | None -> "-");
        ])
    res.Absint.frontier;
  Table.print vt;
  if report.Analyze.findings = [] then print_endline "no findings"
  else begin
    let t = Table.create [ "id"; "severity"; "location"; "explanation" ] in
    List.iter
      (fun (f : Check.finding) ->
        Table.add_row t
          [
            f.Check.id;
            Check.severity_to_string f.Check.severity;
            f.Check.location;
            f.Check.message;
          ])
      report.Analyze.findings;
    Table.print t
  end;
  Printf.printf "%d error(s)\n" (Analyze.error_count report);
  (match json_path with
  | None -> ()
  | Some path ->
      Damd_util.Json.to_file path (Analyze.to_json report);
      Printf.printf "report written to %s (schema damd-analyze/1)\n" path);
  exit (Analyze.exit_code report)

let analyze_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the damd-analyze/1 report here.")

let analyze_bound_arg =
  Arg.(
    value & opt int 200_000
    & info [ "bound" ] ~docv:"N"
        ~doc:"Per-scenario abstract-state cap (safety net; the two-seat \
              abstraction stays far below it).")

let differential_arg =
  Arg.(
    value & flag
    & info [ "differential" ]
        ~doc:
          "Also run the bounded exploration and cross-check the static \
           frontier against the measured detection depths: any verdict-kind \
           disagreement or static depth exceeding the dynamic one is a \
           static-frontier-gap error.")

let explore_bound_arg =
  Arg.(
    value & opt int 50_000
    & info [ "explore-bound" ] ~docv:"N"
        ~doc:"Per-scenario canonical-state cap for the --differential \
              exploration run.")

(* --- the TLA+ backend --- *)

let run_tla deviation nodes seat stall isolated out cfg_out =
  let module Speccheck = Damd_speccheck in
  let module Tla = Speccheck.Tla in
  let module Dev = Speccheck.Dev in
  let ir = Damd_speccheck.Fpss_spec.ir in
  let dev =
    match
      List.find_opt (fun d -> Dev.to_string d = deviation) Dev.all
    with
    | Some d -> d
    | None ->
        raise
          (Invalid_argument
             (Printf.sprintf "unknown deviation %S (expected one of %s)"
                deviation
                (String.concat " | " (List.map Dev.to_string Dev.all))))
  in
  let stall = stall || dev = Dev.Silent_in_construction in
  let module_text = Tla.emit ir in
  (match out with
  | None -> print_string module_text
  | Some path ->
      let oc = open_out path in
      output_string oc module_text;
      close_out oc;
      Printf.printf "TLA+ module written to %s (module %s)\n" path
        (Tla.sanitize ir.Speccheck.Ir.name));
  match cfg_out with
  | None -> ()
  | Some path ->
      let cfg_text =
        Tla.cfg ir ~deviation:dev ~nodes ~seat ~stall ~honest:(not isolated)
      in
      let oc = open_out path in
      output_string oc cfg_text;
      close_out oc;
      Printf.printf "TLC config written to %s (deviation %s, N=%d)\n" path
        (Dev.to_string dev) nodes

let tla_deviation_arg =
  Arg.(
    value & opt string "miscompute-routing"
    & info [ "deviation" ] ~docv:"LABEL"
        ~doc:
          "Deviation the --cfg instance targets (a Dev.t label, e.g. \
           miscompute-routing). The module itself is deviation-agnostic.")

let tla_nodes_arg =
  Arg.(
    value & opt int 4
    & info [ "nodes" ] ~docv:"N" ~doc:"Seats (N) in the --cfg instance.")

let tla_seat_arg =
  Arg.(
    value & opt int 1
    & info [ "seat" ] ~docv:"K"
        ~doc:"Deviant seat in the --cfg instance (0 = all faithful).")

let tla_stall_arg =
  Arg.(
    value & flag
    & info [ "stall" ]
        ~doc:
          "Model the deviation as an omission (the targeted step never \
           completes). Implied for silent-in-construction. Stall instances \
           wedge the phase barrier, so run TLC with deadlock checking off \
           — the deadlock is the progress-timeout detection.")

let tla_isolated_arg =
  Arg.(
    value & flag
    & info [ "isolated" ]
        ~doc:
          "Assume the deviant's checker neighborhood has no honest member \
           (shrinks CoveredStates per the section-4.3 coverage split).")

let tla_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the TLA+ module here instead of stdout.")

let tla_cfg_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cfg" ] ~docv:"FILE"
        ~doc:"Also write a TLC configuration instantiating the CONSTANTS.")

(* --- the adversarial gauntlet --- *)

let run_gauntlet campaigns seed weaken_s json_path replay no_shrink faults
    epsilon trace_out =
  let module Campaign = Damd_gauntlet.Campaign in
  let weaken =
    match Campaign.weaken_of_string weaken_s with
    | Some w -> w
    | None ->
        raise
          (Invalid_argument
             (Printf.sprintf
                "bad --weaken %S (expected none | pricing | settlement | all)"
                weaken_s))
  in
  let mix = { Campaign.faults; epsilon } in
  let trace_meta extra =
    [ ("command", Json.String "gauntlet");
      ("weaken", Json.String (Campaign.weaken_name weaken)) ]
    @ extra
  in
  match replay with
  | Some cseed ->
      (* Replay one campaign from its printed seed (plus the same
         --faults/--epsilon flags the batch ran with): the JSON below is
         byte-identical to the campaign's entry in the batch report. *)
      let obs =
        match trace_out with
        | None -> Obs.noop
        | Some _ -> Obs.memory ~detail:true ()
      in
      let descr = Campaign.of_seed ~mix cseed in
      let gr = Campaign.grade ~weaken ~obs descr in
      print_endline (Damd_util.Json.to_string ~indent:2 (Campaign.json_of_graded gr));
      (match trace_out with
      | None -> ()
      | Some path ->
          (* A violation against a weakened bank leaves no accusation in
             the timeline — the disabled checkpoint is exactly what let
             the deviation through. Re-grade the same campaign against
             the stock bank under a "forensic" span so the timeline ends
             with the accusation(s) naming the deviant, the phase the
             evidence surfaced in, and the certifying checkpoint. *)
          if
            gr.Campaign.verdict = Campaign.Violation
            && weaken <> Campaign.No_weaken
          then
            ignore
              (Obs.span obs ~cat:"gauntlet"
                 ~args:[ ("weaken", Json.String "none") ]
                 "forensic"
                 (fun () -> Campaign.grade ~weaken:Campaign.No_weaken ~obs descr));
          write_trace ~meta:(trace_meta [ ("replay", Json.Int cseed) ]) ~path obs);
      if gr.Campaign.verdict = Campaign.Violation then exit 1
  | None ->
      let obs =
        match trace_out with None -> Obs.noop | Some _ -> Obs.memory ()
      in
      let gradeds = Campaign.run_batch ~weaken ~mix ~obs ~campaigns ~seed () in
      (match trace_out with
      | None -> ()
      | Some path ->
          write_trace
            ~meta:
              (trace_meta
                 [ ("master_seed", Json.Int seed);
                   ("campaigns", Json.Int campaigns) ])
            ~path obs);
      let violations =
        List.filter (fun g -> g.Campaign.verdict = Campaign.Violation) gradeds
      in
      let shrunk =
        if no_shrink then []
        else List.map (Campaign.shrink ~weaken) violations
      in
      let count v =
        List.length (List.filter (fun g -> g.Campaign.verdict = v) gradeds)
      in
      Printf.printf
        "gauntlet: %d campaigns, master seed %d, weaken=%s%s\n\
         verdicts: %d detected, %d undetected-unprofitable, %d VIOLATION\n"
        campaigns seed
        (Campaign.weaken_name weaken)
        ((if faults then ", faults=on" else "")
        ^
        match epsilon with
        | Some e -> Printf.sprintf ", epsilon=%g" e
        | None -> "")
        (count Campaign.Detected)
        (count Campaign.Undetected_unprofitable)
        (count Campaign.Violation);
      if violations <> [] then begin
        print_newline ();
        print_endline "faithfulness violations (replay with: damd gauntlet --replay SEED):";
        let t = Table.create [ "seed"; "topology"; "deviations"; "kind"; "max delta" ] in
        List.iter
          (fun (g : Campaign.graded) ->
            let d = g.Campaign.descr in
            Table.add_row t
              [
                string_of_int d.Campaign.seed;
                Campaign.topology_name d.Campaign.topology;
                String.concat " "
                  (List.map
                     (fun (i, dev) ->
                       Printf.sprintf "%d:%s" i (Adversary.name dev))
                     d.Campaign.deviants);
                Option.value ~default:"?" g.Campaign.violation_kind;
                (match g.Campaign.max_delta with
                | Some x -> Table.cell_float x
                | None -> "n/a");
              ])
          violations;
        Table.print t;
        if shrunk <> [] then begin
          print_newline ();
          print_endline "shrunk (greedy minimization, still violating):";
          List.iter
            (fun (g : Campaign.graded) ->
              let d = g.Campaign.descr in
              Printf.printf "  %s n=%d deviants=[%s] jitter=%g dup=%g drops=%d\n"
                (Campaign.topology_name d.Campaign.topology)
                (Campaign.topology_n d.Campaign.topology)
                (String.concat " "
                   (List.map
                      (fun (i, dev) ->
                        Printf.sprintf "%d:%s" i (Adversary.name dev))
                      d.Campaign.deviants))
                d.Campaign.perturb.Runner.jitter d.Campaign.perturb.Runner.dup_p
                d.Campaign.perturb.Runner.drop_budget)
            shrunk
        end
      end;
      (match json_path with
      | None -> ()
      | Some path ->
          Damd_util.Json.to_file path
            (Campaign.report ~shrunk ~weaken ~seed gradeds);
          Printf.printf "\nreport written to %s (schema damd-gauntlet/%d)\n" path
            (if Campaign.is_stock mix then 1 else 2));
      if violations <> [] then exit 1

(* --- forensic tracing --- *)

let run_trace topology seed deviants rate out =
  let g = parse_topology topology seed in
  let n = Graph.n g in
  let traffic = Traffic.uniform ~n ~rate in
  let deviations = Array.make n Adversary.Faithful in
  List.iter
    (fun spec ->
      let who, d = parse_deviation spec in
      if who < 0 || who >= n then
        raise (Invalid_argument (Printf.sprintf "deviant node %d out of range" who));
      deviations.(who) <- d)
    deviants;
  let obs = Obs.memory ~detail:true () in
  let params = { Runner.default_params with Runner.obs = obs } in
  let r = Runner.run ~params ~graph:g ~traffic ~deviations () in
  Printf.printf "trace %s (seed %d): construction %s, %d restart(s), %d detection(s)\n"
    topology seed
    (if r.Runner.completed then "CERTIFIED" else "STUCK")
    r.Runner.restarts
    (List.length r.Runner.detections);
  let spans, instants, samples =
    List.fold_left
      (fun (sp, it, sa) e ->
        match e with
        | Obs.Span _ -> (sp + 1, it, sa)
        | Obs.Instant _ -> (sp, it + 1, sa)
        | Obs.Sample _ -> (sp, it, sa + 1))
      (0, 0, 0) (Obs.events obs)
  in
  Printf.printf "recorded %d spans, %d instants, %d samples (%d dropped)\n"
    spans instants samples (Obs.dropped obs);
  write_trace
    ~meta:
      [
        ("command", Json.String "trace");
        ("topology", Json.String topology);
        ("seed", Json.Int seed);
        ( "deviants",
          Json.List (List.map (fun s -> Json.String s) deviants) );
      ]
    ~path:out obs;
  if not r.Runner.completed then exit 1

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record a forensic trace of the run and write the damd-trace/1 \
           document here, plus its Chrome trace_event twin (same name with \
           a .chrome.json suffix) for chrome://tracing or Perfetto.")

let trace_file_arg =
  Arg.(
    value & opt string "trace.json"
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:
          "Write the damd-trace/1 document here (the Chrome trace_event \
           twin lands next to it with a .chrome.json suffix).")

let campaigns_arg =
  Arg.(
    value & opt int 50
    & info [ "n"; "campaigns" ] ~docv:"N" ~doc:"Number of campaigns to run.")

let weaken_arg =
  Arg.(
    value & opt string "none"
    & info [ "weaken" ] ~docv:"WHICH"
        ~doc:
          "Deliberately weaken the bank: none | pricing (skip the BANK2 \
           hash comparison) | settlement (naive execution clearing) | all \
           (no checking). Used to prove the violation oracle has teeth.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the damd-gauntlet/1 report here.")

let replay_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "replay" ] ~docv:"SEED"
        ~doc:"Replay one campaign from its printed seed and dump its JSON.")

let no_shrink_arg =
  Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip minimizing violations.")

let faults_arg =
  Arg.(
    value & flag
    & info [ "faults" ]
        ~doc:
          "Compose every campaign with a seeded mixed-failure schedule \
           (per-link loss and reordering, a healing partition, fail-stop \
           crash/recover with table handoff) and run the bank's \
           checkpoints in fault-tolerant evidence mode. A campaign then \
           also asserts blame correctness: any accusation of a node whose \
           resolved behavior was faithful is a false-accusation violation. \
           Replaying a campaign from such a batch requires passing \
           $(b,--faults) again.")

let epsilon_mix_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "epsilon" ] ~docv:"E"
        ~doc:
          "Wrap every sampled deviant in an epsilon-rational agent: the \
           inner deviation runs only if its measured unilateral gain \
           exceeds E (on the stock mechanism Theorem 1 keeps gains \
           non-positive, so such agents stay faithful; against a weakened \
           bank they activate). Replay requires the same value.")

let routing_cmd =
  let doc = "run the faithful interdomain-routing protocol (the FPSS case study)" in
  Cmd.v (Cmd.info "routing" ~doc)
    Term.(
      const run_routing $ topology $ seed $ deviants $ no_checking $ no_copies
      $ deferred $ latency $ loss $ hotspots $ rate $ verbose)

let election_cmd =
  let doc = "run the faithful distributed leader election (the section-3 toy)" in
  Cmd.v (Cmd.info "election" ~doc)
    Term.(const run_election $ topology $ seed $ deviants $ no_checking $ benefit_arg)

let lint_cmd =
  let doc =
    "statically check the finite spec IR: reachability, action \
     classification, phase/checkpoint structure, strong-CC and strong-AC \
     candidacy, deviation coverage and checker 2-connectivity"
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run_lint $ topology $ seed $ mutate_arg $ lint_json_arg
      $ list_mutations_arg)

let verify_cmd =
  let doc =
    "close the declared-vs-actual gap: lint, then diff taint-inferred \
     dependency sets (the real handlers under input perturbation) against \
     the IR's input annotations, then bounded-exhaustively explore the \
     deviation product space for detection-completeness and \
     no-false-accusation"
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const run_verify $ topology $ seed $ mutate_arg $ verify_json_arg
      $ bound_arg $ por_arg $ domains_arg $ key_audit_arg $ trace_out_arg)

let analyze_cmd =
  let doc =
    "statically derive the detection frontier: a whole-program abstract \
     interpretation of the spec IR computing flow-sensitive \
     information-flow summaries (witnessed CC/AC violations a syntactic \
     scan cannot see) and, per deviation, the earliest checkpoint whose \
     certifier's evidence depends on what the deviation perturbs — \
     optionally cross-checked against the exploration layer"
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const run_analyze $ topology $ seed $ mutate_arg $ analyze_json_arg
      $ analyze_bound_arg $ differential_arg $ explore_bound_arg
      $ trace_out_arg)

let tla_cmd =
  let doc =
    "emit the spec IR as a TLC-checkable TLA+ module (states, suggested \
     play, phase checkpoints, and the two section-4.3 properties as \
     invariants), plus an optional per-deviation TLC configuration — an \
     independent model checker cross-checking the exploration layer"
  in
  Cmd.v (Cmd.info "tla" ~doc)
    Term.(
      const run_tla $ tla_deviation_arg $ tla_nodes_arg $ tla_seat_arg
      $ tla_stall_arg $ tla_isolated_arg $ tla_out_arg $ tla_cfg_arg)

let gauntlet_cmd =
  let doc =
    "randomized adversarial campaigns with seed replay, shrinking and \
     empirical Theorem 1 verdicts"
  in
  Cmd.v (Cmd.info "gauntlet" ~doc)
    Term.(
      const run_gauntlet $ campaigns_arg $ seed $ weaken_arg $ json_arg
      $ replay_arg $ no_shrink_arg $ faults_arg $ epsilon_mix_arg
      $ trace_out_arg)

let trace_cmd =
  let doc =
    "run one protocol instance under a detailed in-memory sink and export \
     the forensic timeline: phase spans, per-message engine instants, \
     checkpoint outcomes and accusation events, as damd-trace/1 and Chrome \
     trace_event JSON"
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run_trace $ topology $ seed $ deviants $ rate $ trace_file_arg)

let converge_arg =
  Arg.(
    value & flag
    & info [ "converge" ]
        ~doc:
          "Run the sparse faithful protocol on the generated graph: flood, \
           routing and pricing fixpoints, mirror checkpoints, settlement.")

let topo_dests_arg =
  Arg.(
    value & opt int 8
    & info [ "dests" ] ~docv:"K"
        ~doc:
          "Destinations priced under --converge: K nodes spread evenly over \
           the id space.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Dump the graph in Graphviz dot format.")

let topo_cmd =
  let doc =
    "generate and inspect (large) topologies: structural stats, \
     commercial-relation summaries for as:N:M, dot dumps, and an optional \
     end-to-end faithful convergence run over sparse state"
  in
  Cmd.v (Cmd.info "topo" ~doc)
    Term.(const run_topo $ topology $ seed $ converge_arg $ topo_dests_arg $ dot_arg)

let cmd =
  let doc = "faithful distributed mechanisms, end to end" in
  let default =
    Term.(
      const run_routing $ topology $ seed $ deviants $ no_checking $ no_copies
      $ deferred $ latency $ loss $ hotspots $ rate $ verbose)
  in
  Cmd.group ~default (Cmd.info "damd" ~doc)
    [
      routing_cmd;
      election_cmd;
      topo_cmd;
      gauntlet_cmd;
      lint_cmd;
      verify_cmd;
      analyze_cmd;
      tla_cmd;
      trace_cmd;
    ]

let () = exit (Cmd.eval cmd)

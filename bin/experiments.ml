(* The experiment harness: regenerates every figure, example and claim of
   Shneidman & Parkes, "Specification Faithfulness in Networks with
   Rational Nodes" (PODC 2004), per the experiment index in DESIGN.md.

     dune exec bin/experiments.exe              # run everything
     dune exec bin/experiments.exe -- e4 e7     # selected experiments
     dune exec bin/experiments.exe -- --quick   # smaller sweeps

   EXPERIMENTS.md records the expected (paper) versus measured outcomes. *)

module Rng = Damd_util.Rng
module Table = Damd_util.Table
module Stats = Damd_util.Stats
module Graph = Damd_graph.Graph
module Gen = Damd_graph.Gen
module Dijkstra = Damd_graph.Dijkstra
module Mechanism = Damd_mech.Mechanism
module Strategyproof = Damd_mech.Strategyproof
module Leader = Damd_mech.Leader_election
module Traffic = Damd_fpss.Traffic
module Pricing = Damd_fpss.Pricing
module Tables = Damd_fpss.Tables
module Game = Damd_fpss.Game
module Distributed = Damd_fpss.Distributed
module Equilibrium = Damd_core.Equilibrium
module Faithfulness = Damd_core.Faithfulness
module Adversary = Damd_faithful.Adversary
module Bank = Damd_faithful.Bank
module Runner = Damd_faithful.Runner
module Analysis = Damd_faithful.Analysis
module Replication = Damd_faithful.Replication

let csv_dir : string option ref = ref None
let seed_base = ref 0

(* All experiment RNGs flow through here so that --seed re-randomizes every
   sweep coherently. *)
let mk_rng k = Rng.create (k + (1000 * !seed_base))
let current_section = ref ""
let table_counter = ref 0

let section id title =
  current_section := id;
  table_counter := 0;
  Printf.printf "\n================================================================\n";
  Printf.printf "%s  %s\n" id title;
  Printf.printf "================================================================\n\n"

(* Print a table and, when --out is given, also write it as CSV. *)
let emit t =
  Table.print t;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      incr table_counter;
      let file =
        Printf.sprintf "%s/%s_table%d.csv" dir
          (String.lowercase_ascii !current_section)
          !table_counter
      in
      let oc = open_out file in
      output_string oc (Table.to_csv t);
      close_out oc

let verdict ok label =
  Printf.printf "%s %s\n" (if ok then "[OK]  " else "[FAIL]") label

let fig1 = lazy (Gen.figure1 ())
let fig1_names () = snd (Lazy.force fig1)
let node name = List.assoc name (fig1_names ())
let name_of i = fst (List.find (fun (_, id) -> id = i) (fig1_names ()))

(* ------------------------------------------------------------------ *)
(* E0: the specification itself — action classification + topologies   *)
(* ------------------------------------------------------------------ *)

let e0 ~quick:_ =
  section "E0" "the extended-FPSS specification: action classification (sections 3.4 / 4.1)";
  let module Spec = Damd_faithful.Spec in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Left ]
      [ "external action"; "class"; "phase"; "rule" ]
  in
  List.iter
    (fun (e : Spec.entry) ->
      Table.add_row t
        [
          e.Spec.action;
          Damd_core.Action.to_string e.Spec.cls;
          Spec.phase_name e.Spec.phase;
          String.concat "/" (List.map Spec.Rule.to_string e.Spec.rules);
        ])
    Spec.catalogue;
  emit t;
  print_newline ();
  Printf.printf
    "IC covers the information-revelation rows, strong-CC the message-passing\n";
  Printf.printf
    "rows, strong-AC the computation rows (Defs. 9-13); every adversary-library\n";
  Printf.printf "deviation targets one of these actions.\n\n";
  print_endline "topology families used across the experiments:";
  let mt =
    Table.create
      [ "family"; "n"; "m"; "deg"; "diam"; "mean dist"; "clustering"; "biconn" ]
  in
  let rng = mk_rng 0 in
  let describe label g =
    let m = Damd_graph.Metrics.compute g in
    Table.add_row mt
      [
        label;
        string_of_int m.Damd_graph.Metrics.nodes;
        string_of_int m.Damd_graph.Metrics.edges;
        Printf.sprintf "%d..%d" m.Damd_graph.Metrics.min_degree
          m.Damd_graph.Metrics.max_degree;
        string_of_int m.Damd_graph.Metrics.hop_diameter;
        Printf.sprintf "%.2f" m.Damd_graph.Metrics.mean_hop_distance;
        Printf.sprintf "%.3f" m.Damd_graph.Metrics.clustering;
        string_of_bool m.Damd_graph.Metrics.biconnected;
      ]
  in
  describe "figure-1" (fst (Lazy.force fig1));
  describe "ring n=16" (Gen.ring ~n:16 ~costs:(Array.make 16 1.));
  describe "chordal-ring n=16" (Gen.chordal_ring rng ~n:16 ~chords:4 (Gen.Uniform_int (1, 10)));
  describe "erdos-renyi n=16 p=0.25" (Gen.erdos_renyi rng ~n:16 ~p:0.25 (Gen.Uniform_int (1, 10)));
  describe "barabasi-albert n=16 m=2" (Gen.barabasi_albert rng ~n:16 ~m:2 (Gen.Uniform_int (1, 10)));
  describe "waxman n=16" (Gen.waxman rng ~n:16 ~alpha:0.7 ~beta:0.4 (Gen.Uniform_int (1, 10)));
  emit mt;
  print_newline ();
  verdict
    (List.length (Damd_faithful.Spec.classes_covered ()) = 3)
    "the specification exercises all three external action classes"

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — the LCP example network                              *)
(* ------------------------------------------------------------------ *)

let e1 ~quick:_ =
  section "E1" "Figure 1: lowest-cost paths on the example network";
  let g, _ = Lazy.force fig1 in
  let tables = Pricing.compute g in
  let path_str src dst =
    match Tables.path tables ~src ~dst with
    | Some p -> String.concat "-" (List.map name_of p)
    | None -> "(none)"
  in
  let cost src dst = Option.get (Tables.lcp_cost tables ~src ~dst) in
  let t = Table.create [ "quantity"; "paper"; "measured" ] in
  Table.add_row t
    [ "LCP cost X->Z"; "2"; Table.cell_float (cost (node "X") (node "Z")) ];
  Table.add_row t [ "LCP route X->Z"; "X-D-C-Z"; path_str (node "X") (node "Z") ];
  Table.add_row t
    [ "LCP cost Z->D"; "1"; Table.cell_float (cost (node "Z") (node "D")) ];
  Table.add_row t [ "LCP route Z->D"; "Z-C-D"; path_str (node "Z") (node "D") ];
  Table.add_row t
    [ "LCP cost B->D"; "0"; Table.cell_float (cost (node "B") (node "D")) ];
  let lied = Graph.with_cost g (node "C") 5. in
  let lied_tables = Pricing.compute lied in
  let lied_path =
    match Tables.path lied_tables ~src:(node "X") ~dst:(node "Z") with
    | Some p -> String.concat "-" (List.map name_of p)
    | None -> "(none)"
  in
  Table.add_row t [ "X->Z route when C declares 5"; "X-A-Z"; lied_path ];
  emit t;
  print_newline ();
  (* the bold LCP tree from Z *)
  let tree = Dijkstra.lcp_tree_edges g ~root:(node "Z") in
  Printf.printf "LCP tree from Z (bold edges of Figure 1): %s\n"
    (String.concat " "
       (List.map (fun (u, v) -> Printf.sprintf "%s-%s" (name_of u) (name_of v)) tree));
  (match !csv_dir with
  | None -> ()
  | Some dir ->
      (* Graphviz rendering of Figure 1 with the LCP tree bold, matching
         the paper's presentation. *)
      let oc = open_out (Filename.concat dir "figure1.dot") in
      output_string oc (Graph.to_dot ~highlight:tree g);
      close_out oc;
      Printf.printf "(wrote %s/figure1.dot)\n" dir);
  let ok =
    cost (node "X") (node "Z") = 2.
    && cost (node "Z") (node "D") = 1.
    && cost (node "B") (node "D") = 0.
    && lied_path = "X-A-Z"
  in
  verdict ok "all Figure 1 numbers reproduced exactly"

(* ------------------------------------------------------------------ *)
(* E2: Example 1 — the manipulation that VCG removes                   *)
(* ------------------------------------------------------------------ *)

let e2 ~quick:_ =
  section "E2" "Example 1: node C's declared-cost sweep, naive vs VCG pricing";
  let g, _ = Lazy.force fig1 in
  let c = node "C" in
  let traffic = Traffic.uniform ~n:6 ~rate:1. in
  let true_costs = Graph.costs g in
  let utility scheme declared_c =
    let declared = Array.copy true_costs in
    declared.(c) <- declared_c;
    (Game.utilities scheme ~base:g ~true_costs ~declared ~traffic).(c)
  in
  let sweep = [ 0.; 1.; 2.; 3.; 4.; 5.; 6.; 8.; 10. ] in
  let t = Table.create [ "C declares"; "u(C) naive"; "u(C) VCG" ] in
  List.iter
    (fun d ->
      Table.add_row t
        [
          Table.cell_float d;
          Table.cell_float (utility Game.Naive_cost d);
          Table.cell_float (utility Game.Vcg d);
        ])
    sweep;
  emit t;
  print_newline ();
  let naive_truth = utility Game.Naive_cost 1. in
  let naive_best = List.fold_left (fun a d -> Float.max a (utility Game.Naive_cost d)) neg_infinity sweep in
  let vcg_truth = utility Game.Vcg 1. in
  let vcg_best = List.fold_left (fun a d -> Float.max a (utility Game.Vcg d)) neg_infinity sweep in
  verdict (naive_best > naive_truth +. 1e-9)
    (Printf.sprintf "naive pricing is manipulable (lying gains %+g) — Example 1"
       (naive_best -. naive_truth));
  verdict (vcg_best <= vcg_truth +. 1e-9)
    "VCG pricing: the truthful declaration is the sweep maximum (strategyproof)"

(* ------------------------------------------------------------------ *)
(* E3: FPSS strategyproofness on random topologies                     *)
(* ------------------------------------------------------------------ *)

let e3 ~quick =
  section "E3" "strategyproofness sweep: VCG (theorem) vs naive (baseline)";
  let profiles = if quick then 8 else 25 in
  let lies = if quick then 3 else 5 in
  let families =
    [
      ("erdos-renyi n=8 p=0.35", fun rng -> Gen.erdos_renyi rng ~n:8 ~p:0.35 (Gen.Uniform_int (0, 10)));
      ("erdos-renyi n=16 p=0.2", fun rng -> Gen.erdos_renyi rng ~n:16 ~p:0.2 (Gen.Uniform_int (0, 10)));
      ("barabasi-albert n=16 m=2", fun rng -> Gen.barabasi_albert rng ~n:16 ~m:2 (Gen.Uniform_int (0, 10)));
      ("waxman n=12", fun rng -> Gen.waxman rng ~n:12 ~alpha:0.7 ~beta:0.4 (Gen.Uniform_int (0, 10)));
    ]
  in
  let t =
    Table.create
      [ "topology"; "scheme"; "trials"; "violations"; "max gain" ]
  in
  let all_ok = ref true in
  List.iter
    (fun (label, make) ->
      let check_scheme scheme scheme_label expect_clean =
        let rng = mk_rng 42 in
        let g = make rng in
        let n = Graph.n g in
        let traffic = Traffic.uniform ~n ~rate:1. in
        let m = Game.mechanism scheme ~base:g ~traffic in
        let r =
          Strategyproof.check ~rng ~profiles ~lies_per_agent:lies
            ~sample_profile:(fun rng -> Game.sample_costs rng ~n)
            ~sample_lie:Game.sample_lie m
        in
        Table.add_row t
          [
            label;
            scheme_label;
            string_of_int r.Strategyproof.trials;
            string_of_int (List.length r.Strategyproof.violations);
            Table.cell_float r.Strategyproof.max_gain;
          ];
        if expect_clean && not (Strategyproof.is_strategyproof r) then all_ok := false;
        if (not expect_clean) && Strategyproof.is_strategyproof r then
          () (* the naive baseline may survive on some topologies; noted, not fatal *)
      in
      check_scheme Game.Vcg "VCG" true;
      check_scheme Game.Naive_cost "naive" false)
    families;
  emit t;
  print_newline ();
  verdict !all_ok "zero violations under VCG on every family (FPSS theorem)"

(* ------------------------------------------------------------------ *)
(* E4: the catch matrix (Figure 2 / §4.3 manipulations)                *)
(* ------------------------------------------------------------------ *)

let e4 ~quick =
  section "E4" "catch-and-punish matrix: every manipulation vs the checkers + bank";
  let module Audit = Damd_faithful.Audit in
  let targets =
    let rng = mk_rng 4 in
    let with_traffic (label, g, nodes) = (label, (g, Traffic.uniform ~n:(Graph.n g) ~rate:1., nodes)) in
    let base =
      [
        ("figure-1", fst (Lazy.force fig1), [ 0; 2; 3 ]);
        ("ring-8", Gen.ring ~n:8 ~costs:(Array.make 8 2.), [ 1; 4 ]);
      ]
    in
    let all =
      if quick then base
      else
        base
        @ [
            ( "chordal-ring-10",
              Gen.chordal_ring rng ~n:10 ~chords:4 (Gen.Uniform_int (1, 8)),
              [ 0; 5 ] );
          ]
    in
    List.map with_traffic all
  in
  Printf.printf "targets: %s\n\n"
    (String.concat ", " (List.map fst targets));
  let rows = Audit.detection_matrix ~targets:(List.map snd targets) () in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "deviation"; "runs"; "caught"; "no effect"; "escaped"; "rules" ]
  in
  List.iter
    (fun (r : Audit.matrix_row) ->
      Table.add_row t
        [
          r.Audit.name;
          string_of_int r.Audit.runs;
          string_of_int r.Audit.caught;
          string_of_int r.Audit.no_effect;
          string_of_int r.Audit.escaped;
          String.concat "," r.Audit.rules;
        ])
    rows;
  emit t;
  print_newline ();
  print_endline
    "('no effect' = the deviation changed nothing observable — e.g. a corrupted";
  print_endline
    " flood fact that lost every first-arrival race — so there is nothing to catch)";
  verdict (Audit.clean rows)
    "no effective manipulation escaped (manipulations 1-4 of section 4.3 all caught)"

(* ------------------------------------------------------------------ *)
(* E5: distributed-computation convergence                              *)
(* ------------------------------------------------------------------ *)

let e5 ~quick =
  section "E5" "distributed FPSS: convergence rounds and agreement with the centralized mechanism";
  let sizes = if quick then [ 8; 16 ] else [ 8; 16; 32; 64 ] in
  let t =
    Table.create
      [ "topology"; "diam"; "flood"; "routing"; "pricing"; "messages"; "agrees" ]
  in
  let all_agree = ref true in
  let row label g =
    let d = Distributed.run g in
    let c = Pricing.compute g in
    let agrees =
      Tables.routing_equal d.Distributed.tables c
      && Tables.prices_equal d.Distributed.tables c
    in
    if not agrees then all_agree := false;
    Table.add_row t
      [
        label;
        string_of_int (Graph.hop_diameter g);
        string_of_int d.Distributed.rounds_flood;
        string_of_int d.Distributed.rounds_routing;
        string_of_int d.Distributed.rounds_pricing;
        string_of_int d.Distributed.messages;
        string_of_bool agrees;
      ]
  in
  let rng = mk_rng 5 in
  List.iter
    (fun n ->
      row
        (Printf.sprintf "chordal-ring n=%d" n)
        (Gen.chordal_ring rng ~n ~chords:(n / 4) (Gen.Uniform_int (1, 10)));
      row
        (Printf.sprintf "erdos-renyi n=%d" n)
        (Gen.erdos_renyi rng ~n ~p:(Float.min 0.9 (4. /. float_of_int n)) (Gen.Uniform_int (1, 10))))
    sizes;
  emit t;
  print_newline ();
  verdict !all_agree "distributed tables byte-identical to the centralized mechanism";
  print_endline
    "(routing rounds track the hop diameter, as in the Griffin-Wilfong/FPSS analysis)"

(* ------------------------------------------------------------------ *)
(* E6: overhead — plain FPSS vs checkers vs full replication           *)
(* ------------------------------------------------------------------ *)

let e6 ~quick =
  section "E6" "construction overhead: plain FPSS vs neighborhood checkers vs full replication";
  let sizes = if quick then [ 8; 12 ] else [ 8; 12; 16; 24 ] in
  let t =
    Table.create
      [
        "n"; "plain msgs"; "faithful msgs"; "replicate msgs"; "plain KB"; "faithful KB";
        "replicate KB"; "faithful/plain"; "replicate/plain";
      ]
  in
  let rng = mk_rng 6 in
  let ordered = ref true in
  List.iter
    (fun n ->
      let g = Gen.chordal_ring rng ~n ~chords:(n / 4) (Gen.Uniform_int (1, 10)) in
      let traffic = Traffic.uniform ~n ~rate:1. in
      let plain_params =
        { Runner.default_params with Runner.checking = false; copies = false }
      in
      let plain = Runner.run_faithful ~params:plain_params ~graph:g ~traffic () in
      let faithful = Runner.run_faithful ~graph:g ~traffic () in
      let repl = Replication.run g in
      let kb b = Printf.sprintf "%.1f" (float_of_int b /. 1024.) in
      let ratio a b = Printf.sprintf "%.2fx" (float_of_int a /. float_of_int b) in
      if
        not
          (plain.Runner.construction_bytes <= faithful.Runner.construction_bytes
          && faithful.Runner.construction_bytes <= repl.Replication.bytes)
      then ordered := false;
      Table.add_row t
        [
          string_of_int n;
          string_of_int plain.Runner.construction_messages;
          string_of_int faithful.Runner.construction_messages;
          string_of_int repl.Replication.messages;
          kb plain.Runner.construction_bytes;
          kb faithful.Runner.construction_bytes;
          kb repl.Replication.bytes;
          ratio faithful.Runner.construction_bytes plain.Runner.construction_bytes;
          ratio repl.Replication.bytes plain.Runner.construction_bytes;
        ])
    sizes;
  emit t;
  print_newline ();
  verdict !ordered
    "plain <= checkers <= full replication, with the checker overhead local (degree-bounded)"

(* ------------------------------------------------------------------ *)
(* E7: Theorem 1 — faithfulness (and its ablation)                     *)
(* ------------------------------------------------------------------ *)

let e7 ~quick =
  section "E7" "Theorem 1: ex post Nash faithfulness of the extended specification";
  let profiles = if quick then 1 else 2 in
  let topologies =
    [
      ("figure-1", fst (Lazy.force fig1));
      ("ring-6", Gen.ring ~n:6 ~costs:[| 2.; 3.; 1.; 4.; 2.; 3. |]);
    ]
    @
    if quick then []
    else
      [ ("erdos-renyi-8", Gen.erdos_renyi (mk_rng 7) ~n:8 ~p:0.35 (Gen.Uniform_int (1, 8))) ]
  in
  let t =
    Table.create
      [ "topology"; "mode"; "comparisons"; "max deviation gain"; "equilibrium" ]
  in
  let checked_ok = ref true and unchecked_broken = ref false in
  List.iter
    (fun (label, g) ->
      let n = Graph.n g in
      let traffic = Traffic.uniform ~n ~rate:1. in
      let rng = mk_rng 77 in
      let report = Analysis.ex_post_nash_report ~rng ~profiles ~base:g ~traffic () in
      if not (Equilibrium.holds report) then checked_ok := false;
      Table.add_row t
        [
          label;
          "checking on";
          string_of_int report.Equilibrium.comparisons;
          Table.cell_float report.Equilibrium.max_gain;
          (if Equilibrium.holds report then "holds" else "VIOLATED");
        ];
      let unchecked = { Runner.default_params with Runner.checking = false } in
      let report_off =
        Analysis.ex_post_nash_report ~params:unchecked ~rng ~profiles ~base:g ~traffic ()
      in
      if not (Equilibrium.holds report_off) then unchecked_broken := true;
      Table.add_row t
        [
          label;
          "checking OFF";
          string_of_int report_off.Equilibrium.comparisons;
          Table.cell_float report_off.Equilibrium.max_gain;
          (if Equilibrium.holds report_off then "holds" else "VIOLATED");
        ])
    topologies;
  emit t;
  print_newline ();
  (* the Proposition 2 certificate on Figure 1 *)
  let g, _ = Lazy.force fig1 in
  let rng = mk_rng 78 in
  let evidence =
    Analysis.evidence ~rng ~profiles ~base:g ~traffic:(Traffic.uniform ~n:6 ~rate:1.) ()
  in
  let v = Faithfulness.certify evidence in
  Format.printf "Proposition 2 certificate (Figure 1):@.%a@.verdict: %a@.@."
    Faithfulness.pp_evidence evidence Faithfulness.pp_verdict v;
  verdict (!checked_ok && v.Faithfulness.faithful)
    "with checkers + bank, no library deviation profits: faithful (Theorem 1)";
  verdict !unchecked_broken
    "with checking disabled, profitable manipulations exist (the paper's problem)"

(* ------------------------------------------------------------------ *)
(* E8: phase decomposition ablation                                     *)
(* ------------------------------------------------------------------ *)

let e8 ~quick:_ =
  section "E8" "phase decomposition: certified checkpoints localize the damage";
  let rng = mk_rng 8 in
  let g = Gen.chordal_ring rng ~n:10 ~chords:4 (Gen.Uniform_int (1, 8)) in
  let n = Graph.n g in
  let traffic = Traffic.uniform ~n ~rate:1. in
  let run ~deferred deviation =
    let params = { Runner.default_params with Runner.deferred_certification = deferred } in
    let deviations = Array.make n Adversary.Faithful in
    deviations.(0) <- deviation;
    Runner.run ~params ~graph:g ~traffic ~deviations ()
  in
  let t =
    Table.create
      [ "deviation"; "certification"; "caught at"; "construction msgs spent" ]
  in
  let localizes = ref true in
  List.iter
    (fun d ->
      let phased = run ~deferred:false d in
      let deferred = run ~deferred:true d in
      Table.add_row t
        [
          Adversary.name d;
          "per-phase";
          Option.value ~default:"-" phased.Runner.stuck_phase;
          string_of_int phased.Runner.construction_messages;
        ];
      Table.add_row t
        [
          Adversary.name d;
          "deferred";
          Option.value ~default:"-" deferred.Runner.stuck_phase;
          string_of_int deferred.Runner.construction_messages;
        ];
      (* per-phase certification should catch a phase-1 deviation having
         spent less work than end-of-construction certification, even
         though per-phase retries the phase max_restarts times *)
      if
        Adversary.is_construction d
        && phased.Runner.construction_messages > deferred.Runner.construction_messages
        && d = Adversary.Inconsistent_cost (2., 9.)
      then localizes := false)
    [ Adversary.Inconsistent_cost (2., 9.); Adversary.Drop_routing_copies ];
  emit t;
  print_newline ();
  verdict !localizes
    "checkpoints stop a phase-1 deviation before phase-2 work is spent";
  print_endline
    "(with deferred certification the whole construction runs before the deviation";
  print_endline
    " is noticed: the checkpoint structure is what keeps restart costs bounded)"

(* ------------------------------------------------------------------ *)
(* E9: the leader-election toy                                          *)
(* ------------------------------------------------------------------ *)

let e9 ~quick =
  section "E9" "leader election (section 3): naive vs faithful under rational play";
  let trials = if quick then 500 else 2000 in
  let n = 8 in
  let benefit = 2. in
  let rng = mk_rng 9 in
  let naive = Leader.naive ~n in
  let faithful = Leader.second_score ~n ~benefit in
  let naive_truthful = ref 0 and naive_rational = ref 0 in
  let faithful_power = ref 0 and faithful_welfare = ref 0 in
  for _ = 1 to trials do
    let profile = Leader.sample_profile ~n rng in
    let best = Leader.most_powerful profile in
    let o, _ = naive.Mechanism.run profile in
    if o.Leader.leader = best then incr naive_truthful;
    let rational =
      Array.map
        (fun (th : Leader.theta) ->
          if th.Leader.cost > 0. then Leader.selfish_report th else th)
        profile
    in
    let o, _ = naive.Mechanism.run rational in
    if o.Leader.leader = best then incr naive_rational;
    let o, _ = faithful.Mechanism.run profile in
    if o.Leader.leader = best then incr faithful_power;
    if o.Leader.leader = Leader.welfare_optimal ~benefit profile then incr faithful_welfare
  done;
  let pct x = Table.cell_pct (float_of_int x /. float_of_int trials) in
  let t = Table.create [ "spec & play"; "elects most powerful"; "elects welfare-best" ] in
  Table.add_row t [ "naive, truthful (imagined)"; pct !naive_truthful; "-" ];
  Table.add_row t [ "naive, rational (actual)"; pct !naive_rational; "-" ];
  Table.add_row t [ "second-score, rational"; pct !faithful_power; pct !faithful_welfare ];
  emit t;
  print_newline ();
  verdict
    (!naive_rational * 4 < !naive_truthful && !faithful_welfare = trials)
    "rational play breaks the naive spec; the faithful spec always elects the welfare-best node"

(* ------------------------------------------------------------------ *)
(* E10: bank checkpoint cost                                            *)
(* ------------------------------------------------------------------ *)

let e10 ~quick =
  section "E10" "bank complexity: checkpoint traffic vs construction traffic";
  let sizes = if quick then [ 8; 16 ] else [ 8; 16; 32; 48 ] in
  let rng = mk_rng 10 in
  let t =
    Table.create
      [ "n"; "edges"; "bank KB"; "construction KB"; "bank share"; "digests" ]
  in
  let modest = ref true in
  List.iter
    (fun n ->
      let g = Gen.chordal_ring rng ~n ~chords:(n / 4) (Gen.Uniform_int (1, 10)) in
      let traffic = Traffic.uniform ~n ~rate:1. in
      let r = Runner.run_faithful ~graph:g ~traffic () in
      let digests =
        (* one DATA1 digest per node + (1 + 2 deg) per principal per table *)
        Graph.fold_nodes (fun v acc -> acc + 1 + (2 * (1 + (2 * Graph.degree g v)))) g 0
      in
      let share =
        float_of_int r.Runner.bank_bytes
        /. float_of_int (r.Runner.bank_bytes + r.Runner.construction_bytes)
      in
      if share > 0.5 then modest := false;
      Table.add_row t
        [
          string_of_int n;
          string_of_int (Graph.num_edges g);
          Printf.sprintf "%.1f" (float_of_int r.Runner.bank_bytes /. 1024.);
          Printf.sprintf "%.1f" (float_of_int r.Runner.construction_bytes /. 1024.);
          Table.cell_pct share;
          string_of_int digests;
        ])
    sizes;
  emit t;
  print_newline ();
  verdict !modest
    "the bank moves hashes, not tables: checkpoint traffic stays a small share"

(* ------------------------------------------------------------------ *)
(* E11: asynchrony robustness (extension)                               *)
(* ------------------------------------------------------------------ *)

let e11 ~quick =
  section "E11" "extension: heterogeneous link latencies (asynchronous delivery)";
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let rng = mk_rng 11 in
  let g = Gen.chordal_ring rng ~n:10 ~chords:4 (Gen.Uniform_int (1, 8)) in
  let n = Graph.n g in
  let traffic = Traffic.uniform ~n ~rate:1. in
  let centralized = Pricing.compute g in
  let t = Table.create [ "latency seed"; "faithful certifies"; "tables match"; "deviant caught" ] in
  let all_ok = ref true in
  List.iter
    (fun seed ->
      let params = { Runner.default_params with Runner.latency_seed = Some seed } in
      let r = Runner.run_faithful ~params ~graph:g ~traffic () in
      let matches =
        match r.Runner.tables with
        | Some tbl ->
            Tables.routing_equal tbl centralized && Tables.prices_equal tbl centralized
        | None -> false
      in
      let deviations = Array.make n Adversary.Faithful in
      deviations.(3) <- Adversary.Miscompute_routing (-2.);
      let dr = Runner.run ~params ~graph:g ~traffic ~deviations () in
      let caught = not dr.Runner.completed in
      if not (r.Runner.completed && matches && caught) then all_ok := false;
      Table.add_row t
        [
          string_of_int seed;
          string_of_bool r.Runner.completed;
          string_of_bool matches;
          string_of_bool caught;
        ])
    seeds;
  emit t;
  print_newline ();
  verdict !all_ok
    "construction, certification and detection are robust to per-link latency skew"

(* ------------------------------------------------------------------ *)
(* E12: non-rational omission failures (the §5 caveat)                 *)
(* ------------------------------------------------------------------ *)

let e12 ~quick =
  section "E12" "extension (section 5): channel omission faults cause FALSE detections";
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let g, _ = Lazy.force fig1 in
  let traffic = Traffic.uniform ~n:6 ~rate:1. in
  let t =
    Table.create
      [ "loss prob"; "runs"; "certified"; "stuck (false positive)"; "mean restarts" ]
  in
  let faulty_faithfuls_punished = ref false in
  List.iter
    (fun loss ->
      let certified = ref 0 and stuck = ref 0 and restarts = ref [] in
      List.iter
        (fun seed ->
          let params =
            { Runner.default_params with Runner.channel_loss = Some (loss, seed) }
          in
          (* every node faithful: any detection is a false positive *)
          let r = Runner.run_faithful ~params ~graph:g ~traffic () in
          restarts := float_of_int r.Runner.restarts :: !restarts;
          if r.Runner.completed then incr certified else incr stuck)
        seeds;
      if loss > 0. && !stuck > 0 then faulty_faithfuls_punished := true;
      Table.add_row t
        [
          Table.cell_pct loss;
          string_of_int (List.length seeds);
          string_of_int !certified;
          string_of_int !stuck;
          Table.cell_float (Stats.mean !restarts);
        ])
    [ 0.0; 0.01; 0.05; 0.15 ];
  emit t;
  print_newline ();
  verdict !faulty_faithfuls_punished
    "omission faults trip the catch-and-punish machinery against FAITHFUL nodes";
  print_endline
    "(the paper's section 5: 'introducing other failures, such as general omissions";
  print_endline
    " ... may cause the system to falsely detect and punish manipulation' — the";
  print_endline
    " rational-failure model assumes a reliable network underneath)"

(* ------------------------------------------------------------------ *)
(* E13: anti-social preferences (the §5 caveat)                        *)
(* ------------------------------------------------------------------ *)

let e13 ~quick:_ =
  section "E13" "extension (section 5): anti-social (spiteful) preferences break faithfulness";
  let g, _ = Lazy.force fig1 in
  let n = Graph.n g in
  let traffic = Traffic.uniform ~n ~rate:1. in
  let faithful = Runner.run_faithful ~graph:g ~traffic () in
  let mean_others u who =
    let acc = ref 0. in
    Array.iteri (fun i x -> if i <> who then acc := !acc +. x) u;
    !acc /. float_of_int (n - 1)
  in
  (* Spiteful utility: own utility minus alpha times the others' mean. *)
  let spite_gain alpha who deviation =
    let deviations = Array.make n Adversary.Faithful in
    deviations.(who) <- deviation;
    let r = Runner.run ~graph:g ~traffic ~deviations () in
    let own = r.Runner.utilities.(who) -. faithful.Runner.utilities.(who) in
    let others =
      mean_others r.Runner.utilities who -. mean_others faithful.Runner.utilities who
    in
    own -. (alpha *. others)
  in
  let t =
    Table.create [ "alpha (spite)"; "max adjusted gain"; "best deviation"; "equilibrium" ]
  in
  let breaks = ref false and selfish_holds = ref true in
  List.iter
    (fun alpha ->
      let best_gain = ref neg_infinity and best_name = ref "-" in
      List.iter
        (fun d ->
          let gain = spite_gain alpha 2 d in
          if gain > !best_gain then begin
            best_gain := gain;
            best_name := Adversary.name d
          end)
        Adversary.library;
      let holds = !best_gain <= 1e-6 in
      if alpha = 0. && not holds then selfish_holds := false;
      if alpha > 0.9 && not holds then breaks := true;
      Table.add_row t
        [
          Table.cell_float alpha;
          Table.cell_float !best_gain;
          !best_name;
          (if holds then "holds" else "VIOLATED");
        ])
    [ 0.; 0.25; 0.5; 1.0; 1.5 ];
  emit t;
  print_newline ();
  verdict !selfish_holds "with purely selfish preferences the specification stays faithful";
  verdict !breaks
    "with strong spite, stalling the mechanism becomes 'profitable' (everyone loses,";
  print_endline
    "       rivals lose as much) — faithfulness is a claim about *self-interested*";
  print_endline "       rationality, as section 5 warns"

(* ------------------------------------------------------------------ *)
(* E14: the collusion boundary (ex post Nash "without collusion")      *)
(* ------------------------------------------------------------------ *)

let e14 ~quick:_ =
  section "E14" "extension: collusion — how many corrupted checkers until detection fails?";
  let g, _ = Lazy.force fig1 in
  let n = Graph.n g in
  let traffic = Traffic.uniform ~n ~rate:1. in
  let principal = node "C" in
  let checkers = Graph.neighbors g principal in
  let deg = List.length checkers in
  Printf.printf "deviant principal: C (checkers: %s)\n\n"
    (String.concat ", " (List.map name_of checkers));
  let t =
    Table.create
      [ "colluding checkers"; "certified"; "caught by"; "outcome" ]
  in
  let boundary_ok = ref true in
  for k = 0 to deg do
    let deviations = Array.make n Adversary.Faithful in
    deviations.(principal) <- Adversary.Miscompute_routing 2.;
    List.iteri
      (fun i c -> if i < k then deviations.(c) <- Adversary.Collude_with principal)
      checkers;
    let r = Runner.run ~graph:g ~traffic ~deviations () in
    let rules =
      r.Runner.detections
      |> List.map (fun d -> d.Bank.rule)
      |> List.sort_uniq compare |> String.concat ","
    in
    let outcome =
      if r.Runner.completed then
        if k = deg then "ESCAPES: full neighborhood coalition defeats checking"
        else "unexpected escape"
      else "deviation blocked"
    in
    if k < deg && r.Runner.completed then boundary_ok := false;
    if k = deg && not r.Runner.completed then boundary_ok := false;
    Table.add_row t
      [
        Printf.sprintf "%d / %d" k deg;
        string_of_bool r.Runner.completed;
        (if rules = "" then "-" else rules);
        outcome;
      ]
  done;
  emit t;
  print_newline ();
  verdict !boundary_ok
    "one honest checker suffices; only a full-neighborhood coalition escapes";
  print_endline
    "(the paper's guarantee is ex post Nash *without collusion*; this maps the";
  print_endline " exact boundary of that assumption)"

(* ------------------------------------------------------------------ *)
(* E15: incremental re-convergence after a cost change (extension)     *)
(* ------------------------------------------------------------------ *)

let e15 ~quick =
  section "E15" "extension: incremental re-convergence after a single cost change";
  let sizes = if quick then [ 16 ] else [ 16; 32; 48 ] in
  let rng = mk_rng 15 in
  let t =
    Table.create
      [ "n"; "cold rounds"; "warm rounds"; "cold msgs"; "warm msgs"; "saving"; "exact" ]
  in
  let all_exact = ref true and always_cheaper = ref true in
  List.iter
    (fun n ->
      let g = Gen.chordal_ring rng ~n ~chords:(n / 4) (Gen.Uniform_int (1, 10)) in
      let before = Distributed.run g in
      let changed =
        Graph.with_cost g (Rng.int rng n) (float_of_int (Rng.int_in rng 1 10))
      in
      let warm = Distributed.run ~warm_start:before.Distributed.tables changed in
      let cold = Distributed.run changed in
      let reference = Pricing.compute changed in
      let exact =
        Tables.routing_equal warm.Distributed.tables reference
        && Tables.prices_equal warm.Distributed.tables reference
      in
      if not exact then all_exact := false;
      if warm.Distributed.messages >= cold.Distributed.messages then
        always_cheaper := false;
      Table.add_row t
        [
          string_of_int n;
          string_of_int (cold.Distributed.rounds_routing + cold.Distributed.rounds_pricing);
          string_of_int (warm.Distributed.rounds_routing + warm.Distributed.rounds_pricing);
          string_of_int cold.Distributed.messages;
          string_of_int warm.Distributed.messages;
          Printf.sprintf "%.0f%%"
            (100.
            *. (1.
               -. (float_of_int warm.Distributed.messages
                  /. float_of_int cold.Distributed.messages)));
          string_of_bool exact;
        ])
    sizes;
  emit t;
  print_newline ();
  verdict !all_exact "warm-started tables equal the new centralized fixpoint exactly";
  verdict !always_cheaper
    "incremental updates cost a fraction of a cold start (the BGP-style benefit)"

(* ------------------------------------------------------------------ *)
(* E16: the technique generalizes — faithful distributed election      *)
(* ------------------------------------------------------------------ *)

let e16 ~quick:_ =
  section "E16" "extension: the same technique makes the section-3 election faithful";
  let module Election = Damd_faithful.Election in
  let rng = mk_rng 16 in
  let g = Gen.chordal_ring rng ~n:8 ~chords:2 (Gen.Uniform_int (1, 5)) in
  let profile = Leader.sample_profile ~n:8 rng in
  let honest =
    Election.run ~graph:g ~profile ~deviations:(Array.make 8 Election.Honest) ()
  in
  Printf.printf
    "8 nodes on a chordal ring; honest run certifies=%b, elected leader=%s (%d msgs)\n\n"
    honest.Election.completed
    (match honest.Election.leader with Some l -> string_of_int l | None -> "-")
    honest.Election.messages;
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Left; Table.Right ]
      [ "deviation"; "max gain (checked)"; "outcome"; "max gain (unchecked)" ]
  in
  let unchecked = { Election.default_params with Election.checking = false } in
  let checked_ok = ref true and unchecked_broken = ref false in
  List.iter
    (fun d ->
      let max_gain params =
        List.fold_left
          (fun acc node ->
            Float.max acc
              (Election.utility_gain ?params ~graph:g ~profile ~node ~deviation:d ()))
          neg_infinity
          [ 0; 1; 2; 3; 4; 5; 6; 7 ]
      in
      let checked = max_gain None in
      let off = max_gain (Some unchecked) in
      if checked > 1e-9 then checked_ok := false;
      if off > 1e-9 then unchecked_broken := true;
      let deviations = Array.make 8 Election.Honest in
      deviations.(0) <- d;
      let r = Election.run ~graph:g ~profile ~deviations () in
      Table.add_row t
        [
          Election.deviation_name d;
          Table.cell_float checked;
          (if r.Election.completed then "certified" else "blocked");
          Table.cell_float off;
        ])
    Election.deviation_library;
  emit t;
  print_newline ();
  verdict !checked_ok
    "no deviation profits: the distributed election is faithful (a second instantiation)";
  verdict !unchecked_broken
    "without the certificates, self-nomination pays — the checking is load-bearing"

(* ------------------------------------------------------------------ *)
(* E17: toward a distributed bank (footnote 6's open problem)          *)
(* ------------------------------------------------------------------ *)

let e17 ~quick:_ =
  section "E17" "extension: replicating the bank's comparisons across a committee";
  let module Committee = Damd_faithful.Committee in
  let evidence =
    [ { Bank.rule = "BANK1"; culprit = Some 0; detail = "deviation evidence" } ]
  in
  let t =
    Table.create
      [ "committee"; "corrupt"; "tolerated?"; "suppress a catch?"; "force a false restart?" ]
  in
  let boundary_ok = ref true in
  List.iter
    (fun (replicas, corrupt) ->
      let committee =
        List.init replicas (fun i ->
            if i < corrupt then Committee.Always_approve else Committee.Honest_replica)
      in
      let suppressed = Committee.decide committee ~evidence = Committee.Green_light in
      let committee_r =
        List.init replicas (fun i ->
            if i < corrupt then Committee.Always_restart else Committee.Honest_replica)
      in
      let forced = Committee.decide committee_r ~evidence:[] <> Committee.Green_light in
      let tolerated = Committee.tolerates ~replicas ~corrupt in
      if tolerated && (suppressed || forced) then boundary_ok := false;
      if (not tolerated) && not (suppressed || forced) then boundary_ok := false;
      Table.add_row t
        [
          string_of_int replicas;
          string_of_int corrupt;
          string_of_bool tolerated;
          string_of_bool suppressed;
          string_of_bool forced;
        ])
    [ (1, 0); (3, 1); (3, 2); (5, 2); (5, 3); (7, 3) ];
  emit t;
  print_newline ();
  verdict !boundary_ok
    "a 2f+1 committee tolerates f arbitrary liars, exactly (deterministic verdicts)";
  print_endline
    "(the open problem remains open: replicas drawn from the *routed* network are";
  print_endline
    " rational participants, and their votes are computational actions inside the";
  print_endline " very mechanism they police — see lib/faithful/committee.mli)"

(* ------------------------------------------------------------------ *)
(* E18: how large must the penalties be? (sensitivity analysis)        *)
(* ------------------------------------------------------------------ *)

let e18 ~quick =
  section "E18" "penalty sizing: the 'strong negative value of no progress' assumption, quantified";
  let module Audit = Damd_faithful.Audit in
  let g, _ = Lazy.force fig1 in
  let traffic = Traffic.uniform ~n:6 ~rate:1. in
  (* Part 1: the progress penalty must exceed the worst faithful surplus a
     deviant could walk away from; below that, stalling the mechanism is
     cheap and construction deviations can profit. *)
  let t = Table.create [ "progress penalty"; "max deviation gain"; "faithful?" ] in
  let threshold_seen = ref false and large_ok = ref true in
  let penalties = if quick then [ 0.; 1e3; 1e5 ] else [ 0.; 10.; 100.; 1e3; 1e4; 1e5 ] in
  List.iter
    (fun penalty ->
      let params = { Runner.default_params with Runner.progress_penalty = penalty } in
      let gain, _ = Audit.max_gain ~params ~graph:g ~traffic () in
      let ok = gain <= 1e-9 in
      if (not ok) && penalty < 1e4 then threshold_seen := true;
      if penalty >= 1e5 && not ok then large_ok := false;
      Table.add_row t
        [ Table.cell_float penalty; Table.cell_float gain; string_of_bool ok ])
    penalties;
  emit t;
  print_newline ();
  (* Part 2: Remark 1 — for the execution fines, any epsilon > 0 works;
     epsilon = 0 leaves the deviant exactly indifferent, which the paper's
     benevolence assumption (weak ex post Nash) is designed to cover. *)
  let t2 = Table.create [ "epsilon"; "underreporting gain"; "strictly deterred?" ] in
  List.iter
    (fun epsilon ->
      let params = { Runner.default_params with Runner.epsilon = epsilon } in
      let gain =
        Runner.utility_gain ~params ~graph:g ~traffic ~node:4
          ~deviation:(Adversary.Underreport_payments 0.5) ()
      in
      Table.add_row t2
        [
          Table.cell_float epsilon;
          Table.cell_float gain;
          string_of_bool (gain < -1e-9);
        ])
    [ 0.; 0.1; 1.; 10. ];
  emit t2;
  print_newline ();
  verdict !threshold_seen
    "undersized progress penalties leave profitable stalls (the assumption is load-bearing)";
  verdict !large_ok "the default penalty sizing restores faithfulness";
  print_endline
    "(the bank both corrects the payment and fines the deviation + epsilon, so";
  print_endline
    " deterrence is strict even at epsilon = 0 here; the paper's epsilon margin";
  print_endline
    " guarantees strictness even for a bank that only claws back the deviation -";
  print_endline " Remark 1's weak ex post Nash covers that boundary case)"

(* ------------------------------------------------------------------ *)
(* E19: equilibrium selection (Remark 2) via best-response dynamics    *)
(* ------------------------------------------------------------------ *)

let e19 ~quick:_ =
  section "E19" "Remark 2: multiple equilibria, and why obedient nodes select the good one";
  let g, _ = Lazy.force fig1 in
  let n = Graph.n g in
  let traffic = Traffic.uniform ~n ~rate:1. in
  let dm = Analysis.dmech ~base:g ~traffic () in
  let types = Graph.costs g in
  let candidates _ =
    [
      Adversary.Faithful;
      Adversary.Miscompute_routing (-2.);
      Adversary.Underreport_payments 0.5;
      Adversary.Silent_in_construction;
    ]
  in
  let describe profile =
    let deviants =
      Array.to_list profile
      |> List.mapi (fun i d -> (i, d))
      |> List.filter (fun (_, d) -> d <> Adversary.Faithful)
    in
    if deviants = [] then "all faithful"
    else
      String.concat ", "
        (List.map (fun (i, d) -> Printf.sprintf "%d:%s" i (Adversary.name d)) deviants)
  in
  let t = Table.create ~aligns:[ Table.Left; Table.Left; Table.Left ]
      [ "starting profile"; "dynamics end at"; "reading" ] in
  let run_case label start reading_good reading_bad =
    match
      Equilibrium.best_response_dynamics ~start ~candidates ~types ~max_rounds:8 dm
    with
    | `Converged (profile, _) ->
        let faithful = Array.for_all (( = ) Adversary.Faithful) profile in
        Table.add_row t
          [ label; describe profile; (if faithful then reading_good else reading_bad) ];
        faithful
    | `No_convergence profile ->
        Table.add_row t [ label; describe profile ^ " (cycling)"; reading_bad ];
        false
  in
  let start1 = Array.make n Adversary.Faithful in
  start1.(2) <- Adversary.Miscompute_routing (-2.);
  let one = run_case "one deviant (C miscomputes)" start1
      "punishment makes honesty strictly better: falls back to the suggested spec"
      "unexpected"
  in
  let start2 = Array.make n Adversary.Faithful in
  start2.(2) <- Adversary.Silent_in_construction;
  start2.(3) <- Adversary.Silent_in_construction;
  let two = run_case "two stallers (C, D silent)" start2
      "unexpected"
      "a bad weak equilibrium: with the mechanism already stalled, no unilateral \
       switch helps"
  in
  emit t;
  print_newline ();
  verdict one
    "a single deviant is pulled back to the suggested specification (it is strictly better)";
  verdict (not two)
    "a staller coalition is a *bad* weak equilibrium inertia never leaves —";
  print_endline
    "       Remark 2's point: the suggested spec is one of several equilibria, and the";
  print_endline
    "       expectation that some nodes are simply obedient is the correlating device";
  print_endline "       that selects it"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e0", e0);
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17); ("e18", e18); ("e19", e19);
  ]

let run_selected names quick out seed =
  seed_base := seed;
  (match out with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      csv_dir := Some dir);
  let to_run =
    match names with
    | [] -> experiments
    | names ->
        List.filter_map
          (fun name ->
            match List.assoc_opt (String.lowercase_ascii name) experiments with
            | Some f -> Some (name, f)
            | None ->
                Printf.eprintf "unknown experiment %S (known: %s)\n" name
                  (String.concat " " (List.map fst experiments));
                exit 2)
          names
  in
  List.iter (fun (_, f) -> f ~quick) to_run;
  print_newline ()

open Cmdliner

let names_arg =
  let doc = "Experiments to run (e0..e19). Default: all." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let quick_arg =
  let doc = "Smaller sweeps for a fast pass." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let out_arg =
  let doc = "Also write every table as CSV into $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)

let seed_arg =
  let doc = "Re-randomize every sweep with this base seed (default 0)." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let cmd =
  let doc = "Regenerate the paper's figures, examples and theorem checks" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const run_selected $ names_arg $ quick_arg $ out_arg $ seed_arg)

let () = exit (Cmd.eval cmd)

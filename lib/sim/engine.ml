module Pqueue = Damd_util.Pqueue

type 'msg event =
  | Deliver of { src : int; dst : int; msg : 'msg }
  | Timer of (unit -> unit)

type outcome = Quiescent | Event_limit

type shaping = Pass | Lose | Delay of float

type 'msg t = {
  n : int;
  latency : src:int -> dst:int -> float;
  queue : 'msg event Pqueue.t;
  handlers : (sender:int -> 'msg -> unit) option array;
  mutable tap : (src:int -> dst:int -> 'msg -> 'msg option) option;
  mutable shaper : (src:int -> dst:int -> now:float -> 'msg -> shaping) option;
  down : bool array;
  mutable size_of : 'msg -> int;
  mutable clock : float;
  mutable processed : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable lost : int;
  mutable bytes : int;
  sent_by : int array;
  received_by : int array;
}

let create ?(latency = fun ~src:_ ~dst:_ -> 1.0) ~n () =
  if n < 0 then invalid_arg "Engine.create: negative n";
  {
    n;
    latency;
    queue = Pqueue.create ();
    handlers = Array.make n None;
    tap = None;
    shaper = None;
    down = Array.make n false;
    size_of = (fun _ -> 1);
    clock = 0.;
    processed = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    lost = 0;
    bytes = 0;
    sent_by = Array.make n 0;
    received_by = Array.make n 0;
  }

let n t = t.n

let now t = t.clock

let set_handler t i h =
  if i < 0 || i >= t.n then invalid_arg "Engine.set_handler: node out of range";
  t.handlers.(i) <- Some h

let set_tap t tap = t.tap <- Some tap

let clear_tap t = t.tap <- None

let set_shaper t shaper = t.shaper <- Some shaper

let clear_shaper t = t.shaper <- None

let set_down t i down =
  if i < 0 || i >= t.n then invalid_arg "Engine.set_down: node out of range";
  t.down.(i) <- down

let is_down t i =
  if i < 0 || i >= t.n then invalid_arg "Engine.is_down: node out of range";
  t.down.(i)

let all_up t = Array.fill t.down 0 t.n false

let set_size t f = t.size_of <- f

let send t ~src ~dst msg =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Engine.send: node out of range";
  let msg =
    match t.tap with
    | None -> Some msg
    | Some tap -> tap ~src ~dst msg
  in
  match msg with
  | None -> t.dropped <- t.dropped + 1
  | Some msg ->
      t.sent <- t.sent + 1;
      t.sent_by.(src) <- t.sent_by.(src) + 1;
      t.bytes <- t.bytes + t.size_of msg;
      (* The fault shaper runs after the (adversarial) tap: an injected
         link fault acts on whatever actually went onto the wire. Shaper
         decisions are drawn in global send order, which is deterministic
         given a deterministic protocol, so a seeded shaper keeps runs
         bit-for-bit reproducible. *)
      let shaping =
        if t.down.(src) then Lose
        else
          match t.shaper with
          | None -> Pass
          | Some shape -> shape ~src ~dst ~now:t.clock msg
      in
      (match shaping with
      | Lose -> t.lost <- t.lost + 1
      | Pass | Delay _ ->
          let extra = match shaping with Delay d -> d | _ -> 0. in
          if extra < 0. then invalid_arg "Engine.send: negative shaper delay";
          let latency = t.latency ~src ~dst in
          if latency < 0. then invalid_arg "Engine.send: negative latency";
          Pqueue.push t.queue (t.clock +. latency +. extra) (Deliver { src; dst; msg }))

let schedule t ~delay callback =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  Pqueue.push t.queue (t.clock +. delay) (Timer callback)

let run ?(max_events = 10_000_000) t =
  let budget = ref max_events in
  let rec loop () =
    (* Look at the queue before the budget: a run that went quiescent on
       exactly its last allowed event is Quiescent, not Event_limit. Only
       an exhausted budget WITH work still pending is a limit stop (the
       unpopped event stays queued, so a subsequent [run] resumes it). *)
    if Pqueue.is_empty t.queue then Quiescent
    else if !budget <= 0 then Event_limit
    else
      match Pqueue.pop t.queue with
      | None -> Quiescent
      | Some (time, event) ->
          decr budget;
          t.processed <- t.processed + 1;
          t.clock <- time;
          (match event with
          | Timer callback -> callback ()
          | Deliver { src; dst; msg } -> (
              if t.down.(dst) then t.lost <- t.lost + 1
                (* in-flight message reaching a crashed node: lost, not
                   delivered — the node's handler must not observe it *)
              else (
                t.delivered <- t.delivered + 1;
                t.received_by.(dst) <- t.received_by.(dst) + 1;
                match t.handlers.(dst) with
                | None -> () (* no handler installed: message discarded *)
                | Some h -> h ~sender:src msg)));
          loop ()
  in
  loop ()

let events_processed t = t.processed

let messages_sent t = t.sent

let messages_delivered t = t.delivered

let messages_dropped t = t.dropped

let messages_lost t = t.lost

let bytes_sent t = t.bytes

let sent_by t i = t.sent_by.(i)

let received_by t i = t.received_by.(i)

let reset_stats t =
  t.processed <- 0;
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.lost <- 0;
  t.bytes <- 0;
  Array.fill t.sent_by 0 t.n 0;
  Array.fill t.received_by 0 t.n 0

module Pqueue = Damd_util.Pqueue
module Obs = Damd_obs.Obs
module Metrics = Damd_obs.Metrics
module Json = Damd_util.Json

type 'msg event =
  | Deliver of { src : int; dst : int; msg : 'msg }
  | Timer of (unit -> unit)

type outcome = Quiescent | Event_limit

type shaping = Pass | Lose | Delay of float

type 'msg t = {
  n : int;
  latency : src:int -> dst:int -> float;
  queue : 'msg event Pqueue.t;
  handlers : (sender:int -> 'msg -> unit) option array;
  mutable tap : (src:int -> dst:int -> 'msg -> 'msg option) option;
  mutable shaper : (src:int -> dst:int -> now:float -> 'msg -> shaping) option;
  down : bool array;
  mutable size_of : 'msg -> int;
  mutable clock : float;
  mutable processed : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable lost : int;
  mutable bytes : int;
  sent_by : int array;
  received_by : int array;
  (* Observability (Damd_obs). [obs] defaults to the noop sink; the
     per-kind arrays are empty until [set_obs] installs a classifier,
     so the uninstrumented hot path pays one [None] check per send. *)
  mutable obs : Obs.t;
  mutable obs_detail : bool;
  mutable kind_of : ('msg -> int) option;
  mutable kind_names : string array;
  mutable k_sent : int array;
  mutable k_delivered : int array;
  mutable k_dropped : int array;
  mutable k_lost : int array;
  mutable shaper_losses : int;
  mutable shaper_delays : int;
  mutable queue_peak : int;
}

let create ?(latency = fun ~src:_ ~dst:_ -> 1.0) ~n () =
  if n < 0 then invalid_arg "Engine.create: negative n";
  {
    n;
    latency;
    queue = Pqueue.create ();
    handlers = Array.make n None;
    tap = None;
    shaper = None;
    down = Array.make n false;
    size_of = (fun _ -> 1);
    clock = 0.;
    processed = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    lost = 0;
    bytes = 0;
    sent_by = Array.make n 0;
    received_by = Array.make n 0;
    obs = Obs.noop;
    obs_detail = false;
    kind_of = None;
    kind_names = [||];
    k_sent = [||];
    k_delivered = [||];
    k_dropped = [||];
    k_lost = [||];
    shaper_losses = 0;
    shaper_delays = 0;
    queue_peak = 0;
  }

let n t = t.n

let now t = t.clock

let set_handler t i h =
  if i < 0 || i >= t.n then invalid_arg "Engine.set_handler: node out of range";
  t.handlers.(i) <- Some h

let set_tap t tap = t.tap <- Some tap

let clear_tap t = t.tap <- None

let set_shaper t shaper = t.shaper <- Some shaper

let clear_shaper t = t.shaper <- None

let set_down t i down =
  if i < 0 || i >= t.n then invalid_arg "Engine.set_down: node out of range";
  t.down.(i) <- down

let is_down t i =
  if i < 0 || i >= t.n then invalid_arg "Engine.is_down: node out of range";
  t.down.(i)

let all_up t = Array.fill t.down 0 t.n false

let set_size t f = t.size_of <- f

let set_obs ?(kinds = [||]) ?kind_of t obs =
  t.obs <- obs;
  t.obs_detail <- Obs.detailed obs;
  t.kind_of <- kind_of;
  t.kind_names <- kinds;
  let nk = Array.length kinds in
  t.k_sent <- Array.make nk 0;
  t.k_delivered <- Array.make nk 0;
  t.k_dropped <- Array.make nk 0;
  t.k_lost <- Array.make nk 0

let kind_index t msg =
  match t.kind_of with
  | None -> -1
  | Some f ->
      let k = f msg in
      if k < 0 || k >= Array.length t.kind_names then -1 else k

let bump a k = if k >= 0 then a.(k) <- a.(k) + 1

let kind_name t k = if k >= 0 then t.kind_names.(k) else "?"

let note_queue_peak t =
  let depth = Pqueue.length t.queue in
  if depth > t.queue_peak then t.queue_peak <- depth

let send t ~src ~dst msg =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Engine.send: node out of range";
  let original = msg in
  let msg =
    match t.tap with
    | None -> Some msg
    | Some tap -> tap ~src ~dst msg
  in
  match msg with
  | None ->
      t.dropped <- t.dropped + 1;
      bump t.k_dropped (kind_index t original)
  | Some msg ->
      t.sent <- t.sent + 1;
      t.sent_by.(src) <- t.sent_by.(src) + 1;
      t.bytes <- t.bytes + t.size_of msg;
      (* A tap may rewrite the message, so classify what actually went
         onto the wire, not what the sender handed us. *)
      let k = kind_index t msg in
      bump t.k_sent k;
      (* The fault shaper runs after the (adversarial) tap: an injected
         link fault acts on whatever actually went onto the wire. Shaper
         decisions are drawn in global send order, which is deterministic
         given a deterministic protocol, so a seeded shaper keeps runs
         bit-for-bit reproducible. *)
      let shaping =
        if t.down.(src) then Lose
        else
          match t.shaper with
          | None -> Pass
          | Some shape ->
              let s = shape ~src ~dst ~now:t.clock msg in
              (match s with
              | Lose -> t.shaper_losses <- t.shaper_losses + 1
              | Delay _ -> t.shaper_delays <- t.shaper_delays + 1
              | Pass -> ());
              s
      in
      if t.obs_detail then
        Obs.instant t.obs ~cat:"engine"
          ~args:
            [
              ("src", Json.Int src);
              ("dst", Json.Int dst);
              ("kind", Json.String (kind_name t k));
              ( "shaping",
                Json.String
                  (match shaping with
                  | Pass -> "pass"
                  | Lose -> if t.down.(src) then "down-src" else "lose"
                  | Delay _ -> "delay") );
              ("sim_t", Json.Float t.clock);
            ]
          "send";
      (match shaping with
      | Lose ->
          t.lost <- t.lost + 1;
          bump t.k_lost k
      | Pass | Delay _ ->
          let extra = match shaping with Delay d -> d | _ -> 0. in
          if extra < 0. then invalid_arg "Engine.send: negative shaper delay";
          let latency = t.latency ~src ~dst in
          if latency < 0. then invalid_arg "Engine.send: negative latency";
          Pqueue.push t.queue (t.clock +. latency +. extra)
            (Deliver { src; dst; msg });
          note_queue_peak t)

let schedule t ~delay callback =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  Pqueue.push t.queue (t.clock +. delay) (Timer callback);
  note_queue_peak t

let run ?(max_events = 10_000_000) t =
  let budget = ref max_events in
  let rec loop () =
    (* Look at the queue before the budget: a run that went quiescent on
       exactly its last allowed event is Quiescent, not Event_limit. Only
       an exhausted budget WITH work still pending is a limit stop (the
       unpopped event stays queued, so a subsequent [run] resumes it). *)
    if Pqueue.is_empty t.queue then Quiescent
    else if !budget <= 0 then Event_limit
    else
      match Pqueue.pop t.queue with
      | None -> Quiescent
      | Some (time, event) ->
          decr budget;
          t.processed <- t.processed + 1;
          t.clock <- time;
          (* Queue-depth gauge, sampled every 64 events to keep the
             trace volume proportional to the run, not the queue. *)
          if Obs.enabled t.obs && t.processed land 63 = 0 then
            Obs.sample t.obs "engine.queue_depth"
              (float_of_int (Pqueue.length t.queue));
          (match event with
          | Timer callback -> callback ()
          | Deliver { src; dst; msg } -> (
              let k = kind_index t msg in
              if t.down.(dst) then begin
                t.lost <- t.lost + 1;
                bump t.k_lost k;
                (* in-flight message reaching a crashed node: lost, not
                   delivered — the node's handler must not observe it *)
                if t.obs_detail then
                  Obs.instant t.obs ~cat:"engine"
                    ~args:
                      [
                        ("src", Json.Int src);
                        ("dst", Json.Int dst);
                        ("kind", Json.String (kind_name t k));
                        ("sim_t", Json.Float t.clock);
                      ]
                    "lose.down-dst"
              end
              else begin
                t.delivered <- t.delivered + 1;
                t.received_by.(dst) <- t.received_by.(dst) + 1;
                bump t.k_delivered k;
                if t.obs_detail then
                  Obs.instant t.obs ~cat:"engine"
                    ~args:
                      [
                        ("src", Json.Int src);
                        ("dst", Json.Int dst);
                        ("kind", Json.String (kind_name t k));
                        ("sim_t", Json.Float t.clock);
                      ]
                    "deliver";
                match t.handlers.(dst) with
                | None -> () (* no handler installed: message discarded *)
                | Some h -> h ~sender:src msg
              end));
          loop ()
  in
  loop ()

let events_processed t = t.processed

let messages_sent t = t.sent

let messages_delivered t = t.delivered

let messages_dropped t = t.dropped

let messages_lost t = t.lost

let bytes_sent t = t.bytes

let sent_by t i = t.sent_by.(i)

let received_by t i = t.received_by.(i)

let shaper_losses t = t.shaper_losses

let shaper_delays t = t.shaper_delays

let queue_peak t = t.queue_peak

let obs t = t.obs

let kind_stats t =
  List.init (Array.length t.kind_names) (fun k ->
      (t.kind_names.(k), t.k_sent.(k), t.k_delivered.(k), t.k_dropped.(k),
       t.k_lost.(k)))

let obs_metrics ?(prefix = "engine") t reg =
  let c name v =
    Metrics.set_counter (Metrics.counter reg (prefix ^ "." ^ name)) v
  in
  c "events_processed" t.processed;
  c "messages_sent" t.sent;
  c "messages_delivered" t.delivered;
  c "messages_dropped" t.dropped;
  c "messages_lost" t.lost;
  c "bytes_sent" t.bytes;
  c "shaper_losses" t.shaper_losses;
  c "shaper_delays" t.shaper_delays;
  Metrics.set
    (Metrics.gauge reg (prefix ^ ".queue_peak"))
    (float_of_int t.queue_peak);
  List.iter
    (fun (name, s, d, dr, l) ->
      c (Printf.sprintf "sent.%s" name) s;
      c (Printf.sprintf "delivered.%s" name) d;
      c (Printf.sprintf "dropped.%s" name) dr;
      c (Printf.sprintf "lost.%s" name) l)
    (kind_stats t)

let zero a = Array.fill a 0 (Array.length a) 0

let reset_stats t =
  t.processed <- 0;
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  t.lost <- 0;
  t.bytes <- 0;
  Array.fill t.sent_by 0 t.n 0;
  Array.fill t.received_by 0 t.n 0;
  t.shaper_losses <- 0;
  t.shaper_delays <- 0;
  t.queue_peak <- 0;
  zero t.k_sent;
  zero t.k_delivered;
  zero t.k_dropped;
  zero t.k_lost

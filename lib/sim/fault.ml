module Rng = Damd_util.Rng
module Obs = Damd_obs.Obs
module Json = Damd_util.Json

type phase_tag = [ `Costs | `Routing | `Pricing ]

type link = { loss_p : float; reorder_p : float; reorder_delay : float }

type partition = { island : int list; part_phase : phase_tag; at : float; heals_at : float }

type crash = { node : int; crash_phase : phase_tag; at : float; recovers_at : float }

type spec = {
  seed : int;
  link : link option;
  partition : partition option;
  crash : crash option;
}

let none = { seed = 0; link = None; partition = None; crash = None }

let is_none s = s.link = None && s.partition = None && s.crash = None

let phase_name = function `Costs -> "costs" | `Routing -> "routing" | `Pricing -> "pricing"

let validate ~n s =
  let check_p what p =
    if p < 0. || p > 1. then invalid_arg (Printf.sprintf "Fault: %s out of [0,1]" what)
  in
  (match s.link with
  | None -> ()
  | Some l ->
      check_p "loss_p" l.loss_p;
      check_p "reorder_p" l.reorder_p;
      if l.reorder_delay < 0. then invalid_arg "Fault: negative reorder_delay");
  (match s.partition with
  | None -> ()
  | Some p ->
      if p.at < 0. || p.heals_at < p.at then invalid_arg "Fault: bad partition window";
      List.iter
        (fun i -> if i < 0 || i >= n then invalid_arg "Fault: island node out of range")
        p.island);
  match s.crash with
  | None -> ()
  | Some c ->
      if c.node < 0 || c.node >= n then invalid_arg "Fault: crash node out of range";
      if c.at < 0. || c.recovers_at < c.at then invalid_arg "Fault: bad crash window"

type control = {
  spec : spec;
  mutable active : bool;
  (* materialized when the anchoring phase arms, absolute sim time *)
  mutable partition_window : (float * float) option;
  mutable armed : phase_tag list;
}

let active c = c.active

let install engine spec =
  let n = Engine.n engine in
  validate ~n spec;
  let control = { spec; active = true; partition_window = None; armed = [] } in
  let island = Array.make n false in
  (match spec.partition with
  | None -> ()
  | Some p -> List.iter (fun i -> island.(i) <- true) p.island);
  let rng = Rng.create spec.seed in
  (* One shaper covers both the seeded link distribution and the
     partition window: partition losses are decided first and draw
     nothing from the stream, so the link-fault realization is invariant
     under adding or removing a partition with the same seed. *)
  (match (spec.link, spec.partition) with
  | None, None -> ()
  | _ ->
      Engine.set_shaper engine (fun ~src ~dst ~now _msg ->
          if not control.active then Engine.Pass
          else
            let partitioned =
              match control.partition_window with
              | Some (from_t, heals_at) when now >= from_t && now < heals_at ->
                  island.(src) <> island.(dst)
              | _ -> false
            in
            if partitioned then Engine.Lose
            else
              match spec.link with
              | None -> Engine.Pass
              | Some l ->
                  if l.loss_p > 0. && Rng.bernoulli rng l.loss_p then Engine.Lose
                  else if l.reorder_p > 0. && Rng.bernoulli rng l.reorder_p then
                    Engine.Delay (Rng.float rng l.reorder_delay)
                  else Engine.Pass));
  control

let arm ?(on_crash = fun _ -> ()) ?(on_recover = fun _ -> ()) engine control ~phase =
  (* Crash and partition instants are offsets *within their anchoring
     phase*: a quiescing phase drains the whole event queue, so timers
     scheduled in absolute time at install would all fire during the
     first phase. Arming at phase start schedules them relative to the
     current clock — mid-phase, inside this phase's drain. Each anchor
     fires on the phase's first attempt only: a bank-ordered restart of
     the phase re-runs it fault-free, which is exactly the recovery
     story the graceful-degradation grading expects. *)
  if control.active && not (List.mem phase control.armed) then begin
    control.armed <- phase :: control.armed;
    let obs = Engine.obs engine in
    let fault_instant name args =
      if Obs.enabled obs then
        Obs.instant obs ~cat:"fault"
          ~args:(("sim_t", Json.Float (Engine.now engine)) :: args)
          name
    in
    let now = Engine.now engine in
    (match control.spec.partition with
    | Some p when p.part_phase = phase ->
        control.partition_window <- Some (now +. p.at, now +. p.heals_at);
        fault_instant "fault.arm.partition"
          [
            ("phase", Json.String (phase_name phase));
            ("at", Json.Float p.at);
            ("heals_at", Json.Float p.heals_at);
            ("island", Json.List (List.map (fun i -> Json.Int i) p.island));
          ];
        (* window-pinning timers keep the drain alive past the heal
           instant even when no other event is queued; with a sink
           installed they double as partition open/heal marks *)
        Engine.schedule engine ~delay:p.at (fun () ->
            fault_instant "fault.partition.open" []);
        Engine.schedule engine ~delay:p.heals_at (fun () ->
            fault_instant "fault.partition.heal" [])
    | _ -> ());
    match control.spec.crash with
    | Some c when c.crash_phase = phase ->
        fault_instant "fault.arm.crash"
          [
            ("phase", Json.String (phase_name phase));
            ("node", Json.Int c.node);
            ("at", Json.Float c.at);
            ("recovers_at", Json.Float c.recovers_at);
          ];
        Engine.schedule engine ~delay:c.at (fun () ->
            if control.active then begin
              Engine.set_down engine c.node true;
              fault_instant "fault.crash" [ ("node", Json.Int c.node) ];
              on_crash c.node
            end);
        Engine.schedule engine ~delay:c.recovers_at (fun () ->
            if control.active && Engine.is_down engine c.node then begin
              Engine.set_down engine c.node false;
              fault_instant "fault.recover" [ ("node", Json.Int c.node) ];
              on_recover c.node
            end)
    | _ -> ()
  end

let deactivate engine control =
  control.active <- false;
  Engine.clear_shaper engine;
  Engine.all_up engine

(** Deterministic discrete-event network simulator.

    The substrate the distributed mechanisms run on. Nodes are integers
    [0..n-1]; each has a message handler installed by the protocol layer.
    Delivery events carry a user-defined message type; per-link latency is
    pluggable (default: constant 1.0, which makes the execution round-like
    and matches the synchronous model of the FPSS/Griffin–Wilfong
    analysis). Ties are broken by send order, so runs are fully
    deterministic — a property the reproducibility of every experiment in
    this repository rests on.

    FIFO guarantee: messages between a given (src, dst) pair are delivered
    in send order provided the latency function is constant per link (the
    scheduler breaks equal-time ties by insertion order, and constant
    per-link latency keeps timestamps monotone per link).

    Determinism guarantee: equal-time events — across *all* links and
    timers, not just within one link — are processed in the exact order
    they were enqueued. The backing [Damd_util.Pqueue] stamps every entry
    with a monotonically increasing sequence number and orders ties by it,
    so two runs fed the same sends produce byte-identical delivery traces
    even under perturbed (jittered/duplicated) schedules. The gauntlet's
    seed-replay machinery rests on this.

    The paper's adversaries are *rational nodes*, i.e. deviant handlers —
    they simply send different messages — so deviation needs no special
    engine support. The [tap] hook exists for instrumentation and for
    injecting classic channel faults in tests (drop/corrupt), not for
    modelling rationality.

    Schedule coverage: because equal-time ties are the only scheduling
    freedom, the set of delivery orders this engine can ever produce (over
    all jitter/duplication perturbations) is exactly the set of
    interleavings of equal-timestamp events. [Damd_speccheck.Explore]
    exploits that: its product-space BFS branches on which node steps
    next, so a property verified over the explored graph holds for every
    schedule this engine can serialize — the exploration is the
    schedule-universal counterpart of one concrete run here. *)

type 'msg t

type outcome =
  | Quiescent  (** event queue drained — the network converged *)
  | Event_limit  (** stopped after [max_events] deliveries *)

type shaping =
  | Pass  (** deliver normally *)
  | Lose  (** silently lose the message (counted in [messages_lost]) *)
  | Delay of float  (** add this much to the link latency (must be >= 0) *)

val create : ?latency:(src:int -> dst:int -> float) -> n:int -> unit -> 'msg t
(** A fresh engine with [n] nodes, no handlers, empty queue, time 0. *)

val n : 'msg t -> int

val now : 'msg t -> float
(** Current simulation time. *)

val set_handler : 'msg t -> int -> (sender:int -> 'msg -> unit) -> unit
(** Install node [i]'s message handler. Handlers typically close over the
    engine and call [send] to emit messages. *)

val set_tap : 'msg t -> (src:int -> dst:int -> 'msg -> 'msg option) -> unit
(** Interpose on every send: return [None] to drop the message, [Some m']
    to (possibly) rewrite it. At most one tap; [clear_tap] removes it. *)

val clear_tap : 'msg t -> unit

val set_shaper :
  'msg t -> (src:int -> dst:int -> now:float -> 'msg -> shaping) -> unit
(** Environment fault hook, distinct from the tap: the tap models a
    *node's* deviation (it can rewrite payloads), the shaper models the
    *network* (it can only lose or delay what was actually sent). The
    shaper runs after the tap, once per send, in global send order — so a
    shaper driven by a seeded [Damd_util.Rng] makes the fault realization
    a pure function of (seed, protocol behavior) and runs stay
    bit-for-bit reproducible. Equal-timestamp ties among delayed messages
    are still broken by enqueue order (see the determinism guarantee
    above), so link faults never introduce scheduling nondeterminism.
    At most one shaper; [clear_shaper] removes it. [Delay] composes with
    link latency additively; note a positive delay can reorder messages
    *within* a link, which is exactly the reordering fault model. *)

val clear_shaper : 'msg t -> unit

val set_down : 'msg t -> int -> bool -> unit
(** Crash-stop a node (or bring it back). While down, a node neither
    sends ([send] with a down [src] loses the message) nor receives —
    in-flight messages reaching it at delivery time are lost, matching
    the fail-stop model where a crash forfeits the channel contents.
    Handlers and node state are untouched: recovery is the protocol
    layer's job (table handoff in [Damd_faithful.Runner]). *)

val is_down : 'msg t -> int -> bool

val all_up : 'msg t -> unit
(** Clear every down flag (end of a fault campaign's injection window). *)

val set_size : 'msg t -> ('msg -> int) -> unit
(** Message-size model for byte accounting (default: every message is one
    byte). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueue a delivery event at [now + latency src dst]. Self-sends are
    allowed (delivered like any other message). *)

val schedule : 'msg t -> delay:float -> (unit -> unit) -> unit
(** Enqueue a timer callback. [delay] must be non-negative. *)

val run : ?max_events:int -> 'msg t -> outcome
(** Process events in time order until the queue drains or [max_events]
    (default [10_000_000]) events have been processed. The queue is
    consulted before the budget, so a run whose queue drains on exactly its
    last allowed event is [Quiescent]; [Event_limit] means events remain
    pending (they stay queued, so a subsequent [run] resumes them). May be
    called again after new sends — the faithful protocol alternates
    [run]-to-quiescence with bank checkpoints. *)

val events_processed : 'msg t -> int
(** Events (deliveries and timers) processed since the last [reset_stats]
    (or creation). Zeroed by [reset_stats] along with the other counters,
    so warm-start epochs do not silently mix: each phase's
    [events_processed] is a schedule-length fingerprint for that phase
    alone. *)

(** Accounting, reset with [reset_stats]. *)

val messages_sent : 'msg t -> int
val messages_delivered : 'msg t -> int
val messages_dropped : 'msg t -> int
(** Dropped by the tap. *)

val messages_lost : 'msg t -> int
(** Lost to injected faults: shaper [Lose] decisions plus messages sent
    by or delivered to a down node. Kept separate from [messages_dropped]
    so adversarial drops and environment faults stay distinguishable in
    the accounting. *)

val bytes_sent : 'msg t -> int
val sent_by : 'msg t -> int -> int
(** Messages sent by a given node. *)

val received_by : 'msg t -> int -> int

val shaper_losses : 'msg t -> int
(** Shaper [Lose] decisions (a subset of [messages_lost]: down-node
    losses are not shaper decisions). *)

val shaper_delays : 'msg t -> int
(** Shaper [Delay] decisions. *)

val queue_peak : 'msg t -> int
(** High-water mark of the event queue since the last [reset_stats]. *)

val reset_stats : 'msg t -> unit
(** Zero every counter above — including the per-kind counters,
    shaper-decision counts and queue peak read by the obs layer. *)

(** {2 Observability}

    The engine carries a [Damd_obs.Obs] sink (default
    [Damd_obs.Obs.noop]). With a sink installed, the run loop samples a
    queue-depth counter track, and — when the sink was created with
    [~detail:true] — emits a per-message instant for every send,
    delivery and loss (with src/dst/kind/shaping args), which is the raw
    material of a forensic timeline. A [kind_of] classifier additionally
    maintains per-message-kind sent/delivered/dropped/lost counters.
    None of this perturbs the simulation: no RNG is consulted and no
    event ordering changes. *)

val set_obs :
  ?kinds:string array ->
  ?kind_of:('msg -> int) ->
  'msg t ->
  Damd_obs.Obs.t ->
  unit
(** Install a sink and (optionally) a message-kind classifier mapping
    each message to an index into [kinds]. Out-of-range indices are
    counted as kindless. Installs fresh (zeroed) per-kind counters. *)

val obs : 'msg t -> Damd_obs.Obs.t

val kind_stats : 'msg t -> (string * int * int * int * int) list
(** Per-kind [(name, sent, delivered, dropped, lost)] in [kinds] order;
    [[]] until [set_obs] installs a classifier. *)

val obs_metrics : ?prefix:string -> 'msg t -> Damd_obs.Metrics.t -> unit
(** Snapshot every engine counter (totals, shaper decisions, queue peak
    and per-kind counts) into a metrics registry under the
    [<prefix>.*] namespace (default ["engine"]) — callers that
    [reset_stats] between epochs can snapshot each epoch under its own
    prefix. *)

(** Seeded fault injection for the engine: the benign-failure models the
    rational-deviation gauntlet composes with.

    The paper's catch-and-punish analysis assumes reliable links; this
    module supplies the environments that assumption excludes — per-link
    stochastic loss and reordering, a network partition that heals at a
    scheduled time, and fail-stop crash/recover — so the checker
    evidence model can be tested for *blame correctness*: a fault must
    degrade progress (restarts, eventually a stuck phase), never produce
    an accusation against an honest node.

    Everything is driven by one integer seed through [Damd_util.Rng], so
    a fault schedule is pure data: the same [spec] against the same
    protocol run reproduces the same losses, delays and crash instants
    bit-for-bit — which is what lets gauntlet campaigns with faults stay
    replayable from their seed alone. *)

type phase_tag = [ `Costs | `Routing | `Pricing ]
(** Which construction phase a windowed fault anchors to. Window
    instants are offsets from that phase's start: a quiescing phase
    drains the whole event queue, so absolute-time timers would all fire
    during the first phase — anchoring is what makes "crash mid-phase
    2a" expressible. *)

type link = {
  loss_p : float;  (** per-message loss probability *)
  reorder_p : float;  (** probability of an extra random delay *)
  reorder_delay : float;  (** max extra delay, uniform in [0, reorder_delay) *)
}

type partition = {
  island : int list;  (** one side of the cut *)
  part_phase : phase_tag;
  at : float;  (** window start, offset from the anchoring phase's start *)
  heals_at : float;  (** messages cross again from this offset *)
}

type crash = {
  node : int;
  crash_phase : phase_tag;
  at : float;  (** fail-stop offset from the anchoring phase's start *)
  recovers_at : float;  (** node rejoins; protocol-level handoff applies *)
}

type spec = {
  seed : int;
  link : link option;
  partition : partition option;
  crash : crash option;
}

val none : spec
(** No faults (all components [None], seed 0). *)

val is_none : spec -> bool

val phase_name : phase_tag -> string

type control
(** Handle over an installed schedule; lets the protocol layer arm
    phase-anchored windows and end the injection. *)

val install : 'msg Engine.t -> spec -> control
(** Validate the spec and install the seeded shaper (link loss/reorder
    plus the partition window once armed). Windowed components do
    nothing until [arm]ed by their anchoring phase. Raises
    [Invalid_argument] on malformed probabilities, windows or node
    ids. *)

val arm :
  ?on_crash:(int -> unit) ->
  ?on_recover:(int -> unit) ->
  'msg Engine.t ->
  control ->
  phase:phase_tag ->
  unit
(** Called by the runner at a construction phase's start: schedules the
    crash/recover timers and materializes the partition window for the
    components anchored to [phase], relative to the current clock.
    Fires on the phase's *first* attempt only — a bank-ordered restart
    re-runs the phase without re-injecting, which is the recovery the
    graceful-degradation grading expects. [on_recover] is where the
    runner performs table handoff. *)

val deactivate : 'msg Engine.t -> control -> unit
(** End the injection window: clears the shaper, revives down nodes and
    turns still-pending timers into no-ops. The runner calls this when
    construction ends — execution-phase packet loss is the §5
    omission-failure model ([Runner.channel_loss]), graded separately,
    so fault campaigns keep Definition-8 utility deltas attributable to
    the deviant rather than to fault-realization noise. *)

val active : control -> bool

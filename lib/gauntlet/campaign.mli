(** Randomized adversarial campaigns — the empirical Theorem 1 gauntlet.

    A {e campaign} is one fully-specified adversarial scenario: a sampled
    biconnected topology, one or more deviations from the manipulation
    catalogue (including multi-node profiles and [Collude_with]
    coalitions) seated on sampled principals, and a perturbed event
    schedule (latency jitter, duplicate deliveries, bounded checker-copy
    drops). The campaign runs end-to-end through [Faithful.Runner] and is
    graded against the centralized VCG oracle ([Fpss.Pricing.compute])
    with an explicit verdict:

    - {e detected}: the construction never certified (the restart
      machinery starved the deviation), or a bank detection attributed a
      deviant by name;
    - {e undetected-but-unprofitable}: the run certified, no detection
      named a deviant, and no deviant improved its own utility over the
      unilateral baseline (same campaign with only that deviant reverted
      to [Faithful] — the ex post Nash comparison of Definition 8);
    - {e faithfulness violation}: a deviant escaped detection AND either
      profited (utility delta above tolerance, "profit") or left the
      certified tables disagreeing with the VCG oracle on the declared
      costs ("integrity").

    Every campaign is a pure function of a single integer seed, so any
    verdict replays bit-for-bit; failing campaigns are minimized by a
    greedy shrinker before reporting. Theorem 1 predicts zero violations
    on the stock mechanism; the [weaken] switches disable individual bank
    checkpoints to prove the verdict oracle has teeth. *)

module Adversary := Damd_faithful.Adversary
module Runner := Damd_faithful.Runner

type topology =
  | Mesh of int * int  (** rows x cols grid, no wrap (both >= 2) *)
  | Torus of int * int  (** rows x cols with wrap (both >= 3) *)
  | Chordal of int * int  (** n-cycle plus this many random chords *)
  | Er of int * float  (** G(n, p), repaired to biconnectivity *)

val topology_n : topology -> int
val topology_name : topology -> string

type descr = {
  seed : int;  (** the campaign's replay seed ([of_seed seed] = this) *)
  topology : topology;
  graph_seed : int;  (** drives cost draw and random wiring *)
  traffic_rate : float;  (** uniform all-pairs demand *)
  deviants : (int * Adversary.t) list;  (** sorted by node id *)
  perturb : Runner.perturb;
  fault : Damd_sim.Fault.spec option;
      (** seeded mixed-failure schedule ([None] on stock campaigns) *)
}
(** A fully explicit campaign description. [of_seed] produces one from a
    seed; the shrinker mutates it directly (at which point it no longer
    equals any [of_seed] output and is reported in full). *)

type mix = {
  faults : bool;
      (** sample a mixed-failure schedule (link loss/reorder, healing
          partition, crash/recover) for every campaign, occasionally
          promote a deviant to [Adversary.Byzantine_arbitrary], and run
          the bank's checkpoints in fault-tolerant evidence mode *)
  epsilon : float option;
      (** wrap every sampled deviant in [Adversary.Epsilon_rational]
          with this activation threshold *)
}
(** Mixed-failure campaign configuration. With [stock] the sampler, the
    runs and the JSON are bit-for-bit the historical (faults-free)
    gauntlet; all mixed-mode seed draws happen strictly after the stock
    draws. *)

val stock : mix

val is_stock : mix -> bool

type weaken = No_weaken | Weaken_pricing | Weaken_settlement | Weaken_all
(** Deliberate bank sabotage for oracle-validation runs: skip the BANK2
    pricing-hash comparison, skip verified execution clearing, or disable
    checking entirely. *)

val weaken_name : weaken -> string
val weaken_of_string : string -> weaken option

type verdict = Detected | Undetected_unprofitable | Violation

val verdict_name : verdict -> string

type graded = {
  descr : descr;
  verdict : verdict;
  violation_kind : string option;
      (** ["profit"], ["integrity"] or ["false-accusation"] (a bank
          detection named a node whose resolved behavior was faithful —
          the blame-correctness failure fault campaigns assert never
          happens) *)
  epsilon_active : (int * bool) list;
      (** per ε-rational deviant: did its measured unilateral gain exceed
          its threshold, i.e. did the inner deviation actually run? *)
  completed : bool;
  stuck_phase : string option;
  detected_in : string option;
      (** the detection round: the stuck phase name, or the rule
          ("BANK1", "EXEC", ...) of the first detection naming a
          deviant *)
  restarts : int;
  detections : (string * int option) list;  (** (rule, culprit) *)
  deltas : (int * float) list;
      (** per-deviant unilateral utility delta; [[]] when the run never
          certified (everyone just eats the progress penalty) *)
  max_delta : float option;
  tables_match : bool option;
      (** certified tables vs [Pricing.compute] on the declared-cost
          graph; [None] when the construction never certified *)
  sim_time : float;
}

val of_seed : ?mix:mix -> int -> descr
(** Deterministically sample a campaign from its seed (and the mix
    configuration: replaying a mixed campaign requires the same [mix]
    flags alongside the seed). Invariants: the
    topology is biconnected; between 1 and 3 deviants (a coalition counts
    its colluders); every checker-caught deviant keeps at least one
    honest neighbor, so sampled coalitions never cover a full
    neighborhood — full-cover escapes are the documented boundary of the
    paper's no-collusion assumption, not a mechanism failure
    ([Adversary.detectable_in] enforces the scope). *)

val graph_of : descr -> Damd_graph.Graph.t
(** Rebuild the campaign's graph (pure in [topology] and [graph_seed];
    asserts biconnectivity). *)

val grade : ?weaken:weaken -> ?obs:Damd_obs.Obs.t -> descr -> graded
(** Run the campaign and every needed unilateral baseline, and pronounce
    the verdict. Deterministic: byte-identical [graded] (and JSON) for
    equal inputs. With [obs] (default noop — zero overhead) the whole
    grade runs under a ["campaign"] span, the campaign's own run (not the
    ε-resolution or unilateral-baseline counterfactuals) is traced through
    [Runner], and a final ["verdict"] instant records the outcome. *)

val shrink : ?weaken:weaken -> ?max_grades:int -> graded -> graded
(** Greedy minimization of a [Violation] campaign: repeatedly try
    dropping one deviant, zeroing drops, duplication and jitter, and
    shrinking the topology one step — keeping any mutation that still
    grades [Violation] — until a fixpoint or the [max_grades] re-grade
    budget (default 60). Identity on non-violations. *)

val campaign_seed : master:int -> int -> int
(** [campaign_seed ~master i] is the replay seed printed for campaign [i]
    of a batch run with master seed [master] (an [Rng.fork] derivation:
    independent of every other index). *)

val run_batch :
  ?weaken:weaken ->
  ?mix:mix ->
  ?obs:Damd_obs.Obs.t ->
  campaigns:int ->
  seed:int ->
  unit ->
  graded list
(** Grade campaigns [0 .. campaigns-1] derived from the master seed. [obs]
    is threaded to every [grade], producing one campaign span + verdict
    instant per seed — the per-campaign verdict timeline. *)

val json_of_graded : graded -> Damd_util.Json.t
(** One campaign as JSON — also exactly what [--replay] prints. *)

val report :
  ?shrunk:graded list -> weaken:weaken -> seed:int -> graded list -> Damd_util.Json.t
(** The gauntlet report: config, per-verdict summary counts, every
    campaign ([json_of_graded]), and minimized violations. Schema is
    [damd-gauntlet/1] — byte-identical to the historical format — unless
    some campaign carries a fault schedule or ε-agents, in which case it
    is [damd-gauntlet/2] (same shape plus the per-campaign [fault] /
    [epsilon_active] fields). *)

module Rng = Damd_util.Rng
module Json = Damd_util.Json
module Graph = Damd_graph.Graph
module Gen = Damd_graph.Gen
module Biconnect = Damd_graph.Biconnect
module Traffic = Damd_fpss.Traffic
module Pricing = Damd_fpss.Pricing
module Tables = Damd_fpss.Tables
module Adversary = Damd_faithful.Adversary
module Runner = Damd_faithful.Runner
module Bank = Damd_faithful.Bank
module Fault = Damd_sim.Fault
module Obs = Damd_obs.Obs

type topology =
  | Mesh of int * int
  | Torus of int * int
  | Chordal of int * int
  | Er of int * float

let topology_n = function
  | Mesh (r, c) | Torus (r, c) -> r * c
  | Chordal (n, _) | Er (n, _) -> n

let topology_name = function
  | Mesh (r, c) -> Printf.sprintf "mesh:%dx%d" r c
  | Torus (r, c) -> Printf.sprintf "torus:%dx%d" r c
  | Chordal (n, k) -> Printf.sprintf "chordal:%d:%d" n k
  | Er (n, p) -> Printf.sprintf "er:%d:%g" n p

type descr = {
  seed : int;
  topology : topology;
  graph_seed : int;
  traffic_rate : float;
  deviants : (int * Adversary.t) list;
  perturb : Runner.perturb;
  fault : Fault.spec option;
}

type mix = { faults : bool; epsilon : float option }

let stock = { faults = false; epsilon = None }

let is_stock m = m = stock

type weaken = No_weaken | Weaken_pricing | Weaken_settlement | Weaken_all

let weaken_name = function
  | No_weaken -> "none"
  | Weaken_pricing -> "pricing"
  | Weaken_settlement -> "settlement"
  | Weaken_all -> "all"

let weaken_of_string = function
  | "none" -> Some No_weaken
  | "pricing" -> Some Weaken_pricing
  | "settlement" -> Some Weaken_settlement
  | "all" -> Some Weaken_all
  | _ -> None

type verdict = Detected | Undetected_unprofitable | Violation

let verdict_name = function
  | Detected -> "detected"
  | Undetected_unprofitable -> "undetected-unprofitable"
  | Violation -> "violation"

type graded = {
  descr : descr;
  verdict : verdict;
  violation_kind : string option;
  epsilon_active : (int * bool) list;
  completed : bool;
  stuck_phase : string option;
  detected_in : string option;
  restarts : int;
  detections : (string * int option) list;
  deltas : (int * float) list;
  max_delta : float option;
  tables_match : bool option;
  sim_time : float;
}

let cost_model = Gen.Uniform_int (1, 9)

let graph_of descr =
  let rng = Rng.create descr.graph_seed in
  let g =
    match descr.topology with
    | Mesh (r, c) ->
        Gen.grid ~rows:r ~cols:c ~costs:(Gen.draw_costs rng cost_model (r * c))
    | Torus (r, c) ->
        Gen.torus ~rows:r ~cols:c ~costs:(Gen.draw_costs rng cost_model (r * c))
    | Chordal (n, k) -> Gen.chordal_ring rng ~n ~chords:k cost_model
    | Er (n, p) -> Gen.erdos_renyi rng ~n ~p cost_model
  in
  assert (Biconnect.is_biconnected g);
  g

let seed_bits rng = Int64.to_int (Rng.bits64 rng) land max_int

(* Construction deviations a coalition meaningfully shields (caught via
   the principal's own checkers) — the menu for sampled coalitions. *)
let coalition_menu =
  [
    Adversary.Miscompute_routing (-2.);
    Adversary.Miscompute_routing 2.;
    Adversary.Miscompute_pricing 2.;
    Adversary.Corrupt_routing_copies 2.;
    Adversary.Corrupt_pricing_copies 2.;
    Adversary.Spoof_routing_update 3.;
    Adversary.Combined_routing_attack 2.;
  ]

(* Theorem-1 scope enforcement: the paper's guarantee is "ex post Nash
   without collusion"; a profile where lying checkers/colluders happen to
   cover a deviant's whole neighborhood escapes by design (experiment
   E14), so the sampler must never emit one. Demote colluding neighbors
   to Faithful (smallest id first) until [Adversary.detectable_in] agrees
   every isolated-detectable deviant is still caught in the full
   profile. *)
let enforce_scope g deviants =
  let n = Graph.n g in
  let profile = Array.make n Adversary.Faithful in
  List.iter (fun (i, d) -> profile.(i) <- d) deviants;
  let neighbors = Graph.neighbors g in
  List.iter
    (fun (i, d) ->
      if Adversary.detectable d then
        while not (Adversary.detectable_in ~neighbors ~profile i) do
          match
            List.find_opt
              (fun c -> Adversary.colluding profile.(c) ~principal:i)
              (neighbors i)
          with
          | Some c -> profile.(c) <- Adversary.Faithful
          | None ->
              (* not shieldable by neighbors at all (checker_caught is
                 false): nothing to demote, the predicate cannot change *)
              raise Exit
        done)
    deviants;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if profile.(i) <> Adversary.Faithful then out := (i, profile.(i)) :: !out
  done;
  !out

let enforce_scope g deviants =
  try enforce_scope g deviants with Exit -> deviants

let of_seed ?(mix = stock) seed =
  let rng = Rng.create seed in
  let topology =
    match Rng.int rng 4 with
    | 0 -> Mesh (Rng.int_in rng 3 4, Rng.int_in rng 3 4)
    | 1 -> Torus (3, Rng.int_in rng 3 4)
    | 2 -> Chordal (Rng.int_in rng 8 12, Rng.int_in rng 2 4)
    | _ -> Er (Rng.int_in rng 8 12, 0.3 +. (0.05 *. float_of_int (Rng.int rng 5)))
  in
  let graph_seed = seed_bits rng in
  let traffic_rate = Rng.sample rng [| 0.5; 1.; 2. |] in
  let perturb =
    {
      Runner.jitter = Rng.sample rng [| 0.; 0.2; 0.4 |];
      dup_p = Rng.sample rng [| 0.; 0.05; 0.1 |];
      drop_p = 0.5;
      drop_budget = (if Rng.bernoulli rng 0.25 then Rng.int_in rng 1 2 else 0);
      perturb_seed = seed_bits rng;
    }
  in
  let perturb =
    if perturb.Runner.drop_budget = 0 then { perturb with Runner.drop_p = 0. }
    else perturb
  in
  let descr0 =
    { seed; topology; graph_seed; traffic_rate; deviants = []; perturb; fault = None }
  in
  let g = graph_of descr0 in
  let n = Graph.n g in
  let deviants =
    if Rng.bernoulli rng 0.3 then begin
      (* A coalition: one principal with a checker-caught construction
         deviation, shielded by a strict subset of its neighbors. *)
      let p = Rng.int rng n in
      let d = Rng.choose rng coalition_menu in
      let nbrs = Array.of_list (Graph.neighbors g p) in
      Rng.shuffle rng nbrs;
      let deg = Array.length nbrs in
      (* strict neighbor subset, capped so campaigns stay 1..3 deviants
         (each deviant costs one unilateral baseline run when grading) *)
      let k = if deg <= 1 then 0 else Rng.int_in rng 1 (min 2 (deg - 1)) in
      (p, d)
      :: List.init k (fun j -> (nbrs.(j), Adversary.Collude_with p))
    end
    else begin
      let ndev = Rng.int_in rng 1 (min 3 (n - 1)) in
      let nodes = Rng.subset rng ndev n in
      List.map (fun v -> (v, Rng.choose rng Adversary.library)) nodes
    end
  in
  (* Mixed-mode draws come strictly after every stock draw, so with
     [mix = stock] the sampler is bit-for-bit the historical one. *)
  let deviants =
    if mix.faults && Rng.bernoulli rng 0.3 then
      (* promote one deviant to a fail-arbitrary peer (fixed seeded plan) *)
      match deviants with
      | (i, _) :: rest -> (i, Adversary.Byzantine_arbitrary (seed_bits rng)) :: rest
      | [] -> deviants
    else deviants
  in
  let deviants =
    enforce_scope g deviants |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let deviants =
    match mix.epsilon with
    | None -> deviants
    | Some e ->
        List.map (fun (i, d) -> (i, Adversary.Epsilon_rational (e, d))) deviants
  in
  let fault =
    if not mix.faults then None
    else begin
      let phase () =
        match Rng.int rng 3 with 0 -> `Costs | 1 -> `Routing | _ -> `Pricing
      in
      let link =
        if Rng.bernoulli rng 0.7 then
          Some
            {
              Fault.loss_p = Rng.sample rng [| 0.01; 0.03; 0.05 |];
              reorder_p = Rng.sample rng [| 0.; 0.1; 0.2 |];
              reorder_delay = 1.5;
            }
        else None
      in
      let partition =
        if Rng.bernoulli rng 0.35 then begin
          let k = Rng.int_in rng 1 (max 1 (n / 3)) in
          let at = Rng.float_in rng 0.5 3. in
          Some
            {
              Fault.island = Rng.subset rng k n;
              part_phase = phase ();
              at;
              heals_at = at +. Rng.float_in rng 1. 4.;
            }
        end
        else None
      in
      let crash =
        if Rng.bernoulli rng 0.35 then begin
          let at = Rng.float_in rng 0.5 3. in
          Some
            {
              Fault.node = Rng.int rng n;
              crash_phase = phase ();
              at;
              recovers_at = at +. Rng.float_in rng 1. 4.;
            }
        end
        else None
      in
      let spec = { Fault.seed = seed_bits rng; link; partition; crash } in
      (* a --faults campaign always injects something *)
      let spec =
        if Fault.is_none spec then
          {
            spec with
            Fault.link =
              Some { Fault.loss_p = 0.03; reorder_p = 0.1; reorder_delay = 1.5 };
          }
        else spec
      in
      Some spec
    end
  in
  { descr0 with deviants; fault }

let checks_of = function
  | No_weaken | Weaken_all -> Runner.all_checks
  | Weaken_pricing -> { Runner.all_checks with Runner.pricing_check = false }
  | Weaken_settlement -> { Runner.all_checks with Runner.settlement_check = false }

let params_of weaken descr =
  {
    Runner.default_params with
    Runner.checking = weaken <> Weaken_all;
    checks = checks_of weaken;
    perturbation = Some descr.perturb;
    fault = descr.fault;
    (* Faults consume restarts (link loss hits every attempt, a crash or
       partition window costs the first): give fault campaigns headroom so
       benign schedules still certify. *)
    max_restarts =
      (if descr.fault = None then Runner.default_params.Runner.max_restarts else 4);
    (* Livelocking deviations (oscillating announcements under a corrupted
       fixpoint) must fail fast, not grind out 10M events per restart
       attempt: a couple hundred thousand events is orders of magnitude
       above any honest construction at gauntlet sizes (n <= 16). *)
    max_events = 200_000;
  }

(* The oracle's input: [Misreport_cost] is a *consistent* declaration the
   mechanism must honor (strategyproofness, not checking, neutralizes
   it), so the centralized reference runs on the declared costs. *)
let declared_graph g deviants =
  List.fold_left
    (fun g (i, d) ->
      match d with
      | Adversary.Misreport_cost c -> Graph.with_cost g i c
      | _ -> g)
    g deviants

let profit_tolerance = 1e-6

let grade ?(weaken = No_weaken) ?(obs = Obs.noop) descr =
  Obs.span obs ~cat:"gauntlet"
    ~args:
      (if Obs.enabled obs then
         [
           ("seed", Json.Int descr.seed);
           ("topology", Json.String (topology_name descr.topology));
           ("weaken", Json.String (weaken_name weaken));
         ]
       else [])
    "campaign"
  @@ fun () ->
  (* One "verdict" instant closes every campaign's timeline segment. *)
  let finish gr =
    if Obs.enabled obs then
      Obs.instant obs ~cat:"gauntlet"
        ~args:
          [
            ("seed", Json.Int gr.descr.seed);
            ("verdict", Json.String (verdict_name gr.verdict));
            ( "violation_kind",
              match gr.violation_kind with
              | Some k -> Json.String k
              | None -> Json.Null );
            ( "max_delta",
              match gr.max_delta with
              | Some d -> Json.Float d
              | None -> Json.Null );
          ]
        "verdict";
    gr
  in
  let g = graph_of descr in
  let n = Graph.n g in
  let traffic = Traffic.uniform ~n ~rate:descr.traffic_rate in
  let params = params_of weaken descr in
  (* ε-rational resolution: an ε-agent runs its inner deviation only when
     the unilateral gain exceeds its threshold (the Definition 8
     comparison, measured on this very campaign); otherwise it stays
     faithful. Theorem 1 keeps every gain non-positive on the stock
     mechanism, so ε-agents activate only against weakened banks. *)
  let epsilon_active = ref [] in
  let deviations = Array.make n Adversary.Faithful in
  List.iter
    (fun (i, d) ->
      match Adversary.epsilon d with
      | None -> deviations.(i) <- d
      | Some (e, inner) ->
          let gain =
            Runner.utility_gain ~params ~graph:g ~traffic ~node:i ~deviation:inner
              ()
          in
          let active = gain > e in
          epsilon_active := (i, active) :: !epsilon_active;
          deviations.(i) <- (if active then inner else Adversary.Faithful))
    descr.deviants;
  let epsilon_active = List.rev !epsilon_active in
  (* Only the campaign's own run carries the sink: ε-resolution and the
     unilateral baselines would otherwise flood the timeline with
     counterfactual runs. *)
  let full =
    Runner.run ~params:{ params with Runner.obs = obs } ~graph:g ~traffic
      ~deviations ()
  in
  let detections =
    List.map (fun d -> (d.Bank.rule, d.Bank.culprit)) full.Runner.detections
  in
  let attributed i =
    List.find_map
      (fun (rule, c) -> if c = Some i then Some rule else None)
      detections
  in
  (* Blame correctness, asserted on fault campaigns only: with the bank in
     fault-tolerant evidence mode, accusing a node that ran the faithful
     code — whether untouched by the sampler or an ε-agent that chose not
     to activate — is a mechanism failure regardless of anything else the
     run did. Stock campaigns are exempt: there a deviant *checker* frames
     its honest principal by design (drop-copies forces a mismatch the
     stock bank attributes to the principal and punishes with a restart),
     which is the documented collective-punishment behavior, not a bug. *)
  let honest_accused =
    descr.fault <> None
    && List.exists
         (fun (_, c) ->
           match c with
           | Some i -> deviations.(i) = Adversary.Faithful
           | None -> false)
         detections
  in
  if not full.Runner.completed then
    let verdict, violation_kind =
      if honest_accused then (Violation, Some "false-accusation")
      else (Detected, None)
    in
    finish
    {
      descr;
      verdict;
      violation_kind;
      epsilon_active;
      completed = false;
      stuck_phase = full.Runner.stuck_phase;
      detected_in = full.Runner.stuck_phase;
      restarts = full.Runner.restarts;
      detections;
      deltas = [];
      max_delta = None;
      tables_match = None;
      sim_time = full.Runner.sim_time;
    }
  else begin
    let tables_match =
      match full.Runner.tables with
      | None -> false
      | Some t ->
          let oracle = Pricing.compute (declared_graph g descr.deviants) in
          Tables.routing_equal t oracle && Tables.prices_equal t oracle
    in
    (* Unilateral baselines: deviant i against the same campaign with only
       its own deviation reverted — the Definition 8 comparison, valid
       under multi-deviant profiles because VCG truthfulness and the
       epsilon-above-gain fines are dominant-strategy arguments. *)
    let deltas =
      List.map
        (fun (i, _) ->
          let dev' = Array.copy deviations in
          dev'.(i) <- Adversary.Faithful;
          let base = Runner.run ~params ~graph:g ~traffic ~deviations:dev' () in
          let delta =
            if base.Runner.completed then
              full.Runner.utilities.(i) -. base.Runner.utilities.(i)
            else neg_infinity
          in
          (i, delta))
        descr.deviants
    in
    let max_delta =
      List.fold_left (fun acc (_, d) -> Float.max acc d) neg_infinity deltas
    in
    let undetected =
      List.filter (fun (i, _) -> attributed i = None) descr.deviants
    in
    let profit =
      List.exists
        (fun (i, _) ->
          match List.assoc_opt i deltas with
          | Some d -> d > profit_tolerance
          | None -> false)
        undetected
    in
    let integrity = (not tables_match) && undetected <> [] in
    let verdict, violation_kind, detected_in =
      if honest_accused then (Violation, Some "false-accusation", None)
      else if profit then (Violation, Some "profit", None)
      else if integrity then (Violation, Some "integrity", None)
      else
        match
          List.find_map (fun (i, _) -> attributed i) descr.deviants
        with
        | Some rule -> (Detected, None, Some rule)
        | None -> (Undetected_unprofitable, None, None)
    in
    finish
    {
      descr;
      verdict;
      violation_kind;
      epsilon_active;
      completed = true;
      stuck_phase = None;
      detected_in;
      restarts = full.Runner.restarts;
      detections;
      deltas;
      max_delta = Some max_delta;
      tables_match = Some tables_match;
      sim_time = full.Runner.sim_time;
    }
  end

(* --- greedy shrinking --- *)

let max_deviant_id descr =
  List.fold_left (fun m (i, _) -> max m i) 0 descr.deviants

let topology_shrinks descr =
  let fits topo = topology_n topo > max_deviant_id descr in
  let cands =
    match descr.topology with
    | Mesh (r, c) ->
        (if r > 2 then [ Mesh (r - 1, c) ] else [])
        @ if c > 2 then [ Mesh (r, c - 1) ] else []
    | Torus (r, c) ->
        (if r > 3 then [ Torus (r - 1, c) ] else [])
        @ if c > 3 then [ Torus (r, c - 1) ] else []
    | Chordal (n, k) ->
        if n > 5 then [ Chordal (n - 1, min k (n - 4)) ] else []
    | Er (n, p) -> if n > 5 then [ Er (n - 1, p) ] else []
  in
  List.filter fits cands |> List.map (fun t -> { descr with topology = t })

let shrink ?(weaken = No_weaken) ?(max_grades = 60) graded =
  if graded.verdict <> Violation then graded
  else begin
    let budget = ref max_grades in
    let regrade d =
      if !budget <= 0 then None
      else begin
        decr budget;
        let g = grade ~weaken d in
        if g.verdict = Violation then Some g else None
      end
    in
    let current = ref graded in
    let progress = ref true in
    while !progress && !budget > 0 do
      progress := false;
      let d = !current.descr in
      let p = d.perturb in
      let candidates =
        (if List.length d.deviants > 1 then
           List.map
             (fun (i, _) ->
               {
                 d with
                 deviants = List.filter (fun (j, _) -> j <> i) d.deviants;
               })
             d.deviants
         else [])
        @ (if p.Runner.drop_budget > 0 then
             [ { d with perturb = { p with Runner.drop_budget = 0; drop_p = 0. } } ]
           else [])
        @ (if p.Runner.dup_p > 0. then
             [ { d with perturb = { p with Runner.dup_p = 0. } } ]
           else [])
        @ (if p.Runner.jitter > 0. then
             [ { d with perturb = { p with Runner.jitter = 0. } } ]
           else [])
        @ (match d.fault with
          | None -> []
          | Some f ->
              [ { d with fault = None } ]
              @ (if f.Fault.link <> None then
                   [ { d with fault = Some { f with Fault.link = None } } ]
                 else [])
              @ (if f.Fault.partition <> None then
                   [ { d with fault = Some { f with Fault.partition = None } } ]
                 else [])
              @
              if f.Fault.crash <> None then
                [ { d with fault = Some { f with Fault.crash = None } } ]
              else [])
        @ (if List.exists (fun (_, dv) -> Adversary.epsilon dv <> None) d.deviants
           then
             [
               {
                 d with
                 deviants =
                   List.map
                     (fun (i, dv) ->
                       match Adversary.epsilon dv with
                       | Some (_, inner) -> (i, inner)
                       | None -> (i, dv))
                     d.deviants;
               };
             ]
           else [])
        @ topology_shrinks d
      in
      match List.find_map regrade candidates with
      | Some smaller ->
          current := smaller;
          progress := true
      | None -> ()
    done;
    !current
  end

(* --- batch driving and reporting --- *)

let campaign_seed ~master i = seed_bits (Rng.fork (Rng.create master) i)

let run_batch ?(weaken = No_weaken) ?(mix = stock) ?obs ~campaigns ~seed () =
  List.init campaigns (fun i ->
      grade ~weaken ?obs (of_seed ~mix (campaign_seed ~master:seed i)))

let json_opt f = function None -> Json.Null | Some v -> f v

let json_of_fault f =
  Json.Obj
    [
      ("seed", Json.Int f.Fault.seed);
      ( "link",
        json_opt
          (fun (l : Fault.link) ->
            Json.Obj
              [
                ("loss_p", Json.Float l.Fault.loss_p);
                ("reorder_p", Json.Float l.Fault.reorder_p);
                ("reorder_delay", Json.Float l.Fault.reorder_delay);
              ])
          f.Fault.link );
      ( "partition",
        json_opt
          (fun (pt : Fault.partition) ->
            Json.Obj
              [
                ( "island",
                  Json.List (List.map (fun i -> Json.Int i) pt.Fault.island) );
                ("phase", Json.String (Fault.phase_name pt.Fault.part_phase));
                ("at", Json.Float pt.Fault.at);
                ("heals_at", Json.Float pt.Fault.heals_at);
              ])
          f.Fault.partition );
      ( "crash",
        json_opt
          (fun (c : Fault.crash) ->
            Json.Obj
              [
                ("node", Json.Int c.Fault.node);
                ("phase", Json.String (Fault.phase_name c.Fault.crash_phase));
                ("at", Json.Float c.Fault.at);
                ("recovers_at", Json.Float c.Fault.recovers_at);
              ])
          f.Fault.crash );
    ]

(* Mixed-mode fields are emitted only when present, so stock-mode output
   (faults off, no ε) stays byte-identical to the damd-gauntlet/1 era. *)
let json_of_graded gr =
  let d = gr.descr in
  let p = d.perturb in
  Json.Obj
    ([
      ("seed", Json.Int d.seed);
      ("topology", Json.String (topology_name d.topology));
      ("n", Json.Int (topology_n d.topology));
      ("traffic_rate", Json.Float d.traffic_rate);
      ( "deviations",
        Json.List
          (List.map
             (fun (i, dev) ->
               Json.Obj
                 [
                   ("node", Json.Int i);
                   ("deviation", Json.String (Adversary.name dev));
                 ])
             d.deviants) );
      ( "perturb",
        Json.Obj
          [
            ("jitter", Json.Float p.Runner.jitter);
            ("dup_p", Json.Float p.Runner.dup_p);
            ("drop_p", Json.Float p.Runner.drop_p);
            ("drop_budget", Json.Int p.Runner.drop_budget);
          ] );
    ]
    @ (match d.fault with
      | None -> []
      | Some f -> [ ("fault", json_of_fault f) ])
    @ (if gr.epsilon_active = [] then []
       else
         [
           ( "epsilon_active",
             Json.List
               (List.map
                  (fun (i, a) ->
                    Json.Obj [ ("node", Json.Int i); ("active", Json.Bool a) ])
                  gr.epsilon_active) );
         ])
    @ [
      ("verdict", Json.String (verdict_name gr.verdict));
      ("violation_kind", json_opt (fun s -> Json.String s) gr.violation_kind);
      ("completed", Json.Bool gr.completed);
      ("stuck_phase", json_opt (fun s -> Json.String s) gr.stuck_phase);
      ("detected_in", json_opt (fun s -> Json.String s) gr.detected_in);
      ("restarts", Json.Int gr.restarts);
      ( "detections",
        Json.List
          (List.map
             (fun (rule, culprit) ->
               Json.Obj
                 [
                   ("rule", Json.String rule);
                   ("culprit", json_opt (fun c -> Json.Int c) culprit);
                 ])
             gr.detections) );
      ( "deltas",
        Json.List
          (List.map
             (fun (i, delta) ->
               Json.Obj [ ("node", Json.Int i); ("delta", Json.Float delta) ])
             gr.deltas) );
      ("max_delta", json_opt (fun x -> Json.Float x) gr.max_delta);
      ("tables_match", json_opt (fun b -> Json.Bool b) gr.tables_match);
      ("sim_time", Json.Float gr.sim_time);
    ])

let report ?(shrunk = []) ~weaken ~seed gradeds =
  let count v =
    List.length (List.filter (fun gr -> gr.verdict = v) gradeds)
  in
  let mixed =
    List.exists
      (fun gr -> gr.descr.fault <> None || gr.epsilon_active <> [])
      gradeds
  in
  Json.Obj
    [
      ( "schema",
        Json.String (if mixed then "damd-gauntlet/2" else "damd-gauntlet/1") );
      ("master_seed", Json.Int seed);
      ("campaigns", Json.Int (List.length gradeds));
      ("weaken", Json.String (weaken_name weaken));
      ( "summary",
        Json.Obj
          [
            ("detected", Json.Int (count Detected));
            ( "undetected_unprofitable",
              Json.Int (count Undetected_unprofitable) );
            ("violation", Json.Int (count Violation));
          ] );
      ("results", Json.List (List.map json_of_graded gradeds));
      ("violations_shrunk", Json.List (List.map json_of_graded shrunk));
    ]

type t = {
  n : int;
  costs : float array;
  adj : int list array;  (* sorted, no duplicates, no self-loops *)
  adj_arr : int array array;  (* same adjacency, as arrays, for hot paths *)
}

let validate_cost c =
  if not (Float.is_finite c) || c < 0. then
    invalid_arg "Graph.create: transit costs must be finite and non-negative"

let create ~n ~costs ~edges =
  if n < 0 then invalid_arg "Graph.create: negative n";
  if Array.length costs <> n then invalid_arg "Graph.create: costs length <> n";
  Array.iter validate_cost costs;
  let adj = Array.make n [] in
  let add (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.create: edge endpoint out of range";
    if u = v then invalid_arg "Graph.create: self-loop";
    adj.(u) <- v :: adj.(u);
    adj.(v) <- u :: adj.(v)
  in
  List.iter add edges;
  let dedup l = List.sort_uniq Int.compare l in
  Array.iteri (fun i l -> adj.(i) <- dedup l) adj;
  { n; costs = Array.copy costs; adj; adj_arr = Array.map Array.of_list adj }

let n g = g.n

let cost g i = g.costs.(i)

let costs g = Array.copy g.costs

let with_cost g i c =
  validate_cost c;
  let costs = Array.copy g.costs in
  costs.(i) <- c;
  { g with costs }

let with_costs g costs =
  if Array.length costs <> g.n then invalid_arg "Graph.with_costs: length mismatch";
  Array.iter validate_cost costs;
  { g with costs = Array.copy costs }

let neighbors g i = g.adj.(i)

let neighbors_arr g i = g.adj_arr.(i)

let degree g i = Array.length g.adj_arr.(i)

let has_edge g u v = List.mem v g.adj.(u)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun v -> if u < v then acc := (u, v) :: !acc) g.adj.(u)
  done;
  List.sort compare !acc (* poly-ok: (int * int) edge pairs *)

let num_edges g = List.length (edges g)

let is_connected g =
  if g.n = 0 then true
  else begin
    (* Explicit-stack DFS: the recursive version overflowed the OCaml stack
       on large path-like graphs (n >= ~50k), and [Gen.ensure_biconnected]
       calls this on every generated topology. *)
    let seen = Array.make g.n false in
    let stack = Stack.create () in
    seen.(0) <- true;
    Stack.push 0 stack;
    let count = ref 1 in
    while not (Stack.is_empty stack) do
      let u = Stack.pop stack in
      Array.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr count;
            Stack.push v stack
          end)
        g.adj_arr.(u)
    done;
    !count = g.n
  end

let fold_nodes f g acc =
  let acc = ref acc in
  for i = 0 to g.n - 1 do
    acc := f i !acc
  done;
  !acc

let hop_eccentricity g s =
  let dist = Array.make g.n (-1) in
  dist.(s) <- 0;
  let q = Queue.create () in
  Queue.push s q;
  let far = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) = -1 then begin
          dist.(v) <- dist.(u) + 1;
          if dist.(v) > !far then far := dist.(v);
          Queue.push v q
        end)
      g.adj.(u)
  done;
  !far

let hop_diameter g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    let e = hop_eccentricity g v in
    if e > !best then best := e
  done;
  !best

let to_dot ?(highlight = []) g =
  let norm (u, v) = if u < v then (u, v) else (v, u) in
  let hl = List.map norm highlight in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph damd {\n";
  for i = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%d (c=%g)\"];\n" i i g.costs.(i))
  done;
  List.iter
    (fun (u, v) ->
      let style = if List.mem (u, v) hl then " [style=bold,penwidth=2]" else "" in
      Buffer.add_string buf (Printf.sprintf "  n%d -- n%d%s;\n" u v style))
    (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (num_edges g);
  for i = 0 to g.n - 1 do
    Format.fprintf ppf "  %d (c=%g): %a@," i g.costs.(i)
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
      g.adj.(i)
  done;
  Format.fprintf ppf "@]"

(** Topology and cost generators.

    The paper (via FPSS) needs biconnected AS-like graphs. Real AS-graph
    data is proprietary/scraped, so — per the substitution rule in
    DESIGN.md §3 — we generate synthetic topologies: random chordal rings,
    Erdős–Rényi, Waxman (geometric, the classic internet-topology model)
    and Barabási–Albert (preferential attachment, heavy-tailed degrees like
    the real AS graph), all repaired up to biconnectivity. *)

type cost_model =
  | Uniform_int of int * int  (** integer costs in [lo, hi] *)
  | Uniform_float of float * float
  | Constant of float

val draw_costs : Damd_util.Rng.t -> cost_model -> int -> float array

val figure1 : unit -> Graph.t * (string * int) list
(** The exact network of the paper's Figure 1 and its node-name legend
    [("A",0); ("B",1); ("C",2); ("D",3); ("X",4); ("Z",5)]. Costs:
    A=5, B=6, C=1, D=1, X=100, Z=1000 (a node's transit cost applies only
    to *other* nodes' traffic, as in the figure). *)

val ring : n:int -> costs:float array -> Graph.t
(** Simple cycle; the minimal biconnected graph. *)

val complete : n:int -> costs:float array -> Graph.t
(** The clique K_n — the totally-connected communication graph some prior
    work assumes (footnote 5 of the paper). *)

val grid : rows:int -> cols:int -> costs:float array -> Graph.t
(** A true rows x cols mesh — no wrap-around. Rectangular grids with both
    dimensions >= 2 are biconnected; [costs] has length rows*cols. *)

val torus : rows:int -> cols:int -> costs:float array -> Graph.t
(** A rows x cols mesh with wrap-around on both axes. When a dimension is
    2 the wrap edge coincides with the mesh edge and is collapsed by
    [Graph.create], so a 2 x 2 torus is just the 4-cycle. *)

val petersen : costs:float array -> Graph.t
(** The Petersen graph (10 nodes, 3-regular, girth 5) — a classic
    adversarial testbed for path algorithms; [costs] has length 10. *)

exception Edge_shortfall of { requested : int; added : int }
(** Raised by [add_random_edges] (and hence [chordal_ring]) when the
    rejection-sampling attempt cap trips before [requested] distinct new
    edges were found. The old behaviour was to silently return a graph
    with fewer chords than its descriptor claimed, which made gauntlet
    replays seed-luck-dependent. *)

val add_random_edges : Damd_util.Rng.t -> Graph.t -> int -> Graph.t
(** Add exactly [count] distinct non-self edges not already present,
    endpoints uniform. Raises [Edge_shortfall] if the attempt cap
    (50 x count) trips first — e.g. when the graph is near-complete. *)

val chordal_ring : Damd_util.Rng.t -> n:int -> chords:int -> cost_model -> Graph.t
(** Cycle plus [chords] random extra edges; always biconnected. Raises
    [Edge_shortfall] when [chords] don't fit (see [add_random_edges]). *)

val erdos_renyi : Damd_util.Rng.t -> n:int -> p:float -> cost_model -> Graph.t
(** G(n, p), then repaired to biconnectivity by [ensure_biconnected]. *)

val waxman :
  Damd_util.Rng.t -> n:int -> alpha:float -> beta:float -> cost_model -> Graph.t
(** Waxman (1988): nodes uniform in the unit square, edge probability
    [alpha * exp (-d / (beta * sqrt 2.))]; repaired to biconnectivity. *)

val barabasi_albert : Damd_util.Rng.t -> n:int -> m:int -> cost_model -> Graph.t
(** Preferential attachment with exactly [m >= 2] distinct edges per
    arriving node, built in O(E) off a preallocated endpoint multiset, so
    the edge count is exactly C(m+1,2) + m*(n-m-1). Biconnected by
    construction (clique seed, >= 2 attachments per arrival). *)

type relation =
  | Customer_provider
      (** the first endpoint of the annotated edge is the customer — the
          later-arriving node buying transit from the incumbent *)
  | Peer  (** settlement-free peering (the tier-1 seed clique) *)

val as_like :
  Damd_util.Rng.t ->
  n:int ->
  m:int ->
  cost_model ->
  Graph.t * (int * int * relation) list
(** AS-like power-law topology: the [barabasi_albert] skeleton plus
    Khoury et al.-style commercial relations on every edge — the seed
    clique on nodes [0..m] is a fully-peered tier-1 core ([Peer]); each
    growth edge [(u, v)] is [Customer_provider] with arriving node [u]
    the customer of incumbent [v]. The annotation list covers every edge
    exactly once, in construction order. *)

val ensure_biconnected : Damd_util.Rng.t -> Graph.t -> Graph.t
(** Adds random edges across cut points / components until the graph is
    biconnected. Identity on already-biconnected graphs. *)

(** Undirected graphs with per-node transit costs — the FPSS network model.

    Nodes are autonomous systems identified by dense integers [0..n-1].
    Each node has a *transit cost*: the per-packet cost it incurs when
    carrying traffic that neither originates nor terminates at it. The cost
    of a path is the sum of the transit costs of its interior nodes; the
    endpoints transit free (FPSS §1, reproduced as Figure 1 of the
    Shneidman–Parkes paper). *)

type t

val create : n:int -> costs:float array -> edges:(int * int) list -> t
(** Build a graph. Raises [Invalid_argument] if [costs] has length other
    than [n], any cost is negative or non-finite, an edge endpoint is out of
    range, or an edge is a self-loop. Duplicate edges are collapsed. *)

val n : t -> int
(** Number of nodes. *)

val cost : t -> int -> float
(** Declared transit cost of a node. *)

val costs : t -> float array
(** Copy of the cost vector. *)

val with_cost : t -> int -> float -> t
(** [with_cost g i c] is [g] with node [i]'s transit cost replaced by [c]
    (shares structure; cost vector copied). Used for misreport experiments
    and for VCG's remove-a-node counterfactuals. *)

val with_costs : t -> float array -> t
(** Replace the whole cost vector. *)

val neighbors : t -> int -> int list
(** Sorted adjacency list. *)

val neighbors_arr : t -> int -> int array
(** The same adjacency as a sorted array — the allocation-free fast path
    used by Dijkstra and the FPSS fixpoints. The array is owned by the
    graph: callers must not mutate it. *)

val degree : t -> int -> int

val has_edge : t -> int -> int -> bool

val edges : t -> (int * int) list
(** Each undirected edge once, as [(u, v)] with [u < v], sorted. *)

val num_edges : t -> int

val is_connected : t -> bool

val fold_nodes : (int -> 'a -> 'a) -> t -> 'a -> 'a

val hop_eccentricity : t -> int -> int
(** Longest BFS (hop) distance from a node to any reachable node. *)

val hop_diameter : t -> int
(** Maximum hop eccentricity over all nodes; 0 for the empty graph. The
    FPSS convergence bound is stated in terms of hop distances, so the
    convergence experiment (E5) reports rounds against this. *)

val to_dot : ?highlight:(int * int) list -> t -> string
(** Graphviz rendering; [highlight] edges are drawn bold (used to reproduce
    Figure 1's bold LCP tree). *)

val pp : Format.formatter -> t -> unit

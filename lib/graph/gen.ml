module Rng = Damd_util.Rng

type cost_model =
  | Uniform_int of int * int
  | Uniform_float of float * float
  | Constant of float

let draw_costs rng model n =
  let draw () =
    match model with
    | Uniform_int (lo, hi) -> float_of_int (Rng.int_in rng lo hi)
    | Uniform_float (lo, hi) -> Rng.float_in rng lo hi
    | Constant c -> c
  in
  Array.init n (fun _ -> draw ())

(* Figure 1 of the paper: nodes A B C D X Z with transit costs
   A=5 B=6 C=1 D=1 X=100 Z=1000 and the edges drawn in the figure. These
   reproduce every number the paper derives from the figure: cost(X,Z)=2
   via X-D-C-Z, cost(Z,D)=1 via Z-C-D, cost(B,D)=0 (adjacent), and
   Example 1 (C declaring 5 moves the X-Z LCP to X-A-Z at cost 5 while C
   keeps the D-Z traffic against the D-B-Z alternative at cost 6). *)
let figure1 () =
  let names = [ ("A", 0); ("B", 1); ("C", 2); ("D", 3); ("X", 4); ("Z", 5) ] in
  let costs = [| 5.; 6.; 1.; 1.; 100.; 1000. |] in
  let edges =
    [ (0, 4); (0, 5); (2, 5); (2, 3); (3, 4); (1, 3); (1, 5) ]
    (* A-X, A-Z, C-Z, C-D, D-X, B-D, B-Z *)
  in
  (Graph.create ~n:6 ~costs ~edges, names)

let ring ~n ~costs =
  if n < 3 then invalid_arg "Gen.ring: need n >= 3";
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  Graph.create ~n ~costs ~edges

let complete ~n ~costs =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n ~costs ~edges:!edges

let grid ~rows ~cols ~costs =
  if rows < 2 || cols < 2 then invalid_arg "Gen.grid: need rows, cols >= 2";
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.create ~n ~costs ~edges:!edges

let torus ~rows ~cols ~costs =
  if rows < 2 || cols < 2 then invalid_arg "Gen.torus: need rows, cols >= 2";
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (id r c, id r ((c + 1) mod cols)) :: !edges;
      edges := (id r c, id ((r + 1) mod rows) c) :: !edges
    done
  done;
  Graph.create ~n ~costs ~edges:!edges

let petersen ~costs =
  (* outer 5-cycle 0-4, inner pentagram 5-9, spokes i -- i+5 *)
  let edges =
    List.init 5 (fun i -> (i, (i + 1) mod 5))
    @ List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5)))
    @ List.init 5 (fun i -> (i, i + 5))
  in
  Graph.create ~n:10 ~costs ~edges

let add_random_edges rng g count =
  let n = Graph.n g in
  let edges = ref (Graph.edges g) in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < count && !attempts < 50 * count do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    let e = if u < v then (u, v) else (v, u) in
    if u <> v && not (List.mem e !edges) then begin
      edges := e :: !edges;
      incr added
    end
  done;
  Graph.create ~n ~costs:(Graph.costs g) ~edges:!edges

let chordal_ring rng ~n ~chords model =
  let costs = draw_costs rng model n in
  add_random_edges rng (ring ~n ~costs) chords

let rec ensure_biconnected rng g =
  let n = Graph.n g in
  if n <= 2 then g
  else if not (Graph.is_connected g) then begin
    (* Join two components with a random edge. *)
    let label = Biconnect.components_without g (-1) in
    let c0 = label.(0) in
    let inside = ref [] and outside = ref [] in
    for v = 0 to n - 1 do
      if label.(v) = c0 then inside := v :: !inside else outside := v :: !outside
    done;
    let u = Rng.choose rng !inside and v = Rng.choose rng !outside in
    let g = Graph.create ~n ~costs:(Graph.costs g) ~edges:((u, v) :: Graph.edges g) in
    ensure_biconnected rng g
  end
  else
    match Biconnect.articulation_points g with
    | [] -> g
    | ap :: _ ->
        (* Bridge two different components of g - ap. *)
        let label = Biconnect.components_without g ap in
        let c0 =
          let rec first v = if label.(v) >= 0 then label.(v) else first (v + 1) in
          first 0
        in
        let inside = ref [] and outside = ref [] in
        for v = 0 to n - 1 do
          if label.(v) = c0 then inside := v :: !inside
          else if label.(v) >= 0 then outside := v :: !outside
        done;
        let u = Rng.choose rng !inside and v = Rng.choose rng !outside in
        let g = Graph.create ~n ~costs:(Graph.costs g) ~edges:((u, v) :: Graph.edges g) in
        ensure_biconnected rng g

let erdos_renyi rng ~n ~p model =
  if n < 3 then invalid_arg "Gen.erdos_renyi: need n >= 3";
  let costs = draw_costs rng model n in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  ensure_biconnected rng (Graph.create ~n ~costs ~edges:!edges)

let waxman rng ~n ~alpha ~beta model =
  if n < 3 then invalid_arg "Gen.waxman: need n >= 3";
  let costs = draw_costs rng model n in
  let xs = Array.init n (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Rng.float rng 1.0) in
  let max_d = sqrt 2. in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      let p = alpha *. exp (-.d /. (beta *. max_d)) in
      if Rng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  ensure_biconnected rng (Graph.create ~n ~costs ~edges:!edges)

let barabasi_albert rng ~n ~m model =
  if m < 2 then invalid_arg "Gen.barabasi_albert: need m >= 2";
  if n <= m then invalid_arg "Gen.barabasi_albert: need n > m";
  let costs = draw_costs rng model n in
  (* Start from a clique on m+1 nodes; each arriving node attaches to m
     distinct targets drawn proportionally to degree (implemented by
     sampling from the endpoint multiset). *)
  let endpoints = ref [] in
  let edges = ref [] in
  for u = 0 to m do
    for v = u + 1 to m do
      edges := (u, v) :: !edges;
      endpoints := u :: v :: !endpoints
    done
  done;
  let endpoint_array = ref (Array.of_list !endpoints) in
  for u = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    let guard = ref 0 in
    while Hashtbl.length chosen < m && !guard < 1000 do
      incr guard;
      let v = Rng.sample rng !endpoint_array in
      if v <> u && not (Hashtbl.mem chosen v) then Hashtbl.add chosen v ()
    done;
    Hashtbl.iter
      (fun v () ->
        edges := (u, v) :: !edges;
        endpoint_array := Array.append !endpoint_array [| u; v |])
      chosen
  done;
  ensure_biconnected rng (Graph.create ~n ~costs ~edges:!edges)

module Rng = Damd_util.Rng

type cost_model =
  | Uniform_int of int * int
  | Uniform_float of float * float
  | Constant of float

let draw_costs rng model n =
  let draw () =
    match model with
    | Uniform_int (lo, hi) -> float_of_int (Rng.int_in rng lo hi)
    | Uniform_float (lo, hi) -> Rng.float_in rng lo hi
    | Constant c -> c
  in
  Array.init n (fun _ -> draw ())

(* Figure 1 of the paper: nodes A B C D X Z with transit costs
   A=5 B=6 C=1 D=1 X=100 Z=1000 and the edges drawn in the figure. These
   reproduce every number the paper derives from the figure: cost(X,Z)=2
   via X-D-C-Z, cost(Z,D)=1 via Z-C-D, cost(B,D)=0 (adjacent), and
   Example 1 (C declaring 5 moves the X-Z LCP to X-A-Z at cost 5 while C
   keeps the D-Z traffic against the D-B-Z alternative at cost 6). *)
let figure1 () =
  let names = [ ("A", 0); ("B", 1); ("C", 2); ("D", 3); ("X", 4); ("Z", 5) ] in
  let costs = [| 5.; 6.; 1.; 1.; 100.; 1000. |] in
  let edges =
    [ (0, 4); (0, 5); (2, 5); (2, 3); (3, 4); (1, 3); (1, 5) ]
    (* A-X, A-Z, C-Z, C-D, D-X, B-D, B-Z *)
  in
  (Graph.create ~n:6 ~costs ~edges, names)

let ring ~n ~costs =
  if n < 3 then invalid_arg "Gen.ring: need n >= 3";
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  Graph.create ~n ~costs ~edges

let complete ~n ~costs =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n ~costs ~edges:!edges

let grid ~rows ~cols ~costs =
  if rows < 2 || cols < 2 then invalid_arg "Gen.grid: need rows, cols >= 2";
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.create ~n ~costs ~edges:!edges

let torus ~rows ~cols ~costs =
  if rows < 2 || cols < 2 then invalid_arg "Gen.torus: need rows, cols >= 2";
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (id r c, id r ((c + 1) mod cols)) :: !edges;
      edges := (id r c, id ((r + 1) mod rows) c) :: !edges
    done
  done;
  Graph.create ~n ~costs ~edges:!edges

let petersen ~costs =
  (* outer 5-cycle 0-4, inner pentagram 5-9, spokes i -- i+5 *)
  let edges =
    List.init 5 (fun i -> (i, (i + 1) mod 5))
    @ List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5)))
    @ List.init 5 (fun i -> (i, i + 5))
  in
  Graph.create ~n:10 ~costs ~edges

exception Edge_shortfall of { requested : int; added : int }

let add_random_edges rng g count =
  let n = Graph.n g in
  (* Hash-set membership: the old [List.mem] probe rescanned the whole edge
     list per attempt — O(E) each, O(E^2) per call at scale. Keying on the
     packed normalized pair keeps the accept/reject decision per draw — and
     hence the RNG stream and the resulting graph — identical to the
     list-based version on every seed that used to succeed. *)
  let key u v = (u * n) + v in
  let present = Hashtbl.create (4 * (count + 1)) in
  let existing = Graph.edges g in
  List.iter (fun (u, v) -> Hashtbl.replace present (key u v) ()) existing;
  let fresh = ref [] in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < count && !attempts < 50 * count do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    let u, v = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem present (key u v)) then begin
      Hashtbl.replace present (key u v) ();
      fresh := (u, v) :: !fresh;
      incr added
    end
  done;
  (* The attempt cap used to trip silently, returning a graph with fewer
     chords than its descriptor claims — gauntlet replays then depend on
     which seed got lucky. Shortfall is now an explicit failure. *)
  if !added < count then raise (Edge_shortfall { requested = count; added = !added });
  Graph.create ~n ~costs:(Graph.costs g) ~edges:(List.rev_append !fresh existing)

let chordal_ring rng ~n ~chords model =
  let costs = draw_costs rng model n in
  add_random_edges rng (ring ~n ~costs) chords

let rec ensure_biconnected rng g =
  let n = Graph.n g in
  if n <= 2 then g
  else if not (Graph.is_connected g) then begin
    (* Join two components with a random edge. *)
    let label = Biconnect.components_without g (-1) in
    let c0 = label.(0) in
    let inside = ref [] and outside = ref [] in
    for v = 0 to n - 1 do
      if label.(v) = c0 then inside := v :: !inside else outside := v :: !outside
    done;
    let u = Rng.choose rng !inside and v = Rng.choose rng !outside in
    let g = Graph.create ~n ~costs:(Graph.costs g) ~edges:((u, v) :: Graph.edges g) in
    ensure_biconnected rng g
  end
  else
    match Biconnect.articulation_points g with
    | [] -> g
    | ap :: _ ->
        (* Bridge two different components of g - ap. *)
        let label = Biconnect.components_without g ap in
        let c0 =
          let rec first v = if label.(v) >= 0 then label.(v) else first (v + 1) in
          first 0
        in
        let inside = ref [] and outside = ref [] in
        for v = 0 to n - 1 do
          if label.(v) = c0 then inside := v :: !inside
          else if label.(v) >= 0 then outside := v :: !outside
        done;
        let u = Rng.choose rng !inside and v = Rng.choose rng !outside in
        let g = Graph.create ~n ~costs:(Graph.costs g) ~edges:((u, v) :: Graph.edges g) in
        ensure_biconnected rng g

let erdos_renyi rng ~n ~p model =
  if n < 3 then invalid_arg "Gen.erdos_renyi: need n >= 3";
  let costs = draw_costs rng model n in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  ensure_biconnected rng (Graph.create ~n ~costs ~edges:!edges)

let waxman rng ~n ~alpha ~beta model =
  if n < 3 then invalid_arg "Gen.waxman: need n >= 3";
  let costs = draw_costs rng model n in
  let xs = Array.init n (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Rng.float rng 1.0) in
  let max_d = sqrt 2. in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      let p = alpha *. exp (-.d /. (beta *. max_d)) in
      if Rng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  ensure_biconnected rng (Graph.create ~n ~costs ~edges:!edges)

(* Shared preferential-attachment core: clique seed on m+1 nodes, then each
   arriving node attaches to m *distinct* existing nodes drawn
   proportionally to degree (sampling from the endpoint multiset). The
   multiset lives in one preallocated array behind a fill pointer — total
   work O(E). The previous version re-[Array.append]ed the whole multiset
   per accepted edge (O(E^2) copying, the n=10k scale blocker) and its
   bounded retry loop could silently attach *fewer* than m edges when the
   guard tripped; here every arriving node gets exactly m, so the edge
   count is exactly C(m+1,2) + m*(n - m - 1).

   Returns edges in construction order: clique first, then each node's
   attachments as (arriving, target). Every graph this produces is
   biconnected by induction — each arrival hooks >= 2 distinct edges onto
   an already-biconnected graph. *)
let ba_edges rng ~n ~m =
  if m < 2 then invalid_arg "Gen.barabasi_albert: need m >= 2";
  if n <= m then invalid_arg "Gen.barabasi_albert: need n > m";
  let seed_edges = (m + 1) * m / 2 in
  let total_edges = seed_edges + (m * (n - m - 1)) in
  let endpoints = Array.make (2 * total_edges) 0 in
  let fill = ref 0 in
  let push v =
    endpoints.(!fill) <- v;
    incr fill
  in
  let edges = ref [] in
  for u = 0 to m do
    for v = u + 1 to m do
      edges := (u, v) :: !edges;
      push u;
      push v
    done
  done;
  let chosen = Array.make m (-1) in
  let mem_chosen k v =
    let rec go i = i < k && (chosen.(i) = v || go (i + 1)) in
    go 0
  in
  for u = m + 1 to n - 1 do
    let k = ref 0 in
    let attempts = ref 0 in
    while !k < m do
      let v =
        if !attempts < 50 * m then begin
          incr attempts;
          endpoints.(Rng.int rng !fill)
        end
        else begin
          (* Degenerate rejection streak (tiny, highly skewed multisets):
             take the smallest predecessor not yet chosen — u has at least
             m + 1 predecessors, so one always exists. *)
          let w = ref 0 in
          while mem_chosen !k !w do
            incr w
          done;
          !w
        end
      in
      if not (mem_chosen !k v) then begin
        chosen.(!k) <- v;
        incr k
      end
    done;
    (* Publish the new endpoints only after all m draws: a node's own
       fresh edges must not bias its remaining draws. *)
    for i = 0 to m - 1 do
      let v = chosen.(i) in
      edges := (u, v) :: !edges;
      push u;
      push v
    done
  done;
  List.rev !edges

let barabasi_albert rng ~n ~m model =
  let costs = draw_costs rng model n in
  let edges = ba_edges rng ~n ~m in
  (* [ba_edges] output is biconnected by construction; the repair pass is
     an identity kept as a safety net. *)
  ensure_biconnected rng (Graph.create ~n ~costs ~edges)

type relation = Customer_provider | Peer

let as_like rng ~n ~m model =
  let costs = draw_costs rng model n in
  let edges = ba_edges rng ~n ~m in
  (* Khoury et al.-style commercial annotations on the BA skeleton: the
     seed clique is the fully-peered tier-1 core; every growth edge is a
     customer-provider link with the later-arriving node as the customer
     (it "buys transit" from the incumbent it attached to). No repair pass:
     [ba_edges] is biconnected by construction, and a repair edge would
     have no principled relation. *)
  let seed_edges = (m + 1) * m / 2 in
  let annotations =
    List.mapi
      (fun i (u, v) ->
        if i < seed_edges then (u, v, Peer) else (u, v, Customer_provider))
      edges
  in
  (Graph.create ~n ~costs ~edges, annotations)

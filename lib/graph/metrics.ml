type t = {
  nodes : int;
  edges : int;
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  hop_diameter : int;
  mean_hop_distance : float;
  clustering : float;
  biconnected : bool;
}

let bfs_distances g s =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  dist.(s) <- 0;
  let q = Queue.create () in
  Queue.push s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) = -1 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v q
        end)
      (Graph.neighbors g u)
  done;
  dist

let local_clustering g v =
  let nbrs = Graph.neighbors g v in
  let k = List.length nbrs in
  if k < 2 then 0.
  else begin
    let closed = ref 0 in
    List.iter
      (fun a -> List.iter (fun b -> if a < b && Graph.has_edge g a b then incr closed) nbrs)
      nbrs;
    2. *. float_of_int !closed /. float_of_int (k * (k - 1))
  end

let compute g =
  let n = Graph.n g in
  let degrees = List.init n (Graph.degree g) in
  let mean xs =
    match xs with
    | [] -> 0.
    | _ -> float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)
  in
  let diameter = ref 0 and dist_sum = ref 0 and dist_count = ref 0 in
  for s = 0 to n - 1 do
    let dist = bfs_distances g s in
    Array.iteri
      (fun v d ->
        if v <> s && d >= 0 then begin
          if d > !diameter then diameter := d;
          dist_sum := !dist_sum + d;
          incr dist_count
        end)
      dist
  done;
  let clustering =
    if n = 0 then 0.
    else begin
      let acc = ref 0. in
      for v = 0 to n - 1 do
        acc := !acc +. local_clustering g v
      done;
      !acc /. float_of_int n
    end
  in
  {
    nodes = n;
    edges = Graph.num_edges g;
    min_degree = List.fold_left min max_int (if degrees = [] then [ 0 ] else degrees);
    max_degree = List.fold_left max 0 degrees;
    mean_degree = mean degrees;
    hop_diameter = !diameter;
    mean_hop_distance =
      (if !dist_count = 0 then 0. else float_of_int !dist_sum /. float_of_int !dist_count);
    clustering;
    biconnected = Biconnect.is_biconnected g;
  }

let pp ppf m =
  Format.fprintf ppf
    "n=%d m=%d deg=[%d..%d] mean_deg=%.2f diam=%d mean_dist=%.2f clust=%.3f biconnected=%b"
    m.nodes m.edges m.min_degree m.max_degree m.mean_degree m.hop_diameter
    m.mean_hop_distance m.clustering m.biconnected

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort compare (* poly-ok: (int * int) histogram rows *)

type entry = { cost : float; path : int list }

let compare_entry a b =
  let c = Float.compare a.cost b.cost in
  if c <> 0 then c
  else
    let c = Int.compare (List.length a.path) (List.length b.path) in
    if c <> 0 then c else compare a.path b.path (* poly-ok: int-list paths *)

let to_dest ?avoid g ~dst =
  let n = Graph.n g in
  if dst < 0 || dst >= n then invalid_arg "Dijkstra.to_dest: dst out of range";
  (match avoid with
  | Some k when k = dst -> invalid_arg "Dijkstra.to_dest: avoid = dst"
  | _ -> ());
  let skip v = match avoid with Some k -> v = k | None -> false in
  let best : entry option array = Array.make n None in
  let queue : int Damd_util.Pqueue.t = Damd_util.Pqueue.create () in
  best.(dst) <- Some { cost = 0.; path = [ dst ] };
  Damd_util.Pqueue.push queue 0. dst;
  (* A node may be pushed several times (cost improvements and, rarely,
     equal-cost lexicographic improvements); stale pops are skipped by
     re-checking [best]. The canonical order is well-founded, so this
     terminates. *)
  let rec drain () =
    match Damd_util.Pqueue.pop queue with
    | None -> ()
    | Some (popped_cost, v) ->
        (match best.(v) with
        | Some e when e.cost = popped_cost ->
            (* Extend v's path to each neighbor u: interior gains v unless
               v is the destination itself. *)
            let step = if v = dst then 0. else Graph.cost g v in
            let relax u =
              if not (skip u) then begin
                let cand = { cost = e.cost +. step; path = u :: e.path } in
                let improves =
                  match best.(u) with
                  | None -> true
                  | Some cur -> compare_entry cand cur < 0
                in
                if improves then begin
                  best.(u) <- Some cand;
                  Damd_util.Pqueue.push queue cand.cost u
                end
              end
            in
            Array.iter relax (Graph.neighbors_arr g v)
        | _ -> ());
        drain ()
  in
  if not (skip dst) then drain ();
  (match avoid with Some k -> best.(k) <- None | None -> ());
  best

let lcp g ~src ~dst =
  if src = dst then Some { cost = 0.; path = [ src ] }
  else (to_dest g ~dst).(src)

let dist g ~src ~dst = Option.map (fun e -> e.cost) (lcp g ~src ~dst)

let dist_avoiding g ~avoid ~src ~dst =
  if src = avoid || dst = avoid then
    invalid_arg "Dijkstra.dist_avoiding: endpoint equals avoided node";
  if src = dst then Some 0.
  else Option.map (fun e -> e.cost) (to_dest ~avoid g ~dst).(src)

let transit_nodes path =
  match path with
  | [] | [ _ ] -> []
  | _ :: rest ->
      let rec interior = function
        | [] | [ _ ] -> []
        | x :: tl -> x :: interior tl
      in
      interior rest

let all_to_dest g = Array.init (Graph.n g) (fun dst -> to_dest g ~dst)

let lcp_tree_edges g ~root =
  let entries = to_dest g ~dst:root in
  let norm (u, v) = if u < v then (u, v) else (v, u) in
  let add_path acc path =
    let rec pairs acc = function
      | a :: (b :: _ as rest) -> pairs (norm (a, b) :: acc) rest
      | _ -> acc
    in
    pairs acc path
  in
  let all =
    Array.fold_left
      (fun acc e -> match e with None -> acc | Some e -> add_path acc e.path)
      [] entries
  in
  List.sort_uniq compare all (* poly-ok: (int * int) edge pairs *)

(** Trace serialization: [damd-trace/1] and Chrome [trace_event].

    Both exports read the buffered events of a memory sink; for [noop]
    or file sinks they produce valid-but-empty documents (file sinks
    stream their own JSONL form, see [Obs.file]). *)

val to_json : ?meta:Obs.args -> Obs.t -> Damd_util.Json.t
(** The [damd-trace/1] document (schema in DESIGN.md §15): header,
    events sorted by timestamp, per-span-name duration statistics
    (via [Damd_util.Stats.summarize], including p50/p95/p99), and the
    sink's metrics registry. *)

val to_chrome : ?meta:Obs.args -> Obs.t -> Damd_util.Json.t
(** Chrome [trace_event] JSON (load in [chrome://tracing] or
    Perfetto): spans as ["ph":"X"] complete events, instants as
    ["ph":"i"], samples as ["ph":"C"] counter tracks. Timestamps are
    microseconds from trace start on one pid/tid; the viewer nests
    spans by ts/dur containment. *)

val write : ?meta:Obs.args -> path:string -> Obs.t -> unit
val write_chrome : ?meta:Obs.args -> path:string -> Obs.t -> unit

/* Monotonic clock for Damd_obs spans and bench deltas.
 *
 * CLOCK_MONOTONIC never steps backwards under NTP adjustments, unlike
 * the wall clock behind Unix.gettimeofday. The native stub is declared
 * [@@noalloc] with an unboxed int64 return so reading the clock on the
 * tracing hot path allocates nothing.
 */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>

#if defined(_WIN32)
#include <windows.h>

int64_t damd_obs_monotonic_ns(void)
{
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0)
    QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return (int64_t)((double)now.QuadPart * 1e9 / (double)freq.QuadPart);
}

#else
#include <time.h>

int64_t damd_obs_monotonic_ns(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

#endif

CAMLprim value damd_obs_monotonic_ns_byte(value unit)
{
  (void)unit;
  return caml_copy_int64(damd_obs_monotonic_ns());
}

module Json = Damd_util.Json
module Stats = Damd_util.Stats

let event_ts = function
  | Obs.Span { ts_ns; _ } -> ts_ns
  | Obs.Instant { ts_ns; _ } -> ts_ns
  | Obs.Sample { ts_ns; _ } -> ts_ns

let sorted_events sink =
  (* Ring order is completion order; spans complete after their
     children, so re-sort by start timestamp for a readable document.
     The sort must be stable so same-ts events keep emission order. *)
  List.stable_sort
    (fun a b -> Int64.compare (event_ts a) (event_ts b))
    (Obs.events sink)

let span_stats events =
  let tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | Obs.Span { name; dur_ns; _ } -> (
          let d = Int64.to_float dur_ns in
          match Hashtbl.find_opt tbl name with
          | Some r -> r := d :: !r
          | None -> Hashtbl.replace tbl name (ref [ d ]))
      | Obs.Instant _ | Obs.Sample _ -> ())
    events;
  Hashtbl.fold (fun name durs acc -> (name, !durs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (name, durs) ->
         let s = Stats.summarize durs in
         Json.Obj
           [
             ("name", Json.String name);
             ("n", Json.Int s.Stats.n);
             ("mean_ns", Json.Float s.Stats.mean);
             ("p50_ns", Json.Float s.Stats.median);
             ("p95_ns", Json.Float s.Stats.p95);
             ("p99_ns", Json.Float s.Stats.p99);
             ("max_ns", Json.Float s.Stats.max);
           ])

let meta_field = function
  | [] -> []
  | meta -> [ ("meta", Json.Obj meta) ]

let metrics_json sink =
  match Obs.metrics sink with
  | None -> Json.Obj []
  | Some m -> Metrics.to_json m

let to_json ?(meta = []) sink =
  let events = sorted_events sink in
  Json.Obj
    ([
       ("schema", Json.String "damd-trace/1");
       ("clock", Json.String "monotonic");
       ("unit", Json.String "ns");
     ]
    @ meta_field meta
    @ [
        ("dropped", Json.Int (Obs.dropped sink));
        ("events", Json.List (List.map Obs.json_of_event events));
        ("span_stats", Json.List (span_stats events));
        ("metrics", metrics_json sink);
      ])

(* Chrome trace_event: timestamps in microseconds, one process/thread;
   the viewer nests "X" events by containment. *)

let us ts_ns = Json.Float (Clock.ns_to_us ts_ns)

let chrome_args args = ("args", Json.Obj args)

let chrome_event = function
  | Obs.Span { name; cat; ts_ns; dur_ns; args; _ } ->
      Json.Obj
        ([
           ("name", Json.String name);
           ("cat", Json.String (match cat with "" -> "damd" | c -> c));
           ("ph", Json.String "X");
           ("ts", us ts_ns);
           ("dur", us dur_ns);
           ("pid", Json.Int 1);
           ("tid", Json.Int 1);
         ]
        @ match args with [] -> [] | a -> [ chrome_args a ])
  | Obs.Instant { name; cat; ts_ns; args } ->
      Json.Obj
        ([
           ("name", Json.String name);
           ("cat", Json.String (match cat with "" -> "damd" | c -> c));
           ("ph", Json.String "i");
           ("s", Json.String "t");
           ("ts", us ts_ns);
           ("pid", Json.Int 1);
           ("tid", Json.Int 1);
         ]
        @ match args with [] -> [] | a -> [ chrome_args a ])
  | Obs.Sample { name; ts_ns; value } ->
      Json.Obj
        [
          ("name", Json.String name);
          ("ph", Json.String "C");
          ("ts", us ts_ns);
          ("pid", Json.Int 1);
          ("args", Json.Obj [ ("value", Json.Float value) ]);
        ]

let to_chrome ?(meta = []) sink =
  let events = sorted_events sink in
  let process_name =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String "damd") ]);
      ]
  in
  Json.Obj
    ([
       ("displayTimeUnit", Json.String "ms");
       ( "traceEvents",
         Json.List (process_name :: List.map chrome_event events) );
     ]
    @ meta_field meta)

let write ?meta ~path sink = Json.to_file path (to_json ?meta sink)

let write_chrome ?meta ~path sink =
  Json.to_file path (to_chrome ?meta sink)

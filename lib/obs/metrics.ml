module Json = Damd_util.Json
module Stats = Damd_util.Stats

type counter = { mutable c : int }
type gauge = { mutable g : float; mutable g_max : float }

let reservoir_capacity = 4096

type histogram = {
  bounds : float array; (* ascending upper bounds; overflow is implicit *)
  counts : int array; (* length = Array.length bounds + 1 *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  reservoir : float array;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c = 0 } in
      Hashtbl.replace t.counters name c;
      c

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let set_counter c n = c.c <- n
let counter_value c = c.c

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { g = 0.; g_max = neg_infinity } in
      Hashtbl.replace t.gauges name g;
      g

let set g v =
  g.g <- v;
  if v > g.g_max then g.g_max <- v

let gauge_value g = g.g
let gauge_max g = g.g_max

(* 1-2-5 progression over nine decades: generic enough for nanosecond
   durations, queue depths and exploration depths alike. *)
let default_buckets =
  let decades = 9 in
  let b = Array.make (3 * decades) 0. in
  for d = 0 to decades - 1 do
    let scale = 10. ** float_of_int d in
    b.(3 * d) <- scale;
    b.((3 * d) + 1) <- 2. *. scale;
    b.((3 * d) + 2) <- 5. *. scale
  done;
  b

let histogram ?(buckets = default_buckets) t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          h_count = 0;
          h_sum = 0.;
          h_min = infinity;
          h_max = neg_infinity;
          reservoir = Array.make reservoir_capacity 0.;
        }
      in
      Hashtbl.replace t.histograms name h;
      h

let bucket_index bounds v =
  (* Smallest i with v <= bounds.(i); Array.length bounds = overflow. *)
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1;
  if h.h_count < reservoir_capacity then h.reservoir.(h.h_count) <- v;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count h = h.h_count

let percentile h p =
  if h.h_count = 0 then nan
  else if h.h_count <= reservoir_capacity then
    (* Exact: the reservoir still holds every sample. *)
    let samples =
      Array.to_list (Array.sub h.reservoir 0 h.h_count)
    in
    Stats.percentile p samples
  else begin
    (* Interpolate inside the bucket that contains the target rank. *)
    let target = p /. 100. *. float_of_int (h.h_count - 1) in
    let rank = int_of_float (ceil target) in
    let rank = if rank >= h.h_count then h.h_count - 1 else rank in
    let nb = Array.length h.bounds in
    let cum = ref 0 and idx = ref (-1) in
    (try
       for i = 0 to nb do
         cum := !cum + h.counts.(i);
         if !cum > rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    let i = !idx in
    if i < 0 || i >= nb then h.h_max
    else
      let hi = min h.bounds.(i) h.h_max in
      let lo =
        if i = 0 then h.h_min else max h.h_min h.bounds.(i - 1)
      in
      let in_bucket = h.counts.(i) in
      let below = !cum - in_bucket in
      if in_bucket = 0 then lo
      else
        let frac =
          (float_of_int rank -. float_of_int below)
          /. float_of_int in_bucket
        in
        lo +. ((hi -. lo) *. frac)
  end

let reset t =
  Hashtbl.iter (fun _ c -> c.c <- 0) t.counters;
  Hashtbl.iter
    (fun _ g ->
      g.g <- 0.;
      g.g_max <- neg_infinity)
    t.gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.counts 0 (Array.length h.counts) 0;
      h.h_count <- 0;
      h.h_sum <- 0.;
      h.h_min <- infinity;
      h.h_max <- neg_infinity)
    t.histograms

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let json_of_histogram h =
  let buckets =
    List.init
      (Array.length h.counts)
      (fun i ->
        let le =
          if i < Array.length h.bounds then Json.Float h.bounds.(i)
          else Json.String "+inf"
        in
        Json.Obj [ ("le", le); ("count", Json.Int h.counts.(i)) ])
  in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("min", Json.Float (if h.h_count = 0 then nan else h.h_min));
      ("max", Json.Float (if h.h_count = 0 then nan else h.h_max));
      ("p50", Json.Float (percentile h 50.));
      ("p95", Json.Float (percentile h 95.));
      ("p99", Json.Float (percentile h 99.));
      ("buckets", Json.List buckets);
    ]

let to_json t =
  let counters =
    sorted_bindings t.counters
    |> List.map (fun (k, c) -> (k, Json.Int c.c))
  in
  let gauges =
    sorted_bindings t.gauges
    |> List.map (fun (k, g) ->
           ( k,
             Json.Obj
               [ ("value", Json.Float g.g); ("max", Json.Float g.g_max) ]
           ))
  in
  let histograms =
    sorted_bindings t.histograms
    |> List.map (fun (k, h) -> (k, json_of_histogram h))
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

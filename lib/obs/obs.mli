(** Trace sinks: spans, instants and counter samples.

    A sink is either [noop] (discards everything; the hot-path guard is
    a single tag test and no allocation happens), an in-memory ring
    buffer (keeps the most recent [capacity] events, counting what it
    overwrote), or a streaming file sink (JSON-lines, one event per
    line, for traces too big to buffer).

    Spans use the monotonic [Clock] and nest by recording the sink's
    current depth: a span emitted while [k] spans are open has
    [depth = k], and parent/child relationships are recoverable from
    [ts/dur] containment (which is also exactly how Chrome's
    [trace_event] viewer renders nesting on one thread track).

    Instrumented code should guard argument construction with
    [enabled]:
    {[
      if Obs.enabled obs then
        Obs.instant obs ~cat:"bank" ~args:[ ("culprit", Json.Int c) ]
          "accusation"
    ]} *)

type args = (string * Damd_util.Json.t) list

type event =
  | Span of {
      name : string;
      cat : string;
      ts_ns : int64;  (** start, relative to sink creation *)
      dur_ns : int64;
      depth : int;  (** number of enclosing open spans *)
      args : args;
    }
  | Instant of { name : string; cat : string; ts_ns : int64; args : args }
  | Sample of { name : string; ts_ns : int64; value : float }
      (** a point on a counter time-series *)

type t

val noop : t
(** Shared discard-everything sink. [span noop name f] is [f ()]; no
    clock read, no allocation. *)

val memory : ?detail:bool -> ?capacity:int -> unit -> t
(** Ring buffer of [capacity] events (default 65536), newest win. *)

val file : ?detail:bool -> string -> t
(** Stream events to [path] as JSON lines (header line first, metrics
    trailer on [close]). Unbounded; nothing is retained in memory, so
    [events] returns []. *)

val enabled : t -> bool
(** [false] only for [noop]. *)

val detailed : t -> bool
(** High-volume instrumentation (per-message instants in the engine)
    is emitted only when the sink was created with [~detail:true]. *)

val metrics : t -> Metrics.t option
(** Every enabled sink carries a registry; [None] for [noop]. *)

val span : t -> ?cat:string -> ?args:args -> string -> (unit -> 'a) -> 'a
(** Time [f] and record a complete-span event at exit. If [f] raises,
    the span is still recorded (with an ["error"] arg) and the
    exception rethrown. *)

val instant : t -> ?cat:string -> ?args:args -> string -> unit
val sample : t -> string -> float -> unit

val events : t -> event list
(** Buffered events, oldest first. [] for [noop] and file sinks. *)

val dropped : t -> int
(** Events overwritten by ring-buffer wrap-around. *)

val reset : t -> unit
(** Clear buffered events, the drop count and the metrics registry. *)

val close : t -> unit
(** Flush and close a file sink (writes the metrics trailer);
    no-op otherwise. *)

val json_of_event : event -> Damd_util.Json.t
(** One event in [damd-trace/1] form (see DESIGN.md §15). *)

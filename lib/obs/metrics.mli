(** Counters, gauges and fixed-bucket histograms.

    A registry is a flat namespace per instrument kind; registering the
    same name twice returns the same instrument. Updates are
    allocation-free ([incr]/[add]/[set] mutate an existing cell;
    [observe] writes into preallocated arrays), so instrumented hot
    paths pay a few stores at most.

    Histograms keep fixed bucket counts plus the first
    [reservoir_capacity] raw samples. Percentile extraction uses
    [Damd_util.Stats.percentile] over the raw samples while they are
    complete and falls back to linear interpolation inside the bucket
    bounds once the reservoir has overflowed. *)

type t

val create : unit -> t
val reset : t -> unit
(** Zero every registered instrument (registrations persist). *)

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val set_counter : counter -> int -> unit
(** Overwrite the value — used to snapshot externally-maintained raw
    counters (e.g. engine message totals) into a registry at export. *)

val counter_value : counter -> int

(** {2 Gauges} *)

type gauge

val gauge : t -> string -> gauge

val set : gauge -> float -> unit
(** Record the instantaneous value; the registry also tracks the peak. *)

val gauge_value : gauge -> float
val gauge_max : gauge -> float

(** {2 Histograms} *)

type histogram

val reservoir_capacity : int

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are ascending finite upper bounds; observations above the
    last bound land in an implicit overflow bucket. The default covers
    1..1e9 in a 1-2-5 progression (suits both nanosecond durations and
    small cardinalities). [buckets] is ignored when [name] is already
    registered. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int

val percentile : histogram -> float -> float
(** [percentile h p] for [p] in [0..100]. [nan] when empty. *)

val to_json : t -> Damd_util.Json.t
(** Stable (name-sorted) snapshot: counters, gauges with peaks, and
    histograms with count/sum/min/max, p50/p95/p99 and bucket counts. *)

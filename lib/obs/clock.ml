external now_ns : unit -> (int64[@unboxed])
  = "damd_obs_monotonic_ns_byte" "damd_obs_monotonic_ns"
[@@noalloc]

let ns_to_s ns = Int64.to_float ns *. 1e-9
let ns_to_us ns = Int64.to_float ns *. 1e-3
let s_since t0 = ns_to_s (Int64.sub (now_ns ()) t0)

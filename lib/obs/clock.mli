(** Monotonic clock.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] via a C stub, so readings
    never go backwards under NTP steps and reading costs no allocation
    in native code. All span timestamps in [Obs] and the bench scaling
    sweep use this clock. *)

external now_ns : unit -> (int64[@unboxed])
  = "damd_obs_monotonic_ns_byte" "damd_obs_monotonic_ns"
[@@noalloc]
(** Nanoseconds since an arbitrary fixed origin (boot, typically).
    Only differences are meaningful. *)

val s_since : int64 -> float
(** [s_since t0] is the elapsed time in seconds since the [now_ns]
    reading [t0]. *)

val ns_to_s : int64 -> float
(** Convert a nanosecond delta to seconds. *)

val ns_to_us : int64 -> float
(** Convert a nanosecond delta to microseconds (Chrome trace unit). *)

module Json = Damd_util.Json

type args = (string * Json.t) list

type event =
  | Span of {
      name : string;
      cat : string;
      ts_ns : int64;
      dur_ns : int64;
      depth : int;
      args : args;
    }
  | Instant of { name : string; cat : string; ts_ns : int64; args : args }
  | Sample of { name : string; ts_ns : int64; value : float }

type ring = {
  buf : event array;
  capacity : int;
  mutable len : int;
  mutable head : int; (* next write slot *)
  mutable ring_dropped : int;
}

type file_state = { oc : out_channel; mutable closed : bool }

type kind = Noop | Memory of ring | File of file_state

type t = {
  kind : kind;
  reg : Metrics.t option;
  detail : bool;
  mutable depth : int;
  t0 : int64;
}

let args_field = function [] -> [] | args -> [ ("args", Json.Obj args) ]

let json_of_event = function
  | Span { name; cat; ts_ns; dur_ns; depth; args } ->
      Json.Obj
        ([
           ("type", Json.String "span");
           ("name", Json.String name);
           ("cat", Json.String cat);
           ("ts_ns", Json.Int (Int64.to_int ts_ns));
           ("dur_ns", Json.Int (Int64.to_int dur_ns));
           ("depth", Json.Int depth);
         ]
        @ args_field args)
  | Instant { name; cat; ts_ns; args } ->
      Json.Obj
        ([
           ("type", Json.String "instant");
           ("name", Json.String name);
           ("cat", Json.String cat);
           ("ts_ns", Json.Int (Int64.to_int ts_ns));
         ]
        @ args_field args)
  | Sample { name; ts_ns; value } ->
      Json.Obj
        [
          ("type", Json.String "sample");
          ("name", Json.String name);
          ("ts_ns", Json.Int (Int64.to_int ts_ns));
          ("value", Json.Float value);
        ]

let noop = { kind = Noop; reg = None; detail = false; depth = 0; t0 = 0L }

let dummy_event = Instant { name = ""; cat = ""; ts_ns = 0L; args = [] }

let memory ?(detail = false) ?(capacity = 65536) () =
  let capacity = max 1 capacity in
  {
    kind =
      Memory
        {
          buf = Array.make capacity dummy_event;
          capacity;
          len = 0;
          head = 0;
          ring_dropped = 0;
        };
    reg = Some (Metrics.create ());
    detail;
    depth = 0;
    t0 = Clock.now_ns ();
  }

let file ?(detail = false) path =
  let oc = open_out path in
  output_string oc
    "{\"schema\":\"damd-trace/1\",\"stream\":true,\"clock\":\"monotonic\",\"unit\":\"ns\"}\n";
  {
    kind = File { oc; closed = false };
    reg = Some (Metrics.create ());
    detail;
    depth = 0;
    t0 = Clock.now_ns ();
  }

let enabled t = match t.kind with Noop -> false | Memory _ | File _ -> true
let detailed t = t.detail
let metrics t = t.reg

let record t ev =
  match t.kind with
  | Noop -> ()
  | Memory r ->
      if r.len = r.capacity then r.ring_dropped <- r.ring_dropped + 1
      else r.len <- r.len + 1;
      r.buf.(r.head) <- ev;
      r.head <- (r.head + 1) mod r.capacity
  | File f ->
      if not f.closed then begin
        output_string f.oc (Json.to_string ~indent:0 (json_of_event ev));
        output_char f.oc '\n'
      end

let rel_now t = Int64.sub (Clock.now_ns ()) t.t0

let instant t ?(cat = "") ?(args = []) name =
  match t.kind with
  | Noop -> ()
  | Memory _ | File _ ->
      record t (Instant { name; cat; ts_ns = rel_now t; args })

let sample t name value =
  match t.kind with
  | Noop -> ()
  | Memory _ | File _ ->
      record t (Sample { name; ts_ns = rel_now t; value })

let span t ?(cat = "") ?(args = []) name f =
  match t.kind with
  | Noop -> f ()
  | Memory _ | File _ -> (
      let depth = t.depth in
      t.depth <- depth + 1;
      let start = rel_now t in
      let finish args =
        t.depth <- depth;
        let dur_ns = Int64.sub (rel_now t) start in
        record t (Span { name; cat; ts_ns = start; dur_ns; depth; args })
      in
      match f () with
      | v ->
          finish args;
          v
      | exception e ->
          finish (("error", Json.Bool true) :: args);
          raise e)

let events t =
  match t.kind with
  | Noop | File _ -> []
  | Memory r ->
      let start = (r.head - r.len + r.capacity) mod r.capacity in
      List.init r.len (fun i -> r.buf.((start + i) mod r.capacity))

let dropped t =
  match t.kind with Noop | File _ -> 0 | Memory r -> r.ring_dropped

let reset t =
  (match t.kind with
  | Noop | File _ -> ()
  | Memory r ->
      r.len <- 0;
      r.head <- 0;
      r.ring_dropped <- 0);
  t.depth <- 0;
  match t.reg with None -> () | Some m -> Metrics.reset m

let close t =
  match t.kind with
  | Noop | Memory _ -> ()
  | File f ->
      if not f.closed then begin
        f.closed <- true;
        (match t.reg with
        | None -> ()
        | Some m ->
            output_string f.oc
              (Json.to_string ~indent:0
                 (Json.Obj [ ("metrics", Metrics.to_json m) ]));
            output_char f.oc '\n');
        close_out f.oc
      end

(** Flat-array, destination-restricted FPSS state — the n=10k engine.

    [Distributed] keeps per-node dense tables ([Array.init n (fun _ ->
    Array.make n ...)]): O(n^2) cells per table, ~100M at n=10k, with a
    boxed entry record and a full path list per cell. This module is the
    same change-driven Jacobi computation on a flat representation:

    - routing state is three unboxed scalars per (node, destination) —
      announced cost, hop count and next hop — in [n*k] arrays indexed
      [i*k + s]; paths are implicit in next-hop chains and reconstructed
      on demand;
    - the destination set may be restricted to [k <= n] nodes, so memory
      and work scale with [E + n*k] instead of [n^2];
    - tie-breaking is provably identical to the dense engine: for
      candidates [i :: p] vs [i :: p'] learned from distinct neighbors
      the canonical (cost, hops, lex path) order reduces to (cost, hops,
      neighbor id), which is what the flat state stores.

    With the full destination set the converged tables are byte-identical
    to [Distributed] (see [to_tables] and the equivalence tests).

    The [?offsets] hooks run the fixpoints over *announced* rows — node
    [i]'s stored entry is its honest recomputation plus [offsets.(i)] —
    which is how [Damd_faithful.Scale] models rational distortion and
    checks it with honest mirrors ([routing_deviation],
    [pricing_deviation]) without any per-node closures. *)

type t

val create : ?dests:int array -> Damd_graph.Graph.t -> t
(** Fresh state over [dests] (default: all nodes). Destinations must be
    distinct and in range; they are sorted internally. *)

val graph : t -> Damd_graph.Graph.t

val dests : t -> int array
(** The destination set, sorted ascending. *)

val run :
  ?max_rounds:int ->
  ?routing_offsets:float array ->
  ?pricing_offsets:float array ->
  t ->
  unit
(** Flood the destination facts, then run the routing and pricing
    fixpoints to convergence (default [max_rounds] = 10n+20 per stage;
    raises [Failure] beyond it). Offsets, when given, are per-node
    announcement distortions applied inside the fixpoints; they must keep
    effective costs non-negative. *)

val routing_fixpoint : ?max_rounds:int -> ?offsets:float array -> t -> unit
val pricing_fixpoint : ?max_rounds:int -> ?offsets:float array -> t -> unit

val update_cost : t -> int -> float -> unit
(** Change one node's transit cost in place (the announced state is
    untouched — call [rerun] to reconverge). Raises [Invalid_argument]
    on a bad node id or a negative/non-finite cost. *)

val rerun :
  ?max_rounds:int ->
  ?routing_offsets:float array ->
  ?pricing_offsets:float array ->
  t ->
  unit
(** Warm restart after [update_cost]: reconverge the routing and pricing
    fixpoints from the current announced state without re-flooding.
    Reaches state byte-identical to a cold [run] on the updated graph
    (the fixpoint is unique independent of the starting point; stale
    loop-carried candidates from a cost increase inflate by at least the
    minimum positive transit cost per round, so they die within the
    round budget — all transit costs must be strictly positive for
    this). *)

val flood : t -> unit
(** Accounting for the DATA1 stage restricted to [k] destination facts:
    [k * 2E] messages, rounds = max destination hop-eccentricity. *)

(** {2 Announced state} *)

val dist : t -> int -> dest:int -> float
(** Announced route cost from a node to [dest]; [infinity] if none.
    Raises [Invalid_argument] when [dest] is not in the destination set
    (likewise for the accessors below). *)

val hop_count : t -> int -> dest:int -> int
(** Announced path length in nodes (1 at the destination itself, 0 when
    unreachable). *)

val next_hop : t -> int -> dest:int -> int option

val path : t -> int -> dest:int -> int list option
(** Path reconstructed by walking next-hop chains; at a routing fixpoint
    this equals the dense engine's lex-optimal path. *)

val prices : t -> int -> dest:int -> (int * float) list
(** Announced VCG transit premia for the node's route to [dest], sorted
    by transit id — same contents as [Tables.packet_payments]. *)

(** {2 Mirror checkpoints} *)

val routing_deviation : t -> int -> float
(** Largest absolute gap between node [i]'s announced routing row and an
    honest recomputation from its neighbors' announced rows — what a
    checker holding the same announcements computes. 0 for honest nodes,
    [|delta|] under a cost distortion of [delta], [infinity] for
    structural lies (wrong hop count / next hop). *)

val pricing_deviation : t -> int -> float
(** Same checkpoint for the pricing rows. *)

(** {2 Accounting and oracle bridge} *)

val messages : t -> int
val rounds_flood : t -> int
val rounds_routing : t -> int
val rounds_pricing : t -> int

val recomputes : t -> int
(** Total [recompute] evaluations across all fixpoint rounds since
    creation — the work metric the dirty-set propagation minimizes
    (a dense Jacobi sweep would be [n*k] per round). *)

val set_obs : t -> Damd_obs.Obs.t -> unit
(** Install a trace sink: each fixpoint stage runs under a span and
    emits per-round [sparse.<stage>.dirty_nodes] /
    [sparse.<stage>.dirty_pairs] counter samples plus a completion
    instant with rounds and recompute counts. Default: noop. *)

val to_tables : t -> Tables.t
(** Dense tables for oracle comparison. Requires the full destination
    set; intended for tests and small n. *)

val state_words : t -> int
(** Approximate live footprint of the flat state, in words — the scaling
    bench's memory metric. *)

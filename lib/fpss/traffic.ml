module Rng = Damd_util.Rng

type t = float array array

let uniform ~n ~rate =
  Array.init n (fun src -> Array.init n (fun dst -> if src = dst then 0. else rate))

let random rng ~n ~max_rate =
  Array.init n (fun src ->
      Array.init n (fun dst -> if src = dst then 0. else Rng.float rng max_rate))

let hotspot rng ~n ~hotspots ~rate =
  let hot = Rng.subset rng (min hotspots n) n in
  let m = Array.make_matrix n n 0. in
  List.iter
    (fun dst ->
      for src = 0 to n - 1 do
        if src <> dst then m.(src).(dst) <- rate
      done)
    hot;
  m

let total t = Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0. t

let demand_pairs t =
  let acc = ref [] in
  Array.iteri
    (fun src row ->
      Array.iteri (fun dst rate -> if rate > 0. then acc := (src, dst, rate) :: !acc) row)
    t;
  List.sort
    (fun (s1, d1, r1) (s2, d2, r2) ->
      let c = Int.compare s1 s2 in
      if c <> 0 then c
      else
        let c = Int.compare d1 d2 in
        if c <> 0 then c else Float.compare r1 r2)
    !acc

let scale t f = Array.map (Array.map (fun x -> x *. f)) t

module Graph = Damd_graph.Graph
module Dijkstra = Damd_graph.Dijkstra

let by_transit (a, x) (b, y) =
  let c = Int.compare a b in
  if c <> 0 then c else Float.compare x y

let compute g =
  let n = Graph.n g in
  let routing = Array.make_matrix n n None in
  let prices = Array.make_matrix n n [] in
  for dst = 0 to n - 1 do
    let entries = Dijkstra.to_dest g ~dst in
    for src = 0 to n - 1 do
      match entries.(src) with
      | None -> ()
      | Some e ->
          routing.(src).(dst) <- Some e;
          if src <> dst then
            prices.(src).(dst) <-
              List.map
                (fun k -> (k, Graph.cost g k))
                (Dijkstra.transit_nodes e.Dijkstra.path)
              |> List.sort by_transit
    done
  done;
  { Tables.routing; prices }

module Graph = Damd_graph.Graph
module Dijkstra = Damd_graph.Dijkstra

let by_transit (a, x) (b, y) =
  let c = Int.compare a b in
  if c <> 0 then c else Float.compare x y

let compute g =
  let n = Graph.n g in
  let routing = Array.make_matrix n n None in
  let prices = Array.make_matrix n n [] in
  for dst = 0 to n - 1 do
    let entries = Dijkstra.to_dest g ~dst in
    (* Transit nodes appearing on any LCP toward [dst]; for each we need
       one avoid-k sweep. *)
    let transits = Hashtbl.create 16 in
    Array.iter
      (function
        | None -> ()
        | Some e ->
            List.iter
              (fun k -> Hashtbl.replace transits k ())
              (Dijkstra.transit_nodes e.Dijkstra.path))
      entries;
    let avoid_tables = Hashtbl.create 16 in
    Hashtbl.iter
      (fun k () -> Hashtbl.add avoid_tables k (Dijkstra.to_dest ~avoid:k g ~dst))
      transits;
    for src = 0 to n - 1 do
      match entries.(src) with
      | None -> ()
      | Some e ->
          routing.(src).(dst) <- Some e;
          if src <> dst then begin
            let price_of k =
              let table : Dijkstra.entry option array = Hashtbl.find avoid_tables k in
              match table.(src) with
              | None -> None (* graph not biconnected: no detour around k *)
              | Some detour ->
                  Some (k, Graph.cost g k +. detour.Dijkstra.cost -. e.Dijkstra.cost)
            in
            prices.(src).(dst) <-
              List.filter_map price_of (Dijkstra.transit_nodes e.Dijkstra.path)
              |> List.sort by_transit
          end
    done
  done;
  { Tables.routing; prices }

let path = Tables.path

let lcp_cost = Tables.lcp_cost

let price = Tables.price

let packet_payments = Tables.packet_payments

let premium g t ~src ~dst ~transit =
  Option.map (fun p -> p -. Graph.cost g transit) (Tables.price t ~src ~dst ~transit)

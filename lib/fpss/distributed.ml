module Graph = Damd_graph.Graph
module Dijkstra = Damd_graph.Dijkstra

let by_transit (a, x) (b, y) =
  let c = Int.compare a b in
  if c <> 0 then c else Float.compare x y

type result = {
  tables : Tables.t;
  rounds_flood : int;
  rounds_routing : int;
  rounds_pricing : int;
  messages : int;
}

(* DATA1: synchronous flooding of (node, cost) announcements. Each round a
   node forwards any facts it learned in the previous round to all
   neighbors; one message per (node, neighbor) per round with news. *)
let flood_costs g =
  let n = Graph.n g in
  let known = Array.init n (fun _ -> Array.make n false) in
  let fresh = Array.init n (fun i -> [ i ]) in
  for i = 0 to n - 1 do
    known.(i).(i) <- true
  done;
  let rounds = ref 0 and messages = ref 0 in
  let active = ref (n > 1) in
  while !active do
    incr rounds;
    let next_fresh = Array.make n [] in
    let progress = ref false in
    for i = 0 to n - 1 do
      if fresh.(i) <> [] then
        Array.iter
          (fun a ->
            incr messages;
            List.iter
              (fun fact ->
                if not known.(a).(fact) then begin
                  known.(a).(fact) <- true;
                  next_fresh.(a) <- fact :: next_fresh.(a);
                  progress := true
                end)
              fresh.(i))
          (Graph.neighbors_arr g i)
    done;
    Array.blit next_fresh 0 fresh 0 n;
    active := !progress
  done;
  (* The final round carried no news; don't count it as convergence work. *)
  (max 0 (!rounds - 1), !messages)

let infinity_cost = infinity

let entry_equal (a : Dijkstra.entry option) (b : Dijkstra.entry option) =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> a.Dijkstra.cost = b.Dijkstra.cost && a.Dijkstra.path = b.Dijkstra.path
  | _ -> false

(* Change-driven fixpoint skeleton shared by DATA2 and DATA3.

   Invariant (documented in DESIGN.md §9): entry (i, j) computed in round r
   is a pure function of the neighbors' j-entries at round r-1, so it can
   only differ from its round r-1 value when some neighbor's j-entry changed
   in round r-1. [dirty.(a)] holds exactly the destinations whose entry in
   [a]'s table changed last round; a node recomputes only the union of its
   neighbors' dirty sets. Round 1 recomputes everything — that matches the
   cold full sweep and also repairs any stale warm-start state. Updates are
   buffered and applied after the whole round so every recomputation reads
   round r-1 state (Jacobi iteration), exactly like the reference full
   sweep; the per-round changed-node sets — and therefore the round and
   message counts — are identical to the reference implementation. *)
let fixpoint ~max_rounds ~stage ~equal ~recompute ~skip_diagonal g state =
  let n = Graph.n g in
  let rounds = ref 0 and messages = ref 0 in
  let dirty = Array.make n [] in
  let stamp = Array.make n (-1) in
  let epoch = ref 0 in
  let first = ref true in
  let changed_nodes = ref (List.init n (fun i -> i)) in
  while !changed_nodes <> [] do
    incr rounds;
    if !rounds > max_rounds then
      failwith (Printf.sprintf "Distributed: %s did not converge" stage);
    (* Change-driven messaging: every node whose table changed last round
       announces to all neighbors. *)
    List.iter (fun i -> messages := !messages + Graph.degree g i) !changed_nodes;
    let updates = ref [] in
    let round_changed = ref [] in
    let next_dirty = Array.make n [] in
    for i = 0 to n - 1 do
      let row_changed = ref false in
      let consider j =
        if not (skip_diagonal && j = i) then begin
          let v = recompute i j in
          if not (equal v state.(i).(j)) then begin
            updates := (i, j, v) :: !updates;
            next_dirty.(i) <- j :: next_dirty.(i);
            row_changed := true
          end
        end
      in
      if !first then
        for j = 0 to n - 1 do
          consider j
        done
      else begin
        incr epoch;
        Array.iter
          (fun a ->
            List.iter
              (fun j ->
                if stamp.(j) <> !epoch then begin
                  stamp.(j) <- !epoch;
                  consider j
                end)
              dirty.(a))
          (Graph.neighbors_arr g i)
      end;
      if !row_changed then round_changed := i :: !round_changed
    done;
    List.iter (fun (i, j, v) -> state.(i).(j) <- v) !updates;
    Array.blit next_dirty 0 dirty 0 n;
    changed_nodes := !round_changed;
    first := false
  done;
  (* Convergence is detected one round after the last change. *)
  (state, max 0 (!rounds - 1), !messages)

(* DATA2: synchronous path-vector Bellman-Ford under the canonical order
   (cost, hops, lex path) — identical tie-breaking to [Dijkstra]. *)
let routing_fixpoint ?(max_rounds = 1000) ?init g =
  let n = Graph.n g in
  let state =
    match init with
    | Some (tables : Dijkstra.entry option array array) ->
        Array.map Array.copy tables
    | None -> Array.init n (fun _ -> Array.make n None)
  in
  for i = 0 to n - 1 do
    state.(i).(i) <- Some { Dijkstra.cost = 0.; path = [ i ] }
  done;
  let recompute i j =
    let best = ref None in
    Array.iter
      (fun a ->
        match state.(a).(j) with
        | Some e when not (List.mem i e.Dijkstra.path) ->
            let step = if a = j then 0. else Graph.cost g a in
            let cand =
              { Dijkstra.cost = e.Dijkstra.cost +. step; path = i :: e.Dijkstra.path }
            in
            (match !best with
            | None -> best := Some cand
            | Some b -> if Dijkstra.compare_entry cand b < 0 then best := Some cand)
        | _ -> ())
      (Graph.neighbors_arr g i);
    !best
  in
  fixpoint ~max_rounds ~stage:"routing" ~equal:entry_equal ~recompute
    ~skip_diagonal:true g state

(* DATA3: pricing fixpoint over the converged routing tables. *)
let pricing_fixpoint ?(max_rounds = 1000) ?init g routing =
  let n = Graph.n g in
  let dist i j =
    match routing.(i).(j) with
    | Some e -> e.Dijkstra.cost
    | None -> infinity_cost
  in
  let on_path k i j =
    match routing.(i).(j) with
    | Some e -> List.mem k e.Dijkstra.path
    | None -> false
  in
  let state =
    match init with
    | Some (prices : (int * float) list array array) -> Array.map Array.copy prices
    | None -> Array.init n (fun _ -> Array.make n ([] : (int * float) list))
  in
  let recompute i j =
    if i = j then []
    else
      match routing.(i).(j) with
      | None -> []
      | Some e ->
          let price_for k =
            (* d(-k)(i,j) via each neighbor a <> k. *)
            let via a =
              if a = k then infinity_cost
              else begin
                let step = if a = j then 0. else Graph.cost g a in
                let d_mk_a =
                  if a = j then 0.
                  else if not (on_path k a j) then dist a j
                  else
                    match List.assoc_opt k state.(a).(j) with
                    | Some p -> p -. Graph.cost g k +. dist a j
                    | None -> infinity_cost
                in
                step +. d_mk_a
              end
            in
            let d_mk =
              Array.fold_left (fun acc a -> Float.min acc (via a)) infinity_cost
                (Graph.neighbors_arr g i)
            in
            if Float.is_finite d_mk then
              Some (k, Graph.cost g k +. d_mk -. dist i j)
            else None
          in
          List.filter_map price_for (Dijkstra.transit_nodes e.Dijkstra.path)
          |> List.sort by_transit
  in
  fixpoint ~max_rounds ~stage:"pricing" ~equal:( = ) ~recompute
    ~skip_diagonal:false g state

let run ?max_rounds ?warm_start g =
  let n = Graph.n g in
  let max_rounds = match max_rounds with Some r -> r | None -> (10 * n) + 20 in
  let rounds_flood, flood_msgs = flood_costs g in
  let routing_init = Option.map (fun t -> t.Tables.routing) warm_start in
  let pricing_init = Option.map (fun t -> t.Tables.prices) warm_start in
  let routing, rounds_routing, routing_msgs =
    routing_fixpoint ~max_rounds ?init:routing_init g
  in
  let prices, rounds_pricing, pricing_msgs =
    pricing_fixpoint ~max_rounds ?init:pricing_init g routing
  in
  {
    tables = { Tables.routing; prices };
    rounds_flood;
    rounds_routing;
    rounds_pricing;
    messages = flood_msgs + routing_msgs + pricing_msgs;
  }

(* --- Reference implementation ---

   The pre-dirty-set full sweep: every round recomputes all n^2 entries and
   compares whole rows. Kept as the oracle for the equivalence tests in
   [test/test_fpss.ml], which assert that the change-driven fixpoints above
   produce identical tables, round counts and message counts. *)

let reference_routing_fixpoint ?(max_rounds = 1000) ?init g =
  let n = Graph.n g in
  let state =
    match init with
    | Some (tables : Dijkstra.entry option array array) ->
        Array.map Array.copy tables
    | None -> Array.init n (fun _ -> Array.make n None)
  in
  for i = 0 to n - 1 do
    state.(i).(i) <- Some { Dijkstra.cost = 0.; path = [ i ] }
  done;
  let rounds = ref 0 and messages = ref 0 in
  let changed_nodes = ref (List.init n (fun i -> i)) in
  while !changed_nodes <> [] do
    incr rounds;
    if !rounds > max_rounds then failwith "Distributed: routing did not converge";
    List.iter (fun i -> messages := !messages + Graph.degree g i) !changed_nodes;
    let next = Array.init n (fun _ -> Array.make n None) in
    let round_changed = ref [] in
    for i = 0 to n - 1 do
      next.(i).(i) <- Some { Dijkstra.cost = 0.; path = [ i ] };
      for j = 0 to n - 1 do
        if i <> j then begin
          let consider best a =
            match state.(a).(j) with
            | Some e when not (List.mem i e.Dijkstra.path) ->
                let step = if a = j then 0. else Graph.cost g a in
                let cand =
                  { Dijkstra.cost = e.Dijkstra.cost +. step; path = i :: e.Dijkstra.path }
                in
                (match best with
                | None -> Some cand
                | Some b -> if Dijkstra.compare_entry cand b < 0 then Some cand else best)
            | _ -> best
          in
          next.(i).(j) <- List.fold_left consider None (Graph.neighbors g i)
        end
      done;
      if next.(i) <> state.(i) then round_changed := i :: !round_changed
    done;
    Array.blit next 0 state 0 n;
    changed_nodes := !round_changed
  done;
  (state, max 0 (!rounds - 1), !messages)

let reference_pricing_fixpoint ?(max_rounds = 1000) ?init g routing =
  let n = Graph.n g in
  let dist i j =
    match routing.(i).(j) with
    | Some e -> e.Dijkstra.cost
    | None -> infinity_cost
  in
  let on_path k i j =
    match routing.(i).(j) with
    | Some e -> List.mem k e.Dijkstra.path
    | None -> false
  in
  let state =
    match init with
    | Some (prices : (int * float) list array array) -> Array.map Array.copy prices
    | None -> Array.init n (fun _ -> Array.make n ([] : (int * float) list))
  in
  let rounds = ref 0 and messages = ref 0 in
  let changed_nodes = ref (List.init n (fun i -> i)) in
  while !changed_nodes <> [] do
    incr rounds;
    if !rounds > max_rounds then failwith "Distributed: pricing did not converge";
    List.iter (fun i -> messages := !messages + Graph.degree g i) !changed_nodes;
    let next = Array.init n (fun _ -> Array.make n ([] : (int * float) list)) in
    let round_changed = ref [] in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          match routing.(i).(j) with
          | None -> ()
          | Some e ->
              let price_for k =
                let via a =
                  if a = k then infinity_cost
                  else begin
                    let step = if a = j then 0. else Graph.cost g a in
                    let d_mk_a =
                      if a = j then 0.
                      else if not (on_path k a j) then dist a j
                      else
                        match List.assoc_opt k state.(a).(j) with
                        | Some p -> p -. Graph.cost g k +. dist a j
                        | None -> infinity_cost
                    in
                    step +. d_mk_a
                  end
                in
                let d_mk =
                  List.fold_left (fun acc a -> Float.min acc (via a)) infinity_cost
                    (Graph.neighbors g i)
                in
                if Float.is_finite d_mk then
                  Some (k, Graph.cost g k +. d_mk -. dist i j)
                else None
              in
              next.(i).(j) <-
                List.filter_map price_for (Dijkstra.transit_nodes e.Dijkstra.path)
                |> List.sort by_transit
      done;
      if next.(i) <> state.(i) then round_changed := i :: !round_changed
    done;
    Array.blit next 0 state 0 n;
    changed_nodes := !round_changed
  done;
  (state, max 0 (!rounds - 1), !messages)

let run_reference ?max_rounds ?warm_start g =
  let n = Graph.n g in
  let max_rounds = match max_rounds with Some r -> r | None -> (10 * n) + 20 in
  let rounds_flood, flood_msgs = flood_costs g in
  let routing_init = Option.map (fun t -> t.Tables.routing) warm_start in
  let pricing_init = Option.map (fun t -> t.Tables.prices) warm_start in
  let routing, rounds_routing, routing_msgs =
    reference_routing_fixpoint ~max_rounds ?init:routing_init g
  in
  let prices, rounds_pricing, pricing_msgs =
    reference_pricing_fixpoint ~max_rounds ?init:pricing_init g routing
  in
  {
    tables = { Tables.routing; prices };
    rounds_flood;
    rounds_routing;
    rounds_pricing;
    messages = flood_msgs + routing_msgs + pricing_msgs;
  }

(** The distributed FPSS computation — a BGP-style path-vector fixpoint.

    FPSS distribute the VCG computation over the nodes themselves:
    iterative exchanges with neighbors build [DATA1] (transit costs, a
    flood), then [DATA2] (routing tables, path-vector Bellman–Ford) and
    [DATA3] (pricing tables). This module is the *obedient* reference
    implementation of that computation, run in deterministic synchronous
    rounds; the faithful extension ([Damd_faithful]) re-implements the same
    update rules as per-node message handlers on the simulator, with
    checkers mirroring them.

    The pricing recurrence (derived in DESIGN.md §5): for transit node [k]
    on [i]'s LCP to [j],

    - [d(-k)(i,j) = min over neighbors a <> k of step(a) + d(-k)(a,j)],
      where [step a] is [0] if [a = j] else [a]'s transit cost, and
      [d(-k)(a,j)] is read off [a]'s routing table when [k] is not on
      [a]'s LCP, or recovered from [a]'s price entry
      [p k a j - c_k + d(a,j)] when it is;
    - [p k i j = c_k + d(-k)(i,j) - d(i,j)].

    Initialized at +infinity, the iteration converges from above to the
    avoid-[k] shortest distances. Convergence to the *centralized* tables
    is exact on integer-valued costs and within floating-point tolerance
    otherwise (the recurrence re-associates sums); the property tests in
    [test/test_fpss.ml] check both. *)

type result = {
  tables : Tables.t;  (** converged routing + pricing tables *)
  rounds_flood : int;  (** rounds for the DATA1 transit-cost flood *)
  rounds_routing : int;  (** rounds for DATA2 to reach fixpoint *)
  rounds_pricing : int;  (** rounds for DATA3 to reach fixpoint *)
  messages : int;  (** change-driven table/flood messages sent in total *)
}

val run : ?max_rounds:int -> ?warm_start:Tables.t -> Damd_graph.Graph.t -> result
(** Execute all three construction stages. Raises [Failure] if any stage
    fails to converge within [max_rounds] (default 10 * n + 20) rounds —
    which cannot happen on a connected graph.

    [warm_start] seeds the routing and pricing state from previously
    converged tables instead of from scratch — the incremental-update
    scenario of experiment E15: after a single cost change, re-convergence
    from the old tables is much cheaper than a cold start. The fixpoint
    reached is identical (recompute-from-neighbors semantics make the
    iteration self-correcting; verified against the centralized mechanism
    in the tests). *)

val flood_costs : Damd_graph.Graph.t -> int * int
(** Just the DATA1 flood: (rounds, messages). Every node learns every
    declared transit cost; rounds equal the graph's hop diameter. *)

val run_reference :
  ?max_rounds:int -> ?warm_start:Tables.t -> Damd_graph.Graph.t -> result
(** The pre-optimization full-sweep fixpoints: every round recomputes all
    n^2 table entries and compares whole rows. [run] keeps per-node dirty
    destination sets and recomputes only entries whose inputs changed; this
    reference is retained solely as the oracle for the equivalence tests,
    which assert that [run] produces identical tables, round counts and
    message counts. Do not use it outside tests. *)

module Graph = Damd_graph.Graph
module Dijkstra = Damd_graph.Dijkstra
module Obs = Damd_obs.Obs

let by_transit (a, x) (b, y) =
  let c = Int.compare a b in
  if c <> 0 then c else Float.compare x y

type t = {
  mutable g : Graph.t;  (* mutable for [update_cost] warm restarts *)
  dests : int array;  (* sorted destination nodes; slot s <-> dests.(s) *)
  dest_of : int array;  (* node -> slot, -1 when not a destination *)
  k : int;
  (* Flat n*k state, indexed i*k + s. The dense engine allocates n^2
     option/record cells per table (~100M at n=10k); here routing is three
     unboxed scalars per (node, destination) pair and the path is implicit
     in the next-hop chain, so memory is O(n*k) + O(route entries). *)
  dist : float array;  (* announced route cost; infinity = unreachable *)
  hops : int array;  (* announced path length in nodes; 0 = none *)
  next : int array;  (* announced next hop; -1 = none, self at the dest *)
  prices : (int * float) list array;  (* announced transit prices, sorted *)
  mutable rounds_flood : int;
  mutable rounds_routing : int;
  mutable rounds_pricing : int;
  mutable messages : int;
  mutable recomputes : int;
  mutable obs : Obs.t;
}

let create ?dests g =
  let n = Graph.n g in
  let dests =
    match dests with
    | None -> Array.init n Fun.id
    | Some d ->
        let d = Array.copy d in
        Array.sort Int.compare d;
        d
  in
  let k = Array.length dests in
  if k = 0 then invalid_arg "Sparse.create: empty destination set";
  let dest_of = Array.make n (-1) in
  Array.iteri
    (fun s j ->
      if j < 0 || j >= n then invalid_arg "Sparse.create: destination out of range";
      if dest_of.(j) >= 0 then invalid_arg "Sparse.create: duplicate destination";
      dest_of.(j) <- s)
    dests;
  {
    g;
    dests;
    dest_of;
    k;
    dist = Array.make (n * k) infinity;
    hops = Array.make (n * k) 0;
    next = Array.make (n * k) (-1);
    prices = Array.make (n * k) [];
    rounds_flood = 0;
    rounds_routing = 0;
    rounds_pricing = 0;
    messages = 0;
    recomputes = 0;
    obs = Obs.noop;
  }

let graph t = t.g
let dests t = Array.copy t.dests
let messages t = t.messages
let recomputes t = t.recomputes
let set_obs t obs = t.obs <- obs
let rounds_flood t = t.rounds_flood
let rounds_routing t = t.rounds_routing
let rounds_pricing t = t.rounds_pricing

let slot t j =
  if j < 0 || j >= Graph.n t.g || t.dest_of.(j) < 0 then
    invalid_arg "Sparse: not a destination"
  else t.dest_of.(j)

let idx t i s = (i * t.k) + s

let dist t i ~dest = t.dist.(idx t i (slot t dest))
let hop_count t i ~dest = t.hops.(idx t i (slot t dest))

let next_hop t i ~dest =
  let nx = t.next.(idx t i (slot t dest)) in
  if nx < 0 then None else Some nx

let prices t i ~dest = t.prices.(idx t i (slot t dest))

(* Reconstruct the announced path by walking next-hop pointers. At a
   routing fixpoint [hops] strictly decreases along the chain, so the walk
   terminates in [hops] steps; the explicit bound only guards calls on
   unconverged state. *)
let path t i ~dest =
  let s = slot t dest in
  if t.next.(idx t i s) < 0 then None
  else begin
    let n = Graph.n t.g in
    let rec go v acc steps =
      if steps > n then None
      else if v = dest then Some (List.rev (dest :: acc))
      else
        let nx = t.next.(idx t v s) in
        if nx < 0 then None else go nx (v :: acc) (steps + 1)
    in
    go i [] 0
  end

(* Is [node] on the announced path from [v0] to [dests.(s)], endpoints
   included? Mirrors [List.mem node path] on the dense representation. *)
let chain_mem t ~from:v0 ~s ~node =
  let j = t.dests.(s) in
  let n = Graph.n t.g in
  let rec go v steps =
    if steps > n then false
    else if v = node then true
    else if v = j then false
    else
      let nx = t.next.(idx t v s) in
      if nx < 0 then false else go nx (steps + 1)
  in
  go v0 0

(* DATA1 at scale: only the [k] destination (identity, cost) facts flood —
   each fact crosses every directed edge once, and the rounds to quiesce
   are the largest hop-eccentricity among the destinations. The full
   n-fact flood of [Distributed.flood_costs] is O(n*E) messages, which is
   exactly the kind of all-pairs traffic the destination-restricted
   protocol avoids; transit costs of intermediate nodes ride inside the
   routing announcements themselves (each hop adds its own cost before
   forwarding), so no separate global flood is needed. *)
let flood t =
  let ecc =
    Array.fold_left
      (fun acc j -> max acc (Graph.hop_eccentricity t.g j))
      0 t.dests
  in
  t.rounds_flood <- ecc;
  t.messages <- t.messages + (t.k * 2 * Graph.num_edges t.g)

(* DATA2: path-vector Bellman-Ford under the canonical (cost, hops, lex
   path) order, on flat state. For candidates [i :: path_a] vs
   [i :: path_a'] from distinct neighbors a <> a', the lex comparison
   reduces to [Int.compare a a'] — so (cost, hops, neighbor id) is
   *exactly* the dense tie-break, and since [neighbors_arr] is sorted
   ascending a strict improvement test keeps the smallest neighbor on
   ties. No explicit loop check is needed from a cold start: a walk that
   revisits a node costs at least as much as its loop-free core and is
   strictly longer, so under the canonical order looping candidates can
   never win, and distances descend monotonically to the unique LCP
   fixpoint (this is why [recompute] is a pure function of the neighbors'
   (dist, hops) entries — the invariant the dirty-set propagation needs).

   [offsets], when given, models rational cost distortion: node i's
   *announced* entry is its honest recomputation plus [offsets.(i)]
   (diagonals excepted). The fixpoint then runs over announced rows, so
   honest mirrors recomputed from announced inputs agree everywhere
   except at the distorting nodes themselves — see [routing_deviation].
   Offsets must keep effective link costs non-negative. *)
let recompute_routing t i s =
  let j = t.dests.(s) in
  let best_d = ref infinity and best_h = ref 0 and best_a = ref (-1) in
  Array.iter
    (fun a ->
      let da = t.dist.(idx t a s) in
      if Float.is_finite da then begin
        let step = if a = j then 0. else Graph.cost t.g a in
        let d = da +. step in
        let h = t.hops.(idx t a s) + 1 in
        if
          d < !best_d
          || (d = !best_d && (h < !best_h || (h = !best_h && !best_a < 0)))
        then begin
          best_d := d;
          best_h := h;
          best_a := a
        end
      end)
    (Graph.neighbors_arr t.g i);
  (!best_d, !best_h, !best_a)

(* Change-driven Jacobi fixpoint on flat state — the skeleton of
   [Distributed.fixpoint] with (node, slot) pairs instead of matrix
   cells: updates are buffered and applied after the round, a node only
   recomputes the union of its neighbors' dirty slots, and a changed node
   announces to all neighbors (degree messages). *)
let fixpoint ~max_rounds ~stage ~changed ~recompute ~apply t =
  let g = t.g in
  let n = Graph.n g in
  let rounds = ref 0 in
  let dirty = Array.make n [] in
  let stamp = Array.make t.k (-1) in
  let epoch = ref 0 in
  let first = ref true in
  let changed_nodes = ref (List.init n Fun.id) in
  while !changed_nodes <> [] do
    incr rounds;
    if !rounds > max_rounds then
      failwith (Printf.sprintf "Sparse: %s did not converge" stage);
    List.iter
      (fun i -> t.messages <- t.messages + Graph.degree g i)
      !changed_nodes;
    let updates = ref [] in
    let round_changed = ref [] in
    let next_dirty = Array.make n [] in
    for i = 0 to n - 1 do
      let row_changed = ref false in
      let consider s =
        if t.dests.(s) <> i then begin
          t.recomputes <- t.recomputes + 1;
          let v = recompute i s in
          if changed i s v then begin
            updates := (i, s, v) :: !updates;
            next_dirty.(i) <- s :: next_dirty.(i);
            row_changed := true
          end
        end
      in
      if !first then
        for s = 0 to t.k - 1 do
          consider s
        done
      else begin
        incr epoch;
        Array.iter
          (fun a ->
            List.iter
              (fun s ->
                if stamp.(s) <> !epoch then begin
                  stamp.(s) <- !epoch;
                  consider s
                end)
              dirty.(a))
          (Graph.neighbors_arr g i)
      end;
      if !row_changed then round_changed := i :: !round_changed
    done;
    List.iter (fun (i, s, v) -> apply i s v) !updates;
    (* Per-round dirty-set telemetry: how many nodes changed and how
       many (node, slot) pairs they re-announced. *)
    if Obs.enabled t.obs then begin
      Obs.sample t.obs
        (Printf.sprintf "sparse.%s.dirty_nodes" stage)
        (float_of_int (List.length !round_changed));
      Obs.sample t.obs
        (Printf.sprintf "sparse.%s.dirty_pairs" stage)
        (float_of_int (List.length !updates))
    end;
    Array.blit next_dirty 0 dirty 0 n;
    changed_nodes := !round_changed;
    first := false
  done;
  max 0 (!rounds - 1)

let default_rounds t = (10 * Graph.n t.g) + 20

let routing_fixpoint ?max_rounds ?offsets t =
  let max_rounds = match max_rounds with Some r -> r | None -> default_rounds t in
  let off i = match offsets with None -> 0. | Some o -> o.(i) in
  Array.iteri
    (fun s j ->
      let ix = idx t j s in
      t.dist.(ix) <- 0.;
      t.hops.(ix) <- 1;
      t.next.(ix) <- j)
    t.dests;
  let recompute i s =
    let d, h, a = recompute_routing t i s in
    if a >= 0 then (d +. off i, h, a) else (d, h, a)
  in
  let changed i s (d, h, a) =
    let ix = idx t i s in
    not (Float.equal d t.dist.(ix)) || h <> t.hops.(ix) || a <> t.next.(ix)
  in
  let apply i s (d, h, a) =
    let ix = idx t i s in
    t.dist.(ix) <- d;
    t.hops.(ix) <- h;
    t.next.(ix) <- a
  in
  let r0 = t.recomputes in
  t.rounds_routing <-
    Obs.span t.obs ~cat:"fpss" "sparse.routing" (fun () ->
        fixpoint ~max_rounds ~stage:"routing" ~changed ~recompute ~apply t);
  if Obs.enabled t.obs then
    Obs.instant t.obs ~cat:"fpss"
      ~args:
        [
          ("rounds", Damd_util.Json.Int t.rounds_routing);
          ("recomputes", Damd_util.Json.Int (t.recomputes - r0));
        ]
      "sparse.routing.done"

(* DATA3: the pricing recurrence of [Distributed.pricing_fixpoint] on
   announced sparse routing state. Runs only after routing converged, so
   next-hop chains are stable and loop-free and [chain_mem] is an exact
   stand-in for the dense [on_path]. *)
let recompute_pricing t i s =
  let j = t.dests.(s) in
  if t.next.(idx t i s) < 0 then []
  else begin
    let transits =
      (* Interior of i's announced path: next-hop chain minus endpoints. *)
      let rec go v acc =
        if v = j then acc
        else
          let nx = t.next.(idx t v s) in
          if nx < 0 then acc else go nx (v :: acc)
      in
      go t.next.(idx t i s) []
    in
    let d_ij = t.dist.(idx t i s) in
    let price_for k =
      (* d(-k)(i,j) via each neighbor a <> k. *)
      let via a =
        if a = k then infinity
        else begin
          let step = if a = j then 0. else Graph.cost t.g a in
          let d_mk_a =
            if a = j then 0.
            else if not (chain_mem t ~from:a ~s ~node:k) then t.dist.(idx t a s)
            else
              match List.assoc_opt k t.prices.(idx t a s) with
              | Some p -> p -. Graph.cost t.g k +. t.dist.(idx t a s)
              | None -> infinity
          in
          step +. d_mk_a
        end
      in
      let d_mk =
        Array.fold_left
          (fun acc a -> Float.min acc (via a))
          infinity
          (Graph.neighbors_arr t.g i)
      in
      if Float.is_finite d_mk then Some (k, Graph.cost t.g k +. d_mk -. d_ij)
      else None
    in
    List.filter_map price_for transits |> List.sort by_transit
  end

let pricing_fixpoint ?max_rounds ?offsets t =
  let max_rounds = match max_rounds with Some r -> r | None -> default_rounds t in
  let recompute i s =
    match offsets with
    | None -> recompute_pricing t i s
    | Some o ->
        if o.(i) = 0. then recompute_pricing t i s
        else List.map (fun (k, p) -> (k, p +. o.(i))) (recompute_pricing t i s)
  in
  let changed i s v = v <> t.prices.(idx t i s) in
  let apply i s v = t.prices.(idx t i s) <- v in
  let r0 = t.recomputes in
  t.rounds_pricing <-
    Obs.span t.obs ~cat:"fpss" "sparse.pricing" (fun () ->
        fixpoint ~max_rounds ~stage:"pricing" ~changed ~recompute ~apply t);
  if Obs.enabled t.obs then
    Obs.instant t.obs ~cat:"fpss"
      ~args:
        [
          ("rounds", Damd_util.Json.Int t.rounds_pricing);
          ("recomputes", Damd_util.Json.Int (t.recomputes - r0));
        ]
      "sparse.pricing.done"

let run ?max_rounds ?routing_offsets ?pricing_offsets t =
  flood t;
  routing_fixpoint ?max_rounds ?offsets:routing_offsets t;
  pricing_fixpoint ?max_rounds ?offsets:pricing_offsets t

(* --- Warm restarts ---

   After a transit-cost change the old announced state is a valid Jacobi
   starting point: the fixpoint's first round recomputes every (node,
   slot) pair against the new costs, and iteration descends (decrease) or
   inflates stale loop-carried candidates until the true alternative wins
   (increase — the count-to-infinity walk is bounded because every loop
   traversal adds at least the minimum positive transit cost, so it dies
   within the default round budget). The fixpoint itself is unique
   independent of the starting point: distances are the unique shortest
   values, next hops the smallest neighbor attaining them, and the
   pricing recurrence's cross-node dependencies follow announced chains
   toward the destination (strictly decreasing hop counts), so stale
   price entries cannot sustain a self-consistent wrong cycle. Hence a
   warm rerun lands on byte-identical state to a cold run — the property
   the differential tests pin against [Distributed.run ~warm_start]. *)

let update_cost t i c =
  if i < 0 || i >= Graph.n t.g then invalid_arg "Sparse.update_cost: node";
  if c < 0. || not (Float.is_finite c) then
    invalid_arg "Sparse.update_cost: bad cost";
  t.g <- Graph.with_cost t.g i c

let rerun ?max_rounds ?routing_offsets ?pricing_offsets t =
  (* No flood: the [k] destination identities are already common
     knowledge, and changed transit costs ride inside the routing
     announcements themselves. *)
  routing_fixpoint ?max_rounds ?offsets:routing_offsets t;
  pricing_fixpoint ?max_rounds ?offsets:pricing_offsets t

(* --- Mirror checkpoints ---

   A checker holds the announced rows of a node's neighbors (it receives
   the same announcements), so it can apply one honest recomputation step
   F to them and compare the result with what the node itself announced.
   Because the fixpoint above runs over *announced* rows, an honest
   node's announcement IS F(announced neighbors) and the residual is 0;
   a node distorting by delta shows residual |delta|. Structural lies
   (wrong next hop / wrong transit set) surface as an infinite
   residual. *)

let routing_deviation t i =
  let dev = ref 0. in
  for s = 0 to t.k - 1 do
    if t.dests.(s) <> i then begin
      let d, h, a = recompute_routing t i s in
      let ix = idx t i s in
      if h <> t.hops.(ix) || a <> t.next.(ix) then dev := infinity
      else if Float.is_finite d || Float.is_finite t.dist.(ix) then begin
        let delta = Float.abs (t.dist.(ix) -. d) in
        if delta > !dev then dev := delta
      end
    end
  done;
  !dev

let pricing_deviation t i =
  let dev = ref 0. in
  for s = 0 to t.k - 1 do
    if t.dests.(s) <> i then begin
      let honest = recompute_pricing t i s in
      let stored = t.prices.(idx t i s) in
      if List.compare_lengths honest stored <> 0 then dev := infinity
      else
        List.iter2
          (fun (k1, p1) (k2, p2) ->
            if k1 <> k2 then dev := infinity
            else begin
              let delta = Float.abs (p1 -. p2) in
              if delta > !dev then dev := delta
            end)
          honest stored
    end
  done;
  !dev

(* --- Dense oracle bridge --- *)

let to_tables t =
  let n = Graph.n t.g in
  if t.k <> n then invalid_arg "Sparse.to_tables: needs the full destination set";
  let routing =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let s = t.dest_of.(j) in
            match path t i ~dest:j with
            | None -> None
            | Some p -> Some { Dijkstra.cost = t.dist.(idx t i s); path = p }))
  in
  let prices =
    Array.init n (fun i ->
        Array.init n (fun j -> t.prices.(idx t i (t.dest_of.(j)))))
  in
  { Tables.routing; prices }

(* Rough live-heap footprint of the state arrays, in words — used by the
   scaling bench to show O(n*k) memory. *)
let state_words t =
  let nk = Array.length t.dist in
  let price_words =
    Array.fold_left
      (fun acc l -> acc + (List.length l * 5) (* cons + boxed pair *))
      0 t.prices
  in
  (* dist (boxed float array = 1 word/elt) + hops + next + prices slots *)
  (4 * nk) + price_words

module Dijkstra = Damd_graph.Dijkstra
module Sha256 = Damd_crypto.Sha256

type entry = Dijkstra.entry

type price_entry = { transit : int; price : float; tags : int list }

type routing_table = entry option array

type pricing_table = price_entry list array

type update =
  | Cost_announce of { origin : int; cost : float }
  | Routing_update of { origin : int; table : routing_table }
  | Pricing_update of { origin : int; table : pricing_table }

type msg =
  | Update of update
  | Copy of { principal : int; via : int; inner : update }
  | Packet of { src : int; dst : int; rate : float; trace : int list }

let update_size = function
  | Cost_announce _ -> 12 (* origin + cost *)
  | Routing_update { table; _ } ->
      Array.fold_left
        (fun acc e ->
          match e with
          | None -> acc + 1
          | Some e -> acc + 9 + (4 * List.length e.Dijkstra.path))
        4 table
  | Pricing_update { table; _ } ->
      Array.fold_left
        (fun acc entries ->
          List.fold_left
            (fun acc pe -> acc + 12 + (4 * List.length pe.tags))
            (acc + 1) entries)
        4 table

let msg_size = function
  | Update u -> 1 + update_size u
  | Copy { inner; _ } -> 9 + update_size inner
  | Packet { trace; _ } -> 20 + (4 * List.length trace)

let empty_routing ~n ~self =
  let t = Array.make n None in
  t.(self) <- Some { Dijkstra.cost = 0.; path = [ self ] };
  t

let empty_pricing ~n = Array.make n ([] : price_entry list)

let recompute_routing ~self ~n ~costs ~neighbor_tables =
  let table = empty_routing ~n ~self in
  for dst = 0 to n - 1 do
    if dst <> self then begin
      let consider best (a, (nbr : routing_table)) =
        match nbr.(dst) with
        | Some e when not (List.mem self e.Dijkstra.path) ->
            let step = if a = dst then 0. else costs.(a) in
            let cand =
              { Dijkstra.cost = e.Dijkstra.cost +. step; path = self :: e.Dijkstra.path }
            in
            (match best with
            | None -> Some cand
            | Some b -> if Dijkstra.compare_entry cand b < 0 then Some cand else best)
        | _ -> best
      in
      table.(dst) <- List.fold_left consider None neighbor_tables
    end
  done;
  table

let recompute_pricing ~self ~costs ~own_routing ~neighbor_routing ~neighbor_pricing =
  let n = Array.length own_routing in
  let dist_of (t : routing_table) j =
    match t.(j) with Some e -> e.Dijkstra.cost | None -> infinity
  in
  let on_path_of (t : routing_table) k j =
    match t.(j) with Some e -> List.mem k e.Dijkstra.path | None -> false
  in
  let table = empty_pricing ~n in
  for dst = 0 to n - 1 do
    if dst <> self then
      match own_routing.(dst) with
      | None -> ()
      | Some e ->
          let price_for k =
            (* d(-k)(self,dst) via each neighbor a <> k, tracking the set
               of minimizing neighbors for the identity tag. *)
            let candidates =
              List.filter_map
                (fun (a, (nbr_r : routing_table)) ->
                  if a = k then None
                  else begin
                    let step = if a = dst then 0. else costs.(a) in
                    let d_mk_a =
                      if a = dst then 0.
                      else if not (on_path_of nbr_r k dst) then dist_of nbr_r dst
                      else
                        let nbr_p =
                          match List.assoc_opt a neighbor_pricing with
                          | Some p -> p
                          | None -> empty_pricing ~n
                        in
                        match
                          List.find_opt (fun pe -> pe.transit = k) nbr_p.(dst)
                        with
                        | Some pe -> pe.price -. costs.(k) +. dist_of nbr_r dst
                        | None -> infinity
                    in
                    let total = step +. d_mk_a in
                    if Float.is_finite total then Some (a, total) else None
                  end)
                neighbor_routing
            in
            match candidates with
            | [] -> None
            | _ ->
                let d_mk =
                  List.fold_left (fun acc (_, v) -> Float.min acc v) infinity candidates
                in
                let tags =
                  List.filter_map (fun (a, v) -> if v = d_mk then Some a else None)
                    candidates
                  |> List.sort Int.compare
                in
                Some { transit = k; price = costs.(k) +. d_mk -. e.Dijkstra.cost; tags }
          in
          table.(dst) <-
            List.filter_map price_for (Dijkstra.transit_nodes e.Dijkstra.path)
            |> List.sort (fun a b -> Int.compare a.transit b.transit)
  done;
  table

let serialize_routing (t : routing_table) =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun j e ->
      Buffer.add_string buf (string_of_int j);
      (match e with
      | None -> Buffer.add_string buf ":-"
      | Some e ->
          Buffer.add_string buf (Printf.sprintf ":%h:" e.Dijkstra.cost);
          List.iter
            (fun v -> Buffer.add_string buf (string_of_int v ^ ","))
            e.Dijkstra.path);
      Buffer.add_char buf ';')
    t;
  Buffer.contents buf

let serialize_pricing (t : pricing_table) =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun j entries ->
      Buffer.add_string buf (string_of_int j);
      Buffer.add_char buf ':';
      List.iter
        (fun pe ->
          Buffer.add_string buf (Printf.sprintf "%d=%h[" pe.transit pe.price);
          List.iter (fun tag -> Buffer.add_string buf (string_of_int tag ^ ",")) pe.tags;
          Buffer.add_char buf ']')
        entries;
      Buffer.add_char buf ';')
    t;
  Buffer.contents buf

let routing_digest t = Sha256.digest_hex (serialize_routing t)

let pricing_digest t = Sha256.digest_hex (serialize_pricing t)

(* Digest over a (sender, table) input set — what a principal consumed to
   recompute, and what a checker's mirror consumed. Comparing the two
   tells the fault-tolerant bank whether a mirror mismatch is a
   contradiction (same inputs, different output: someone lied) or an
   omission (the checker worked from different inputs: a message was
   lost, restart instead of accusing). Sorted by sender so the digest is
   order-insensitive. *)
let inputs_digest serialize inputs =
  let buf = Buffer.create 256 in
  List.sort (fun (a, _) (b, _) -> Int.compare a b) inputs
  |> List.iter (fun (sender, table) ->
         Buffer.add_string buf (string_of_int sender);
         Buffer.add_char buf '>';
         Buffer.add_string buf (serialize table);
         Buffer.add_char buf '|');
  Sha256.digest_hex (Buffer.contents buf)

let routing_inputs_digest inputs = inputs_digest serialize_routing inputs

let pricing_inputs_digest inputs = inputs_digest serialize_pricing inputs

let costs_digest costs =
  let buf = Buffer.create 64 in
  Array.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%h;" c)) costs;
  Sha256.digest_hex (Buffer.contents buf)

let routing_equal a b = serialize_routing a = serialize_routing b

let pricing_equal a b = serialize_pricing a = serialize_pricing b

(** End-to-end execution of the extended-FPSS protocol on the simulator.

    Orchestrates the phase sequence of §4 — transit-cost flood, routing
    construction, pricing construction, execution — with the bank
    certifying each construction checkpoint ([Damd_core.Phase] supplies the
    restart machinery) and clearing the execution phase. Returns per-node
    quasilinear utilities, all bank detections, and message/byte
    accounting.

    The suggested specification is [deviations = all Faithful]; handing
    any node another [Adversary.t] is the paper's rational-manipulation
    failure. The utility model (DESIGN.md §5): value of own delivered
    traffic, minus payments and fines, plus transit income, minus true
    transit costs, minus a large progress penalty if the mechanism never
    certifies (the paper's assumption that every node strongly prefers
    the mechanism to make progress). *)

type bank_checks = {
  costs_check : bool;  (** DATA1 phase-1 digest comparison *)
  routing_check : bool;  (** BANK1 routing checkpoint *)
  pricing_check : bool;  (** BANK2 pricing checkpoint *)
  settlement_check : bool;
      (** verified execution clearing (DATA4 comparison + route audit) *)
}
(** Per-checkpoint bank switches, all [true] in [all_checks]. Turning one
    off deliberately weakens the mechanism — the gauntlet uses this to
    prove its faithfulness-violation oracle has teeth (a weakened bank
    must let some sampled deviation profit). [checking = false] overrides
    them all. *)

val all_checks : bank_checks

type perturb = {
  jitter : float;
      (** per-link latency spread: each link's constant delay is drawn
          from [max(0.1, 1-jitter), 1+jitter) — per-link FIFO preserved *)
  dup_p : float;
      (** probability of duplicating each construction message; the copy
          arrives immediately after the original (same timestamp, later
          pqueue sequence number) *)
  drop_p : float;  (** drop probability while [drop_budget] remains *)
  drop_budget : int;
      (** at most this many checker-copy messages are dropped; each drop
          costs one phase restart, so keep it within [max_restarts] *)
  perturb_seed : int;  (** all perturbation draws derive from this *)
}
(** Adversarial schedule perturbation for gauntlet campaigns: reorders and
    extends the event schedule (jitter, duplicates) and exercises the
    restart machinery (bounded copy drops) without changing the certified
    tables or utilities — so a utility delta under perturbation is still
    attributable to the deviation, not the schedule. *)

type params = {
  value_per_packet : float;  (** utility per unit of own traffic delivered *)
  progress_penalty : float;
      (** utility when a construction phase never certifies (large) *)
  epsilon : float;  (** the bank's fine margin *)
  max_restarts : int;  (** restarts per phase before declaring it stuck *)
  checking : bool;
      (** false = disable checkers and bank verification (the unfaithful
          baseline of experiment E7) *)
  checks : bank_checks;  (** fine-grained switches, see [bank_checks] *)
  copies : bool;
      (** false = principals do not relay checker copies at all — the
          plain-FPSS overhead baseline of experiment E6 (implies no
          meaningful mirrors; use with [checking = false]) *)
  deferred_certification : bool;
      (** true = run all construction phases without intermediate
          checkpoints and certify everything only at the end — the
          phase-decomposition ablation of experiment E8 *)
  latency_seed : int option;
      (** when set, per-link latencies are drawn uniformly from
          [0.5, 1.5) instead of the constant 1.0 — asynchrony robustness
          (per-link FIFO is preserved, as the model requires) *)
  channel_loss : (float * int) option;
      (** [(p, seed)]: drop every construction message independently with
          probability [p] — a *non-rational* omission-failure model. The
          paper's §5 flags exactly this: other failure classes can make
          the system "falsely detect and punish manipulation"; experiment
          E12 measures it *)
  perturbation : perturb option;
      (** gauntlet schedule perturbation; composes with [channel_loss]
          (loss applies first). Overrides [latency_seed] when
          [jitter > 0]. *)
  fault : Damd_sim.Fault.spec option;
      (** seeded mixed-failure injection ([Damd_sim.Fault]): per-link
          loss/reordering, a healing partition, fail-stop crash/recover
          with protocol-level table handoff. Active during construction
          only ([Fault.deactivate] at execution start). When set, the
          bank's routing/pricing checkpoints run in fault-tolerant
          evidence mode ([Bank.checkpoint_routing ~fault_tolerant:true]):
          blame only on signed-statement contradictions, restarts without
          blame on omission-shaped mismatches. [None] (the default) is
          bit-for-bit the stock runner. *)
  max_events : int;
      (** per-quiescence event budget; exceeding it is a LIVELOCK
          detection. The default (10^7) effectively never fires on honest
          runs; the gauntlet lowers it so livelocking deviations fail
          fast. *)
  obs : Damd_obs.Obs.t;
      (** observability sink (default [Damd_obs.Obs.noop], which is
          allocation-free on the hot path). With a live sink the runner
          instruments the engine (per-message-kind counters, queue-depth
          samples, per-message instants when the sink is detailed), wraps
          each construction phase attempt and the execution/settlement in
          spans, and emits ["checkpoint"] instants (certified/failed with
          reason) and ["accusation"] instants — one per bank detection,
          tagged with rule, culprit, evidence class
          (contradiction/omission/livelock) and the phase in which the
          evidence surfaced. Engine counters are snapshotted into the
          sink's metrics registry under [engine.construction.*] and
          [engine.execution.*]. *)
}

val default_params : params
(** value 50, progress penalty 10^5, epsilon 1, 2 restarts, checking and
    copies on, phase-by-phase certification, constant latency. *)

type result = {
  completed : bool;
  stuck_phase : string option;
  restarts : int;
  detections : Bank.detection list;  (** construction + execution *)
  utilities : float array;
  construction_messages : int;
  construction_bytes : int;
  execution_messages : int;
  bank_bytes : int;
  tables : Damd_fpss.Tables.t option;
      (** the certified tables, when the construction completed *)
  sim_time : float;
}

val run :
  ?params:params ->
  graph:Damd_graph.Graph.t ->
  traffic:Damd_fpss.Traffic.t ->
  deviations:Adversary.t array ->
  unit ->
  result
(** Deterministic: same inputs, same result. The graph carries the *true*
    transit costs; declarations happen inside the protocol (phase 1). *)

val run_faithful :
  ?params:params ->
  graph:Damd_graph.Graph.t ->
  traffic:Damd_fpss.Traffic.t ->
  unit ->
  result
(** All nodes faithful. *)

val utility_gain :
  ?params:params ->
  graph:Damd_graph.Graph.t ->
  traffic:Damd_fpss.Traffic.t ->
  node:int ->
  deviation:Adversary.t ->
  unit ->
  float
(** [u_node(deviation) - u_node(faithful)] with everyone else faithful —
    the quantity that must be non-positive for every library deviation
    when the specification is faithful (Definition 8). *)

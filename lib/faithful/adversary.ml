module Action = Damd_core.Action
module Rng = Damd_util.Rng

type t =
  | Faithful
  | Misreport_cost of float
  | Inconsistent_cost of float * float
  | Corrupt_cost_forward of float
  | Drop_routing_copies
  | Drop_pricing_copies
  | Corrupt_routing_copies of float
  | Corrupt_pricing_copies of float
  | Spoof_routing_update of float
  | Spoof_pricing_update of float
  | Miscompute_routing of float
  | Miscompute_pricing of float
  | Underreport_payments of float
  | Misroute_packets
  | Misattribute_payments
  | Silent_in_construction
  | Combined_routing_attack of float
  | Combined_pricing_attack of float
  | Lying_checker
  | Collude_with of int
  | Byzantine_arbitrary of int
  | Epsilon_rational of float * t

type byz_plan = {
  byz_cost_pair : (float * float) option;
  byz_cost_forward : float option;
  byz_routing_copies : [ `Drop | `Corrupt of float ] option;
  byz_routing_announce : float option;
  byz_pricing_copies : [ `Drop | `Corrupt of float ] option;
  byz_pricing_announce : float option;
  byz_misroute : bool;
  byz_underreport : float option;
}

(* The plan is a *fixed* function of the seed, sampled once: a Byzantine
   node that re-randomized per message would never converge its own
   announcement loop (every recomputation would differ), turning every
   campaign into a livelock instead of an interesting adversary. Fixing
   the behaviors at creation keeps the node deterministic — arbitrary in
   choice, not in time. *)
let plan_of_seed seed =
  let rng = Rng.create (0x42595A + seed) in
  let maybe p f = if Rng.bernoulli rng p then Some (f ()) else None in
  let copies p =
    maybe p (fun () ->
        if Rng.bool rng then `Drop else `Corrupt (float_of_int (Rng.int_in rng 1 4)))
  in
  let plan =
    {
      byz_cost_pair =
        maybe 0.3 (fun () ->
            let a = float_of_int (Rng.int_in rng 1 9) in
            let b = float_of_int (Rng.int_in rng 1 9) in
            (a, b));
      byz_cost_forward = maybe 0.3 (fun () -> float_of_int (Rng.int_in rng 1 4));
      byz_routing_copies = copies 0.4;
      byz_routing_announce = maybe 0.4 (fun () -> float_of_int (Rng.int_in rng (-3) 3));
      byz_pricing_copies = copies 0.4;
      byz_pricing_announce = maybe 0.4 (fun () -> float_of_int (Rng.int_in rng 1 3));
      byz_misroute = Rng.bernoulli rng 0.3;
      byz_underreport = maybe 0.3 (fun () -> 0.25 *. float_of_int (Rng.int_in rng 0 3));
    }
  in
  if
    plan.byz_cost_pair = None && plan.byz_cost_forward = None
    && plan.byz_routing_copies = None
    && plan.byz_routing_announce = None
    && plan.byz_pricing_copies = None
    && plan.byz_pricing_announce = None
    && (not plan.byz_misroute)
    && plan.byz_underreport = None
  then { plan with byz_routing_announce = Some (-2.) }
  else plan

let rec name = function
  | Faithful -> "faithful"
  | Misreport_cost c -> Printf.sprintf "misreport-cost(%g)" c
  | Inconsistent_cost (a, b) -> Printf.sprintf "inconsistent-cost(%g|%g)" a b
  | Corrupt_cost_forward d -> Printf.sprintf "corrupt-cost-forward(+%g)" d
  | Drop_routing_copies -> "drop-routing-copies"
  | Drop_pricing_copies -> "drop-pricing-copies"
  | Corrupt_routing_copies d -> Printf.sprintf "corrupt-routing-copies(+%g)" d
  | Corrupt_pricing_copies d -> Printf.sprintf "corrupt-pricing-copies(+%g)" d
  | Spoof_routing_update d -> Printf.sprintf "spoof-routing-update(+%g)" d
  | Spoof_pricing_update d -> Printf.sprintf "spoof-pricing-update(+%g)" d
  | Miscompute_routing d -> Printf.sprintf "miscompute-routing(%+g)" d
  | Miscompute_pricing d -> Printf.sprintf "miscompute-pricing(%+g)" d
  | Underreport_payments f -> Printf.sprintf "underreport-payments(x%g)" f
  | Misroute_packets -> "misroute-packets"
  | Misattribute_payments -> "misattribute-payments"
  | Silent_in_construction -> "silent-in-construction"
  | Combined_routing_attack d -> Printf.sprintf "combined-routing-attack(%g)" d
  | Combined_pricing_attack d -> Printf.sprintf "combined-pricing-attack(%g)" d
  | Lying_checker -> "lying-checker"
  | Collude_with p -> Printf.sprintf "collude-with(%d)" p
  | Byzantine_arbitrary seed -> Printf.sprintf "byzantine-arbitrary(%d)" seed
  | Epsilon_rational (eps, inner) ->
      Printf.sprintf "epsilon-rational(%g|%s)" eps (name inner)

module Dev = Damd_speccheck.Dev

let rec label = function
  | Faithful -> Dev.Faithful
  | Misreport_cost _ -> Dev.Misreport_cost
  | Inconsistent_cost _ -> Dev.Inconsistent_cost
  | Corrupt_cost_forward _ -> Dev.Corrupt_cost_forward
  | Drop_routing_copies -> Dev.Drop_routing_copies
  | Drop_pricing_copies -> Dev.Drop_pricing_copies
  | Corrupt_routing_copies _ -> Dev.Corrupt_routing_copies
  | Corrupt_pricing_copies _ -> Dev.Corrupt_pricing_copies
  | Spoof_routing_update _ -> Dev.Spoof_routing_update
  | Spoof_pricing_update _ -> Dev.Spoof_pricing_update
  | Miscompute_routing _ -> Dev.Miscompute_routing
  | Miscompute_pricing _ -> Dev.Miscompute_pricing
  | Underreport_payments _ -> Dev.Underreport_payments
  | Misroute_packets -> Dev.Misroute_packets
  | Misattribute_payments -> Dev.Misattribute_payments
  | Silent_in_construction -> Dev.Silent_in_construction
  | Combined_routing_attack _ -> Dev.Combined_routing_attack
  | Combined_pricing_attack _ -> Dev.Combined_pricing_attack
  | Lying_checker -> Dev.Lying_checker
  | Collude_with _ -> Dev.Collude_with
  | Byzantine_arbitrary _ -> Dev.Byzantine_arbitrary
  (* the wrapper is a meta-deviation — a gain threshold over an inner
     behavior — so its catalogue label is the inner's: when it activates
     it plays exactly that deviation, when it does not it is [Faithful] *)
  | Epsilon_rational (_, inner) -> label inner

let rec classify = function
  | Faithful -> []
  | Misreport_cost _ | Inconsistent_cost _ -> [ Action.Information_revelation ]
  | Corrupt_cost_forward _ -> [ Action.Message_passing ]
  | Drop_routing_copies | Drop_pricing_copies -> [ Action.Message_passing ]
  | Corrupt_routing_copies _ | Corrupt_pricing_copies _ -> [ Action.Message_passing ]
  | Spoof_routing_update _ | Spoof_pricing_update _ -> [ Action.Message_passing ]
  | Miscompute_routing _ | Miscompute_pricing _ -> [ Action.Computation ]
  | Underreport_payments _ -> [ Action.Computation ]
  | Misroute_packets -> [ Action.Message_passing ]
  | Misattribute_payments -> [ Action.Computation ]
  | Silent_in_construction -> [ Action.Message_passing; Action.Computation ]
  | Combined_routing_attack _ | Combined_pricing_attack _ ->
      [ Action.Message_passing; Action.Computation ]
  | Lying_checker | Collude_with _ -> [ Action.Computation ]
  | Byzantine_arbitrary _ -> [ Action.Message_passing; Action.Computation ]
  | Epsilon_rational (_, inner) -> classify inner

let rec is_construction = function
  | Inconsistent_cost _ | Corrupt_cost_forward _ | Drop_routing_copies
  | Drop_pricing_copies | Corrupt_routing_copies _ | Corrupt_pricing_copies _
  | Spoof_routing_update _ | Spoof_pricing_update _ | Miscompute_routing _
  | Miscompute_pricing _ | Silent_in_construction | Lying_checker | Collude_with _
  | Combined_routing_attack _ | Combined_pricing_attack _ ->
      true
  | Byzantine_arbitrary seed ->
      let p = plan_of_seed seed in
      p.byz_cost_pair <> None || p.byz_cost_forward <> None
      || p.byz_routing_copies <> None
      || p.byz_routing_announce <> None
      || p.byz_pricing_copies <> None
      || p.byz_pricing_announce <> None
  | Epsilon_rational (_, inner) -> is_construction inner
  | Faithful | Misreport_cost _ | Underreport_payments _ | Misroute_packets
  | Misattribute_payments ->
      false

let rec is_execution = function
  | Underreport_payments _ | Misroute_packets | Misattribute_payments -> true
  | Byzantine_arbitrary seed ->
      let p = plan_of_seed seed in
      p.byz_misroute || p.byz_underreport <> None
  | Epsilon_rational (_, inner) -> is_execution inner
  | _ -> false

let library =
  [
    Misreport_cost 5.;
    Inconsistent_cost (1., 8.);
    Corrupt_cost_forward 3.;
    Drop_routing_copies;
    Drop_pricing_copies;
    Corrupt_routing_copies 2.;
    Corrupt_pricing_copies 2.;
    Spoof_routing_update 3.;
    Spoof_pricing_update 3.;
    Miscompute_routing (-2.);
    Miscompute_routing 2.;
    Miscompute_pricing 2.;
    Underreport_payments 0.5;
    Misroute_packets;
    Misattribute_payments;
    Silent_in_construction;
    Combined_routing_attack 2.;
    Combined_pricing_attack 2.;
    Lying_checker;
  ]

let all_labels =
  List.sort_uniq compare (* poly-ok: constant Dev.t constructors *)
    (List.map label (Faithful :: Collude_with 0 :: Byzantine_arbitrary 0 :: library))

let rec detectable = function
  | Faithful | Misreport_cost _ -> false
  (* a lying checker alone changes nothing the bank compares unless some
     principal actually deviates; colluders are only caught when the
     coalition does not cover a full neighborhood — [detectable_in] is the
     topology-aware refinement *)
  | Lying_checker -> false
  | Collude_with _ -> false
  | Byzantine_arbitrary _ -> true (* every plan has at least one active component *)
  | Epsilon_rational (_, inner) -> detectable inner
  | _ -> true

let rec colluding t ~principal =
  match t with
  | Lying_checker -> true
  | Collude_with p -> p = principal
  | Epsilon_rational (_, inner) -> colluding inner ~principal
  | _ -> false

(* Deviations caught only through the principal's own checkers (the
   BANK1/BANK2 mirror + announcement comparison of §4.2) — exactly the
   ones a neighborhood coalition can shield. DATA1 (global digest
   comparison), phase-1 finalization failures (silence) and execution
   clearing happen at the bank over evidence checkers do not mediate, so
   no coalition shields them. *)
let rec checker_caught = function
  | Drop_routing_copies | Drop_pricing_copies | Corrupt_routing_copies _
  | Corrupt_pricing_copies _ | Spoof_routing_update _ | Spoof_pricing_update _
  | Miscompute_routing _ | Miscompute_pricing _ | Combined_routing_attack _
  | Combined_pricing_attack _ ->
      true
  | Byzantine_arbitrary seed ->
      (* shieldable by a neighborhood coalition only when every active
         component of the plan is checker-mediated: any DATA1-visible or
         execution-phase component reaches the bank unmediated *)
      let p = plan_of_seed seed in
      p.byz_cost_pair = None && p.byz_cost_forward = None && (not p.byz_misroute)
      && p.byz_underreport = None
  | Epsilon_rational (_, inner) -> checker_caught inner
  | _ -> false

let detectable_in ~neighbors ~profile i =
  let caught_principal p =
    let d = profile.(p) in
    detectable d
    && ((not (checker_caught d))
       || List.exists
            (fun c -> not (colluding profile.(c) ~principal:p))
            (neighbors p))
  in
  match profile.(i) with
  | Collude_with p when p >= 0 && p < Array.length profile ->
      (* A colluder is exposed exactly when the coalition fails: the
         principal it shields is still caught by some honest checker. *)
      caught_principal p
  | _ -> caught_principal i

let epsilon = function Epsilon_rational (eps, inner) -> Some (eps, inner) | _ -> None

let resolve_epsilon ~active t =
  match t with Epsilon_rational (_, inner) -> if active then inner else Faithful | t -> t

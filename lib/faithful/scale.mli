(** The faithful protocol at scale — mirror checking over sparse state.

    [Runner] plays the full paper protocol message by message on the
    simulator: per-node closures, n-wide tables, every checker copy an
    actual delivery. That fidelity is O(n^2) in both state and traffic
    and tops out around n=64. This module is the same checking *model* on
    [Damd_fpss.Sparse] flat state: nodes announce rows (possibly
    distorted via the fixpoint's offset hooks), each checkpoint applies
    one honest recomputation per node to the announced inputs — exactly
    what a neighbor-checker holding the same announcements computes — and
    compares it with what the node announced. Honest nodes always pass
    (their announcement {i is} the honest function of their inputs, so
    there are no false accusations even when other nodes distort);
    distorters are caught with residual = their distortion.

    What is deliberately simplified relative to [Runner], and why it does
    not change what an experiment at n=10k can conclude: checkers at the
    same node hold identical announced inputs, so their deg(i) verdicts
    are unanimous and one residual computation stands in for all of them
    ([checkpoint_messages] still accounts the per-edge digest traffic);
    and the bank's restart machinery is replaced by halt-on-detection —
    at scale the question is {i whether} deviations are caught and what
    honest execution costs, not the restart choreography (covered by the
    tier-1 [Runner] tests). *)

type deviation =
  | Honest
  | Distort_routing of float
      (** announce every route [delta] above the honest cost *)
  | Distort_pricing of float  (** pad every announced price by [delta] *)

type detection = {
  culprit : int;
  phase : [ `Routing | `Pricing ];
  residual : float;  (** |announced - honest recomputation| *)
}

type report = {
  n : int;
  k : int;  (** destinations actually priced *)
  rounds_flood : int;
  rounds_routing : int;
  rounds_pricing : int;
  construction_messages : int;
  checkpoint_messages : int;
  detections : detection list;  (** empty iff every node passed *)
  completed : bool;
      (** clean checkpoints; execution/settlement ran. False means the
          mechanism halted at a checkpoint — settlement fields are 0. *)
  delivered : int;  (** (src, dest) demands routed, unit rate each *)
  total_payments : float;  (** sum of announced VCG premia paid *)
  total_true_cost : float;  (** true transit cost of delivered traffic *)
  utilities : float array;
      (** per-node quasilinear utility: value of own delivered traffic
          minus outlays, plus transit income minus true carriage cost *)
}

val run :
  ?dests:int array ->
  ?max_rounds:int ->
  ?tolerance:float ->
  ?value_per_packet:float ->
  ?deviations:(int -> deviation) ->
  ?obs:Damd_obs.Obs.t ->
  Damd_graph.Graph.t ->
  report * Damd_fpss.Sparse.t
(** Full faithful pass: flood, routing fixpoint, routing checkpoint,
    pricing fixpoint, pricing checkpoint, then execution + settlement
    when clean. [dests] defaults to all nodes (restrict it at large n);
    [tolerance] (default 1e-9) is the checker's residual margin;
    [value_per_packet] defaults to 100. Distortion deltas must be
    positive and small enough to keep effective costs non-negative. The
    returned [Sparse.t] exposes the converged announced state. [obs]
    instruments the fixpoints ([Damd_fpss.Sparse.set_obs]: stage spans
    plus per-round dirty-set samples). *)

module Graph = Damd_graph.Graph
module Engine = Damd_sim.Engine
module Phase = Damd_core.Phase
module Signer = Damd_crypto.Signer
module Traffic = Damd_fpss.Traffic
module Tables = Damd_fpss.Tables
module Obs = Damd_obs.Obs
module Json = Damd_util.Json

type bank_checks = {
  costs_check : bool;
  routing_check : bool;
  pricing_check : bool;
  settlement_check : bool;
}

let all_checks =
  {
    costs_check = true;
    routing_check = true;
    pricing_check = true;
    settlement_check = true;
  }

type perturb = {
  jitter : float;
  dup_p : float;
  drop_p : float;
  drop_budget : int;
  perturb_seed : int;
}

type params = {
  value_per_packet : float;
  progress_penalty : float;
  epsilon : float;
  max_restarts : int;
  checking : bool;
  checks : bank_checks;
  copies : bool;
  deferred_certification : bool;
  latency_seed : int option;
  channel_loss : (float * int) option;
  perturbation : perturb option;
  fault : Damd_sim.Fault.spec option;
  max_events : int;
  obs : Obs.t;
}

let default_params =
  {
    value_per_packet = 50.;
    progress_penalty = 1e5;
    epsilon = 1.;
    max_restarts = 2;
    checking = true;
    checks = all_checks;
    copies = true;
    deferred_certification = false;
    latency_seed = None;
    channel_loss = None;
    perturbation = None;
    fault = None;
    max_events = 10_000_000;
    obs = Obs.noop;
  }

type result = {
  completed : bool;
  stuck_phase : string option;
  restarts : int;
  detections : Bank.detection list;
  utilities : float array;
  construction_messages : int;
  construction_bytes : int;
  execution_messages : int;
  bank_bytes : int;
  tables : Damd_fpss.Tables.t option;
  sim_time : float;
}

type dispatch = int -> sender:int -> Protocol.msg -> unit

let build_tables (nodes : Node.t array) =
  let n = Array.length nodes in
  let routing = Array.init n (fun src -> Array.copy nodes.(src).Node.routing) in
  let prices =
    Array.init n (fun src ->
        Array.map
          (List.map (fun (pe : Protocol.price_entry) ->
               (pe.Protocol.transit, pe.Protocol.price)))
          nodes.(src).Node.pricing)
  in
  { Tables.routing; prices }

let run ?(params = default_params) ~graph ~traffic ~deviations () =
  let n = Graph.n graph in
  if Array.length deviations <> n then invalid_arg "Runner.run: deviations arity";
  let neighbor_sets = Array.init n (Graph.neighbors graph) in
  let nodes =
    Array.init n (fun id ->
        Node.create ~copies:params.copies ~id ~n ~neighbor_sets
          ~true_cost:(Graph.cost graph id) ~deviation:deviations.(id) ())
  in
  let latency =
    match params.perturbation with
    | Some pb when pb.jitter > 0. ->
        (* Jittered but still per-link constant delays (same FIFO argument
           as [latency_seed] below): draw each link's latency once from
           [max(0.1, 1-j), 1+j). *)
        let rng = Damd_util.Rng.create (pb.perturb_seed lxor 0x5bd1e995) in
        let lo = Float.max 0.1 (1. -. pb.jitter) and hi = 1. +. pb.jitter in
        let m =
          Array.init n (fun _ -> Array.init n (fun _ -> Damd_util.Rng.float_in rng lo hi))
        in
        fun ~src ~dst -> m.(src).(dst)
    | _ -> (
        match params.latency_seed with
        | None -> fun ~src:_ ~dst:_ -> 1.0
        | Some seed ->
            (* Heterogeneous but per-link constant delays: asynchrony without
               breaking the per-link FIFO the table-overwrite semantics rely
               on. *)
            let rng = Damd_util.Rng.create seed in
            let m = Array.init n (fun _ -> Array.init n (fun _ -> Damd_util.Rng.float_in rng 0.5 1.5)) in
            fun ~src ~dst -> m.(src).(dst))
  in
  let engine : Protocol.msg Engine.t = Engine.create ~latency ~n () in
  Engine.set_size engine Protocol.msg_size;
  let obs = params.obs in
  if Obs.enabled obs then
    Engine.set_obs engine obs
      ~kinds:[| "cost"; "routing"; "pricing"; "copy"; "packet" |]
      ~kind_of:(fun msg ->
        match msg with
        | Protocol.Update (Protocol.Cost_announce _) -> 0
        | Protocol.Update (Protocol.Routing_update _) -> 1
        | Protocol.Update (Protocol.Pricing_update _) -> 2
        | Protocol.Copy _ -> 3
        | Protocol.Packet _ -> 4);
  let loss_tap =
    match params.channel_loss with
    | None -> None
    | Some (p, seed) ->
        let rng = Damd_util.Rng.create seed in
        Some
          (fun msg ->
            match msg with
            | Protocol.Packet _ -> Some msg (* loss injected on construction only *)
            | _ -> if Damd_util.Rng.bernoulli rng p then None else Some msg)
  in
  let perturb_tap =
    match params.perturbation with
    | Some pb when pb.dup_p > 0. || (pb.drop_budget > 0 && pb.drop_p > 0.) ->
        let rng = Damd_util.Rng.create (pb.perturb_seed lxor 0x27d4eb2f) in
        let drop_budget = ref pb.drop_budget in
        let in_dup = ref false in
        Some
          (fun ~src ~dst msg ->
            if !in_dup then Some msg
            else
              match msg with
              | Protocol.Packet _ ->
                  (* Execution traffic is never perturbed: drops/dups there
                     would change utilities and turn a schedule fault into a
                     spurious Theorem-1 counterexample. *)
                  Some msg
              | Protocol.Copy _
                when !drop_budget > 0 && Damd_util.Rng.bernoulli rng pb.drop_p ->
                  (* Bounded drops target the checker-copy channel only: a
                     lost copy desynchronizes a mirror, fails the next
                     checkpoint and is absorbed by a restart — it exercises
                     the recovery path without perturbing the certified
                     tables (unbounded loss of protocol updates is the §5
                     omission-fault model, [channel_loss]). *)
                  decr drop_budget;
                  None
              | (Protocol.Update _ | Protocol.Copy _) as msg
                when pb.dup_p > 0. && Damd_util.Rng.bernoulli rng pb.dup_p ->
                  (* Duplicate delivery: re-send the same message at the same
                     clock instant so the copy lands immediately after the
                     original (same timestamp, later sequence number). The
                     construction handlers are idempotent, so duplication
                     reorders/extends the schedule without changing state. *)
                  Engine.schedule engine ~delay:0. (fun () ->
                      in_dup := true;
                      Engine.send engine ~src ~dst msg;
                      in_dup := false);
                  Some msg
              | msg -> Some msg)
    | _ -> None
  in
  (match (loss_tap, perturb_tap) with
  | None, None -> ()
  | loss, perturb ->
      Engine.set_tap engine (fun ~src ~dst msg ->
          let after_loss =
            match loss with None -> Some msg | Some f -> f msg
          in
          match (after_loss, perturb) with
          | None, _ -> None
          | Some msg, None -> Some msg
          | Some msg, Some f -> f ~src ~dst msg));
  (* Nodes can only transmit on physical links. *)
  let send_from src ~dst msg =
    if not (List.mem dst neighbor_sets.(src)) then
      invalid_arg
        (Printf.sprintf "Runner: node %d attempted to send to non-neighbor %d" src dst);
    Engine.send engine ~src ~dst msg
  in
  let sends = Array.init n (fun i -> send_from i) in
  let fault_control =
    match params.fault with
    | Some spec when not (Damd_sim.Fault.is_none spec) ->
        Some (Damd_sim.Fault.install engine spec)
    | _ -> None
  in
  let ft = Option.is_some fault_control in
  (* Crash-recovery handoff: when a crashed node rejoins mid-phase, it and
     each up neighbor re-deliver their current phase state in both
     directions — the facts the recovered node missed while down, and the
     announcements it failed to emit. Re-sends go through the same
     deviation filters as the live path, so a deviant neighbor cannot be
     forced honest by crashing someone next to it. *)
  let handoff phase i =
    List.iter
      (fun c ->
        if not (Engine.is_down engine c) then
          match phase with
          | `Costs ->
              Node.resend_costs_to nodes.(c) sends.(c) ~to_:i;
              Node.resend_costs_to nodes.(i) sends.(i) ~to_:c
          | `Routing ->
              Node.resend_routing_to nodes.(c) sends.(c) ~to_:i;
              Node.resend_routing_to nodes.(i) sends.(i) ~to_:c
          | `Pricing ->
              Node.resend_pricing_to nodes.(c) sends.(c) ~to_:i;
              Node.resend_pricing_to nodes.(i) sends.(i) ~to_:c)
      neighbor_sets.(i)
  in
  let arm_faults phase =
    Option.iter
      (fun ctl -> Damd_sim.Fault.arm ~on_recover:(handoff phase) engine ctl ~phase)
      fault_control
  in
  let dispatch : dispatch ref = ref (fun _ ~sender:_ _ -> ()) in
  for i = 0 to n - 1 do
    Engine.set_handler engine i (fun ~sender msg -> !dispatch i ~sender msg)
  done;
  let detections = ref [] in
  (* Forensic context for accusation events: which protocol phase the
     bank was certifying when the evidence surfaced. *)
  let current_phase = ref "setup" in
  let evidence_class (d : Bank.detection) =
    match d.Bank.culprit with
    | Some _ ->
        (* named culprit: the checker holds contradicting signed
           evidence (digest mismatch, misreport, off-path carriage) *)
        "contradiction"
    | None -> if String.equal d.Bank.rule "LIVELOCK" then "livelock" else "omission"
  in
  let note ds =
    if Obs.enabled obs then
      List.iter
        (fun (d : Bank.detection) ->
          Obs.instant obs ~cat:"bank"
            ~args:
              [
                ("rule", Json.String d.Bank.rule);
                ( "culprit",
                  match d.Bank.culprit with
                  | Some c -> Json.Int c
                  | None -> Json.Null );
                ("class", Json.String (evidence_class d));
                ("phase", Json.String !current_phase);
                ("detail", Json.String d.Bank.detail);
              ]
            "accusation")
        ds;
    detections := !detections @ ds
  in
  let phase_attempt : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let phase_span name body () =
    current_phase := name;
    let a = 1 + Option.value ~default:0 (Hashtbl.find_opt phase_attempt name) in
    Hashtbl.replace phase_attempt name a;
    Obs.span obs ~cat:"phase" ~args:[ ("attempt", Json.Int a) ] name body
  in
  let checkpoint name result =
    if Obs.enabled obs then
      Obs.instant obs ~cat:"bank"
        ~args:
          [
            ("phase", Json.String name);
            ( "outcome",
              Json.String
                (match result with
                | Ok () -> "certified"
                | Error _ -> "failed") );
            ( "reason",
              match result with
              | Ok () -> Json.Null
              | Error e -> Json.String e );
          ]
        "checkpoint";
    result
  in
  let quiesce name =
    match Engine.run ~max_events:params.max_events engine with
    | Engine.Quiescent -> Ok ()
    | Engine.Event_limit -> Error (name ^ ": event limit reached (livelock)")
  in
  (* --- the three certified construction phases --- *)
  let phase1 =
    {
      Phase.name = "construction-1 (costs)";
      run =
        phase_span "construction-1 (costs)" (fun () ->
          Array.iter Node.reset_costs nodes;
          dispatch :=
            (fun i ~sender msg ->
              match msg with
              | Protocol.Update u -> Node.on_cost_msg nodes.(i) sends.(i) ~sender u
              | _ -> ());
          arm_faults `Costs;
          Array.iteri (fun i node -> Node.announce_cost node sends.(i)) nodes;
          match quiesce "phase1" with Ok () -> () | Error e -> note [ { Bank.rule = "LIVELOCK"; culprit = None; detail = e } ]);
      certify =
        (fun () ->
          checkpoint "construction-1 (costs)"
            (let complete = Array.for_all Node.finalize_costs nodes in
             if not complete then Error "some node is missing transit costs"
             else if params.deferred_certification then Ok ()
             else begin
               let ds =
                 if params.checking && params.checks.costs_check then
                   Bank.checkpoint_costs nodes
                 else []
               in
               note ds;
               match ds with
               | [] -> Ok ()
               | d :: _ -> Error d.Bank.detail
             end));
    }
  in
  let phase2a =
    {
      Phase.name = "construction-2a (routing)";
      run =
        phase_span "construction-2a (routing)" (fun () ->
          Array.iter Node.reset_routing_phase nodes;
          dispatch := (fun i ~sender msg -> Node.on_routing_msg nodes.(i) sends.(i) ~sender msg);
          arm_faults `Routing;
          Array.iteri (fun i node -> Node.start_routing node sends.(i)) nodes;
          match quiesce "phase2a" with Ok () -> () | Error e -> note [ { Bank.rule = "LIVELOCK"; culprit = None; detail = e } ]);
      certify =
        (fun () ->
          checkpoint "construction-2a (routing)"
            (if
               (not params.checking)
               || (not params.checks.routing_check)
               || params.deferred_certification
             then Ok ()
             else begin
               let ds = Bank.checkpoint_routing ~fault_tolerant:ft nodes in
               note ds;
               match ds with
               | [] -> Ok ()
               | d :: _ -> Error d.Bank.detail
             end));
    }
  in
  let phase2b =
    {
      Phase.name = "construction-2b (pricing)";
      run =
        phase_span "construction-2b (pricing)" (fun () ->
          Array.iter Node.reset_pricing_phase nodes;
          dispatch := (fun i ~sender msg -> Node.on_pricing_msg nodes.(i) sends.(i) ~sender msg);
          arm_faults `Pricing;
          Array.iteri (fun i node -> Node.start_pricing node sends.(i)) nodes;
          match quiesce "phase2b" with Ok () -> () | Error e -> note [ { Bank.rule = "LIVELOCK"; culprit = None; detail = e } ]);
      certify =
        (fun () ->
          checkpoint "construction-2b (pricing)"
            (if
               (not params.checking)
               || (not params.checks.pricing_check)
               || params.deferred_certification
             then Ok ()
             else begin
               let ds = Bank.checkpoint_pricing ~fault_tolerant:ft nodes in
               note ds;
               match ds with
               | [] -> Ok ()
               | d :: _ -> Error d.Bank.detail
             end));
    }
  in
  Engine.reset_stats engine;
  let construction =
    Phase.execute ~max_restarts:params.max_restarts () [ phase1; phase2a; phase2b ]
  in
  let construction_messages = Engine.messages_sent engine in
  let construction_bytes = Engine.bytes_sent engine in
  let bank_bytes = if params.checking then Bank.checkpoint_bytes nodes else 0 in
  (* Snapshot construction-epoch engine counters before the execution
     reset wipes them. *)
  (match Obs.metrics obs with
  | Some reg -> Engine.obs_metrics ~prefix:"engine.construction" engine reg
  | None -> ());
  match construction with
  | Phase.Stuck { phase; progress; _ } ->
      if Obs.enabled obs then
        Obs.instant obs ~cat:"phase"
          ~args:[ ("phase", Json.String phase) ]
          "construction.stuck";
      {
        completed = false;
        stuck_phase = Some phase;
        restarts = Phase.total_restarts progress;
        detections = !detections;
        utilities = Array.make n (-.params.progress_penalty);
        construction_messages;
        construction_bytes;
        execution_messages = 0;
        bank_bytes;
        tables = None;
        sim_time = Engine.now engine;
      }
  | Phase.Completed progress
    when params.deferred_certification && params.checking
         && (let ds =
               (if params.checks.costs_check then Bank.checkpoint_costs nodes else [])
               @ (if params.checks.routing_check then
                    Bank.checkpoint_routing ~fault_tolerant:ft nodes
                  else [])
               @
               if params.checks.pricing_check then
                 Bank.checkpoint_pricing ~fault_tolerant:ft nodes
               else []
             in
             note ds;
             ds <> []) ->
      (* The ablation of experiment E8: with certification deferred to a
         single final check, a deviation is only caught after the whole
         construction has been paid for. *)
      {
        completed = false;
        stuck_phase = Some "deferred-certification";
        restarts = Phase.total_restarts progress;
        detections = !detections;
        utilities = Array.make n (-.params.progress_penalty);
        construction_messages;
        construction_bytes;
        execution_messages = 0;
        bank_bytes;
        tables = None;
        sim_time = Engine.now engine;
      }
  | Phase.Completed progress ->
      (* --- execution phase --- *)
      (* Injection ends with construction: execution-phase loss is the
         separately-graded §5 omission model ([channel_loss]), and keeping
         faults out of execution keeps Definition-8 utility deltas
         attributable to the deviant rather than to fault noise. *)
      Option.iter (fun ctl -> Damd_sim.Fault.deactivate engine ctl) fault_control;
      Engine.reset_stats engine;
      Obs.span obs ~cat:"phase" "execution" (fun () ->
          current_phase := "execution";
          Array.iter Node.reset_execution nodes;
          dispatch :=
            (fun i ~sender msg -> Node.on_packet nodes.(i) sends.(i) ~sender msg);
          List.iter
            (fun (src, dst, rate) ->
              Node.originate_traffic nodes.(src) sends.(src) ~dst ~rate)
            (Traffic.demand_pairs traffic);
          match quiesce "execution" with
          | Ok () -> ()
          | Error e ->
              note [ { Bank.rule = "LIVELOCK"; culprit = None; detail = e } ]);
      let execution_messages = Engine.messages_sent engine in
      (match Obs.metrics obs with
      | Some reg -> Engine.obs_metrics ~prefix:"engine.execution" engine reg
      | None -> ());
      let registry = Signer.create_registry ~seed:7 in
      current_phase := "settlement";
      let settlement =
        Bank.settle ~obs
          ~checking:(params.checking && params.checks.settlement_check)
          ~epsilon:params.epsilon ~registry ~nodes ~traffic
      in
      note settlement.Bank.detections;
      let utilities =
        Array.init n (fun i ->
            let node = nodes.(i) in
            let carried_load =
              List.fold_left (fun acc (_, _, rate, _) -> acc +. rate) 0. node.Node.carried
            in
            (params.value_per_packet *. settlement.Bank.delivered.(i))
            -. settlement.Bank.outlays.(i)
            -. settlement.Bank.penalties.(i)
            +. settlement.Bank.incomes.(i)
            -. (node.Node.true_cost *. carried_load))
      in
      {
        completed = true;
        stuck_phase = None;
        restarts = Phase.total_restarts progress;
        detections = !detections;
        utilities;
        construction_messages;
        construction_bytes;
        execution_messages;
        bank_bytes;
        tables = Some (build_tables nodes);
        sim_time = Engine.now engine;
      }

let run_faithful ?params ~graph ~traffic () =
  run ?params ~graph ~traffic
    ~deviations:(Array.make (Graph.n graph) Adversary.Faithful)
    ()

let utility_gain ?params ~graph ~traffic ~node ~deviation () =
  let faithful = run_faithful ?params ~graph ~traffic () in
  let deviations = Array.make (Graph.n graph) Adversary.Faithful in
  deviations.(node) <- deviation;
  let deviant = run ?params ~graph ~traffic ~deviations () in
  deviant.utilities.(node) -. faithful.utilities.(node)

(** Wire format and table computations of the extended-FPSS protocol (§4 of
    the paper).

    Both the principal's own computation ([PRINC1]/[PRINC2]) and the
    checkers' mirror computation ([CHECK1]/[CHECK2]) must be *the same
    function of the same inputs* — that is what makes the bank's hash
    comparison sound. This module holds that shared function: given the
    latest update received from each neighbor, deterministically recompute
    the node's routing table ([DATA2]) and extended pricing table
    ([DATA3*], with identity tags), plus the canonical serializations the
    bank hashes.

    The pricing recurrence is the distributed-FPSS one (see
    [Damd_fpss.Distributed]); identity tags record which neighbor(s)
    achieved the minimum — the "source of change" of §4.3, whose
    inconsistency exposes spoofed pricing updates. *)

type entry = Damd_graph.Dijkstra.entry

type price_entry = {
  transit : int;
  price : float;
  tags : int list;  (** sorted minimizing-neighbor ids — DATA3*'s identity tag *)
}

type routing_table = entry option array
(** Indexed by destination. *)

type pricing_table = price_entry list array
(** Indexed by destination; entries sorted by transit id. *)

(** A table announcement, as placed on the wire. [origin] is the claimed
    author — trusted only until the checkpoint. *)
type update =
  | Cost_announce of { origin : int; cost : float }
  | Routing_update of { origin : int; table : routing_table }
  | Pricing_update of { origin : int; table : pricing_table }

(** Network messages. [Copy] is the [PRINC1]/[PRINC2] message-passing
    obligation: the principal relays every update it receives to its
    checkers, labelled with the neighbor it (claims it) came from. *)
type msg =
  | Update of update
  | Copy of { principal : int; via : int; inner : update }
  | Packet of { src : int; dst : int; rate : float; trace : int list }

val msg_size : msg -> int
(** Approximate wire size in bytes, for the overhead experiments. *)

val empty_routing : n:int -> self:int -> routing_table
(** Only the trivial self entry. *)

val empty_pricing : n:int -> pricing_table

val recompute_routing :
  self:int ->
  n:int ->
  costs:float array ->
  neighbor_tables:(int * routing_table) list ->
  routing_table
(** The [PRINC1] computation: canonical-order path-vector relaxation over
    the latest neighbor tables (loop-avoiding). Deterministic. *)

val recompute_pricing :
  self:int ->
  costs:float array ->
  own_routing:routing_table ->
  neighbor_routing:(int * routing_table) list ->
  neighbor_pricing:(int * pricing_table) list ->
  pricing_table
(** The [PRINC2] computation, including identity tags. *)

val routing_digest : routing_table -> string
(** Hex SHA-256 of the canonical serialization — what [BANK1] compares. *)

val pricing_digest : pricing_table -> string
(** Hex SHA-256 including tags — what [BANK2] compares. *)

val costs_digest : float array -> string
(** Hex SHA-256 of a DATA1 transit-cost list (phase-1 certification). *)

val routing_inputs_digest : (int * routing_table) list -> string
(** Hex SHA-256 over a (sender, table) input set, sorted by sender —
    the principal's consumed neighbor announcements, or a checker
    mirror's consumed copies. The fault-tolerant bank compares the two
    sides to split mirror mismatches into contradictions (same inputs,
    different output) and omissions (a copy was lost in flight). *)

val pricing_inputs_digest : (int * pricing_table) list -> string

val routing_equal : routing_table -> routing_table -> bool
val pricing_equal : pricing_table -> pricing_table -> bool

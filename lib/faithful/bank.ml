module Dijkstra = Damd_graph.Dijkstra
module Signer = Damd_crypto.Signer

type detection = {
  rule : string;
  culprit : int option;
  detail : string;
}

let pp_detection ppf d =
  Format.fprintf ppf "[%s]%s %s" d.rule
    (match d.culprit with Some c -> Printf.sprintf " node %d:" c | None -> "")
    d.detail

let all_equal = function
  | [] -> true
  | x :: rest -> List.for_all (String.equal x) rest

let checkpoint_costs nodes =
  let digests = Array.to_list (Array.map Node.costs_digest nodes) in
  if all_equal digests then []
  else
    [
      {
        rule = "DATA1";
        culprit = None;
        detail = "transit-cost tables disagree across nodes (inconsistent revelation)";
      };
    ]

let checkpoint_for ~rule ~self_digest ~mirror_digest ~announced_digest nodes =
  let detections = ref [] in
  Array.iter
    (fun (node : Node.t) ->
      let p = node.Node.id in
      let expected = self_digest node in
      let problems = ref [] in
      List.iter
        (fun c ->
          let checker = nodes.(c) in
          if Node.colludes_with checker ~principal:p then
            (* A coordinated lie: the checker echoes the principal's
               self-report for both of its digests, so it contributes no
               evidence. Honest checkers (if any remain) still catch the
               deviation; a full-neighborhood coalition escapes — the
               paper's "without collusion" boundary (experiment E14). *)
            ()
          else begin
            let mirror = mirror_digest checker ~principal:p in
            if not (String.equal mirror expected) then
              problems := Printf.sprintf "checker %d mirror disagrees" c :: !problems;
            match announced_digest checker ~principal:p with
            | None -> problems := Printf.sprintf "no announcement seen by %d" c :: !problems
            | Some announced ->
                if not (String.equal announced expected) then
                  problems :=
                    Printf.sprintf "announcement to %d disagrees with internal state" c
                    :: !problems
          end)
        node.Node.neighbors;
      if !problems <> [] then
        detections :=
          { rule; culprit = Some p; detail = String.concat "; " (List.rev !problems) }
          :: !detections)
    nodes;
  List.rev !detections

(* Fault-tolerant evidence mode (DESIGN.md §14). Under injected link
   faults a bare digest mismatch no longer implies deviation — a lost
   copy or a stale announcement produces the same disagreement — so
   blame requires a *contradiction between signed statements*:

   - the announcement a checker holds matches what the principal itself
     claims to have announced, yet differs from its certified internal
     state (it announced a table it does not stand behind), or
   - checker and principal consumed input sets with equal digests, yet
     the mirror recomputation differs from the principal's self-report
     (same inputs, different function: someone lied about the
     computation).

   Everything else — missing or stale announcements, mirrors computed
   from different inputs — is an *omission*: evidence that a message was
   lost, not of who is at fault. Omissions fail the checkpoint with
   [culprit = None], triggering a restart; a deviation that keeps
   producing omissions every attempt degrades the run to a stuck phase
   (collective punishment) instead of an individual accusation. That is
   the graceful-degradation contract: faults and fault-shaped deviations
   cost progress, never honest reputations. *)
let checkpoint_for_ft ~rule ~self_digest ~claimed_announced ~inputs_digest
    ~mirror_inputs_digest ~mirror_digest ~announced_digest nodes =
  let detections = ref [] in
  let omissions = ref [] in
  Array.iter
    (fun (node : Node.t) ->
      let p = node.Node.id in
      let expected = self_digest node in
      let claimed = claimed_announced node in
      let own_inputs = inputs_digest node in
      let contradictions = ref [] in
      let omitted = ref [] in
      List.iter
        (fun c ->
          let checker = nodes.(c) in
          if Node.colludes_with checker ~principal:p then ()
          else begin
            let mirror = mirror_digest checker ~principal:p in
            if not (String.equal mirror expected) then begin
              if String.equal (mirror_inputs_digest checker ~principal:p) own_inputs
              then
                contradictions :=
                  Printf.sprintf "checker %d mirror disagrees on matching inputs" c
                  :: !contradictions
              else
                omitted :=
                  Printf.sprintf "checker %d mirror ran on different inputs" c
                  :: !omitted
            end;
            match announced_digest checker ~principal:p with
            | None -> omitted := Printf.sprintf "no announcement seen by %d" c :: !omitted
            | Some announced ->
                if String.equal announced expected then ()
                else if String.equal announced claimed then
                  contradictions :=
                    Printf.sprintf
                      "announcement to %d contradicts certified internal state" c
                    :: !contradictions
                else
                  omitted :=
                    Printf.sprintf "stale announcement held by %d" c :: !omitted
          end)
        node.Node.neighbors;
      if !contradictions <> [] then
        detections :=
          {
            rule;
            culprit = Some p;
            detail = String.concat "; " (List.rev !contradictions);
          }
          :: !detections
      else if !omitted <> [] then
        omissions :=
          Printf.sprintf "node %d: %s" p (String.concat "; " (List.rev !omitted))
          :: !omissions)
    nodes;
  let detections = List.rev !detections in
  if detections = [] && !omissions <> [] then
    [
      {
        rule;
        culprit = None;
        detail =
          Printf.sprintf "omission evidence (restart, no blame): %s"
            (String.concat " | " (List.rev !omissions));
      };
    ]
  else detections

let checkpoint_routing ?(fault_tolerant = false) nodes =
  if fault_tolerant then
    checkpoint_for_ft ~rule:"BANK1" ~self_digest:Node.self_routing_digest
      ~claimed_announced:Node.claimed_announced_routing_digest
      ~inputs_digest:Node.routing_inputs_digest
      ~mirror_inputs_digest:Node.mirror_routing_inputs_digest
      ~mirror_digest:(fun c ~principal ->
        Protocol.routing_digest (Node.mirror_routing c ~principal))
      ~announced_digest:Node.announced_routing_digest_of nodes
  else
    checkpoint_for ~rule:"BANK1" ~self_digest:Node.self_routing_digest
      ~mirror_digest:(fun c ~principal ->
        Protocol.routing_digest (Node.mirror_routing c ~principal))
      ~announced_digest:Node.announced_routing_digest_of nodes

let checkpoint_pricing ?(fault_tolerant = false) nodes =
  if fault_tolerant then
    checkpoint_for_ft ~rule:"BANK2" ~self_digest:Node.self_pricing_digest
      ~claimed_announced:Node.claimed_announced_pricing_digest
        (* a pricing mirror consumes both phases' inputs, so the omission
           test compares the concatenation *)
      ~inputs_digest:(fun node ->
        Node.routing_inputs_digest node ^ Node.pricing_inputs_digest node)
      ~mirror_inputs_digest:(fun c ~principal ->
        Node.mirror_routing_inputs_digest c ~principal
        ^ Node.mirror_pricing_inputs_digest c ~principal)
      ~mirror_digest:(fun c ~principal ->
        Protocol.pricing_digest (Node.mirror_pricing c ~principal))
      ~announced_digest:Node.announced_pricing_digest_of nodes
  else
    checkpoint_for ~rule:"BANK2" ~self_digest:Node.self_pricing_digest
      ~mirror_digest:(fun c ~principal ->
        Protocol.pricing_digest (Node.mirror_pricing c ~principal))
      ~announced_digest:Node.announced_pricing_digest_of nodes

let collect_flags nodes =
  Array.to_list nodes
  |> List.concat_map (fun (node : Node.t) ->
         List.rev_map
           (fun (rule, detail) ->
             {
               rule;
               culprit = None;
               detail = Printf.sprintf "%s (flagged by node %d)" detail node.Node.id;
             })
           node.Node.check_flags)

let checkpoint_bytes nodes =
  (* DATA1: one digest per node; BANK1 and BANK2: per principal one
     self-digest plus two digests (mirror + announced) per checker. Each
     digest is 32 bytes plus a 64-byte signed envelope. *)
  let per_digest = 32 + 64 in
  Array.fold_left
    (fun acc (node : Node.t) ->
      let deg = List.length node.Node.neighbors in
      acc + per_digest (* DATA1 *) + (2 * per_digest * (1 + (2 * deg))))
    0 nodes

let serialize_report entries =
  entries
  |> List.sort (fun (a, x) (b, y) ->
         let c = Int.compare a b in
         if c <> 0 then c else Float.compare x y)
  |> List.map (fun (k, v) -> Printf.sprintf "%d=%h" k v)
  |> String.concat ";"

type settlement = {
  outlays : float array;
  incomes : float array;
  penalties : float array;
  delivered : float array;
  detections : detection list;
}

(* The certified view: node s's own tables (which, after a clean
   checkpoint, equal every checker's mirror). *)
let certified_prices (nodes : Node.t array) s dst =
  List.map
    (fun (pe : Protocol.price_entry) -> (pe.Protocol.transit, pe.Protocol.price))
    nodes.(s).Node.pricing.(dst)

let certified_path (nodes : Node.t array) s dst =
  match nodes.(s).Node.routing.(dst) with
  | Some e -> Some e.Dijkstra.path
  | None -> None

let deliveries_for (nodes : Node.t array) ~src ~dst =
  List.filter_map
    (fun (s, rate, trace) -> if s = src then Some (rate, trace) else None)
    nodes.(dst).Node.deliveries

let settle ~obs ~checking ~epsilon ~registry ~nodes ~traffic =
  (* The whole settlement runs under one span; the runner's [note] emits
     the per-detection accusation instants, so the bank only marks the
     stage structure. *)
  Damd_obs.Obs.span obs ~cat:"bank"
    ~args:[ ("checking", Damd_util.Json.Bool checking) ]
    "bank.settle"
  @@ fun () ->
  let n = Array.length nodes in
  let outlays = Array.make n 0. in
  let incomes = Array.make n 0. in
  let penalties = Array.make n 0. in
  let delivered = Array.make n 0. in
  let detections = ref [] in
  let detect rule culprit detail = detections := { rule; culprit; detail } :: !detections in
  (* Signed DATA4 reports. The signature is produced with the node's own
     key; deviations lie inside the payload, which signing cannot (and
     should not) prevent — it prevents third-party tampering. *)
  let reports =
    Array.init n (fun i ->
        let entries = Node.payment_report nodes.(i) traffic in
        let key = Signer.key_of registry i in
        let signed = Signer.sign ~key ~signer:i (serialize_report entries) in
        if not (Signer.verify registry signed) then
          detect "EXEC" (Some i) "payment report signature invalid";
        entries)
  in
  (* Delivery accounting, shared by both modes. *)
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst && traffic.(src).(dst) > 0. then
        List.iter (fun (rate, _) -> delivered.(src) <- delivered.(src) +. rate)
          (deliveries_for nodes ~src ~dst)
    done
  done;
  if not checking then begin
    (* Naive clearing: believe every report. *)
    Array.iteri
      (fun s entries ->
        List.iter
          (fun (k, amount) ->
            outlays.(s) <- outlays.(s) +. amount;
            if k >= 0 && k < n then incomes.(k) <- incomes.(k) +. amount)
          entries)
      reports
  end
  else begin
    (* Verified clearing at certified prices. *)
    let expected_total = Array.make n 0. in
    for s = 0 to n - 1 do
      for dst = 0 to n - 1 do
        let rate = traffic.(s).(dst) in
        if s <> dst && rate > 0. then
          List.iter
            (fun (k, price) ->
              expected_total.(s) <- expected_total.(s) +. (price *. rate);
              incomes.(k) <- incomes.(k) +. (price *. rate))
            (certified_prices nodes s dst)
      done
    done;
    for s = 0 to n - 1 do
      let reported = List.fold_left (fun acc (_, v) -> acc +. v) 0. reports.(s) in
      outlays.(s) <- expected_total.(s);
      let delta = Float.abs (reported -. expected_total.(s)) in
      if delta > 1e-6 then begin
        detect "EXEC" (Some s)
          (Printf.sprintf "payment report off by %g (reported %g, owed %g)" delta
             reported expected_total.(s));
        penalties.(s) <- penalties.(s) +. delta +. epsilon
      end
      else begin
        (* Totals agree: also verify per-transit attribution against the
           certified tables — shifting money between transits is fraud
           against the shorted transit. *)
        let expected_entries = Hashtbl.create 8 in
        for dst = 0 to n - 1 do
          let rate = traffic.(s).(dst) in
          if s <> dst && rate > 0. then
            List.iter
              (fun (k, price) ->
                Hashtbl.replace expected_entries k
                  (price *. rate
                  +. Option.value ~default:0. (Hashtbl.find_opt expected_entries k)))
              (certified_prices nodes s dst)
        done;
        let misattributed =
          Hashtbl.fold
            (fun k owed acc ->
              let claimed = Option.value ~default:0. (List.assoc_opt k reports.(s)) in
              acc +. Float.abs (claimed -. owed))
            expected_entries 0.
        in
        if misattributed > 1e-6 then begin
          detect "EXEC" (Some s)
            (Printf.sprintf "payment report misattributes %g across transits"
               misattributed);
          penalties.(s) <- penalties.(s) +. epsilon
        end
      end
    done;
    (* Route audit: delivered traces must follow certified paths; missing
       deliveries are traced to the node that forwarded off-path. *)
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        let rate = traffic.(src).(dst) in
        if src <> dst && rate > 0. then
          match certified_path nodes src dst with
          | None -> ()
          | Some path -> (
              let arrivals = deliveries_for nodes ~src ~dst in
              match arrivals with
              | [] -> (
                  detect "EXEC" None
                    (Printf.sprintf "flow %d->%d never delivered" src dst);
                  (* find a witness of off-path carriage *)
                  let transits = Dijkstra.transit_nodes path in
                  let off_path_from =
                    Array.to_list nodes
                    |> List.find_map (fun (v : Node.t) ->
                           if List.mem v.Node.id transits || v.Node.id = src then None
                           else
                             List.find_map
                               (fun (s, d, _, from) ->
                                 if s = src && d = dst then Some from else None)
                               v.Node.carried)
                  in
                  match off_path_from with
                  | Some from ->
                      detect "EXEC" (Some from)
                        (Printf.sprintf "node %d forwarded flow %d->%d off-path" from
                           src dst);
                      penalties.(from) <- penalties.(from) +. epsilon
                  | None -> ())
              | _ ->
                  List.iter
                    (fun (_, trace) ->
                      if trace <> path then begin
                        (* first divergence: the node that made the wrong
                           forwarding decision is the one before it *)
                        let rec diverge_at i t p =
                          match (t, p) with
                          | x :: t', y :: p' when x = y -> diverge_at (i + 1) t' p'
                          | _ -> i
                        in
                        let i = diverge_at 0 trace path in
                        let culprit = if i = 0 then src else List.nth trace (i - 1) in
                        detect "EXEC" (Some culprit)
                          (Printf.sprintf "flow %d->%d strayed from certified path" src
                             dst);
                        penalties.(culprit) <- penalties.(culprit) +. epsilon
                      end)
                    arrivals)
      done
    done
  end;
  { outlays; incomes; penalties; delivered; detections = List.rev !detections }

module Graph = Damd_graph.Graph
module Sparse = Damd_fpss.Sparse

type deviation = Honest | Distort_routing of float | Distort_pricing of float

type detection = {
  culprit : int;
  phase : [ `Routing | `Pricing ];
  residual : float;
}

type report = {
  n : int;
  k : int;
  rounds_flood : int;
  rounds_routing : int;
  rounds_pricing : int;
  construction_messages : int;
  checkpoint_messages : int;
  detections : detection list;
  completed : bool;
  delivered : int;
  total_payments : float;
  total_true_cost : float;
  utilities : float array;
}

let default_value_per_packet = 100.

(* One checkpoint per construction phase: every node's announced row is
   already held by each of its neighbors (they received the
   announcements), so a checkpoint costs one honest recomputation per
   checker plus a digest exchange across every edge — 2E messages per
   phase. The recomputation itself is [Sparse.routing_deviation] /
   [pricing_deviation]; checkers holding identical announced inputs are
   unanimous, so one residual per node stands in for all deg(i) mirror
   copies (the dense [Runner] plays the per-checker version out message
   by message; at n=10k that fidelity is exactly the O(n^2) traffic this
   layer exists to avoid). *)
let checkpoint ~phase ~residual_of ~tolerance g detections =
  let n = Graph.n g in
  for i = 0 to n - 1 do
    let r = residual_of i in
    if r > tolerance then detections := { culprit = i; phase; residual = r } :: !detections
  done;
  2 * Graph.num_edges g

(* Execution and settlement over the announced tables: unit demand from
   every node to every destination. Senders pay the announced VCG premia;
   transits carry at their true cost. Utilities are the quasilinear form
   of DESIGN.md §5 restricted to what exists at scale: value of own
   delivered traffic minus outlays, plus transit income minus true
   carriage cost. *)
let settle ~value_per_packet g sp utilities =
  let n = Graph.n g in
  let delivered = ref 0 in
  let total_payments = ref 0. in
  let total_true_cost = ref 0. in
  Array.iter
    (fun dest ->
      for src = 0 to n - 1 do
        if src <> dest then
          match Sparse.path sp src ~dest with
          | None -> ()
          | Some path ->
              incr delivered;
              utilities.(src) <- utilities.(src) +. value_per_packet;
              List.iter
                (fun v ->
                  if v <> src && v <> dest then begin
                    let c = Graph.cost g v in
                    utilities.(v) <- utilities.(v) -. c;
                    total_true_cost := !total_true_cost +. c
                  end)
                path;
              List.iter
                (fun (k, p) ->
                  utilities.(src) <- utilities.(src) -. p;
                  utilities.(k) <- utilities.(k) +. p;
                  total_payments := !total_payments +. p)
                (Sparse.prices sp src ~dest)
      done)
    (Sparse.dests sp);
  (!delivered, !total_payments, !total_true_cost)

let run ?dests ?max_rounds ?(tolerance = 1e-9)
    ?(value_per_packet = default_value_per_packet)
    ?(deviations = fun _ -> Honest) ?obs g =
  let n = Graph.n g in
  let routing_offsets = Array.make n 0. in
  let pricing_offsets = Array.make n 0. in
  let any_routing = ref false and any_pricing = ref false in
  for i = 0 to n - 1 do
    match deviations i with
    | Honest -> ()
    | Distort_routing d ->
        routing_offsets.(i) <- d;
        any_routing := true
    | Distort_pricing d ->
        pricing_offsets.(i) <- d;
        any_pricing := true
  done;
  let sp = Sparse.create ?dests g in
  Option.iter (Sparse.set_obs sp) obs;
  Sparse.run ?max_rounds
    ?routing_offsets:(if !any_routing then Some routing_offsets else None)
    ?pricing_offsets:(if !any_pricing then Some pricing_offsets else None)
    sp;
  let detections = ref [] in
  let chk_r =
    checkpoint ~phase:`Routing
      ~residual_of:(Sparse.routing_deviation sp)
      ~tolerance g detections
  in
  let chk_p =
    checkpoint ~phase:`Pricing
      ~residual_of:(Sparse.pricing_deviation sp)
      ~tolerance g detections
  in
  let detections = List.rev !detections in
  let completed = detections = [] in
  let utilities = Array.make n 0. in
  let delivered = ref 0 in
  let total_payments = ref 0. in
  let total_true_cost = ref 0. in
  (* Execution proceeds only on a clean checkpoint — on detection the
     mechanism halts and punishes instead of clearing traffic over known
     bad tables (the scale analogue of the bank refusing to certify). *)
  if completed then begin
    let d, tp, tc = settle ~value_per_packet g sp utilities in
    delivered := d;
    total_payments := tp;
    total_true_cost := tc
  end;
  ( {
      n;
      k = Array.length (Sparse.dests sp);
      rounds_flood = Sparse.rounds_flood sp;
      rounds_routing = Sparse.rounds_routing sp;
      rounds_pricing = Sparse.rounds_pricing sp;
      construction_messages = Sparse.messages sp;
      checkpoint_messages = chk_r + chk_p;
      detections;
      completed;
      delivered = !delivered;
      total_payments = !total_payments;
      total_true_cost = !total_true_cost;
      utilities;
    },
    sp )

module Dijkstra = Damd_graph.Dijkstra
module Ir = Damd_speccheck.Ir
module Taint = Damd_speccheck.Taint

(* Exactly one input class is perturbed per run. *)
type world = Base | Private | Received | State

(* ---- the Figure-1 fixture, seen from node 3 ---- *)

let neighbor_sets () =
  [| [ 4; 5 ]; [ 3; 5 ]; [ 3; 5 ]; [ 1; 2; 4 ]; [ 0; 3 ]; [ 0; 1; 2 ] |]

let base_costs () = [| 5.; 6.; 1.; 1.; 100.; 1000. |]

let mk ~deviation ~world () =
  let true_cost = match world with Private -> 2.75 | _ -> 1. in
  Node.create ~id:3 ~n:6 ~neighbor_sets:(neighbor_sets ()) ~true_cost
    ~deviation ()

let capture () =
  let log = ref [] in
  let send ~dst msg = log := (dst, msg) :: !log in
  (log, send)

(* ---- fixture tables ---- *)

let rt ~self entries : Protocol.routing_table =
  let t = Array.make 6 None in
  t.(self) <- Some { Dijkstra.cost = 0.; path = [ self ] };
  List.iter
    (fun (dst, cost, path) -> t.(dst) <- Some { Dijkstra.cost = cost; path })
    entries;
  t

let pt entries : Protocol.pricing_table =
  let t = Array.make 6 [] in
  List.iter
    (fun (dst, es) ->
      t.(dst) <-
        List.map
          (fun (transit, price, tags) -> { Protocol.transit; price; tags })
          es)
    entries;
  t

(* ---- canonical rendering ([%h] floats: no rounding masks a flow) ---- *)

let fstr = Printf.sprintf "%h"

let render_update = function
  | Protocol.Cost_announce { origin; cost } ->
      Printf.sprintf "cost(%d,%s)" origin (fstr cost)
  | Protocol.Routing_update { origin; table } ->
      Printf.sprintf "rt(%d,%s)" origin (Protocol.routing_digest table)
  | Protocol.Pricing_update { origin; table } ->
      Printf.sprintf "pt(%d,%s)" origin (Protocol.pricing_digest table)

let render_msg = function
  | Protocol.Update u -> "u:" ^ render_update u
  | Protocol.Copy { principal; via; inner } ->
      Printf.sprintf "c:%d/%d/%s" principal via (render_update inner)
  | Protocol.Packet { src; dst; rate; trace } ->
      Printf.sprintf "p:%d>%d@%s[%s]" src dst (fstr rate)
        (String.concat ";" (List.map string_of_int trace))

let render_sends sends =
  List.map (fun (dst, m) -> Printf.sprintf "%d<-%s" dst (render_msg m)) sends
  |> List.sort String.compare
  |> String.concat " "

let copies sends =
  List.filter (fun (_, m) -> match m with Protocol.Copy _ -> true | _ -> false) sends

let updates sends =
  List.filter
    (fun (_, m) -> match m with Protocol.Update _ -> true | _ -> false)
    sends

(* ---- per-action harnesses ---- *)

let declare_cost deviation world =
  let node = mk ~deviation ~world () in
  let log, send = capture () in
  Node.announce_cost node send;
  render_sends !log

let flood_costs deviation world =
  let node = mk ~deviation ~world () in
  (match world with State -> node.Node.learned_costs.(0) <- Some 9. | _ -> ());
  let cost = match world with Received -> 8. | _ -> 7.5 in
  let log, send = capture () in
  Node.on_cost_msg node send ~sender:1
    (Protocol.Cost_announce { origin = 0; cost });
  render_sends !log

(* Phase-2a intake at node 3: neighbor 1 announces a routing table. The
   handler both forwards checker copies (the [forward-routing-copies]
   action — the [Copy] projection of the send log) and recomputes + re-
   announces (the [recompute-routing] action — the [Update] projection
   plus the table digest). *)
let routing_update deviation world =
  let node = mk ~deviation ~world () in
  let costs = base_costs () in
  (match world with State -> costs.(1) <- costs.(1) +. 3.25 | _ -> ());
  node.Node.costs <- costs;
  let d = match world with Received -> 2.5 | _ -> 0. in
  let table = rt ~self:1 [ (5, d, [ 1; 5 ]); (0, 7.25 +. d, [ 1; 5; 0 ]) ] in
  let log, send = capture () in
  Node.on_routing_msg node send ~sender:1
    (Protocol.Update (Protocol.Routing_update { origin = 1; table }));
  (!log, Protocol.routing_digest node.Node.routing)

let forward_routing_copies deviation world =
  render_sends (copies (fst (routing_update deviation world)))

let recompute_routing deviation world =
  let log, digest = routing_update deviation world in
  render_sends (updates log) ^ " !" ^ digest

(* Checker intake at node 3 for principal 1: two claimed inputs (via its
   checkers 5 and 3), then the CHECK1 mirror recomputation. The state
   perturbation bumps costs.(5), not costs.(1): principal 1's own transit
   cost is never interior to its paths, so it cannot flow. *)
let mirror_routing deviation world =
  let node = mk ~deviation ~world () in
  let costs = base_costs () in
  (match world with State -> costs.(5) <- costs.(5) +. 41. | _ -> ());
  node.Node.costs <- costs;
  let d = match world with Received -> 2.5 | _ -> 0. in
  let rt5 = rt ~self:5 [ (0, d, [ 5; 0 ]); (2, d, [ 5; 2 ]) ] in
  let rt3 = rt ~self:3 [ (0, 99., [ 3; 4; 0 ]) ] in
  let log, send = capture () in
  Node.on_routing_msg node send ~sender:1
    (Protocol.Copy
       {
         principal = 1;
         via = 5;
         inner = Protocol.Routing_update { origin = 5; table = rt5 };
       });
  Node.on_routing_msg node send ~sender:1
    (Protocol.Copy
       {
         principal = 1;
         via = 3;
         inner = Protocol.Routing_update { origin = 3; table = rt3 };
       });
  ignore !log;
  Protocol.routing_digest (Node.mirror_routing node ~principal:1)

(* Phase-2b intake at node 3: routing context is already accumulated
   protocol state; neighbor 1 announces a pricing table. Two neighbor
   routing tables matter here: with a single claimed path the FPSS price
   [costs.(k) + d_mk - e.cost] cancels every cost term exactly (the price
   collapses to the neighbor's claimed price), so the protocol-state flow
   would be invisible. The via-4 alternative makes the destination-0
   minimum switch to a candidate whose price retains [costs], while the
   destination-2 entry keeps the claimed-price dependency. *)
let pricing_update deviation world =
  let node = mk ~deviation ~world () in
  let costs = base_costs () in
  (match world with State -> costs.(1) <- costs.(1) +. 3.25 | _ -> ());
  node.Node.costs <- costs;
  let rt1 =
    rt ~self:1
      [ (5, 0., [ 1; 5 ]); (0, 7.25, [ 1; 5; 0 ]); (2, 3., [ 1; 5; 2 ]) ]
  in
  let rt4 = rt ~self:4 [ (0, 1., [ 4; 0 ]) ] in
  node.Node.nbr_routing <- [ (1, rt1); (4, rt4) ];
  node.Node.routing <-
    Protocol.recompute_routing ~self:3 ~n:6 ~costs:node.Node.costs
      ~neighbor_tables:node.Node.nbr_routing;
  let d = match world with Received -> 1.5 | _ -> 0. in
  let table =
    pt
      [
        (0, [ (1, 4.5 +. d, [ 5 ]); (5, 2000. +. d, [ 5 ]) ]);
        (2, [ (5, 4.5 +. d, [ 5 ]) ]);
        (5, [ (1, 3.5 +. d, [ 5 ]) ]);
      ]
  in
  let log, send = capture () in
  Node.on_pricing_msg node send ~sender:1
    (Protocol.Update (Protocol.Pricing_update { origin = 1; table }));
  (!log, Protocol.pricing_digest node.Node.pricing)

let forward_pricing_copies deviation world =
  render_sends (copies (fst (pricing_update deviation world)))

let recompute_pricing deviation world =
  let log, digest = pricing_update deviation world in
  render_sends (updates log) ^ " !" ^ digest

let mirror_pricing deviation world =
  let node = mk ~deviation ~world () in
  let costs = base_costs () in
  (match world with State -> costs.(5) <- costs.(5) +. 41. | _ -> ());
  node.Node.costs <- costs;
  let d = match world with Received -> 1.5 | _ -> 0. in
  let rt5 = rt ~self:5 [ (0, d, [ 5; 0 ]); (2, d, [ 5; 2 ]) ] in
  let rt3 = rt ~self:3 [ (0, 99., [ 3; 4; 0 ]) ] in
  let pt5 = pt [ (0, [ (5, 2.25 +. d, [ 0 ]) ]) ] in
  let log, send = capture () in
  Node.on_routing_msg node send ~sender:1
    (Protocol.Copy
       {
         principal = 1;
         via = 5;
         inner = Protocol.Routing_update { origin = 5; table = rt5 };
       });
  Node.on_routing_msg node send ~sender:1
    (Protocol.Copy
       {
         principal = 1;
         via = 3;
         inner = Protocol.Routing_update { origin = 3; table = rt3 };
       });
  Node.on_pricing_msg node send ~sender:1
    (Protocol.Copy
       {
         principal = 1;
         via = 5;
         inner = Protocol.Pricing_update { origin = 5; table = pt5 };
       });
  ignore !log;
  Protocol.pricing_digest (Node.mirror_pricing node ~principal:1)

let report_digests deviation world =
  let node = mk ~deviation ~world () in
  let costs = base_costs () in
  (match world with State -> costs.(1) <- costs.(1) +. 3.25 | _ -> ());
  node.Node.costs <- costs;
  let rt1 = rt ~self:1 [ (5, 0., [ 1; 5 ]); (0, 7.25, [ 1; 5; 0 ]) ] in
  node.Node.nbr_routing <- [ (1, rt1) ];
  node.Node.routing <-
    Protocol.recompute_routing ~self:3 ~n:6 ~costs:node.Node.costs
      ~neighbor_tables:node.Node.nbr_routing;
  node.Node.nbr_pricing <-
    [ (1, pt [ (0, [ (1, 4.5, [ 5 ]); (5, 9.5, [ 5 ]) ]) ]) ];
  node.Node.pricing <-
    Protocol.recompute_pricing ~self:3 ~costs:node.Node.costs
      ~own_routing:node.Node.routing ~neighbor_routing:node.Node.nbr_routing
      ~neighbor_pricing:node.Node.nbr_pricing;
  String.concat "/"
    [
      Node.costs_digest node;
      Node.self_routing_digest node;
      Node.self_pricing_digest node;
    ]

let forward_packets deviation world =
  let node = mk ~deviation ~world () in
  node.Node.routing.(0) <-
    (match world with
    | State -> Some { Dijkstra.cost = 8.; path = [ 3; 1; 5; 0 ] }
    | _ -> Some { Dijkstra.cost = 105.; path = [ 3; 4; 0 ] });
  let rate = match world with Received -> 2.0 | _ -> 1.5 in
  let log, send = capture () in
  Node.on_packet node send ~sender:2
    (Protocol.Packet { src = 2; dst = 0; rate; trace = [ 2 ] });
  render_sends !log

let report_payments deviation world =
  let node = mk ~deviation ~world () in
  let bumped = match world with State -> true | _ -> false in
  node.Node.pricing <-
    pt
      [
        (0, [ (4, (if bumped then 3.25 else 2.5), [ 4 ]) ]);
        (5, [ (1, (if bumped then 1.75 else 1.25), [ 1 ]) ]);
      ];
  let traffic = Array.make_matrix 6 6 0. in
  traffic.(3).(0) <- (match world with Private -> 3.5 | _ -> 2.);
  traffic.(3).(5) <- 1.;
  Node.payment_report node traffic
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map (fun (transit, owed) -> Printf.sprintf "%d=%s" transit (fstr owed))
  |> String.concat " "

let harnesses =
  [
    ("declare-cost", declare_cost);
    ("flood-costs", flood_costs);
    ("forward-routing-copies", forward_routing_copies);
    ("recompute-routing", recompute_routing);
    ("mirror-routing", mirror_routing);
    ("forward-pricing-copies", forward_pricing_copies);
    ("recompute-pricing", recompute_pricing);
    ("mirror-pricing", mirror_pricing);
    ("report-digests", report_digests);
    ("forward-packets", forward_packets);
    ("report-payments", report_payments);
  ]

let observations ?(deviation = Adversary.Faithful) () =
  List.map
    (fun (action, harness) ->
      let base = harness deviation Base in
      let deps =
        List.filter_map
          (fun (world, input) ->
            if String.equal (harness deviation world) base then None
            else Some input)
          [
            (Private, Ir.Private_info);
            (Received, Ir.Received_messages);
            (State, Ir.Protocol_state);
          ]
      in
      { Taint.action; deps })
    harnesses

(** A protocol node: principal role, checker role for every neighbor, and
    the deviation hook.

    The node is pure protocol state plus handlers parameterized by a
    [send] callback, so the same implementation runs on the simulator (via
    [Runner]) and in direct unit tests. A node's behaviour is the
    *suggested specification* when [deviation = Faithful]; any other value
    replaces parts of it, implementing the paper's model of a rational
    node that ships its own code.

    Checker mirrors: for each neighbor [p], the node records the latest
    update [p] claims to have received from each of [p]'s neighbors
    (copies relayed by [p], plus the node's own announcements to [p],
    which it knows first-hand). [mirror_routing]/[mirror_pricing] then
    recompute what [p]'s tables *must* be — [CHECK1]/[CHECK2]'s "heavy
    lifting" that the bank's hash comparison settles. *)

type send = dst:int -> Protocol.msg -> unit

type t = {
  id : int;
  n : int;
  neighbors : int list;  (** sorted *)
  neighbors_arr : int array;  (** [neighbors] as an array — hot-loop fast path *)
  neighbor_sets : int list array;  (** everyone's neighbor lists (checker common knowledge) *)
  neighbor_arrs : int array array;
      (** [neighbor_sets] as sorted arrays, for O(log deg) provenance checks *)
  deviation : Adversary.t;
      (** resolved at creation: an [Epsilon_rational] wrapper handed in
          directly is taken as *active* (the gauntlet grader resolves
          activation before building nodes) *)
  byz : Adversary.byz_plan option;
      (** the fixed plan when [deviation] is [Byzantine_arbitrary] *)
  true_cost : float;
  copies : bool;
      (** forward checker copies ([PRINC1]/[PRINC2] message-passing);
          disabled for the plain-FPSS baseline of experiment E6 *)
  (* DATA1 *)
  learned_costs : float option array;
  mutable costs : float array;  (** fixed at the end of phase 1 *)
  (* principal state *)
  mutable nbr_routing : (int * Protocol.routing_table) list;
  mutable nbr_pricing : (int * Protocol.pricing_table) list;
  mutable routing : Protocol.routing_table;
  mutable pricing : Protocol.pricing_table;
  mutable announced_routing : Protocol.routing_table;
  mutable announced_pricing : Protocol.pricing_table;
  (* checker state: principal -> claimed inputs, keyed by via *)
  mirror_routing_in : (int, (int * Protocol.routing_table) list ref) Hashtbl.t;
  mirror_pricing_in : (int, (int * Protocol.pricing_table) list ref) Hashtbl.t;
  mutable check_flags : (string * string) list;  (** (rule, detail), newest first *)
  (* execution state *)
  mutable carried : (int * int * float * int) list;
      (** (src, dst, rate, from) transits actually performed *)
  mutable deliveries : (int * float * int list) list;
      (** (src, rate, trace) for packets terminating here *)
}

val create :
  ?copies:bool ->
  id:int ->
  n:int ->
  neighbor_sets:int list array ->
  true_cost:float ->
  deviation:Adversary.t ->
  unit ->
  t
(** [copies] defaults to [true]. *)

val reset_costs : t -> unit
(** Wipe DATA1 (a phase-1 restart). *)

val reset_routing_phase : t -> unit
(** Wipe phase-2 state (both sub-phases) — a bank-ordered restart of the
    routing stage. *)

val reset_pricing_phase : t -> unit
(** Wipe only the pricing sub-phase state (a [BANK2]-ordered restart keeps
    the certified routing tables). *)

val reset_execution : t -> unit

(** {2 Phase 1 — transit-cost flood} *)

val announce_cost : t -> send -> unit
(** Originate the node's own cost announcement (deviations: misreport /
    inconsistent values per neighbor). *)

val on_cost_msg : t -> send -> sender:int -> Protocol.update -> unit
(** Store first-received facts and flood them on (deviation: corrupt
    forwarded facts). *)

val finalize_costs : t -> bool
(** Freeze DATA1; [false] if some cost is still unknown. *)

(** {2 Phase 2a — routing tables} *)

val start_routing : t -> send -> unit
(** Announce the initial (self-only) routing table. *)

val on_routing_msg : t -> send -> sender:int -> Protocol.msg -> unit
(** Handles both direct updates (store, forward copies to checkers,
    recompute, announce on change) and copies (update the relevant
    mirror). *)

(** {2 Phase 2b — pricing tables} *)

val start_pricing : t -> send -> unit

val on_pricing_msg : t -> send -> sender:int -> Protocol.msg -> unit

(** {2 Execution} *)

val originate_traffic : t -> send -> dst:int -> rate:float -> unit

val on_packet : t -> send -> sender:int -> Protocol.msg -> unit

val payment_report : t -> Damd_fpss.Traffic.t -> (int * float) list
(** The signed DATA4 report: per-transit totals owed according to the
    node's own pricing table (deviation: scaled down). *)

(** {2 What the bank collects} *)

val self_routing_digest : t -> string
val self_pricing_digest : t -> string
val costs_digest : t -> string

val announced_routing_digest_of : t -> principal:int -> string option
(** Digest of the last routing table [principal] announced to this node. *)

val announced_pricing_digest_of : t -> principal:int -> string option

val mirror_routing : t -> principal:int -> Protocol.routing_table
(** [CHECK1]: recompute the principal's routing table from its claimed
    inputs. *)

val mirror_pricing : t -> principal:int -> Protocol.pricing_table
(** [CHECK2]: recompute the principal's pricing table (uses the phase-2a
    mirror for the principal's own routing table). *)

val colludes_with : t -> principal:int -> bool
(** True when this node's checker-role reports about [principal] are
    coordinated lies ([Lying_checker] covers every principal;
    [Collude_with p] covers [p] alone). The bank models the coordination
    by letting such a checker echo the principal's self-report. *)

(** {2 Fault-tolerant bank queries}

    Under injected faults a checkpoint mismatch no longer implies a lie:
    a lost copy, a stale announcement or a crash window produces the same
    digest disagreement an adversary would. These input-set digests let
    the bank split mismatches into *contradictions* (checker and
    principal consumed the same inputs yet disagree — someone deviated)
    and *omissions* (they consumed different inputs — a message was lost;
    restart, accuse no one). See [Bank.checkpoint_routing]'s
    [fault_tolerant] mode and DESIGN.md §14. *)

val claimed_announced_routing_digest : t -> string
(** Digest of what the node itself records as its last routing
    announcement — its signed answer to "what did you announce?". For a
    computation deviant this is the distorted table (the node cannot
    un-announce), for an honest node it equals the self digest. *)

val claimed_announced_pricing_digest : t -> string

val routing_inputs_digest : t -> string
(** Digest over the node's consumed neighbor announcements (principal
    side of the omission test). *)

val pricing_inputs_digest : t -> string

val mirror_routing_inputs_digest : t -> principal:int -> string
(** Digest over the copies this checker consumed for [principal]'s
    mirror (checker side of the omission test). *)

val mirror_pricing_inputs_digest : t -> principal:int -> string

(** {2 Crash-recovery handoff} *)

val resend_costs_to : t -> send -> to_:int -> unit
(** Re-deliver every known DATA1 fact to a recovered neighbor, applying
    the node's usual declaration/forwarding deviations. Receivers keep
    first-received facts, so re-sends are idempotent. *)

val resend_routing_to : t -> send -> to_:int -> unit
(** Re-deliver the last routing announcement (if any) plus the checker
    copies the recovered neighbor missed, through the same deviation
    filters as the live path ([routing_copy_view]). *)

val resend_pricing_to : t -> send -> to_:int -> unit

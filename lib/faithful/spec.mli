(** The extended-FPSS specification as data: every external action of the
    protocol, its §3.4 classification and the phase it belongs to — the
    classification the paper walks through at the end of §4.1.

    Since the speccheck PR the catalogue is *derived* from the finite spec
    IR ([Damd_speccheck.Fpss_spec.ir]): entries, rule tags and deviation
    labels are computed from the same artifact the static checker lints and
    the tests compile machines from, so the three can no longer drift.
    Rules and deviations are the shared closed variants
    ([Damd_speccheck.Rule], [Damd_speccheck.Dev]) instead of strings.

    This catalogue is what connects the implementation back to the proof
    structure: IC arguments must cover exactly the information-revelation
    rows, strong-CC the message-passing rows, strong-AC the computation
    rows, and every deviation in [Adversary] targets one (or a joint
    combination) of these actions. Tested for coverage in
    [test/test_faithful.ml] and linted by [damd_cli lint]. *)

module Rule = Damd_speccheck.Rule
module Dev = Damd_speccheck.Dev

type phase = Construction1 | Construction2a | Construction2b | Execution

type entry = {
  action : string;  (** what the node does *)
  cls : Damd_core.Action.t;
  phase : phase;
  rules : Rule.t list;
      (** the paper's rule tags ([PRINC1], [CHECK2], ...) enforcing it *)
  deviations : Dev.t list;
      (** labels of adversary-library deviations targeting it *)
}

val catalogue : entry list
(** Every external action of the suggested specification [s^m], derived
    from [Damd_speccheck.Fpss_spec.ir] in suggested-play order. *)

val phase_name : phase -> string

val phase_of_ir_name : string -> phase option
(** Map an IR phase name (["construction-2a"], ...) onto the variant. *)

val classes_covered : unit -> Damd_core.Action.t list
(** The distinct classes appearing in the catalogue (all three, by the
    coverage test). *)

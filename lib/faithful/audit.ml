module Graph = Damd_graph.Graph
module Tables = Damd_fpss.Tables

type outcome =
  | Caught of string list
  | No_effect
  | Escaped

let outcome_to_string = function
  | Caught rules -> "caught by " ^ String.concat "," rules
  | No_effect -> "no effect"
  | Escaped -> "ESCAPED"

type audit = {
  node : int;
  deviation : Adversary.t;
  outcome : outcome;
  gain : float;
  completed : bool;
}

let same_tables a b =
  match (a, b) with
  | Some a, Some b -> Tables.routing_equal a b && Tables.prices_equal a b
  | _ -> false

let one ?params ~graph ~traffic ~node ~deviation () =
  let faithful = Runner.run_faithful ?params ~graph ~traffic () in
  let deviations = Array.make (Graph.n graph) Adversary.Faithful in
  deviations.(node) <- deviation;
  let r = Runner.run ?params ~graph ~traffic ~deviations () in
  let rules =
    r.Runner.detections
    |> List.filter_map (fun d ->
           (* checker flags are advisory; bank rules are the verdicts *)
           if d.Bank.rule = "CHECK" || d.Bank.rule = "CHECK2" then None
           else Some d.Bank.rule)
    |> List.sort_uniq String.compare
  in
  let outcome =
    if rules <> [] then Caught rules
    else if same_tables r.Runner.tables faithful.Runner.tables then No_effect
    else Escaped
  in
  {
    node;
    deviation;
    outcome;
    gain = r.Runner.utilities.(node) -. faithful.Runner.utilities.(node);
    completed = r.Runner.completed;
  }

type matrix_row = {
  name : string;
  runs : int;
  caught : int;
  no_effect : int;
  escaped : int;
  rules : string list;
  max_gain : float;
}

let detection_matrix ?params ?(deviations = Adversary.library) ~targets () =
  deviations
  |> List.filter Adversary.detectable
  |> List.map (fun d ->
         let runs = ref 0 and caught = ref 0 and no_effect = ref 0 in
         let escaped = ref 0 and rules = ref [] and max_gain = ref neg_infinity in
         List.iter
           (fun (graph, traffic, nodes) ->
             List.iter
               (fun node ->
                 incr runs;
                 let a = one ?params ~graph ~traffic ~node ~deviation:d () in
                 if a.gain > !max_gain then max_gain := a.gain;
                 match a.outcome with
                 | Caught rs ->
                     incr caught;
                     rules := List.sort_uniq String.compare (rs @ !rules)
                 | No_effect -> incr no_effect
                 | Escaped -> incr escaped)
               nodes)
           targets;
         {
           name = Adversary.name d;
           runs = !runs;
           caught = !caught;
           no_effect = !no_effect;
           escaped = !escaped;
           rules = !rules;
           max_gain = !max_gain;
         })

let clean rows = List.for_all (fun r -> r.escaped = 0) rows

let max_gain ?params ?(deviations = Adversary.library) ~graph ~traffic () =
  let n = Graph.n graph in
  let best = ref neg_infinity and best_name = ref "-" in
  List.iter
    (fun d ->
      for node = 0 to n - 1 do
        let a = one ?params ~graph ~traffic ~node ~deviation:d () in
        if a.gain > !best then begin
          best := a.gain;
          best_name := Adversary.name d
        end
      done)
    deviations;
  (!best, !best_name)

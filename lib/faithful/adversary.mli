(** The rational-manipulation library — §4.3's manipulation catalogue made
    executable.

    Each constructor is a complete deviating node implementation for the
    extended-FPSS protocol (a "rational node" that replaced the suggested
    code with its own). The catalogue covers:

    - the paper's manipulations 1–4 (drop / change / spoof forwarded
      routing and pricing updates; miscompute either table),
    - information-revelation deviations (consistent misreport — allowed
      and unprofitable under VCG; inconsistent announcement — caught by
      the phase-1 certificate),
    - execution-phase deviations (payment under-reporting, packet
      misrouting),
    - omission (silence), which the catch-and-punish machinery also flags.

    [classify] maps each deviation to the external-action classes it
    touches, which is what routes it into the strong-CC / strong-AC /
    IC sweeps of [Damd_core.Equilibrium]. *)

type t =
  | Faithful
  | Misreport_cost of float
      (** declare this transit cost to everyone (consistent lie) *)
  | Inconsistent_cost of float * float
      (** declare the first cost to even-indexed neighbors, the second to
          odd — inconsistent information revelation (Remark 4) *)
  | Corrupt_cost_forward of float
      (** add this delta to every transit-cost fact forwarded for others *)
  | Drop_routing_copies
      (** [PRINC1] message-passing deviation: never forward routing copies
          to checkers *)
  | Drop_pricing_copies  (** same for [PRINC2] *)
  | Corrupt_routing_copies of float
      (** inflate path costs inside forwarded routing copies *)
  | Corrupt_pricing_copies of float
      (** inflate prices inside forwarded pricing copies *)
  | Spoof_routing_update of float
      (** fabricate a copy claiming a neighbor announced costs inflated by
          this delta *)
  | Spoof_pricing_update of float
      (** fabricate a copy claiming a neighbor announced prices inflated
          by this delta *)
  | Miscompute_routing of float
      (** announce own routing entries with costs shifted by this delta
          (negative = understate downstream costs to attract traffic and
          inflate the VCG premium — the profitable manipulation when
          checking is disabled) *)
  | Miscompute_pricing of float
      (** announce own pricing entries inflated by this delta *)
  | Underreport_payments of float
      (** report this fraction of the true [DATA4] payment total *)
  | Misroute_packets
      (** forward execution packets to the lowest-numbered neighbor
          instead of the certified next hop *)
  | Misattribute_payments
      (** report the correct DATA4 *total* but shift every payment onto
          the lowest-numbered owed transit — caught only because the bank
          compares per-transit entries, not just totals *)
  | Silent_in_construction
      (** never announce own tables (omission) *)
  | Combined_routing_attack of float
      (** a *joint* deviation within phase 2a, exercising the "any
          combination" quantifier of Defs. 12-13: corrupt forwarded
          routing copies by +delta, announce own tables distorted by
          -delta, and spoof an extra update — all at once *)
  | Combined_pricing_attack of float
      (** the phase-2b analogue: corrupt pricing copies, inflate own
          announced prices and spoof, simultaneously *)
  | Lying_checker
      (** checker-role deviation: report to the bank, for every principal
          it checks, whatever digest the principal self-reports (instead of
          its honestly recomputed mirror) — the "checker lets a deviation
          through" case the partitioning argument of §4.2 covers *)
  | Collude_with of int
      (** full collusion with the named principal: behave as
          [Lying_checker] toward it AND suppress any checker evidence about
          it. Two-node (and neighborhood) collusion is outside the paper's
          ex post Nash (without collusion) guarantee; experiment E14 maps
          where detection survives and where it falls *)
  | Byzantine_arbitrary of int
      (** fail-arbitrary node: a *fixed plan* of composed manipulations
          (inconsistent costs, corrupted forwards, dropped/corrupted
          copies, distorted announcements, misrouting, under-reporting)
          sampled once from the seed via [plan_of_seed]. The plan is fixed
          at creation — a per-message re-randomizer would never converge
          its own announcement loop — so the node is arbitrary in choice
          but deterministic in time, which is the strongest adversary the
          replayable gauntlet can host (cf. rational consensus's mixed
          Byzantine/rational populations) *)
  | Epsilon_rational of float * t
      (** ε-indifferent agent (Theorem 1's ε-penalty, near-rationality):
          plays the inner deviation only if its unilateral gain exceeds
          the threshold, else stays [Faithful]. The activation decision is
          resolved by the gauntlet's grader from measured Definition-8
          deltas ([resolve_epsilon]); the label, classes and
          detectability all defer to the inner deviation *)

type byz_plan = {
  byz_cost_pair : (float * float) option;
      (** declare these two costs to even/odd neighbors *)
  byz_cost_forward : float option;  (** delta added to forwarded cost facts *)
  byz_routing_copies : [ `Drop | `Corrupt of float ] option;
  byz_routing_announce : float option;  (** own routing-announcement delta *)
  byz_pricing_copies : [ `Drop | `Corrupt of float ] option;
  byz_pricing_announce : float option;  (** own pricing-announcement delta *)
  byz_misroute : bool;
  byz_underreport : float option;  (** reported fraction of true DATA4 total *)
}

val plan_of_seed : int -> byz_plan
(** The fixed behavior plan of [Byzantine_arbitrary seed]: each component
    independently active with moderate probability, at least one always
    active. Pure in the seed. *)

val epsilon : t -> (float * t) option
(** [Some (threshold, inner)] for [Epsilon_rational], else [None]. *)

val resolve_epsilon : active:bool -> t -> t
(** Resolve the wrapper to a concrete behavior: the inner deviation when
    [active], [Faithful] otherwise; non-wrapped deviations pass through.
    The gauntlet grader decides [active] by measuring the inner
    deviation's unilateral gain against the threshold. *)

val name : t -> string

val label : t -> Damd_speccheck.Dev.t
(** Payload-stripped label of the constructor, shared with the spec IR.
    The match is exhaustive, so adding a constructor without deciding its
    catalogue label is a compile error — one half of the lint gate's
    deviation cross-consistency (the other half, that every label is
    targeted by a catalogue action, is the [orphan-deviation] rule). *)

val all_labels : Damd_speccheck.Dev.t list
(** The label of every constructor (witnessed through [library] plus
    [Faithful] and [Collude_with]), deduplicated — what [damd_cli lint]
    feeds the checker as the concrete adversary vocabulary. *)

val classify : t -> Damd_core.Action.t list
(** External action classes the deviation touches ([Faithful] -> []). *)

val is_construction : t -> bool
(** Deviates during the construction phases (detected by bank
    checkpoints, i.e. punished by restart). *)

val is_execution : t -> bool
(** Deviates during the execution phase (punished by monetary penalty). *)

val library : t list
(** The standard sweep: every deviation with representative parameters.
    Excludes [Faithful]. *)

val detectable : t -> bool
(** Whether the extended specification is expected to catch it *in
    isolation* (a single deviant among faithful nodes).
    [Misreport_cost] is *not* detectable — it is a consistent revelation
    action, neutralized by strategyproofness rather than by checking.
    [Collude_with] is conservatively [false] here because detectability of
    a coalition depends on the topology; see [detectable_in]. *)

val colluding : t -> principal:int -> bool
(** Whether this deviation suppresses checker evidence about [principal]:
    [Lying_checker] colludes with everyone, [Collude_with p] with [p]. *)

val detectable_in : neighbors:(int -> int list) -> profile:t array -> int -> bool
(** Topology-aware refinement of [detectable] for full deviation profiles.
    [detectable_in ~neighbors ~profile i] predicts whether node [i]'s
    deviation in [profile] is caught by the bank:

    - checker-mediated deviations (BANK1/BANK2: miscompute, corrupt/drop
      copies, spoof, combined attacks) are caught iff at least one
      neighbor of the principal is not [colluding] with it — a coalition
      escapes only by covering the full neighborhood (experiment E14);
    - globally-compared deviations (DATA1 inconsistency, corrupt cost
      forwarding, silence, execution-phase fraud) cannot be shielded by
      any coalition;
    - a [Collude_with p] node is judged through its principal: the
      coalition member is exposed exactly when [p] is still caught. *)

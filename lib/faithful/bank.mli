(** The bank — the trusted, obedient checkpointing entity of §4.2.

    "Our bank goes beyond whatever accounting and charging mechanisms are
    used to enforce the pricing scheme … a trusted and obedient entity
    that can also perform simple comparisons, and enforce penalties when
    it detects a problem."

    Construction phases: the bank collects 32-byte digests — [DATA1] cost
    lists from everyone, then per principal its self-reported [DATA2]
    (resp. [DATA3*]) digest plus, from each of its checkers, the digest of
    the mirror recomputation and the digest of the principal's last
    announcement — and demands they all agree ([BANK1]/[BANK2]). Any
    disagreement restarts the phase.

    Execution: every source's signed [DATA4] payment report is compared
    against the certified pricing tables; packet traces are compared
    against certified routes; deviations are fined ε-above the attempted
    gain. All node↔bank traffic is signed ([Damd_crypto.Signer]). *)

type detection = {
  rule : string;  (** "DATA1" | "BANK1" | "BANK2" | "EXEC" | checker flags *)
  culprit : int option;
      (** the principal whose hash set disagreed / the node whose
          forwarding or report deviated; [None] when unattributable *)
  detail : string;
}

val pp_detection : Format.formatter -> detection -> unit

val checkpoint_costs : Node.t array -> detection list
(** Phase-1 certificate: every node's DATA1 digest must be identical
    (consistent information revelation, Remark 4). *)

val checkpoint_routing : ?fault_tolerant:bool -> Node.t array -> detection list
(** [BANK1]. Empty list = green light.

    With [fault_tolerant] (default [false] — stock behavior unchanged),
    the evidence model assumes injected link faults are possible and
    accuses only on *contradictions between signed statements*: an
    announcement the principal stands behind that differs from its
    certified state, or a mirror that disagrees although checker and
    principal consumed input sets with equal digests. Bare mismatches
    explainable by a lost or stale message are reported as a single
    [culprit = None] omission detection — the checkpoint still fails
    (restart), but no one is blamed. This is the blame-correctness
    contract the fault gauntlet asserts: an injected fault must never
    cost an honest node its reputation, at the price of demoting some
    fault-shaped deviations (copy-dropping, spoofing) from individual
    accusation to collective stuck-phase punishment. See DESIGN.md §14. *)

val checkpoint_pricing : ?fault_tolerant:bool -> Node.t array -> detection list
(** [BANK2]; the fault-tolerant omission test covers both phases'
    inputs, since a pricing mirror consumes routing state too. *)

val collect_flags : Node.t array -> detection list
(** Checker-raised flags (malformed copies, CHECK2 tag rejections). *)

val checkpoint_bytes : Node.t array -> int
(** Bytes moved over the signed bank channel for one full set of
    construction checkpoints (E10's cost model). *)

type settlement = {
  outlays : float array;  (** what each source ends up paying *)
  incomes : float array;  (** what each transit receives *)
  penalties : float array;  (** execution fines levied *)
  delivered : float array;  (** per-source traffic units actually delivered *)
  detections : detection list;
}

val settle :
  obs:Damd_obs.Obs.t ->
  checking:bool ->
  epsilon:float ->
  registry:Damd_crypto.Signer.registry ->
  nodes:Node.t array ->
  traffic:Damd_fpss.Traffic.t ->
  settlement
(** Clear the execution phase. With [checking = true] payments are
    corrected to the certified tables, misreports and misroutes are
    detected and fined; with [checking = false] the bank naively believes
    every report (the unfaithful baseline of experiment E7). [obs] (pass
    [Damd_obs.Obs.noop] when not tracing) runs the settlement under a
    ["bank.settle"] span. *)

val serialize_report : (int * float) list -> string
(** Canonical DATA4 payload placed under the signature. *)

(** The differential taint harness: infer each spec action's *actual*
    dependency set by running the real protocol handlers.

    [Damd_speccheck.Taint] defines the lattice and the declared-vs-actual
    comparison but cannot touch this library (the dependency points the
    other way), so the concrete harness lives here and [damd_cli verify]
    glues the two. For every action of the extended-FPSS catalogue
    ([Fpss_spec.ir]) the harness builds a small fixed fixture around node 3
    of the Figure-1 topology, renders the action's externally visible
    output (messages sent, digests, reports) to a canonical string, and
    re-runs it three more times with exactly one input class perturbed:

    - {e private}: the node's own type — its true transit cost, its
      traffic demands;
    - {e received}: the payload of the message the handler is fed — a
      flooded cost fact, a neighbor's table, a packet's rate;
    - {e protocol state}: the accumulated certified state — the DATA1 cost
      vector, stored neighbor tables, the dedup set.

    An input class is an observed dependency iff its perturbation changes
    the rendered output. Because the handlers under test are the same
    [Node] functions the simulator runs, the observations track the
    implementation, not the annotation — which is the point.

    Floats are rendered with [%h] (exact hexadecimal), so a perturbation
    is never masked by decimal rounding; send logs are sorted before
    rendering, so nondeterministic send order (there is none, but the
    harness should not depend on that) cannot fake a difference. *)

val observations :
  ?deviation:Adversary.t -> unit -> Damd_speccheck.Taint.observation list
(** One observation per catalogue action, in catalogue order. [deviation]
    (default [Faithful]) plugs a deviating implementation into the same
    fixtures — e.g. [Misroute_packets] makes [forward-packets] ignore the
    routing table, and the harness duly reports that [Protocol_state] no
    longer flows ([decl-flow-slack] against the stock declaration). *)

module Dijkstra = Damd_graph.Dijkstra

type send = dst:int -> Protocol.msg -> unit

type t = {
  id : int;
  n : int;
  neighbors : int list;
  neighbors_arr : int array;
  neighbor_sets : int list array;
  neighbor_arrs : int array array;
  deviation : Adversary.t;
  byz : Adversary.byz_plan option;
  true_cost : float;
  copies : bool;
  learned_costs : float option array;
  mutable costs : float array;
  mutable nbr_routing : (int * Protocol.routing_table) list;
  mutable nbr_pricing : (int * Protocol.pricing_table) list;
  mutable routing : Protocol.routing_table;
  mutable pricing : Protocol.pricing_table;
  mutable announced_routing : Protocol.routing_table;
  mutable announced_pricing : Protocol.pricing_table;
  mirror_routing_in : (int, (int * Protocol.routing_table) list ref) Hashtbl.t;
  mirror_pricing_in : (int, (int * Protocol.pricing_table) list ref) Hashtbl.t;
  mutable check_flags : (string * string) list;
  mutable carried : (int * int * float * int) list;
  mutable deliveries : (int * float * int list) list;
}

let set_assoc key value l = (key, value) :: List.remove_assoc key l

(* Membership in a sorted int array — the O(log deg) fast path for the
   provenance checks that run on every message. *)
let mem_sorted (a : int array) v =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = v then found := true
    else if a.(mid) < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let create ?(copies = true) ~id ~n ~neighbor_sets ~true_cost ~deviation () =
  let neighbors = List.sort Int.compare neighbor_sets.(id) in
  (* A wrapper reaching a node directly means "the deviation is active":
     the gauntlet grader resolves ε-activation *before* constructing
     nodes, so an unresolved wrapper here plays its inner behavior. *)
  let deviation = Adversary.resolve_epsilon ~active:true deviation in
  let byz =
    match deviation with
    | Adversary.Byzantine_arbitrary seed -> Some (Adversary.plan_of_seed seed)
    | _ -> None
  in
  let node =
    {
      id;
      n;
      neighbors;
      neighbors_arr = Array.of_list neighbors;
      neighbor_sets;
      neighbor_arrs =
        Array.map (fun l -> Array.of_list (List.sort Int.compare l)) neighbor_sets;
      deviation;
      byz;
      true_cost;
      copies;
      learned_costs = Array.make n None;
      costs = Array.make n 0.;
      nbr_routing = [];
      nbr_pricing = [];
      routing = Protocol.empty_routing ~n ~self:id;
      pricing = Protocol.empty_pricing ~n;
      announced_routing = Protocol.empty_routing ~n ~self:id;
      announced_pricing = Protocol.empty_pricing ~n;
      mirror_routing_in = Hashtbl.create 8;
      mirror_pricing_in = Hashtbl.create 8;
      check_flags = [];
      carried = [];
      deliveries = [];
    }
  in
  List.iter
    (fun p ->
      Hashtbl.replace node.mirror_routing_in p (ref []);
      Hashtbl.replace node.mirror_pricing_in p (ref []))
    node.neighbors;
  node

let reset_costs node =
  Array.fill node.learned_costs 0 node.n None;
  node.costs <- Array.make node.n 0.

let reset_pricing_phase node =
  node.nbr_pricing <- [];
  node.pricing <- Protocol.empty_pricing ~n:node.n;
  node.announced_pricing <- Protocol.empty_pricing ~n:node.n;
  List.iter
    (fun p -> Hashtbl.replace node.mirror_pricing_in p (ref []))
    node.neighbors

let reset_routing_phase node =
  reset_pricing_phase node;
  node.nbr_routing <- [];
  node.routing <- Protocol.empty_routing ~n:node.n ~self:node.id;
  node.announced_routing <- Protocol.empty_routing ~n:node.n ~self:node.id;
  List.iter
    (fun p -> Hashtbl.replace node.mirror_routing_in p (ref []))
    node.neighbors;
  node.check_flags <- []

let reset_execution node =
  node.carried <- [];
  node.deliveries <- []

let flag node rule detail = node.check_flags <- (rule, detail) :: node.check_flags

(* --- Phase 1: cost flood --- *)

let declared_cost_for node ~neighbor_index =
  match (node.deviation, node.byz) with
  | Adversary.Misreport_cost c, _ -> c
  | Adversary.Inconsistent_cost (a, b), _ -> if neighbor_index mod 2 = 0 then a else b
  | _, Some { Adversary.byz_cost_pair = Some (a, b); _ } ->
      if neighbor_index mod 2 = 0 then a else b
  | _ -> node.true_cost

let announce_cost node (send : send) =
  (* The node's own view of its declaration is the value it would tell its
     first neighbor. *)
  node.learned_costs.(node.id) <- Some (declared_cost_for node ~neighbor_index:0);
  Array.iteri
    (fun idx nbr ->
      let cost = declared_cost_for node ~neighbor_index:idx in
      send ~dst:nbr (Protocol.Update (Protocol.Cost_announce { origin = node.id; cost })))
    node.neighbors_arr

let on_cost_msg node (send : send) ~sender update =
  match update with
  | Protocol.Cost_announce { origin; cost } -> (
      match node.learned_costs.(origin) with
      | Some _ -> () (* first-received wins; duplicates are not re-flooded *)
      | None ->
          node.learned_costs.(origin) <- Some cost;
          let forwarded_cost =
            match (node.deviation, node.byz) with
            | Adversary.Corrupt_cost_forward delta, _ -> cost +. delta
            | _, Some { Adversary.byz_cost_forward = Some delta; _ } -> cost +. delta
            | _ -> cost
          in
          Array.iter
            (fun nbr ->
              if nbr <> sender then
                send ~dst:nbr
                  (Protocol.Update
                     (Protocol.Cost_announce { origin; cost = forwarded_cost })))
            node.neighbors_arr)
  | _ -> flag node "PHASE1" "non-cost update during phase 1"

let finalize_costs node =
  if Array.for_all Option.is_some node.learned_costs then begin
    node.costs <- Array.map Option.get node.learned_costs;
    true
  end
  else false

(* --- Announcement distortion (the computation deviations) --- *)

let distort_routing_table delta (table : Protocol.routing_table) =
  Array.map
    (Option.map (fun (e : Dijkstra.entry) ->
         match e.Dijkstra.path with
         | [ _ ] -> e (* the self entry stays honest: cost 0 is structural *)
         | _ -> { e with Dijkstra.cost = Float.max 0. (e.Dijkstra.cost +. delta) }))
    table

let distort_pricing_table delta (table : Protocol.pricing_table) =
  Array.map
    (List.map (fun (pe : Protocol.price_entry) ->
         { pe with Protocol.price = Float.max 0. (pe.Protocol.price +. delta) }))
    table

let announced_routing_view node =
  match (node.deviation, node.byz) with
  | Adversary.Miscompute_routing delta, _ ->
      Some (distort_routing_table delta node.routing)
  | Adversary.Combined_routing_attack delta, _ ->
      Some (distort_routing_table (-.delta) node.routing)
  | Adversary.Silent_in_construction, _ -> None
  | _, Some { Adversary.byz_routing_announce = Some delta; _ } ->
      Some (distort_routing_table delta node.routing)
  | _ -> Some node.routing

let announced_pricing_view node =
  match (node.deviation, node.byz) with
  | Adversary.Miscompute_pricing delta, _ ->
      Some (distort_pricing_table delta node.pricing)
  | Adversary.Combined_pricing_attack delta, _ ->
      Some (distort_pricing_table delta node.pricing)
  | Adversary.Silent_in_construction, _ -> None
  | _, Some { Adversary.byz_pricing_announce = Some delta; _ } ->
      Some (distort_pricing_table delta node.pricing)
  | _ -> Some node.pricing

(* Record into our checker mirror of [p] what we just announced to [p]. *)
let record_own_routing_to node p table =
  let inputs = Hashtbl.find node.mirror_routing_in p in
  inputs := set_assoc node.id table !inputs

let record_own_pricing_to node p table =
  let inputs = Hashtbl.find node.mirror_pricing_in p in
  inputs := set_assoc node.id table !inputs

let announce_routing node (send : send) =
  match announced_routing_view node with
  | None -> ()
  | Some table ->
      if not (Protocol.routing_equal table node.announced_routing) then begin
        node.announced_routing <- table;
        Array.iter
          (fun nbr ->
            record_own_routing_to node nbr table;
            send ~dst:nbr
              (Protocol.Update (Protocol.Routing_update { origin = node.id; table })))
          node.neighbors_arr
      end

let announce_pricing node (send : send) =
  match announced_pricing_view node with
  | None -> ()
  | Some table ->
      if not (Protocol.pricing_equal table node.announced_pricing) then begin
        node.announced_pricing <- table;
        Array.iter
          (fun nbr ->
            record_own_pricing_to node nbr table;
            send ~dst:nbr
              (Protocol.Update (Protocol.Pricing_update { origin = node.id; table })))
          node.neighbors_arr
      end

(* --- Checker-side intake of copies --- *)

let checker_accepts node ~principal ~via ~origin =
  if not (mem_sorted node.neighbors_arr principal) then begin
    flag node "CHECK" "copy from a non-neighbor principal";
    false
  end
  else if origin <> via then begin
    flag node "CHECK2" "copy whose inner origin does not match its via tag";
    false
  end
  else if not (mem_sorted node.neighbor_arrs.(principal) via) then begin
    (* §4.3 [CHECK2]: ignore messages whose identity is not a checker node
       of the principal. *)
    flag node "CHECK2" "copy via a node that is not a checker of the principal";
    false
  end
  else true

(* --- Phase 2a: routing --- *)

let spoof_target node ~sender =
  (* A fabricated provenance: the neighbor after [sender] in id order. *)
  let rec next = function
    | [] -> List.hd node.neighbors
    | [ _ ] -> List.hd node.neighbors
    | x :: y :: rest -> if x = sender then y else next (y :: rest)
  in
  next node.neighbors

(* What this node relays to checkers about a received routing table —
   [None] for a copy-dropper; shared by the live forwarding path and the
   post-crash handoff resend so both apply the same deviation. *)
let routing_copy_view node table =
  match (node.deviation, node.byz) with
  | Adversary.Drop_routing_copies, _ -> None
  | ( (Adversary.Corrupt_routing_copies delta | Adversary.Combined_routing_attack delta),
      _ ) ->
      Some (distort_routing_table delta table)
  | _, Some { Adversary.byz_routing_copies = Some `Drop; _ } -> None
  | _, Some { Adversary.byz_routing_copies = Some (`Corrupt delta); _ } ->
      Some (distort_routing_table delta table)
  | _ -> Some table

let forward_routing_copies node (send : send) ~sender table =
  if not node.copies then ()
  else begin
  let copy_to_checkers table =
    Array.iter
      (fun c ->
        if c <> sender then
          send ~dst:c
            (Protocol.Copy
               {
                 principal = node.id;
                 via = sender;
                 inner = Protocol.Routing_update { origin = sender; table };
               }))
      node.neighbors_arr
  in
  (match routing_copy_view node table with
  | None -> ()
  | Some table -> copy_to_checkers table);
  match node.deviation with
  | Adversary.Spoof_routing_update delta | Adversary.Combined_routing_attack delta ->
      let via = spoof_target node ~sender in
      let fabricated = distort_routing_table delta table in
      List.iter
        (fun c ->
          if c <> via then
            send ~dst:c
              (Protocol.Copy
                 {
                   principal = node.id;
                   via;
                   inner = Protocol.Routing_update { origin = via; table = fabricated };
                 }))
        node.neighbors
  | _ -> ()
  end

let start_routing node (send : send) =
  node.routing <- Protocol.empty_routing ~n:node.n ~self:node.id;
  (* Force the initial announcement by marking nothing-as-announced: the
     sentinel differs from any real table through the comparison below. *)
  node.announced_routing <- Array.make node.n None;
  announce_routing node send

let recompute_routing node =
  Protocol.recompute_routing ~self:node.id ~n:node.n ~costs:node.costs
    ~neighbor_tables:node.nbr_routing

let on_routing_msg node (send : send) ~sender msg =
  match msg with
  | Protocol.Update (Protocol.Routing_update { origin; table }) ->
      if (not (mem_sorted node.neighbors_arr sender)) || origin <> sender then
        flag node "PRINC1" "routing update with inconsistent provenance"
      else begin
        node.nbr_routing <- set_assoc sender table node.nbr_routing;
        forward_routing_copies node send ~sender table;
        node.routing <- recompute_routing node;
        announce_routing node send
      end
  | Protocol.Copy { principal; via; inner = Protocol.Routing_update { origin; table } }
    ->
      if sender <> principal then
        flag node "CHECK" "copy not sent by its claimed principal"
      else if checker_accepts node ~principal ~via ~origin then begin
        let inputs = Hashtbl.find node.mirror_routing_in principal in
        inputs := set_assoc via table !inputs
      end
  | _ -> flag node "PRINC1" "unexpected message in routing phase"

(* --- Phase 2b: pricing --- *)

let pricing_copy_view node table =
  match (node.deviation, node.byz) with
  | Adversary.Drop_pricing_copies, _ -> None
  | ( (Adversary.Corrupt_pricing_copies delta | Adversary.Combined_pricing_attack delta),
      _ ) ->
      Some (distort_pricing_table delta table)
  | _, Some { Adversary.byz_pricing_copies = Some `Drop; _ } -> None
  | _, Some { Adversary.byz_pricing_copies = Some (`Corrupt delta); _ } ->
      Some (distort_pricing_table delta table)
  | _ -> Some table

let forward_pricing_copies node (send : send) ~sender table =
  if not node.copies then ()
  else begin
  let copy_to_checkers table =
    Array.iter
      (fun c ->
        if c <> sender then
          send ~dst:c
            (Protocol.Copy
               {
                 principal = node.id;
                 via = sender;
                 inner = Protocol.Pricing_update { origin = sender; table };
               }))
      node.neighbors_arr
  in
  (match pricing_copy_view node table with
  | None -> ()
  | Some table -> copy_to_checkers table);
  match node.deviation with
  | Adversary.Spoof_pricing_update delta | Adversary.Combined_pricing_attack delta ->
      let via = spoof_target node ~sender in
      let fabricated = distort_pricing_table delta table in
      List.iter
        (fun c ->
          if c <> via then
            send ~dst:c
              (Protocol.Copy
                 {
                   principal = node.id;
                   via;
                   inner = Protocol.Pricing_update { origin = via; table = fabricated };
                 }))
        node.neighbors
  | _ -> ()
  end

let recompute_pricing node =
  Protocol.recompute_pricing ~self:node.id ~costs:node.costs ~own_routing:node.routing
    ~neighbor_routing:node.nbr_routing ~neighbor_pricing:node.nbr_pricing

let start_pricing node (send : send) =
  node.pricing <- recompute_pricing node;
  node.announced_pricing <- Array.make node.n [ { Protocol.transit = -1; price = 0.; tags = [] } ];
  announce_pricing node send

let on_pricing_msg node (send : send) ~sender msg =
  match msg with
  | Protocol.Update (Protocol.Pricing_update { origin; table }) ->
      if (not (mem_sorted node.neighbors_arr sender)) || origin <> sender then
        flag node "PRINC2" "pricing update with inconsistent provenance"
      else begin
        node.nbr_pricing <- set_assoc sender table node.nbr_pricing;
        forward_pricing_copies node send ~sender table;
        node.pricing <- recompute_pricing node;
        announce_pricing node send
      end
  | Protocol.Copy { principal; via; inner = Protocol.Pricing_update { origin; table } }
    ->
      if sender <> principal then
        flag node "CHECK" "copy not sent by its claimed principal"
      else if checker_accepts node ~principal ~via ~origin then begin
        let inputs = Hashtbl.find node.mirror_pricing_in principal in
        inputs := set_assoc via table !inputs
      end
  | _ -> flag node "PRINC2" "unexpected message in pricing phase"

(* --- Execution --- *)

let next_hop node ~dst =
  match node.routing.(dst) with
  | Some { Dijkstra.path = _ :: hop :: _; _ } -> Some hop
  | _ -> None

let forwarding_choice node ~dst ~exclude =
  let misroutes =
    match (node.deviation, node.byz) with
    | Adversary.Misroute_packets, _ -> true
    | _, Some { Adversary.byz_misroute = true; _ } -> true
    | _ -> false
  in
  if misroutes then
    (* Send everything to the lowest-numbered neighbor (other than the
       node the packet just came from, to avoid a trivial bounce). *)
    match List.filter (fun v -> Some v <> exclude) node.neighbors with
    | v :: _ -> Some v
    | [] -> None
  else next_hop node ~dst

let originate_traffic node (send : send) ~dst ~rate =
  match forwarding_choice node ~dst ~exclude:None with
  | None -> ()
  | Some hop ->
      send ~dst:hop
        (Protocol.Packet { src = node.id; dst; rate; trace = [ node.id ] })

let max_trace node = (3 * node.n) + 6

let on_packet node (send : send) ~sender msg =
  match msg with
  | Protocol.Packet { src; dst; rate; trace } ->
      if dst = node.id then node.deliveries <- (src, rate, trace @ [ node.id ]) :: node.deliveries
      else begin
        node.carried <- (src, dst, rate, sender) :: node.carried;
        if List.length trace < max_trace node then
          match forwarding_choice node ~dst ~exclude:(Some sender) with
          | None -> ()
          | Some hop ->
              send ~dst:hop
                (Protocol.Packet { src; dst; rate; trace = trace @ [ node.id ] })
      end
  | _ -> flag node "EXEC" "unexpected message in execution phase"

let payment_report node traffic =
  let totals = Hashtbl.create 8 in
  Array.iteri
    (fun dst entries ->
      let rate = traffic.(node.id).(dst) in
      if rate > 0. then
        List.iter
          (fun (pe : Protocol.price_entry) ->
            let prev = Option.value ~default:0. (Hashtbl.find_opt totals pe.Protocol.transit) in
            Hashtbl.replace totals pe.Protocol.transit (prev +. (pe.Protocol.price *. rate)))
          entries)
    node.pricing;
  let scale =
    match (node.deviation, node.byz) with
    | Adversary.Underreport_payments f, _ -> f
    | _, Some { Adversary.byz_underreport = Some f; _ } -> f
    | _ -> 1.
  in
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v *. scale) :: acc) totals []
    |> List.sort (fun (a, x) (b, y) ->
           let c = Int.compare a b in
           if c <> 0 then c else Float.compare x y)
  in
  match (node.deviation, entries) with
  | Adversary.Misattribute_payments, (k0, _) :: _ ->
      (* correct total, all credited to the first transit *)
      let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. entries in
      [ (k0, total) ]
  | _ -> entries

(* --- Crash-recovery handoff ---

   After a fail-stop window, everything the crashed node missed was lost
   at delivery time. The handoff re-delivers current state over the same
   send path (so physical-link enforcement and deviations still apply):
   cost facts, the last announcement, and the checker copies the peer
   relayed while the link was dark. It repairs the *current attempt*
   where possible; anything it cannot repair surfaces as an omission at
   the next checkpoint and is handled by restart. *)

let has_announced_routing node = Option.is_some node.announced_routing.(node.id)

let has_announced_pricing node =
  node.n = 0
  || not
       (List.exists
          (fun (pe : Protocol.price_entry) -> pe.Protocol.transit = -1)
          node.announced_pricing.(0))

let resend_costs_to node (send : send) ~to_ =
  Array.iteri
    (fun idx nbr ->
      if nbr = to_ && Option.is_some node.learned_costs.(node.id) then
        send ~dst:to_
          (Protocol.Update
             (Protocol.Cost_announce
                { origin = node.id; cost = declared_cost_for node ~neighbor_index:idx })))
    node.neighbors_arr;
  Array.iteri
    (fun origin c ->
      match c with
      | Some cost when origin <> node.id ->
          let forwarded_cost =
            match (node.deviation, node.byz) with
            | Adversary.Corrupt_cost_forward delta, _ -> cost +. delta
            | _, Some { Adversary.byz_cost_forward = Some delta; _ } -> cost +. delta
            | _ -> cost
          in
          send ~dst:to_
            (Protocol.Update (Protocol.Cost_announce { origin; cost = forwarded_cost }))
      | _ -> ())
    node.learned_costs

let resend_routing_to node (send : send) ~to_ =
  if has_announced_routing node then begin
    record_own_routing_to node to_ node.announced_routing;
    send ~dst:to_
      (Protocol.Update
         (Protocol.Routing_update { origin = node.id; table = node.announced_routing }))
  end;
  if node.copies then
    List.iter
      (fun (s, table) ->
        if s <> to_ then
          match routing_copy_view node table with
          | None -> ()
          | Some table ->
              send ~dst:to_
                (Protocol.Copy
                   {
                     principal = node.id;
                     via = s;
                     inner = Protocol.Routing_update { origin = s; table };
                   }))
      node.nbr_routing

let resend_pricing_to node (send : send) ~to_ =
  if has_announced_pricing node then begin
    record_own_pricing_to node to_ node.announced_pricing;
    send ~dst:to_
      (Protocol.Update
         (Protocol.Pricing_update { origin = node.id; table = node.announced_pricing }))
  end;
  if node.copies then
    List.iter
      (fun (s, table) ->
        if s <> to_ then
          match pricing_copy_view node table with
          | None -> ()
          | Some table ->
              send ~dst:to_
                (Protocol.Copy
                   {
                     principal = node.id;
                     via = s;
                     inner = Protocol.Pricing_update { origin = s; table };
                   }))
      node.nbr_pricing

(* --- Bank queries --- *)

let self_routing_digest node = Protocol.routing_digest node.routing

let self_pricing_digest node = Protocol.pricing_digest node.pricing

let costs_digest node = Protocol.costs_digest node.costs

let announced_routing_digest_of node ~principal =
  Option.map Protocol.routing_digest (List.assoc_opt principal node.nbr_routing)

let announced_pricing_digest_of node ~principal =
  Option.map Protocol.pricing_digest (List.assoc_opt principal node.nbr_pricing)

let mirror_routing node ~principal =
  let inputs = Hashtbl.find node.mirror_routing_in principal in
  Protocol.recompute_routing ~self:principal ~n:node.n ~costs:node.costs
    ~neighbor_tables:!inputs

let mirror_pricing node ~principal =
  let own_routing = mirror_routing node ~principal in
  let routing_inputs = Hashtbl.find node.mirror_routing_in principal in
  let pricing_inputs = Hashtbl.find node.mirror_pricing_in principal in
  Protocol.recompute_pricing ~self:principal ~costs:node.costs ~own_routing
    ~neighbor_routing:!routing_inputs ~neighbor_pricing:!pricing_inputs

let colludes_with node ~principal =
  match node.deviation with
  | Adversary.Lying_checker -> true
  | Adversary.Collude_with p -> p = principal
  | _ -> false

(* --- Fault-tolerant bank queries (input-set digests) --- *)

let claimed_announced_routing_digest node =
  Protocol.routing_digest node.announced_routing

let claimed_announced_pricing_digest node =
  Protocol.pricing_digest node.announced_pricing

let routing_inputs_digest node = Protocol.routing_inputs_digest node.nbr_routing

let pricing_inputs_digest node = Protocol.pricing_inputs_digest node.nbr_pricing

let mirror_routing_inputs_digest node ~principal =
  Protocol.routing_inputs_digest !(Hashtbl.find node.mirror_routing_in principal)

let mirror_pricing_inputs_digest node ~principal =
  Protocol.pricing_inputs_digest !(Hashtbl.find node.mirror_pricing_in principal)

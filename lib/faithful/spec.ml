module Ir = Damd_speccheck.Ir
module Fpss_spec = Damd_speccheck.Fpss_spec
module Rule = Damd_speccheck.Rule
module Dev = Damd_speccheck.Dev

type phase = Construction1 | Construction2a | Construction2b | Execution

type entry = {
  action : string;
  cls : Damd_core.Action.t;
  phase : phase;
  rules : Rule.t list;
  deviations : Dev.t list;
}

let phase_of_ir_name = function
  | "construction-1" -> Some Construction1
  | "construction-2a" -> Some Construction2a
  | "construction-2b" -> Some Construction2b
  | "execution" -> Some Execution
  | _ -> None

(* One catalogue row per IR action, in suggested-play order. The stock IR
   lints clean (asserted in runtest), so every action is classified and
   runs inside exactly one phase — the Option.get / invalid_arg branches
   are unreachable drift alarms. *)
let catalogue =
  let ir = Fpss_spec.ir in
  List.map
    (fun (a : Ir.action) ->
      let phase =
        match Ir.phase_of_action ir a.Ir.id with
        | Some p -> (
            match phase_of_ir_name p.Ir.pname with
            | Some ph -> ph
            | None -> invalid_arg ("Spec.catalogue: unknown IR phase " ^ p.Ir.pname))
        | None -> invalid_arg ("Spec.catalogue: action outside phases: " ^ a.Ir.id)
      in
      let cls =
        match a.Ir.cls with
        | Some c -> c
        | None -> invalid_arg ("Spec.catalogue: unclassified action " ^ a.Ir.id)
      in
      {
        action = a.Ir.descr;
        cls;
        phase;
        rules = a.Ir.rules;
        deviations = a.Ir.deviations;
      })
    ir.Ir.actions

let phase_name = function
  | Construction1 -> "construction-1 (costs)"
  | Construction2a -> "construction-2a (routing)"
  | Construction2b -> "construction-2b (pricing)"
  | Execution -> "execution"

let classes_covered () =
  List.sort_uniq compare (* poly-ok: constant Action.t constructors *)
    (List.map (fun e -> e.cls) catalogue)

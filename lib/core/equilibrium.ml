type ('theta, 'strategy) deviation = {
  name : string;
  classes : Action.t list;
  build : int -> 'strategy;
  applies_to : int -> bool;
}

let deviation ?(applies_to = fun _ -> true) ~name ~classes build =
  { name; classes; build; applies_to }

type violation = {
  deviation_name : string;
  agent : int;
  profile_index : int;
  gain : float;
}

type report = {
  property : string;
  profiles_tested : int;
  deviations_tested : int;
  comparisons : int;
  violations : violation list;
  max_gain : float;
}

let holds r = r.violations = []

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s: %s@,profiles=%d deviations=%d comparisons=%d max_gain=%g@]"
    r.property
    (if holds r then "HOLDS" else Printf.sprintf "VIOLATED (%d)" (List.length r.violations))
    r.profiles_tested r.deviations_tested r.comparisons r.max_gain

let check ~property ~rng ~profiles ~sample_types ~deviations ?(epsilon = 1e-9) dm =
  let comparisons = ref 0 in
  let violations = ref [] in
  for profile_index = 0 to profiles - 1 do
    let types = sample_types rng in
    (* The faithful utilities are shared across all deviation comparisons
       for this profile. *)
    let faithful_outcome = Dmech.suggested_outcome dm types in
    List.iter
      (fun d ->
        for agent = 0 to dm.Dmech.n - 1 do
          if d.applies_to agent then begin
            incr comparisons;
            let deviant_outcome =
              dm.Dmech.outcome (Dmech.unilateral dm agent (d.build agent)) types
            in
            let faithful = dm.Dmech.utility agent types.(agent) faithful_outcome in
            let deviant = dm.Dmech.utility agent types.(agent) deviant_outcome in
            let gain = deviant -. faithful in
            if gain > epsilon then
              violations :=
                { deviation_name = d.name; agent; profile_index; gain } :: !violations
          end
        done)
      deviations
  done;
  let violations = List.sort (fun a b -> Float.compare b.gain a.gain) !violations in
  {
    property;
    profiles_tested = profiles;
    deviations_tested = List.length deviations;
    comparisons = !comparisons;
    violations;
    max_gain = (match violations with [] -> 0. | v :: _ -> v.gain);
  }

let filter_classes pred deviations =
  List.filter (fun d -> pred d.classes) deviations

let ex_post_nash ~rng ~profiles ~sample_types ~deviations ?epsilon dm =
  check ~property:"ex post Nash (faithfulness)" ~rng ~profiles ~sample_types ~deviations
    ?epsilon dm

let strong_cc ~rng ~profiles ~sample_types ~deviations ?epsilon dm =
  let deviations =
    filter_classes (fun cs -> List.mem Action.Message_passing cs) deviations
  in
  check ~property:"strong-CC" ~rng ~profiles ~sample_types ~deviations ?epsilon dm

let strong_ac ~rng ~profiles ~sample_types ~deviations ?epsilon dm =
  let deviations = filter_classes (fun cs -> List.mem Action.Computation cs) deviations in
  check ~property:"strong-AC" ~rng ~profiles ~sample_types ~deviations ?epsilon dm

let best_response_dynamics ~start ~candidates ~types ~max_rounds ?(epsilon = 1e-9) dm =
  let n = dm.Dmech.n in
  if Array.length start <> n then invalid_arg "best_response_dynamics: arity";
  let profile = Array.copy start in
  let utility_of i strategy =
    let trial = Array.copy profile in
    trial.(i) <- strategy;
    dm.Dmech.utility i types.(i) (dm.Dmech.outcome trial types)
  in
  let rec rounds k =
    if k >= max_rounds then `No_convergence (Array.copy profile)
    else begin
      let switched = ref false in
      for i = 0 to n - 1 do
        let current_u = utility_of i profile.(i) in
        let best = ref profile.(i) and best_u = ref current_u in
        List.iter
          (fun candidate ->
            if candidate <> profile.(i) then begin
              let u = utility_of i candidate in
              if u > !best_u +. epsilon then begin
                best := candidate;
                best_u := u
              end
            end)
          (candidates i);
        if !best <> profile.(i) then begin
          profile.(i) <- !best;
          switched := true
        end
      done;
      if !switched then rounds (k + 1) else `Converged (Array.copy profile, k + 1)
    end
  in
  rounds 0

let incentive_compatible ~rng ~profiles ~sample_types ~deviations ?epsilon dm =
  let deviations =
    filter_classes (fun cs -> cs = [ Action.Information_revelation ]) deviations
  in
  check ~property:"IC" ~rng ~profiles ~sample_types ~deviations ?epsilon dm

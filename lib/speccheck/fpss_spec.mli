(** The extended-FPSS suggested specification [s^m] as a spec IR.

    The single source of truth for the §4.1 catalogue: [Damd_faithful.Spec]
    derives its entries from [ir]'s actions, the tests step machines
    compiled from it ([Compile.machine]), and [damd_cli lint] checks it
    statically. The suggested play is the linear pass through the four
    phases — cost flood, routing construction, pricing construction,
    execution — visiting each of the 11 external actions once, exactly the
    walkthrough at the end of §4.1. *)

val ir : Ir.t

val phase_names : string list
(** The four phase names, in order: construction-1, construction-2a,
    construction-2b, execution. *)

(** The whole-program abstract interpreter over the spec IR: flow-sensitive
    information-flow summaries plus the static detection frontier.

    The paper's faithfulness argument is static — which deviations {e must}
    be caught by which checkpoint certifier follows from the
    information-flow structure of the spec, not from any particular run.
    This module computes that argument directly from the IR, in two layers
    (DESIGN.md §17):

    {b 1. Taint fixpoint.} A worklist dataflow iteration over the
    transition table on the existing [Taint] lattice
    [Public ⊑ Received ⊑ Private], tracking two channels per state: the
    network {e pool} (everything any node may have emitted) and the
    protocol {e store} (everything written to local state). The transfer
    function joins each action's declared input channels; information
    revelation declassifies (its output is the signed announcement itself,
    neutralized by IC rather than by checkers). Each cell carries a
    provenance path, so findings print the laundering chain. This upgrades
    the syntactic Def. 12/13 rules to flow-sensitive ones:
    [cc-private-leak-flow] (a message-passing action whose output taint is
    [Private] along some reachable chain), [ac-unmirrored-flow] /
    [ac-undigested-flow] (a {e reachable} computation without mirror /
    digest). A second pass on the same fixpoint propagates per-action
    dependence masks, giving "certifier evidence transitively depends on an
    output the deviation perturbs" for frontier reporting.

    {b 2. Abstract frontier run.} [Explore] runs the n-seat product;
    here we run its two-seat abstraction — the deviant plus {e one}
    faithful representative (faithful seats are symmetric, so one
    representative preserves barrier structure, escape possibility and
    stall wedges; detection depths only shrink with fewer seats, which is
    exactly the soundness direction: the static depth is a lower bound on
    the dynamic one). Eligibility, checkpoint barriers, the §4.3 evidence
    bits, omission stalls, reentry pruning, exemptions, the orphan-label
    case and the coalition analysis all mirror [Explore.run] decision for
    decision, so verdict {e kinds} agree and [differential] can hold the
    two accountable to each other.

    Findings ([Check.finding] ids):
    - [cc-private-leak-flow], [ac-unmirrored-flow], [ac-undigested-flow]
      (errors) — the flow-sensitive Def. 12/13 upgrades;
    - [certifier-blind-spot] (error) — a non-exempt deviation no
      checkpoint ever surfaces, the static analogue of
      [undetected-deviation];
    - [checkpoint-starved] (error) — a phase whose certifier has no
      covered evidence source among its own actions: it green-lights on an
      empty ledger;
    - [certifier-unreachable] / [false-accusation] / [phase-reentry] /
      [unexplored-state] (errors) — the reachability/liveness facts the
      exploration also reports, derived here without the n-seat search;
    - [analysis-skipped] / [analysis-truncated] (warnings). *)

type summary = {
  sm_action : string;
  sm_out : Taint.label;
      (** join of the action's output taint over every reachable
          occurrence *)
  sm_path : string list;
      (** provenance chain (action ids, oldest first) of the dominating
          contribution — the witness the findings print *)
}

type sverdict =
  | Scertified of { depth : int; certifier : string option; phase : int }
      (** the worst-case abstract act-to-certification distance; a [None]
          certifier is the progress timeout, [phase] the certifying phase
          index (-1 for the timeout) *)
  | Sblind of { witness : string }
      (** an abstract schedule green-lights with the deviation unflagged *)
  | Sexempt of { reason : string }  (** mirror of [Explore.Exempt] *)
  | Struncated  (** the abstract state bound ran out *)

type frontier = {
  fr_dev : Dev.t;
  fr_verdict : sverdict;
  fr_certifier : string option;
      (** the earliest certifier whose evidence transitively depends on an
          output the deviation perturbs, per the dependence masks *)
  fr_phase : string option;  (** that certifier's phase *)
  fr_distance : int option;
      (** phase distance from the deviation's earliest targeted phase to
          the certifying phase (0 = caught in its own phase) *)
}

type t = {
  flows : summary list;  (** reachable actions, IR declaration order *)
  frontier : frontier list;  (** one entry per non-[Faithful] label *)
  findings : Check.finding list;
  states_explored : int;  (** total abstract states across all scenarios *)
  elapsed_s : float;
}

val run :
  ?bound:int ->
  ?adversary:Dev.t list ->
  ?obs:Damd_obs.Obs.t ->
  graph:Damd_graph.Graph.t ->
  Ir.t ->
  t
(** [bound] (default 200_000) caps abstract states per scenario — far
    beyond any catalogue-sized IR, a pure safety net. [adversary]
    (default [Dev.all]) as with [Explore.run]. Never raises on malformed
    IRs (same contracts as [Explore.run]: self-loops, missing initial
    skips with a warning, dedup bounds every loop). [obs]: the fixpoint
    and each abstract scenario run under ["absint.flow"] /
    ["absint.frontier"] spans and an ["absint.done"] instant reports
    totals. *)

val differential : t -> Explore.outcome -> Check.finding list
(** Cross-check the static frontier against measured exploration:
    one [static-frontier-gap] error per label whose verdict kinds
    disagree, or whose static depth exceeds the dynamic detection depth
    (the abstraction must be a lower bound). Labels either side reports
    as truncated are skipped. Empty on the stock spec and on every
    seeded mutation — asserted by runtest and the QCheck differential. *)

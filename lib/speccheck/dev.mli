(** Deviation labels — the adversary library's constructors as pure data.

    One label per [Damd_faithful.Adversary.t] constructor, with the payload
    stripped. The spec IR targets deviations through this variant and
    [Adversary.label] maps every concrete deviation onto it with an
    exhaustive match, so the three artifacts that must stay mutually
    consistent — the catalogue, the adversary library, and the IR — share
    one closed vocabulary: adding an adversary constructor without a label
    is a compile error, and a label no action targets is a lint error
    ([orphan-deviation]). *)

type t =
  | Faithful
  | Misreport_cost
  | Inconsistent_cost
  | Corrupt_cost_forward
  | Drop_routing_copies
  | Drop_pricing_copies
  | Corrupt_routing_copies
  | Corrupt_pricing_copies
  | Spoof_routing_update
  | Spoof_pricing_update
  | Miscompute_routing
  | Miscompute_pricing
  | Underreport_payments
  | Misroute_packets
  | Misattribute_payments
  | Silent_in_construction
  | Combined_routing_attack
  | Combined_pricing_attack
  | Lying_checker
  | Collude_with
  | Byzantine_arbitrary
      (** seed-derived fixed plan composing construction and execution
          manipulations — the fail-arbitrary peer of the rational library
          ([Adversary.Byzantine_arbitrary]) *)

val all : t list
(** Every label, [Faithful] first. *)

val to_string : t -> string
(** Kebab-case name; the prefix of [Adversary.name] for the matching
    constructor (e.g. [Misreport_cost] -> ["misreport-cost"]). *)

(* Partial-order reduction for [Explore]'s product BFS.

   A faithful class step is *invisible* when it makes progress strictly
   inside the open phase: src <> dst and both carry the current phase. An
   invisible step commutes with every other enabled step — it cannot move
   the deviant's seat, cannot touch the acted/evidence bitmasks, cannot
   enable or disable the phase checkpoint (the phase stays non-empty
   across it), and cannot trigger a reentry (its destination is in the
   current phase, never an earlier one). Two interleavings of the same
   invisible-step multiset therefore reach the same canonical state by
   paths of the same length, so exploring only the lowest-indexed
   invisible class at each state preserves reachability, BFS depths, and
   every detection event; deviant steps, phase-exiting (visible) steps,
   and checkpoints are never pruned.

   Soundness needs one global guard: draining a phase through a single
   canonical order must terminate. If the suggested-play graph restricted
   to any one phase has a cycle, a canonical drain could postpone some
   class forever, so the reduction switches itself off ([active] = false)
   and the BFS falls back to full interleaving. Cycles that cross phases
   or live past the last checkpoint are harmless: the moves involved are
   visible (or the phase cursor is exhausted) and thus never pruned. *)

type ctx = {
  phase_of : int array;  (* phase index per chain state, -1 = none *)
  dst_of : int array;  (* suggested destination, self when undefined *)
  has_sugg : bool array;
  nphases : int;
  active : bool;  (* the in-phase suggested-play graph is acyclic *)
}

let in_phase_acyclic ~phase_of ~dst_of ~has_sugg =
  let ns = Array.length phase_of in
  (* 0 = unvisited, 1 = on the walk, 2 = proven cycle-free *)
  let color = Array.make ns 0 in
  let rec visit i =
    if color.(i) = 1 then false
    else if color.(i) = 2 then true
    else begin
      color.(i) <- 1;
      let ok =
        let j = dst_of.(i) in
        if has_sugg.(i) && j <> i && phase_of.(i) >= 0 && phase_of.(j) = phase_of.(i)
        then visit j
        else true
      in
      color.(i) <- 2;
      ok
    end
  in
  let ok = ref true in
  for i = 0 to ns - 1 do
    if not (visit i) then ok := false
  done;
  !ok

let make ~phase_of ~dst_of ~has_sugg ~nphases =
  {
    phase_of;
    dst_of;
    has_sugg;
    nphases;
    active = in_phase_acyclic ~phase_of ~dst_of ~has_sugg;
  }

let invisible ctx ~ph i =
  ph < ctx.nphases
  && ctx.has_sugg.(i)
  && ctx.phase_of.(i) = ph
  &&
  let j = ctx.dst_of.(i) in
  j <> i && ctx.phase_of.(j) = ph

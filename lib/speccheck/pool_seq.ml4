(* Sequential fallback for compilers without multicore support. A dune
   rule copies this file to pool.ml when %{ocaml_version} < 5.0; see
   pool_domains.ml5 for the parallel implementation and the signature
   contract (order-preserving map, first worker exception re-raised). *)

let available = false
let default_domains () = 1
let map ~domains:_ f xs = List.map f xs

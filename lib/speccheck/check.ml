module Action = Damd_core.Action
module Biconnect = Damd_graph.Biconnect

type severity = Error | Warning | Info

type finding = {
  id : string;
  severity : severity;
  location : string;
  message : string;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let error id location message = { id; severity = Error; location; message }
let warning id location message = { id; severity = Warning; location; message }

let duplicates xs =
  let sorted = List.sort compare xs (* poly-ok: generic helper, used on atoms *) in
  let rec scan acc = function
    | a :: (b :: _ as rest) ->
        scan (if a = b && not (List.mem a acc) then a :: acc else acc) rest
    | _ -> List.rev acc
  in
  scan [] sorted

let check_well_formed (ir : Ir.t) =
  let dup_states =
    List.map
      (fun s ->
        error "duplicate-id" s (Printf.sprintf "state %S declared twice" s))
      (duplicates ir.Ir.states)
  in
  let dup_actions =
    List.map
      (fun a ->
        error "duplicate-id" a (Printf.sprintf "action %S declared twice" a))
      (duplicates (List.map (fun (a : Ir.action) -> a.Ir.id) ir.Ir.actions))
  in
  let known_state s = List.mem s ir.Ir.states in
  let known_action a = Ir.find_action ir a <> None in
  let bad_ref loc what name =
    error "undefined-ref" loc (Printf.sprintf "%s %S is not declared" what name)
  in
  let initial =
    if known_state ir.Ir.initial then []
    else [ bad_ref "initial" "initial state" ir.Ir.initial ]
  in
  let transitions =
    List.concat_map
      (fun (t : Ir.transition) ->
        let loc = Printf.sprintf "%s --%s--> %s" t.Ir.src t.Ir.act t.Ir.dst in
        List.concat
          [
            (if known_state t.Ir.src then [] else [ bad_ref loc "state" t.Ir.src ]);
            (if known_state t.Ir.dst then [] else [ bad_ref loc "state" t.Ir.dst ]);
            (if known_action t.Ir.act then [] else [ bad_ref loc "action" t.Ir.act ]);
          ])
      ir.Ir.transitions
  in
  let suggested =
    List.concat_map
      (fun (s, a) ->
        List.concat
          [
            (if known_state s then [] else [ bad_ref ("suggested@" ^ s) "state" s ]);
            (if known_action a then [] else [ bad_ref ("suggested@" ^ s) "action" a ]);
          ])
      ir.Ir.suggested
  in
  let phases =
    List.concat_map
      (fun (p : Ir.phase) ->
        List.filter_map
          (fun m ->
            if known_state m then None
            else Some (bad_ref ("phase " ^ p.Ir.pname) "state" m))
          p.Ir.members)
      ir.Ir.phases
  in
  List.concat [ dup_states; dup_actions; initial; transitions; suggested; phases ]

(* Reachability over the full transition table (any strategy), then the
   suggested-play termination walk. *)
let check_states (ir : Ir.t) =
  let reachable = Hashtbl.create 16 in
  let rec visit s =
    if not (Hashtbl.mem reachable s) then begin
      Hashtbl.add reachable s ();
      List.iter
        (fun (t : Ir.transition) -> if t.Ir.src = s then visit t.Ir.dst)
        ir.Ir.transitions
    end
  in
  visit ir.Ir.initial;
  let dead =
    List.filter_map
      (fun s ->
        if Hashtbl.mem reachable s then None
        else
          Some
            (error "dead-state" s
               (Printf.sprintf
                  "state %S is unreachable from %S under any strategy" s
                  ir.Ir.initial)))
      ir.Ir.states
  in
  let unused =
    List.filter_map
      (fun (a : Ir.action) ->
        if List.exists (fun (t : Ir.transition) -> t.Ir.act = a.Ir.id)
             ir.Ir.transitions
        then None
        else
          Some
            (warning "unused-action" a.Ir.id
               (Printf.sprintf "action %S appears in no transition" a.Ir.id)))
      ir.Ir.actions
  in
  let termination =
    let bound = List.length ir.Ir.states + 1 in
    let rec walk s steps =
      match Ir.suggested_action ir s with
      | None -> []
      | Some a ->
          if steps >= bound then
            [
              error "non-termination" s
                (Printf.sprintf
                   "suggested play is still running after %d steps (cycle \
                    through %S): the mechanism never reaches a halting state"
                   steps s);
            ]
          else walk (match Ir.step ir s a with Some d -> d | None -> s) (steps + 1)
    in
    walk ir.Ir.initial 0
  in
  List.concat [ dead; unused; termination ]

let check_classification (ir : Ir.t) =
  List.filter_map
    (fun (a : Ir.action) ->
      match a.Ir.cls with
      | Some _ -> None
      | None ->
          Some
            (error "unclassified-action" a.Ir.id
               (Printf.sprintf
                  "action %S has no section-3.4 class: the proof cannot \
                   assign it to an IC / strong-CC / strong-AC obligation"
                  a.Ir.id)))
    ir.Ir.actions

let check_phases (ir : Ir.t) =
  let overlaps =
    List.filter_map
      (fun s ->
        let owners =
          List.filter (fun (p : Ir.phase) -> List.mem s p.Ir.members) ir.Ir.phases
        in
        match owners with
        | [] | [ _ ] -> None
        | _ ->
            Some
              (error "phase-overlap" s
                 (Printf.sprintf "state %S belongs to phases %s: phases must \
                                  be disjoint (section 3.8)"
                    s
                    (String.concat ", "
                       (List.map (fun (p : Ir.phase) -> p.Ir.pname) owners)))))
      ir.Ir.states
  in
  let gaps =
    List.filter_map
      (fun s ->
        (* halting states carry no action and need no phase *)
        if Ir.suggested_action ir s = None then None
        else if Ir.phase_of_state ir s <> None then None
        else
          Some
            (warning "phase-gap" s
               (Printf.sprintf
                  "active state %S belongs to no phase: its action escapes \
                   the phase-local proof decomposition" s)))
      ir.Ir.states
  in
  let checkpoints =
    List.filter_map
      (fun (p : Ir.phase) ->
        match p.Ir.checkpoint with
        | Some _ -> None
        | None ->
            Some
              (error "missing-checkpoint" p.Ir.pname
                 (Printf.sprintf
                    "phase %S does not end in a certified checkpoint: a \
                     deviation inside it is never caught at a phase boundary \
                     (section 3.9)" p.Ir.pname)))
      ir.Ir.phases
  in
  let straddlers =
    List.filter_map
      (fun (a : Ir.action) ->
        match Ir.phases_of_action ir a.Ir.id with
        | [] | [ _ ] -> None
        | ps ->
            Some
              (warning "multi-phase-action" a.Ir.id
                 (Printf.sprintf
                    "action %S runs in phases %s: its obligation straddles a \
                     checkpoint, so phase-local reasoning (section 3.8) \
                     attributes it ambiguously"
                    a.Ir.id
                    (String.concat ", "
                       (List.map (fun (p : Ir.phase) -> p.Ir.pname) ps)))))
      ir.Ir.actions
  in
  List.concat [ overlaps; gaps; checkpoints; straddlers ]

let check_cc (ir : Ir.t) =
  List.filter_map
    (fun (a : Ir.action) ->
      match a.Ir.cls with
      | Some Action.Message_passing when List.mem Ir.Private_info a.Ir.inputs ->
          Some
            (error "cc-private-leak" a.Ir.id
               (Printf.sprintf
                  "message-passing action %S depends on private information: \
                   strong-CC (Def. 12) requires forwarded content to be a \
                   function of received messages only" a.Ir.id))
      | _ -> None)
    ir.Ir.actions

let check_ac (ir : Ir.t) =
  List.concat_map
    (fun (a : Ir.action) ->
      match a.Ir.cls with
      | Some Action.Computation ->
          List.concat
            [
              (if a.Ir.mirrored then []
               else
                 [
                   error "ac-unmirrored" a.Ir.id
                     (Printf.sprintf
                        "computational action %S is not mirrored by any \
                         checker rule: strong-AC (Def. 13) has no witness to \
                         compare against" a.Ir.id);
                 ]);
              (if a.Ir.digested then []
               else
                 [
                   error "ac-undigested" a.Ir.id
                     (Printf.sprintf
                        "computational action %S is not covered by a bank \
                         digest: the mirror's disagreement could never reach \
                         the checkpoint" a.Ir.id);
                 ]);
            ]
      | _ -> [])
    ir.Ir.actions

let check_deviations ~adversary (ir : Ir.t) =
  let targeted =
    List.concat_map (fun (a : Ir.action) -> a.Ir.deviations) ir.Ir.actions
    |> List.sort_uniq compare (* poly-ok: constant Dev.t constructors *)
  in
  let orphans =
    List.filter_map
      (fun d ->
        if d = Dev.Faithful || List.mem d targeted then None
        else
          Some
            (error "orphan-deviation" (Dev.to_string d)
               (Printf.sprintf
                  "adversary constructor %S targets no catalogue action: the \
                   detection case analysis (section 4.3) does not cover it"
                  (Dev.to_string d))))
      (List.sort_uniq compare adversary) (* poly-ok: constant Dev.t constructors *)
  in
  let unmapped =
    List.filter_map
      (fun d ->
        if List.mem d adversary then None
        else
          Some
            (error "unmapped-deviation" (Dev.to_string d)
               (Printf.sprintf
                  "catalogue deviation %S has no adversary constructor: the \
                   claimed attack is untestable" (Dev.to_string d))))
      targeted
  in
  orphans @ unmapped

let check_ir ?(adversary = Dev.all) (ir : Ir.t) =
  List.concat
    [
      check_well_formed ir;
      check_states ir;
      check_classification ir;
      check_phases ir;
      check_cc ir;
      check_ac ir;
      check_deviations ~adversary ir;
    ]

let check_topology g =
  if Biconnect.is_biconnected g then []
  else
    let cuts = Biconnect.articulation_points g in
    let location =
      if cuts = [] then "graph"
      else String.concat "," (List.map string_of_int cuts)
    in
    [
      error "checker-cut" location
        (if cuts = [] then
           "topology is disconnected: some principal has no checker path to \
            the bank's comparison set"
         else
           Printf.sprintf
             "topology is not 2-connected (articulation point%s %s): removing \
              one node isolates some principal from every honest checker, \
              breaking the neighborhood assumption of detectable_in"
             (if List.length cuts > 1 then "s" else "")
             location);
    ]

let errors findings = List.filter (fun f -> f.severity = Error) findings

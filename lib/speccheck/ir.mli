(** A finite specification IR — §3.1's state-machine specification made
    explicit enough to analyze statically.

    The existing [Damd_core.State_machine] is a bundle of opaque closures:
    executable, but nothing can be *proven about* it without running it.
    This IR is the declarative counterpart: finite state set, typed actions
    carrying their §3.4 class and declared input dependencies, an explicit
    transition table, the suggested-play map, and the phase decomposition
    with checkpoint markers (§3.8–3.9). [Compile.machine] turns an IR into
    the closure form (so the IR is the single source of truth and drift is
    impossible), and [Check] evaluates Prop. 2's structural preconditions —
    strong-CC / strong-AC candidacy, phase discipline — without a single
    simulation step. *)

type input =
  | Private_info
      (** the node's own type (true transit cost, own traffic demands) *)
  | Received_messages  (** payloads received from other nodes *)
  | Protocol_state
      (** certified or locally accumulated protocol state (tables,
          dedup sets) — public by construction *)

type action = {
  id : string;  (** stable identifier, unique within the spec *)
  descr : string;  (** the catalogue's human-readable row *)
  cls : Damd_core.Action.t option;
      (** §3.4 class; [None] means unclassified, which the checker rejects
          ([unclassified-action]) — the totality obligation *)
  inputs : input list;
      (** what the action's externally visible output may depend on; the
          strong-CC check (Def. 12) rejects [Private_info] here for
          message-passing actions *)
  rules : Rule.t list;  (** enforcement rules covering this action *)
  mirrored : bool;
      (** some checker rule recomputes this action's output (Def. 13) *)
  digested : bool;
      (** the action's output is covered by a bank digest comparison *)
  deviations : Dev.t list;  (** adversary-library deviations targeting it *)
}

type checkpoint = { certifier : Rule.t }
(** A certified checkpoint: the rule whose digests the bank compares
    before green-lighting the next phase. *)

type phase = {
  pname : string;
  members : string list;  (** the states in which this phase's actions run *)
  checkpoint : checkpoint option;
      (** [None] is rejected by the checker ([missing-checkpoint]): §3.9
          requires every phase to end in a certified checkpoint *)
}

type transition = { src : string; act : string; dst : string }

type t = {
  name : string;
  states : string list;
  initial : string;
  actions : action list;
  transitions : transition list;
  suggested : (string * string) list;
      (** the specification [s : L -> A] as (state, action id); a state
          with no entry halts *)
  phases : phase list;  (** in execution order *)
}

val find_action : t -> string -> action option

val suggested_action : t -> string -> string option

val step : t -> string -> string -> string option
(** [step ir state act] is the transition target, if the table defines
    one. *)

val phase_of_state : t -> string -> phase option
(** The first phase listing the state as a member. *)

val phases_of_action : t -> string -> phase list
(** Every phase in which an action runs — the phases of the source states
    of *all* its transitions, deduplicated, in declaration order. An
    action spanning two phases is legal IR but suspicious (its proof
    obligation would straddle a checkpoint); [Check] flags it as the
    [multi-phase-action] warning. *)

val phase_of_action : t -> string -> phase option
(** The earliest phase (in declaration order) in which the action runs,
    i.e. the head of [phases_of_action]. Historical note: this used to be
    the phase of the action's textually first transition, silently
    mis-attributing an action whose transitions span two phases. *)

module Action = Damd_core.Action
module G = Damd_graph.Graph
module Obs = Damd_obs.Obs
module Clock = Damd_obs.Clock
module Metrics = Damd_obs.Metrics
module Json = Damd_util.Json
module Sp = Statepack

type verdict =
  | Detected of { depth : int; certifier : string option }
  | Undetected of { witness : string }
  | Exempt of { reason : string }
  | Truncated

type stats = {
  states_explored : int;
  frontier_peak : int;
  scenarios : int;
  truncated : bool;
  elapsed_s : float;
  por : bool;  (* the reduction was requested *and* its guard held *)
  domains : int;  (* scenario fan-out width actually used *)
}

type outcome = {
  verdicts : (Dev.t * verdict) list;
  findings : Check.finding list;
  covered_states : string list;
  stats : stats;
}

(* ---- the indexed machine view (same semantics as Compile.machine) ---- *)

type mach = {
  states : string array;
  sugg_id : string option array;  (* suggested action id per state *)
  action_of : Ir.action option array;  (* its declared record, if any *)
  dst_of : int array;  (* suggested destination; self when undefined *)
  phase_of : int array;  (* phase index per state, [-1] = none *)
  nphases : int;
  phase_names : string array;
  certifiers : string option array;
  dev_lbl : string array;  (* "deviant!<aid>" per state, shared *)
  cp_lbl : string array;  (* "[checkpoint <phase>]" per phase, shared *)
}

let build (ir : Ir.t) =
  let states = Array.of_list ir.Ir.states in
  let idx = Hashtbl.create 16 in
  Array.iteri
    (fun i s -> if not (Hashtbl.mem idx s) then Hashtbl.add idx s i)
    states;
  let ns = Array.length states in
  let sugg_id = Array.make ns None in
  let action_of = Array.make ns None in
  let dst_of = Array.init ns (fun i -> i) in
  Array.iteri
    (fun i s ->
      match Ir.suggested_action ir s with
      | None -> ()
      | Some aid ->
          sugg_id.(i) <- Some aid;
          action_of.(i) <- Ir.find_action ir aid;
          dst_of.(i) <-
            (match Ir.step ir s aid with
            | Some d -> (
                match Hashtbl.find_opt idx d with Some j -> j | None -> i)
            | None -> i (* the Compile.machine self-loop *)))
    states;
  let phases = Array.of_list ir.Ir.phases in
  let phase_of = Array.make ns (-1) in
  Array.iteri
    (fun pi (p : Ir.phase) ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt idx s with
          | Some i when phase_of.(i) = -1 -> phase_of.(i) <- pi
          | _ -> ())
        p.Ir.members)
    phases;
  let phase_names = Array.map (fun (p : Ir.phase) -> p.Ir.pname) phases in
  {
    states;
    sugg_id;
    action_of;
    dst_of;
    phase_of;
    nphases = Array.length phases;
    phase_names;
    certifiers =
      Array.map
        (fun (p : Ir.phase) ->
          match p.Ir.checkpoint with
          | Some c -> Some (Rule.to_string c.Ir.certifier)
          | None -> None)
        phases;
    dev_lbl =
      Array.map
        (function Some aid -> "deviant!" ^ aid | None -> "deviant!")
        sugg_id;
    cp_lbl = Array.map (fun p -> "[checkpoint " ^ p ^ "]") phase_names;
  }

(* ---- evidence coverage: can the declared checking story surface a
   deviant execution of this action? (the abstract §4.3 case split) ---- *)

let covered_action (a : Ir.action) ~honest =
  match a.Ir.cls with
  | None -> false
  | Some Action.Internal -> false
  | Some Action.Information_revelation -> a.Ir.digested
  | Some Action.Message_passing -> a.Ir.rules <> [] && honest
  | Some Action.Computation -> a.Ir.mirrored && a.Ir.digested && honest

(* ---- scenario descriptors and per-scenario results: scenarios are
   independent, so each runs against private tables and the driver merges
   the outputs deterministically in scenario order ---- *)

type job = {
  j_label : string;
  j_has_deviant : bool;
  j_stall : bool;
  j_targets : bool array;
  j_covered : bool array;
  j_faithful : bool;
}

type scen_out = {
  so_escape : string option;  (* witness trace of an uncaught green-light *)
  so_timeout : int option;  (* omission stall depth *)
  so_lag : int;  (* worst act-to-certification distance; -1 = none *)
  so_certifier : string option;
  so_acted : bool;
  so_truncated : bool;
  so_states : int;
  so_frontier : int;
  so_covered : bool array;
  so_findings : Check.finding list;
}

(* One scenario: BFS the product with [n] seats, one seat optionally
   running the deviation. [j_targets] marks states whose suggested action
   the deviation targets; [j_covered] marks states whose deviant execution
   deposits checkpoint evidence; [j_stall] models omission (the targeted
   step never completes, blocking the phase barrier). [encode] canonicalizes
   a product state into the dedup key — an immediate int whenever the
   packed layout fits one word. [por] enables the invisible-step reduction
   when its acyclicity guard holds. *)
let run_scenario (type k) m ~(encode : Sp.state -> k) ~audit ~por ~obs ~bound
    ~n ~initial (job : job) : scen_out =
  let ns = Array.length m.states in
  let depth_hist =
    match Obs.metrics obs with
    | None -> None
    | Some reg -> Some (Metrics.histogram reg "explore.depth")
  in
  let min_act = Array.make (max 1 m.nphases) max_int in
  let max_cert = Array.make (max 1 m.nphases) (-1) in
  let cert_rule = Array.make (max 1 m.nphases) None in
  let escape = ref None in
  let timeout = ref None in
  let acted_ever = ref false in
  let truncated = ref false in
  let covered_mark = Array.make ns false in
  let findings = ref [] in
  let seen = Hashtbl.create 8 in
  let add_finding severity id location message =
    if not (Hashtbl.mem seen (id, location)) then begin
      Hashtbl.add seen (id, location) ();
      findings := { Check.id; severity; location; message } :: !findings
    end
  in
  let visited : (k, int) Hashtbl.t = Hashtbl.create 1024 in
  let parent : (k, k * string) Hashtbl.t = Hashtbl.create 1024 in
  let audit_tbl : (k, string) Hashtbl.t option =
    if audit then Some (Hashtbl.create 1024) else None
  in
  let encode st =
    let k = encode st in
    (match audit_tbl with
    | None -> ()
    | Some tbl -> (
        let s = Sp.structural st in
        match Hashtbl.find_opt tbl k with
        | None -> Hashtbl.add tbl k s
        | Some s0 when String.equal s0 s -> ()
        | Some s0 -> raise (Sp.Collision (s0, s))));
    k
  in
  let q : (k * Sp.state) Queue.t = Queue.create () in
  let witness_of k =
    let rec climb k acc fuel =
      if fuel = 0 then "…" :: acc
      else
        match Hashtbl.find_opt parent k with
        | None -> acc
        | Some (pk, lbl) -> climb pk (lbl :: acc) (fuel - 1)
    in
    String.concat " ; " (climb k [] 14)
  in
  let mark (st : Sp.state) =
    if st.Sp.dev >= 0 then covered_mark.(st.Sp.dev) <- true;
    Array.iteri (fun i c -> if c > 0 then covered_mark.(i) <- true) st.Sp.cnt
  in
  let frontier_max = ref 0 in
  let s0 =
    let cnt = Array.make ns 0 in
    cnt.(initial) <- (if job.j_has_deviant then n - 1 else n);
    {
      Sp.dev = (if job.j_has_deviant then initial else -1);
      cnt;
      ph = 0;
      acted = 0;
      evid = 0;
    }
  in
  let k0 = encode s0 in
  Hashtbl.replace visited k0 0;
  mark s0;
  Queue.add (k0, s0) q;
  let continue = ref true in
  while !continue && not (Queue.is_empty q) do
    if Hashtbl.length visited > bound then begin
      truncated := true;
      continue := false
    end
    else begin
      let k, s = Queue.pop q in
      let d = Hashtbl.find visited k in
      (* Frontier-size counter track, sampled every 256 expansions. *)
      if Obs.enabled obs && Hashtbl.length visited land 255 = 0 then
        Obs.sample obs "explore.frontier" (float_of_int (Queue.length q));
      let ph = s.Sp.ph in
      let eligible pos = ph >= m.nphases || m.phase_of.(pos) = ph in
      (* (successor, edge label, destination position or -1) *)
      let succs = ref [] in
      let push st lbl dst = succs := (st, lbl, dst) :: !succs in
      (* deviant move *)
      (if s.Sp.dev >= 0 && eligible s.Sp.dev then
         match m.sugg_id.(s.Sp.dev) with
         | None -> ()
         | Some _aid ->
             let dv = s.Sp.dev in
             let is_t = job.j_targets.(dv) in
             if job.j_stall && is_t then
               (* omission: the targeted step never completes *)
               ()
             else begin
               let pbit =
                 if ph < m.nphases then ph else max 0 (m.nphases - 1)
               in
               let acted =
                 if is_t then s.Sp.acted lor (1 lsl pbit) else s.Sp.acted
               in
               let evid =
                 if is_t && job.j_covered.(dv) then s.Sp.evid lor (1 lsl pbit)
                 else s.Sp.evid
               in
               if is_t then begin
                 acted_ever := true;
                 if d + 1 < min_act.(pbit) then min_act.(pbit) <- d + 1
               end;
               push
                 { s with Sp.dev = m.dst_of.(dv); acted; evid }
                 m.dev_lbl.(dv) m.dst_of.(dv)
             end);
      (* faithful class moves (symmetry: one per occupied chain state),
         POR-pruned to the lowest invisible class when the guard holds *)
      let pick_invisible =
        match por with
        | Some ctx when ctx.Por.active ->
            let r = ref (-1) in
            (try
               for i = 0 to ns - 1 do
                 if s.Sp.cnt.(i) > 0 && Por.invisible ctx ~ph i then begin
                   r := i;
                   raise Exit
                 end
               done
             with Exit -> ());
            !r
        | _ -> -1
      in
      for i = 0 to ns - 1 do
        if s.Sp.cnt.(i) > 0 && eligible i then
          match m.sugg_id.(i) with
          | None -> ()
          | Some aid ->
              let inv =
                pick_invisible >= 0
                &&
                match por with
                | Some ctx -> Por.invisible ctx ~ph i
                | None -> false
              in
              if (not inv) || i = pick_invisible then begin
                let dst = m.dst_of.(i) in
                let cnt = Array.copy s.Sp.cnt in
                cnt.(i) <- cnt.(i) - 1;
                cnt.(dst) <- cnt.(dst) + 1;
                push { s with Sp.cnt } aid dst
              end
      done;
      (* checkpoint: fires exactly when nobody remains inside the phase *)
      if ph < m.nphases then begin
        let someone_inside =
          (s.Sp.dev >= 0 && m.phase_of.(s.Sp.dev) = ph)
          ||
          let ins = ref false in
          for i = 0 to ns - 1 do
            if s.Sp.cnt.(i) > 0 && m.phase_of.(i) = ph then ins := true
          done;
          !ins
        in
        if not someone_inside then begin
          let bit = 1 lsl ph in
          (if s.Sp.acted land bit <> 0 then
             match m.certifiers.(ph) with
             | Some rule when s.Sp.evid land bit <> 0 ->
                 if d + 1 > max_cert.(ph) then begin
                   max_cert.(ph) <- d + 1;
                   cert_rule.(ph) <- Some rule
                 end
             | _ ->
                 (* green light with the deviation unflagged *)
                 if !escape = None then
                   escape :=
                     Some
                       (witness_of k ^ " ; [green-light " ^ m.phase_names.(ph)
                      ^ "]"));
          push { s with Sp.ph = ph + 1 } m.cp_lbl.(ph) (-1)
        end
      end;
      (* enqueue with post-certification reentry pruning *)
      let progress = ref 0 in
      List.iter
        (fun (st, lbl, dst) ->
          let reentry =
            dst >= 0
            && m.phase_of.(dst) >= 0
            && m.phase_of.(dst) < min ph m.nphases
          in
          if reentry then begin
            incr progress;
            add_finding Check.Error "phase-reentry" lbl
              (Printf.sprintf
                 "step %S re-enters phase %S after its checkpoint certified: \
                  post-certification play can rewrite what the bank already \
                  green-lit"
                 lbl
                 m.phase_names.(m.phase_of.(dst)))
          end
          else begin
            let k' = encode st in
            if k' <> k then incr progress;
            if not (Hashtbl.mem visited k') then begin
              Hashtbl.replace visited k' (d + 1);
              Hashtbl.replace parent k' (k, lbl);
              (match depth_hist with
              | None -> ()
              | Some h -> Metrics.observe h (float_of_int (d + 1)));
              mark st;
              Queue.add (k', st) q;
              if Queue.length q > !frontier_max then
                frontier_max := Queue.length q
            end
          end)
        !succs;
      (* deadlock: the current phase can never reach its certifier *)
      if !progress = 0 && ph < m.nphases then begin
        let stalling_deviant =
          s.Sp.dev >= 0 && job.j_stall
          && m.phase_of.(s.Sp.dev) = ph
          && job.j_targets.(s.Sp.dev)
          && m.sugg_id.(s.Sp.dev) <> None
        in
        if stalling_deviant then (
          match !timeout with
          | Some t when t >= d + 1 -> ()
          | _ -> timeout := Some (d + 1))
        else
          add_finding Check.Error
            (if job.j_faithful then "false-accusation"
             else "certifier-unreachable")
            m.phase_names.(ph)
            (if job.j_faithful then
               Printf.sprintf
                 "the all-faithful run deadlocks inside phase %S: the bank's \
                  progress timeout would punish nodes that followed the \
                  suggested play to the letter"
                 m.phase_names.(ph)
             else
               Printf.sprintf
                 "phase %S can deadlock before its certifier runs: a \
                  deviation inside it is never surfaced at a checkpoint"
                 m.phase_names.(ph))
      end
    end
  done;
  let lag = ref (-1) in
  let certifier = ref None in
  Array.iteri
    (fun p cert ->
      if cert >= 0 && min_act.(p) < max_int then begin
        let l = cert - min_act.(p) in
        if l > !lag then begin
          lag := l;
          certifier := cert_rule.(p)
        end
      end)
    max_cert;
  {
    so_escape = !escape;
    so_timeout = !timeout;
    so_lag = !lag;
    so_certifier = !certifier;
    so_acted = !acted_ever;
    so_truncated = !truncated;
    so_states = Hashtbl.length visited;
    so_frontier = !frontier_max;
    so_covered = covered_mark;
    so_findings = List.rev !findings;
  }

(* ---- exemptions: deviations the checking story does not claim ---- *)

let exemptions =
  [
    ( Dev.Misreport_cost,
      "consistent cost misreport is pure information revelation: neutralized \
       by VCG strategyproofness (IC), invisible to checkers by design" );
    ( Dev.Lying_checker,
      "checker-role deviation only: in isolation the principal's own chain \
       is honest, so every digest still agrees — consequential only inside a \
       coalition (see collude-with)" );
  ]

let dev_compare a b = String.compare (Dev.to_string a) (Dev.to_string b)

let run ?(bound = 50_000) ?(adversary = Dev.all) ?(obs = Obs.noop)
    ?(por = true) ?(domains = 0) ?(audit = false) ~graph (ir : Ir.t) =
  let t0 = Clock.now_ns () in
  let m = build ir in
  let n = G.n graph in
  let ns = Array.length m.states in
  let codec = Sp.make ~ns ~n ~nphases:m.nphases in
  let por_ctx =
    if por then
      Some
        (Por.make ~phase_of:m.phase_of ~dst_of:m.dst_of
           ~has_sugg:(Array.map Option.is_some m.sugg_id)
           ~nphases:m.nphases)
    else None
  in
  let por_active =
    match por_ctx with Some c -> c.Por.active | None -> false
  in
  let initial =
    let rec find i =
      if i >= ns then None
      else if m.states.(i) = ir.Ir.initial then Some i
      else find (i + 1)
    in
    find 0
  in
  match initial with
  | None ->
      {
        verdicts = [];
        findings =
          [
            {
              Check.id = "exploration-truncated";
              severity = Check.Warning;
              location = ir.Ir.initial;
              message =
                "the initial state is not declared, so the product machine \
                 has no seed configuration; exploration skipped";
            };
          ];
        covered_states = [];
        stats =
          {
            states_explored = 0;
            frontier_peak = 0;
            scenarios = 0;
            truncated = true;
            elapsed_s = Clock.s_since t0;
            por = por_active;
            domains = 1;
          };
      }
  | Some initial ->
      let no_targets = Array.make ns false in
      let target_mask lbl =
        Array.init ns (fun i ->
            match m.action_of.(i) with
            | Some a -> List.mem lbl a.Ir.deviations
            | None -> false)
      in
      let coverage_mask ~honest =
        Array.init ns (fun i ->
            match m.action_of.(i) with
            | Some a -> covered_action a ~honest
            | None -> false)
      in
      (* The abstract model forgets seat identity except through the
         honesty of the deviant's checker neighborhood, so seats sharing an
         honesty value share one BFS — the sweep is still exhaustive over
         seats because every seat maps into one of the explored classes. *)
      let honesties =
        List.sort_uniq Bool.compare
          (List.init n (fun i -> G.degree graph i > 0))
      in
      let single_seat_jobs lbl ~stall =
        let targets = target_mask lbl in
        List.map
          (fun honest ->
            {
              j_label =
                Printf.sprintf "%s[%s]" (Dev.to_string lbl)
                  (if honest then "honest-nbrs" else "isolated");
              j_has_deviant = true;
              j_stall = stall;
              j_targets = targets;
              j_covered = coverage_mask ~honest;
              j_faithful = false;
            })
          honesties
      in
      let combine rs =
        if List.exists (fun r -> r.so_truncated) rs then Truncated
        else
          match List.find_opt (fun r -> r.so_escape <> None) rs with
          | Some r -> Undetected { witness = Option.get r.so_escape }
          | None -> (
              match
                List.find_opt (fun r -> r.so_lag < 0 && r.so_timeout = None) rs
              with
              | Some r ->
                  Undetected
                    {
                      witness =
                        (if r.so_acted then
                           "the deviation occurs but no certification event \
                            ever follows it"
                         else
                           "the targeted action never executes in the \
                            explored product");
                    }
              | None ->
                  let depth, certifier =
                    List.fold_left
                      (fun (d0, c0) r ->
                        let d, c =
                          if r.so_lag >= 0 then (r.so_lag, r.so_certifier)
                          else (Option.get r.so_timeout, None)
                        in
                        if d > d0 then (d, c) else (d0, c0))
                      (-1, None) rs
                  in
                  Detected { depth; certifier })
      in
      let coalition_shield (a : Ir.action) =
        a.Ir.cls = Some Action.Computation
        && a.Ir.mirrored && a.Ir.digested
        && List.exists
             (fun d -> d <> Dev.Lying_checker && d <> Dev.Collude_with)
             a.Ir.deviations
      in
      (* Collude-with: the principal deviates on a mirrored computation
         while the colluding checker vouches for it; detection needs some
         *other* honest checker in the principal's neighborhood, so the
         honesty class of the pair (p, c) is "p has a neighbor besides c". *)
      let collude_plan () =
        if not (List.exists coalition_shield ir.Ir.actions) then
          `Done
            (Undetected
               {
                 witness =
                   "no mirrored computation exists for the coalition to \
                    shield, so the coalition case analysis is vacuous";
               })
        else begin
          let targets =
            Array.init ns (fun i ->
                match m.action_of.(i) with
                | Some a -> coalition_shield a
                | None -> false)
          in
          let pairs =
            List.concat
              (List.init n (fun p ->
                   List.map (fun c -> (p, c)) (G.neighbors graph p)))
          in
          let honest_of (p, c) =
            List.exists (fun nb -> nb <> c) (G.neighbors graph p)
          in
          let exposed = List.filter (fun pc -> not (honest_of pc)) pairs in
          let chonesties =
            List.sort_uniq Bool.compare (List.map honest_of pairs)
          in
          let jobs =
            List.map
              (fun honest ->
                {
                  j_label =
                    (if honest then "collude-with[honest-nbrs]"
                     else "collude-with[isolated]");
                  j_has_deviant = true;
                  j_stall = false;
                  j_targets = targets;
                  j_covered = coverage_mask ~honest;
                  j_faithful = false;
                })
              chonesties
          in
          let post v =
            match (v, exposed) with
            | Undetected { witness }, (p, c) :: _ ->
                Undetected
                  {
                    witness =
                      Printf.sprintf
                        "%s [principal %d, colluding checker %d covers its \
                         entire neighborhood]"
                        witness p c;
                  }
            | _ -> v
          in
          `Jobs (jobs, post)
        end
      in
      let labels =
        List.sort_uniq dev_compare
          (List.filter (fun d -> d <> Dev.Faithful) adversary)
      in
      let plan =
        List.map
          (fun lbl ->
            let p =
              match List.assoc_opt lbl exemptions with
              | Some reason -> `Done (Exempt { reason })
              | None ->
                  if lbl = Dev.Collude_with then collude_plan ()
                  else if
                    not
                      (List.exists
                         (fun (a : Ir.action) -> List.mem lbl a.Ir.deviations)
                         ir.Ir.actions)
                  then
                    `Done
                      (Undetected
                         {
                           witness =
                             "no catalogue action targets this deviation, so \
                              the section-4.3 case analysis cannot place it";
                         })
                  else
                    `Jobs
                      ( single_seat_jobs lbl
                          ~stall:(lbl = Dev.Silent_in_construction),
                        fun v -> v )
            in
            (lbl, p))
          labels
      in
      (* the all-faithful product run: no-false-accusation + progress *)
      let faithful_job =
        {
          j_label = "all-faithful";
          j_has_deviant = false;
          j_stall = false;
          j_targets = no_targets;
          j_covered = no_targets;
          j_faithful = true;
        }
      in
      let all_jobs =
        List.concat_map
          (fun (_, p) -> match p with `Done _ -> [] | `Jobs (js, _) -> js)
          plan
        @ [ faithful_job ]
      in
      let njobs = List.length all_jobs in
      (* Tracing sinks are not thread-safe, so an enabled obs pins the
         fan-out to one domain; results are merged in job order either
         way, so the outcome is identical. *)
      let dom =
        if Obs.enabled obs then 1
        else
          let req = if domains <= 0 then Pool.default_domains () else domains in
          max 1 (min req njobs)
      in
      let exec job =
        Obs.span obs ~cat:"speccheck"
          ~args:[ ("scenario", Json.String job.j_label) ]
          "explore.scenario"
          (fun () ->
            if Sp.fits_int codec then
              run_scenario m ~encode:(Sp.pack_int codec) ~audit ~por:por_ctx
                ~obs ~bound ~n ~initial job
            else
              run_scenario m ~encode:(Sp.pack_string codec) ~audit
                ~por:por_ctx ~obs ~bound ~n ~initial job)
      in
      let outs = Pool.map ~domains:dom exec all_jobs in
      (* deterministic merge, in job (= label) order *)
      let covered_mark = Array.make ns false in
      let findings = ref [] in
      let seen = Hashtbl.create 16 in
      let add_finding severity id location message =
        if not (Hashtbl.mem seen (id, location)) then begin
          Hashtbl.add seen (id, location) ();
          findings := { Check.id; severity; location; message } :: !findings
        end
      in
      let states_total = ref 0 in
      let frontier_max = ref 0 in
      List.iter
        (fun o ->
          states_total := !states_total + o.so_states;
          if o.so_frontier > !frontier_max then frontier_max := o.so_frontier;
          Array.iteri
            (fun i b -> if b then covered_mark.(i) <- true)
            o.so_covered;
          List.iter
            (fun (f : Check.finding) ->
              add_finding f.Check.severity f.Check.id f.Check.location
                f.Check.message)
            o.so_findings)
        outs;
      let outs_arr = Array.of_list outs in
      let idx = ref 0 in
      let take count =
        let l = List.init count (fun j -> outs_arr.(!idx + j)) in
        idx := !idx + count;
        l
      in
      let verdicts =
        List.map
          (fun (lbl, p) ->
            match p with
            | `Done v -> (lbl, v)
            | `Jobs (js, post) ->
                (lbl, post (combine (take (List.length js)))))
          plan
      in
      List.iter
        (fun (lbl, v) ->
          match v with
          | Undetected { witness } ->
              add_finding Check.Error "undetected-deviation" (Dev.to_string lbl)
                (Printf.sprintf
                   "deviation %S can escape its phase checkpoint: %s"
                   (Dev.to_string lbl) witness)
          | Truncated ->
              add_finding Check.Warning "exploration-truncated"
                (Dev.to_string lbl)
                (Printf.sprintf
                   "the %d-state bound ran out while exploring %S: its \
                    verdict is unknown"
                   bound (Dev.to_string lbl))
          | Detected _ | Exempt _ -> ())
        verdicts;
      Array.iteri
        (fun i occupied ->
          if not occupied then
            add_finding Check.Error "unexplored-state" m.states.(i)
              (Printf.sprintf
                 "state %S is never occupied by any node in any explored \
                  product execution: it cannot participate in the certified \
                  protocol"
                 m.states.(i)))
        covered_mark;
      let covered_states =
        List.filteri (fun i _ -> covered_mark.(i)) (Array.to_list m.states)
      in
      let elapsed_s = Clock.s_since t0 in
      if Obs.enabled obs then
        Obs.instant obs ~cat:"speccheck"
          ~args:
            [
              ("states", Json.Int !states_total);
              ("scenarios", Json.Int njobs);
              ("frontier_peak", Json.Int !frontier_max);
              ( "states_per_sec",
                Json.Float
                  (if elapsed_s > 0. then
                     float_of_int !states_total /. elapsed_s
                   else 0.) );
            ]
          "explore.done";
      {
        verdicts;
        findings = List.rev !findings;
        covered_states;
        stats =
          {
            states_explored = !states_total;
            frontier_peak = !frontier_max;
            scenarios = njobs;
            truncated =
              List.exists
                (fun (_, v) -> match v with Truncated -> true | _ -> false)
                verdicts;
            elapsed_s;
            por = por_active;
            domains = dom;
          };
      }

module Action = Damd_core.Action
module G = Damd_graph.Graph
module Obs = Damd_obs.Obs
module Clock = Damd_obs.Clock
module Metrics = Damd_obs.Metrics
module Json = Damd_util.Json

type verdict =
  | Detected of { depth : int; certifier : string option }
  | Undetected of { witness : string }
  | Exempt of { reason : string }
  | Truncated

type stats = {
  states_explored : int;
  frontier_peak : int;
  scenarios : int;
  truncated : bool;
  elapsed_s : float;
}

type outcome = {
  verdicts : (Dev.t * verdict) list;
  findings : Check.finding list;
  covered_states : string list;
  stats : stats;
}

(* ---- the indexed machine view (same semantics as Compile.machine) ---- *)

type mach = {
  states : string array;
  sugg_id : string option array;  (* suggested action id per state *)
  action_of : Ir.action option array;  (* its declared record, if any *)
  dst_of : int array;  (* suggested destination; self when undefined *)
  phase_of : int array;  (* phase index per state, [-1] = none *)
  nphases : int;
  phase_names : string array;
  certifiers : string option array;
}

let build (ir : Ir.t) =
  let states = Array.of_list ir.Ir.states in
  let idx = Hashtbl.create 16 in
  Array.iteri
    (fun i s -> if not (Hashtbl.mem idx s) then Hashtbl.add idx s i)
    states;
  let ns = Array.length states in
  let sugg_id = Array.make ns None in
  let action_of = Array.make ns None in
  let dst_of = Array.init ns (fun i -> i) in
  Array.iteri
    (fun i s ->
      match Ir.suggested_action ir s with
      | None -> ()
      | Some aid ->
          sugg_id.(i) <- Some aid;
          action_of.(i) <- Ir.find_action ir aid;
          dst_of.(i) <-
            (match Ir.step ir s aid with
            | Some d -> (
                match Hashtbl.find_opt idx d with Some j -> j | None -> i)
            | None -> i (* the Compile.machine self-loop *)))
    states;
  let phases = Array.of_list ir.Ir.phases in
  let phase_of = Array.make ns (-1) in
  Array.iteri
    (fun pi (p : Ir.phase) ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt idx s with
          | Some i when phase_of.(i) = -1 -> phase_of.(i) <- pi
          | _ -> ())
        p.Ir.members)
    phases;
  {
    states;
    sugg_id;
    action_of;
    dst_of;
    phase_of;
    nphases = Array.length phases;
    phase_names = Array.map (fun (p : Ir.phase) -> p.Ir.pname) phases;
    certifiers =
      Array.map
        (fun (p : Ir.phase) ->
          match p.Ir.checkpoint with
          | Some c -> Some (Rule.to_string c.Ir.certifier)
          | None -> None)
        phases;
  }

(* ---- evidence coverage: can the declared checking story surface a
   deviant execution of this action? (the abstract §4.3 case split) ---- *)

let covered_action (a : Ir.action) ~honest =
  match a.Ir.cls with
  | None -> false
  | Some Action.Internal -> false
  | Some Action.Information_revelation -> a.Ir.digested
  | Some Action.Message_passing -> a.Ir.rules <> [] && honest
  | Some Action.Computation -> a.Ir.mirrored && a.Ir.digested && honest

(* ---- canonical product states: deviant position, sorted faithful
   multiset, phase index, per-phase acted/evidence bitmasks ---- *)

type pst = { dev : int; others : int array; ph : int; acted : int; evid : int }

let key (s : pst) =
  let b = Buffer.create 48 in
  Buffer.add_string b (string_of_int s.dev);
  Buffer.add_char b '|';
  Array.iter
    (fun p ->
      Buffer.add_string b (string_of_int p);
      Buffer.add_char b ',')
    s.others;
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int s.ph);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int ((s.acted lsl 16) lor s.evid));
  Buffer.contents b

type scen_result = {
  sr_escape : string option;  (* witness trace of an uncaught green-light *)
  sr_timeout : int option;  (* omission stall depth *)
  sr_lag : int;  (* worst act-to-certification distance; -1 = none *)
  sr_certifier : string option;
  sr_acted : bool;
  sr_truncated : bool;
}

(* One scenario: BFS the product with [n] seats, one seat optionally
   running the deviation. [targets] marks states whose suggested action the
   deviation targets; [covered] marks states whose deviant execution
   deposits checkpoint evidence; [stall] models omission (the targeted
   step never completes, blocking the phase barrier). *)
let run_scenario m ~obs ~bound ~n ~initial ~has_deviant ~stall ~targets
    ~covered ~faithful ~covered_mark ~add_finding ~states_total ~frontier_max
    =
  let depth_hist =
    match Obs.metrics obs with
    | None -> None
    | Some reg -> Some (Metrics.histogram reg "explore.depth")
  in
  let min_act = Array.make (max 1 m.nphases) max_int in
  let max_cert = Array.make (max 1 m.nphases) (-1) in
  let cert_rule = Array.make (max 1 m.nphases) None in
  let escape = ref None in
  let timeout = ref None in
  let acted_ever = ref false in
  let truncated = ref false in
  let visited : (string, int) Hashtbl.t = Hashtbl.create 512 in
  let parent : (string, string * string) Hashtbl.t = Hashtbl.create 512 in
  let q : (string * pst) Queue.t = Queue.create () in
  let witness_of k =
    let rec climb k acc fuel =
      if fuel = 0 then "…" :: acc
      else
        match Hashtbl.find_opt parent k with
        | None -> acc
        | Some (pk, lbl) -> climb pk (lbl :: acc) (fuel - 1)
    in
    String.concat " ; " (climb k [] 14)
  in
  let mark st =
    if st.dev >= 0 then covered_mark.(st.dev) <- true;
    Array.iter (fun p -> covered_mark.(p) <- true) st.others
  in
  let s0 =
    {
      dev = (if has_deviant then initial else -1);
      others = Array.make (if has_deviant then n - 1 else n) initial;
      ph = 0;
      acted = 0;
      evid = 0;
    }
  in
  let k0 = key s0 in
  Hashtbl.replace visited k0 0;
  mark s0;
  Queue.add (k0, s0) q;
  let continue = ref true in
  while !continue && not (Queue.is_empty q) do
    if Hashtbl.length visited > bound then begin
      truncated := true;
      continue := false
    end
    else begin
      let k, s = Queue.pop q in
      let d = Hashtbl.find visited k in
      (* Frontier-size counter track, sampled every 256 expansions. *)
      if Obs.enabled obs && Hashtbl.length visited land 255 = 0 then
        Obs.sample obs "explore.frontier" (float_of_int (Queue.length q));
      let eligible pos = s.ph >= m.nphases || m.phase_of.(pos) = s.ph in
      (* (successor, edge label, destination position or -1) *)
      let succs = ref [] in
      let push st lbl dst = succs := (st, lbl, dst) :: !succs in
      (* deviant move *)
      (if s.dev >= 0 && eligible s.dev then
         match m.sugg_id.(s.dev) with
         | None -> ()
         | Some aid ->
             let is_t = targets.(s.dev) in
             if stall && is_t then
               (* omission: the targeted step never completes *)
               ()
             else begin
               let pbit =
                 if s.ph < m.nphases then s.ph else max 0 (m.nphases - 1)
               in
               let acted = if is_t then s.acted lor (1 lsl pbit) else s.acted in
               let evid =
                 if is_t && covered.(s.dev) then s.evid lor (1 lsl pbit)
                 else s.evid
               in
               if is_t then begin
                 acted_ever := true;
                 if d + 1 < min_act.(pbit) then min_act.(pbit) <- d + 1
               end;
               push
                 { s with dev = m.dst_of.(s.dev); acted; evid }
                 ("deviant!" ^ aid) m.dst_of.(s.dev)
             end);
      (* faithful moves: one per distinct position (symmetry reduction) *)
      let tried = Hashtbl.create 8 in
      Array.iteri
        (fun oi pos ->
          if not (Hashtbl.mem tried pos) then begin
            Hashtbl.add tried pos ();
            if eligible pos then
              match m.sugg_id.(pos) with
              | None -> ()
              | Some aid ->
                  let others = Array.copy s.others in
                  others.(oi) <- m.dst_of.(pos);
                  Array.sort Int.compare others;
                  push { s with others } aid m.dst_of.(pos)
          end)
        s.others;
      (* checkpoint: fires exactly when nobody remains inside the phase *)
      if s.ph < m.nphases then begin
        let someone_inside =
          (s.dev >= 0 && m.phase_of.(s.dev) = s.ph)
          || Array.exists (fun p -> m.phase_of.(p) = s.ph) s.others
        in
        if not someone_inside then begin
          let bit = 1 lsl s.ph in
          (if s.acted land bit <> 0 then
             match m.certifiers.(s.ph) with
             | Some rule when s.evid land bit <> 0 ->
                 if d + 1 > max_cert.(s.ph) then begin
                   max_cert.(s.ph) <- d + 1;
                   cert_rule.(s.ph) <- Some rule
                 end
             | _ ->
                 (* green light with the deviation unflagged *)
                 if !escape = None then
                   escape :=
                     Some
                       (witness_of k ^ " ; [green-light " ^ m.phase_names.(s.ph)
                      ^ "]"));
          push
            { s with ph = s.ph + 1 }
            ("[checkpoint " ^ m.phase_names.(s.ph) ^ "]")
            (-1)
        end
      end;
      (* enqueue with post-certification reentry pruning *)
      let progress = ref 0 in
      List.iter
        (fun (st, lbl, dst) ->
          let reentry =
            dst >= 0
            && m.phase_of.(dst) >= 0
            && m.phase_of.(dst) < min s.ph m.nphases
          in
          if reentry then begin
            incr progress;
            add_finding Check.Error "phase-reentry" lbl
              (Printf.sprintf
                 "step %S re-enters phase %S after its checkpoint certified: \
                  post-certification play can rewrite what the bank already \
                  green-lit"
                 lbl
                 m.phase_names.(m.phase_of.(dst)))
          end
          else begin
            let k' = key st in
            if k' <> k then incr progress;
            if not (Hashtbl.mem visited k') then begin
              Hashtbl.replace visited k' (d + 1);
              Hashtbl.replace parent k' (k, lbl);
              (match depth_hist with
              | None -> ()
              | Some h -> Metrics.observe h (float_of_int (d + 1)));
              mark st;
              Queue.add (k', st) q;
              if Queue.length q > !frontier_max then
                frontier_max := Queue.length q
            end
          end)
        !succs;
      (* deadlock: the current phase can never reach its certifier *)
      if !progress = 0 && s.ph < m.nphases then begin
        let stalling_deviant =
          s.dev >= 0 && stall
          && m.phase_of.(s.dev) = s.ph
          && targets.(s.dev)
          && m.sugg_id.(s.dev) <> None
        in
        if stalling_deviant then (
          match !timeout with
          | Some t when t >= d + 1 -> ()
          | _ -> timeout := Some (d + 1))
        else
          add_finding Check.Error
            (if faithful then "false-accusation" else "certifier-unreachable")
            m.phase_names.(s.ph)
            (if faithful then
               Printf.sprintf
                 "the all-faithful run deadlocks inside phase %S: the bank's \
                  progress timeout would punish nodes that followed the \
                  suggested play to the letter"
                 m.phase_names.(s.ph)
             else
               Printf.sprintf
                 "phase %S can deadlock before its certifier runs: a \
                  deviation inside it is never surfaced at a checkpoint"
                 m.phase_names.(s.ph))
      end
    end
  done;
  states_total := !states_total + Hashtbl.length visited;
  let lag = ref (-1) in
  let certifier = ref None in
  Array.iteri
    (fun p cert ->
      if cert >= 0 && min_act.(p) < max_int then begin
        let l = cert - min_act.(p) in
        if l > !lag then begin
          lag := l;
          certifier := cert_rule.(p)
        end
      end)
    max_cert;
  {
    sr_escape = !escape;
    sr_timeout = !timeout;
    sr_lag = !lag;
    sr_certifier = !certifier;
    sr_acted = !acted_ever;
    sr_truncated = !truncated;
  }

(* ---- exemptions: deviations the checking story does not claim ---- *)

let exemptions =
  [
    ( Dev.Misreport_cost,
      "consistent cost misreport is pure information revelation: neutralized \
       by VCG strategyproofness (IC), invisible to checkers by design" );
    ( Dev.Lying_checker,
      "checker-role deviation only: in isolation the principal's own chain \
       is honest, so every digest still agrees — consequential only inside a \
       coalition (see collude-with)" );
  ]

let dev_compare a b = String.compare (Dev.to_string a) (Dev.to_string b)

let run ?(bound = 50_000) ?(adversary = Dev.all) ?(obs = Obs.noop) ~graph
    (ir : Ir.t) =
  let t0 = Clock.now_ns () in
  let m = build ir in
  let n = G.n graph in
  let ns = Array.length m.states in
  let covered_mark = Array.make ns false in
  let findings = ref [] in
  let seen = Hashtbl.create 16 in
  let add_finding severity id location message =
    if not (Hashtbl.mem seen (id, location)) then begin
      Hashtbl.add seen (id, location) ();
      findings := { Check.id; severity; location; message } :: !findings
    end
  in
  let states_total = ref 0 in
  let frontier_max = ref 0 in
  let scen_count = ref 0 in
  let initial =
    let rec find i =
      if i >= ns then None
      else if m.states.(i) = ir.Ir.initial then Some i
      else find (i + 1)
    in
    find 0
  in
  match initial with
  | None ->
      {
        verdicts = [];
        findings =
          [
            {
              Check.id = "exploration-truncated";
              severity = Check.Warning;
              location = ir.Ir.initial;
              message =
                "the initial state is not declared, so the product machine \
                 has no seed configuration; exploration skipped";
            };
          ];
        covered_states = [];
        stats =
          {
            states_explored = 0;
            frontier_peak = 0;
            scenarios = 0;
            truncated = true;
            elapsed_s = Clock.s_since t0;
          };
      }
  | Some initial ->
      let scenario ?(label = "scenario") ~has_deviant ~stall ~targets
          ~covered ~faithful () =
        incr scen_count;
        Obs.span obs ~cat:"speccheck"
          ~args:[ ("scenario", Json.String label) ]
          "explore.scenario"
          (fun () ->
            run_scenario m ~obs ~bound ~n ~initial ~has_deviant ~stall
              ~targets ~covered ~faithful ~covered_mark ~add_finding
              ~states_total ~frontier_max)
      in
      let no_targets = Array.make ns false in
      let target_mask lbl =
        Array.init ns (fun i ->
            match m.action_of.(i) with
            | Some a -> List.mem lbl a.Ir.deviations
            | None -> false)
      in
      let coverage_mask ~honest =
        Array.init ns (fun i ->
            match m.action_of.(i) with
            | Some a -> covered_action a ~honest
            | None -> false)
      in
      (* The abstract model forgets seat identity except through the
         honesty of the deviant's checker neighborhood, so seats sharing an
         honesty value share one BFS — the sweep is still exhaustive over
         seats because every seat maps into one of the explored classes. *)
      let single_seat_results lbl ~stall =
        let targets = target_mask lbl in
        let honesties =
          List.sort_uniq Bool.compare
            (List.init n (fun i -> G.degree graph i > 0))
        in
        List.map
          (fun honest ->
            scenario
              ~label:
                (Printf.sprintf "%s[%s]" (Dev.to_string lbl)
                   (if honest then "honest-nbrs" else "isolated"))
              ~has_deviant:true ~stall ~targets
              ~covered:(coverage_mask ~honest) ~faithful:false ())
          honesties
      in
      let combine rs =
        if List.exists (fun r -> r.sr_truncated) rs then Truncated
        else
          match List.find_opt (fun r -> r.sr_escape <> None) rs with
          | Some r -> Undetected { witness = Option.get r.sr_escape }
          | None -> (
              match
                List.find_opt (fun r -> r.sr_lag < 0 && r.sr_timeout = None) rs
              with
              | Some r ->
                  Undetected
                    {
                      witness =
                        (if r.sr_acted then
                           "the deviation occurs but no certification event \
                            ever follows it"
                         else
                           "the targeted action never executes in the \
                            explored product");
                    }
              | None ->
                  let depth, certifier =
                    List.fold_left
                      (fun (d0, c0) r ->
                        let d, c =
                          if r.sr_lag >= 0 then (r.sr_lag, r.sr_certifier)
                          else (Option.get r.sr_timeout, None)
                        in
                        if d > d0 then (d, c) else (d0, c0))
                      (-1, None) rs
                  in
                  Detected { depth; certifier })
      in
      let coalition_shield (a : Ir.action) =
        a.Ir.cls = Some Action.Computation
        && a.Ir.mirrored && a.Ir.digested
        && List.exists
             (fun d -> d <> Dev.Lying_checker && d <> Dev.Collude_with)
             a.Ir.deviations
      in
      (* Collude-with: the principal deviates on a mirrored computation
         while the colluding checker vouches for it; detection needs some
         *other* honest checker in the principal's neighborhood, so the
         honesty class of the pair (p, c) is "p has a neighbor besides c". *)
      let collude_verdict () =
        if not (List.exists coalition_shield ir.Ir.actions) then
          Undetected
            {
              witness =
                "no mirrored computation exists for the coalition to shield, \
                 so the coalition case analysis is vacuous";
            }
        else begin
          let targets =
            Array.init ns (fun i ->
                match m.action_of.(i) with
                | Some a -> coalition_shield a
                | None -> false)
          in
          let pairs =
            List.concat
              (List.init n (fun p ->
                   List.map (fun c -> (p, c)) (G.neighbors graph p)))
          in
          let honest_of (p, c) =
            List.exists (fun nb -> nb <> c) (G.neighbors graph p)
          in
          let exposed = List.filter (fun pc -> not (honest_of pc)) pairs in
          let honesties =
            List.sort_uniq Bool.compare (List.map honest_of pairs)
          in
          let v =
            combine
              (List.map
                 (fun honest ->
                   scenario
                     ~label:
                       (if honest then "collude-with[honest-nbrs]"
                        else "collude-with[isolated]")
                     ~has_deviant:true ~stall:false ~targets
                     ~covered:(coverage_mask ~honest) ~faithful:false ())
                 honesties)
          in
          match (v, exposed) with
          | Undetected { witness }, (p, c) :: _ ->
              Undetected
                {
                  witness =
                    Printf.sprintf
                      "%s [principal %d, colluding checker %d covers its \
                       entire neighborhood]"
                      witness p c;
                }
          | _ -> v
        end
      in
      let labels =
        List.sort_uniq dev_compare
          (List.filter (fun d -> d <> Dev.Faithful) adversary)
      in
      let verdicts =
        List.map
          (fun lbl ->
            let v =
              match List.assoc_opt lbl exemptions with
              | Some reason -> Exempt { reason }
              | None ->
                  if lbl = Dev.Collude_with then collude_verdict ()
                  else if
                    not
                      (List.exists
                         (fun (a : Ir.action) -> List.mem lbl a.Ir.deviations)
                         ir.Ir.actions)
                  then
                    Undetected
                      {
                        witness =
                          "no catalogue action targets this deviation, so the \
                           section-4.3 case analysis cannot place it";
                      }
                  else
                    combine
                      (single_seat_results lbl
                         ~stall:(lbl = Dev.Silent_in_construction))
            in
            (lbl, v))
          labels
      in
      (* the all-faithful product run: no-false-accusation + progress *)
      let (_ : scen_result) =
        scenario ~label:"all-faithful" ~has_deviant:false ~stall:false
          ~targets:no_targets ~covered:no_targets ~faithful:true ()
      in
      List.iter
        (fun (lbl, v) ->
          match v with
          | Undetected { witness } ->
              add_finding Check.Error "undetected-deviation" (Dev.to_string lbl)
                (Printf.sprintf
                   "deviation %S can escape its phase checkpoint: %s"
                   (Dev.to_string lbl) witness)
          | Truncated ->
              add_finding Check.Warning "exploration-truncated"
                (Dev.to_string lbl)
                (Printf.sprintf
                   "the %d-state bound ran out while exploring %S: its \
                    verdict is unknown"
                   bound (Dev.to_string lbl))
          | Detected _ | Exempt _ -> ())
        verdicts;
      Array.iteri
        (fun i occupied ->
          if not occupied then
            add_finding Check.Error "unexplored-state" m.states.(i)
              (Printf.sprintf
                 "state %S is never occupied by any node in any explored \
                  product execution: it cannot participate in the certified \
                  protocol"
                 m.states.(i)))
        covered_mark;
      let covered_states =
        List.filteri (fun i _ -> covered_mark.(i)) (Array.to_list m.states)
      in
      let elapsed_s = Clock.s_since t0 in
      if Obs.enabled obs then
        Obs.instant obs ~cat:"speccheck"
          ~args:
            [
              ("states", Json.Int !states_total);
              ("scenarios", Json.Int !scen_count);
              ("frontier_peak", Json.Int !frontier_max);
              ( "states_per_sec",
                Json.Float
                  (if elapsed_s > 0. then
                     float_of_int !states_total /. elapsed_s
                   else 0.) );
            ]
          "explore.done";
      {
        verdicts;
        findings = List.rev !findings;
        covered_states;
        stats =
          {
            states_explored = !states_total;
            frontier_peak = !frontier_max;
            scenarios = !scen_count;
            truncated =
              List.exists
                (fun (_, v) -> match v with Truncated -> true | _ -> false)
                verdicts;
            elapsed_s;
          };
      }

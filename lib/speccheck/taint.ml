type label = Public | Received | Private

let of_input = function
  | Ir.Protocol_state -> Public
  | Ir.Received_messages -> Received
  | Ir.Private_info -> Private

let to_string = function
  | Public -> "public"
  | Received -> "received"
  | Private -> "private"

let rank = function Public -> 0 | Received -> 1 | Private -> 2

let leq a b = rank a <= rank b

let join a b = if leq a b then b else a

let summary inputs =
  List.fold_left (fun acc i -> join acc (of_input i)) Public inputs

type observation = { action : string; deps : Ir.input list }

let input_to_string = function
  | Ir.Private_info -> "private-info"
  | Ir.Received_messages -> "received-messages"
  | Ir.Protocol_state -> "protocol-state"

let input_rank = function
  | Ir.Private_info -> 0
  | Ir.Received_messages -> 1
  | Ir.Protocol_state -> 2

let normalize inputs =
  List.sort_uniq (fun a b -> Int.compare (input_rank a) (input_rank b)) inputs

let names inputs = String.concat ", " (List.map input_to_string inputs)

let check (ir : Ir.t) ~observed =
  List.concat_map
    (fun { action; deps } ->
      match Ir.find_action ir action with
      | None -> []
      | Some a ->
          let declared = normalize a.Ir.inputs in
          let observed = normalize deps in
          let missing =
            List.filter (fun i -> not (List.mem i declared)) observed
          in
          let slack =
            List.filter (fun i -> not (List.mem i observed)) declared
          in
          let cls_name =
            match a.Ir.cls with
            | Some c -> Damd_core.Action.to_string c
            | None -> "unclassified"
          in
          let mismatch =
            if missing = [] then []
            else
              [
                {
                  Check.id = "decl-flow-mismatch";
                  severity = Check.Error;
                  location = action;
                  message =
                    Printf.sprintf
                      "%s action %S actually depends on {%s} (taint %s) but \
                       declares only {%s}: the static CC/AC case split is \
                       arguing about a different function than the one the \
                       node runs"
                      cls_name action (names missing)
                      (to_string (summary observed))
                      (names declared);
                };
              ]
          in
          let slack_findings =
            if slack = [] then []
            else
              [
                {
                  Check.id = "decl-flow-slack";
                  severity = Check.Warning;
                  location = action;
                  message =
                    Printf.sprintf
                      "action %S declares {%s} but no perturbation of %s ever \
                       reached its output: the annotation overclaims, or the \
                       implementation silently dropped a declared dependency"
                      action (names slack) (names slack);
                };
              ]
          in
          mismatch @ slack_findings)
    observed

module Action = Damd_core.Action

let phase_names =
  [ "construction-1"; "construction-2a"; "construction-2b"; "execution" ]

(* States of the suggested linear pass; each action advances one state. *)
let s_cost_announce = "cost-announce"
let s_cost_flood = "cost-flood"
let s_routing_forward = "routing-forward"
let s_routing_compute = "routing-compute"
let s_routing_mirror = "routing-mirror"
let s_pricing_forward = "pricing-forward"
let s_pricing_compute = "pricing-compute"
let s_pricing_mirror = "pricing-mirror"
let s_digest_report = "digest-report"
let s_exec_forward = "exec-forward"
let s_exec_settle = "exec-settle"
let s_halt = "halt"

let actions : Ir.action list =
  [
    {
      Ir.id = "declare-cost";
      descr = "declare own transit cost to neighbors";
      cls = Some Action.Information_revelation;
      inputs = [ Ir.Private_info ];
      rules = [ Rule.DATA1 ];
      mirrored = false;
      digested = true;
      deviations = [ Dev.Misreport_cost; Dev.Inconsistent_cost ];
    };
    {
      id = "flood-costs";
      descr = "flood other nodes' cost announcements";
      cls = Some Action.Message_passing;
      inputs = [ Ir.Received_messages; Ir.Protocol_state ];
      rules = [ Rule.DATA1 ];
      mirrored = false;
      digested = true;
      deviations = [ Dev.Corrupt_cost_forward ];
    };
    {
      id = "forward-routing-copies";
      descr = "forward received routing updates to all checkers";
      cls = Some Action.Message_passing;
      inputs = [ Ir.Received_messages ];
      rules = [ Rule.PRINC1 ];
      mirrored = false;
      digested = false;
      deviations =
        [
          Dev.Drop_routing_copies;
          Dev.Corrupt_routing_copies;
          Dev.Spoof_routing_update;
          Dev.Combined_routing_attack;
          Dev.Byzantine_arbitrary;
        ];
    };
    {
      id = "recompute-routing";
      descr = "recompute LCPs and announce the routing table";
      cls = Some Action.Computation;
      inputs = [ Ir.Received_messages; Ir.Protocol_state ];
      rules = [ Rule.PRINC1; Rule.BANK1 ];
      mirrored = true;
      digested = true;
      deviations =
        [ Dev.Miscompute_routing; Dev.Silent_in_construction; Dev.Byzantine_arbitrary ];
    };
    {
      id = "mirror-routing";
      descr = "mirror each neighbor-principal's routing computation";
      cls = Some Action.Computation;
      inputs = [ Ir.Received_messages; Ir.Protocol_state ];
      rules = [ Rule.CHECK1; Rule.BANK1 ];
      (* the principal's own announcement is the mirror's counter-digest *)
      mirrored = true;
      digested = true;
      deviations = [ Dev.Lying_checker; Dev.Collude_with ];
    };
    {
      id = "forward-pricing-copies";
      descr = "forward received pricing updates to all checkers";
      cls = Some Action.Message_passing;
      inputs = [ Ir.Received_messages ];
      rules = [ Rule.PRINC2 ];
      mirrored = false;
      digested = false;
      deviations =
        [
          Dev.Drop_pricing_copies;
          Dev.Corrupt_pricing_copies;
          Dev.Spoof_pricing_update;
          Dev.Combined_pricing_attack;
          Dev.Byzantine_arbitrary;
        ];
    };
    {
      id = "recompute-pricing";
      descr = "recompute prices (with identity tags) and announce DATA3*";
      cls = Some Action.Computation;
      inputs = [ Ir.Received_messages; Ir.Protocol_state ];
      rules = [ Rule.PRINC2; Rule.BANK2 ];
      mirrored = true;
      digested = true;
      deviations =
        [ Dev.Miscompute_pricing; Dev.Silent_in_construction; Dev.Byzantine_arbitrary ];
    };
    {
      id = "mirror-pricing";
      descr = "mirror each neighbor-principal's pricing computation";
      cls = Some Action.Computation;
      inputs = [ Ir.Received_messages; Ir.Protocol_state ];
      rules = [ Rule.CHECK2; Rule.BANK2 ];
      mirrored = true;
      digested = true;
      deviations = [ Dev.Lying_checker; Dev.Collude_with ];
    };
    {
      id = "report-digests";
      descr = "report table digests to the bank (signed)";
      cls = Some Action.Computation;
      inputs = [ Ir.Protocol_state ];
      rules = [ Rule.BANK1; Rule.BANK2 ];
      mirrored = true;
      digested = true;
      deviations = [ Dev.Lying_checker; Dev.Collude_with ];
    };
    {
      id = "forward-packets";
      descr = "forward packets along certified lowest-cost paths";
      cls = Some Action.Message_passing;
      inputs = [ Ir.Received_messages; Ir.Protocol_state ];
      rules = [ Rule.EXEC ];
      mirrored = false;
      digested = false;
      deviations = [ Dev.Misroute_packets; Dev.Byzantine_arbitrary ];
    };
    {
      id = "report-payments";
      descr = "tally and report DATA4 payments to the bank (signed)";
      cls = Some Action.Computation;
      inputs = [ Ir.Protocol_state; Ir.Private_info ];
      rules = [ Rule.EXEC ];
      (* the bank itself recomputes DATA4 from the certified tables *)
      mirrored = true;
      digested = true;
      deviations =
        [ Dev.Underreport_payments; Dev.Misattribute_payments; Dev.Byzantine_arbitrary ];
    };
  ]

(* The suggested play: one transition per action, in protocol order. *)
let chain =
  [
    (s_cost_announce, "declare-cost", s_cost_flood);
    (s_cost_flood, "flood-costs", s_routing_forward);
    (s_routing_forward, "forward-routing-copies", s_routing_compute);
    (s_routing_compute, "recompute-routing", s_routing_mirror);
    (s_routing_mirror, "mirror-routing", s_pricing_forward);
    (s_pricing_forward, "forward-pricing-copies", s_pricing_compute);
    (s_pricing_compute, "recompute-pricing", s_pricing_mirror);
    (s_pricing_mirror, "mirror-pricing", s_digest_report);
    (s_digest_report, "report-digests", s_exec_forward);
    (s_exec_forward, "forward-packets", s_exec_settle);
    (s_exec_settle, "report-payments", s_halt);
  ]

let ir : Ir.t =
  {
    Ir.name = "extended-fpss";
    states =
      [
        s_cost_announce;
        s_cost_flood;
        s_routing_forward;
        s_routing_compute;
        s_routing_mirror;
        s_pricing_forward;
        s_pricing_compute;
        s_pricing_mirror;
        s_digest_report;
        s_exec_forward;
        s_exec_settle;
        s_halt;
      ];
    initial = s_cost_announce;
    actions;
    transitions =
      List.map (fun (src, act, dst) -> { Ir.src; act; dst }) chain;
    suggested = List.map (fun (src, act, _) -> (src, act)) chain;
    phases =
      [
        {
          Ir.pname = "construction-1";
          members = [ s_cost_announce; s_cost_flood ];
          checkpoint = Some { Ir.certifier = Rule.DATA1 };
        };
        {
          pname = "construction-2a";
          members = [ s_routing_forward; s_routing_compute; s_routing_mirror ];
          checkpoint = Some { Ir.certifier = Rule.BANK1 };
        };
        {
          pname = "construction-2b";
          members =
            [
              s_pricing_forward;
              s_pricing_compute;
              s_pricing_mirror;
              s_digest_report;
            ];
          checkpoint = Some { Ir.certifier = Rule.BANK2 };
        };
        {
          pname = "execution";
          members = [ s_exec_forward; s_exec_settle ];
          checkpoint = Some { Ir.certifier = Rule.EXEC };
        };
      ];
  }

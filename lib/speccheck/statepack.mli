(** Packed canonical product states for [Explore]'s dedup tables.

    The BFS dedups millions of canonical states per scenario, so the key
    representation dominates its allocation and hash cost. A [codec] is
    sized once per (IR, topology) pair from the three dimensions that
    bound every field — [ns] chain states, [n] seats, [nphases] phases —
    and assigns each field a fixed-width lane: [ns] count lanes wide
    enough for [0..n], one deviant lane ([dev + 1], so "no deviant"
    packs as 0), one phase-cursor lane, and two [nphases]-bit mask
    lanes. When the lanes total ≤ 63 bits the whole state packs into one
    immediate int (no allocation, O(1) hash — the common case: the stock
    spec on fig1 needs 51 bits, a 12-state chain at n = 12 exactly 63);
    otherwise it packs into a fixed-width string a fraction of the size
    of the decimal join the first verifier used. Both packings are
    injective by construction; [structural] remains as the verbose
    oracle for the opt-in collision audit and the QCheck differential. *)

type state = {
  dev : int;  (** deviant's chain position; -1 = no deviant seated *)
  cnt : int array;  (** faithful seats per chain state, length [ns] *)
  ph : int;  (** phase cursor; [nphases] = every phase certified *)
  acted : int;  (** per-phase "the deviation executed" bitmask *)
  evid : int;  (** per-phase "checkpoint evidence deposited" bitmask *)
}

type codec

val make : ns:int -> n:int -> nphases:int -> codec
(** Sizes the lanes for states with [ns]-length [cnt] vectors, counts in
    [0..n], and phase cursor in [0..nphases]. Raises [Invalid_argument]
    when [nphases > 16] (the mask lanes of the wide encoding, like the
    acted/evid bitmasks themselves, are 16-bit). *)

val fits_int : codec -> bool
(** Whether the packed layout fits a native int (≤ 63 bits — packing
    exactly 63 spills into the sign bit, harmless for a key). *)

val pack_int : codec -> state -> int
(** Injective when [fits_int]; unspecified garbage otherwise. *)

val pack_string : codec -> state -> string
(** Injective fixed-width byte encoding, for layouts wider than 63 bits. *)

val structural : state -> string
(** The delimited decimal rendering — the audit oracle: two states are
    equal iff their structural keys are. *)

exception Collision of string * string
(** Raised by [Explore]'s collision audit when two structurally distinct
    states produce the same packed key; carries both structural
    renderings. Impossible unless the codec is broken — the audit is a
    regression tripwire, not a runtime guard. *)

val bits_for : int -> int
(** [bits_for v] is the smallest width (≥ 1) with [2^bits - 1 >= v]. *)

module Json = Damd_util.Json

let finding_json (f : Check.finding) =
  Json.Obj
    [
      ("id", Json.String f.Check.id);
      ("severity", Json.String (Check.severity_to_string f.Check.severity));
      ("location", Json.String f.Check.location);
      ("explanation", Json.String f.Check.message);
    ]

let findings_json findings = Json.List (List.map finding_json findings)

let provenance ~schema ~spec ~topology ~mutation ~errors =
  [
    ("schema", Json.String schema);
    ("spec", Json.String spec);
    ("topology", Json.String topology);
    ( "mutation",
      match mutation with None -> Json.Null | Some m -> Json.String m );
    ("errors", Json.Int errors);
  ]

(** The lint driver: run every static check and emit a [damd-lint/1]
    report.

    This is what [damd_cli lint] wraps: IR-level rules ([Check.check_ir],
    with the real adversary-library labels for cross-consistency), the
    topology rule ([Check.check_topology]), and optionally a seeded
    mutation first ([Mutate]). Exit-code contract: any error-severity
    finding fails the gate. *)

type report = {
  spec : string;  (** [Ir.t.name] of the linted spec *)
  topology : string;  (** human-readable description of the lint graph *)
  mutation : string option;  (** the seeded mutation applied, if any *)
  findings : Check.finding list;
}

val run :
  ?adversary:Dev.t list ->
  ?mutation:string ->
  graph:Damd_graph.Graph.t ->
  topology:string ->
  Ir.t ->
  report
(** Raises [Invalid_argument] on an unknown mutation name. *)

val error_count : report -> int

val exit_code : report -> int
(** 0 when [error_count] is 0, else 1. *)

val to_json : report -> Damd_util.Json.t
(** The [damd-lint/1] document: schema tag, spec/topology/mutation
    provenance, and one record per finding (id, severity, location,
    explanation) — see DESIGN.md §11. *)

(** The static-analysis driver: [Absint]'s flow summaries and detection
    frontier, optionally cross-checked against [Explore], under the
    [Lint]/[Verify] exit-code contract.

    This is what [damd_cli analyze] wraps. Where [Lint] reads annotations
    and [Verify] measures behavior, [Analyze] *derives* the faithfulness
    argument from the IR's information-flow structure alone — and, with
    [differential] on, holds the derivation accountable to the measured
    product space ([static-frontier-gap] on any disagreement). The
    [damd-analyze/1] schema, DESIGN.md §17. *)

type report = {
  spec : string;  (** [Ir.t.name] of the analyzed spec *)
  topology : string;  (** human-readable description of the graph *)
  mutation : string option;  (** the seeded mutation applied, if any *)
  result : Absint.t;
  explore : Explore.outcome option;
      (** the dynamic outcome, when [differential] ran *)
  findings : Check.finding list;
      (** [Absint.run] findings @ differential findings, in that order *)
}

val run :
  ?adversary:Dev.t list ->
  ?mutation:string ->
  ?bound:int ->
  ?differential:bool ->
  ?explore_bound:int ->
  ?obs:Damd_obs.Obs.t ->
  graph:Damd_graph.Graph.t ->
  topology:string ->
  Ir.t ->
  report
(** Raises [Invalid_argument] on an unknown mutation name (same contract
    as [Lint.run] / [Verify.run], over the full [Mutate.names] corpus).
    [bound] is [Absint.run]'s abstract-state cap; [differential] (default
    false — the static pass alone is the bench-measured fast path) also
    runs [Explore.run] (capped by [explore_bound]) and appends the
    cross-check findings. [obs] is threaded to both engines. *)

val blind_spots : report -> int
(** Number of frontier entries with an [Sblind] verdict. *)

val frontier_sound : report -> bool option
(** [None] when the differential did not run; otherwise whether no
    [static-frontier-gap] finding was produced. *)

val error_count : report -> int

val exit_code : report -> int
(** 0 when [error_count] is 0, else 1. *)

val to_json : report -> Damd_util.Json.t
(** The [damd-analyze/1] document: the shared provenance head, abstract
    stats, the two property fields ([blind_spots], [frontier_sound]),
    the per-action flow table (taint + provenance path), one record per
    frontier entry (deviation, static verdict, dependence-derived
    certifier/phase/distance), and the shared findings block. *)

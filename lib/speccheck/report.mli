(** The shared findings-JSON emitter behind the three report schemas.

    [damd-lint/1], [damd-verify/1], and [damd-analyze/1] documents all
    carry the same provenance head (schema tag, spec, topology, applied
    mutation, error count) and render findings with the same four-field
    record; this module is the single implementation so the three
    subcommands cannot drift apart. *)

val finding_json : Check.finding -> Damd_util.Json.t
(** One finding as the canonical [{id; severity; location; explanation}]
    record. *)

val findings_json : Check.finding list -> Damd_util.Json.t

val provenance :
  schema:string ->
  spec:string ->
  topology:string ->
  mutation:string option ->
  errors:int ->
  (string * Damd_util.Json.t) list
(** The common document head, in field order. *)

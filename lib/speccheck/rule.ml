type t = DATA1 | PRINC1 | CHECK1 | BANK1 | PRINC2 | CHECK2 | BANK2 | EXEC

let all = [ DATA1; PRINC1; CHECK1; BANK1; PRINC2; CHECK2; BANK2; EXEC ]

let to_string = function
  | DATA1 -> "DATA1"
  | PRINC1 -> "PRINC1"
  | CHECK1 -> "CHECK1"
  | BANK1 -> "BANK1"
  | PRINC2 -> "PRINC2"
  | CHECK2 -> "CHECK2"
  | BANK2 -> "BANK2"
  | EXEC -> "EXEC"

let of_string s = List.find_opt (fun r -> to_string r = s) all

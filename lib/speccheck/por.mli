(** Partial-order reduction for [Explore]'s product BFS.

    A faithful class step is {e invisible} when it makes progress
    strictly inside the open phase: source ≠ destination and both carry
    the current phase index. Such a step commutes with every other
    enabled step — it cannot move the deviant's seat, cannot touch the
    acted/evidence bitmasks, cannot enable or disable the phase
    checkpoint (the phase stays non-empty across it), and cannot trigger
    a reentry finding (its destination is in the current phase, never an
    earlier one). Interleavings of the same invisible-step multiset
    reach the same canonical state by equal-length paths, so [Explore]
    may expand only the lowest-indexed invisible class at each state:
    reachability, BFS depths, detection events, and findings are all
    preserved. Deviant steps, phase-exiting (visible) steps, and
    checkpoint steps are never pruned.

    Soundness needs one structural guard, checked once per machine:
    draining a phase through a single canonical order must terminate, so
    if the suggested-play graph restricted to any one phase has a cycle
    the reduction switches itself off ([active] = false) and the BFS
    falls back to full interleaving. Cycles that cross phases or occur
    after the last checkpoint are harmless — the steps involved are
    visible, or the phase cursor is exhausted, so they are never pruned.
    The QCheck differential in the test suite checks POR-on ≡ POR-off
    verdicts and findings over randomly mutated IRs. *)

type ctx = {
  phase_of : int array;  (** phase index per chain state, -1 = none *)
  dst_of : int array;  (** suggested destination, self when undefined *)
  has_sugg : bool array;
  nphases : int;
  active : bool;  (** the in-phase suggested-play graph is acyclic *)
}

val make :
  phase_of:int array ->
  dst_of:int array ->
  has_sugg:bool array ->
  nphases:int ->
  ctx
(** Builds the context and runs the acyclicity guard (linear walk with
    tricolor marking over the ≤ ns in-phase suggested edges). *)

val invisible : ctx -> ph:int -> int -> bool
(** [invisible ctx ~ph i]: a faithful step out of chain state [i] is
    invisible at phase cursor [ph]. Implies eligibility ([phase_of i =
    ph] with [ph] still below [nphases]). *)

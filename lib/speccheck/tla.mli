(** A certifying TLA+ backend: render an [Ir.t] as a TLC-checkable
    module, so [Explore]'s verdicts can be cross-checked by an
    independent model checker on small instances.

    The emitted module is deviation-agnostic: the deviation under test
    arrives through CONSTANTS ([TargetStates], [CoveredStates], [Stall],
    [DevSeat], [N]), so one module serves the whole §4.3 catalogue and
    [cfg] instantiates it per deviation. The mapping (DESIGN.md §16):

    - chain states → the [States] string set and per-seat [pos] variable;
    - the suggested play → [Faithful(i)]/[Deviant] next-state actions
      (undefined transitions self-loop, the [Compile.machine] contract);
    - phases → the [ph] cursor and the [Checkpoint] action, which fires
      exactly when no seat's state belongs to the open phase;
    - the §4.3 claims → the [DetectionComplete] and [NoFalseAccusation]
      state invariants over the per-phase acted/evidence sets.

    Omissions ([Stall = TRUE]) disable the targeted step, so the phase
    barrier wedges: that is [Explore]'s progress-timeout detection, and
    under TLC it surfaces as a deadlock — stall instances should be run
    with deadlock checking off (or the deadlock read as the detection).

    The golden files under test/ pin the emission byte-for-byte; a real
    TLC run is gated behind the [DAMD_TLC] env var in the test rules. *)

val emit : Ir.t -> string
(** The TLA+ module text. Deterministic: states, actions, and phases
    render in IR declaration order. The module name is the IR name with
    non-alphanumerics mapped to ['_'] (state names stay verbatim — they
    live inside TLA+ strings). *)

val cfg :
  Ir.t ->
  deviation:Dev.t ->
  nodes:int ->
  seat:int ->
  stall:bool ->
  honest:bool ->
  string
(** The paired TLC configuration: instantiates [N]/[DevSeat] and
    evaluates the deviation's target and coverage sets at emission time
    ([honest] is the checker-neighborhood assumption fed to
    [Explore.covered_action]; [seat] 0 = the all-faithful product). *)

val target_states : Ir.t -> Dev.t -> string list
(** States whose suggested action the deviation targets — the
    state-level view of [Explore]'s target mask, in declaration order. *)

val covered_states : Ir.t -> Dev.t -> honest:bool -> string list
(** The targeted states whose deviant execution deposits checkpoint
    evidence under the given neighborhood-honesty assumption. *)

val sanitize : string -> string
(** Maps every character outside [[A-Za-z0-9_]] to ['_'] — the TLA+
    module-name restriction. *)

type t =
  | Faithful
  | Misreport_cost
  | Inconsistent_cost
  | Corrupt_cost_forward
  | Drop_routing_copies
  | Drop_pricing_copies
  | Corrupt_routing_copies
  | Corrupt_pricing_copies
  | Spoof_routing_update
  | Spoof_pricing_update
  | Miscompute_routing
  | Miscompute_pricing
  | Underreport_payments
  | Misroute_packets
  | Misattribute_payments
  | Silent_in_construction
  | Combined_routing_attack
  | Combined_pricing_attack
  | Lying_checker
  | Collude_with
  | Byzantine_arbitrary

let all =
  [
    Faithful;
    Misreport_cost;
    Inconsistent_cost;
    Corrupt_cost_forward;
    Drop_routing_copies;
    Drop_pricing_copies;
    Corrupt_routing_copies;
    Corrupt_pricing_copies;
    Spoof_routing_update;
    Spoof_pricing_update;
    Miscompute_routing;
    Miscompute_pricing;
    Underreport_payments;
    Misroute_packets;
    Misattribute_payments;
    Silent_in_construction;
    Combined_routing_attack;
    Combined_pricing_attack;
    Lying_checker;
    Collude_with;
    Byzantine_arbitrary;
  ]

let to_string = function
  | Faithful -> "faithful"
  | Misreport_cost -> "misreport-cost"
  | Inconsistent_cost -> "inconsistent-cost"
  | Corrupt_cost_forward -> "corrupt-cost-forward"
  | Drop_routing_copies -> "drop-routing-copies"
  | Drop_pricing_copies -> "drop-pricing-copies"
  | Corrupt_routing_copies -> "corrupt-routing-copies"
  | Corrupt_pricing_copies -> "corrupt-pricing-copies"
  | Spoof_routing_update -> "spoof-routing-update"
  | Spoof_pricing_update -> "spoof-pricing-update"
  | Miscompute_routing -> "miscompute-routing"
  | Miscompute_pricing -> "miscompute-pricing"
  | Underreport_payments -> "underreport-payments"
  | Misroute_packets -> "misroute-packets"
  | Misattribute_payments -> "misattribute-payments"
  | Silent_in_construction -> "silent-in-construction"
  | Combined_routing_attack -> "combined-routing-attack"
  | Combined_pricing_attack -> "combined-pricing-attack"
  | Lying_checker -> "lying-checker"
  | Collude_with -> "collude-with"
  | Byzantine_arbitrary -> "byzantine-arbitrary"

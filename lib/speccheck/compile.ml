module Sm = Damd_core.State_machine
module Action = Damd_core.Action

let machine (ir : Ir.t) : (string, string) Sm.t =
  {
    Sm.initial = ir.Ir.initial;
    transition =
      (fun state act ->
        match Ir.step ir state act with Some dst -> dst | None -> state);
    suggested = (fun state -> Ir.suggested_action ir state);
    classify =
      (fun act ->
        match Ir.find_action ir act with
        | Some { Ir.cls = Some c; _ } -> c
        | Some { Ir.cls = None; _ } | None -> Action.Internal);
  }

let suggested_path ir ~max_steps =
  let m = machine ir in
  List.map (fun s -> s.Sm.action) (Sm.trace ~max_steps m)

(** The static checker suite: Prop. 2's structural preconditions as
    executable rules over the spec IR.

    Every rule has a stable id (the [id] field below, documented in
    DESIGN.md §11) so reports, seeded mutations, and CI assertions can
    reference findings without string-matching prose. Severity [Error]
    means the property the faithfulness proof leans on is absent — the
    lint gate exits non-zero; [Warning] flags suspicious but non-fatal
    shape; [Info] is narrative.

    Rule inventory:
    - well-formedness: [duplicate-id], [undefined-ref]
    - state-space: [dead-state] (unreachable), [unused-action] (warning),
      [non-termination] (suggested play never halts)
    - classification: [unclassified-action] — §3.4 totality
    - phase discipline (§3.8–3.9): [phase-overlap], [phase-gap] (warning),
      [multi-phase-action] (warning — an action whose transitions span
      more than one phase, straddling a checkpoint),
      [missing-checkpoint] — every phase ends in a certified checkpoint
    - strong-CC candidacy (Def. 12): [cc-private-leak] — a
      message-passing action may depend only on received messages
    - strong-AC candidacy (Def. 13): [ac-unmirrored], [ac-undigested] —
      every computational action is mirrored by a checker rule and covered
      by a bank digest
    - deviation cross-consistency: [orphan-deviation] (an adversary
      constructor no catalogue action targets), [unmapped-deviation] (a
      targeted label with no adversary constructor)
    - topology: [checker-cut] — a principal without the 2-connected
      checker neighborhood [Adversary.detectable_in] assumes *)

type severity = Error | Warning | Info

type finding = {
  id : string;  (** stable rule id, e.g. ["missing-checkpoint"] *)
  severity : severity;
  location : string;  (** state / action / phase / node the rule fired on *)
  message : string;  (** one-sentence explanation *)
}

val severity_to_string : severity -> string

val check_ir : ?adversary:Dev.t list -> Ir.t -> finding list
(** All IR-level rules. [adversary] is the label set of the concrete
    adversary library (default [Dev.all]): the deviation cross-consistency
    rules compare the IR against it in both directions. *)

val check_topology : Damd_graph.Graph.t -> finding list
(** The [checker-cut] rule: every principal must keep at least one honest
    checker after removing any single node, i.e. the graph is biconnected
    (computed statically via [Damd_graph.Biconnect], no simulation). *)

val errors : finding list -> finding list
(** The error-severity subset — non-empty means the lint gate fails. *)

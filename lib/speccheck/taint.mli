(** The provenance lattice and the declared-vs-actual dependency check.

    The linter's strong-CC rule ([cc-private-leak]) trusts the IR's
    [Ir.action.inputs] annotation; a wrong annotation silently vacates the
    Def. 12 argument. This module closes that gap: a harness (see
    [Damd_faithful.Flow]) runs the *real* protocol handlers twice per input
    class — once on a baseline world, once with that class perturbed — and
    the observed output difference is the action's true dependency set.
    [check] then compares observed against declared.

    The three-point chain [Private ⊑ Received ⊑ Public] orders values by
    how publicly reconstructible their provenance is: a value derived only
    from certified or locally accumulated protocol state is [Public]
    (anyone holding the certificates can recompute it), one incorporating
    message payloads is [Received] (only the participants of those
    exchanges can), and one touching the node's own type is [Private]
    (only the node itself can). Combining values moves *down* the chain —
    mixing anything with private data yields private data — so we follow
    taint-analysis convention and read the chain upside down as a taint
    order with [Private] on top; [join] is the least upper bound of that
    reading (the most private constituent wins). *)

type label = Public | Received | Private
(** Declared in increasing taint order, so the derived polymorphic order
    is never used — [leq]/[join] are explicit. *)

val of_input : Ir.input -> label
(** [Protocol_state -> Public], [Received_messages -> Received],
    [Private_info -> Private]. *)

val to_string : label -> string

val leq : label -> label -> bool
(** The taint order: [Public ⊑ Received ⊑ Private] (the ISSUE's chain read
    from the provenance side). *)

val join : label -> label -> label
(** Least upper bound under [leq]: the more private of the two. *)

val summary : Ir.input list -> label
(** Join over [of_input] — [Public] for the empty list (a constant is
    reconstructible by anyone). *)

type observation = {
  action : string;  (** IR action id the harness exercised *)
  deps : Ir.input list;
      (** input classes whose perturbation changed the action's observed
          output — the inferred true dependency set *)
}

val input_to_string : Ir.input -> string
(** Kebab-case name, e.g. ["private-info"] — shared by reports and
    messages. *)

val check : Ir.t -> observed:observation list -> Check.finding list
(** Compare each observation against the matching action's declared
    [inputs]:

    - [decl-flow-mismatch] (error): an observed dependency the declaration
      omits. The dangerous direction — e.g. a message-passing action whose
      payload actually reads [Private_info] is a genuine Def. 12 violation
      that [cc-private-leak] (which only reads the annotation) cannot see.
    - [decl-flow-slack] (warning): a declared input that never flowed in
      the harness. Harmless for soundness but the annotation overclaims,
      which weakens the IC/CC/AC case split's precision.

    Observations naming an action the IR does not declare are ignored
    (mutations neither add nor rename actions); IR actions without an
    observation produce no finding — the stock-agreement test, not the
    linter, guards harness coverage. *)

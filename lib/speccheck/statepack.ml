(* Packed canonical product states for [Explore]'s dedup tables.

   A canonical product state is the deviant's chain position, a per-state
   count of the faithful (indistinguishable) seats, the phase cursor, and
   the per-phase acted/evidence bitmasks. The BFS dedups millions of these
   per scenario, so the key must be cheap: when the whole state fits in 63
   bits it packs into a single immediate int (no allocation, O(1) hash);
   otherwise it packs into a fixed-width string, one byte-group per field.
   Both packings are injective by construction — every field gets a lane
   wide enough for its full range — and [structural] renders the verbose
   decimal join the first verifier used, kept as the collision-audit
   oracle and QCheck differential target. *)

type state = {
  dev : int;  (* deviant's chain position; -1 = no deviant seated *)
  cnt : int array;  (* faithful seats per chain state, length [ns] *)
  ph : int;  (* phase cursor; [nphases] = every phase certified *)
  acted : int;  (* per-phase "the deviation executed" bitmask *)
  evid : int;  (* per-phase "checkpoint evidence deposited" bitmask *)
}

(* Smallest width such that [2^bits - 1 >= v]; at least one lane bit so a
   zero-range field still occupies a slot (keeps the layout uniform). *)
let bits_for v =
  let rec go b top = if top >= v then b else go (b + 1) ((top * 2) + 1) in
  go 1 1

type codec = {
  ns : int;  (* chain states *)
  bits_cnt : int;  (* per-count lane: counts range over 0..n *)
  bits_dev : int;  (* deviant lane stores dev+1, range 0..ns *)
  bits_ph : int;  (* phase cursor, range 0..nphases *)
  bits_mask : int;  (* acted/evid lanes, nphases bits each *)
  total_bits : int;
  cnt_bytes : int;  (* wide encoding: bytes per count *)
  wide_len : int;  (* wide encoding: total string length *)
}

let make ~ns ~n ~nphases =
  if nphases > 16 then
    invalid_arg "Statepack.make: more than 16 phases (mask lanes are 16-bit)";
  let bits_cnt = bits_for n in
  let bits_dev = bits_for ns in
  let bits_ph = bits_for nphases in
  let bits_mask = max 1 nphases in
  let total_bits = (ns * bits_cnt) + bits_dev + bits_ph + (2 * bits_mask) in
  let cnt_bytes = if n <= 0xff then 1 else 2 in
  let wide_len = (ns * cnt_bytes) + 2 + 1 + 2 + 2 in
  { ns; bits_cnt; bits_dev; bits_ph; bits_mask; total_bits; cnt_bytes; wide_len }

(* A native OCaml int carries 63 payload bits; packing exactly 63 spills
   into the sign bit, which is harmless for a hash/equality key. *)
let fits_int c = c.total_bits <= 63

let pack_int c (s : state) =
  let k = ref 0 in
  for i = 0 to c.ns - 1 do
    k := (!k lsl c.bits_cnt) lor s.cnt.(i)
  done;
  k := (!k lsl c.bits_dev) lor (s.dev + 1);
  k := (!k lsl c.bits_ph) lor s.ph;
  k := (!k lsl c.bits_mask) lor s.acted;
  (!k lsl c.bits_mask) lor s.evid

let pack_string c (s : state) =
  let b = Bytes.create c.wide_len in
  let pos = ref 0 in
  let put v =
    Bytes.unsafe_set b !pos (Char.unsafe_chr (v land 0xff));
    incr pos
  in
  let put16 v =
    put v;
    put (v lsr 8)
  in
  if c.cnt_bytes = 1 then Array.iter put s.cnt else Array.iter put16 s.cnt;
  put16 (s.dev + 1);
  put s.ph;
  put16 s.acted;
  put16 s.evid;
  Bytes.unsafe_to_string b

(* The verbose structural key: the audit oracle. Unambiguous because every
   field is delimited. *)
let structural (s : state) =
  let b = Buffer.create 48 in
  Buffer.add_string b (string_of_int s.dev);
  Buffer.add_char b '|';
  Array.iter
    (fun c ->
      Buffer.add_string b (string_of_int c);
      Buffer.add_char b ',')
    s.cnt;
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int s.ph);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int s.acted);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int s.evid);
  Buffer.contents b

(* Raised by the collision audit: two structurally distinct states mapped
   to the same packed key. Carries both structural renderings. *)
exception Collision of string * string

module Graph = Damd_graph.Graph
module Biconnect = Damd_graph.Biconnect

let all =
  [
    ("drop-checkpoint", "missing-checkpoint");
    ("unclassify-action", "unclassified-action");
    ("orphan-deviation", "orphan-deviation");
    ("leak-private-info", "cc-private-leak");
    ("unmirror-computation", "ac-unmirrored");
    ("undigest-computation", "ac-undigested");
    ("cut-checker-edge", "checker-cut");
    ("dead-state", "dead-state");
    ("loop-forever", "non-termination");
  ]

let expected name = List.assoc_opt name all

(* The dynamic counterpart: the flow/exploration finding [Verify.run] must
   additionally produce for each mutation. Annotation-level mutations
   surface as escapes in the product space; the input-annotation mutation
   surfaces in the taint diff; the shape mutations surface as coverage and
   reentry violations. *)
let all_verify =
  [
    ("drop-checkpoint", "undetected-deviation");
    ("unclassify-action", "undetected-deviation");
    ("orphan-deviation", "undetected-deviation");
    ("leak-private-info", "decl-flow-slack");
    ("unmirror-computation", "undetected-deviation");
    ("undigest-computation", "undetected-deviation");
    ("cut-checker-edge", "undetected-deviation");
    ("dead-state", "unexplored-state");
    ("loop-forever", "phase-reentry");
  ]

let expected_verify name = List.assoc_opt name all_verify

(* The static-analysis counterpart: the finding [Analyze.run] must produce
   for each mutation. The last three mutations are invisible to the
   syntactic checks (lint exits 0 on them) and exist precisely to exercise
   the flow-sensitive layer: a private value laundered through an
   intermediate computation, a leak through the digest channel, and a
   checkpoint whose evidence sources are silently defanged. *)
let all_analyze =
  [
    ("drop-checkpoint", "certifier-blind-spot");
    ("unclassify-action", "certifier-blind-spot");
    ("orphan-deviation", "certifier-blind-spot");
    ("leak-private-info", "cc-private-leak-flow");
    ("unmirror-computation", "ac-unmirrored-flow");
    ("undigest-computation", "ac-undigested-flow");
    ("cut-checker-edge", "certifier-blind-spot");
    ("dead-state", "unexplored-state");
    ("loop-forever", "phase-reentry");
    ("launder-private-taint", "cc-private-leak-flow");
    ("private-digest-channel", "cc-private-leak-flow");
    ("starve-checkpoint-evidence", "checkpoint-starved");
  ]

let expected_analyze name = List.assoc_opt name all_analyze

let names = List.map fst all_analyze

let known name = List.mem_assoc name all_analyze

let map_action id f (ir : Ir.t) =
  {
    ir with
    Ir.actions =
      List.map
        (fun (a : Ir.action) -> if a.Ir.id = id then f a else a)
        ir.Ir.actions;
  }

let map_phase pname f (ir : Ir.t) =
  {
    ir with
    Ir.phases =
      List.map
        (fun (p : Ir.phase) -> if p.Ir.pname = pname then f p else p)
        ir.Ir.phases;
  }

(* Remove edges (in sorted order) until the graph stops being 2-connected:
   the first cut that matters, whatever the topology. *)
let cut_checker_edge g =
  let costs = Graph.costs g in
  let n = Graph.n g in
  let rec go edges =
    let g' = Graph.create ~n ~costs ~edges in
    if not (Biconnect.is_biconnected g') then g'
    else match edges with [] -> g' | _ :: rest -> go rest
  in
  go (List.tl (Graph.edges g))

let apply name ((ir : Ir.t), g) =
  match name with
  | "drop-checkpoint" ->
      Some
        ( map_phase "construction-2a"
            (fun p -> { p with Ir.checkpoint = None })
            ir,
          g )
  | "unclassify-action" ->
      Some (map_action "recompute-routing" (fun a -> { a with Ir.cls = None }) ir, g)
  | "orphan-deviation" ->
      Some
        ( map_action "forward-packets"
            (fun a ->
              {
                a with
                Ir.deviations =
                  List.filter (fun d -> d <> Dev.Misroute_packets) a.Ir.deviations;
              })
            ir,
          g )
  | "leak-private-info" ->
      Some
        ( map_action "forward-routing-copies"
            (fun a -> { a with Ir.inputs = Ir.Private_info :: a.Ir.inputs })
            ir,
          g )
  | "unmirror-computation" ->
      Some
        ( map_action "recompute-pricing"
            (fun a -> { a with Ir.mirrored = false })
            ir,
          g )
  | "undigest-computation" ->
      Some
        ( map_action "report-payments"
            (fun a -> { a with Ir.digested = false })
            ir,
          g )
  | "cut-checker-edge" -> Some (ir, cut_checker_edge g)
  | "launder-private-taint" ->
      (* the private cost flows into the mirrored routing computation,
         whose output then reaches later message-passing actions through
         protocol state — every individual declaration still looks
         innocent, so the syntactic CC scan stays silent *)
      Some
        ( map_action "recompute-routing"
            (fun a -> { a with Ir.inputs = Ir.Private_info :: a.Ir.inputs })
            ir,
          g )
  | "private-digest-channel" ->
      (* same laundering, but through the bank-digest reporting channel *)
      Some
        ( map_action "report-digests"
            (fun a -> { a with Ir.inputs = Ir.Private_info :: a.Ir.inputs })
            ir,
          g )
  | "starve-checkpoint-evidence" ->
      (* construction-1 keeps its DATA1 certifier, but both of the phase's
         evidence sources are defanged: the cost announcement loses its
         digest and the flood loses its enforcement rule — syntactically
         legal (digests and rules are optional), statically fatal *)
      Some
        ( map_action "declare-cost"
            (fun a -> { a with Ir.digested = false })
            (map_action "flood-costs" (fun a -> { a with Ir.rules = [] }) ir),
          g )
  | "dead-state" -> Some ({ ir with Ir.states = ir.Ir.states @ [ "limbo" ] }, g)
  | "loop-forever" ->
      (* suggested play at the halting state loops back into execution *)
      Some
        ( {
            ir with
            Ir.transitions =
              ir.Ir.transitions
              @ [ { Ir.src = "halt"; act = "forward-packets"; dst = "exec-forward" } ];
            suggested = ir.Ir.suggested @ [ ("halt", "forward-packets") ];
          },
          g )
  | _ -> None

type input = Private_info | Received_messages | Protocol_state

type action = {
  id : string;
  descr : string;
  cls : Damd_core.Action.t option;
  inputs : input list;
  rules : Rule.t list;
  mirrored : bool;
  digested : bool;
  deviations : Dev.t list;
}

type checkpoint = { certifier : Rule.t }

type phase = {
  pname : string;
  members : string list;
  checkpoint : checkpoint option;
}

type transition = { src : string; act : string; dst : string }

type t = {
  name : string;
  states : string list;
  initial : string;
  actions : action list;
  transitions : transition list;
  suggested : (string * string) list;
  phases : phase list;
}

let find_action ir id = List.find_opt (fun a -> a.id = id) ir.actions

let suggested_action ir state = List.assoc_opt state ir.suggested

let step ir state act =
  List.find_map
    (fun t -> if t.src = state && t.act = act then Some t.dst else None)
    ir.transitions

let phase_of_state ir state =
  List.find_opt (fun p -> List.mem state p.members) ir.phases

let phases_of_action ir act =
  let hit =
    List.filter_map
      (fun t -> if t.act = act then phase_of_state ir t.src else None)
      ir.transitions
  in
  List.filter (fun p -> List.exists (fun q -> q.pname = p.pname) hit) ir.phases

let phase_of_action ir act =
  match phases_of_action ir act with [] -> None | p :: _ -> Some p

(** Bounded-exhaustive exploration of the deviation product space.

    One scenario = the product of [n] IR node machines (the closures
    [Compile.machine] builds, re-derived here in indexed form with the same
    undefined-transition self-loop semantics), with at most one node
    running a deviation from the [Dev.t] library. The BFS branches on
    *which node steps next* — since each state carries at most one
    suggested action, that single choice enumerates every interleaving of
    equal-timestamp deliveries that [Damd_sim.Engine]'s documented FIFO
    tie-break could serialize, so a property that holds over the explored
    graph holds for every schedule the engine can produce.

    Phase-barrier semantics mirror [Damd_faithful.Runner]: a node may step
    only while its state belongs to the current phase (a node that crossed
    into the next phase waits); when no node remains inside the current
    phase, the checkpoint event fires — the phase's certifier (if any)
    reads the evidence deposited so far, then the next phase opens.

    The evidence model is the abstract form of the §4.3 case analysis: a
    deviant step on a targeted action deposits evidence for the current
    phase iff the action's declared coverage can surface it —
    message-passing needs an enforcement rule and an honest checker,
    computation needs [mirrored && digested] and an honest checker,
    information revelation needs [digested] (the DATA1-style global
    comparison), unclassified actions are never covered. Omission
    deviations ([Silent_in_construction]) instead stall the barrier; the
    resulting progress timeout is itself a detection (certifier [None]).

    Two properties are verified per phase and reported as findings:

    - detection-completeness: every non-exempt deviation is flagged
      strictly before (or, for omissions, instead of) its phase's
      green-light — a certifier that fires without evidence while the
      deviant acted is an escape ([undetected-deviation], error);
    - no-false-accusation: the all-faithful product run deposits no
      evidence and never stalls ([false-accusation], error, otherwise).

    Further findings: [phase-reentry] (error — a step re-enters a phase
    whose checkpoint already certified), [certifier-unreachable] (error —
    a phase's certifier can never run because the product deadlocks),
    [unexplored-state] (error — an IR state no node ever occupies in any
    scenario), [exploration-truncated] (warning — the per-scenario state
    bound was exhausted, so verdicts may be incomplete).

    Dedup uses canonical state hashing: faithful nodes are behaviorally
    interchangeable (topology enters only through the deviant's coverage
    predicate), so a product state is canonicalized as the *count
    vector* of faithful positions plus the deviant's position, phase
    index, and evidence bits — the standard symmetry reduction — and
    packed by [Statepack] into an immediate int whenever the layout fits
    63 bits (DESIGN.md §16). On top of that, [Por] prunes redundant
    interleavings of phase-internal faithful steps when its acyclicity
    guard holds, and scenarios fan out across domains via [Pool]; both
    are exact — verdicts, findings, and detection depths are unchanged
    (witness *traces* may route differently under POR). *)

type verdict =
  | Detected of { depth : int; certifier : string option }
      (** [depth] is the worst-case number of product steps between the
          deviating step and the checkpoint that surfaces it (for
          omissions, the depth at which progress provably stops);
          [certifier] is the certifying rule, [None] for the progress
          timeout. *)
  | Undetected of { witness : string }
      (** A schedule exists on which the phase green-lights with the
          deviation unflagged; [witness] is its (truncated) step trace. *)
  | Exempt of { reason : string }
      (** Outside the checking story by design — e.g. [Misreport_cost]
          (neutralized by VCG strategyproofness, not by checkers) and
          [Lying_checker] (a checker-role no-op in isolation). *)
  | Truncated  (** the state bound ran out before a verdict was reached *)

type stats = {
  states_explored : int;  (** total canonical states across all scenarios *)
  frontier_peak : int;  (** largest BFS frontier observed *)
  scenarios : int;  (** scenarios run (deviation × seat, plus all-faithful) *)
  truncated : bool;
  elapsed_s : float;
      (** wall-clock exploration time (monotonic clock) — with
          [states_explored] this is the states/sec figure the scale
          work tracks *)
  por : bool;
      (** partial-order reduction was requested {e and} its in-phase
          acyclicity guard held, so the reduced successor relation was
          actually used *)
  domains : int;  (** scenario fan-out width actually used *)
}

type outcome = {
  verdicts : (Dev.t * verdict) list;
      (** one verdict per non-[Faithful] label of the adversary
          vocabulary; [Collude_with] aggregates over every directed
          (principal, colluding-checker) neighbor pair and is [Detected]
          only if all pairs are *)
  findings : Check.finding list;
  covered_states : string list;
      (** IR states some node occupied in some explored scenario — the
          complement drives [unexplored-state] *)
  stats : stats;
}

val covered_action : Ir.action -> honest:bool -> bool
(** The abstract §4.3 coverage case split: can the declared checking
    story surface a deviant execution of this action, given whether the
    deviant's checker neighborhood contains an honest node? Exposed for
    the [Tla] backend, which must emit the same evidence model. *)

val exemptions : (Dev.t * string) list
(** Deviations the checking story does not claim, with the reason —
    [Misreport_cost] (neutralized by VCG strategyproofness, not by
    checkers) and [Lying_checker] (a checker-role no-op in isolation).
    Exposed so [Absint]'s static frontier exempts exactly the same
    labels the exploration does. *)

val run :
  ?bound:int ->
  ?adversary:Dev.t list ->
  ?obs:Damd_obs.Obs.t ->
  ?por:bool ->
  ?domains:int ->
  ?audit:bool ->
  graph:Damd_graph.Graph.t ->
  Ir.t ->
  outcome
(** [bound] (default 50_000) caps canonical states *per scenario*;
    [adversary] (default [Dev.all]) is the label vocabulary to sweep, as
    with [Check.check_ir]. Never raises on malformed IRs: undefined
    transitions self-loop (the [Compile.machine] contract), an undeclared
    initial state skips exploration with an [exploration-truncated]
    warning, and every loop is bounded by dedup plus [bound].

    [por] (default true) enables the invisible-step partial-order
    reduction; it self-disables (see [Por]) when the in-phase
    suggested-play graph is cyclic. [domains] (default 0 = auto) is the
    scenario fan-out width; 1 forces sequential, and an enabled [obs]
    also forces sequential because tracing sinks are not thread-safe.
    The merge is deterministic in scenario order either way. [audit]
    (default false) cross-checks every packed dedup key against the
    structural key and raises [Statepack.Collision] on mismatch.

    [obs] (default noop): each scenario BFS runs under a span labelled
    with the deviation and honesty class, the frontier size is sampled
    as a counter track, state depths feed an ["explore.depth"] metrics
    histogram, and an ["explore.done"] instant reports states/sec. *)

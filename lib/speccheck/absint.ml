module Action = Damd_core.Action
module G = Damd_graph.Graph
module Obs = Damd_obs.Obs
module Clock = Damd_obs.Clock
module Json = Damd_util.Json

(* ---- the abstract taint environment -------------------------------------

   One lattice cell per channel: [pool] abstracts everything any node may
   have emitted into the network so far (the receive pool a later
   [Received_messages] read can draw from), [store] abstracts everything
   any action may have written into protocol state. Each cell carries a
   provenance path (action ids, oldest first) for the dominating
   contribution, so findings can print a witness chain instead of a bare
   verdict. Paths only change when the label strictly increases, which
   keeps the fixpoint monotone and terminating. *)

type cell = { lbl : Taint.label; path : string list }

let bottom = { lbl = Taint.Public; path = [] }

let cell_join a b = if not (Taint.leq b.lbl a.lbl) then b else a

type env = {
  pool : cell;
  store : cell;
  pool_deps : int;  (* bitmask over action indices feeding the pool *)
  store_deps : int;
}

let env_bottom = { pool = bottom; store = bottom; pool_deps = 0; store_deps = 0 }

let env_join a b =
  {
    pool = cell_join a.pool b.pool;
    store = cell_join a.store b.store;
    pool_deps = a.pool_deps lor b.pool_deps;
    store_deps = a.store_deps lor b.store_deps;
  }

let env_equal a b =
  a.pool.lbl = b.pool.lbl && a.store.lbl = b.store.lbl
  && a.pool_deps = b.pool_deps
  && a.store_deps = b.store_deps

type summary = { sm_action : string; sm_out : Taint.label; sm_path : string list }

type flow = {
  fl_summaries : summary list;  (* reachable actions, IR declaration order *)
  fl_deps : (string * int) list;  (* action id -> transitive output deps *)
  fl_reached : string list;  (* states with a non-bottom-reachable env *)
}

(* Does the action's output land where other nodes can read it? Message
   passing and information revelation emit into the network; a missing
   classification is treated as emitting (sound over-approximation). *)
let emits (a : Ir.action) =
  match a.Ir.cls with
  | Some Action.Computation | Some Action.Internal -> false
  | Some Action.Message_passing | Some Action.Information_revelation | None ->
      true

(* The transfer function: the output taint of one execution of [a] in
   environment [e]. Information revelation is the sanctioned
   declassification of Def. 12 — the signed announcement *is* the private
   value, neutralized by strategyproofness rather than by checkers — so
   its output is [Public] by definition; everything else joins its
   declared input channels. *)
let transfer (a : Ir.action) (e : env) =
  match a.Ir.cls with
  | Some Action.Information_revelation ->
      ({ lbl = Taint.Public; path = [ a.Ir.id ] }, 1)
  | _ ->
      let c =
        List.fold_left
          (fun acc i ->
            cell_join acc
              (match i with
              | Ir.Private_info -> { lbl = Taint.Private; path = [] }
              | Ir.Received_messages -> e.pool
              | Ir.Protocol_state -> e.store))
          bottom a.Ir.inputs
      in
      let deps =
        List.fold_left
          (fun acc i ->
            match i with
            | Ir.Private_info -> acc
            | Ir.Received_messages -> acc lor e.pool_deps
            | Ir.Protocol_state -> acc lor e.store_deps)
          0 a.Ir.inputs
      in
      ({ c with path = c.path @ [ a.Ir.id ] }, deps)

(* Worklist fixpoint over the transition table. Every declared transition
   is considered a possible flow (shadowed duplicates included): this
   over-approximates any concrete strategy, matching the reachability
   notion the structural checks already use. *)
let flow_fixpoint (ir : Ir.t) =
  let track_deps = List.length ir.Ir.actions <= 62 in
  let bit_of =
    let tbl = Hashtbl.create 16 in
    List.iteri
      (fun i (a : Ir.action) ->
        if not (Hashtbl.mem tbl a.Ir.id) then Hashtbl.add tbl a.Ir.id i)
      ir.Ir.actions;
    fun id -> Hashtbl.find_opt tbl id
  in
  let envs : (string, env) Hashtbl.t = Hashtbl.create 16 in
  let outs : (string, cell) Hashtbl.t = Hashtbl.create 16 in
  let odeps : (string, int) Hashtbl.t = Hashtbl.create 16 in
  (* both lookups are linear in the IR; hoist them out of the loop *)
  let action_tbl = Hashtbl.create 16 in
  List.iter
    (fun (a : Ir.action) ->
      if not (Hashtbl.mem action_tbl a.Ir.id) then
        Hashtbl.add action_tbl a.Ir.id a)
    ir.Ir.actions;
  let succ_tbl : (string, (Ir.action * string) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (t : Ir.transition) ->
      match Hashtbl.find_opt action_tbl t.Ir.act with
      | None -> ()  (* undefined-ref: the structural checker's finding *)
      | Some a ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt succ_tbl t.Ir.src)
          in
          Hashtbl.replace succ_tbl t.Ir.src (prev @ [ (a, t.Ir.dst) ]))
    ir.Ir.transitions;
  let q = Queue.create () in
  if List.mem ir.Ir.initial ir.Ir.states then begin
    Hashtbl.replace envs ir.Ir.initial env_bottom;
    Queue.add ir.Ir.initial q
  end;
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    let e = try Hashtbl.find envs s with Not_found -> env_bottom in
    List.iter
      (fun ((a : Ir.action), dst) ->
              let out, in_deps = transfer a e in
              let out_deps =
                if not track_deps then 0
                else
                  match bit_of a.Ir.id with
                  | Some b -> in_deps lor (1 lsl b)
                  | None -> in_deps
              in
              (match Hashtbl.find_opt outs a.Ir.id with
              | None -> Hashtbl.replace outs a.Ir.id out
              | Some c ->
                  if not (Taint.leq out.lbl c.lbl) then
                    Hashtbl.replace outs a.Ir.id out);
              (match Hashtbl.find_opt odeps a.Ir.id with
              | None -> Hashtbl.replace odeps a.Ir.id out_deps
              | Some m ->
                  if m lor out_deps <> m then
                    Hashtbl.replace odeps a.Ir.id (m lor out_deps));
              let e' =
                {
                  store = cell_join e.store out;
                  store_deps = e.store_deps lor out_deps;
                  pool = (if emits a then cell_join e.pool out else e.pool);
                  pool_deps =
                    (if emits a then e.pool_deps lor out_deps else e.pool_deps);
                }
              in
              let merged, changed =
                match Hashtbl.find_opt envs dst with
                | None -> (e', true)
                | Some old ->
                    let j = env_join old e' in
                    (j, not (env_equal old j))
              in
              if changed then begin
                Hashtbl.replace envs dst merged;
                Queue.add dst q
              end)
      (Option.value ~default:[] (Hashtbl.find_opt succ_tbl s))
  done;
  let fl_summaries =
    List.filter_map
      (fun (a : Ir.action) ->
        match Hashtbl.find_opt outs a.Ir.id with
        | None -> None
        | Some c ->
            Some { sm_action = a.Ir.id; sm_out = c.lbl; sm_path = c.path })
      ir.Ir.actions
  in
  let fl_deps =
    List.filter_map
      (fun (a : Ir.action) ->
        Option.map (fun m -> (a.Ir.id, m)) (Hashtbl.find_opt odeps a.Ir.id))
      ir.Ir.actions
  in
  let fl_reached =
    List.filter (fun s -> Hashtbl.mem envs s) ir.Ir.states
  in
  { fl_summaries; fl_deps; fl_reached }

let path_string p = String.concat " -> " p

(* The flow-sensitive upgrades of the Def. 12/13 checks: same properties
   as [cc-private-leak] / [ac-unmirrored] / [ac-undigested], but judged on
   the taint that actually reaches each action along reachable paths, with
   the laundering chain as witness. A private value that transits an
   intermediate computation before being emitted — invisible to the
   syntactic input scan — is caught here. *)
let flow_findings (ir : Ir.t) (fl : flow) =
  let atbl = Hashtbl.create 32 in
  List.iter
    (fun (a : Ir.action) ->
      if not (Hashtbl.mem atbl a.Ir.id) then Hashtbl.add atbl a.Ir.id a)
    ir.Ir.actions;
  List.concat_map
    (fun sm ->
      match Hashtbl.find_opt atbl sm.sm_action with
      | None -> []
      | Some a -> (
          match a.Ir.cls with
          | Some Action.Message_passing when sm.sm_out = Taint.Private ->
              [
                {
                  Check.id = "cc-private-leak-flow";
                  severity = Check.Error;
                  location = a.Ir.id;
                  message =
                    Printf.sprintf
                      "message-passing action %S emits private taint along \
                       the reachable chain [%s]: a checker cannot reproduce \
                       its output, so strong CC fails on this flow even \
                       though every hop's declaration looks innocent"
                      a.Ir.id (path_string sm.sm_path);
                };
              ]
          | Some Action.Computation when not a.Ir.mirrored ->
              [
                {
                  Check.id = "ac-unmirrored-flow";
                  severity = Check.Error;
                  location = a.Ir.id;
                  message =
                    Printf.sprintf
                      "computational action %S is reachable (flow [%s], taint \
                       %s) but no checker mirrors it: Def. 13 coverage fails \
                       on an execution that actually happens"
                      a.Ir.id (path_string sm.sm_path)
                      (Taint.to_string sm.sm_out);
                };
              ]
          | Some Action.Computation when not a.Ir.digested ->
              [
                {
                  Check.id = "ac-undigested-flow";
                  severity = Check.Error;
                  location = a.Ir.id;
                  message =
                    Printf.sprintf
                      "computational action %S is reachable (flow [%s]) but \
                       deposits no bank digest: its mirror can disagree \
                       without any checkpoint noticing"
                      a.Ir.id (path_string sm.sm_path);
                };
              ]
          | _ -> []))
    fl.fl_summaries

(* ---- the two-seat abstract machine --------------------------------------

   [Explore] runs the n-seat product; here we run its abstraction: the
   deviant seat plus ONE faithful representative (faithful seats are
   symmetric, so one representative preserves barrier structure, escape
   possibility, and stall wedges, while depths only shrink — the frontier
   soundness argument of DESIGN.md §17). Everything else mirrors
   [Explore.run_scenario] move for move: eligibility, the checkpoint
   barrier, acted/evidence bits, omission stalls, reentry pruning, and
   the deadlock case split. *)

type mach = {
  states : string array;
  sugg_id : string option array;
  action_of : Ir.action option array;
  dst_of : int array;
  phase_of : int array;
  nphases : int;
  phase_names : string array;
  certifiers : string option array;
  dev_lbl : string array;
  cp_lbl : string array;
}

let build (ir : Ir.t) =
  let states = Array.of_list ir.Ir.states in
  let idx = Hashtbl.create 16 in
  Array.iteri
    (fun i s -> if not (Hashtbl.mem idx s) then Hashtbl.add idx s i)
    states;
  let ns = Array.length states in
  let sugg_id = Array.make ns None in
  let action_of = Array.make ns None in
  let dst_of = Array.init ns (fun i -> i) in
  (* first-binding tables replace the per-state linear scans of
     [suggested_action] / [find_action] / [step] *)
  let sugg_tbl = Hashtbl.create 32 in
  List.iter
    (fun (s, aid) ->
      if not (Hashtbl.mem sugg_tbl s) then Hashtbl.add sugg_tbl s aid)
    ir.Ir.suggested;
  let act_tbl = Hashtbl.create 32 in
  List.iter
    (fun (a : Ir.action) ->
      if not (Hashtbl.mem act_tbl a.Ir.id) then Hashtbl.add act_tbl a.Ir.id a)
    ir.Ir.actions;
  let step_tbl = Hashtbl.create 32 in
  List.iter
    (fun (t : Ir.transition) ->
      let key = t.Ir.src ^ "\x00" ^ t.Ir.act in
      if not (Hashtbl.mem step_tbl key) then Hashtbl.add step_tbl key t.Ir.dst)
    ir.Ir.transitions;
  Array.iteri
    (fun i s ->
      match Hashtbl.find_opt sugg_tbl s with
      | None -> ()
      | Some aid ->
          sugg_id.(i) <- Some aid;
          action_of.(i) <- Hashtbl.find_opt act_tbl aid;
          dst_of.(i) <-
            (match Hashtbl.find_opt step_tbl (s ^ "\x00" ^ aid) with
            | Some d -> (
                match Hashtbl.find_opt idx d with Some j -> j | None -> i)
            | None -> i))
    states;
  let phases = Array.of_list ir.Ir.phases in
  let phase_of = Array.make ns (-1) in
  Array.iteri
    (fun pi (p : Ir.phase) ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt idx s with
          | Some i when phase_of.(i) = -1 -> phase_of.(i) <- pi
          | _ -> ())
        p.Ir.members)
    phases;
  let phase_names = Array.map (fun (p : Ir.phase) -> p.Ir.pname) phases in
  {
    states;
    sugg_id;
    action_of;
    dst_of;
    phase_of;
    nphases = Array.length phases;
    phase_names;
    certifiers =
      Array.map
        (fun (p : Ir.phase) ->
          match p.Ir.checkpoint with
          | Some c -> Some (Rule.to_string c.Ir.certifier)
          | None -> None)
        phases;
    dev_lbl =
      Array.map
        (function Some aid -> "deviant!" ^ aid | None -> "deviant!")
        sugg_id;
    cp_lbl = Array.map (fun p -> "[checkpoint " ^ p ^ "]") phase_names;
  }

(* An abstract state is the tuple (dev, f, ph, acted, evid): the deviant
   seat's chain position (-1 = no deviant in this job), the faithful
   representative's position, the phase cursor, and the §4.3 acted/evid
   bitsets. It is packed into an immediate int when the layout fits one
   word (it always does for catalogue-sized IRs); otherwise the rendered
   key is interned. *)
let fits_int ~ns ~nphases =
  let shift = 2 * nphases in
  shift < 60
  &&
  let span = (ns + 2) * (ns + 2) * (nphases + 2) in
  span > 0 && span <= max_int asr shift

let pack_int ~ns ~nphases dev f ph acted evid =
  let pos = (((dev + 1) * (ns + 2)) + f + 1) * (nphases + 2) in
  ((pos + ph) lsl (2 * nphases)) lor (acted lsl nphases) lor evid

(* fallback for IRs past the int-packing envelope: render the state and
   intern the string to a dense int key, so the runner stays int-keyed *)
let pack_interned () =
  let intern = Hashtbl.create 64 in
  let next = ref 0 in
  fun dev f ph acted evid ->
    let s = Printf.sprintf "%d/%d/%d/%d/%d" dev f ph acted evid in
    match Hashtbl.find_opt intern s with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add intern s i;
        i

type ajob = {
  aj_label : string;
  aj_has_deviant : bool;
  aj_stall : bool;
  aj_targets : bool array;
  aj_covered : bool array;
  aj_faithful : bool;
}

type aout = {
  ao_escape : string option;
  ao_timeout : int option;
  ao_lag : int;
  ao_certifier : string option;
  ao_cert_phase : int;  (* phase index of the winning lag; -1 = none *)
  ao_acted : bool;
  ao_truncated : bool;
  ao_states : int;
  ao_findings : Check.finding list;
}

(* A small open-addressed int set: the visited table is the hottest
   structure in the abstract BFS, and Hashtbl's bucket lists cost an
   allocation per insert. Keys are the packed states, always >= 0, so
   -1 marks an empty slot. Linear probing at <= 50% load. *)
module Intset = struct
  type t = { mutable slots : int array; mutable used : int }

  let create () = { slots = Array.make 128 (-1); used = 0 }

  (* make the set empty again without losing the allocation; a set that
     ballooned in one job is shrunk back so later resets stay cheap *)
  let reset t =
    if Array.length t.slots > 4096 then t.slots <- Array.make 128 (-1)
    else Array.fill t.slots 0 (Array.length t.slots) (-1);
    t.used <- 0

  let mix k =
    let h = k * 0x9E3779B97F4A7C1 in
    h lxor (h lsr 29)

  let slot_of slots k =
    let mask = Array.length slots - 1 in
    let i = ref (mix k land mask) in
    while
      let s = slots.(!i) in
      s <> -1 && s <> k
    do
      i := (!i + 1) land mask
    done;
    !i

  let grow t =
    let old = t.slots in
    t.slots <- Array.make (2 * Array.length old) (-1);
    Array.iter
      (fun k -> if k >= 0 then t.slots.(slot_of t.slots k) <- k)
      old

  (* membership test and insert in one probe; true when k was absent *)
  let add t k =
    let i = slot_of t.slots k in
    if t.slots.(i) = k then false
    else begin
      t.slots.(i) <- k;
      t.used <- t.used + 1;
      if 2 * t.used >= Array.length t.slots then grow t;
      true
    end
end

(* Per-run scratch shared across jobs: the visited set and the frontier
   block survive from scenario to scenario (a reset instead of a fresh
   allocation each), and the coverage marks accumulate monotonically
   across every job of the run. *)
type scratch = {
  sc_visited : Intset.t;
  mutable sc_q : int array;
  sc_covered : bool array;
  sc_min_act : int array;
  sc_max_cert : int array;
  sc_cert_rule : string option array;
  sc_no_parent : (int, int * string) Hashtbl.t;
      (* shared read-only stand-in for the parent table on untracked runs *)
}

let scratch_create ns nphases =
  {
    sc_visited = Intset.create ();
    sc_q = Array.make (64 * 8) 0;
    sc_covered = Array.make ns false;
    sc_min_act = Array.make (max 1 nphases) max_int;
    sc_max_cert = Array.make (max 1 nphases) (-1);
    sc_cert_rule = Array.make (max 1 nphases) None;
    sc_no_parent = Hashtbl.create 1;
  }

(* [track] keeps the parent table needed to print an escape witness.
   The fast path skips it (one table write per state saved); [run] only
   re-runs with tracking when an escape actually fired, which is rare —
   never on a frontier-sound spec.

   The BFS is deliberately allocation-free in the hot loop: keys are
   native ints ([pack_int], or interned strings on oversized IRs), and
   the frontier lives in one flat growable int block (key, depth, and
   the five state fields) instead of a queue of records — a new state
   costs a handful of array writes, a revisit costs one table probe. *)
let run_ascenario m ~(encode : int -> int -> int -> int -> int -> int) ~bound
    ~initial ~track ~scratch (job : ajob) : aout =
  (* the common packed-int case is inlined at the push site (the indirect
     call through [encode] is measurable there); the constants must mirror
     [pack_int] exactly so the cold paths that still call [encode] agree *)
  let use_pack = fits_int ~ns:(Array.length m.states) ~nphases:m.nphases in
  let mns = Array.length m.states + 2 in
  let mnp = m.nphases + 2 in
  let npb = m.nphases in
  let shift = 2 * m.nphases in
  let min_act = scratch.sc_min_act in
  let max_cert = scratch.sc_max_cert in
  let cert_rule = scratch.sc_cert_rule in
  Array.fill min_act 0 (Array.length min_act) max_int;
  Array.fill max_cert 0 (Array.length max_cert) (-1);
  Array.fill cert_rule 0 (Array.length cert_rule) None;
  let escape = ref None in
  let timeout = ref None in
  let acted_ever = ref false in
  let truncated = ref false in
  let covered_mark = scratch.sc_covered in
  let findings = ref [] in
  (* findings are rare; the dedup table is only materialised on demand *)
  let seen = ref None in
  let add_finding severity id location message =
    let tbl =
      match !seen with
      | Some t -> t
      | None ->
          let t = Hashtbl.create 8 in
          seen := Some t;
          t
    in
    if not (Hashtbl.mem tbl (id ^ "\x00" ^ location)) then begin
      Hashtbl.add tbl (id ^ "\x00" ^ location) ();
      findings := { Check.id; severity; location; message } :: !findings
    end
  in
  let visited = scratch.sc_visited in
  Intset.reset visited;
  let parent =
    if track then Hashtbl.create 64 else scratch.sc_no_parent
  in
  (* the BFS frontier, one flat stride-8 block per slot: key, depth and
     the five state fields (slot 7 is padding to keep the stride a power
     of two). One array means one allocation and one bounds base; the
     block survives in the scratch from job to job. *)
  let q = ref scratch.sc_q in
  let cap = ref (Array.length !q / 8) in
  let count = ref 0 in
  let head = ref 0 in
  let enqueue k d dev f ph acted evid =
    if !count = !cap then begin
      let nc = 2 * !cap in
      let b = Array.make (nc * 8) 0 in
      Array.blit !q 0 b 0 (!cap * 8);
      q := b;
      cap := nc
    end;
    let a = !q in
    let b = !count * 8 in
    a.(b) <- k; a.(b + 1) <- d; a.(b + 2) <- dev; a.(b + 3) <- f;
    a.(b + 4) <- ph; a.(b + 5) <- acted; a.(b + 6) <- evid;
    incr count
  in
  let witness_of k =
    if not track then "(witness elided on the fast pass)"
    else
      let rec climb k acc fuel =
        if fuel = 0 then "…" :: acc
        else
          match Hashtbl.find_opt parent k with
          | None -> acc
          | Some (pk, lbl) -> climb pk (lbl :: acc) (fuel - 1)
      in
      String.concat " ; " (climb k [] 14)
  in
  let mark dev f =
    if dev >= 0 then covered_mark.(dev) <- true;
    covered_mark.(f) <- true
  in
  let dev0 = if job.aj_has_deviant then initial else -1 in
  let k0 = encode dev0 initial 0 0 0 in
  ignore (Intset.add visited k0);
  mark dev0 initial;
  enqueue k0 0 dev0 initial 0 0 0;
  (* the pop cursor lives in refs shared with [push], so the closure is
     allocated once per job instead of once per popped state *)
  let cur_k = ref 0 in
  let cur_d = ref 0 in
  let cur_ph = ref 0 in
  let progress = ref 0 in
  (* successors are delivered inline: dedup, reentry pruning and
     progress counting happen at the push site *)
  let push ndev nf nph nacted nevid lbl dst =
    let reentry =
      dst >= 0
      && m.phase_of.(dst) >= 0
      && m.phase_of.(dst) < min !cur_ph m.nphases
    in
    if reentry then begin
      incr progress;
      add_finding Check.Error "phase-reentry" lbl
        (Printf.sprintf
           "step %S re-enters phase %S after its checkpoint certified: \
            post-certification play can rewrite what the bank already \
            green-lit"
           lbl
           m.phase_names.(m.phase_of.(dst)))
    end
    else begin
      let k' =
        if use_pack then
          ((((ndev + 1) * mns) + nf + 1) * mnp + nph) lsl shift
          lor (nacted lsl npb) lor nevid
        else encode ndev nf nph nacted nevid
      in
      if k' <> !cur_k then incr progress;
      if Intset.add visited k' then begin
        if track then Hashtbl.replace parent k' (!cur_k, lbl);
        mark ndev nf;
        enqueue k' (!cur_d + 1) ndev nf nph nacted nevid
      end
    end
  in
  let continue = ref true in
  while !continue && !head < !count do
    if !count > bound then begin
      truncated := true;
      continue := false
    end
    else begin
      let a = !q in
      let b = !head * 8 in
      incr head;
      let k = a.(b) and d = a.(b + 1) in
      let dev = a.(b + 2) and f = a.(b + 3) and ph = a.(b + 4) in
      let s_acted = a.(b + 5) and s_evid = a.(b + 6) in
      cur_k := k;
      cur_d := d;
      cur_ph := ph;
      progress := 0;
      (* deviant move *)
      (if dev >= 0 && (ph >= m.nphases || m.phase_of.(dev) = ph) then
         match m.sugg_id.(dev) with
         | None -> ()
         | Some _aid ->
             let is_t = job.aj_targets.(dev) in
             if job.aj_stall && is_t then ()
             else begin
               let pbit =
                 if ph < m.nphases then ph else max 0 (m.nphases - 1)
               in
               (* Evidence bits are only ever read by the *current* phase's
                  checkpoint, so bits set in the coda (no checkpoint left)
                  would inflate state identity without changing any future
                  read.  Dropping them merges histories exactly. *)
               let in_phase = ph < m.nphases in
               let acted =
                 if is_t && in_phase then s_acted lor (1 lsl pbit) else s_acted
               in
               let evid =
                 if is_t && in_phase && job.aj_covered.(dev) then
                   s_evid lor (1 lsl pbit)
                 else s_evid
               in
               if is_t then begin
                 acted_ever := true;
                 if d + 1 < min_act.(pbit) then min_act.(pbit) <- d + 1
               end;
               push m.dst_of.(dev) f ph acted evid m.dev_lbl.(dev)
                 m.dst_of.(dev)
             end);
      (* the faithful representative's move *)
      (if ph >= m.nphases || m.phase_of.(f) = ph then
         match m.sugg_id.(f) with
         | None -> ()
         | Some aid -> push dev m.dst_of.(f) ph s_acted s_evid aid m.dst_of.(f));
      (* checkpoint: fires exactly when nobody remains inside the phase *)
      if ph < m.nphases then begin
        let someone_inside =
          (dev >= 0 && m.phase_of.(dev) = ph) || m.phase_of.(f) = ph
        in
        if not someone_inside then begin
          let bit = 1 lsl ph in
          (if s_acted land bit <> 0 then
             match m.certifiers.(ph) with
             | Some rule when s_evid land bit <> 0 ->
                 if d + 1 > max_cert.(ph) then begin
                   max_cert.(ph) <- d + 1;
                   cert_rule.(ph) <- Some rule
                 end
             | _ ->
                 if !escape = None then
                   escape :=
                     Some
                       (witness_of k ^ " ; [green-light " ^ m.phase_names.(ph)
                      ^ "]"));
          (* Bits from phases <= ph are dead once this checkpoint has
             fired (each phase's bit is read exactly once, here), so the
             successor enters the next phase with cleared bitsets —
             merging all same-position histories into one state. *)
          push dev f (ph + 1) 0 0 m.cp_lbl.(ph) (-1)
        end
      end;
      (* deadlock: the current phase can never reach its certifier *)
      if !progress = 0 && ph < m.nphases then begin
        let stalling_deviant =
          dev >= 0 && job.aj_stall
          && m.phase_of.(dev) = ph
          && job.aj_targets.(dev)
          && m.sugg_id.(dev) <> None
        in
        if stalling_deviant then (
          match !timeout with
          | Some t when t >= d + 1 -> ()
          | _ -> timeout := Some (d + 1))
        else
          add_finding Check.Error
            (if job.aj_faithful then "false-accusation"
             else "certifier-unreachable")
            m.phase_names.(ph)
            (if job.aj_faithful then
               Printf.sprintf
                 "the all-faithful abstract run deadlocks inside phase %S: \
                  the bank's progress timeout would punish nodes that \
                  followed the suggested play to the letter"
                 m.phase_names.(ph)
             else
               Printf.sprintf
                 "phase %S can deadlock before its certifier runs: a \
                  deviation inside it is never surfaced at a checkpoint"
                 m.phase_names.(ph))
      end
    end
  done;
  let lag = ref (-1) in
  let certifier = ref None in
  let cert_phase = ref (-1) in
  Array.iteri
    (fun p cert ->
      if cert >= 0 && min_act.(p) < max_int then begin
        let l = cert - min_act.(p) in
        if l > !lag then begin
          lag := l;
          certifier := cert_rule.(p);
          cert_phase := p
        end
      end)
    max_cert;
  scratch.sc_q <- !q;
  {
    ao_escape = !escape;
    ao_timeout = !timeout;
    ao_lag = !lag;
    ao_certifier = !certifier;
    ao_cert_phase = !cert_phase;
    ao_acted = !acted_ever;
    ao_truncated = !truncated;
    ao_states = !count;
    ao_findings = List.rev !findings;
  }

(* ---- verdicts and the static frontier ---- *)

type sverdict =
  | Scertified of { depth : int; certifier : string option; phase : int }
  | Sblind of { witness : string }
  | Sexempt of { reason : string }
  | Struncated

type frontier = {
  fr_dev : Dev.t;
  fr_verdict : sverdict;
  fr_certifier : string option;
  fr_phase : string option;
  fr_distance : int option;
}

type t = {
  flows : summary list;
  frontier : frontier list;
  findings : Check.finding list;
  states_explored : int;
  elapsed_s : float;
}

let combine rs =
  if List.exists (fun r -> r.ao_truncated) rs then Struncated
  else
    match List.find_opt (fun r -> r.ao_escape <> None) rs with
    | Some r -> Sblind { witness = Option.get r.ao_escape }
    | None -> (
        match
          List.find_opt (fun r -> r.ao_lag < 0 && r.ao_timeout = None) rs
        with
        | Some r ->
            Sblind
              {
                witness =
                  (if r.ao_acted then
                     "the deviation occurs but no certification event ever \
                      follows it"
                   else
                     "the targeted action never executes in the abstract \
                      product");
              }
        | None ->
            let depth, certifier, phase =
              List.fold_left
                (fun (d0, c0, p0) r ->
                  let d, c, p =
                    if r.ao_lag >= 0 then
                      (r.ao_lag, r.ao_certifier, r.ao_cert_phase)
                    else (Option.get r.ao_timeout, None, -1)
                  in
                  if d > d0 then (d, c, p) else (d0, c0, p0))
                (-1, None, -1) rs
            in
            Scertified { depth; certifier; phase })

let dev_compare a b = String.compare (Dev.to_string a) (Dev.to_string b)

(* The dependence-derived frontier: the earliest checkpoint, at or after
   the deviation's earliest targeted phase, whose certifier reads evidence
   deposited by an action whose output transitively depends (per the taint
   fixpoint's dependence masks) on an output the deviation perturbs.

   The per-action bit/phase tables and the per-phase union of evidence
   dependence masks are built once per run: "some covered action in phase
   i depends on a target" is exactly "emask.(i) land tmask <> 0", so each
   label's lookup is O(targets + phases) instead of a nested scan. *)
type frontier_tables = {
  ft_abit : (string, int) Hashtbl.t;
  ft_aphase : (string, int) Hashtbl.t;  (* earliest phase, declaration order *)
  ft_emask : int array;
  ft_phases : Ir.phase array;
  ft_feeds : bool array;  (* phase has a covered honest evidence source *)
}

let dependence_frontier_tables (ir : Ir.t) (fl : flow) =
  let ft_phases = Array.of_list ir.Ir.phases in
  let nph = Array.length ft_phases in
  let state_phase = Hashtbl.create 32 in
  Array.iteri
    (fun i (p : Ir.phase) ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem state_phase s) then Hashtbl.replace state_phase s i)
        p.Ir.members)
    ft_phases;
  let small = List.length ir.Ir.actions <= 62 in
  let ft_abit = Hashtbl.create 32 in
  if small then
    List.iteri
      (fun i (a : Ir.action) -> Hashtbl.replace ft_abit a.Ir.id (1 lsl i))
      ir.Ir.actions;
  (* one pass over the transitions replaces the per-action
     [Ir.phases_of_action] scans: an action occurs in every phase owning
     one of its source states, and its earliest such phase matches
     [Ir.phase_of_action] (declaration order). Phase sets are kept as
     bitmasks; on the rare > 62-phase IR the high phases simply fold
     onto the top bit, which only ever under-reports evidence — the
     sound direction for both the frontier and the starvation check. *)
  let aphases = Hashtbl.create 32 in
  List.iter
    (fun (t : Ir.transition) ->
      match Hashtbl.find_opt state_phase t.Ir.src with
      | Some i ->
          let bit = 1 lsl min i 61 in
          let prev =
            Option.value ~default:0 (Hashtbl.find_opt aphases t.Ir.act)
          in
          Hashtbl.replace aphases t.Ir.act (prev lor bit)
      | None -> ())
    ir.Ir.transitions;
  let first_phase mask =
    let rec go i = if i >= nph then None
      else if mask land (1 lsl min i 61) <> 0 then Some i
      else go (i + 1)
    in
    go 0
  in
  let ft_aphase = Hashtbl.create 32 in
  let ft_emask = Array.make (max 1 nph) 0 in
  let ft_feeds = Array.make (max 1 nph) false in
  List.iter
    (fun (a : Ir.action) ->
      match Hashtbl.find_opt aphases a.Ir.id with
      | None -> ()
      | Some mask -> (
          (match first_phase mask with
          | Some i -> Hashtbl.replace ft_aphase a.Ir.id i
          | None -> ());
          if Explore.covered_action a ~honest:true then begin
            for i = 0 to nph - 1 do
              if mask land (1 lsl min i 61) <> 0 then ft_feeds.(i) <- true
            done;
            match
              (Hashtbl.find_opt ft_aphase a.Ir.id, List.assoc_opt a.Ir.id fl.fl_deps)
            with
            | Some i, Some mdeps -> ft_emask.(i) <- ft_emask.(i) lor mdeps
            | _ -> ()
          end))
    ir.Ir.actions;
  { ft_abit; ft_aphase; ft_emask; ft_phases; ft_feeds }

let dependence_frontier (ft : frontier_tables) targets =
  match targets with
  | [] -> (None, None, None)
  | _ -> (
      let tphases =
        List.filter_map
          (fun (a : Ir.action) -> Hashtbl.find_opt ft.ft_aphase a.Ir.id)
          targets
      in
      match tphases with
      | [] -> (None, None, None)
      | _ ->
          let p0 = List.fold_left min max_int tphases in
          let tmask =
            List.fold_left
              (fun acc (a : Ir.action) ->
                match Hashtbl.find_opt ft.ft_abit a.Ir.id with
                | Some b -> acc lor b
                | None -> acc)
              0 targets
          in
          let rec scan i =
            if i >= Array.length ft.ft_phases then (None, None, None)
            else
              let p = ft.ft_phases.(i) in
              match p.Ir.checkpoint with
              | Some c when ft.ft_emask.(i) land tmask <> 0 ->
                  ( Some (Rule.to_string c.Ir.certifier),
                    Some p.Ir.pname,
                    Some (i - p0) )
              | _ -> scan (i + 1)
          in
          scan p0)

let run ?(bound = 200_000) ?(adversary = Dev.all) ?(obs = Obs.noop) ~graph
    (ir : Ir.t) =
  let t0 = Clock.now_ns () in
  let fl = Obs.span obs ~cat:"speccheck" "absint.flow" (fun () -> flow_fixpoint ir) in
  let m = build ir in
  let ftab = dependence_frontier_tables ir fl in
  let n = G.n graph in
  let ns = Array.length m.states in
  let initial =
    let rec find i =
      if i >= ns then None
      else if m.states.(i) = ir.Ir.initial then Some i
      else find (i + 1)
    in
    find 0
  in
  match initial with
  | None ->
      {
        flows = fl.fl_summaries;
        frontier = [];
        findings =
          [
            {
              Check.id = "analysis-skipped";
              severity = Check.Warning;
              location = ir.Ir.initial;
              message =
                "the initial state is not declared, so the abstract product \
                 machine has no seed configuration; frontier analysis skipped";
            };
          ];
        states_explored = 0;
        elapsed_s = Clock.s_since t0;
      }
  | Some initial ->
      let no_targets = Array.make ns false in
      (* every label's target mask in one sweep over the machine states
         instead of one state scan per label *)
      let tmask_tbl : (string, bool array) Hashtbl.t = Hashtbl.create 32 in
      Array.iteri
        (fun i ao ->
          match ao with
          | None -> ()
          | Some (a : Ir.action) ->
              List.iter
                (fun d ->
                  let key = Dev.to_string d in
                  let mask =
                    match Hashtbl.find_opt tmask_tbl key with
                    | Some mk -> mk
                    | None ->
                        let mk = Array.make ns false in
                        Hashtbl.add tmask_tbl key mk;
                        mk
                  in
                  mask.(i) <- true)
                a.Ir.deviations)
        m.action_of;
      let target_mask lbl =
        Option.value ~default:no_targets
          (Hashtbl.find_opt tmask_tbl (Dev.to_string lbl))
      in
      let coverage_mask ~honest =
        Array.init ns (fun i ->
            match m.action_of.(i) with
            | Some a -> Explore.covered_action a ~honest
            | None -> false)
      in
      (* only two coverage masks exist; share them across all jobs *)
      let cov_honest = coverage_mask ~honest:true in
      let cov_isolated = coverage_mask ~honest:false in
      let coverage_mask ~honest = if honest then cov_honest else cov_isolated in
      let honesties =
        List.sort_uniq Bool.compare
          (List.init n (fun i -> G.degree graph i > 0))
      in
      let single_seat_jobs lbl ~stall =
        let targets = target_mask lbl in
        List.map
          (fun honest ->
            {
              aj_label =
                Printf.sprintf "%s[%s]" (Dev.to_string lbl)
                  (if honest then "honest-nbrs" else "isolated");
              aj_has_deviant = true;
              aj_stall = stall;
              aj_targets = targets;
              aj_covered = coverage_mask ~honest;
              aj_faithful = false;
            })
          honesties
      in
      let coalition_shield (a : Ir.action) =
        a.Ir.cls = Some Action.Computation
        && a.Ir.mirrored && a.Ir.digested
        && List.exists
             (fun d -> d <> Dev.Lying_checker && d <> Dev.Collude_with)
             a.Ir.deviations
      in
      let collude_plan () =
        if not (List.exists coalition_shield ir.Ir.actions) then
          `Done
            (Sblind
               {
                 witness =
                   "no mirrored computation exists for the coalition to \
                    shield, so the coalition case analysis is vacuous";
               })
        else begin
          let targets =
            Array.init ns (fun i ->
                match m.action_of.(i) with
                | Some a -> coalition_shield a
                | None -> false)
          in
          let pairs =
            List.concat
              (List.init n (fun p ->
                   List.map (fun c -> (p, c)) (G.neighbors graph p)))
          in
          let honest_of (p, c) =
            List.exists (fun nb -> nb <> c) (G.neighbors graph p)
          in
          let exposed = List.filter (fun pc -> not (honest_of pc)) pairs in
          let chonesties =
            List.sort_uniq Bool.compare (List.map honest_of pairs)
          in
          let jobs =
            List.map
              (fun honest ->
                {
                  aj_label =
                    (if honest then "collude-with[honest-nbrs]"
                     else "collude-with[isolated]");
                  aj_has_deviant = true;
                  aj_stall = false;
                  aj_targets = targets;
                  aj_covered = coverage_mask ~honest;
                  aj_faithful = false;
                })
              chonesties
          in
          let post v =
            match (v, exposed) with
            | Sblind { witness }, (p, c) :: _ ->
                Sblind
                  {
                    witness =
                      Printf.sprintf
                        "%s [principal %d, colluding checker %d covers its \
                         entire neighborhood]"
                        witness p c;
                  }
            | _ -> v
          in
          `Jobs (jobs, post)
        end
      in
      let labels =
        List.sort_uniq dev_compare
          (List.filter (fun d -> d <> Dev.Faithful) adversary)
      in
      (* per-label targeting actions, one pass over the declared actions
         instead of one action scan per label (order-insensitive users:
         the frontier masks and the orphan test) *)
      let tlist_tbl : (string, Ir.action list) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun (a : Ir.action) ->
          List.iter
            (fun d ->
              let k = Dev.to_string d in
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt tlist_tbl k)
              in
              Hashtbl.replace tlist_tbl k (a :: prev))
            a.Ir.deviations)
        ir.Ir.actions;
      let targets_of lbl =
        Option.value ~default:[]
          (Hashtbl.find_opt tlist_tbl (Dev.to_string lbl))
      in
      let plan =
        List.map
          (fun lbl ->
            let p =
              match List.assoc_opt lbl Explore.exemptions with
              | Some reason -> `Done (Sexempt { reason })
              | None ->
                  if lbl = Dev.Collude_with then collude_plan ()
                  else if targets_of lbl = [] then
                    `Done
                      (Sblind
                         {
                           witness =
                             "no catalogue action targets this deviation, so \
                              the section-4.3 case analysis cannot place it";
                         })
                  else
                    `Jobs
                      ( single_seat_jobs lbl
                          ~stall:(lbl = Dev.Silent_in_construction),
                        fun v -> v )
            in
            (lbl, p))
          labels
      in
      let faithful_job =
        {
          aj_label = "all-faithful";
          aj_has_deviant = false;
          aj_stall = false;
          aj_targets = no_targets;
          aj_covered = no_targets;
          aj_faithful = true;
        }
      in
      let all_jobs =
        List.concat_map
          (fun (_, p) -> match p with `Done _ -> [] | `Jobs (js, _) -> js)
          plan
        @ [ faithful_job ]
      in
      let encode =
        if fits_int ~ns ~nphases:m.nphases then pack_int ~ns ~nphases:m.nphases
        else pack_interned ()
      in
      let scratch = scratch_create ns m.nphases in
      (* Distinct deviation labels frequently target the same action set,
         and the abstract runner's result only depends on the job's
         (targets, coverage, stall, deviant) shape — the label shows up
         solely in finding/witness text. Identical shapes therefore share
         one exploration; results carrying findings or an escape are not
         shared, since their text embeds the label. *)
      let covered_id c =
        if c == cov_honest then '\001'
        else if c == cov_isolated then '\002'
        else '\000'
      in
      let job_key job =
        let b = Bytes.create (ns + 3) in
        for i = 0 to ns - 1 do
          Bytes.set b i (if job.aj_targets.(i) then '\001' else '\000')
        done;
        Bytes.set b ns (covered_id job.aj_covered);
        Bytes.set b (ns + 1) (if job.aj_stall then '\001' else '\000');
        Bytes.set b (ns + 2) (if job.aj_has_deviant then '\001' else '\000');
        Bytes.unsafe_to_string b
      in
      let shared = Hashtbl.create 16 in
      let exec job =
        Obs.span obs ~cat:"speccheck"
          ~args:[ ("scenario", Json.String job.aj_label) ]
          "absint.frontier"
          (fun () ->
            let key = job_key job in
            match Hashtbl.find_opt shared key with
            | Some o -> o
            | None ->
                let go ~track =
                  run_ascenario m ~encode ~bound ~initial ~track ~scratch job
                in
                (* fast pass without parent tracking; only an escape needs
                   a witness chain, so only then pay for the tracked
                   re-run *)
                let o = go ~track:false in
                let o = if o.ao_escape = None then o else go ~track:true in
                if
                  o.ao_escape = None && o.ao_findings = []
                  && not o.ao_truncated
                then Hashtbl.add shared key o;
                o)
      in
      let outs = List.map exec all_jobs in
      let covered_mark = scratch.sc_covered in
      let findings = ref [] in
      let seen = Hashtbl.create 16 in
      let add_finding severity id location message =
        if not (Hashtbl.mem seen (id ^ "\x00" ^ location)) then begin
          Hashtbl.add seen (id ^ "\x00" ^ location) ();
          findings := { Check.id; severity; location; message } :: !findings
        end
      in
      List.iter
        (fun (f : Check.finding) ->
          add_finding f.Check.severity f.Check.id f.Check.location
            f.Check.message)
        (flow_findings ir fl);
      (* checkpoint starvation: a certifier with no covered evidence source
         among its own phase's actions can never accumulate anything to
         certify — every deviation inside the phase is structurally blind. *)
      Array.iteri
        (fun i (p : Ir.phase) ->
          match p.Ir.checkpoint with
          | None -> ()
          | Some c ->
              if not ftab.ft_feeds.(i) then
                add_finding Check.Error "checkpoint-starved" p.Ir.pname
                  (Printf.sprintf
                     "phase %S ends in certifier %s but no action of the \
                      phase deposits covered evidence: the checkpoint \
                      green-lights on an empty ledger, blinding every \
                      deviation inside the phase"
                     p.Ir.pname
                     (Rule.to_string c.Ir.certifier)))
        ftab.ft_phases;
      let states_total = ref 0 in
      List.iter
        (fun o ->
          states_total := !states_total + o.ao_states;
          List.iter
            (fun (f : Check.finding) ->
              add_finding f.Check.severity f.Check.id f.Check.location
                f.Check.message)
            o.ao_findings)
        outs;
      let outs_arr = Array.of_list outs in
      let idx = ref 0 in
      let take count =
        let l = List.init count (fun j -> outs_arr.(!idx + j)) in
        idx := !idx + count;
        l
      in
      let frontier =
        List.map
          (fun (lbl, p) ->
            let v =
              match p with
              | `Done v -> v
              | `Jobs (js, post) -> post (combine (take (List.length js)))
            in
            let targets =
              if lbl = Dev.Collude_with then
                List.filter coalition_shield ir.Ir.actions
              else targets_of lbl
            in
            let fr_certifier, fr_phase, fr_distance =
              match v with
              | Sexempt _ -> (None, None, None)
              | _ -> dependence_frontier ftab targets
            in
            { fr_dev = lbl; fr_verdict = v; fr_certifier; fr_phase; fr_distance })
          plan
      in
      List.iter
        (fun fr ->
          match fr.fr_verdict with
          | Sblind { witness } ->
              add_finding Check.Error "certifier-blind-spot"
                (Dev.to_string fr.fr_dev)
                (Printf.sprintf
                   "no checkpoint certifier ever surfaces deviation %S: %s%s"
                   (Dev.to_string fr.fr_dev) witness
                   (match (fr.fr_certifier, fr.fr_phase, fr.fr_distance) with
                   | Some c, Some p, Some dist ->
                       Printf.sprintf
                         " (certifier %s at phase %S, distance %d, reads \
                          dependent evidence, but the checkpoint discipline \
                          never surfaces the deviation)"
                         c p dist
                   | _ ->
                       " (and no certifier's evidence transitively depends \
                        on any output it perturbs)"))
          | Struncated ->
              add_finding Check.Warning "analysis-truncated"
                (Dev.to_string fr.fr_dev)
                (Printf.sprintf
                   "the %d-state bound ran out while abstracting %S: its \
                    static verdict is unknown"
                   bound
                   (Dev.to_string fr.fr_dev))
          | Scertified _ | Sexempt _ -> ())
        frontier;
      Array.iteri
        (fun i occupied ->
          if not occupied then
            add_finding Check.Error "unexplored-state" m.states.(i)
              (Printf.sprintf
                 "state %S is never occupied by any node in any abstract \
                  product execution: it cannot participate in the certified \
                  protocol"
                 m.states.(i)))
        covered_mark;
      let elapsed_s = Clock.s_since t0 in
      if Obs.enabled obs then
        Obs.instant obs ~cat:"speccheck"
          ~args:
            [
              ("states", Json.Int !states_total);
              ("labels", Json.Int (List.length labels));
              ("elapsed_s", Json.Float elapsed_s);
            ]
          "absint.done";
      {
        flows = fl.fl_summaries;
        frontier;
        findings = List.rev !findings;
        states_explored = !states_total;
        elapsed_s;
      }

(* ---- the static-vs-dynamic differential ---- *)

let differential (t : t) (dyn : Explore.outcome) =
  let gap lbl message =
    {
      Check.id = "static-frontier-gap";
      severity = Check.Error;
      location = Dev.to_string lbl;
      message;
    }
  in
  List.filter_map
    (fun fr ->
      match List.assoc_opt fr.fr_dev dyn.Explore.verdicts with
      | None -> None
      | Some dv -> (
          match (fr.fr_verdict, dv) with
          | Struncated, _ | _, Explore.Truncated -> None
          | Sexempt _, Explore.Exempt _ -> None
          | Sblind _, Explore.Undetected _ -> None
          | Scertified { depth = ds; _ }, Explore.Detected { depth = dd; _ } ->
              if ds <= dd then None
              else
                Some
                  (gap fr.fr_dev
                     (Printf.sprintf
                        "static frontier depth %d exceeds the dynamic \
                         detection depth %d for %S: the abstraction is not a \
                         lower bound here"
                        ds dd
                        (Dev.to_string fr.fr_dev)))
          | Scertified _, Explore.Undetected { witness } ->
              Some
                (gap fr.fr_dev
                   (Printf.sprintf
                      "the static analysis certifies %S but exploration \
                       exhibits an escape (%s): the abstract evidence model \
                       claims coverage the product space refutes"
                      (Dev.to_string fr.fr_dev)
                      witness))
          | Sblind _, Explore.Detected { depth; _ } ->
              Some
                (gap fr.fr_dev
                   (Printf.sprintf
                      "the static analysis reports a blind spot for %S but \
                       exploration detects it at depth %d: the static \
                       frontier is incomplete"
                      (Dev.to_string fr.fr_dev)
                      depth))
          | Sexempt _, _ | _, Explore.Exempt _ ->
              Some
                (gap fr.fr_dev
                   (Printf.sprintf
                      "static and dynamic exemption status disagree for %S"
                      (Dev.to_string fr.fr_dev)))))
    t.frontier

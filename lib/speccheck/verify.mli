(** The flow-verifier driver: static lint + taint-inferred dependency
    comparison + bounded product-machine exploration, one report.

    This is what [damd_cli verify] wraps. Where [Lint] trusts the IR's
    annotations, [Verify] checks them against behavior twice over:

    - the *flow* layer replays the real protocol handlers under input
      perturbation ([Damd_faithful.Flow] produces the observations, the
      CLI passes them in) and diffs the inferred dependency sets against
      [Ir.action.inputs] ([Taint.check]);
    - the *exploration* layer walks the bounded deviation product space
      ([Explore.run]) and checks detection-completeness and
      no-false-accusation per phase.

    The report aggregates all three finding streams under the [Lint]
    exit-code contract (any error-severity finding fails the gate), plus
    the exploration verdict per deviation label — the [damd-verify/1]
    schema, DESIGN.md §12. *)

type report = {
  spec : string;  (** [Ir.t.name] of the verified spec *)
  topology : string;  (** human-readable description of the graph *)
  mutation : string option;  (** the seeded mutation applied, if any *)
  flow : (string * Ir.input list * Ir.input list) list;
      (** per observed action: (id, declared inputs, observed deps), both
          sides deduplicated and sorted for stable rendering *)
  verdicts : (Dev.t * Explore.verdict) list;
  stats : Explore.stats;
  findings : Check.finding list;
      (** static ([Check]) @ flow ([Taint.check]) @ exploration
          ([Explore.run]) findings, in that order *)
}

val run :
  ?adversary:Dev.t list ->
  ?mutation:string ->
  ?bound:int ->
  ?obs:Damd_obs.Obs.t ->
  ?por:bool ->
  ?domains:int ->
  ?audit:bool ->
  observed:Taint.observation list ->
  graph:Damd_graph.Graph.t ->
  topology:string ->
  Ir.t ->
  report
(** Raises [Invalid_argument] on an unknown mutation name (same contract
    as [Lint.run]). [bound] is [Explore.run]'s per-scenario state cap;
    [obs] is threaded to [Explore.run] (scenario spans, frontier track,
    depth histogram — what [damd_cli verify --trace-out] exports);
    [por], [domains], and [audit] are [Explore.run]'s reduction,
    fan-out, and key-audit switches. *)

val detection_complete : report -> bool
(** No [Undetected] and no [Truncated] verdict: every non-exempt deviation
    of the adversary vocabulary is provably flagged at (or before, via the
    progress timeout) its phase checkpoint. *)

val no_false_accusation : report -> bool
(** The all-faithful product run produced no [false-accusation] finding. *)

val error_count : report -> int

val exit_code : report -> int
(** 0 when [error_count] is 0, else 1. *)

val to_json : report -> Damd_util.Json.t
(** The [damd-verify/1] document: provenance, exploration stats (states
    explored, frontier peak, scenarios, truncation, states/sec, POR and
    fan-out width actually used), the two property bits, the per-action
    flow table, one record per verdict (label, kind, detection depth /
    certifier / witness / reason), and one record per finding —
    DESIGN.md §12. *)

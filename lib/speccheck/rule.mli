(** The enforcement rules of the extended-FPSS specification (§4.2–4.3).

    Each rule names one certificate or checker obligation the bank (or a
    checker acting for the bank) evaluates. The catalogue ([Damd_faithful.Spec])
    and the spec IR ([Ir]) reference rules through this variant, so a typo'd
    or retired rule tag is a compile error rather than a silent string
    mismatch — previously [Spec.entry.rule] was a free-form string
    ("BANK1/BANK2"). *)

type t =
  | DATA1  (** phase-1 certificate: all cost digests identical *)
  | PRINC1  (** principal forwards routing updates to all its checkers *)
  | CHECK1  (** checker mirrors the principal's routing computation *)
  | BANK1  (** bank compares routing digests (self, mirrors, announcements) *)
  | PRINC2  (** principal forwards pricing updates to all its checkers *)
  | CHECK2  (** checker mirrors the principal's pricing computation *)
  | BANK2  (** bank compares pricing digests *)
  | EXEC  (** execution clearing: DATA4 reports and packet-trace audit *)

val all : t list
(** Every rule, in protocol order. *)

val to_string : t -> string
(** The paper's tag, e.g. ["BANK1"] — matches the strings
    [Damd_faithful.Bank] puts in [detection.rule]. *)

val of_string : string -> t option

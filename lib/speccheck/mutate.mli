(** Seeded spec mutations — proof that every static check has teeth.

    Each mutation breaks the stock extended-FPSS spec (or the lint
    topology) in exactly one way and carries the id of the finding the
    checker must then produce: the runtest gate asserts that linting the
    mutated spec yields exactly that one error-severity finding and exit
    code 1. This is the static analogue of the gauntlet's [--weaken]
    switches — a detector you can't demonstrate firing is no detector. *)

val all : (string * string) list
(** [(mutation name, expected error finding id)] for every seeded
    mutation. *)

val expected : string -> string option
(** The finding id a mutation must trigger, if the mutation exists. *)

val all_verify : (string * string) list
(** [(mutation name, expected verify finding id)] — the flow/exploration
    finding ([Taint.check] or [Explore.run]) that [Verify.run] must
    produce *in addition to* the static finding in [all]. Same key set as
    [all]: every mutation must demonstrably fire in both the static and
    the behavioral layer. *)

val expected_verify : string -> string option
(** The verify-layer finding id for a mutation, if the mutation exists. *)

val all_analyze : (string * string) list
(** [(mutation name, expected analyze finding id)] — the flow-sensitive or
    frontier finding [Analyze.run] must produce. A *superset* of [all]'s
    key set: the last entries are mutations invisible to the syntactic
    checks (lint exits 0) that only the abstract interpreter catches —
    private taint laundered through an intermediate computation
    ([launder-private-taint]), a leak through the digest channel
    ([private-digest-channel]), and a certifier stripped of every covered
    evidence source ([starve-checkpoint-evidence]). *)

val expected_analyze : string -> string option
(** The analyze-layer finding id for a mutation, if the mutation exists. *)

val names : string list
(** Every mutation name, in [all_analyze] order — the full corpus the
    three subcommands accept. *)

val known : string -> bool
(** Whether [apply] recognizes the name. *)

val apply :
  string -> Ir.t * Damd_graph.Graph.t -> (Ir.t * Damd_graph.Graph.t) option
(** Apply a named mutation to a (spec, lint topology) pair. [None] for an
    unknown name. The mutations address stock-spec action ids and phase
    names; applying them to a foreign IR yields the IR unchanged (and a
    lint run that stays clean — the runtest gate would catch that). *)

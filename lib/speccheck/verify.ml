module Json = Damd_util.Json

type report = {
  spec : string;
  topology : string;
  mutation : string option;
  flow : (string * Ir.input list * Ir.input list) list;
  verdicts : (Dev.t * Explore.verdict) list;
  stats : Explore.stats;
  findings : Check.finding list;
}

let sort_inputs inputs =
  List.sort_uniq
    (fun a b -> String.compare (Taint.input_to_string a) (Taint.input_to_string b))
    inputs

let run ?adversary ?mutation ?bound ?obs ?por ?domains ?audit ~observed ~graph
    ~topology ir =
  let ir, graph =
    match mutation with
    | None -> (ir, graph)
    | Some name -> (
        match Mutate.apply name (ir, graph) with
        | Some pair -> pair
        | None ->
            raise
              (Invalid_argument
                 (Printf.sprintf "unknown mutation %S (expected one of %s)" name
                    (String.concat " | " Mutate.names))))
  in
  let static = Check.check_ir ?adversary ir @ Check.check_topology graph in
  let flow_findings = Taint.check ir ~observed in
  let explored = Explore.run ?bound ?adversary ?obs ?por ?domains ?audit ~graph ir in
  let flow =
    List.filter_map
      (fun (o : Taint.observation) ->
        match Ir.find_action ir o.Taint.action with
        | None -> None
        | Some a ->
            Some (o.Taint.action, sort_inputs a.Ir.inputs, sort_inputs o.Taint.deps))
      observed
  in
  {
    spec = ir.Ir.name;
    topology;
    mutation;
    flow;
    verdicts = explored.Explore.verdicts;
    stats = explored.Explore.stats;
    findings = static @ flow_findings @ explored.Explore.findings;
  }

let detection_complete r =
  List.for_all
    (fun (_, v) ->
      match v with
      | Explore.Detected _ | Explore.Exempt _ -> true
      | Explore.Undetected _ | Explore.Truncated -> false)
    r.verdicts

let no_false_accusation r =
  not (List.exists (fun (f : Check.finding) -> f.Check.id = "false-accusation") r.findings)

let error_count r = List.length (Check.errors r.findings)

let exit_code r = if error_count r = 0 then 0 else 1

let verdict_json v =
  match v with
  | Explore.Detected { depth; certifier } ->
      Json.Obj
        [
          ("kind", Json.String "detected");
          ("depth", Json.Int depth);
          ( "certifier",
            match certifier with
            | Some c -> Json.String c
            | None -> Json.Null (* the progress timeout, not a rule *) );
        ]
  | Explore.Undetected { witness } ->
      Json.Obj
        [ ("kind", Json.String "undetected"); ("witness", Json.String witness) ]
  | Explore.Exempt { reason } ->
      Json.Obj [ ("kind", Json.String "exempt"); ("reason", Json.String reason) ]
  | Explore.Truncated -> Json.Obj [ ("kind", Json.String "truncated") ]

let to_json r =
  Json.Obj
    (Report.provenance ~schema:"damd-verify/1" ~spec:r.spec
       ~topology:r.topology ~mutation:r.mutation ~errors:(error_count r)
    @ [
      ( "stats",
        Json.Obj
          [
            ("states_explored", Json.Int r.stats.Explore.states_explored);
            ("frontier_peak", Json.Int r.stats.Explore.frontier_peak);
            ("scenarios", Json.Int r.stats.Explore.scenarios);
            ("truncated", Json.Bool r.stats.Explore.truncated);
            ("elapsed_s", Json.Float r.stats.Explore.elapsed_s);
            ( "states_per_sec",
              Json.Float
                (if r.stats.Explore.elapsed_s > 0. then
                   float_of_int r.stats.Explore.states_explored
                   /. r.stats.Explore.elapsed_s
                 else 0.) );
            ("por", Json.Bool r.stats.Explore.por);
            ("domains", Json.Int r.stats.Explore.domains);
          ] );
      ( "properties",
        Json.Obj
          [
            ("detection_complete", Json.Bool (detection_complete r));
            ("no_false_accusation", Json.Bool (no_false_accusation r));
          ] );
      ( "flow",
        Json.List
          (List.map
             (fun (action, declared, observed) ->
               Json.Obj
                 [
                   ("action", Json.String action);
                   ( "declared",
                     Json.List
                       (List.map
                          (fun i -> Json.String (Taint.input_to_string i))
                          declared) );
                   ( "observed",
                     Json.List
                       (List.map
                          (fun i -> Json.String (Taint.input_to_string i))
                          observed) );
                 ])
             r.flow) );
      ( "verdicts",
        Json.List
          (List.map
             (fun (lbl, v) ->
               Json.Obj
                 [
                   ("deviation", Json.String (Dev.to_string lbl));
                   ("verdict", verdict_json v);
                 ])
             r.verdicts) );
      ("findings", Report.findings_json r.findings);
    ])

module Json = Damd_util.Json

type report = {
  spec : string;
  topology : string;
  mutation : string option;
  result : Absint.t;
  explore : Explore.outcome option;
  findings : Check.finding list;
}

let run ?adversary ?mutation ?bound ?(differential = false) ?explore_bound
    ?obs ~graph ~topology ir =
  let ir, graph =
    match mutation with
    | None -> (ir, graph)
    | Some name -> (
        match Mutate.apply name (ir, graph) with
        | Some pair -> pair
        | None ->
            raise
              (Invalid_argument
                 (Printf.sprintf "unknown mutation %S (expected one of %s)"
                    name
                    (String.concat " | " Mutate.names))))
  in
  let result = Absint.run ?bound ?adversary ?obs ~graph ir in
  let explore, diff_findings =
    if differential then
      let dyn =
        Explore.run ?bound:explore_bound ?adversary ?obs ~graph ir
      in
      (Some dyn, Absint.differential result dyn)
    else (None, [])
  in
  {
    spec = ir.Ir.name;
    topology;
    mutation;
    result;
    explore;
    findings = result.Absint.findings @ diff_findings;
  }

let blind_spots r =
  List.length
    (List.filter
       (fun fr ->
         match fr.Absint.fr_verdict with Absint.Sblind _ -> true | _ -> false)
       r.result.Absint.frontier)

let frontier_sound r =
  match r.explore with
  | None -> None
  | Some _ ->
      Some
        (not
           (List.exists
              (fun (f : Check.finding) -> f.Check.id = "static-frontier-gap")
              r.findings))

let error_count r = List.length (Check.errors r.findings)

let exit_code r = if error_count r = 0 then 0 else 1

let sverdict_json v =
  match v with
  | Absint.Scertified { depth; certifier; phase } ->
      Json.Obj
        [
          ("kind", Json.String "certified");
          ("depth", Json.Int depth);
          ( "certifier",
            match certifier with
            | Some c -> Json.String c
            | None -> Json.Null (* the progress timeout, not a rule *) );
          ("phase", Json.Int phase);
        ]
  | Absint.Sblind { witness } ->
      Json.Obj
        [ ("kind", Json.String "blind"); ("witness", Json.String witness) ]
  | Absint.Sexempt { reason } ->
      Json.Obj [ ("kind", Json.String "exempt"); ("reason", Json.String reason) ]
  | Absint.Struncated -> Json.Obj [ ("kind", Json.String "truncated") ]

let to_json r =
  Json.Obj
    (Report.provenance ~schema:"damd-analyze/1" ~spec:r.spec
       ~topology:r.topology ~mutation:r.mutation ~errors:(error_count r)
    @ [
        ( "stats",
          Json.Obj
            [
              ("states_explored", Json.Int r.result.Absint.states_explored);
              ("elapsed_s", Json.Float r.result.Absint.elapsed_s);
              ("differential", Json.Bool (r.explore <> None));
            ] );
        ( "properties",
          Json.Obj
            [
              ("blind_spots", Json.Int (blind_spots r));
              ( "frontier_sound",
                match frontier_sound r with
                | None -> Json.Null
                | Some b -> Json.Bool b );
            ] );
        ( "flow",
          Json.List
            (List.map
               (fun sm ->
                 Json.Obj
                   [
                     ("action", Json.String sm.Absint.sm_action);
                     ("taint", Json.String (Taint.to_string sm.Absint.sm_out));
                     ( "path",
                       Json.List
                         (List.map
                            (fun a -> Json.String a)
                            sm.Absint.sm_path) );
                   ])
               r.result.Absint.flows) );
        ( "frontier",
          Json.List
            (List.map
               (fun fr ->
                 Json.Obj
                   [
                     ("deviation", Json.String (Dev.to_string fr.Absint.fr_dev));
                     ("verdict", sverdict_json fr.Absint.fr_verdict);
                     ( "certifier",
                       match fr.Absint.fr_certifier with
                       | Some c -> Json.String c
                       | None -> Json.Null );
                     ( "phase",
                       match fr.Absint.fr_phase with
                       | Some p -> Json.String p
                       | None -> Json.Null );
                     ( "phase_distance",
                       match fr.Absint.fr_distance with
                       | Some d -> Json.Int d
                       | None -> Json.Null );
                   ])
               r.result.Absint.frontier) );
        ("findings", Report.findings_json r.findings);
      ])

(** Compiler from the spec IR to the executable closure form.

    [machine ir] is the [Damd_core.State_machine.t] whose behaviour is
    exactly the IR's tables: states and actions are their IR names, the
    transition function is the table lookup, the suggested map is the IR's,
    and classification reads the action's declared class. Because the
    closures are generated, the IR is the single source of truth — the
    catalogue, the static checks, and the machines the tests step cannot
    drift apart.

    Semantics of the gaps (needed because [State_machine.transition] is
    total): an action the table does not define for the current state
    leaves the state unchanged (a self-loop), and an action id the IR does
    not declare classifies as [Internal]. A validated IR ([Check.check_ir]
    clean) never exercises either under suggested play; deviating
    strategies may, and the self-loop makes the deviation visible to
    [State_machine.deviation_point] instead of raising. *)

val machine : Ir.t -> (string, string) Damd_core.State_machine.t

val suggested_path : Ir.t -> max_steps:int -> string list
(** The action sequence of suggested play from the initial state — the
    spec's one honest trace, handy for tests and reports. *)

(** Scenario fan-out: an order-preserving parallel map.

    The implementation is selected at build time by a dune rule on the
    compiler version — OCaml 5 builds get a [Domain]-backed worker pool
    (pool_domains.ml5), older compilers a sequential fallback
    (pool_seq.ml4) with the same signature, so callers never condition
    on the runtime. *)

val available : bool
(** Whether this build can actually run jobs concurrently. *)

val default_domains : unit -> int
(** The fan-out width used when the caller does not pick one:
    [min 8 (Domain.recommended_domain_count ())] on OCaml 5, 1 on the
    sequential fallback. *)

val map : domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] applies [f] to every element and returns the
    results in input order. [domains ≤ 1] (or the fallback build) runs
    sequentially. Workers take jobs round-robin by index and write
    disjoint result slots; [Domain.join] publishes them. If any worker
    raises, the first exception (in spawn order) is re-raised after all
    workers are joined. *)

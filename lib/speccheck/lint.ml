module Json = Damd_util.Json

type report = {
  spec : string;
  topology : string;
  mutation : string option;
  findings : Check.finding list;
}

let run ?adversary ?mutation ~graph ~topology ir =
  let ir, graph =
    match mutation with
    | None -> (ir, graph)
    | Some name -> (
        match Mutate.apply name (ir, graph) with
        | Some pair -> pair
        | None ->
            raise
              (Invalid_argument
                 (Printf.sprintf "unknown mutation %S (expected one of %s)" name
                    (String.concat " | " Mutate.names))))
  in
  let findings = Check.check_ir ?adversary ir @ Check.check_topology graph in
  { spec = ir.Ir.name; topology; mutation; findings }

let error_count r = List.length (Check.errors r.findings)

let exit_code r = if error_count r = 0 then 0 else 1

let to_json r =
  Json.Obj
    (Report.provenance ~schema:"damd-lint/1" ~spec:r.spec ~topology:r.topology
       ~mutation:r.mutation ~errors:(error_count r)
    @ [ ("findings", Report.findings_json r.findings) ])

type 'theta violation = {
  profile : 'theta array;
  agent : int;
  lie : 'theta;
  truthful_utility : float;
  deviant_utility : float;
  gain : float;
}

type 'theta report = {
  trials : int;
  violations : 'theta violation list;
  max_gain : float;
}

let try_lie ~epsilon mech profile agent lie acc =
  let truthful_utility = Mechanism.utility mech agent profile.(agent) profile in
  let reports = Array.copy profile in
  reports.(agent) <- lie;
  let deviant_utility = Mechanism.utility mech agent profile.(agent) reports in
  let gain = deviant_utility -. truthful_utility in
  if gain > epsilon then
    { profile = Array.copy profile; agent; lie; truthful_utility; deviant_utility; gain }
    :: acc
  else acc

let finish trials violations =
  let violations = List.sort (fun a b -> Float.compare b.gain a.gain) violations in
  let max_gain = match violations with [] -> 0. | v :: _ -> v.gain in
  { trials; violations; max_gain }

let check ~rng ~profiles ~lies_per_agent ~sample_profile ~sample_lie ?(epsilon = 1e-9)
    mech =
  let trials = ref 0 in
  let violations = ref [] in
  for _ = 1 to profiles do
    let profile = sample_profile rng in
    for agent = 0 to mech.Mechanism.n - 1 do
      for _ = 1 to lies_per_agent do
        let lie = sample_lie rng agent profile.(agent) in
        incr trials;
        violations := try_lie ~epsilon mech profile agent lie !violations
      done
    done
  done;
  finish !trials !violations

let check_exhaustive ~profiles ~lies ?(epsilon = 1e-9) mech =
  let trials = ref 0 in
  let violations = ref [] in
  List.iter
    (fun profile ->
      for agent = 0 to mech.Mechanism.n - 1 do
        List.iter
          (fun lie ->
            incr trials;
            violations := try_lie ~epsilon mech profile agent lie !violations)
          (lies agent profile.(agent))
      done)
    profiles;
  finish !trials !violations

let is_strategyproof r = r.violations = []

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Shortest representation that round-trips; JSON has no non-finite
   numbers, so those become null. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let rec emit buf ~indent ~level v =
  let pad n = String.make (n * indent) ' ' in
  let newline_sep = indent > 0 in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          if newline_sep then begin
            Buffer.add_char buf '\n';
            Buffer.add_string buf (pad (level + 1))
          end;
          emit buf ~indent ~level:(level + 1) item)
        items;
      if newline_sep then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (pad level)
      end;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          if newline_sep then begin
            Buffer.add_char buf '\n';
            Buffer.add_string buf (pad (level + 1))
          end;
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf (if newline_sep then ": " else ":");
          emit buf ~indent ~level:(level + 1) item)
        fields;
      if newline_sep then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (pad level)
      end;
      Buffer.add_char buf '}'

let to_string ?(indent = 2) v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

let to_channel ?indent oc v =
  output_string oc (to_string ?indent v);
  output_char oc '\n'

let to_file ?indent path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel ?indent oc v)

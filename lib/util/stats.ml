type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> 0.
  | _ ->
      let total = List.fold_left ( +. ) 0. xs in
      total /. float_of_int (List.length xs)

let stddev xs =
  let n = List.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (sq /. float_of_int (n - 1))

(* [Float.compare] rather than polymorphic [compare]: same total order on
   well-behaved inputs, but no per-element boxing through the generic
   comparator and a defined (total) order when NaNs slip in. *)
let sorted_array xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a

let percentile_of_sorted a p =
  let n = Array.length a in
  if n = 1 then a.(0)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then a.(lo)
    else
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ ->
      if p < 0. || p > 100. then
        invalid_arg "Stats.percentile: p out of range";
      percentile_of_sorted (sorted_array xs) p

let median xs = percentile 50. xs

let summarize xs =
  (match xs with
  | [] -> invalid_arg "Stats.summarize: empty list"
  | _ -> ());
  (* One sort serves min/max/median/p95/p99; mean and stddev are computed
     from the same array instead of re-traversing the list three more
     times. *)
  let a = sorted_array xs in
  let n = Array.length a in
  let mean = Array.fold_left ( +. ) 0. a /. float_of_int n in
  let stddev =
    if n < 2 then 0.
    else
      let sq =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. a
      in
      sqrt (sq /. float_of_int (n - 1))
  in
  {
    n;
    mean;
    stddev;
    min = a.(0);
    max = a.(n - 1);
    median = percentile_of_sorted a 50.;
    p95 = percentile_of_sorted a 95.;
    p99 = percentile_of_sorted a 99.;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g p95=%.4g p99=%.4g max=%.4g" s.n
    s.mean s.stddev s.min s.median s.p95 s.p99 s.max

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  match xs with
  | [] -> [||]
  | _ ->
      let a = sorted_array xs in
      let lo = a.(0) and hi = a.(Array.length a - 1) in
      let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
      let counts = Array.make bins 0 in
      let place x =
        let idx = int_of_float ((x -. lo) /. width) in
        let idx = if idx >= bins then bins - 1 else idx in
        counts.(idx) <- counts.(idx) + 1
      in
      Array.iter place a;
      Array.mapi
        (fun i c ->
          let blo = lo +. (float_of_int i *. width) in
          (blo, blo +. width, c))
        counts

type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry option array;  (* [Some] in [0, size), [None] above *)
  mutable size : int;
  mutable next_seq : int;
}

(* Slots at or beyond [size] are [None] so that dequeued entries are not
   retained: a long-lived simulation engine would otherwise pin every dead
   message until its slot happened to be overwritten. *)

let create () = { data = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

(* [a] is less than [b] when its priority is smaller, with insertion order
   breaking ties — this determinism matters for reproducible simulation. *)
let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let entry q i = match q.data.(i) with Some e -> e | None -> assert false

let grow q =
  let cap = Array.length q.data in
  if q.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ndata = Array.make ncap None in
    Array.blit q.data 0 ndata 0 q.size;
    q.data <- ndata
  end

let push q prio value =
  let e = { prio; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q;
  q.data.(q.size) <- Some e;
  q.size <- q.size + 1;
  (* Sift up. *)
  let i = ref (q.size - 1) in
  while !i > 0 && less (entry q !i) (entry q ((!i - 1) / 2)) do
    let parent = (!i - 1) / 2 in
    let tmp = q.data.(!i) in
    q.data.(!i) <- q.data.(parent);
    q.data.(parent) <- tmp;
    i := parent
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = entry q 0 in
    q.size <- q.size - 1;
    q.data.(0) <- q.data.(q.size);
    q.data.(q.size) <- None;
    if q.size > 0 then begin
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && less (entry q l) (entry q !smallest) then smallest := l;
        if r < q.size && less (entry q r) (entry q !smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = q.data.(!i) in
          q.data.(!i) <- q.data.(!smallest);
          q.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.value)
  end

let peek q =
  if q.size = 0 then None
  else
    let e = entry q 0 in
    Some (e.prio, e.value)

let clear q =
  (* Drop the backing array entirely: [clear] is how long-lived engines
     recycle a queue, and keeping the old array would retain every entry
     still sitting in it. *)
  q.data <- [||];
  q.size <- 0;
  q.next_seq <- 0

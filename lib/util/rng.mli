(** Deterministic pseudo-random number generation for reproducible
    simulations and experiments.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    fast, well-distributed 64-bit generator whose state can be split into
    independent streams.  Every experiment in this repository threads an
    explicit [Rng.t] so that runs are bit-for-bit reproducible across
    machines. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Two
    generators created from the same seed produce identical streams. *)

val copy : t -> t
(** Independent snapshot of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output.  Used to give
    each simulated node its own stream. *)

val fork : t -> int -> t
(** [fork t k] derives an independent generator keyed by the index [k]
    without advancing [t]: [fork t k] is a pure function of [t]'s current
    state and [k], and distinct keys give independent streams.  Used to
    give campaign [k] of a gauntlet run its own replayable stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate); used for latency jitter. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val sample : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val choose : t -> 'a list -> 'a
(** Uniformly random element of a non-empty list. *)

val subset : t -> int -> int -> int list
(** [subset t k n] is a uniformly random [k]-subset of [0..n-1], sorted.
    Requires [0 <= k <= n]. *)

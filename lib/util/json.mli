(** Minimal JSON emitter — enough to write benchmark trajectories
    ([BENCH_*.json]) and other machine-readable experiment artifacts
    without an external dependency. Emission only; no parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render. [indent] spaces per nesting level (default 2); [indent:0]
    renders compact single-line JSON. Non-finite floats become [null]
    (JSON has no representation for them); finite floats use the shortest
    decimal form that round-trips. *)

val to_channel : ?indent:int -> out_channel -> t -> unit
(** [to_string] plus a trailing newline. *)

val to_file : ?indent:int -> string -> t -> unit
(** Write to [path], creating or truncating it. *)

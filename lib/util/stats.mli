(** Small summary-statistics toolkit used by the experiment harness and
    benchmark reporting. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
}

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val stddev : float list -> float
(** Sample standard deviation; 0. for fewer than two observations. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], linear interpolation between
    order statistics. Raises [Invalid_argument] on the empty list. *)

val median : float list -> float

val summarize : float list -> summary
(** Full summary. Raises [Invalid_argument] on the empty list. *)

val pp_summary : Format.formatter -> summary -> unit

val histogram : bins:int -> float list -> (float * float * int) array
(** [histogram ~bins xs] buckets [xs] into [bins] equal-width bins over
    [min..max]; each cell is [(lo, hi, count)]. *)

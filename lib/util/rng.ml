type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: one additive step then two xor-shift-multiply
   mixing rounds (constants from the reference implementation). *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

let fork t k =
  (* Keyed derivation: mix the index into the *current* state without
     advancing [t], so [fork t 0 .. fork t (m-1)] are m independent
     streams that do not depend on the order they are created in. *)
  let keyed =
    Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (k + 1)))
  in
  let probe = { state = keyed } in
  { state = bits64 probe }

(* Non-negative 62-bit int extracted from the 64-bit output. *)
let positive_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let max = 0x3FFF_FFFF_FFFF_FFFF in
  let limit = max - (max mod bound) in
  let rec draw () =
    let v = positive_int t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0, bound). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t rate =
  assert (rate > 0.);
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let sample t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let choose t l =
  match l with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth l (int t (List.length l))

let subset t k n =
  assert (0 <= k && k <= n);
  let a = permutation t n in
  let picked = Array.sub a 0 k in
  Array.sort Int.compare picked;
  Array.to_list picked

lib/core/equilibrium.mli: Action Damd_util Dmech Format

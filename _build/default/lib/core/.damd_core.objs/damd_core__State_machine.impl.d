lib/core/state_machine.ml: Action List

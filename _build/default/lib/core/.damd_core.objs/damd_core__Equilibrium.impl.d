lib/core/equilibrium.ml: Action Array Dmech Format List Printf

lib/core/strategy.ml: Action List State_machine

lib/core/knowledge.ml:

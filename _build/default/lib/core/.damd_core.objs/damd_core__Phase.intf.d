lib/core/phase.mli:

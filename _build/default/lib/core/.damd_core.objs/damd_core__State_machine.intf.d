lib/core/state_machine.mli: Action

lib/core/dmech.ml: Array

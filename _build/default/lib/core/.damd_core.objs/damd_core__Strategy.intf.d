lib/core/strategy.mli: Action State_machine

lib/core/knowledge.mli:

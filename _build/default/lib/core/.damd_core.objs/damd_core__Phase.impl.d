lib/core/phase.ml: List

lib/core/dmech.mli:

lib/core/faithfulness.ml: Equilibrium Format List Printf

lib/core/faithfulness.mli: Equilibrium Format

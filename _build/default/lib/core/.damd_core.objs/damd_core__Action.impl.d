lib/core/action.ml: Format

(** Classification of a node's external actions — §3.4 of the paper
    (Definitions 2–4).

    Every external action in a distributed mechanism specification is one
    of three kinds, and the whole proof strategy of the paper rests on the
    split: information-revelation deviations are neutralized by
    strategyproofness of the corresponding centralized mechanism,
    message-passing deviations by strong-CC, and computational deviations
    by strong-AC. *)

type t =
  | Information_revelation
      (** reveals (possibly partial, possibly untruthful but consistent)
          information about the node's own type — no more power than
          misreporting to a center (Def. 2) *)
  | Message_passing
      (** forwards a message received from another node (Def. 3) *)
  | Computation
      (** can affect the outcome rule beyond revelation/forwarding
          (Def. 4) — the genuinely new power distribution introduces *)
  | Internal  (** no external effect; unconstrained by the strategy space *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val all_external : t list
(** The three external classes, in the paper's order. *)

val is_external : t -> bool

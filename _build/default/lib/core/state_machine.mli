(** Mechanism specifications as state machines — §3.1 of the paper.

    A specification assigns to each state the action the designer wants
    taken; a strategy is any (feasible) alternative assignment. This module
    gives the paper's vocabulary an executable form: machines can be
    stepped under the suggested specification or under a deviating
    strategy, producing traces whose external actions are classified by
    [Action.t]. The faithful-FPSS implementation uses handler closures for
    efficiency, but the tests exercise this layer on small protocol
    machines to pin down the definitions. *)

type ('state, 'action) t = {
  initial : 'state;
  transition : 'state -> 'action -> 'state;
      (** the (deterministic) transition relation *)
  suggested : 'state -> 'action option;
      (** the specification [s : L -> A]; [None] once the machine halts *)
  classify : 'action -> Action.t;
}

type ('state, 'action) step = {
  before : 'state;
  action : 'action;
  cls : Action.t;
  after : 'state;
}

val trace :
  ?strategy:('state -> 'action option) ->
  max_steps:int ->
  ('state, 'action) t ->
  ('state, 'action) step list
(** Run the machine from its initial state under [strategy] (default: the
    suggested specification) until it halts or [max_steps] is reached. *)

val final_state :
  ?strategy:('state -> 'action option) ->
  max_steps:int ->
  ('state, 'action) t ->
  'state

val external_actions : ('state, 'action) step list -> ('action * Action.t) list
(** The externally visible behaviour of a trace (internal steps dropped) —
    what other nodes, and a checker, can observe. *)

val follows_specification :
  max_steps:int ->
  strategy:('state -> 'action option) ->
  ('state, 'action) t ->
  bool
(** Does [strategy] generate exactly the suggested trace? (Faithfulness of
    a single implementation run, not of the equilibrium.) *)

val deviation_point :
  max_steps:int ->
  strategy:('state -> 'action option) ->
  ('state, 'action) t ->
  (int * Action.t option) option
(** First step index at which [strategy] departs from the suggested
    specification, with the class of the suggested action at that point
    ([None] when the deviation is halting early / running long). [None]
    when the strategy is faithful. *)

(** Strategy decomposition — §3.3 of the paper.

    A suggested strategy decomposes as [s^m_i = (r^m_i, p^m_i, c^m_i)]:
    an information-revelation strategy, a message-passing strategy and a
    computational strategy. "Formally, we can model this as each strategy
    simulating the entire specification but only performing its
    corresponding external actions."

    This module makes that construction executable over
    [State_machine]: [project] builds the sub-strategy for one action
    class (it simulates the full machine, emitting only the actions of
    its class and skipping the rest as if performed by the other
    sub-strategies), and [compose] reassembles a full strategy from three
    sub-strategies. The round-trip law [compose (project IR s) (project MP
    s) (project C s) = s] on generated traces is property-tested in
    [test/test_core.ml] — the formal content of the paper's remark that
    "no pair of sub-strategies will engage in multiple external actions
    simultaneously" (each state demands exactly one action, owned by
    exactly one class). *)

type ('state, 'action) sub = {
  cls : Action.t;
  act : 'state -> 'action option;
      (** the action this sub-strategy performs in a state: [Some a] when
          the full strategy's action at that state belongs to [cls],
          [None] when it is another class's turn (or the machine halted) *)
}

val project :
  ('state, 'action) State_machine.t ->
  strategy:('state -> 'action option) ->
  Action.t ->
  ('state, 'action) sub
(** The [cls]-component of [strategy]. *)

val decompose :
  ('state, 'action) State_machine.t ->
  strategy:('state -> 'action option) ->
  ('state, 'action) sub * ('state, 'action) sub * ('state, 'action) sub
(** [(r, p, c)] — the paper's triple (internal actions are attributed to
    the computational strategy, which may always act without external
    effect). *)

val compose :
  ('state, 'action) State_machine.t ->
  ('state, 'action) sub list ->
  'state ->
  'action option
(** Reassemble a full strategy: in each state, the unique sub-strategy
    whose class owns the suggested action acts. Raises [Invalid_argument]
    if two subs claim the same state (they would "engage in multiple
    external actions simultaneously"). *)

val trace_of_class :
  ('state, 'action) State_machine.t ->
  strategy:('state -> 'action option) ->
  max_steps:int ->
  Action.t ->
  'action list
(** The externally visible actions of one class along the strategy's
    trace — e.g. exactly the messages a checker of this node would see
    forwarded. *)

(** Solution concepts and their knowledge assumptions — §3.5 of the paper.

    Every compatibility statement (IC/CC/AC) is made relative to an
    equilibrium concept, which is itself justified by an assumption about
    what nodes know. The paper's argument for ex post Nash:

    - dominant strategies need no assumptions about others at all, but are
      unattainable once self-interested nodes run the mechanism's own
      rules (Remark 3: the solution concept must adopt the "lowest common
      denominator");
    - Bayes–Nash / Nash require knowledge of others' private types
      (unrealistic in open networks);
    - ex post Nash sits between: no knowledge of others' *types*, only
      common knowledge of *rationality*.

    This module encodes that hierarchy so reports and documentation can
    speak about it precisely; [Equilibrium] implements the ex post checks
    themselves. *)

type t =
  | Dominant_strategy
      (** best response whatever others do — strategyproofness's concept *)
  | Ex_post_Nash
      (** best response whatever others' types, provided others follow the
          suggested strategies — the paper's concept *)
  | Nash
      (** best response given others' actual strategies and types *)

val to_string : t -> string

val knowledge_assumption : t -> string
(** Prose statement of what nodes must know, per §3.5. *)

val weaker_assumption_than : t -> t -> bool
(** [weaker_assumption_than a b] is true when concept [a] demands strictly
    less knowledge of other nodes than [b]: dominant < ex post < Nash. *)

val strongest_feasible : center:bool -> t
(** The paper's Remark 3 as a decision rule: with a trusted center
    executing the rules ([center = true]) dominant-strategy implementation
    is attainable; once nodes run the mechanism themselves the lowest
    common denominator is ex post Nash. *)

type 'state t = {
  name : string;
  run : 'state -> 'state;
  certify : 'state -> (unit, string) result;
}

type 'state progress = {
  state : 'state;
  restarts : (string * string) list;
}

type 'state outcome =
  | Completed of 'state progress
  | Stuck of { phase : string; reason : string; progress : 'state progress }

let execute ?(max_restarts = 3) initial phases =
  let rec run_phase progress phase attempt =
    let state = phase.run progress.state in
    match phase.certify state with
    | Ok () -> Ok { progress with state }
    | Error reason ->
        let progress =
          { state; restarts = progress.restarts @ [ (phase.name, reason) ] }
        in
        if attempt >= max_restarts then Error (phase.name, reason, progress)
        else run_phase progress phase (attempt + 1)
  in
  let rec go progress = function
    | [] -> Completed progress
    | phase :: rest -> (
        match run_phase progress phase 0 with
        | Ok progress -> go progress rest
        | Error (name, reason, progress) -> Stuck { phase = name; reason; progress })
  in
  go { state = initial; restarts = [] } phases

let total_restarts p = List.length p.restarts

let uncertified phase = { phase with certify = (fun _ -> Ok ()) }

type ('state, 'action) t = {
  initial : 'state;
  transition : 'state -> 'action -> 'state;
  suggested : 'state -> 'action option;
  classify : 'action -> Action.t;
}

type ('state, 'action) step = {
  before : 'state;
  action : 'action;
  cls : Action.t;
  after : 'state;
}

let trace ?strategy ~max_steps m =
  let strategy = match strategy with Some s -> s | None -> m.suggested in
  let rec go state steps acc =
    if steps >= max_steps then List.rev acc
    else
      match strategy state with
      | None -> List.rev acc
      | Some action ->
          let after = m.transition state action in
          let step = { before = state; action; cls = m.classify action; after } in
          go after (steps + 1) (step :: acc)
  in
  go m.initial 0 []

let final_state ?strategy ~max_steps m =
  match List.rev (trace ?strategy ~max_steps m) with
  | [] -> m.initial
  | last :: _ -> last.after

let external_actions steps =
  List.filter_map
    (fun s -> if Action.is_external s.cls then Some (s.action, s.cls) else None)
    steps

let follows_specification ~max_steps ~strategy m =
  let suggested = trace ~max_steps m in
  let actual = trace ~strategy ~max_steps m in
  List.length suggested = List.length actual
  && List.for_all2 (fun a b -> a.action = b.action) suggested actual

let deviation_point ~max_steps ~strategy m =
  let suggested = trace ~max_steps m in
  let actual = trace ~strategy ~max_steps m in
  let rec scan i s a =
    match (s, a) with
    | [], [] -> None
    | sh :: st, ah :: at ->
        if sh.action = ah.action then scan (i + 1) st at else Some (i, Some sh.cls)
    | _ :: _, [] | [], _ :: _ -> Some (i, None)
  in
  scan 0 suggested actual

(** Distributed mechanism specifications — Definition 1 of the paper:
    [dM = (g, Sigma, s^m)].

    The outcome rule [g] maps the strategies nodes actually run (plus
    their private types) to an outcome; the suggested strategy [s^m] is
    what the designer wants each node to run. Strategies are abstract
    here — for the faithful-FPSS instantiation a strategy is a node
    implementation for the network simulator; for the toy examples it is a
    state-machine policy.

    A strategy is tagged with the action classes in which it deviates from
    the suggested strategy, so the equilibrium layer can separate IC / CC /
    AC and check the paper's strong-CC / strong-AC conditions. *)

type ('theta, 'strategy, 'outcome) t = {
  n : int;
  suggested : int -> 'strategy;
      (** [s^m_i]; the strategy is conditioned on the node's type at
          outcome-evaluation time, so it needs only the node index here *)
  outcome : 'strategy array -> 'theta array -> 'outcome;
      (** the outcome rule [g(s(theta))]: run the distributed system with
          these per-node strategies and private types *)
  utility : int -> 'theta -> 'outcome -> float;
      (** [u_i(o; theta_i)], quasilinear *)
}

val suggested_profile : ('theta, 'strategy, 'outcome) t -> 'strategy array

val suggested_outcome : ('theta, 'strategy, 'outcome) t -> 'theta array -> 'outcome
(** [g(s^m(theta))] — the outcome the designer intends. *)

val unilateral :
  ('theta, 'strategy, 'outcome) t -> int -> 'strategy -> 'strategy array
(** The profile where node [i] plays the given strategy and everyone else
    follows the suggested specification — the profile every ex post Nash
    comparison is made against. *)

val deviation_gain :
  ('theta, 'strategy, 'outcome) t -> 'theta array -> int -> 'strategy -> float
(** [u_i] under the unilateral deviation minus [u_i] under the suggested
    profile, for true types [theta]. Faithfulness (Def. 8) demands this is
    never positive. *)

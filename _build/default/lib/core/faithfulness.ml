type evidence = {
  centralized_strategyproof : bool;
  centralized_trials : int;
  strong_cc : Equilibrium.report;
  strong_ac : Equilibrium.report;
  revelation_consistent : bool;
}

type verdict = {
  faithful : bool;
  failures : string list;
}

let certify e =
  let failures =
    List.filter_map
      (fun (ok, reason) -> if ok then None else Some reason)
      [
        (e.centralized_strategyproof, "centralized mechanism not strategyproof");
        ( Equilibrium.holds e.strong_cc,
          Printf.sprintf "strong-CC violated (max gain %g)" e.strong_cc.Equilibrium.max_gain
        );
        ( Equilibrium.holds e.strong_ac,
          Printf.sprintf "strong-AC violated (max gain %g)" e.strong_ac.Equilibrium.max_gain
        );
        (e.revelation_consistent, "information revelation not consistent");
      ]
  in
  { faithful = failures = []; failures }

let pp_verdict ppf v =
  if v.faithful then Format.fprintf ppf "FAITHFUL (ex post Nash)"
  else
    Format.fprintf ppf "@[<v>NOT FAITHFUL:@,%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
      v.failures

let pp_evidence ppf e =
  Format.fprintf ppf
    "@[<v>centralized strategyproof: %b (%d trials)@,%a@,%a@,revelation consistent: %b@]"
    e.centralized_strategyproof e.centralized_trials Equilibrium.pp_report e.strong_cc
    Equilibrium.pp_report e.strong_ac e.revelation_consistent

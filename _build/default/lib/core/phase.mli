(** Phase decomposition with certified checkpoints — §3.8–3.9 of the paper.

    "A distributed mechanism can be decomposed into disjoint phases, each
    of which is proven strong-CC and strong-AC without worrying about
    joint deviations involving actions in other phases. Phases are
    separated during runtime with checkpoints where some node(s) certify a
    phase outcome and start a subsequent phase."

    A phase transforms a state and a checkpoint certifies the result; a
    failed certificate restarts the phase (the paper's construction-phase
    penalty: the mechanism does not progress). The ablation experiment E8
    runs the same protocol with certification disabled to show that the
    checkpoints are load-bearing. *)

type 'state t = {
  name : string;
  run : 'state -> 'state;
  certify : 'state -> (unit, string) result;
      (** [Ok ()] green-lights the next phase; [Error reason] restarts this
          one. The checkpointing node in the FPSS extension is the bank. *)
}

type 'state progress = {
  state : 'state;
  restarts : (string * string) list;
      (** (phase name, reason) for every restart that occurred, in order *)
}

type 'state outcome =
  | Completed of 'state progress
  | Stuck of { phase : string; reason : string; progress : 'state progress }
      (** a phase kept failing certification [max_restarts] times — with a
          persistent deviant this is the paper's "penalty of no progress" *)

val execute : ?max_restarts:int -> 'state -> 'state t list -> 'state outcome
(** Run phases in order; each must certify before the next begins
    ([max_restarts] per phase, default 3). *)

val total_restarts : 'state progress -> int

val uncertified : 'state t -> 'state t
(** The ablation: same phase, certificate always accepts. *)

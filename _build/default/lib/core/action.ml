type t = Information_revelation | Message_passing | Computation | Internal

let to_string = function
  | Information_revelation -> "information-revelation"
  | Message_passing -> "message-passing"
  | Computation -> "computation"
  | Internal -> "internal"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all_external = [ Information_revelation; Message_passing; Computation ]

let is_external = function
  | Information_revelation | Message_passing | Computation -> true
  | Internal -> false

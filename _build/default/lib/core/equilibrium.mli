(** Empirical equilibrium analysis: ex post Nash, IC, CC, AC and the
    strong variants (Definitions 6–13 of the paper).

    The paper *proves* these properties; this module *checks* them on
    concrete systems by sweeping sampled type profiles against a library
    of named deviations. A clean sweep is evidence for the theorem (and
    regression protection for the implementation); the baselines with
    checking disabled are expected to produce violations, reproducing the
    incentive problem the paper sets out to fix.

    Each deviation is tagged with the action classes it touches:
    - IC examines deviations touching only [Information_revelation];
    - strong-CC examines deviations touching [Message_passing] possibly
      *combined with* revelation/computation deviations (Def. 12 quantifies
      over "whatever its computational and information-revelation
      actions") — i.e. any deviation whose classes include message-passing;
    - strong-AC symmetrically for [Computation];
    - the full ex post Nash check examines everything. *)

type ('theta, 'strategy) deviation = {
  name : string;
  classes : Action.t list;  (** external action classes the deviation touches *)
  build : int -> 'strategy;  (** deviant strategy for node [i] *)
  applies_to : int -> bool;  (** which nodes can mount it (default: all) *)
}

val deviation :
  ?applies_to:(int -> bool) ->
  name:string ->
  classes:Action.t list ->
  (int -> 'strategy) ->
  ('theta, 'strategy) deviation

type violation = {
  deviation_name : string;
  agent : int;
  profile_index : int;  (** which sampled profile produced it *)
  gain : float;
}

type report = {
  property : string;
  profiles_tested : int;
  deviations_tested : int;
  comparisons : int;
  violations : violation list;  (** largest gain first *)
  max_gain : float;
}

val holds : report -> bool

val pp_report : Format.formatter -> report -> unit

val check :
  property:string ->
  rng:Damd_util.Rng.t ->
  profiles:int ->
  sample_types:(Damd_util.Rng.t -> 'theta array) ->
  deviations:('theta, 'strategy) deviation list ->
  ?epsilon:float ->
  ('theta, 'strategy, 'outcome) Dmech.t ->
  report
(** For each sampled profile, each deviation, and each node it applies to,
    compare the deviant's utility against the faithful run. Gains at or
    below [epsilon] (default 1e-9) are ignored. *)

val ex_post_nash :
  rng:Damd_util.Rng.t ->
  profiles:int ->
  sample_types:(Damd_util.Rng.t -> 'theta array) ->
  deviations:('theta, 'strategy) deviation list ->
  ?epsilon:float ->
  ('theta, 'strategy, 'outcome) Dmech.t ->
  report
(** [check] over the whole deviation library: Definition 8's faithfulness,
    relative to that library. *)

val strong_cc :
  rng:Damd_util.Rng.t ->
  profiles:int ->
  sample_types:(Damd_util.Rng.t -> 'theta array) ->
  deviations:('theta, 'strategy) deviation list ->
  ?epsilon:float ->
  ('theta, 'strategy, 'outcome) Dmech.t ->
  report
(** Definition 12: restrict to deviations whose classes include
    [Message_passing] (alone or jointly with other classes). *)

val strong_ac :
  rng:Damd_util.Rng.t ->
  profiles:int ->
  sample_types:(Damd_util.Rng.t -> 'theta array) ->
  deviations:('theta, 'strategy) deviation list ->
  ?epsilon:float ->
  ('theta, 'strategy, 'outcome) Dmech.t ->
  report
(** Definition 13: deviations whose classes include [Computation]. *)

val best_response_dynamics :
  start:'strategy array ->
  candidates:(int -> 'strategy list) ->
  types:'theta array ->
  max_rounds:int ->
  ?epsilon:float ->
  ('theta, 'strategy, 'outcome) Dmech.t ->
  [ `Converged of 'strategy array * int | `No_convergence of 'strategy array ]
(** Sequential (Gauss–Seidel) best-response dynamics over a finite
    candidate set: each round, each node in turn switches to a candidate
    strategy only if it *strictly* improves its utility (by more than
    [epsilon]) against the others' current strategies — the inertia
    reading of the paper's Remark 1 benevolence. Returns the profile and
    the number of rounds once a full round passes with no switch.

    This probes Remark 2 (equilibrium multiplicity): from a profile with a
    single deviant the dynamics fall back to the suggested specification
    (faithful play is strictly better once everyone else is faithful,
    because the deviation gets punished); but a coalition of stallers can
    be a *bad* weak equilibrium that inertia alone never leaves — which is
    exactly why the paper argues some obedient nodes act as a correlating
    device selecting the suggested equilibrium. Experiment E19. *)

val incentive_compatible :
  rng:Damd_util.Rng.t ->
  profiles:int ->
  sample_types:(Damd_util.Rng.t -> 'theta array) ->
  deviations:('theta, 'strategy) deviation list ->
  ?epsilon:float ->
  ('theta, 'strategy, 'outcome) Dmech.t ->
  report
(** Definition 9: deviations touching only [Information_revelation]. *)

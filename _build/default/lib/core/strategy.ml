type ('state, 'action) sub = {
  cls : Action.t;
  act : 'state -> 'action option;
}

let project m ~strategy cls =
  let act state =
    match strategy state with
    | None -> None
    | Some action ->
        let owner = m.State_machine.classify action in
        let owner =
          (* internal actions ride with the computational strategy *)
          if owner = Action.Internal then Action.Computation else owner
        in
        if owner = cls then Some action else None
  in
  { cls; act }

let decompose m ~strategy =
  ( project m ~strategy Action.Information_revelation,
    project m ~strategy Action.Message_passing,
    project m ~strategy Action.Computation )

let compose _m subs state =
  let claims = List.filter_map (fun sub -> sub.act state) subs in
  match claims with
  | [] -> None
  | [ action ] -> Some action
  | _ :: _ :: _ ->
      invalid_arg
        "Strategy.compose: two sub-strategies act in the same state (the \
         specification demands one action per state)"

let trace_of_class m ~strategy ~max_steps cls =
  State_machine.trace ~strategy ~max_steps m
  |> List.filter_map (fun step ->
         let owner = step.State_machine.cls in
         let owner = if owner = Action.Internal then Action.Computation else owner in
         if owner = cls then Some step.State_machine.action else None)

(** The faithfulness certificate — Propositions 1 and 2 as executable
    checks.

    Proposition 2 reduces faithfulness of a distributed mechanism
    specification to three pieces of evidence:

    + the corresponding centralized mechanism is strategyproof,
    + the specification is strong-CC,
    + the specification is strong-AC,

    plus the technical side condition that labelled information-revelation
    actions are *consistent* (Remark 4). This module assembles empirical
    versions of those pieces into a verdict, which the experiment harness
    prints as the reproduction of Theorem 1. *)

type evidence = {
  centralized_strategyproof : bool;
  centralized_trials : int;
  strong_cc : Equilibrium.report;
  strong_ac : Equilibrium.report;
  revelation_consistent : bool;
      (** checked structurally by the instantiation (e.g. the bank's
          cross-validation of announced costs in the faithful FPSS) *)
}

type verdict = {
  faithful : bool;
  failures : string list;  (** human-readable reasons when not faithful *)
}

val certify : evidence -> verdict
(** Proposition 2: all four pieces must hold. *)

val pp_verdict : Format.formatter -> verdict -> unit

val pp_evidence : Format.formatter -> evidence -> unit

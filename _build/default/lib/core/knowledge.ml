type t = Dominant_strategy | Ex_post_Nash | Nash

let to_string = function
  | Dominant_strategy -> "dominant strategy"
  | Ex_post_Nash -> "ex post Nash"
  | Nash -> "Nash"

let knowledge_assumption = function
  | Dominant_strategy ->
      "nothing: a node need not know others' types nor believe them rational"
  | Ex_post_Nash ->
      "common knowledge of rationality only: no knowledge of others' private types"
  | Nash -> "knowledge of other nodes' private types (usually unrealistic)"

let rank = function Dominant_strategy -> 0 | Ex_post_Nash -> 1 | Nash -> 2

let weaker_assumption_than a b = rank a < rank b

let strongest_feasible ~center = if center then Dominant_strategy else Ex_post_Nash

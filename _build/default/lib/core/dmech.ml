type ('theta, 'strategy, 'outcome) t = {
  n : int;
  suggested : int -> 'strategy;
  outcome : 'strategy array -> 'theta array -> 'outcome;
  utility : int -> 'theta -> 'outcome -> float;
}

let suggested_profile dm = Array.init dm.n dm.suggested

let suggested_outcome dm types = dm.outcome (suggested_profile dm) types

let unilateral dm i strategy =
  let profile = suggested_profile dm in
  profile.(i) <- strategy;
  profile

let deviation_gain dm types i strategy =
  let faithful = dm.utility i types.(i) (suggested_outcome dm types) in
  let deviant = dm.utility i types.(i) (dm.outcome (unilateral dm i strategy) types) in
  deviant -. faithful

(** The Vickrey–Clarke–Groves mechanism with the Clarke pivot rule.

    Given a finite feasible outcome set and per-node valuations, VCG picks
    the welfare-maximizing outcome and pays each node the externality it
    imposes on the others:

    [t_i = sum over j<>i of v_j at the chosen outcome, minus the best
    attainable welfare of the others alone].

    Truthful reporting is then a dominant strategy (strategyproofness) —
    the property the paper's Proposition 2 requires of the "corresponding
    centralized mechanism", and which [Strategyproof] verifies empirically
    for every instantiation in this repository. *)

type ('theta, 'outcome) problem = {
  n : int;
  outcomes : 'outcome list;  (** feasible outcomes, independent of reports *)
  valuation : int -> 'theta -> 'outcome -> float;
}

val run : ('theta, 'outcome) problem -> 'theta array -> 'outcome * float array
(** Welfare-maximizing outcome (first in list order on ties — a
    deterministic, report-independent tie-break) and the Clarke transfers.
    Raises [Invalid_argument] if [outcomes] is empty or the report vector
    has the wrong arity. *)

val mechanism : ('theta, 'outcome) problem -> ('theta, 'outcome) Mechanism.t
(** Package as a [Mechanism.t]. *)

(** Empirical strategyproofness checking (Definition 5 of the paper).

    A mechanism is strategyproof when no node can gain by misreporting its
    type, for any true profile and any misreport. This module turns that
    universally-quantified statement into a randomized sweep: sample type
    profiles, sample (or enumerate) misreports, and record every violation
    with its witness. Theorems should produce zero violations; the naive
    baselines in this repository exist precisely to produce some. *)

type 'theta violation = {
  profile : 'theta array;  (** the true types *)
  agent : int;  (** who deviated *)
  lie : 'theta;  (** the profitable misreport *)
  truthful_utility : float;
  deviant_utility : float;
  gain : float;  (** [deviant - truthful], strictly positive *)
}

type 'theta report = {
  trials : int;  (** profile × agent × lie combinations tested *)
  violations : 'theta violation list;  (** worst (largest-gain) first *)
  max_gain : float;  (** 0. when no violation was found *)
}

val check :
  rng:Damd_util.Rng.t ->
  profiles:int ->
  lies_per_agent:int ->
  sample_profile:(Damd_util.Rng.t -> 'theta array) ->
  sample_lie:(Damd_util.Rng.t -> int -> 'theta -> 'theta) ->
  ?epsilon:float ->
  ('theta, 'outcome) Mechanism.t ->
  'theta report
(** Randomized sweep. [sample_lie rng i theta_i] proposes a misreport for
    node [i] whose true type is [theta_i]. Gains at or below [epsilon]
    (default [1e-9]) are attributed to floating-point noise and ignored. *)

val check_exhaustive :
  profiles:'theta array list ->
  lies:(int -> 'theta -> 'theta list) ->
  ?epsilon:float ->
  ('theta, 'outcome) Mechanism.t ->
  'theta report
(** Deterministic sweep over explicitly enumerated profiles and lies; used
    for small discrete type spaces where full coverage is feasible. *)

val is_strategyproof : 'theta report -> bool
(** No violations found. *)

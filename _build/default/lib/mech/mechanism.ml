type ('theta, 'outcome) t = {
  n : int;
  run : 'theta array -> 'outcome * float array;
  valuation : int -> 'theta -> 'outcome -> float;
}

let utility m i true_type reports =
  if Array.length reports <> m.n then invalid_arg "Mechanism.utility: arity";
  let outcome, transfers = m.run reports in
  m.valuation i true_type outcome +. transfers.(i)

let social_welfare m types o =
  let acc = ref 0. in
  for i = 0 to m.n - 1 do
    acc := !acc +. m.valuation i types.(i) o
  done;
  !acc

let budget m reports =
  let _, transfers = m.run reports in
  Array.fold_left ( +. ) 0. transfers

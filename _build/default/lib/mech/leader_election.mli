(** The paper's §3 motivating toy: leader election with rational nodes.

    A designer wants the most powerful node elected to run a CPU-intensive
    task, but serving costs the winner. Under the naive specification
    ("report your power truthfully; the maximum wins, no compensation") a
    rational node with positive serving cost understates its power and the
    protocol "fails to elect the most powerful node".

    The faithful fix is a *second-score auction with verified delivery*:
    each node reports (power, cost); the node maximizing the score
    [benefit * power - cost] wins and — because an elected node's real
    power is revealed by actually running the task (catch-and-punish on
    delivery) — is paid [benefit * true_power - second_best_score].
    Conditional on winning, the winner's utility is its true score minus
    the best competing score, independent of its own report, so truthful
    reporting is (weakly) dominant; see [test/test_mech.ml]. *)

type theta = { power : float; cost : float }

type outcome = {
  leader : int;
  runner_up_score : float;
      (** best score among the non-elected nodes; determines the verified
          payment. 0 when [n = 1]. *)
}

val naive : n:int -> (theta, outcome) Mechanism.t
(** Elect the highest reported power (lowest index on ties); no payment.
    The leader's valuation is [-cost]; others' 0. Not strategyproof:
    any node with positive cost gains by understating power. *)

val second_score : n:int -> benefit:float -> (theta, outcome) Mechanism.t
(** The faithful mechanism described above. Strategyproof under verified
    delivery. *)

val score : benefit:float -> theta -> float
(** [benefit * power - cost]. *)

val most_powerful : theta array -> int
(** Index of the truly most powerful node (lowest index on ties) — the
    designer's intended outcome. *)

val welfare_optimal : benefit:float -> theta array -> int
(** Index of the true-score-maximizing node. *)

val sample_theta : Damd_util.Rng.t -> theta
(** Powers uniform in [1, 10], serving costs uniform in [0, 5]. *)

val sample_profile : n:int -> Damd_util.Rng.t -> theta array

val sample_lie : Damd_util.Rng.t -> int -> theta -> theta
(** A random misreport perturbing power and/or cost. *)

val selfish_report : theta -> theta
(** The §3 deviation: claim zero power so as never to be drafted. *)

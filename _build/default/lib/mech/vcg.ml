type ('theta, 'outcome) problem = {
  n : int;
  outcomes : 'outcome list;
  valuation : int -> 'theta -> 'outcome -> float;
}

let argmax_welfare p reports ~exclude =
  (* Welfare over all nodes except [exclude] (-1 for none); first-best on
     ties by list order. *)
  let welfare o =
    let acc = ref 0. in
    for j = 0 to p.n - 1 do
      if j <> exclude then acc := !acc +. p.valuation j reports.(j) o
    done;
    !acc
  in
  match p.outcomes with
  | [] -> invalid_arg "Vcg.run: empty outcome set"
  | o0 :: rest ->
      let best = ref o0 and best_w = ref (welfare o0) in
      List.iter
        (fun o ->
          let w = welfare o in
          if w > !best_w then begin
            best := o;
            best_w := w
          end)
        rest;
      (!best, !best_w)

let run p reports =
  if Array.length reports <> p.n then invalid_arg "Vcg.run: arity";
  let o_star, _ = argmax_welfare p reports ~exclude:(-1) in
  let transfers =
    Array.init p.n (fun i ->
        let others_at_star = ref 0. in
        for j = 0 to p.n - 1 do
          if j <> i then others_at_star := !others_at_star +. p.valuation j reports.(j) o_star
        done;
        let _, others_best = argmax_welfare p reports ~exclude:i in
        !others_at_star -. others_best)
  in
  (o_star, transfers)

let mechanism p = { Mechanism.n = p.n; run = run p; valuation = p.valuation }

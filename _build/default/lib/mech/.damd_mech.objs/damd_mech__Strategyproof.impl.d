lib/mech/strategyproof.ml: Array List Mechanism

lib/mech/mechanism.ml: Array

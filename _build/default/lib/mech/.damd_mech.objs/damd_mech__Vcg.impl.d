lib/mech/vcg.ml: Array List Mechanism

lib/mech/properties.ml: Array Float List Mechanism

lib/mech/leader_election.ml: Array Damd_util Float Mechanism

lib/mech/vcg.mli: Mechanism

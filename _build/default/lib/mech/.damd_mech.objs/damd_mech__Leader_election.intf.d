lib/mech/leader_election.mli: Damd_util Mechanism

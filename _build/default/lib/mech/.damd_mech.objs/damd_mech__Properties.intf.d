lib/mech/properties.mli: Damd_util Mechanism

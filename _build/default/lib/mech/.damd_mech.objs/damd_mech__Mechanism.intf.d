lib/mech/mechanism.mli:

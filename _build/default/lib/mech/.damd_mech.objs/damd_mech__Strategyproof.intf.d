lib/mech/strategyproof.mli: Damd_util Mechanism

(** Centralized (direct-revelation) mechanisms — §3.2 of the paper.

    A mechanism [M = (f, Θ)] asks each node to report a type and maps the
    report vector to an outcome and a vector of transfers. Nodes have
    quasilinear utility: valuation of the outcome under their *true* type,
    plus the transfer they receive. This module fixes the vocabulary that
    [Vcg], [Strategyproof] and the distributed layers share. *)

type ('theta, 'outcome) t = {
  n : int;  (** number of participating nodes *)
  run : 'theta array -> 'outcome * float array;
      (** [run reports] is the chosen outcome and the transfer *to* each
          node (negative = the node pays). The report array must have
          length [n]. *)
  valuation : int -> 'theta -> 'outcome -> float;
      (** [valuation i theta_i o] is node [i]'s value for outcome [o] when
          its true type is [theta_i]. *)
}

val utility : ('theta, 'outcome) t -> int -> 'theta -> 'theta array -> float
(** [utility m i true_type reports] runs the mechanism on [reports] and
    returns node [i]'s quasilinear utility
    [valuation i true_type outcome +. transfer_i]. *)

val social_welfare : ('theta, 'outcome) t -> 'theta array -> 'outcome -> float
(** Sum of all nodes' valuations for [o] under the given (true) types. *)

val budget : ('theta, 'outcome) t -> 'theta array -> float
(** Sum of transfers paid out by the mechanism on this report vector
    (negative when the mechanism collects money, as the Clarke tax does). *)

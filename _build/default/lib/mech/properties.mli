(** Beyond strategyproofness: the other standard mechanism properties,
    checked empirically.

    These matter for the paper's story in two places: individual
    rationality under truthful play is what justifies the assumption that
    nodes want to participate at all (and that a construction-phase stall
    is a real penalty), and the budget profile of the VCG payments is the
    classic caveat of the FPSS mechanism (the "overcharging" literature
    that followed it). Each check samples truthful profiles and reports
    witnesses rather than proofs, in the same style as
    [Strategyproof]. *)

type report = {
  trials : int;
  failures : int;
  worst : float;
      (** most negative utility (IR) / most negative surplus (budget) seen;
          0. when no failure *)
}

val individually_rational :
  rng:Damd_util.Rng.t ->
  trials:int ->
  sample_profile:(Damd_util.Rng.t -> 'theta array) ->
  ?epsilon:float ->
  ('theta, 'outcome) Mechanism.t ->
  report
(** Under truthful play, does every node get utility >= 0? *)

val budget_balanced :
  rng:Damd_util.Rng.t ->
  trials:int ->
  sample_profile:(Damd_util.Rng.t -> 'theta array) ->
  ?epsilon:float ->
  ('theta, 'outcome) Mechanism.t ->
  report
(** Do the transfers sum to (at most) zero — i.e. the mechanism never
    injects money? [failures] counts profiles where the mechanism runs a
    deficit; [worst] is the largest deficit. (The Clarke tax typically
    runs a *surplus*, which passes.) *)

val efficient :
  rng:Damd_util.Rng.t ->
  trials:int ->
  sample_profile:(Damd_util.Rng.t -> 'theta array) ->
  candidates:'outcome list ->
  ?epsilon:float ->
  ('theta, 'outcome) Mechanism.t ->
  report
(** Does the truthful outcome maximize social welfare over the
    [candidates] outcome set? [worst] is the largest welfare shortfall. *)

val all_pass : report -> bool

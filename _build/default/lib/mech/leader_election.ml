module Rng = Damd_util.Rng

type theta = { power : float; cost : float }

type outcome = { leader : int; runner_up_score : float }

let score ~benefit (t : theta) = (benefit *. t.power) -. t.cost

let naive ~n =
  let run (reports : theta array) =
    if Array.length reports <> n then invalid_arg "Leader_election.naive: arity";
    let best = ref 0 in
    for i = 1 to n - 1 do
      if reports.(i).power > reports.(!best).power then best := i
    done;
    ({ leader = !best; runner_up_score = 0. }, Array.make n 0.)
  in
  {
    Mechanism.n;
    run;
    valuation = (fun i theta o -> if o.leader = i then -.theta.cost else 0.);
  }

let second_score ~n ~benefit =
  let run (reports : theta array) =
    if Array.length reports <> n then
      invalid_arg "Leader_election.second_score: arity";
    let best = ref 0 in
    for i = 1 to n - 1 do
      if score ~benefit reports.(i) > score ~benefit reports.(!best) then best := i
    done;
    let runner_up = ref 0. and found = ref false in
    for i = 0 to n - 1 do
      if i <> !best then begin
        let s = score ~benefit reports.(i) in
        if (not !found) || s > !runner_up then begin
          runner_up := s;
          found := true
        end
      end
    done;
    ({ leader = !best; runner_up_score = (if !found then !runner_up else 0.) },
     Array.make n 0.)
  in
  {
    Mechanism.n;
    run;
    valuation =
      (fun i theta o ->
        (* Verified delivery: the winner is paid against its *true* power,
           so the payment lives in the valuation, not the transfer vector
           (which the mechanism computes from reports alone). *)
        if o.leader = i then
          (benefit *. theta.power) -. o.runner_up_score -. theta.cost
        else 0.);
  }

let most_powerful profile =
  let best = ref 0 in
  Array.iteri (fun i t -> if t.power > profile.(!best).power then best := i) profile;
  !best

let welfare_optimal ~benefit profile =
  let best = ref 0 in
  Array.iteri
    (fun i t -> if score ~benefit t > score ~benefit profile.(!best) then best := i)
    profile;
  !best

let sample_theta rng = { power = Rng.float_in rng 1. 10.; cost = Rng.float_in rng 0. 5. }

let sample_profile ~n rng = Array.init n (fun _ -> sample_theta rng)

let sample_lie rng _i (theta : theta) =
  {
    power = Float.max 0. (theta.power +. Rng.float_in rng (-5.) 5.);
    cost = Float.max 0. (theta.cost +. Rng.float_in rng (-3.) 3.);
  }

let selfish_report (theta : theta) = { theta with power = 0. }

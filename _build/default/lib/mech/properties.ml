type report = {
  trials : int;
  failures : int;
  worst : float;
}

let sweep ~rng ~trials ~sample_profile measure =
  let failures = ref 0 and worst = ref 0. in
  for _ = 1 to trials do
    let profile = sample_profile rng in
    let violation = measure profile in
    if violation > 0. then begin
      incr failures;
      if violation > !worst then worst := violation
    end
  done;
  { trials; failures = !failures; worst = -. !worst }

let individually_rational ~rng ~trials ~sample_profile ?(epsilon = 1e-9) mech =
  sweep ~rng ~trials ~sample_profile (fun profile ->
      let worst = ref 0. in
      for i = 0 to mech.Mechanism.n - 1 do
        let u = Mechanism.utility mech i profile.(i) profile in
        if u < -.epsilon && -.u > !worst then worst := -.u
      done;
      !worst)

let budget_balanced ~rng ~trials ~sample_profile ?(epsilon = 1e-9) mech =
  sweep ~rng ~trials ~sample_profile (fun profile ->
      let paid_out = Mechanism.budget mech profile in
      if paid_out > epsilon then paid_out else 0.)

let efficient ~rng ~trials ~sample_profile ~candidates ?(epsilon = 1e-9) mech =
  sweep ~rng ~trials ~sample_profile (fun profile ->
      let chosen, _ = mech.Mechanism.run profile in
      let welfare o = Mechanism.social_welfare mech profile o in
      let best =
        List.fold_left (fun acc o -> Float.max acc (welfare o)) (welfare chosen)
          candidates
      in
      let shortfall = best -. welfare chosen in
      if shortfall > epsilon then shortfall else 0.)

let all_pass r = r.failures = 0

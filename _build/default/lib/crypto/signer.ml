type registry = { seed : int; keys : (int, string) Hashtbl.t }

type signed = { signer : int; payload : string; tag : string }

let create_registry ~seed = { seed; keys = Hashtbl.create 64 }

let key_of reg id =
  match Hashtbl.find_opt reg.keys id with
  | Some k -> k
  | None ->
      (* Deterministic per-identity key: hash of the registry seed and id. *)
      let k = Sha256.digest (Printf.sprintf "damd-key:%d:%d" reg.seed id) in
      Hashtbl.add reg.keys id k;
      k

let sign ~key ~signer payload =
  let tag = Hmac.mac ~key (Printf.sprintf "%d|%s" signer payload) in
  { signer; payload; tag }

let verify reg s =
  let key = key_of reg s.signer in
  Hmac.verify ~key (Printf.sprintf "%d|%s" s.signer s.payload) ~tag:s.tag

let tamper s ~payload = { s with payload }

(** Pure-OCaml SHA-256 (FIPS 180-4).

    The faithful-FPSS bank compares digests of routing ([DATA2]) and pricing
    ([DATA3*]) tables rather than whole tables, and the signed bank channel
    is HMAC-SHA-256; this module is the hash primitive underneath both.
    Verified against the FIPS test vectors in [test/test_crypto.ml]. *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb bytes. May be called repeatedly. *)

val finalize : ctx -> string
(** Finish and return the 32-byte raw digest. The context must not be used
    afterwards. *)

val digest : string -> string
(** One-shot: 32-byte raw digest of the input. *)

val hex : string -> string
(** Lowercase hex encoding of a raw byte string. *)

val digest_hex : string -> string
(** [hex (digest s)]. *)

val digest_list : string list -> string
(** Digest of the concatenation, with each element length-prefixed so that
    list boundaries are unambiguous ([digest_list ["ab";"c"]] differs from
    [digest_list ["a";"bc"]]). *)

(** HMAC-SHA-256 (RFC 2104 / FIPS 198-1).

    Message authentication for the bank channel: §4.2 of the paper requires
    that "all communication between the bank and a node is signed with
    acknowledgments to ensure communication compatibility of these
    messages". Verified against RFC 4231 test vectors. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte raw HMAC-SHA-256 tag. *)

val mac_hex : key:string -> string -> string
(** Hex-encoded tag. *)

val verify : key:string -> string -> tag:string -> bool
(** Constant-time comparison of [tag] against the recomputed MAC. *)

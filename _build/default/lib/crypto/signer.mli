(** Toy signature scheme over a trusted key registry.

    The paper's faithful-FPSS extension needs exactly one cryptographic
    property: messages between a node and the bank cannot be forged or
    altered undetected by intermediate rational nodes. We model this with a
    per-identity secret key shared with the registry (think: keys provisioned
    by the bank) and HMAC-SHA-256 tags. Inside the simulation only the owner
    and the verifier (the bank, which owns the registry) hold the key, so
    unforgeability holds in-model.

    This is a deliberate substitution for public-key signatures — documented
    in DESIGN.md §3 — preserving the behaviour the proofs rely on (tampering
    is detected) without an RSA/EC dependency. *)

type registry
(** The verifier's key store, indexed by integer identity. *)

type signed = { signer : int; payload : string; tag : string }
(** A payload signed by [signer]. *)

val create_registry : seed:int -> registry
(** Fresh registry; keys are derived deterministically from [seed] so runs
    are reproducible. *)

val key_of : registry -> int -> string
(** [key_of reg id] is [id]'s secret key, provisioning it on first use.
    Handing this to a node models the out-of-band key exchange with the
    bank. *)

val sign : key:string -> signer:int -> string -> signed

val verify : registry -> signed -> bool
(** True iff the tag matches under the registered key of [signed.signer].
    A payload altered in flight, or a tag produced under another node's key
    (spoofed [signer]), fails verification. *)

val tamper : signed -> payload:string -> signed
(** Adversary helper: replace the payload, keeping the (now-stale) tag. *)

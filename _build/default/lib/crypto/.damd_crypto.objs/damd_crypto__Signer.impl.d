lib/crypto/signer.ml: Hashtbl Hmac Printf Sha256

lib/crypto/signer.mli:

lib/crypto/hmac.mli:

(** Lowest-cost paths under the FPSS cost model.

    The cost of a path is the sum of the *transit* costs of its interior
    nodes; endpoints are free. Ties are broken by a canonical total order —
    (cost, hop count, lexicographic node sequence) — chosen because it is
    preserved under path extension, so the distributed path-vector
    computation ([Damd_fpss.Distributed]) converges to byte-identical tables.
    All searches are rooted at the destination, matching the direction BGP
    announcements travel. *)

type entry = {
  cost : float;  (** summed transit costs of interior nodes *)
  path : int list;  (** node sequence from the indexed source to [dst], inclusive *)
}

val compare_entry : entry -> entry -> int
(** The canonical order: cost, then hop count, then lexicographic path. *)

val to_dest : ?avoid:int -> Graph.t -> dst:int -> entry option array
(** [to_dest g ~dst] computes, for every node [v], the lowest-cost path from
    [v] to [dst] ([None] if unreachable). With [?avoid:k], node [k] is
    removed from the graph entirely (its slot is [None]). *)

val lcp : Graph.t -> src:int -> dst:int -> entry option
(** Single-pair lowest-cost path. *)

val dist : Graph.t -> src:int -> dst:int -> float option
(** Cost of the LCP. *)

val dist_avoiding : Graph.t -> avoid:int -> src:int -> dst:int -> float option
(** Cost of the lowest-cost [src]–[dst] path that does not use node
    [avoid]. [None] when no such path exists (never on a biconnected
    graph). *)

val transit_nodes : int list -> int list
(** Interior nodes of a path (excludes both endpoints). *)

val all_to_dest : Graph.t -> entry option array array
(** [all_to_dest g] is indexed [dst].(src): the full routing state of the
    network. *)

val lcp_tree_edges : Graph.t -> root:int -> (int * int) list
(** Edges of the union of LCPs from every node to [root] — the bold tree of
    the paper's Figure 1. *)

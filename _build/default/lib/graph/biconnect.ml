(* Iterative Hopcroft–Tarjan: DFS discovery times and low-links. Iterative
   because generated graphs can be large enough to overflow the OCaml stack
   with a naive recursive DFS. *)

let articulation_points g =
  let n = Graph.n g in
  if n = 0 then []
  else begin
    let disc = Array.make n (-1) in
    let low = Array.make n 0 in
    let parent = Array.make n (-1) in
    let is_ap = Array.make n false in
    let time = ref 0 in
    let visit root =
      (* Stack frames: (node, remaining neighbor list). *)
      let stack = ref [ (root, Graph.neighbors g root) ] in
      disc.(root) <- !time;
      low.(root) <- !time;
      incr time;
      let root_children = ref 0 in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, ns) :: rest -> (
            match ns with
            | [] ->
                stack := rest;
                let p = parent.(u) in
                if p >= 0 then begin
                  if low.(u) < low.(p) then low.(p) <- low.(u);
                  if p <> root && low.(u) >= disc.(p) then is_ap.(p) <- true
                end
            | v :: more ->
                stack := (u, more) :: rest;
                if disc.(v) = -1 then begin
                  parent.(v) <- u;
                  disc.(v) <- !time;
                  low.(v) <- !time;
                  incr time;
                  if u = root then incr root_children;
                  stack := (v, Graph.neighbors g v) :: !stack
                end
                else if v <> parent.(u) && disc.(v) < low.(u) then
                  low.(u) <- disc.(v))
      done;
      if !root_children > 1 then is_ap.(root) <- true
    in
    for v = 0 to n - 1 do
      if disc.(v) = -1 then visit v
    done;
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if is_ap.(v) then acc := v :: !acc
    done;
    !acc
  end

let is_biconnected g =
  Graph.is_connected g && articulation_points g = []

let components_without g k =
  let n = Graph.n g in
  let label = Array.make n (-2) in
  if k >= 0 && k < n then label.(k) <- -1;
  let next = ref 0 in
  for start = 0 to n - 1 do
    if label.(start) = -2 then begin
      let id = !next in
      incr next;
      let stack = ref [ start ] in
      label.(start) <- id;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            List.iter
              (fun v ->
                if label.(v) = -2 then begin
                  label.(v) <- id;
                  stack := v :: !stack
                end)
              (Graph.neighbors g u)
      done
    end
  done;
  label

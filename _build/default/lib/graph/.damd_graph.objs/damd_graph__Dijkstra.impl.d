lib/graph/dijkstra.ml: Array Damd_util Graph List Option

lib/graph/graph.ml: Array Buffer Float Format List Printf Queue

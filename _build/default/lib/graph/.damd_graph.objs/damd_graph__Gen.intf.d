lib/graph/gen.mli: Damd_util Graph

lib/graph/biconnect.mli: Graph

lib/graph/metrics.mli: Format Graph

lib/graph/biconnect.ml: Array Graph List

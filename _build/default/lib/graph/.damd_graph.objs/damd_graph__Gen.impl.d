lib/graph/gen.ml: Array Biconnect Damd_util Graph Hashtbl List

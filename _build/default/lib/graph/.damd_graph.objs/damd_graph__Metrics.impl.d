lib/graph/metrics.ml: Array Biconnect Format Graph Hashtbl List Option Queue

(** Topology statistics, used by the experiment harness to characterize
    generated graphs (so that "AS-like" is a measured property, not a
    label). *)

type t = {
  nodes : int;
  edges : int;
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  hop_diameter : int;
  mean_hop_distance : float;  (** over connected ordered pairs *)
  clustering : float;  (** mean local clustering coefficient *)
  biconnected : bool;
}

val compute : Graph.t -> t

val pp : Format.formatter -> t -> unit

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, count)] pairs, sorted by degree. *)

(** Biconnectivity analysis (Hopcroft–Tarjan articulation points).

    FPSS assumes a biconnected AS graph so that every VCG payment
    [p^k = c_k + d_{-k} - d] is finite: removing any single transit node must
    leave the remaining nodes connected. The generators in [Gen] use
    [articulation_points] to repair random graphs up to biconnectivity. *)

val articulation_points : Graph.t -> int list
(** Sorted list of cut vertices. Empty for the empty or single-node graph. *)

val is_biconnected : Graph.t -> bool
(** Connected and free of articulation points. By convention the 0-, 1- and
    2-node connected graphs count as biconnected (they have no possible
    transit node whose removal could disconnect a source from a
    destination). *)

val components_without : Graph.t -> int -> int array
(** [components_without g k] labels every node with the id of its connected
    component in [g - k]; node [k] gets label [-1]. Used by repair and by
    tests as an independent check of [articulation_points]. *)

(** Umbrella entry point: one [open Damd] (or [Damd.] prefix) reaches the
    whole library. The sub-libraries remain independently usable; this
    module only re-exports them under short names.

    - {!Util}: RNG, statistics, priority queue, tables
    - {!Crypto}: SHA-256, HMAC, the signing registry
    - {!Graph}: node-cost graphs, LCPs, biconnectivity, generators, metrics
    - {!Mech}: mechanism-design core (VCG, strategyproofness, properties)
    - {!Sim}: the discrete-event network simulator
    - {!Fpss}: the FPSS routing mechanism, centralized and distributed
    - {!Core}: the paper's faithfulness framework (actions, specs,
      equilibria, phases, certificates)
    - {!Faithful}: the extended-FPSS protocol, adversaries, bank, audit,
      and the faithful distributed election *)

module Util = Damd_util
module Crypto = Damd_crypto
module Graph = Damd_graph
module Mech = Damd_mech
module Sim = Damd_sim
module Fpss = Damd_fpss
module Core = Damd_core
module Faithful = Damd_faithful

module Graph = Damd_graph.Graph
module Rng = Damd_util.Rng

type scheme = Vcg | Naive_cost

let compute_tables scheme g =
  match scheme with Vcg -> Pricing.compute g | Naive_cost -> Naive.compute g

let mechanism scheme ~base ~traffic =
  let n = Graph.n base in
  let run reports =
    if Array.length reports <> n then invalid_arg "Game.mechanism: arity";
    let g = Graph.with_costs base reports in
    let tables = compute_tables scheme g in
    (tables, Tables.transfers tables traffic)
  in
  let valuation i true_cost tables =
    -.true_cost *. Tables.transit_load tables traffic i
  in
  { Damd_mech.Mechanism.n; run; valuation }

let utilities scheme ~base ~true_costs ~declared ~traffic =
  let n = Graph.n base in
  if Array.length true_costs <> n || Array.length declared <> n then
    invalid_arg "Game.utilities: arity";
  let tables = compute_tables scheme (Graph.with_costs base declared) in
  let transfers = Tables.transfers tables traffic in
  Array.init n (fun i ->
      transfers.(i) -. (true_costs.(i) *. Tables.transit_load tables traffic i))

let sample_costs rng ~n = Array.init n (fun _ -> float_of_int (Rng.int_in rng 0 10))

let sample_lie rng _i cost =
  Float.max 0. (cost +. float_of_int (Rng.int_in rng (-5) 5))

module Dijkstra = Damd_graph.Dijkstra

type t = {
  routing : Dijkstra.entry option array array;
  prices : (int * float) list array array;
}

let path t ~src ~dst = Option.map (fun e -> e.Dijkstra.path) t.routing.(src).(dst)

let lcp_cost t ~src ~dst = Option.map (fun e -> e.Dijkstra.cost) t.routing.(src).(dst)

let price t ~src ~dst ~transit = List.assoc_opt transit t.prices.(src).(dst)

let packet_payments t ~src ~dst = t.prices.(src).(dst)

let fold_demands t traffic f acc =
  let n = Array.length t.routing in
  let acc = ref acc in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let rate = traffic.(src).(dst) in
        if rate > 0. then acc := f !acc ~src ~dst ~rate
      end
    done
  done;
  !acc

let transit_load t traffic k =
  fold_demands t traffic
    (fun acc ~src ~dst ~rate ->
      match t.routing.(src).(dst) with
      | Some e when List.mem k (Dijkstra.transit_nodes e.Dijkstra.path) -> acc +. rate
      | _ -> acc)
    0.

let income t traffic k =
  fold_demands t traffic
    (fun acc ~src ~dst ~rate ->
      match price t ~src ~dst ~transit:k with
      | Some p -> acc +. (p *. rate)
      | None -> acc)
    0.

let outlay t traffic i =
  let n = Array.length t.routing in
  let acc = ref 0. in
  for dst = 0 to n - 1 do
    if dst <> i && traffic.(i).(dst) > 0. then
      List.iter
        (fun (_, p) -> acc := !acc +. (p *. traffic.(i).(dst)))
        t.prices.(i).(dst)
  done;
  !acc

let transfers t traffic =
  let n = Array.length t.routing in
  Array.init n (fun k -> income t traffic k -. outlay t traffic k)

let routing_equal a b =
  let paths t =
    Array.map (Array.map (Option.map (fun e -> e.Dijkstra.path))) t.routing
  in
  paths a = paths b

let prices_equal ?(tolerance = 0.) a b =
  let n = Array.length a.prices in
  if Array.length b.prices <> n then false
  else begin
    let same = ref true in
    for src = 0 to n - 1 do
      for dst = 0 to n - 1 do
        let pa = a.prices.(src).(dst) and pb = b.prices.(src).(dst) in
        if List.length pa <> List.length pb then same := false
        else
          List.iter2
            (fun (ka, va) (kb, vb) ->
              if ka <> kb || Float.abs (va -. vb) > tolerance then same := false)
            pa pb
      done
    done;
    !same
  end

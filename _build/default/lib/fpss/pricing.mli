(** The centralized FPSS mechanism: lowest-cost-path routing with VCG
    payments.

    For source [i], destination [j] and transit node [k] on the LCP, the
    per-packet payment from [i] to [k] is

    [p k i j = c_k + d(-k)(i,j) - d(i,j)]

    where [d] is the LCP cost and [d(-k)] the LCP cost with node [k]
    deleted (finite because the graph is biconnected). FPSS prove that
    with these payments truthful cost declaration is a dominant strategy;
    this is the "corresponding centralized mechanism" that the paper's
    Proposition 2 requires to be strategyproof, which [Game] +
    [Damd_mech.Strategyproof] verify empirically.

    Tables here are indexed [src].(dst). *)

val compute : Damd_graph.Graph.t -> Tables.t
(** Full mechanism state for the declared costs in the graph. On a
    non-biconnected graph some prices may be missing ([d(-k)] infinite);
    affected [(transit, price)] entries are omitted. *)

val path : Tables.t -> src:int -> dst:int -> int list option

val lcp_cost : Tables.t -> src:int -> dst:int -> float option

val price : Tables.t -> src:int -> dst:int -> transit:int -> float option

val packet_payments : Tables.t -> src:int -> dst:int -> (int * float) list
(** All per-packet payments for one [src]→[dst] packet. *)

val premium :
  Damd_graph.Graph.t -> Tables.t -> src:int -> dst:int -> transit:int -> float option
(** Payment minus declared cost — node [k]'s per-packet markup
    [d(-k) - d], i.e. the utility it brings to the routing system. The
    graph supplies the declared cost [c_k]. *)

(** The manipulable pricing baseline of the paper's Example 1.

    "Under many pricing schemes, a node could be better off lying about
    its costs" — this is such a scheme: route along lowest *declared* cost
    paths, and pay each transit node exactly its declared cost. A node off
    the margin can then inflate its declaration and pocket the difference
    (losing some traffic but charging more on the rest), which is exactly
    what node C does in Example 1. [Game] exposes both this scheme and the
    VCG scheme so the strategyproofness sweep (experiment E2/E3) can show
    the violation VCG removes. *)

val compute : Damd_graph.Graph.t -> Tables.t
(** Payment to each transit node = its declared cost. *)

(** Routing and pricing tables — the [DATA2]/[DATA3] state of FPSS.

    Both pricing schemes ([Pricing] = VCG, [Naive] = declared-cost) produce
    this structure; the execution-phase accounting ([transit_load],
    [income], [outlay]) is scheme-independent. Tables are indexed
    [src].(dst). *)

type t = {
  routing : Damd_graph.Dijkstra.entry option array array;
      (** [routing.(src).(dst)]: LCP from [src] to [dst] ([Some {path=[src]}]
          with zero cost on the diagonal). *)
  prices : (int * float) list array array;
      (** [prices.(src).(dst)]: per-packet payment owed by [src] to each
          transit node of that LCP, sorted by node id. *)
}

val path : t -> src:int -> dst:int -> int list option

val lcp_cost : t -> src:int -> dst:int -> float option

val price : t -> src:int -> dst:int -> transit:int -> float option

val packet_payments : t -> src:int -> dst:int -> (int * float) list

val transit_load : t -> Traffic.t -> int -> float
(** Total packets node [k] transits under the given traffic matrix. *)

val income : t -> Traffic.t -> int -> float
(** Total payments node [k] receives for transiting. *)

val outlay : t -> Traffic.t -> int -> float
(** Total payments node [k] owes for its own originated traffic. *)

val transfers : t -> Traffic.t -> float array
(** Per-node [income - outlay]; the execution-phase money flow. *)

val routing_equal : t -> t -> bool
val prices_equal : ?tolerance:float -> t -> t -> bool

(** Traffic matrices.

    [t.(src).(dst)] is the number of packets [src] originates toward
    [dst] during the execution phase. The diagonal is always zero. *)

type t = float array array

val uniform : n:int -> rate:float -> t
(** Every ordered pair exchanges [rate] packets. *)

val random : Damd_util.Rng.t -> n:int -> max_rate:float -> t
(** Each pair's rate uniform in [0, max_rate]. *)

val hotspot : Damd_util.Rng.t -> n:int -> hotspots:int -> rate:float -> t
(** A few destinations receive [rate] from everyone; other pairs silent.
    Models the skew of real interdomain traffic. *)

val total : t -> float

val demand_pairs : t -> (int * int * float) list
(** Non-zero [(src, dst, rate)] triples, sorted. *)

val scale : t -> float -> t

lib/fpss/naive.mli: Damd_graph Tables

lib/fpss/pricing.mli: Damd_graph Tables

lib/fpss/tables.ml: Array Damd_graph Float List Option

lib/fpss/tables.mli: Damd_graph Traffic

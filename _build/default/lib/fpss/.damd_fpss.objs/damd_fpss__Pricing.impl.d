lib/fpss/pricing.ml: Array Damd_graph Hashtbl List Option Tables

lib/fpss/distributed.ml: Array Damd_graph Float List Option Tables

lib/fpss/traffic.ml: Array Damd_util List

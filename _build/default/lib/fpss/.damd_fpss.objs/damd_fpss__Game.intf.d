lib/fpss/game.mli: Damd_graph Damd_mech Damd_util Tables Traffic

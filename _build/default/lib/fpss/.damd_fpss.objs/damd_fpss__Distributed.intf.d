lib/fpss/distributed.mli: Damd_graph Tables

lib/fpss/naive.ml: Array Damd_graph List Tables

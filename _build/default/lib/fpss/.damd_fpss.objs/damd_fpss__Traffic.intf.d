lib/fpss/traffic.mli: Damd_util

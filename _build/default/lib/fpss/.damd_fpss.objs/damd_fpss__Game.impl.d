lib/fpss/game.ml: Array Damd_graph Damd_mech Damd_util Float Naive Pricing Tables

(** The interdomain-routing problem as a centralized direct-revelation
    mechanism: types are declared per-packet transit costs, the outcome is
    the full routing + pricing table pair, and transfers are the
    execution-phase money flows under a fixed traffic matrix.

    This is the bridge between the FPSS substrate and the generic
    mechanism-design layer: Experiment E3 runs
    [Damd_mech.Strategyproof.check] on [mechanism Vcg ...] (expected: zero
    violations — FPSS's theorem) and on [mechanism Naive_cost ...]
    (expected: violations — Example 1 generalized). *)

type scheme =
  | Vcg  (** the FPSS payments — strategyproof *)
  | Naive_cost  (** pay declared cost — manipulable *)

val mechanism :
  scheme ->
  base:Damd_graph.Graph.t ->
  traffic:Traffic.t ->
  (float, Tables.t) Damd_mech.Mechanism.t
(** The induced game: node [i]'s report replaces its transit cost in
    [base]; tables are recomputed; [i]'s transfer is [income - outlay] and
    its valuation is [-true_cost * transit_load] (packets it must carry).
    Endpoint traffic is free, as in FPSS. *)

val utilities :
  scheme ->
  base:Damd_graph.Graph.t ->
  true_costs:float array ->
  declared:float array ->
  traffic:Traffic.t ->
  float array
(** Per-node quasilinear utilities when the network routes and prices
    according to [declared] but nodes bear [true_costs]. *)

val sample_costs : Damd_util.Rng.t -> n:int -> float array
(** Integer-valued costs in [0, 10] — the experiments' default. *)

val sample_lie : Damd_util.Rng.t -> int -> float -> float
(** Perturb a declared cost (clamped to be non-negative). *)

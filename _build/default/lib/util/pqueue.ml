type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

(* [a] is less than [b] when its priority is smaller, with insertion order
   breaking ties — this determinism matters for reproducible simulation. *)
let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow q entry =
  let cap = Array.length q.data in
  if q.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ndata = Array.make ncap entry in
    Array.blit q.data 0 ndata 0 q.size;
    q.data <- ndata
  end

let push q prio value =
  let entry = { prio; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.data.(q.size) <- entry;
  q.size <- q.size + 1;
  (* Sift up. *)
  let i = ref (q.size - 1) in
  while !i > 0 && less q.data.(!i) q.data.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    let tmp = q.data.(!i) in
    q.data.(!i) <- q.data.(parent);
    q.data.(parent) <- tmp;
    i := parent
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && less q.data.(l) q.data.(!smallest) then smallest := l;
        if r < q.size && less q.data.(r) q.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = q.data.(!i) in
          q.data.(!i) <- q.data.(!smallest);
          q.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.value)
  end

let peek q = if q.size = 0 then None else Some (q.data.(0).prio, q.data.(0).value)

let clear q =
  q.size <- 0;
  q.next_seq <- 0

(** Minimum-priority queue (binary heap) with float priorities.

    Shared by Dijkstra ([Damd_graph]) and the discrete-event scheduler
    ([Damd_sim]). Ties are broken by insertion order so that simulation
    event ordering is deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q prio v] inserts [v] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element; among equal priorities,
    the earliest-inserted element comes out first. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit

(** Plain-text table rendering for experiment output.

    The experiment harness prints every reproduced paper table/figure as an
    aligned ASCII table so that `dune exec bin/experiments.exe` output can be
    compared directly against EXPERIMENTS.md. *)

type align = Left | Right

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table. [aligns] defaults to [Left] for the
    first column and [Right] for the rest (the common numeric layout). *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are padded with empty cells;
    longer rows raise [Invalid_argument]. *)

val add_rule : t -> unit
(** Append a horizontal separator line. *)

val render : t -> string
(** Render with column alignment, a header rule, and a surrounding box. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val to_csv : t -> string
(** RFC-4180-style CSV of the header and data rows (rules are skipped;
    cells containing commas, quotes or newlines are quoted). Used by the
    experiment harness's [--out] option. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float for a table cell ([decimals] defaults to 2). *)

val cell_pct : float -> string
(** Format a ratio in [0,1] as a percentage cell. *)

type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ?aligns headers =
  if headers = [] then invalid_arg "Table.create: no headers";
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Table.create: aligns length mismatch";
        a
    | None -> Left :: List.map (fun _ -> Right) (List.tl headers)
  in
  { headers; aligns; rows = [] }

let ncols t = List.length t.headers

let add_row t cells =
  let n = List.length cells in
  if n > ncols t then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (ncols t - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let measure = function
    | Rule -> ()
    | Cells cs ->
        List.iteri
          (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
          cs
  in
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let gap = width - String.length s in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let align = List.nth t.aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad align widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  line t.headers;
  rule ();
  List.iter (function Rule -> rule () | Cells cs -> line cs) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 2) v =
  if Float.is_integer v && Float.abs v < 1e15 && decimals <= 2 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.*f" decimals v

let cell_pct r = Printf.sprintf "%.1f%%" (100. *. r)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 512 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  line t.headers;
  List.iter (function Rule -> () | Cells cs -> line cs) (List.rev t.rows);
  Buffer.contents buf

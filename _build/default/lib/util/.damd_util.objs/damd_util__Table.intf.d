lib/util/table.mli:

lib/util/rng.mli:

lib/util/pqueue.mli:

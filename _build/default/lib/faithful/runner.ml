module Graph = Damd_graph.Graph
module Engine = Damd_sim.Engine
module Phase = Damd_core.Phase
module Signer = Damd_crypto.Signer
module Traffic = Damd_fpss.Traffic
module Tables = Damd_fpss.Tables

type params = {
  value_per_packet : float;
  progress_penalty : float;
  epsilon : float;
  max_restarts : int;
  checking : bool;
  copies : bool;
  deferred_certification : bool;
  latency_seed : int option;
  channel_loss : (float * int) option;
}

let default_params =
  {
    value_per_packet = 50.;
    progress_penalty = 1e5;
    epsilon = 1.;
    max_restarts = 2;
    checking = true;
    copies = true;
    deferred_certification = false;
    latency_seed = None;
    channel_loss = None;
  }

type result = {
  completed : bool;
  stuck_phase : string option;
  restarts : int;
  detections : Bank.detection list;
  utilities : float array;
  construction_messages : int;
  construction_bytes : int;
  execution_messages : int;
  bank_bytes : int;
  tables : Damd_fpss.Tables.t option;
  sim_time : float;
}

type dispatch = int -> sender:int -> Protocol.msg -> unit

let build_tables (nodes : Node.t array) =
  let n = Array.length nodes in
  let routing = Array.init n (fun src -> Array.copy nodes.(src).Node.routing) in
  let prices =
    Array.init n (fun src ->
        Array.map
          (List.map (fun (pe : Protocol.price_entry) ->
               (pe.Protocol.transit, pe.Protocol.price)))
          nodes.(src).Node.pricing)
  in
  { Tables.routing; prices }

let run ?(params = default_params) ~graph ~traffic ~deviations () =
  let n = Graph.n graph in
  if Array.length deviations <> n then invalid_arg "Runner.run: deviations arity";
  let neighbor_sets = Array.init n (Graph.neighbors graph) in
  let nodes =
    Array.init n (fun id ->
        Node.create ~copies:params.copies ~id ~n ~neighbor_sets
          ~true_cost:(Graph.cost graph id) ~deviation:deviations.(id) ())
  in
  let latency =
    match params.latency_seed with
    | None -> fun ~src:_ ~dst:_ -> 1.0
    | Some seed ->
        (* Heterogeneous but per-link constant delays: asynchrony without
           breaking the per-link FIFO the table-overwrite semantics rely
           on. *)
        let rng = Damd_util.Rng.create seed in
        let m = Array.init n (fun _ -> Array.init n (fun _ -> Damd_util.Rng.float_in rng 0.5 1.5)) in
        fun ~src ~dst -> m.(src).(dst)
  in
  let engine : Protocol.msg Engine.t = Engine.create ~latency ~n () in
  Engine.set_size engine Protocol.msg_size;
  (match params.channel_loss with
  | None -> ()
  | Some (p, seed) ->
      let rng = Damd_util.Rng.create seed in
      Engine.set_tap engine (fun ~src:_ ~dst:_ msg ->
          match msg with
          | Protocol.Packet _ -> Some msg (* loss injected on construction only *)
          | _ -> if Damd_util.Rng.bernoulli rng p then None else Some msg));
  (* Nodes can only transmit on physical links. *)
  let send_from src ~dst msg =
    if not (List.mem dst neighbor_sets.(src)) then
      invalid_arg
        (Printf.sprintf "Runner: node %d attempted to send to non-neighbor %d" src dst);
    Engine.send engine ~src ~dst msg
  in
  let sends = Array.init n (fun i -> send_from i) in
  let dispatch : dispatch ref = ref (fun _ ~sender:_ _ -> ()) in
  for i = 0 to n - 1 do
    Engine.set_handler engine i (fun ~sender msg -> !dispatch i ~sender msg)
  done;
  let detections = ref [] in
  let note ds = detections := !detections @ ds in
  let quiesce name =
    match Engine.run engine with
    | Engine.Quiescent -> Ok ()
    | Engine.Event_limit -> Error (name ^ ": event limit reached (livelock)")
  in
  (* --- the three certified construction phases --- *)
  let phase1 =
    {
      Phase.name = "construction-1 (costs)";
      run =
        (fun () ->
          Array.iter Node.reset_costs nodes;
          dispatch :=
            (fun i ~sender msg ->
              match msg with
              | Protocol.Update u -> Node.on_cost_msg nodes.(i) sends.(i) ~sender u
              | _ -> ());
          Array.iteri (fun i node -> Node.announce_cost node sends.(i)) nodes;
          match quiesce "phase1" with Ok () -> () | Error e -> note [ { Bank.rule = "LIVELOCK"; culprit = None; detail = e } ]);
      certify =
        (fun () ->
          let complete = Array.for_all Node.finalize_costs nodes in
          if not complete then Error "some node is missing transit costs"
          else if params.deferred_certification then Ok ()
          else begin
            let ds = if params.checking then Bank.checkpoint_costs nodes else [] in
            note ds;
            match ds with
            | [] -> Ok ()
            | d :: _ -> Error d.Bank.detail
          end);
    }
  in
  let phase2a =
    {
      Phase.name = "construction-2a (routing)";
      run =
        (fun () ->
          Array.iter Node.reset_routing_phase nodes;
          dispatch := (fun i ~sender msg -> Node.on_routing_msg nodes.(i) sends.(i) ~sender msg);
          Array.iteri (fun i node -> Node.start_routing node sends.(i)) nodes;
          match quiesce "phase2a" with Ok () -> () | Error e -> note [ { Bank.rule = "LIVELOCK"; culprit = None; detail = e } ]);
      certify =
        (fun () ->
          if (not params.checking) || params.deferred_certification then Ok ()
          else begin
            let ds = Bank.checkpoint_routing nodes in
            note ds;
            match ds with
            | [] -> Ok ()
            | d :: _ -> Error d.Bank.detail
          end);
    }
  in
  let phase2b =
    {
      Phase.name = "construction-2b (pricing)";
      run =
        (fun () ->
          Array.iter Node.reset_pricing_phase nodes;
          dispatch := (fun i ~sender msg -> Node.on_pricing_msg nodes.(i) sends.(i) ~sender msg);
          Array.iteri (fun i node -> Node.start_pricing node sends.(i)) nodes;
          match quiesce "phase2b" with Ok () -> () | Error e -> note [ { Bank.rule = "LIVELOCK"; culprit = None; detail = e } ]);
      certify =
        (fun () ->
          if (not params.checking) || params.deferred_certification then Ok ()
          else begin
            let ds = Bank.checkpoint_pricing nodes in
            note ds;
            match ds with
            | [] -> Ok ()
            | d :: _ -> Error d.Bank.detail
          end);
    }
  in
  Engine.reset_stats engine;
  let construction =
    Phase.execute ~max_restarts:params.max_restarts () [ phase1; phase2a; phase2b ]
  in
  let construction_messages = Engine.messages_sent engine in
  let construction_bytes = Engine.bytes_sent engine in
  let bank_bytes = if params.checking then Bank.checkpoint_bytes nodes else 0 in
  match construction with
  | Phase.Stuck { phase; progress; _ } ->
      {
        completed = false;
        stuck_phase = Some phase;
        restarts = Phase.total_restarts progress;
        detections = !detections;
        utilities = Array.make n (-.params.progress_penalty);
        construction_messages;
        construction_bytes;
        execution_messages = 0;
        bank_bytes;
        tables = None;
        sim_time = Engine.now engine;
      }
  | Phase.Completed progress
    when params.deferred_certification && params.checking
         && (let ds =
               Bank.checkpoint_costs nodes @ Bank.checkpoint_routing nodes
               @ Bank.checkpoint_pricing nodes
             in
             note ds;
             ds <> []) ->
      (* The ablation of experiment E8: with certification deferred to a
         single final check, a deviation is only caught after the whole
         construction has been paid for. *)
      {
        completed = false;
        stuck_phase = Some "deferred-certification";
        restarts = Phase.total_restarts progress;
        detections = !detections;
        utilities = Array.make n (-.params.progress_penalty);
        construction_messages;
        construction_bytes;
        execution_messages = 0;
        bank_bytes;
        tables = None;
        sim_time = Engine.now engine;
      }
  | Phase.Completed progress ->
      (* --- execution phase --- *)
      Engine.reset_stats engine;
      Array.iter Node.reset_execution nodes;
      dispatch := (fun i ~sender msg -> Node.on_packet nodes.(i) sends.(i) ~sender msg);
      List.iter
        (fun (src, dst, rate) -> Node.originate_traffic nodes.(src) sends.(src) ~dst ~rate)
        (Traffic.demand_pairs traffic);
      (match quiesce "execution" with
      | Ok () -> ()
      | Error e -> note [ { Bank.rule = "LIVELOCK"; culprit = None; detail = e } ]);
      let execution_messages = Engine.messages_sent engine in
      let registry = Signer.create_registry ~seed:7 in
      let settlement =
        Bank.settle ~checking:params.checking ~epsilon:params.epsilon ~registry ~nodes
          ~traffic
      in
      note settlement.Bank.detections;
      let utilities =
        Array.init n (fun i ->
            let node = nodes.(i) in
            let carried_load =
              List.fold_left (fun acc (_, _, rate, _) -> acc +. rate) 0. node.Node.carried
            in
            (params.value_per_packet *. settlement.Bank.delivered.(i))
            -. settlement.Bank.outlays.(i)
            -. settlement.Bank.penalties.(i)
            +. settlement.Bank.incomes.(i)
            -. (node.Node.true_cost *. carried_load))
      in
      {
        completed = true;
        stuck_phase = None;
        restarts = Phase.total_restarts progress;
        detections = !detections;
        utilities;
        construction_messages;
        construction_bytes;
        execution_messages;
        bank_bytes;
        tables = Some (build_tables nodes);
        sim_time = Engine.now engine;
      }

let run_faithful ?params ~graph ~traffic () =
  run ?params ~graph ~traffic
    ~deviations:(Array.make (Graph.n graph) Adversary.Faithful)
    ()

let utility_gain ?params ~graph ~traffic ~node ~deviation () =
  let faithful = run_faithful ?params ~graph ~traffic () in
  let deviations = Array.make (Graph.n graph) Adversary.Faithful in
  deviations.(node) <- deviation;
  let deviant = run ?params ~graph ~traffic ~deviations () in
  deviant.utilities.(node) -. faithful.utilities.(node)

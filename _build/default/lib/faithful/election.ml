module Graph = Damd_graph.Graph
module Engine = Damd_sim.Engine
module Phase = Damd_core.Phase
module Action = Damd_core.Action
module Leader = Damd_mech.Leader_election
module Sha256 = Damd_crypto.Sha256

type deviation =
  | Honest
  | Underbid_power
  | Overbid_power of float
  | Misreport_cost of float
  | Inconsistent_bid of float
  | Corrupt_bid_forward of float
  | Miscompute_winner
  | Refuse_to_serve

let deviation_name = function
  | Honest -> "honest"
  | Underbid_power -> "underbid-power"
  | Overbid_power d -> Printf.sprintf "overbid-power(+%g)" d
  | Misreport_cost c -> Printf.sprintf "misreport-cost(%g)" c
  | Inconsistent_bid d -> Printf.sprintf "inconsistent-bid(-%g)" d
  | Corrupt_bid_forward d -> Printf.sprintf "corrupt-bid-forward(+%g)" d
  | Miscompute_winner -> "miscompute-winner"
  | Refuse_to_serve -> "refuse-to-serve"

let classify = function
  | Honest -> []
  | Underbid_power | Overbid_power _ | Misreport_cost _ | Inconsistent_bid _ ->
      [ Action.Information_revelation ]
  | Corrupt_bid_forward _ -> [ Action.Message_passing ]
  | Miscompute_winner -> [ Action.Computation ]
  | Refuse_to_serve -> [ Action.Computation ]

type params = {
  benefit : float;
  progress_penalty : float;
  epsilon : float;
  max_restarts : int;
  checking : bool;
}

let default_params =
  { benefit = 2.; progress_penalty = 1e4; epsilon = 1.; max_restarts = 2; checking = true }

type result = {
  completed : bool;
  leader : int option;
  detections : string list;
  restarts : int;
  utilities : float array;
  messages : int;
}

type msg = Bid of { origin : int; power : float; cost : float }

type node_state = {
  id : int;
  neighbors : int list;
  deviation : deviation;
  truth : Leader.theta;
  bids : Leader.theta option array;
}

(* second-score outcome from a full bid table — the same rule as the
   centralized mechanism, recomputed redundantly by every node *)
let outcome_of_bids ~benefit (bids : Leader.theta array) =
  let n = Array.length bids in
  let score (t : Leader.theta) = (benefit *. t.Leader.power) -. t.Leader.cost in
  let winner = ref 0 in
  for i = 1 to n - 1 do
    if score bids.(i) > score bids.(!winner) then winner := i
  done;
  let runner_up = ref 0. and found = ref false in
  for i = 0 to n - 1 do
    if i <> !winner then begin
      let s = score bids.(i) in
      if (not !found) || s > !runner_up then begin
        runner_up := s;
        found := true
      end
    end
  done;
  (!winner, if !found then !runner_up else 0.)

let outcome_digest (winner, runner_up) =
  Sha256.digest_hex (Printf.sprintf "winner=%d;runner=%h" winner runner_up)

let declared_bid state ~neighbor_index =
  let t = state.truth in
  match state.deviation with
  | Underbid_power -> Leader.selfish_report t
  | Overbid_power d -> { t with Leader.power = t.Leader.power +. d }
  | Misreport_cost c -> { t with Leader.cost = c }
  | Inconsistent_bid d ->
      if neighbor_index mod 2 = 1 then
        { t with Leader.power = Float.max 0. (t.Leader.power -. d) }
      else t
  | _ -> t

let run ?(params = default_params) ~graph ~profile ~deviations () =
  let n = Graph.n graph in
  if Array.length profile <> n || Array.length deviations <> n then
    invalid_arg "Election.run: arity";
  let states =
    Array.init n (fun id ->
        {
          id;
          neighbors = Graph.neighbors graph id;
          deviation = deviations.(id);
          truth = profile.(id);
          bids = Array.make n None;
        })
  in
  let engine : msg Engine.t = Engine.create ~n () in
  let detections = ref [] in
  let detect d = detections := !detections @ [ d ] in
  let handler i ~sender:_ msg =
    let s = states.(i) in
    match msg with
    | Bid { origin; power; cost } -> (
        match s.bids.(origin) with
        | Some _ -> ()
        | None ->
            s.bids.(origin) <- Some { Leader.power; cost };
            let power, cost =
              match s.deviation with
              | Corrupt_bid_forward d -> (power, cost +. d)
              | _ -> (power, cost)
            in
            List.iter
              (fun nbr -> Engine.send engine ~src:i ~dst:nbr (Bid { origin; power; cost }))
              s.neighbors)
  in
  for i = 0 to n - 1 do
    Engine.set_handler engine i (handler i)
  done;
  (* Phase 1: bid flood, certified by global bid-table digest equality. *)
  let bid_phase =
    {
      Phase.name = "bids";
      run =
        (fun () ->
          Array.iter (fun s -> Array.fill s.bids 0 n None) states;
          Array.iter
            (fun s ->
              let own = declared_bid s ~neighbor_index:0 in
              s.bids.(s.id) <- Some own;
              List.iteri
                (fun idx nbr ->
                  let bid = declared_bid s ~neighbor_index:idx in
                  Engine.send engine ~src:s.id ~dst:nbr
                    (Bid { origin = s.id; power = bid.Leader.power; cost = bid.Leader.cost }))
                s.neighbors)
            states;
          ignore (Engine.run engine));
      certify =
        (fun () ->
          if Array.exists (fun s -> Array.exists Option.is_none s.bids) states then
            Error "incomplete bid tables"
          else if not params.checking then Ok ()
          else begin
            let digest s =
              Sha256.digest_hex
                (String.concat ";"
                   (Array.to_list
                      (Array.map
                         (fun b ->
                           let b = Option.get b in
                           Printf.sprintf "%h,%h" b.Leader.power b.Leader.cost)
                         s.bids)))
            in
            let digests = Array.map digest states in
            if Array.for_all (String.equal digests.(0)) digests then Ok ()
            else begin
              detect "BIDS: bid tables disagree (inconsistent revelation)";
              Error "bid tables disagree"
            end
          end);
    }
  in
  (* Phase 2: redundant outcome computation, certified by digest equality. *)
  let computed = Array.make n None in
  let outcome_phase =
    {
      Phase.name = "outcome";
      run =
        (fun () ->
          Array.iteri
            (fun i s ->
              let bids = Array.map Option.get s.bids in
              let honest = outcome_of_bids ~benefit:params.benefit bids in
              let claimed =
                match s.deviation with
                (* name itself winner at a zero runner-up price: maximally
                   tempting, and exactly what the digest comparison must
                   catch *)
                | Miscompute_winner -> (i, 0.)
                | _ -> honest
              in
              computed.(i) <- Some claimed)
            states);
      certify =
        (fun () ->
          if not params.checking then Ok ()
          else begin
            let digests = Array.map (fun o -> outcome_digest (Option.get o)) computed in
            if Array.for_all (String.equal digests.(0)) digests then Ok ()
            else begin
              detect "OUTCOME: redundant winner computations disagree";
              Error "outcome digests disagree"
            end
          end);
    }
  in
  match
    Phase.execute ~max_restarts:params.max_restarts () [ bid_phase; outcome_phase ]
  with
  | Phase.Stuck { progress; _ } ->
      {
        completed = false;
        leader = None;
        detections = !detections;
        restarts = Phase.total_restarts progress;
        utilities = Array.make n (-.params.progress_penalty);
        messages = Engine.messages_sent engine;
      }
  | Phase.Completed progress ->
      (* Execution: the (certified or self-nominated) leader serves. *)
      let leader, runner_up =
        if params.checking then Option.get computed.(0)
        else begin
          (* Unchecked bank: believe the first self-nomination. *)
          let claimant = ref None in
          Array.iteri
            (fun i o ->
              match (!claimant, o) with
              | None, Some (w, r) when w = i -> claimant := Some (i, r)
              | _ -> ())
            computed;
          match !claimant with
          | Some c -> c
          | None -> Option.get computed.(0)
        end
      in
      let serves = deviations.(leader) <> Refuse_to_serve in
      (* Quasilinear utilities matching the centralized mechanism exactly
         (Damd_mech.Leader_election.second_score): the leader earns its
         verified-delivery payment minus its true cost; everyone else is
         unaffected. Keeping the private-value structure is what preserves
         the dominant-strategy argument. *)
      let utilities =
        Array.init n (fun i ->
            if i <> leader then 0.
            else if serves then
              (params.benefit *. profile.(i).Leader.power) -. runner_up
              -. profile.(i).Leader.cost
            else begin
              detect (Printf.sprintf "EXEC: leader %d refused to serve" leader);
              -.params.epsilon
            end)
      in
      {
        completed = true;
        leader = Some leader;
        detections = !detections;
        restarts = Phase.total_restarts progress;
        utilities;
        messages = Engine.messages_sent engine;
      }

let run_honest ?params ~graph ~profile () =
  run ?params ~graph ~profile ~deviations:(Array.make (Graph.n graph) Honest) ()

let utility_gain ?params ~graph ~profile ~node ~deviation () =
  let honest = run_honest ?params ~graph ~profile () in
  let deviations = Array.make (Graph.n graph) Honest in
  deviations.(node) <- deviation;
  let deviant = run ?params ~graph ~profile ~deviations () in
  deviant.utilities.(node) -. honest.utilities.(node)

let deviation_library =
  [
    Underbid_power;
    Overbid_power 3.;
    Misreport_cost 0.;
    Inconsistent_bid 3.;
    Corrupt_bid_forward 2.;
    Miscompute_winner;
    Refuse_to_serve;
  ]

(** A replicated bank committee — the paper's open problem, sketched.

    §4.2 (footnote 6): "It is an open problem to design a distributed bank
    that runs on the same network of rational nodes." This module takes
    the obvious first step and maps its limits: replicate the bank's
    *comparison* role across a committee and take the majority verdict.
    Because every checkpoint verdict is a deterministic function of
    publicly collectible digests, honest replicas always agree, so a
    committee of [2f + 1] tolerates [f] arbitrarily-lying replicas — in
    both directions (a corrupt replica can neither force a false restart
    nor green-light a caught deviation).

    What this does *not* solve — and why the problem stays open — is
    replicas that are themselves *rational participants* of the routed
    network: then a replica's vote is a computational action inside the
    very mechanism it polices, and the partitioning argument no longer
    applies. Experiment E17 demonstrates both the tolerance boundary and
    this caveat. *)

type behavior =
  | Honest_replica
  | Always_approve  (** votes green-light regardless of the evidence *)
  | Always_restart  (** votes restart regardless of the evidence *)

type verdict = Green_light | Restart of Bank.detection list

val decide : behavior list -> evidence:Bank.detection list -> verdict
(** Majority vote over the committee. Honest replicas vote [Restart]
    exactly when [evidence] is non-empty (they all recompute the same
    deterministic checkpoint); corrupt replicas vote their fixed lie.
    Ties (possible only with an even committee) go to [Restart] — fail
    safe. The restart carries the honest evidence when there is any, or a
    synthesized detection when a corrupt majority forced it. *)

val tolerates : replicas:int -> corrupt:int -> bool
(** [corrupt] arbitrary liars cannot change any verdict of a committee of
    [replicas] honest-majority members: [corrupt <= (replicas - 1) / 2]. *)

val checkpoint :
  behavior list ->
  stage:[ `Costs | `Routing | `Pricing ] ->
  Node.t array ->
  verdict
(** Run the corresponding [Bank] checkpoint as the committee's evidence
    and vote on it. *)

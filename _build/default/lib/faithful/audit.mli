(** Batch auditing of the protocol against the adversary library.

    The experiment harness, the examples and downstream users all ask the
    same two questions — "is every deviation caught?" and "does any
    deviation profit?" — so the sweeps live here, once, tested.

    Outcome classification: a deviation is [Caught] when the bank raised a
    (non-advisory) detection; [No_effect] when the run certified *and*
    produced exactly the faithful run's tables (the deviation changed
    nothing observable — e.g. a corrupted flood fact that lost every
    first-arrival race — so there is nothing to catch); [Escaped] when it
    certified with *different* tables (a genuine detection failure; never
    expected outside the collusion boundary). *)

type outcome =
  | Caught of string list  (** sorted distinct rules that fired *)
  | No_effect
  | Escaped

val outcome_to_string : outcome -> string

type audit = {
  node : int;
  deviation : Adversary.t;
  outcome : outcome;
  gain : float;  (** deviant's utility minus its faithful utility *)
  completed : bool;
}

val one :
  ?params:Runner.params ->
  graph:Damd_graph.Graph.t ->
  traffic:Damd_fpss.Traffic.t ->
  node:int ->
  deviation:Adversary.t ->
  unit ->
  audit
(** Audit a single (node, deviation) pair against the faithful run. *)

type matrix_row = {
  name : string;
  runs : int;
  caught : int;
  no_effect : int;
  escaped : int;
  rules : string list;
  max_gain : float;
}

val detection_matrix :
  ?params:Runner.params ->
  ?deviations:Adversary.t list ->
  targets:(Damd_graph.Graph.t * Damd_fpss.Traffic.t * int list) list ->
  unit ->
  matrix_row list
(** The E4 sweep: every detectable deviation (default:
    [Adversary.library]) against every (graph, traffic, deviant-placement)
    target. *)

val clean : matrix_row list -> bool
(** No row escaped. *)

val max_gain :
  ?params:Runner.params ->
  ?deviations:Adversary.t list ->
  graph:Damd_graph.Graph.t ->
  traffic:Damd_fpss.Traffic.t ->
  unit ->
  float * string
(** Largest deviation gain over all nodes and library deviations, with the
    name of the deviation achieving it — faithfulness demands it be
    non-positive. *)

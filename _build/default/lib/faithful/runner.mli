(** End-to-end execution of the extended-FPSS protocol on the simulator.

    Orchestrates the phase sequence of §4 — transit-cost flood, routing
    construction, pricing construction, execution — with the bank
    certifying each construction checkpoint ([Damd_core.Phase] supplies the
    restart machinery) and clearing the execution phase. Returns per-node
    quasilinear utilities, all bank detections, and message/byte
    accounting.

    The suggested specification is [deviations = all Faithful]; handing
    any node another [Adversary.t] is the paper's rational-manipulation
    failure. The utility model (DESIGN.md §5): value of own delivered
    traffic, minus payments and fines, plus transit income, minus true
    transit costs, minus a large progress penalty if the mechanism never
    certifies (the paper's assumption that every node strongly prefers
    the mechanism to make progress). *)

type params = {
  value_per_packet : float;  (** utility per unit of own traffic delivered *)
  progress_penalty : float;
      (** utility when a construction phase never certifies (large) *)
  epsilon : float;  (** the bank's fine margin *)
  max_restarts : int;  (** restarts per phase before declaring it stuck *)
  checking : bool;
      (** false = disable checkers and bank verification (the unfaithful
          baseline of experiment E7) *)
  copies : bool;
      (** false = principals do not relay checker copies at all — the
          plain-FPSS overhead baseline of experiment E6 (implies no
          meaningful mirrors; use with [checking = false]) *)
  deferred_certification : bool;
      (** true = run all construction phases without intermediate
          checkpoints and certify everything only at the end — the
          phase-decomposition ablation of experiment E8 *)
  latency_seed : int option;
      (** when set, per-link latencies are drawn uniformly from
          [0.5, 1.5) instead of the constant 1.0 — asynchrony robustness
          (per-link FIFO is preserved, as the model requires) *)
  channel_loss : (float * int) option;
      (** [(p, seed)]: drop every construction message independently with
          probability [p] — a *non-rational* omission-failure model. The
          paper's §5 flags exactly this: other failure classes can make
          the system "falsely detect and punish manipulation"; experiment
          E12 measures it *)
}

val default_params : params
(** value 50, progress penalty 10^5, epsilon 1, 2 restarts, checking and
    copies on, phase-by-phase certification, constant latency. *)

type result = {
  completed : bool;
  stuck_phase : string option;
  restarts : int;
  detections : Bank.detection list;  (** construction + execution *)
  utilities : float array;
  construction_messages : int;
  construction_bytes : int;
  execution_messages : int;
  bank_bytes : int;
  tables : Damd_fpss.Tables.t option;
      (** the certified tables, when the construction completed *)
  sim_time : float;
}

val run :
  ?params:params ->
  graph:Damd_graph.Graph.t ->
  traffic:Damd_fpss.Traffic.t ->
  deviations:Adversary.t array ->
  unit ->
  result
(** Deterministic: same inputs, same result. The graph carries the *true*
    transit costs; declarations happen inside the protocol (phase 1). *)

val run_faithful :
  ?params:params ->
  graph:Damd_graph.Graph.t ->
  traffic:Damd_fpss.Traffic.t ->
  unit ->
  result
(** All nodes faithful. *)

val utility_gain :
  ?params:params ->
  graph:Damd_graph.Graph.t ->
  traffic:Damd_fpss.Traffic.t ->
  node:int ->
  deviation:Adversary.t ->
  unit ->
  float
(** [u_node(deviation) - u_node(faithful)] with everyone else faithful —
    the quantity that must be non-positive for every library deviation
    when the specification is faithful (Definition 8). *)

module Graph = Damd_graph.Graph
module Rng = Damd_util.Rng
module Dmech = Damd_core.Dmech
module Equilibrium = Damd_core.Equilibrium
module Faithfulness = Damd_core.Faithfulness
module Strategyproof = Damd_mech.Strategyproof
module Game = Damd_fpss.Game

let dmech ?params ~base ~traffic () =
  {
    Dmech.n = Graph.n base;
    suggested = (fun _ -> Adversary.Faithful);
    outcome =
      (fun strategies types ->
        Runner.run ?params ~graph:(Graph.with_costs base types) ~traffic
          ~deviations:strategies ());
    utility = (fun i _theta outcome -> outcome.Runner.utilities.(i));
  }

let deviation_library =
  List.map
    (fun d ->
      Equilibrium.deviation ~name:(Adversary.name d) ~classes:(Adversary.classify d)
        (fun _ -> d))
    Adversary.library

let sample_costs rng ~n = Array.init n (fun _ -> float_of_int (Rng.int_in rng 1 10))

let evidence ?params ~rng ~profiles ~base ~traffic () =
  let n = Graph.n base in
  let dm = dmech ?params ~base ~traffic () in
  let sample_types rng = sample_costs rng ~n in
  (* Step 1 of Proposition 2: the corresponding centralized mechanism
     (FPSS with VCG payments) is strategyproof. *)
  let sp_report =
    Strategyproof.check ~rng ~profiles ~lies_per_agent:3
      ~sample_profile:(fun rng -> sample_costs rng ~n)
      ~sample_lie:Game.sample_lie
      (Game.mechanism Game.Vcg ~base ~traffic)
  in
  (* Steps 2-3: strong-CC and strong-AC of the distributed specification. *)
  let strong_cc =
    Equilibrium.strong_cc ~rng ~profiles ~sample_types ~deviations:deviation_library dm
  in
  let strong_ac =
    Equilibrium.strong_ac ~rng ~profiles ~sample_types ~deviations:deviation_library dm
  in
  (* Remark 4: consistent information revelation — inconsistent
     declarations must be caught (never silently accepted) by the DATA1
     certificate. *)
  let revelation_consistent =
    let types = sample_costs rng ~n in
    let deviations = Array.make n Adversary.Faithful in
    deviations.(0) <- Adversary.Inconsistent_cost (1., 9.);
    let r =
      Runner.run ?params ~graph:(Graph.with_costs base types) ~traffic ~deviations ()
    in
    (not r.Runner.completed)
    && List.exists (fun d -> d.Bank.rule = "DATA1") r.Runner.detections
  in
  {
    Faithfulness.centralized_strategyproof = Strategyproof.is_strategyproof sp_report;
    centralized_trials = sp_report.Strategyproof.trials;
    strong_cc;
    strong_ac;
    revelation_consistent;
  }

let ex_post_nash_report ?params ~rng ~profiles ~base ~traffic () =
  let dm = dmech ?params ~base ~traffic () in
  Equilibrium.ex_post_nash ~rng ~profiles
    ~sample_types:(fun rng -> sample_costs rng ~n:(Graph.n base))
    ~deviations:deviation_library dm

module Action = Damd_core.Action

type phase = Construction1 | Construction2a | Construction2b | Execution

type entry = {
  action : string;
  cls : Action.t;
  phase : phase;
  rule : string;
  deviations : string list;
}

let catalogue =
  [
    {
      action = "declare own transit cost to neighbors";
      cls = Action.Information_revelation;
      phase = Construction1;
      rule = "DATA1";
      deviations = [ "misreport-cost"; "inconsistent-cost" ];
    };
    {
      action = "flood other nodes' cost announcements";
      cls = Action.Message_passing;
      phase = Construction1;
      rule = "DATA1";
      deviations = [ "corrupt-cost-forward" ];
    };
    {
      action = "forward received routing updates to all checkers";
      cls = Action.Message_passing;
      phase = Construction2a;
      rule = "PRINC1";
      deviations =
        [ "drop-routing-copies"; "corrupt-routing-copies"; "spoof-routing-update";
          "combined-routing-attack" ];
    };
    {
      action = "recompute LCPs and announce the routing table";
      cls = Action.Computation;
      phase = Construction2a;
      rule = "PRINC1";
      deviations = [ "miscompute-routing"; "silent-in-construction" ];
    };
    {
      action = "mirror each neighbor-principal's routing computation";
      cls = Action.Computation;
      phase = Construction2a;
      rule = "CHECK1";
      deviations = [ "lying-checker"; "collude-with" ];
    };
    {
      action = "forward received pricing updates to all checkers";
      cls = Action.Message_passing;
      phase = Construction2b;
      rule = "PRINC2";
      deviations =
        [ "drop-pricing-copies"; "corrupt-pricing-copies"; "spoof-pricing-update";
          "combined-pricing-attack" ];
    };
    {
      action = "recompute prices (with identity tags) and announce DATA3*";
      cls = Action.Computation;
      phase = Construction2b;
      rule = "PRINC2";
      deviations = [ "miscompute-pricing"; "silent-in-construction" ];
    };
    {
      action = "mirror each neighbor-principal's pricing computation";
      cls = Action.Computation;
      phase = Construction2b;
      rule = "CHECK2";
      deviations = [ "lying-checker"; "collude-with" ];
    };
    {
      action = "report table digests to the bank (signed)";
      cls = Action.Computation;
      phase = Construction2b;
      rule = "BANK1/BANK2";
      deviations = [ "lying-checker"; "collude-with" ];
    };
    {
      action = "forward packets along certified lowest-cost paths";
      cls = Action.Message_passing;
      phase = Execution;
      rule = "EXEC";
      deviations = [ "misroute-packets" ];
    };
    {
      action = "tally and report DATA4 payments to the bank (signed)";
      cls = Action.Computation;
      phase = Execution;
      rule = "EXEC";
      deviations = [ "underreport-payments"; "misattribute-payments" ];
    };
  ]

let phase_name = function
  | Construction1 -> "construction-1 (costs)"
  | Construction2a -> "construction-2a (routing)"
  | Construction2b -> "construction-2b (pricing)"
  | Execution -> "execution"

let classes_covered () =
  List.sort_uniq compare (List.map (fun e -> e.cls) catalogue)

lib/faithful/analysis.ml: Adversary Array Bank Damd_core Damd_fpss Damd_graph Damd_mech Damd_util List Runner

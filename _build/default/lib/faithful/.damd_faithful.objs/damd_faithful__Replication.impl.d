lib/faithful/replication.ml: Array Damd_fpss Damd_graph Damd_sim List Option Protocol

lib/faithful/spec.ml: Damd_core List

lib/faithful/protocol.mli: Damd_graph

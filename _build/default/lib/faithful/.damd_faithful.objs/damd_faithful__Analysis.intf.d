lib/faithful/analysis.mli: Adversary Damd_core Damd_fpss Damd_graph Damd_util Runner

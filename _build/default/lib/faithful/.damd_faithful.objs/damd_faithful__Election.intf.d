lib/faithful/election.mli: Damd_core Damd_graph Damd_mech

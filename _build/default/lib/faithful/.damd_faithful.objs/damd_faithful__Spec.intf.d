lib/faithful/spec.mli: Damd_core

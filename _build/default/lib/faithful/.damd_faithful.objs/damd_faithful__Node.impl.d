lib/faithful/node.ml: Adversary Array Damd_graph Float Hashtbl List Option Protocol

lib/faithful/committee.mli: Bank Node

lib/faithful/runner.mli: Adversary Bank Damd_fpss Damd_graph

lib/faithful/audit.ml: Adversary Array Bank Damd_fpss Damd_graph List Runner String

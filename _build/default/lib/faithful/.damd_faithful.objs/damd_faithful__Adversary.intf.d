lib/faithful/adversary.mli: Damd_core

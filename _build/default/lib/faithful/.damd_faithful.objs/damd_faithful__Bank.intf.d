lib/faithful/bank.mli: Damd_crypto Damd_fpss Format Node

lib/faithful/audit.mli: Adversary Damd_fpss Damd_graph Runner

lib/faithful/adversary.ml: Damd_core Printf

lib/faithful/committee.ml: Bank List

lib/faithful/runner.ml: Adversary Array Bank Damd_core Damd_crypto Damd_fpss Damd_graph Damd_sim Damd_util List Node Printf Protocol

lib/faithful/protocol.ml: Array Buffer Damd_crypto Damd_graph Float List Printf

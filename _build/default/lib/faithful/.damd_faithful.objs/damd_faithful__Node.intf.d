lib/faithful/node.mli: Adversary Damd_fpss Hashtbl Protocol

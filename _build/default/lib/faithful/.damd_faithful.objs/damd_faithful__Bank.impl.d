lib/faithful/bank.ml: Array Damd_crypto Damd_graph Float Format Hashtbl List Node Option Printf Protocol String

lib/faithful/election.ml: Array Damd_core Damd_crypto Damd_graph Damd_mech Damd_sim Float List Option Printf String

lib/faithful/replication.mli: Damd_graph

(** Theorem 1, executable: the extended-FPSS specification as a
    distributed mechanism specification, wired into the equilibrium
    checkers of [Damd_core].

    Types are true per-packet transit costs; strategies are
    [Adversary.t] node implementations; the outcome rule runs the full
    protocol ([Runner.run]); utilities are the runner's quasilinear
    utilities. [evidence] assembles the Proposition 2 certificate:
    strategyproofness of centralized FPSS, strong-CC, strong-AC, and
    revelation consistency (the DATA1 certificate). *)

val dmech :
  ?params:Runner.params ->
  base:Damd_graph.Graph.t ->
  traffic:Damd_fpss.Traffic.t ->
  unit ->
  (float, Adversary.t, Runner.result) Damd_core.Dmech.t
(** The distributed mechanism specification dM = (g, Sigma, s^m) induced
    by a topology and traffic matrix. The type vector replaces the
    graph's transit costs at outcome-evaluation time. *)

val deviation_library : (float, Adversary.t) Damd_core.Equilibrium.deviation list
(** [Adversary.library] tagged with the paper's action classes. *)

val sample_costs : Damd_util.Rng.t -> n:int -> float array
(** Integer costs in [1, 10] (min 1 keeps zero-cost corner cases out of
    equilibrium sweeps; zero costs are covered by dedicated tests). *)

val evidence :
  ?params:Runner.params ->
  rng:Damd_util.Rng.t ->
  profiles:int ->
  base:Damd_graph.Graph.t ->
  traffic:Damd_fpss.Traffic.t ->
  unit ->
  Damd_core.Faithfulness.evidence
(** The full empirical Proposition-2 certificate on one topology. *)

val ex_post_nash_report :
  ?params:Runner.params ->
  rng:Damd_util.Rng.t ->
  profiles:int ->
  base:Damd_graph.Graph.t ->
  traffic:Damd_fpss.Traffic.t ->
  unit ->
  Damd_core.Equilibrium.report
(** The headline check: no deviation in the library profits against the
    faithful profile (Definition 8 relative to the library). *)

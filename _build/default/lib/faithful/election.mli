(** A second faithful instantiation: the §3 leader election as a
    distributed protocol.

    The paper uses leader election as its motivating example and
    interdomain routing as its worked case study; this module closes the
    loop by running the election itself through the same machinery, which
    demonstrates that the proof technique (strategyproof centralized
    mechanism + strong-CC + strong-AC via certified phases) is generic:

    - {b Phase 1 (bids)}: every node floods its (power, cost) bid; the
      bank certifies that all nodes ended with identical bid tables
      (consistent information revelation — inconsistent bids are caught
      exactly like inconsistent cost declarations in FPSS).
    - {b Phase 2 (outcome)}: every node independently computes the
      second-score outcome (winner + runner-up score) from the certified
      bids — n-fold redundant computation. The bank compares outcome
      digests; any miscomputation restarts the phase. This is the
      *partitioning* idea in its purest form: the outcome is a pure
      function of certified-common inputs, so no single node's computation
      is trusted.
    - {b Execution}: the winner serves. Its delivered power is verified
      (running the task reveals the hardware — catch-and-punish on
      delivery), and the bank pays [benefit * true_power - runner_up_score].
      Refusing to serve forfeits the payment and draws an ε fine.

    The centralized mechanism is [Damd_mech.Leader_election.second_score]
    (strategyproof under verified delivery), so by Proposition 2 the
    suggested specification is faithful — checked empirically in
    [test/test_faithful.ml] and experiment E16. *)

type deviation =
  | Honest
  | Underbid_power  (** the §3 dodge: claim zero power *)
  | Overbid_power of float  (** inflate the power claim *)
  | Misreport_cost of float  (** claim this serving cost *)
  | Inconsistent_bid of float
      (** send power reduced by this delta to odd-indexed neighbors *)
  | Corrupt_bid_forward of float
      (** inflate the cost inside forwarded bids *)
  | Miscompute_winner
      (** report an outcome digest naming itself the winner *)
  | Refuse_to_serve  (** win, then do not run the task *)

val deviation_name : deviation -> string

val classify : deviation -> Damd_core.Action.t list

type params = {
  benefit : float;  (** per-node benefit per unit of leader power *)
  progress_penalty : float;
  epsilon : float;
  max_restarts : int;
  checking : bool;  (** false = the bank believes self-nominations *)
}

val default_params : params

type result = {
  completed : bool;
  leader : int option;  (** the serving leader, when execution happened *)
  detections : string list;
  restarts : int;
  utilities : float array;
  messages : int;
}

val run :
  ?params:params ->
  graph:Damd_graph.Graph.t ->
  profile:Damd_mech.Leader_election.theta array ->
  deviations:deviation array ->
  unit ->
  result
(** Run the protocol on a (connected) topology: bids flood along the
    edges; the bank is the trusted checkpointing entity as in the FPSS
    extension. *)

val utility_gain :
  ?params:params ->
  graph:Damd_graph.Graph.t ->
  profile:Damd_mech.Leader_election.theta array ->
  node:int ->
  deviation:deviation ->
  unit ->
  float
(** Deviation gain against the all-honest run (Definition 8's quantity). *)

val deviation_library : deviation list

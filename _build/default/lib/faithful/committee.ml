type behavior = Honest_replica | Always_approve | Always_restart

type verdict = Green_light | Restart of Bank.detection list

let decide committee ~evidence =
  if committee = [] then invalid_arg "Committee.decide: empty committee";
  let votes_restart =
    List.fold_left
      (fun acc b ->
        match b with
        | Honest_replica -> if evidence <> [] then acc + 1 else acc
        | Always_approve -> acc
        | Always_restart -> acc + 1)
      0 committee
  in
  let total = List.length committee in
  if 2 * votes_restart >= total then
    if evidence <> [] then Restart evidence
    else
      Restart
        [
          {
            Bank.rule = "COMMITTEE";
            culprit = None;
            detail = "restart forced by corrupt committee majority (no evidence)";
          };
        ]
  else Green_light

let tolerates ~replicas ~corrupt = 2 * corrupt < replicas

let checkpoint committee ~stage nodes =
  let evidence =
    match stage with
    | `Costs -> Bank.checkpoint_costs nodes
    | `Routing -> Bank.checkpoint_routing nodes
    | `Pricing -> Bank.checkpoint_pricing nodes
  in
  decide committee ~evidence

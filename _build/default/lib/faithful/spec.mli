(** The extended-FPSS specification as data: every external action of the
    protocol, its §3.4 classification and the phase it belongs to — the
    classification the paper walks through at the end of §4.1.

    This catalogue is what connects the implementation back to the proof
    structure: IC arguments must cover exactly the information-revelation
    rows, strong-CC the message-passing rows, strong-AC the computation
    rows, and every deviation in [Adversary] targets one (or a joint
    combination) of these actions. Tested for coverage in
    [test/test_faithful.ml]. *)

type phase = Construction1 | Construction2a | Construction2b | Execution

type entry = {
  action : string;  (** what the node does *)
  cls : Damd_core.Action.t;
  phase : phase;
  rule : string;  (** the paper's rule tag ([PRINC1], [CHECK2], ...) *)
  deviations : string list;
      (** names (prefixes) of adversary-library deviations targeting it *)
}

val catalogue : entry list
(** Every external action of the suggested specification [s^m]. *)

val phase_name : phase -> string

val classes_covered : unit -> Damd_core.Action.t list
(** The distinct classes appearing in the catalogue (all three, by the
    coverage test). *)

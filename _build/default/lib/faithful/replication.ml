module Graph = Damd_graph.Graph
module Engine = Damd_sim.Engine

type flood_msg = {
  origin : int;
  seq : int;
  inner : Protocol.update;
}

type result = {
  messages : int;
  bytes : int;
  tables_match : bool;
  mirrors_complete : bool;
  sim_time : float;
}

type node_state = {
  id : int;
  neighbors : int list;
  mutable costs : float array;
  (* latest flooded state per origin — the global view *)
  seen_seq : int array;
  global_routing : Protocol.routing_table option array;
  global_pricing : Protocol.pricing_table option array;
  mutable own_seq : int;
  mutable routing : Protocol.routing_table;
  mutable pricing : Protocol.pricing_table;
}

let run g =
  let n = Graph.n g in
  let neighbor_sets = Array.init n (Graph.neighbors g) in
  let states =
    Array.init n (fun id ->
        {
          id;
          neighbors = neighbor_sets.(id);
          costs = Graph.costs g;
          seen_seq = Array.make n (-1);
          global_routing = Array.make n None;
          global_pricing = Array.make n None;
          own_seq = 0;
          routing = Protocol.empty_routing ~n ~self:id;
          pricing = Protocol.empty_pricing ~n;
        })
  in
  let engine : flood_msg Engine.t = Engine.create ~n () in
  Engine.set_size engine (fun m ->
      12
      +
      match m.inner with
      | Protocol.Cost_announce _ -> 12
      | Protocol.Routing_update { table; _ } ->
          Protocol.msg_size (Protocol.Update (Protocol.Routing_update { origin = 0; table }))
      | Protocol.Pricing_update { table; _ } ->
          Protocol.msg_size (Protocol.Update (Protocol.Pricing_update { origin = 0; table })));
  let flood_from i msg ~except =
    List.iter
      (fun nbr -> if Some nbr <> except then Engine.send engine ~src:i ~dst:nbr msg)
      states.(i).neighbors
  in
  let announce i inner =
    let s = states.(i) in
    s.own_seq <- s.own_seq + 1;
    let msg = { origin = i; seq = s.own_seq; inner } in
    (* keep our own global view current too *)
    s.seen_seq.(i) <- s.own_seq;
    (match inner with
    | Protocol.Routing_update { table; _ } -> s.global_routing.(i) <- Some table
    | Protocol.Pricing_update { table; _ } -> s.global_pricing.(i) <- Some table
    | Protocol.Cost_announce _ -> ());
    flood_from i msg ~except:None
  in
  let neighbor_routing s =
    List.filter_map
      (fun a -> Option.map (fun t -> (a, t)) s.global_routing.(a))
      s.neighbors
  in
  let neighbor_pricing s =
    List.filter_map
      (fun a -> Option.map (fun t -> (a, t)) s.global_pricing.(a))
      s.neighbors
  in
  let recompute_and_announce_routing i =
    let s = states.(i) in
    let table =
      Protocol.recompute_routing ~self:i ~n ~costs:s.costs
        ~neighbor_tables:(neighbor_routing s)
    in
    if not (Protocol.routing_equal table s.routing) then begin
      s.routing <- table;
      announce i (Protocol.Routing_update { origin = i; table })
    end
  in
  let recompute_and_announce_pricing i =
    let s = states.(i) in
    let table =
      Protocol.recompute_pricing ~self:i ~costs:s.costs ~own_routing:s.routing
        ~neighbor_routing:(neighbor_routing s) ~neighbor_pricing:(neighbor_pricing s)
    in
    if not (Protocol.pricing_equal table s.pricing) then begin
      s.pricing <- table;
      announce i (Protocol.Pricing_update { origin = i; table })
    end
  in
  let phase = ref `Routing in
  for i = 0 to n - 1 do
    Engine.set_handler engine i (fun ~sender msg ->
        let s = states.(i) in
        if msg.seq > s.seen_seq.(msg.origin) then begin
          s.seen_seq.(msg.origin) <- msg.seq;
          (match msg.inner with
          | Protocol.Cost_announce _ -> ()
          | Protocol.Routing_update { table; _ } -> s.global_routing.(msg.origin) <- Some table
          | Protocol.Pricing_update { table; _ } -> s.global_pricing.(msg.origin) <- Some table);
          (* gossip on: full replication means everyone sees everything *)
          flood_from i msg ~except:(Some sender);
          if List.mem msg.origin s.neighbors then
            match !phase with
            | `Routing -> recompute_and_announce_routing i
            | `Pricing -> recompute_and_announce_pricing i
        end)
  done;
  (* routing stage *)
  phase := `Routing;
  for i = 0 to n - 1 do
    announce i (Protocol.Routing_update { origin = i; table = states.(i).routing })
  done;
  (match Engine.run engine with
  | Engine.Quiescent -> ()
  | Engine.Event_limit -> failwith "Replication: routing did not quiesce");
  (* pricing stage: reset sequence space by continuing (seq keeps rising) *)
  phase := `Pricing;
  for i = 0 to n - 1 do
    let s = states.(i) in
    s.pricing <-
      Protocol.recompute_pricing ~self:i ~costs:s.costs ~own_routing:s.routing
        ~neighbor_routing:(neighbor_routing s) ~neighbor_pricing:(neighbor_pricing s);
    announce i (Protocol.Pricing_update { origin = i; table = s.pricing })
  done;
  (match Engine.run engine with
  | Engine.Quiescent -> ()
  | Engine.Event_limit -> failwith "Replication: pricing did not quiesce");
  (* verification *)
  let centralized = Damd_fpss.Pricing.compute g in
  let built =
    {
      Damd_fpss.Tables.routing = Array.init n (fun i -> states.(i).routing);
      prices =
        Array.init n (fun i ->
            Array.map
              (List.map (fun (pe : Protocol.price_entry) ->
                   (pe.Protocol.transit, pe.Protocol.price)))
              states.(i).pricing);
    }
  in
  let tables_match =
    Damd_fpss.Tables.routing_equal built centralized
    && Damd_fpss.Tables.prices_equal built centralized
  in
  (* every node holds every principal's final announcements, so any node
     can mirror any principal: check the global views are complete and
     agree with the principals' actual tables *)
  let mirrors_complete =
    Array.for_all
      (fun s ->
        Array.for_all (fun v -> v) (Array.init n (fun p ->
            match s.global_routing.(p) with
            | Some t -> Protocol.routing_equal t states.(p).routing
            | None -> false)))
      states
  in
  {
    messages = Engine.messages_sent engine;
    bytes = Engine.bytes_sent engine;
    tables_match;
    mirrors_complete;
    sim_time = Engine.now engine;
  }

(** Full-replication baseline: everyone checks everyone.

    The paper argues (§3) that classic BFT-style redundancy is a poor fit
    for rational-manipulation failures: it needs global dissemination of
    state so that *every* node can validate *every* other node, where the
    checker construction of §4 keeps redundancy local to each node's
    neighborhood. This module implements that global alternative honestly
    — every table announcement is flooded network-wide (sequence-numbered,
    deduplicated), so each node ends up holding every principal's inputs —
    and reports its message/byte bill. Experiment E6 compares it against
    plain FPSS and the neighborhood-checker extension.

    The computation itself is unchanged (same path-vector and pricing
    fixpoints), so the resulting tables still match the centralized
    mechanism; [tables_match] asserts it. *)

type result = {
  messages : int;
  bytes : int;
  tables_match : bool;  (** converged tables equal [Damd_fpss.Pricing.compute] *)
  mirrors_complete : bool;
      (** every node can recompute every principal's final table *)
  sim_time : float;
}

val run : Damd_graph.Graph.t -> result
(** Run the cost flood, routing and pricing constructions with full
    flooding on the simulator (all nodes faithful). *)

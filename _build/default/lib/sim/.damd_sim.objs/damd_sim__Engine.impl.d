lib/sim/engine.ml: Array Damd_util

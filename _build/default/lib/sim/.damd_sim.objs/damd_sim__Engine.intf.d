lib/sim/engine.mli:

bin/damd_cli.ml: Arg Array Cmd Cmdliner Damd_faithful Damd_fpss Damd_graph Damd_mech Damd_util Format List Printf String Term

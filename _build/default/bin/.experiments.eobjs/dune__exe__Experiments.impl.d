bin/experiments.ml: Arg Array Cmd Cmdliner Damd_core Damd_faithful Damd_fpss Damd_graph Damd_mech Damd_util Filename Float Format Lazy List Option Printf String Term Unix

bin/damd_cli.mli:

bin/experiments.mli:

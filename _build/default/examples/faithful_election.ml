(* The second instantiation, as a story: running the §3 leader election
   through the full faithfulness machinery (bid flood with a consistency
   certificate, n-fold redundant outcome computation with a digest
   certificate, verified-delivery second-score payment) — and what each
   deviation earns its author. Uses the umbrella [Damd] entry point.

     dune exec examples/faithful_election.exe *)

open Damd

module Rng = Util.Rng
module Table = Util.Table
module Gen = Graph.Gen
module Leader = Mech.Leader_election
module Election = Faithful.Election

let () =
  let rng = Rng.create 2026 in
  let g = Gen.chordal_ring rng ~n:10 ~chords:3 (Gen.Uniform_int (1, 5)) in
  let profile = Leader.sample_profile ~n:10 rng in

  print_endline "== Faithful distributed leader election (10 nodes) ==";
  let pt = Table.create [ "node"; "power"; "serving cost"; "score (benefit=2)" ] in
  Array.iteri
    (fun i (t : Leader.theta) ->
      Table.add_row pt
        [
          string_of_int i;
          Table.cell_float t.Leader.power;
          Table.cell_float t.Leader.cost;
          Table.cell_float (Leader.score ~benefit:2. t);
        ])
    profile;
  Table.print pt;
  print_newline ();

  let honest =
    Election.run ~graph:g ~profile ~deviations:(Array.make 10 Election.Honest) ()
  in
  Printf.printf
    "honest run: certified=%b, leader=%s, %d protocol messages, u(leader)=%.2f\n\n"
    honest.Election.completed
    (match honest.Election.leader with Some l -> string_of_int l | None -> "-")
    honest.Election.messages
    (match honest.Election.leader with
    | Some l -> honest.Election.utilities.(l)
    | None -> nan);

  print_endline "every deviation, audited (gain relative to honest play):";
  let t = Table.create ~aligns:[ Table.Left; Table.Left; Table.Right ]
      [ "deviation"; "outcome"; "max gain over nodes" ] in
  List.iter
    (fun d ->
      let best = ref neg_infinity in
      for node = 0 to 9 do
        let gain = Election.utility_gain ~graph:g ~profile ~node ~deviation:d () in
        if gain > !best then best := gain
      done;
      let deviations = Array.make 10 Election.Honest in
      deviations.(0) <- d;
      let r = Election.run ~graph:g ~profile ~deviations () in
      Table.add_row t
        [
          Election.deviation_name d;
          (if r.Election.completed then "certified" else "blocked by certificate");
          Table.cell_float !best;
        ])
    Election.deviation_library;
  Table.print t;
  print_newline ();

  print_endline "and with the certificates disabled (the bank believes anyone):";
  let unchecked = { Election.default_params with Election.checking = false } in
  let best = ref neg_infinity and who = ref "-" in
  List.iter
    (fun d ->
      for node = 0 to 9 do
        let gain =
          Election.utility_gain ~params:unchecked ~graph:g ~profile ~node ~deviation:d ()
        in
        if gain > !best then begin
          best := gain;
          who := Election.deviation_name d
        end
      done)
    Election.deviation_library;
  Printf.printf "  most profitable manipulation: %s, gain %+.2f\n" !who !best;
  print_endline
    "  (self-nomination pays once nobody checks — the certificates carry Theorem 1)"

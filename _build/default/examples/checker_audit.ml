(* Figure 2 in action: inject each manipulation from §4.3 into one node of
   the Figure 1 network and watch the checker/bank machinery catch it.

   For every deviation in the adversary library this prints whether the
   construction certified, which bank rule fired, and the deviant's
   utility change relative to faithful play — the last column is the
   faithfulness claim (never positive).

     dune exec examples/checker_audit.exe *)

module Graph = Damd_graph.Graph
module Gen = Damd_graph.Gen
module Traffic = Damd_fpss.Traffic
module Adversary = Damd_faithful.Adversary
module Bank = Damd_faithful.Bank
module Runner = Damd_faithful.Runner
module Table = Damd_util.Table

let () =
  let g, names = Gen.figure1 () in
  let deviant = List.assoc "C" names in
  let n = Graph.n g in
  let traffic = Traffic.uniform ~n ~rate:1. in
  let faithful = Runner.run_faithful ~graph:g ~traffic () in

  print_endline "== Catch-and-punish audit: node C runs each deviation ==";
  Printf.printf "faithful baseline: completed=%b, u(C)=%g\n\n" faithful.Runner.completed
    faithful.Runner.utilities.(deviant);

  let t =
    Table.create ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Right ]
      [ "deviation"; "outcome"; "caught by"; "utility gain" ]
  in
  List.iter
    (fun d ->
      let deviations = Array.make n Adversary.Faithful in
      deviations.(deviant) <- d;
      let r = Runner.run ~graph:g ~traffic ~deviations () in
      let outcome =
        if r.Runner.completed then "certified"
        else
          Printf.sprintf "stuck in %s" (Option.value ~default:"?" r.Runner.stuck_phase)
      in
      let rules =
        r.Runner.detections
        |> List.map (fun det -> det.Bank.rule)
        |> List.sort_uniq compare
        |> String.concat ","
      in
      let gain = r.Runner.utilities.(deviant) -. faithful.Runner.utilities.(deviant) in
      Table.add_row t
        [
          Adversary.name d;
          outcome;
          (if rules = "" then "-" else rules);
          Table.cell_float gain;
        ])
    Adversary.library;
  Table.print t;
  print_newline ();
  print_endline
    "Reading the table: construction-phase manipulations stall the mechanism";
  print_endline
    "(BANK1/BANK2/DATA1 refuse to green-light), execution-phase ones are fined";
  print_endline
    "epsilon-above the attempted gain (EXEC). The consistent cost misreport is";
  print_endline
    "not 'caught' -- it is neutralized by VCG strategyproofness instead. No row";
  print_endline "has a positive utility gain: the specification is faithful."

examples/checker_audit.ml: Array Damd_faithful Damd_fpss Damd_graph Damd_util List Option Printf String

examples/quickstart.mli:

examples/faithful_election.ml: Array Damd Faithful Graph List Mech Printf Util

examples/checker_audit.mli:

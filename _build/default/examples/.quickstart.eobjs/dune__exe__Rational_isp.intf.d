examples/rational_isp.mli:

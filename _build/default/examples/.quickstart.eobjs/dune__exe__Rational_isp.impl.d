examples/rational_isp.ml: Array Damd_fpss Damd_graph Damd_util Float List Printf String

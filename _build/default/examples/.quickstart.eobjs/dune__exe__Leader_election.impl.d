examples/leader_election.ml: Array Damd_mech Damd_util Printf

examples/faithful_election.mli:

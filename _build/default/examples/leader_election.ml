(* The paper's §3 motivating toy: leader election among rational nodes.

   A designer wants the most powerful node to run a CPU-intensive task.
   Under the naive specification ("report your power; the maximum wins,
   no compensation") a rational node with a positive serving cost reports
   zero power and the election fails. The faithful fix is a second-score
   auction with verified delivery: truthful reporting becomes dominant and
   the welfare-best node is elected (and compensated).

     dune exec examples/leader_election.exe *)

module Rng = Damd_util.Rng
module Table = Damd_util.Table
module Mechanism = Damd_mech.Mechanism
module Leader = Damd_mech.Leader_election

let n = 8
let benefit = 2.
let trials = 2000

let () =
  let rng = Rng.create 2004 in
  print_endline "== Leader election with rational nodes (paper, section 3) ==";
  Printf.printf "%d nodes, %d sampled type profiles; power ~ U[1,10], cost ~ U[0,5]\n\n"
    n trials;

  let naive = Leader.naive ~n in
  let faithful = Leader.second_score ~n ~benefit in

  (* Rational play: under the naive spec each node's best response is to
     hide its power whenever serving would cost it; under the faithful
     spec truthful reporting is dominant. *)
  let naive_hits = ref 0 and naive_truthful_hits = ref 0 in
  let faithful_hits = ref 0 and faithful_welfare_hits = ref 0 in
  for _ = 1 to trials do
    let profile = Leader.sample_profile ~n rng in
    let best = Leader.most_powerful profile in
    (* naive spec, truthful play (what the designer imagined) *)
    let o, _ = naive.Mechanism.run profile in
    if o.Leader.leader = best then incr naive_truthful_hits;
    (* naive spec, rational play: anyone with positive cost dodges *)
    let rational =
      Array.map
        (fun (t : Leader.theta) -> if t.Leader.cost > 0. then Leader.selfish_report t else t)
        profile
    in
    let o, _ = naive.Mechanism.run rational in
    if o.Leader.leader = best then incr naive_hits;
    (* faithful spec, dominant-strategy (truthful) play *)
    let o, _ = faithful.Mechanism.run profile in
    if o.Leader.leader = best then incr faithful_hits;
    if o.Leader.leader = Leader.welfare_optimal ~benefit profile then
      incr faithful_welfare_hits
  done;

  let pct x = Table.cell_pct (float_of_int x /. float_of_int trials) in
  let t = Table.create [ "specification & play"; "elects most powerful"; "elects welfare-best" ] in
  Table.add_row t [ "naive, truthful play (imagined)"; pct !naive_truthful_hits; "-" ];
  Table.add_row t [ "naive, rational play (actual)"; pct !naive_hits; "-" ];
  Table.add_row t
    [ "second-score, rational play"; pct !faithful_hits; pct !faithful_welfare_hits ];
  Table.print t;
  print_newline ();

  (* One concrete manipulation, in numbers. *)
  let profile =
    [|
      { Leader.power = 9.; cost = 3. };
      { Leader.power = 6.; cost = 1. };
      { Leader.power = 4.; cost = 0.5 };
      { Leader.power = 2.; cost = 2. };
      { Leader.power = 5.; cost = 4. };
      { Leader.power = 3.; cost = 1. };
      { Leader.power = 7.; cost = 2. };
      { Leader.power = 1.; cost = 0. };
    |]
  in
  let u_truthful = Mechanism.utility naive 0 profile.(0) profile in
  let dodged = Array.copy profile in
  dodged.(0) <- Leader.selfish_report profile.(0);
  let u_dodged = Mechanism.utility naive 0 profile.(0) dodged in
  Printf.printf
    "naive spec: node 0 (power 9, cost 3) earns %g by serving truthfully but %g by\n"
    u_truthful u_dodged;
  print_endline "claiming zero power -- so it dodges, and the protocol elects the wrong node.";
  let u_truthful = Mechanism.utility faithful 0 profile.(0) profile in
  let u_dodged = Mechanism.utility faithful 0 profile.(0) dodged in
  Printf.printf
    "second-score spec: truthful %g vs dodging %g -- truth is (weakly) dominant.\n"
    u_truthful u_dodged

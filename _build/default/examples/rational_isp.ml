(* Example 1 of the paper, played out: a rational ISP (node C of Figure 1)
   considers lying about its transit cost.

   Under a naive pricing scheme (pay each transit node its declared cost),
   declaring 5 instead of its true cost 1 loses C the X-Z traffic but more
   than makes up for it on the D-Z traffic — and routes packets over a
   path whose true cost is higher, damaging network efficiency. Under the
   FPSS VCG payments the same lie strictly loses. This example sweeps C's
   declaration under both schemes.

     dune exec examples/rational_isp.exe *)

module Graph = Damd_graph.Graph
module Gen = Damd_graph.Gen
module Dijkstra = Damd_graph.Dijkstra
module Traffic = Damd_fpss.Traffic
module Tables = Damd_fpss.Tables
module Game = Damd_fpss.Game
module Pricing = Damd_fpss.Pricing
module Table = Damd_util.Table

let () =
  let g, names = Gen.figure1 () in
  let name_of i = fst (List.find (fun (_, id) -> id = i) names) in
  let c = List.assoc "C" names in
  let n = Graph.n g in
  let traffic = Traffic.uniform ~n ~rate:1. in
  let true_costs = Graph.costs g in

  let utility_of scheme declared_c =
    let declared = Array.copy true_costs in
    declared.(c) <- declared_c;
    (Game.utilities scheme ~base:g ~true_costs ~declared ~traffic).(c)
  in
  let xz_path declared_c =
    let g' = Graph.with_cost g c declared_c in
    match Tables.path (Pricing.compute g') ~src:(List.assoc "X" names) ~dst:(List.assoc "Z" names) with
    | Some p -> String.concat "-" (List.map name_of p)
    | None -> "(none)"
  in

  print_endline "== Example 1: node C sweeps its declared transit cost (true cost = 1) ==";
  print_endline "   (uniform all-pairs traffic, rate 1)";
  print_newline ();
  let t =
    Table.create
      [ "declared"; "u(C) naive"; "u(C) VCG"; "X-Z route" ]
  in
  let truthful_naive = utility_of Game.Naive_cost 1. in
  let truthful_vcg = utility_of Game.Vcg 1. in
  List.iter
    (fun declared ->
      let naive = utility_of Game.Naive_cost declared in
      let vcg = utility_of Game.Vcg declared in
      let mark u base = if u > base +. 1e-9 then " (gain!)" else "" in
      Table.add_row t
        [
          Table.cell_float declared;
          Table.cell_float naive ^ mark naive truthful_naive;
          Table.cell_float vcg ^ mark vcg truthful_vcg;
          xz_path declared;
        ])
    [ 0.; 1.; 2.; 3.; 4.; 5.; 6.; 8.; 10. ];
  Table.print t;
  print_newline ();

  let naive_best =
    List.fold_left
      (fun acc d -> Float.max acc (utility_of Game.Naive_cost d))
      neg_infinity
      [ 0.; 1.; 2.; 3.; 4.; 5.; 6.; 8.; 10. ]
  in
  Printf.printf
    "naive pricing: lying pays (best sweep utility %g > truthful %g) -- Example 1.\n"
    naive_best truthful_naive;
  Printf.printf
    "VCG pricing:   every lie weakly loses (truthful utility %g is the sweep maximum).\n"
    truthful_vcg;
  print_newline ();

  (* Efficiency damage: true cost of the X->Z route under the naive-scheme
     best response. *)
  let x = List.assoc "X" names and z = List.assoc "Z" names in
  let route_true_cost declared_c =
    let g' = Graph.with_cost g c declared_c in
    match Tables.path (Pricing.compute g') ~src:x ~dst:z with
    | Some p ->
        List.fold_left (fun acc v -> acc +. Graph.cost g v) 0. (Dijkstra.transit_nodes p)
    | None -> nan
  in
  Printf.printf
    "efficiency: X->Z true path cost is %g when C is truthful, %g when C declares 5.\n"
    (route_true_cost 1.) (route_true_cost 5.)

test/test_crypto.ml: Alcotest Char Damd_crypto List QCheck QCheck_alcotest String

test/test_sim.ml: Alcotest Damd_sim List String

test/test_faithful.ml: Alcotest Array Damd_core Damd_crypto Damd_faithful Damd_fpss Damd_graph Damd_mech Damd_util Float Lazy List Option QCheck QCheck_alcotest Queue String

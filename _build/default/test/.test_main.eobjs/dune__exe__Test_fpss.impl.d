test/test_fpss.ml: Alcotest Array Damd_fpss Damd_graph Damd_mech Damd_util Lazy List QCheck QCheck_alcotest

test/test_graph.ml: Alcotest Array Astring Damd_graph Damd_util Float Hashtbl Lazy List QCheck QCheck_alcotest

test/test_core.ml: Alcotest Array Damd_core Damd_util List QCheck QCheck_alcotest

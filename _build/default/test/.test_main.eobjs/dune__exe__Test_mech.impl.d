test/test_mech.ml: Alcotest Array Damd_mech Damd_util Float List QCheck QCheck_alcotest

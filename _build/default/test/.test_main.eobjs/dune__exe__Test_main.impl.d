test/test_main.ml: Alcotest List Test_core Test_crypto Test_faithful Test_fpss Test_graph Test_mech Test_sim Test_util

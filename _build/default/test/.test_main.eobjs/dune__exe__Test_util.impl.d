test/test_util.ml: Alcotest Array Astring Damd_util Float Gen List QCheck QCheck_alcotest String

(* Tests for Damd_core: the action taxonomy, state-machine specifications,
   distributed mechanism specs, the equilibrium checkers (including class
   filtering for strong-CC / strong-AC / IC), phase decomposition with
   certified checkpoints, and the Proposition-2 faithfulness certificate. *)

module Action = Damd_core.Action
module Sm = Damd_core.State_machine
module Dmech = Damd_core.Dmech
module Equilibrium = Damd_core.Equilibrium
module Phase = Damd_core.Phase
module Faithfulness = Damd_core.Faithfulness
module Rng = Damd_util.Rng

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Action --- *)

let test_action_strings () =
  check Alcotest.string "ir" "information-revelation"
    (Action.to_string Action.Information_revelation);
  check Alcotest.string "mp" "message-passing" (Action.to_string Action.Message_passing);
  check Alcotest.string "c" "computation" (Action.to_string Action.Computation)

let test_action_external () =
  check Alcotest.int "three external classes" 3 (List.length Action.all_external);
  check Alcotest.bool "internal not external" false (Action.is_external Action.Internal);
  List.iter
    (fun a -> check Alcotest.bool "external" true (Action.is_external a))
    Action.all_external

(* --- State machine: a miniature protocol -------------------------------
   States count progress 0..3; the suggested run is Reveal, Forward,
   Compute, then halt. *)

type mini_action = Reveal | Forward | Compute | Think

let mini_machine =
  {
    Sm.initial = 0;
    transition = (fun s _ -> s + 1);
    suggested =
      (fun s ->
        match s with 0 -> Some Reveal | 1 -> Some Forward | 2 -> Some Compute | _ -> None);
    classify =
      (function
      | Reveal -> Action.Information_revelation
      | Forward -> Action.Message_passing
      | Compute -> Action.Computation
      | Think -> Action.Internal);
  }

let test_sm_trace () =
  let steps = Sm.trace ~max_steps:10 mini_machine in
  check Alcotest.int "three steps" 3 (List.length steps);
  check Alcotest.int "final state" 3 (Sm.final_state ~max_steps:10 mini_machine)

let test_sm_max_steps () =
  let steps = Sm.trace ~max_steps:2 mini_machine in
  check Alcotest.int "truncated" 2 (List.length steps)

let test_sm_external_actions () =
  let strategy s =
    match s with
    | 0 -> Some Think
    | 1 -> Some Reveal
    | 2 -> Some Forward
    | _ -> None
  in
  let steps = Sm.trace ~strategy ~max_steps:10 mini_machine in
  let externals = Sm.external_actions steps in
  (* The internal Think step is invisible. *)
  check Alcotest.int "two external" 2 (List.length externals)

let test_sm_follows_specification () =
  check Alcotest.bool "suggested follows itself" true
    (Sm.follows_specification ~max_steps:10 ~strategy:mini_machine.Sm.suggested
       mini_machine);
  let deviant s = match s with 0 -> Some Reveal | 1 -> Some Compute | _ -> None in
  check Alcotest.bool "deviant does not" false
    (Sm.follows_specification ~max_steps:10 ~strategy:deviant mini_machine)

let test_sm_deviation_point () =
  let deviant s = match s with 0 -> Some Reveal | 1 -> Some Compute | _ -> None in
  (match Sm.deviation_point ~max_steps:10 ~strategy:deviant mini_machine with
  | Some (1, Some Action.Message_passing) -> ()
  | _ -> Alcotest.fail "expected deviation at step 1 in a message-passing action");
  check Alcotest.bool "faithful has no deviation point" true
    (Sm.deviation_point ~max_steps:10 ~strategy:mini_machine.Sm.suggested mini_machine
    = None)

let test_sm_early_halt_detected () =
  let lazy_strategy s = match s with 0 -> Some Reveal | _ -> None in
  match Sm.deviation_point ~max_steps:10 ~strategy:lazy_strategy mini_machine with
  | Some (1, None) -> ()
  | _ -> Alcotest.fail "expected early-halt deviation at step 1"

(* --- Strategy decomposition (§3.3) --- *)

module Strategy = Damd_core.Strategy

let test_strategy_project_classes () =
  let r, p, c = Strategy.decompose mini_machine ~strategy:mini_machine.Sm.suggested in
  (* state 0 suggests Reveal (IR), state 1 Forward (MP), state 2 Compute *)
  check Alcotest.bool "r acts at 0" true (r.Strategy.act 0 = Some Reveal);
  check Alcotest.bool "r silent at 1" true (r.Strategy.act 1 = None);
  check Alcotest.bool "p acts at 1" true (p.Strategy.act 1 = Some Forward);
  check Alcotest.bool "c acts at 2" true (c.Strategy.act 2 = Some Compute);
  check Alcotest.bool "all silent at halt" true
    (r.Strategy.act 3 = None && p.Strategy.act 3 = None && c.Strategy.act 3 = None)

let test_strategy_compose_roundtrip () =
  let r, p, c = Strategy.decompose mini_machine ~strategy:mini_machine.Sm.suggested in
  let composed = Strategy.compose mini_machine [ r; p; c ] in
  check Alcotest.bool "identical traces" true
    (Sm.follows_specification ~max_steps:10 ~strategy:composed mini_machine)

let test_strategy_internal_rides_with_computation () =
  let with_thought s =
    match s with 0 -> Some Think | 1 -> Some Reveal | 2 -> Some Forward | _ -> None
  in
  let c = Strategy.project mini_machine ~strategy:with_thought Action.Computation in
  check Alcotest.bool "internal owned by c" true (c.Strategy.act 0 = Some Think)

let test_strategy_compose_rejects_conflicts () =
  let always cls action = { Strategy.cls; act = (fun _ -> Some action) } in
  Alcotest.check_raises "conflict"
    (Invalid_argument
       "Strategy.compose: two sub-strategies act in the same state (the \
        specification demands one action per state)") (fun () ->
      ignore
        (Strategy.compose mini_machine
           [ always Action.Information_revelation Reveal;
             always Action.Message_passing Forward ]
           0))

let test_strategy_trace_of_class () =
  let mp =
    Strategy.trace_of_class mini_machine ~strategy:mini_machine.Sm.suggested
      ~max_steps:10 Action.Message_passing
  in
  check Alcotest.bool "one forward" true (mp = [ Forward ])

let prop_strategy_roundtrip_random =
  (* Any strategy over the mini machine decomposes and recomposes to the
     same trace. *)
  QCheck.Test.make ~name:"decompose/compose roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.return 4) (int_bound 3))
    (fun choices ->
      let action_of = function
        | 0 -> Reveal
        | 1 -> Forward
        | 2 -> Compute
        | _ -> Think
      in
      let strategy s =
        if s >= 0 && s < List.length choices && s < 3 then
          Some (action_of (List.nth choices s))
        else None
      in
      let r, p, c = Strategy.decompose mini_machine ~strategy in
      let composed = Strategy.compose mini_machine [ r; p; c ] in
      let t1 = Sm.trace ~strategy ~max_steps:10 mini_machine in
      let t2 = Sm.trace ~strategy:composed ~max_steps:10 mini_machine in
      List.map (fun s -> s.Sm.action) t1 = List.map (fun s -> s.Sm.action) t2)

(* --- Dmech + Equilibrium: a sealed-bid auction as a toy distributed
   mechanism. Strategies are bidding policies; under the second-price
   outcome rule, Honest is an equilibrium; under first-price it is not. *)

type bid_strategy = Honest | Shade of float | Overbid of float

let apply_strategy s (theta : float) =
  match s with
  | Honest -> theta
  | Shade f -> theta *. f
  | Overbid d -> theta +. d

let auction_dmech ~second_price =
  {
    Dmech.n = 3;
    suggested = (fun _ -> Honest);
    outcome =
      (fun strategies types ->
        let bids = Array.mapi (fun i s -> apply_strategy s types.(i)) strategies in
        let winner = ref 0 in
        Array.iteri (fun i b -> if b > bids.(!winner) then winner := i) bids;
        let price =
          if second_price then begin
            let best = ref 0. in
            Array.iteri (fun i b -> if i <> !winner && b > !best then best := b) bids;
            !best
          end
          else bids.(!winner)
        in
        (!winner, price));
    utility = (fun i theta (winner, price) -> if winner = i then theta -. price else 0.);
  }

let bid_deviations =
  [
    Equilibrium.deviation ~name:"shade-half" ~classes:[ Action.Information_revelation ]
      (fun _ -> Shade 0.5);
    Equilibrium.deviation ~name:"overbid-2" ~classes:[ Action.Information_revelation ]
      (fun _ -> Overbid 2.);
    Equilibrium.deviation ~name:"garble-forward"
      ~classes:[ Action.Message_passing; Action.Information_revelation ] (fun _ ->
        Shade 0.9);
    Equilibrium.deviation ~name:"raw-compute" ~classes:[ Action.Computation ] (fun _ ->
        Overbid 1.);
  ]

let sample_types rng = Array.init 3 (fun _ -> Rng.float_in rng 1. 10.)

let test_dmech_suggested_outcome () =
  let dm = auction_dmech ~second_price:true in
  let winner, price = Dmech.suggested_outcome dm [| 3.; 7.; 5. |] in
  check Alcotest.int "highest wins" 1 winner;
  checkf "second price" 5. price

let test_dmech_unilateral () =
  let dm = auction_dmech ~second_price:true in
  let profile = Dmech.unilateral dm 2 (Shade 0.5) in
  check Alcotest.bool "others suggested" true (profile.(0) = Honest && profile.(1) = Honest);
  check Alcotest.bool "agent deviant" true (profile.(2) = Shade 0.5)

let test_dmech_deviation_gain_negative_second_price () =
  let dm = auction_dmech ~second_price:true in
  let gain = Dmech.deviation_gain dm [| 3.; 7.; 5. |] 1 (Shade 0.5) in
  (* Shading to 3.5 loses the item worth 7 at price 5: forgoes utility 2. *)
  checkf "gain" (-2.) gain

let test_equilibrium_second_price_holds () =
  let rng = Rng.create 601 in
  let r =
    Equilibrium.ex_post_nash ~rng ~profiles:100 ~sample_types
      ~deviations:bid_deviations (auction_dmech ~second_price:true)
  in
  check Alcotest.bool "holds" true (Equilibrium.holds r);
  check Alcotest.int "profile count" 100 r.Equilibrium.profiles_tested;
  check Alcotest.int "comparisons" (100 * 4 * 3) r.Equilibrium.comparisons

let test_equilibrium_first_price_violated () =
  let rng = Rng.create 602 in
  let r =
    Equilibrium.ex_post_nash ~rng ~profiles:100 ~sample_types
      ~deviations:bid_deviations (auction_dmech ~second_price:false)
  in
  check Alcotest.bool "violated" false (Equilibrium.holds r);
  check Alcotest.bool "gain positive" true (r.Equilibrium.max_gain > 0.);
  (* shading is the profitable deviation under first price *)
  check Alcotest.bool "shade implicated" true
    (List.exists
       (fun v -> v.Equilibrium.deviation_name = "shade-half")
       r.Equilibrium.violations)

let test_equilibrium_class_filters () =
  let rng = Rng.create 603 in
  let dm = auction_dmech ~second_price:true in
  let cc = Equilibrium.strong_cc ~rng ~profiles:5 ~sample_types ~deviations:bid_deviations dm in
  (* only garble-forward touches message passing *)
  check Alcotest.int "cc deviations" 1 cc.Equilibrium.deviations_tested;
  let ac = Equilibrium.strong_ac ~rng ~profiles:5 ~sample_types ~deviations:bid_deviations dm in
  check Alcotest.int "ac deviations" 1 ac.Equilibrium.deviations_tested;
  let ic =
    Equilibrium.incentive_compatible ~rng ~profiles:5 ~sample_types
      ~deviations:bid_deviations dm
  in
  (* pure information-revelation deviations only: shade-half and overbid-2 *)
  check Alcotest.int "ic deviations" 2 ic.Equilibrium.deviations_tested

let test_equilibrium_applies_to () =
  let rng = Rng.create 604 in
  let only_node_0 =
    [
      Equilibrium.deviation ~applies_to:(fun i -> i = 0) ~name:"n0-only"
        ~classes:[ Action.Computation ] (fun _ -> Overbid 1.);
    ]
  in
  let r =
    Equilibrium.ex_post_nash ~rng ~profiles:10 ~sample_types ~deviations:only_node_0
      (auction_dmech ~second_price:true)
  in
  check Alcotest.int "one agent per profile" 10 r.Equilibrium.comparisons

let test_equilibrium_violations_sorted () =
  let rng = Rng.create 605 in
  let r =
    Equilibrium.ex_post_nash ~rng ~profiles:50 ~sample_types ~deviations:bid_deviations
      (auction_dmech ~second_price:false)
  in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Equilibrium.gain >= b.Equilibrium.gain && sorted rest
    | _ -> true
  in
  check Alcotest.bool "sorted desc" true (sorted r.Equilibrium.violations)

(* --- Best-response dynamics (Remark 2) --- *)

let br_candidates _ = [ Honest; Shade 0.5; Overbid 2. ]

let test_br_faithful_is_fixed_point () =
  let dm = auction_dmech ~second_price:true in
  let types = [| 3.; 7.; 5. |] in
  match
    Equilibrium.best_response_dynamics ~start:[| Honest; Honest; Honest |]
      ~candidates:br_candidates ~types ~max_rounds:10 dm
  with
  | `Converged (profile, rounds) ->
      check Alcotest.bool "still honest" true (Array.for_all (( = ) Honest) profile);
      check Alcotest.int "immediate" 1 rounds
  | `No_convergence _ -> Alcotest.fail "should converge"

let test_br_single_deviant_returns_to_honest_when_strictly_worse () =
  (* An overbidder in a second-price auction wins at a loss when the
     overbid crosses a rival's value; best response returns to honesty. *)
  let dm = auction_dmech ~second_price:true in
  let types = [| 5.; 6.; 4. |] in
  (* node 0 overbids: wins at price 6 > value 5, utility -1 < 0 *)
  match
    Equilibrium.best_response_dynamics ~start:[| Overbid 2.; Honest; Honest |]
      ~candidates:br_candidates ~types ~max_rounds:10 dm
  with
  | `Converged (profile, _) ->
      check Alcotest.bool "node 0 stops overbidding" true (profile.(0) <> Overbid 2.)
  | `No_convergence _ -> Alcotest.fail "should converge"

let test_br_first_price_shading_spreads () =
  (* Under first price, honesty is not stable: the winner strictly gains
     by shading. *)
  let dm = auction_dmech ~second_price:false in
  let types = [| 8.; 3.; 2. |] in
  match
    Equilibrium.best_response_dynamics ~start:[| Honest; Honest; Honest |]
      ~candidates:br_candidates ~types ~max_rounds:10 dm
  with
  | `Converged (profile, _) ->
      check Alcotest.bool "winner shades" true (profile.(0) = Shade 0.5)
  | `No_convergence profile ->
      check Alcotest.bool "winner shades" true (profile.(0) = Shade 0.5)

let test_br_max_rounds_respected () =
  (* A rock-paper-scissors-like flip-flopper: force no convergence. *)
  let dm =
    {
      Dmech.n = 1;
      suggested = (fun _ -> Honest);
      outcome = (fun strategies _ -> (0, (match strategies.(0) with Honest -> 1. | _ -> 0.)));
      (* utility prefers whichever strategy it is NOT playing *)
      utility = (fun _ _ (_, flag) -> flag);
    }
  in
  (* Honest yields 1; Shade yields 0 — candidates prefer Honest always, so
     from Shade it converges; from Honest it stays. Use it to check the
     rounds bound plumbing instead. *)
  match
    Equilibrium.best_response_dynamics ~start:[| Shade 0.5 |]
      ~candidates:(fun _ -> [ Honest; Shade 0.5 ])
      ~types:[| 0. |] ~max_rounds:3 dm
  with
  | `Converged (profile, _) -> check Alcotest.bool "moved to honest" true (profile.(0) = Honest)
  | `No_convergence _ -> Alcotest.fail "should converge"

(* --- Knowledge --- *)

module Knowledge = Damd_core.Knowledge

let test_knowledge_ordering () =
  check Alcotest.bool "dominant < ex post" true
    (Knowledge.weaker_assumption_than Knowledge.Dominant_strategy Knowledge.Ex_post_Nash);
  check Alcotest.bool "ex post < Nash" true
    (Knowledge.weaker_assumption_than Knowledge.Ex_post_Nash Knowledge.Nash);
  check Alcotest.bool "transitive" true
    (Knowledge.weaker_assumption_than Knowledge.Dominant_strategy Knowledge.Nash);
  check Alcotest.bool "irreflexive" false
    (Knowledge.weaker_assumption_than Knowledge.Nash Knowledge.Nash)

let test_knowledge_remark3 () =
  (* Remark 3: a trusted center allows dominant strategies; distributing
     the rules forces ex post Nash. *)
  check Alcotest.bool "centralized" true
    (Knowledge.strongest_feasible ~center:true = Knowledge.Dominant_strategy);
  check Alcotest.bool "distributed" true
    (Knowledge.strongest_feasible ~center:false = Knowledge.Ex_post_Nash)

let test_knowledge_strings_distinct () =
  let all = [ Knowledge.Dominant_strategy; Knowledge.Ex_post_Nash; Knowledge.Nash ] in
  check Alcotest.int "names distinct" 3
    (List.length (List.sort_uniq compare (List.map Knowledge.to_string all)));
  check Alcotest.int "assumptions distinct" 3
    (List.length (List.sort_uniq compare (List.map Knowledge.knowledge_assumption all)))

(* --- Phase --- *)

let counting_phase name log ?(fail_times = 0) () =
  let failures = ref fail_times in
  {
    Phase.name;
    run = (fun state -> log := !log @ [ name ]; state + 1);
    certify =
      (fun _ ->
        if !failures > 0 then begin
          decr failures;
          Error (name ^ " certificate failed")
        end
        else Ok ());
  }

let test_phase_sequence () =
  let log = ref [] in
  let phases = [ counting_phase "a" log (); counting_phase "b" log () ] in
  match Phase.execute 0 phases with
  | Phase.Completed p ->
      check Alcotest.int "state threaded" 2 p.Phase.state;
      check (Alcotest.list Alcotest.string) "order" [ "a"; "b" ] !log;
      check Alcotest.int "no restarts" 0 (Phase.total_restarts p)
  | Phase.Stuck _ -> Alcotest.fail "unexpected stuck"

let test_phase_restart_then_pass () =
  let log = ref [] in
  let phases = [ counting_phase "a" log ~fail_times:2 (); counting_phase "b" log () ] in
  match Phase.execute ~max_restarts:3 0 phases with
  | Phase.Completed p ->
      (* phase a ran 3 times (2 failures + success), then b once *)
      check (Alcotest.list Alcotest.string) "replay" [ "a"; "a"; "a"; "b" ] !log;
      check Alcotest.int "two restarts" 2 (Phase.total_restarts p)
  | Phase.Stuck _ -> Alcotest.fail "unexpected stuck"

let test_phase_stuck () =
  let log = ref [] in
  let phases = [ counting_phase "a" log ~fail_times:100 () ] in
  match Phase.execute ~max_restarts:2 0 phases with
  | Phase.Completed _ -> Alcotest.fail "should be stuck"
  | Phase.Stuck { phase; reason; progress } ->
      check Alcotest.string "phase" "a" phase;
      check Alcotest.bool "reason" true (reason <> "");
      check Alcotest.int "attempts" 3 (List.length !log);
      check Alcotest.int "restarts recorded" 3 (Phase.total_restarts progress)

let test_phase_later_phase_not_run_when_stuck () =
  let log = ref [] in
  let phases =
    [ counting_phase "a" log ~fail_times:100 (); counting_phase "b" log () ]
  in
  (match Phase.execute ~max_restarts:0 0 phases with
  | Phase.Stuck _ -> ()
  | Phase.Completed _ -> Alcotest.fail "should be stuck");
  check Alcotest.bool "b never ran" false (List.mem "b" !log)

let test_phase_uncertified_ablation () =
  let log = ref [] in
  let failing = counting_phase "a" log ~fail_times:100 () in
  match Phase.execute 0 [ Phase.uncertified failing ] with
  | Phase.Completed p -> check Alcotest.int "slides through" 0 (Phase.total_restarts p)
  | Phase.Stuck _ -> Alcotest.fail "uncertified phase cannot stick"

(* --- Faithfulness --- *)

let clean_report property =
  {
    Equilibrium.property;
    profiles_tested = 10;
    deviations_tested = 3;
    comparisons = 30;
    violations = [];
    max_gain = 0.;
  }

let dirty_report property =
  {
    (clean_report property) with
    Equilibrium.violations =
      [ { Equilibrium.deviation_name = "x"; agent = 0; profile_index = 0; gain = 1. } ];
    max_gain = 1.;
  }

let test_faithfulness_all_good () =
  let v =
    Faithfulness.certify
      {
        Faithfulness.centralized_strategyproof = true;
        centralized_trials = 100;
        strong_cc = clean_report "strong-CC";
        strong_ac = clean_report "strong-AC";
        revelation_consistent = true;
      }
  in
  check Alcotest.bool "faithful" true v.Faithfulness.faithful;
  check Alcotest.int "no failures" 0 (List.length v.Faithfulness.failures)

let test_faithfulness_failures_enumerated () =
  let v =
    Faithfulness.certify
      {
        Faithfulness.centralized_strategyproof = false;
        centralized_trials = 100;
        strong_cc = dirty_report "strong-CC";
        strong_ac = clean_report "strong-AC";
        revelation_consistent = false;
      }
  in
  check Alcotest.bool "not faithful" false v.Faithfulness.faithful;
  check Alcotest.int "three failures" 3 (List.length v.Faithfulness.failures)

let suites =
  [
    ( "core.action",
      [
        Alcotest.test_case "strings" `Quick test_action_strings;
        Alcotest.test_case "external classes" `Quick test_action_external;
      ] );
    ( "core.state_machine",
      [
        Alcotest.test_case "trace" `Quick test_sm_trace;
        Alcotest.test_case "max steps" `Quick test_sm_max_steps;
        Alcotest.test_case "external actions" `Quick test_sm_external_actions;
        Alcotest.test_case "follows specification" `Quick test_sm_follows_specification;
        Alcotest.test_case "deviation point" `Quick test_sm_deviation_point;
        Alcotest.test_case "early halt detected" `Quick test_sm_early_halt_detected;
      ] );
    ( "core.strategy",
      [
        Alcotest.test_case "project classes" `Quick test_strategy_project_classes;
        Alcotest.test_case "compose roundtrip" `Quick test_strategy_compose_roundtrip;
        Alcotest.test_case "internal rides with computation" `Quick
          test_strategy_internal_rides_with_computation;
        Alcotest.test_case "compose rejects conflicts" `Quick
          test_strategy_compose_rejects_conflicts;
        Alcotest.test_case "trace of class" `Quick test_strategy_trace_of_class;
        QCheck_alcotest.to_alcotest prop_strategy_roundtrip_random;
      ] );
    ( "core.equilibrium",
      [
        Alcotest.test_case "suggested outcome" `Quick test_dmech_suggested_outcome;
        Alcotest.test_case "unilateral profile" `Quick test_dmech_unilateral;
        Alcotest.test_case "deviation gain" `Quick
          test_dmech_deviation_gain_negative_second_price;
        Alcotest.test_case "second price holds" `Quick test_equilibrium_second_price_holds;
        Alcotest.test_case "first price violated" `Quick
          test_equilibrium_first_price_violated;
        Alcotest.test_case "class filters" `Quick test_equilibrium_class_filters;
        Alcotest.test_case "applies_to" `Quick test_equilibrium_applies_to;
        Alcotest.test_case "violations sorted" `Quick test_equilibrium_violations_sorted;
      ] );
    ( "core.best_response",
      [
        Alcotest.test_case "faithful fixed point" `Quick test_br_faithful_is_fixed_point;
        Alcotest.test_case "deviant returns" `Quick
          test_br_single_deviant_returns_to_honest_when_strictly_worse;
        Alcotest.test_case "first-price shading spreads" `Quick
          test_br_first_price_shading_spreads;
        Alcotest.test_case "rounds plumbing" `Quick test_br_max_rounds_respected;
      ] );
    ( "core.knowledge",
      [
        Alcotest.test_case "ordering" `Quick test_knowledge_ordering;
        Alcotest.test_case "remark 3" `Quick test_knowledge_remark3;
        Alcotest.test_case "strings distinct" `Quick test_knowledge_strings_distinct;
      ] );
    ( "core.phase",
      [
        Alcotest.test_case "sequence" `Quick test_phase_sequence;
        Alcotest.test_case "restart then pass" `Quick test_phase_restart_then_pass;
        Alcotest.test_case "stuck" `Quick test_phase_stuck;
        Alcotest.test_case "stuck blocks later phases" `Quick
          test_phase_later_phase_not_run_when_stuck;
        Alcotest.test_case "uncertified ablation" `Quick test_phase_uncertified_ablation;
      ] );
    ( "core.faithfulness",
      [
        Alcotest.test_case "all good" `Quick test_faithfulness_all_good;
        Alcotest.test_case "failures enumerated" `Quick
          test_faithfulness_failures_enumerated;
      ] );
  ]

(* Tests for Damd_crypto: SHA-256 against FIPS 180-4 vectors, HMAC-SHA-256
   against RFC 4231 vectors, and the signing registry's tamper detection. *)

module Sha256 = Damd_crypto.Sha256
module Hmac = Damd_crypto.Hmac
module Signer = Damd_crypto.Signer

let check = Alcotest.check

(* --- SHA-256 FIPS vectors --- *)

let sha_vector msg expected () =
  check Alcotest.string "digest" expected (Sha256.digest_hex msg)

let test_sha_empty =
  sha_vector "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"

let test_sha_abc =
  sha_vector "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"

let test_sha_two_blocks =
  sha_vector "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"

let test_sha_448_bit_boundary () =
  (* 56 bytes: padding must spill into a second block. *)
  let msg = String.make 56 'a' in
  check Alcotest.string "56x'a'"
    "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
    (Sha256.digest_hex msg)

let test_sha_million_a () =
  let msg = String.make 1_000_000 'a' in
  check Alcotest.string "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_hex msg)

let test_sha_streaming_equals_oneshot () =
  let parts = [ "The quick "; "brown fox "; "jumps over "; "the lazy dog" ] in
  let ctx = Sha256.init () in
  List.iter (Sha256.feed ctx) parts;
  let streamed = Sha256.hex (Sha256.finalize ctx) in
  check Alcotest.string "streaming" (Sha256.digest_hex (String.concat "" parts)) streamed

let test_sha_quick_fox () =
  check Alcotest.string "fox"
    "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
    (Sha256.digest_hex "The quick brown fox jumps over the lazy dog")

let test_sha_digest_list_boundaries () =
  let a = Sha256.digest_list [ "ab"; "c" ] in
  let b = Sha256.digest_list [ "a"; "bc" ] in
  check Alcotest.bool "boundary-sensitive" true (a <> b)

let test_sha_digest_list_deterministic () =
  check Alcotest.string "same input same hash"
    (Sha256.hex (Sha256.digest_list [ "x"; "y"; "z" ]))
    (Sha256.hex (Sha256.digest_list [ "x"; "y"; "z" ]))

let test_hex () = check Alcotest.string "hex" "00ff10" (Sha256.hex "\x00\xff\x10")

let test_sha_block_boundaries () =
  (* 55 bytes (padding fits), 64 bytes (exactly one block), 65 bytes
     (spills): the three classic off-by-one traps. *)
  check Alcotest.string "55"
    "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"
    (Sha256.digest_hex (String.make 55 'a'));
  check Alcotest.string "64"
    "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
    (Sha256.digest_hex (String.make 64 'a'));
  check Alcotest.string "65"
    "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0"
    (Sha256.digest_hex (String.make 65 'a'))

let test_sha_digest_list_empty () =
  check Alcotest.bool "empty list deterministic" true
    (Sha256.digest_list [] = Sha256.digest_list []);
  check Alcotest.bool "differs from empty string" true
    (Sha256.digest_list [] <> Sha256.digest_list [ "" ])

let prop_sha_length =
  QCheck.Test.make ~name:"digest is 32 bytes" ~count:100 QCheck.string (fun s ->
      String.length (Sha256.digest s) = 32)

let prop_sha_avalanche =
  QCheck.Test.make ~name:"flipping a byte changes the digest" ~count:100
    QCheck.(pair (string_of_size QCheck.Gen.(1 -- 100)) small_nat)
    (fun (s, i) ->
      let i = i mod String.length s in
      let s' =
        String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c) s
      in
      Sha256.digest s <> Sha256.digest s')

let prop_sha_streaming_split =
  QCheck.Test.make ~name:"any split streams to the same digest" ~count:100
    QCheck.(pair string small_nat)
    (fun (s, i) ->
      let i = if String.length s = 0 then 0 else i mod (String.length s + 1) in
      let ctx = Sha256.init () in
      Sha256.feed ctx (String.sub s 0 i);
      Sha256.feed ctx (String.sub s i (String.length s - i));
      Sha256.finalize ctx = Sha256.digest s)

(* --- HMAC RFC 4231 vectors --- *)

let test_hmac_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  check Alcotest.string "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key "Hi There")

let test_hmac_rfc4231_case2 () =
  check Alcotest.string "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_rfc4231_case3 () =
  let key = String.make 20 '\xaa' in
  let msg = String.make 50 '\xdd' in
  check Alcotest.string "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac_hex ~key msg)

let test_hmac_rfc4231_case6_long_key () =
  (* Key longer than the block size must be hashed first. *)
  let key = String.make 131 '\xaa' in
  check Alcotest.string "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_hex ~key "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_block_size_key () =
  (* A key of exactly the block size must be used as-is (not hashed). *)
  check Alcotest.string "64-byte key"
    "3639ed45f96410ae1abf821aaf15a4e616209464f7e06fb79435d35e485bd3c2"
    (Hmac.mac_hex ~key:(String.make 64 'k') "block-size key")

let test_hmac_verify_roundtrip () =
  let tag = Hmac.mac ~key:"k" "message" in
  check Alcotest.bool "verifies" true (Hmac.verify ~key:"k" "message" ~tag);
  check Alcotest.bool "wrong msg" false (Hmac.verify ~key:"k" "messagf" ~tag);
  check Alcotest.bool "wrong key" false (Hmac.verify ~key:"k2" "message" ~tag);
  check Alcotest.bool "wrong length tag" false (Hmac.verify ~key:"k" "message" ~tag:"short")

let prop_hmac_key_separation =
  QCheck.Test.make ~name:"different keys give different tags" ~count:100
    QCheck.(triple (string_of_size QCheck.Gen.(1 -- 32)) (string_of_size QCheck.Gen.(1 -- 32)) string)
    (fun (k1, k2, msg) ->
      QCheck.assume (k1 <> k2);
      Hmac.mac ~key:k1 msg <> Hmac.mac ~key:k2 msg)

(* --- Signer --- *)

let test_signer_roundtrip () =
  let reg = Signer.create_registry ~seed:1 in
  let key = Signer.key_of reg 7 in
  let s = Signer.sign ~key ~signer:7 "payment:42" in
  check Alcotest.bool "verifies" true (Signer.verify reg s)

let test_signer_detects_tamper () =
  let reg = Signer.create_registry ~seed:1 in
  let key = Signer.key_of reg 7 in
  let s = Signer.sign ~key ~signer:7 "payment:42" in
  let s' = Signer.tamper s ~payload:"payment:0" in
  check Alcotest.bool "tamper detected" false (Signer.verify reg s')

let test_signer_detects_spoofed_identity () =
  let reg = Signer.create_registry ~seed:1 in
  let key7 = Signer.key_of reg 7 in
  (* Node 7 signs but claims to be node 3. *)
  let s = Signer.sign ~key:key7 ~signer:3 "report" in
  check Alcotest.bool "spoof detected" false (Signer.verify reg s)

let test_signer_keys_deterministic () =
  let a = Signer.create_registry ~seed:5 in
  let b = Signer.create_registry ~seed:5 in
  check Alcotest.string "same key" (Signer.key_of a 1) (Signer.key_of b 1);
  let c = Signer.create_registry ~seed:6 in
  check Alcotest.bool "different seed different key" true
    (Signer.key_of a 1 <> Signer.key_of c 1)

let test_signer_distinct_identities_distinct_keys () =
  let reg = Signer.create_registry ~seed:5 in
  check Alcotest.bool "distinct" true (Signer.key_of reg 1 <> Signer.key_of reg 2)

let prop_signer_payload_integrity =
  QCheck.Test.make ~name:"any payload change breaks the signature" ~count:100
    QCheck.(pair string string)
    (fun (payload, other) ->
      QCheck.assume (payload <> other);
      let reg = Signer.create_registry ~seed:3 in
      let key = Signer.key_of reg 1 in
      let s = Signer.sign ~key ~signer:1 payload in
      Signer.verify reg s && not (Signer.verify reg (Signer.tamper s ~payload:other)))

let suites =
  [
    ( "crypto.sha256",
      [
        Alcotest.test_case "FIPS empty" `Quick test_sha_empty;
        Alcotest.test_case "FIPS abc" `Quick test_sha_abc;
        Alcotest.test_case "FIPS two blocks" `Quick test_sha_two_blocks;
        Alcotest.test_case "448-bit boundary" `Quick test_sha_448_bit_boundary;
        Alcotest.test_case "million a" `Slow test_sha_million_a;
        Alcotest.test_case "streaming = one-shot" `Quick test_sha_streaming_equals_oneshot;
        Alcotest.test_case "quick fox" `Quick test_sha_quick_fox;
        Alcotest.test_case "digest_list boundaries" `Quick test_sha_digest_list_boundaries;
        Alcotest.test_case "digest_list deterministic" `Quick test_sha_digest_list_deterministic;
        Alcotest.test_case "hex" `Quick test_hex;
        Alcotest.test_case "block boundaries" `Quick test_sha_block_boundaries;
        Alcotest.test_case "digest_list empty" `Quick test_sha_digest_list_empty;
        QCheck_alcotest.to_alcotest prop_sha_length;
        QCheck_alcotest.to_alcotest prop_sha_avalanche;
        QCheck_alcotest.to_alcotest prop_sha_streaming_split;
      ] );
    ( "crypto.hmac",
      [
        Alcotest.test_case "RFC4231 case 1" `Quick test_hmac_rfc4231_case1;
        Alcotest.test_case "RFC4231 case 2" `Quick test_hmac_rfc4231_case2;
        Alcotest.test_case "RFC4231 case 3" `Quick test_hmac_rfc4231_case3;
        Alcotest.test_case "RFC4231 case 6 (long key)" `Quick test_hmac_rfc4231_case6_long_key;
        Alcotest.test_case "block-size key" `Quick test_hmac_block_size_key;
        Alcotest.test_case "verify roundtrip" `Quick test_hmac_verify_roundtrip;
        QCheck_alcotest.to_alcotest prop_hmac_key_separation;
      ] );
    ( "crypto.signer",
      [
        Alcotest.test_case "roundtrip" `Quick test_signer_roundtrip;
        Alcotest.test_case "detects tamper" `Quick test_signer_detects_tamper;
        Alcotest.test_case "detects spoofed identity" `Quick test_signer_detects_spoofed_identity;
        Alcotest.test_case "keys deterministic" `Quick test_signer_keys_deterministic;
        Alcotest.test_case "distinct identities" `Quick test_signer_distinct_identities_distinct_keys;
        QCheck_alcotest.to_alcotest prop_signer_payload_integrity;
      ] );
  ]

(* Tests for Damd_mech: generic VCG (reduces to a second-price auction on
   the single-item problem; passes randomized strategyproofness sweeps),
   the strategyproofness harness itself (detects a rigged first-price
   baseline), and the §3 leader-election toy (naive spec manipulable,
   second-score spec strategyproof). *)

module Rng = Damd_util.Rng
module Mechanism = Damd_mech.Mechanism
module Vcg = Damd_mech.Vcg
module Strategyproof = Damd_mech.Strategyproof
module Leader = Damd_mech.Leader_election

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* Single-item allocation: type = value for the item; outcome = winner. *)
let auction n =
  {
    Vcg.n;
    outcomes = List.init n (fun i -> i);
    valuation = (fun i (v : float) winner -> if winner = i then v else 0.);
  }

let test_vcg_is_second_price () =
  let p = auction 3 in
  let winner, transfers = Vcg.run p [| 10.; 7.; 3. |] in
  check Alcotest.int "highest bidder wins" 0 winner;
  (* Clarke tax: the winner pays the second-highest bid. *)
  checkf "winner pays 7" (-7.) transfers.(0);
  checkf "loser pays nothing" 0. transfers.(1);
  checkf "loser pays nothing" 0. transfers.(2)

let test_vcg_tie_break_deterministic () =
  let p = auction 3 in
  let winner, _ = Vcg.run p [| 5.; 5.; 5. |] in
  check Alcotest.int "first in outcome order" 0 winner

let test_vcg_public_project () =
  (* Build (cost shared implicitly via valuations) or not. *)
  let p =
    {
      Vcg.n = 3;
      outcomes = [ `Build; `Skip ];
      valuation =
        (fun _i (v : float) o ->
          match o with `Build -> v -. 2. (* each pays a 2.0 share *) | `Skip -> 0.);
    }
  in
  let o, transfers = Vcg.run p [| 5.; 1.; 1. |] in
  check Alcotest.bool "builds when welfare positive" true (o = `Build);
  (* Node 0 is pivotal: without it, others prefer Skip (welfare -2 < 0). *)
  check Alcotest.bool "pivotal node taxed" true (transfers.(0) < 0.);
  checkf "non-pivotal untaxed" 0. transfers.(1)

let test_vcg_empty_outcomes_rejected () =
  let p = { Vcg.n = 1; outcomes = []; valuation = (fun _ (_ : float) () -> 0.) } in
  Alcotest.check_raises "empty" (Invalid_argument "Vcg.run: empty outcome set") (fun () ->
      ignore (Vcg.run p [| 1. |]))

let test_vcg_arity_rejected () =
  let p = auction 3 in
  Alcotest.check_raises "arity" (Invalid_argument "Vcg.run: arity") (fun () ->
      ignore (Vcg.run p [| 1. |]))

let test_mechanism_utility () =
  let m = Vcg.mechanism (auction 2) in
  (* Truthful winner: utility = value - second price. *)
  checkf "winner utility" 3. (Mechanism.utility m 0 8. [| 8.; 5. |]);
  checkf "loser utility" 0. (Mechanism.utility m 1 5. [| 8.; 5. |])

let test_mechanism_budget () =
  let m = Vcg.mechanism (auction 2) in
  checkf "collects second price" (-5.) (Mechanism.budget m [| 8.; 5. |])

let test_mechanism_social_welfare () =
  let m = Vcg.mechanism (auction 2) in
  checkf "welfare of best" 8. (Mechanism.social_welfare m [| 8.; 5. |] 0)

(* --- Strategyproofness harness --- *)

let sample_values n rng = Array.init n (fun _ -> Rng.float_in rng 0. 10.)
let sample_value_lie rng _ v = Float.max 0. (v +. Rng.float_in rng (-5.) 5.)

let test_vcg_auction_strategyproof () =
  let m = Vcg.mechanism (auction 4) in
  let rng = Rng.create 101 in
  let r =
    Strategyproof.check ~rng ~profiles:200 ~lies_per_agent:5
      ~sample_profile:(sample_values 4) ~sample_lie:sample_value_lie m
  in
  check Alcotest.int "trials" (200 * 4 * 5) r.Strategyproof.trials;
  check Alcotest.bool "no violations" true (Strategyproof.is_strategyproof r)

let first_price n =
  (* Deliberately manipulable baseline: winner pays own bid. *)
  {
    Mechanism.n;
    run =
      (fun bids ->
        let best = ref 0 in
        for i = 1 to n - 1 do
          if bids.(i) > bids.(!best) then best := i
        done;
        let transfers = Array.make n 0. in
        transfers.(!best) <- -.bids.(!best);
        (!best, transfers));
    valuation = (fun i v winner -> if winner = i then v else 0.);
  }

let test_harness_catches_first_price () =
  let rng = Rng.create 102 in
  let r =
    Strategyproof.check ~rng ~profiles:200 ~lies_per_agent:5
      ~sample_profile:(sample_values 3) ~sample_lie:sample_value_lie (first_price 3)
  in
  check Alcotest.bool "violations found" false (Strategyproof.is_strategyproof r);
  check Alcotest.bool "positive max gain" true (r.Strategyproof.max_gain > 0.);
  (* Violations are sorted worst-first. *)
  match r.Strategyproof.violations with
  | a :: b :: _ -> check Alcotest.bool "sorted" true (a.Strategyproof.gain >= b.Strategyproof.gain)
  | _ -> ()

let test_harness_exhaustive () =
  let m = Vcg.mechanism (auction 2) in
  let profiles = [ [| 1.; 2. |]; [| 2.; 1. |]; [| 3.; 3. |] ] in
  let lies _ (v : float) = [ 0.; v /. 2.; v *. 2.; v +. 1. ] in
  let r = Strategyproof.check_exhaustive ~profiles ~lies m in
  check Alcotest.int "trials" (3 * 2 * 4) r.Strategyproof.trials;
  check Alcotest.bool "vcg clean" true (Strategyproof.is_strategyproof r)

let test_harness_exhaustive_catches () =
  let profiles = [ [| 4.; 2. |] ] in
  let lies _ (v : float) = [ v /. 2. ] in
  let r = Strategyproof.check_exhaustive ~profiles ~lies (first_price 2) in
  (* Bidding 2 instead of 4 still wins (ties at 2 go to lowest index) and
     halves the price: gain = 2. *)
  check Alcotest.int "one violation" 1 (List.length r.Strategyproof.violations);
  checkf "gain" 2. r.Strategyproof.max_gain

(* --- Leader election --- *)

let test_naive_elects_reported_max () =
  let m = Leader.naive ~n:3 in
  let o, _ =
    m.Mechanism.run
      [|
        { Leader.power = 5.; cost = 1. };
        { Leader.power = 9.; cost = 1. };
        { Leader.power = 2.; cost = 1. };
      |]
  in
  check Alcotest.int "max power" 1 o.Leader.leader

let test_naive_understating_profitable () =
  let m = Leader.naive ~n:3 in
  let profile =
    [|
      { Leader.power = 5.; cost = 1. };
      { Leader.power = 9.; cost = 2. };
      { Leader.power = 2.; cost = 1. };
    |]
  in
  let truthful = Mechanism.utility m 1 profile.(1) profile in
  let reports = Array.copy profile in
  reports.(1) <- Leader.selfish_report profile.(1);
  let deviant = Mechanism.utility m 1 profile.(1) reports in
  checkf "drafted at a loss" (-2.) truthful;
  checkf "dodges the draft" 0. deviant;
  check Alcotest.bool "profitable deviation" true (deviant > truthful)

let test_naive_not_strategyproof () =
  let rng = Rng.create 103 in
  let r =
    Strategyproof.check ~rng ~profiles:100 ~lies_per_agent:5
      ~sample_profile:(Leader.sample_profile ~n:4) ~sample_lie:Leader.sample_lie
      (Leader.naive ~n:4)
  in
  check Alcotest.bool "manipulable" false (Strategyproof.is_strategyproof r)

let test_second_score_strategyproof () =
  let rng = Rng.create 104 in
  let r =
    Strategyproof.check ~rng ~profiles:300 ~lies_per_agent:6
      ~sample_profile:(Leader.sample_profile ~n:4) ~sample_lie:Leader.sample_lie
      (Leader.second_score ~n:4 ~benefit:2.)
  in
  check Alcotest.bool "strategyproof" true (Strategyproof.is_strategyproof r)

let test_second_score_selfish_report_not_profitable () =
  let rng = Rng.create 105 in
  let m = Leader.second_score ~n:4 ~benefit:2. in
  for _ = 1 to 200 do
    let profile = Leader.sample_profile ~n:4 rng in
    for i = 0 to 3 do
      let truthful = Mechanism.utility m i profile.(i) profile in
      let reports = Array.copy profile in
      reports.(i) <- Leader.selfish_report profile.(i);
      let deviant = Mechanism.utility m i profile.(i) reports in
      check Alcotest.bool "no gain from dodging" true (deviant <= truthful +. 1e-9)
    done
  done

let test_second_score_elects_welfare_optimal () =
  let rng = Rng.create 106 in
  let m = Leader.second_score ~n:5 ~benefit:2. in
  for _ = 1 to 100 do
    let profile = Leader.sample_profile ~n:5 rng in
    let o, _ = m.Mechanism.run profile in
    check Alcotest.int "welfare optimal" (Leader.welfare_optimal ~benefit:2. profile)
      o.Leader.leader
  done

let test_second_score_winner_utility_nonneg () =
  (* Individual rationality under truthful play: the winner's verified
     payment covers its cost whenever it truly has the best score. *)
  let rng = Rng.create 107 in
  let m = Leader.second_score ~n:5 ~benefit:2. in
  for _ = 1 to 100 do
    let profile = Leader.sample_profile ~n:5 rng in
    let o, _ = m.Mechanism.run profile in
    let u = Mechanism.utility m o.Leader.leader profile.(o.Leader.leader) profile in
    check Alcotest.bool "winner IR" true (u >= -1e-9)
  done

let test_most_powerful () =
  let profile =
    [|
      { Leader.power = 5.; cost = 0. };
      { Leader.power = 9.; cost = 0. };
      { Leader.power = 9.; cost = 0. };
    |]
  in
  check Alcotest.int "ties to lowest index" 1 (Leader.most_powerful profile)

let prop_vcg_auction_no_profitable_lie =
  QCheck.Test.make ~name:"single-item VCG: no profitable lie" ~count:300
    QCheck.(triple (array_of_size (QCheck.Gen.return 4) (float_bound_inclusive 10.)) small_nat (float_bound_inclusive 10.))
    (fun (values, agent, lie) ->
      QCheck.assume (Array.length values = 4);
      let agent = agent mod 4 in
      let m = Vcg.mechanism (auction 4) in
      let truthful = Mechanism.utility m agent values.(agent) values in
      let reports = Array.copy values in
      reports.(agent) <- lie;
      Mechanism.utility m agent values.(agent) reports <= truthful +. 1e-9)

let prop_second_score_no_profitable_lie =
  QCheck.Test.make ~name:"leader election second-score: no profitable lie" ~count:300
    QCheck.(quad small_nat (float_bound_inclusive 10.) (float_bound_inclusive 10.) (float_bound_inclusive 5.))
    (fun (seed, lie_power, lie_cost, _) ->
      let rng = Rng.create (seed + 1000) in
      let profile = Leader.sample_profile ~n:4 rng in
      let agent = seed mod 4 in
      let m = Leader.second_score ~n:4 ~benefit:2. in
      let truthful = Mechanism.utility m agent profile.(agent) profile in
      let reports = Array.copy profile in
      reports.(agent) <- { Leader.power = lie_power; cost = lie_cost };
      Mechanism.utility m agent profile.(agent) reports <= truthful +. 1e-9)

(* --- Properties --- *)

module Properties = Damd_mech.Properties

let test_vcg_auction_ir () =
  let m = Vcg.mechanism (auction 4) in
  let rng = Rng.create 401 in
  let r =
    Properties.individually_rational ~rng ~trials:200 ~sample_profile:(sample_values 4) m
  in
  check Alcotest.bool "IR" true (Properties.all_pass r);
  check Alcotest.int "trials" 200 r.Properties.trials

let test_vcg_auction_no_deficit () =
  let m = Vcg.mechanism (auction 4) in
  let rng = Rng.create 402 in
  let r = Properties.budget_balanced ~rng ~trials:200 ~sample_profile:(sample_values 4) m in
  (* the Clarke tax collects money; it never pays out on net *)
  check Alcotest.bool "no deficit" true (Properties.all_pass r)

let test_vcg_auction_efficient () =
  let m = Vcg.mechanism (auction 4) in
  let rng = Rng.create 403 in
  let r =
    Properties.efficient ~rng ~trials:200 ~sample_profile:(sample_values 4)
      ~candidates:[ 0; 1; 2; 3 ] m
  in
  check Alcotest.bool "efficient" true (Properties.all_pass r)

let test_properties_catch_deficit () =
  (* A mechanism that pays everyone a subsidy runs a deficit. *)
  let subsidized =
    {
      Mechanism.n = 2;
      run = (fun (_ : float array) -> (0, [| 1.; 1. |]));
      valuation = (fun i v winner -> if winner = i then v else 0.);
    }
  in
  let rng = Rng.create 404 in
  let r =
    Properties.budget_balanced ~rng ~trials:10 ~sample_profile:(sample_values 2)
      subsidized
  in
  check Alcotest.int "all fail" 10 r.Properties.failures;
  Alcotest.check (Alcotest.float 1e-9) "worst deficit" (-2.) r.Properties.worst

let test_properties_catch_inefficiency () =
  (* Always pick agent 0, regardless of values. *)
  let dictatorial =
    {
      Mechanism.n = 2;
      run = (fun (_ : float array) -> (0, [| 0.; 0. |]));
      valuation = (fun i v winner -> if winner = i then v else 0.);
    }
  in
  let rng = Rng.create 405 in
  let r =
    Properties.efficient ~rng ~trials:100 ~sample_profile:(sample_values 2)
      ~candidates:[ 0; 1 ] dictatorial
  in
  check Alcotest.bool "inefficiency found" false (Properties.all_pass r)

let test_properties_catch_ir_violation () =
  (* Charge the winner more than its value. *)
  let extortion =
    {
      Mechanism.n = 2;
      run =
        (fun (bids : float array) ->
          let w = if bids.(0) >= bids.(1) then 0 else 1 in
          let t = [| 0.; 0. |] in
          t.(w) <- -.(bids.(w) +. 1.);
          (w, t));
      valuation = (fun i v winner -> if winner = i then v else 0.);
    }
  in
  let rng = Rng.create 406 in
  let r =
    Properties.individually_rational ~rng ~trials:50 ~sample_profile:(sample_values 2)
      extortion
  in
  check Alcotest.int "every profile violates" 50 r.Properties.failures

let test_leader_second_score_ir () =
  let m = Leader.second_score ~n:5 ~benefit:2. in
  let rng = Rng.create 407 in
  let r =
    Properties.individually_rational ~rng ~trials:200
      ~sample_profile:(Leader.sample_profile ~n:5) m
  in
  check Alcotest.bool "IR" true (Properties.all_pass r)

let suites =
  [
    ( "mech.vcg",
      [
        Alcotest.test_case "second-price reduction" `Quick test_vcg_is_second_price;
        Alcotest.test_case "deterministic tie-break" `Quick test_vcg_tie_break_deterministic;
        Alcotest.test_case "public project pivot" `Quick test_vcg_public_project;
        Alcotest.test_case "empty outcomes rejected" `Quick test_vcg_empty_outcomes_rejected;
        Alcotest.test_case "arity rejected" `Quick test_vcg_arity_rejected;
        Alcotest.test_case "utility" `Quick test_mechanism_utility;
        Alcotest.test_case "budget" `Quick test_mechanism_budget;
        Alcotest.test_case "social welfare" `Quick test_mechanism_social_welfare;
        QCheck_alcotest.to_alcotest prop_vcg_auction_no_profitable_lie;
      ] );
    ( "mech.strategyproof",
      [
        Alcotest.test_case "VCG auction passes" `Quick test_vcg_auction_strategyproof;
        Alcotest.test_case "first-price caught" `Quick test_harness_catches_first_price;
        Alcotest.test_case "exhaustive sweep" `Quick test_harness_exhaustive;
        Alcotest.test_case "exhaustive catches" `Quick test_harness_exhaustive_catches;
      ] );
    ( "mech.properties",
      [
        Alcotest.test_case "VCG auction IR" `Quick test_vcg_auction_ir;
        Alcotest.test_case "VCG auction no deficit" `Quick test_vcg_auction_no_deficit;
        Alcotest.test_case "VCG auction efficient" `Quick test_vcg_auction_efficient;
        Alcotest.test_case "catches deficit" `Quick test_properties_catch_deficit;
        Alcotest.test_case "catches inefficiency" `Quick test_properties_catch_inefficiency;
        Alcotest.test_case "catches IR violation" `Quick test_properties_catch_ir_violation;
        Alcotest.test_case "leader second-score IR" `Quick test_leader_second_score_ir;
      ] );
    ( "mech.leader_election",
      [
        Alcotest.test_case "naive elects reported max" `Quick test_naive_elects_reported_max;
        Alcotest.test_case "naive: understating profitable" `Quick test_naive_understating_profitable;
        Alcotest.test_case "naive not strategyproof" `Quick test_naive_not_strategyproof;
        Alcotest.test_case "second-score strategyproof" `Quick test_second_score_strategyproof;
        Alcotest.test_case "selfish report not profitable" `Quick
          test_second_score_selfish_report_not_profitable;
        Alcotest.test_case "elects welfare optimal" `Quick test_second_score_elects_welfare_optimal;
        Alcotest.test_case "winner IR" `Quick test_second_score_winner_utility_nonneg;
        Alcotest.test_case "most_powerful ties" `Quick test_most_powerful;
        QCheck_alcotest.to_alcotest prop_second_score_no_profitable_lie;
      ] );
  ]

(* Quickstart: the paper's Figure 1 network, end to end.

   Builds the six-node AS graph, computes lowest-cost paths and VCG
   payments with the centralized FPSS mechanism, runs the distributed
   computation and checks it agrees, then runs the full faithful protocol
   (checkers + bank) on the simulator.

     dune exec examples/quickstart.exe *)

module Graph = Damd_graph.Graph
module Gen = Damd_graph.Gen
module Pricing = Damd_fpss.Pricing
module Tables = Damd_fpss.Tables
module Traffic = Damd_fpss.Traffic
module Distributed = Damd_fpss.Distributed
module Runner = Damd_faithful.Runner
module Table = Damd_util.Table

let () =
  let g, names = Gen.figure1 () in
  let name_of i = fst (List.find (fun (_, id) -> id = i) names) in
  let node n = List.assoc n names in

  print_endline "== Figure 1: the FPSS example network ==";
  Printf.printf "%d nodes, %d edges, biconnected: %b\n\n" (Graph.n g)
    (Graph.num_edges g)
    (Damd_graph.Biconnect.is_biconnected g);

  (* 1. Centralized FPSS: LCPs and VCG prices. *)
  let tables = Pricing.compute g in
  let t = Table.create [ "pair"; "LCP"; "cost"; "per-packet payments" ] in
  List.iter
    (fun (src, dst) ->
      match Tables.path tables ~src ~dst with
      | None -> ()
      | Some path ->
          let path_str = String.concat "-" (List.map name_of path) in
          let cost = Option.get (Tables.lcp_cost tables ~src ~dst) in
          let payments =
            Tables.packet_payments tables ~src ~dst
            |> List.map (fun (k, p) -> Printf.sprintf "%s:%g" (name_of k) p)
            |> String.concat " "
          in
          Table.add_row t
            [
              Printf.sprintf "%s->%s" (name_of src) (name_of dst);
              path_str;
              Table.cell_float cost;
              (if payments = "" then "(none)" else payments);
            ])
    [
      (node "X", node "Z");
      (node "Z", node "D");
      (node "B", node "D");
      (node "A", node "C");
    ];
  Table.print t;
  print_newline ();

  (* 2. The distributed computation converges to the same tables. *)
  let d = Distributed.run g in
  Printf.printf
    "distributed FPSS: flood %d rounds, routing %d rounds, pricing %d rounds, %d messages\n"
    d.Distributed.rounds_flood d.Distributed.rounds_routing d.Distributed.rounds_pricing
    d.Distributed.messages;
  Printf.printf "distributed = centralized: routing %b, prices %b\n\n"
    (Tables.routing_equal d.Distributed.tables tables)
    (Tables.prices_equal d.Distributed.tables tables);

  (* 3. The faithful protocol: checkers mirror every principal, the bank
     certifies each construction phase, and the execution phase clears
     verified payments. *)
  let traffic = Traffic.uniform ~n:6 ~rate:1. in
  let r = Runner.run_faithful ~graph:g ~traffic () in
  Printf.printf "faithful run: completed=%b restarts=%d detections=%d\n"
    r.Runner.completed r.Runner.restarts
    (List.length r.Runner.detections);
  Printf.printf "construction: %d messages, %d bytes; execution: %d messages\n"
    r.Runner.construction_messages r.Runner.construction_bytes
    r.Runner.execution_messages;
  (match r.Runner.tables with
  | Some t ->
      Printf.printf "certified tables match the centralized mechanism: %b\n"
        (Tables.routing_equal t tables && Tables.prices_equal t tables)
  | None -> print_endline "no certified tables (unexpected)");
  print_newline ();
  let ut = Table.create [ "node"; "utility" ] in
  Array.iteri
    (fun i u -> Table.add_row ut [ name_of i; Table.cell_float u ])
    r.Runner.utilities;
  Table.print ut

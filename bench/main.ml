(* Bechamel benchmarks — one Test.make per experiment (matching the
   experiment index in DESIGN.md) plus a microbenchmark group for the substrates.

     dune exec bench/main.exe -- [--json FILE] [--quota SECONDS] [--limit N]

   Prints one row per benchmark with the OLS-estimated time per run.
   [--json FILE] additionally writes the estimates as a BENCH_*.json
   trajectory file (schema documented in DESIGN.md §9); [--quota]/[--limit]
   shrink the per-benchmark measurement budget, which the test suite uses
   to smoke-test the JSON path cheaply. *)

open Bechamel
open Toolkit

module Rng = Damd_util.Rng
module Graph = Damd_graph.Graph
module Gen = Damd_graph.Gen
module Dijkstra = Damd_graph.Dijkstra
module Sha256 = Damd_crypto.Sha256
module Hmac = Damd_crypto.Hmac
module Strategyproof = Damd_mech.Strategyproof
module Leader = Damd_mech.Leader_election
module Mechanism = Damd_mech.Mechanism
module Traffic = Damd_fpss.Traffic
module Pricing = Damd_fpss.Pricing
module Game = Damd_fpss.Game
module Distributed = Damd_fpss.Distributed
module Adversary = Damd_faithful.Adversary
module Node = Damd_faithful.Node
module Bank = Damd_faithful.Bank
module Runner = Damd_faithful.Runner
module Replication = Damd_faithful.Replication
module Campaign = Damd_gauntlet.Campaign
module Scale = Damd_faithful.Scale
module Sparse = Damd_fpss.Sparse
module Obs = Damd_obs.Obs
module Clock = Damd_obs.Clock

(* Shared fixtures, built once. *)
let fig1, _names = Gen.figure1 ()
let fig1_traffic = Traffic.uniform ~n:6 ~rate:1.

let graph16 = Gen.chordal_ring (Rng.create 1) ~n:16 ~chords:4 (Gen.Uniform_int (1, 10))
let graph8 = Gen.chordal_ring (Rng.create 2) ~n:8 ~chords:2 (Gen.Uniform_int (1, 10))
let traffic8 = Traffic.uniform ~n:8 ~rate:1.
let graph64 = Gen.erdos_renyi (Rng.create 3) ~n:64 ~p:0.1 (Gen.Uniform_int (1, 10))
let payload_64k = String.make 65536 'x'

(* Fixture for the trace-overhead pair: the n=64 sparse faithful pass
   (the Runner plays n=64 in ~10 s — unsampleable; the scale path runs it
   in milliseconds and exercises the same obs span/sample machinery). *)
let graph64_as = fst (Gen.as_like (Rng.create 7) ~n:64 ~m:2 (Gen.Uniform_int (1, 10)))
let dests64 = Array.init 8 (fun i -> i * 64 / 8)

(* The smallest explore-sweep topology (same fixture as --explore's
   explore_torus_n12 row), used by the analyze/explore subsumption pair:
   the static pass reads the IR, not the graph, so its cost is flat while
   the product exploration grows with the topology. *)
let torus12 =
  Gen.torus ~rows:3 ~cols:4
    ~costs:(Gen.draw_costs (Rng.create 42) (Gen.Uniform_int (1, 10)) 12)

(* Nodes with converged state for the bank-checkpoint benchmark: drive the
   construction synchronously once and keep the node array. *)
let converged_nodes =
  let g = graph8 in
  let n = Graph.n g in
  let neighbor_sets = Array.init n (Graph.neighbors g) in
  let nodes =
    Array.init n (fun id ->
        Node.create ~id ~n ~neighbor_sets ~true_cost:(Graph.cost g id)
          ~deviation:Adversary.Faithful ())
  in
  let inbox = Queue.create () in
  let send_of i ~dst msg = Queue.push (i, dst, msg) inbox in
  let drain handler =
    while not (Queue.is_empty inbox) do
      let src, dst, msg = Queue.pop inbox in
      handler dst ~sender:src msg
    done
  in
  Array.iteri (fun i node -> Node.announce_cost node (send_of i)) nodes;
  drain (fun dst ~sender msg ->
      match msg with
      | Damd_faithful.Protocol.Update u ->
          Node.on_cost_msg nodes.(dst) (send_of dst) ~sender u
      | _ -> ());
  Array.iter (fun node -> ignore (Node.finalize_costs node)) nodes;
  Array.iteri (fun i node -> Node.start_routing node (send_of i)) nodes;
  drain (fun dst ~sender msg -> Node.on_routing_msg nodes.(dst) (send_of dst) ~sender msg);
  Array.iteri (fun i node -> Node.start_pricing node (send_of i)) nodes;
  drain (fun dst ~sender msg -> Node.on_pricing_msg nodes.(dst) (send_of dst) ~sender msg);
  nodes

(* A fixed n=16 campaign (4x4 mesh, a two-node coalition, jittered and
   duplicating schedule) so the gauntlet's grading cost — the full run
   plus one unilateral baseline per deviant — is tracked across PRs. *)
let gauntlet_descr16 =
  {
    Campaign.seed = 0;
    topology = Campaign.Mesh (4, 4);
    graph_seed = 1234;
    traffic_rate = 1.;
    deviants =
      [ (5, Adversary.Miscompute_routing 2.); (6, Adversary.Collude_with 5) ];
    perturb =
      {
        Runner.jitter = 0.2;
        dup_p = 0.05;
        drop_p = 0.;
        drop_budget = 0;
        perturb_seed = 99;
      };
    fault = None;
  }

(* The same campaign under a mixed-failure schedule (loss + a routing-phase
   crash with handoff): tracks the fault-tolerant checkpoint and recovery
   overhead relative to [gauntlet_descr16]. *)
let gauntlet_descr16_faults =
  {
    gauntlet_descr16 with
    Campaign.fault =
      Some
        {
          Damd_sim.Fault.seed = 4242;
          link =
            Some
              { Damd_sim.Fault.loss_p = 0.02; reorder_p = 0.1; reorder_delay = 1.5 };
          partition = None;
          crash =
            Some
              {
                Damd_sim.Fault.node = 9;
                crash_phase = `Routing;
                at = 1.0;
                recovers_at = 3.0;
              };
        };
  }

let experiment_tests =
  Test.make_grouped ~name:"experiments"
    [
      Test.make ~name:"e1_figure1_vcg_tables"
        (Staged.stage (fun () -> ignore (Pricing.compute fig1)));
      Test.make ~name:"e2_example1_utility_sweep"
        (Staged.stage (fun () ->
             let true_costs = Graph.costs fig1 in
             let declared = Array.copy true_costs in
             declared.(2) <- 5.;
             ignore
               (Game.utilities Game.Naive_cost ~base:fig1 ~true_costs ~declared
                  ~traffic:fig1_traffic)));
      Test.make ~name:"e3_strategyproof_profile"
        (Staged.stage (fun () ->
             let rng = Rng.create 11 in
             let m = Game.mechanism Game.Vcg ~base:graph8 ~traffic:traffic8 in
             ignore
               (Strategyproof.check ~rng ~profiles:1 ~lies_per_agent:1
                  ~sample_profile:(fun rng -> Game.sample_costs rng ~n:8)
                  ~sample_lie:Game.sample_lie m)));
      Test.make ~name:"e4_catch_one_deviation"
        (Staged.stage (fun () ->
             let deviations = Array.make 6 Adversary.Faithful in
             deviations.(2) <- Adversary.Miscompute_routing 2.;
             ignore (Runner.run ~graph:fig1 ~traffic:fig1_traffic ~deviations ())));
      Test.make ~name:"e5_distributed_convergence_n16"
        (Staged.stage (fun () -> ignore (Distributed.run graph16)));
      Test.make ~name:"e6_plain_fpss_n8"
        (Staged.stage (fun () ->
             let params =
               { Runner.default_params with Runner.checking = false; copies = false }
             in
             ignore (Runner.run_faithful ~params ~graph:graph8 ~traffic:traffic8 ())));
      Test.make ~name:"e6_faithful_n8"
        (Staged.stage (fun () ->
             ignore (Runner.run_faithful ~graph:graph8 ~traffic:traffic8 ())));
      Test.make ~name:"e6_full_replication_n8"
        (Staged.stage (fun () -> ignore (Replication.run graph8)));
      Test.make ~name:"e7_deviation_gain"
        (Staged.stage (fun () ->
             ignore
               (Runner.utility_gain ~graph:fig1 ~traffic:fig1_traffic ~node:2
                  ~deviation:(Adversary.Underreport_payments 0.5) ())));
      Test.make ~name:"e8_deferred_certification"
        (Staged.stage (fun () ->
             let params =
               { Runner.default_params with Runner.deferred_certification = true }
             in
             let deviations = Array.make 6 Adversary.Faithful in
             deviations.(2) <- Adversary.Inconsistent_cost (1., 8.);
             ignore (Runner.run ~params ~graph:fig1 ~traffic:fig1_traffic ~deviations ())));
      Test.make ~name:"e9_leader_elections_x100"
        (Staged.stage (fun () ->
             let rng = Rng.create 12 in
             let m = Leader.second_score ~n:8 ~benefit:2. in
             for _ = 1 to 100 do
               ignore (m.Mechanism.run (Leader.sample_profile ~n:8 rng))
             done));
      Test.make ~name:"e10_bank_checkpoint_n8"
        (Staged.stage (fun () ->
             ignore (Bank.checkpoint_routing converged_nodes);
             ignore (Bank.checkpoint_pricing converged_nodes)));
      Test.make ~name:"e11_async_faithful_n8"
        (Staged.stage (fun () ->
             let params = { Runner.default_params with Runner.latency_seed = Some 5 } in
             ignore (Runner.run_faithful ~params ~graph:graph8 ~traffic:traffic8 ())));
      Test.make ~name:"e15_warm_start_n16"
        (Staged.stage
           (let cold = Distributed.run graph16 in
            let changed = Graph.with_cost graph16 3 9. in
            fun () ->
              ignore (Distributed.run ~warm_start:cold.Distributed.tables changed)));
      Test.make ~name:"e16_faithful_election_n8"
        (Staged.stage
           (let module Election = Damd_faithful.Election in
            let profile = Leader.sample_profile ~n:8 (Rng.create 13) in
            fun () ->
              ignore
                (Election.run ~graph:graph8 ~profile
                   ~deviations:(Array.make 8 Election.Honest) ())));
      Test.make ~name:"gauntlet_campaigns_n16"
        (Staged.stage (fun () -> ignore (Campaign.grade gauntlet_descr16)));
      Test.make ~name:"gauntlet_campaigns_n16_faults"
        (Staged.stage (fun () -> ignore (Campaign.grade gauntlet_descr16_faults)));
      Test.make ~name:"lint_stock_spec"
        (Staged.stage
           (let module Lint = Damd_speccheck.Lint in
            let labels = Adversary.all_labels in
            fun () ->
              ignore
                (Lint.run ~adversary:labels ~graph:fig1 ~topology:"fig1"
                   Damd_speccheck.Fpss_spec.ir)));
      Test.make ~name:"verify_fig1"
        (Staged.stage
           (* the full flow verifier: lint + taint diff + ~16k-state
              product exploration over the whole adversary vocabulary (the
              harness observations are a fixture — the differential runs
              themselves are part of the measured cost) *)
           (let module Verify = Damd_speccheck.Verify in
            let labels = Adversary.all_labels in
            fun () ->
              let observed = Damd_faithful.Flow.observations () in
              ignore
                (Verify.run ~adversary:labels ~observed ~graph:fig1
                   ~topology:"fig1" Damd_speccheck.Fpss_spec.ir)));
      Test.make ~name:"analyze_fig1"
        (Staged.stage
           (* the static pass alone (no differential): taint fixpoint +
              two-seat abstract frontier over the whole adversary
              vocabulary — ~60-70x cheaper than verify_fig1's product
              exploration on fig1 (the smallest instance; the E25 >=100x
              subsumption claim is carried by the torus_n12 pair below,
              where the exploration is big enough to dominate). *)
           (let module Analyze = Damd_speccheck.Analyze in
            let labels = Adversary.all_labels in
            fun () ->
              ignore
                (Analyze.run ~adversary:labels ~graph:fig1 ~topology:"fig1"
                   Damd_speccheck.Fpss_spec.ir)));
      Test.make ~name:"explore_torus_n12"
        (Staged.stage
           (* the dynamic side of the E25 subsumption pair: the same
              Explore.run configuration `analyze --differential` invokes
              (default bound/POR), on the smallest explore-sweep torus *)
           (let module Explore = Damd_speccheck.Explore in
            let labels = Adversary.all_labels in
            fun () ->
              ignore (Explore.run ~adversary:labels ~graph:torus12
                        Damd_speccheck.Fpss_spec.ir)));
      Test.make ~name:"analyze_torus_n12"
        (Staged.stage
           (* the static side of the pair: same IR, same adversary
              vocabulary, same topology. The abstract frontier never
              walks the graph, so this stays within noise of
              analyze_fig1 while explore_torus_n12 is >=100x larger —
              the measured form of the E25 claim. *)
           (let module Analyze = Damd_speccheck.Analyze in
            let labels = Adversary.all_labels in
            fun () ->
              ignore
                (Analyze.run ~adversary:labels ~graph:torus12
                   ~topology:"torus:3:4" Damd_speccheck.Fpss_spec.ir)));
    ]

let micro_tests =
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"sha256_64KiB"
        (Staged.stage (fun () -> ignore (Sha256.digest payload_64k)));
      Test.make ~name:"hmac_sha256_1KiB"
        (Staged.stage (fun () ->
             ignore (Hmac.mac ~key:"key" (String.sub payload_64k 0 1024))));
      Test.make ~name:"dijkstra_all_pairs_n64"
        (Staged.stage (fun () -> ignore (Dijkstra.all_to_dest graph64)));
      Test.make ~name:"vcg_pricing_n16"
        (Staged.stage (fun () -> ignore (Pricing.compute graph16)));
      Test.make ~name:"biconnectivity_n64"
        (Staged.stage (fun () ->
             ignore (Damd_graph.Biconnect.articulation_points graph64)));
      Test.make ~name:"graph_gen_er_n64"
        (Staged.stage (fun () ->
             ignore (Gen.erdos_renyi (Rng.create 4) ~n:64 ~p:0.1 (Gen.Uniform_int (1, 10)))));
      (* The instrumentation-overhead pair: the same n=64 faithful pass
         with the noop sink (every obs call is a tag test that must stay
         within noise of the uninstrumented baseline) and with a live
         in-memory ring (what a `damd trace`-style capture costs). *)
      Test.make ~name:"trace_overhead_n64_noop"
        (Staged.stage (fun () ->
             ignore (Scale.run ~dests:dests64 ~obs:Obs.noop graph64_as)));
      Test.make ~name:"trace_overhead_n64_memory"
        (Staged.stage (fun () ->
             ignore (Scale.run ~dests:dests64 ~obs:(Obs.memory ()) graph64_as)));
    ]

let run_and_report ~quota ~limit tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
        in
        (name, estimate) :: acc)
      results []
    |> List.sort compare
  in
  let t = Damd_util.Table.create [ "benchmark"; "time/run" ] in
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Damd_util.Table.add_row t [ name; human ])
    rows;
  Damd_util.Table.print t;
  rows

(* The BENCH_*.json trajectory format (DESIGN.md §9): one object per
   benchmark with the raw OLS nanosecond estimate, so successive PRs can be
   diffed mechanically. *)
let json_of_rows ~quota ~limit ?scaling ?explore rows =
  let module Json = Damd_util.Json in
  Json.Obj
    ([
       ("schema", Json.String "damd-bench/1");
       ("unit", Json.String "ns_per_run");
       ("quota_s", Json.Float quota);
       ("limit", Json.Int limit);
       ( "results",
         Json.List
           (List.map
              (fun (name, ns) ->
                Json.Obj
                  [
                    ("name", Json.String name);
                    ("time_per_run_ns", Json.Float ns);
                  ])
              rows) );
     ]
    @ (match scaling with None -> [] | Some s -> [ ("scaling", s) ])
    @ match explore with None -> [] | Some e -> [ ("explore", e) ])

(* --- the n=10k scaling sweep (--scale) ---

   One-shot timed runs, not Bechamel: a 2 s faithful run at n=10k cannot
   be OLS-sampled inside a sane quota, and the question here is the growth
   *curve*, not nanosecond precision. Per size: generate an AS-like
   power-law graph (m=2), run the full sparse faithful pass (flood,
   routing + pricing fixpoints, both mirror checkpoints, settlement) over
   8 spread destinations, and record wall time plus memory — [live_words]
   is measured after [Gc.compact] with the sparse state still live, so it
   is the actual resident word count of graph + protocol state; the
   per-row tuple keeps only scalars so earlier sizes don't stay live and
   inflate later measurements. Sizes run ascending, so the monotone
   [top_heap_words] is dominated by the size just run. *)

type scaling_row = {
  sc_n : int;
  sc_edges : int;
  sc_gen_s : float;
  sc_run_s : float;
  sc_rounds_flood : int;
  sc_rounds_routing : int;
  sc_rounds_pricing : int;
  sc_messages : int;
  sc_checkpoint_messages : int;
  sc_delivered : int;
  sc_state_words : int;
  sc_live_words : int;
  sc_top_heap_words : int;
}

let scaling_sizes = [ 16; 64; 256; 1000; 10000 ]

let run_scaling_sweep () =
  let module Json = Damd_util.Json in
  let rows =
    List.map
      (fun n ->
        let rng = Rng.create (1000 + n) in
        (* Monotonic clock (same one the obs spans use): wall-clock via
           [Unix.gettimeofday] can step backwards under NTP and produce
           negative sweep timings. *)
        let t0 = Clock.now_ns () in
        let g, _relations = Gen.as_like rng ~n ~m:2 (Gen.Uniform_int (1, 10)) in
        let gen_s = Clock.s_since t0 in
        let dests = Array.init 8 (fun i -> i * n / 8) in
        let t1 = Clock.now_ns () in
        let report, sp = Scale.run ~dests g in
        let run_s = Clock.s_since t1 in
        if not report.Scale.completed then
          failwith (Printf.sprintf "scaling sweep: n=%d halted at a checkpoint" n);
        Gc.compact ();
        let st = Gc.stat () in
        {
          sc_n = n;
          sc_edges = Graph.num_edges g;
          sc_gen_s = gen_s;
          sc_run_s = run_s;
          sc_rounds_flood = report.Scale.rounds_flood;
          sc_rounds_routing = report.Scale.rounds_routing;
          sc_rounds_pricing = report.Scale.rounds_pricing;
          sc_messages = report.Scale.construction_messages;
          sc_checkpoint_messages = report.Scale.checkpoint_messages;
          sc_delivered = report.Scale.delivered;
          sc_state_words = Sparse.state_words sp;
          sc_live_words = st.Gc.live_words;
          sc_top_heap_words = st.Gc.top_heap_words;
        })
      scaling_sizes
  in
  let t =
    Damd_util.Table.create
      [
        "n"; "edges"; "gen"; "run"; "rounds f/r/p"; "messages"; "state words";
        "live words";
      ]
  in
  List.iter
    (fun r ->
      Damd_util.Table.add_row t
        [
          string_of_int r.sc_n;
          string_of_int r.sc_edges;
          Printf.sprintf "%.3f s" r.sc_gen_s;
          Printf.sprintf "%.3f s" r.sc_run_s;
          Printf.sprintf "%d/%d/%d" r.sc_rounds_flood r.sc_rounds_routing
            r.sc_rounds_pricing;
          string_of_int (r.sc_messages + r.sc_checkpoint_messages);
          string_of_int r.sc_state_words;
          string_of_int r.sc_live_words;
        ])
    rows;
  Damd_util.Table.print t;
  Json.Obj
    [
      ("topology", Json.String "as:N:2");
      ("dests", Json.Int 8);
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("n", Json.Int r.sc_n);
                   ("edges", Json.Int r.sc_edges);
                   ("gen_s", Json.Float r.sc_gen_s);
                   ("run_s", Json.Float r.sc_run_s);
                   ("rounds_flood", Json.Int r.sc_rounds_flood);
                   ("rounds_routing", Json.Int r.sc_rounds_routing);
                   ("rounds_pricing", Json.Int r.sc_rounds_pricing);
                   ("construction_messages", Json.Int r.sc_messages);
                   ("checkpoint_messages", Json.Int r.sc_checkpoint_messages);
                   ("delivered", Json.Int r.sc_delivered);
                   ("state_words", Json.Int r.sc_state_words);
                   ("live_words", Json.Int r.sc_live_words);
                   ("top_heap_words", Json.Int r.sc_top_heap_words);
                 ])
             rows) );
    ]

(* --- the model-checking throughput table (--explore) ---

   One-shot timed runs, not Bechamel: the POR-off 5x5 torus explores ~2M
   canonical states in seconds and cannot be OLS-sampled inside a sane
   quota, and the figure of merit is states/second at scale, not
   nanosecond precision. Each topology runs the full §4.3 catalogue
   twice — reduction off (pinning the raw product size) and on (the
   production default) — off the same [Explore.stats] the obs
   `explore.done` instant reports, so the trajectory rows and the trace
   exports cannot disagree. *)

type explore_row = {
  ex_name : string;
  ex_por : bool;
  ex_states : int;
  ex_elapsed_s : float;
}

let run_explore_sweep () =
  let module Json = Damd_util.Json in
  let module Explore = Damd_speccheck.Explore in
  let ir = Damd_speccheck.Fpss_spec.ir in
  let torus rows cols seed =
    Gen.torus ~rows ~cols
      ~costs:(Gen.draw_costs (Rng.create seed) (Gen.Uniform_int (1, 10)) (rows * cols))
  in
  let topologies =
    [
      ("explore_fig1", fig1);
      ("explore_torus_n12", torus 3 4 42);
      ("explore_torus_n25", torus 5 5 42);
    ]
  in
  let rows =
    List.concat_map
      (fun (name, graph) ->
        List.map
          (fun por ->
            let o = Explore.run ~bound:2_000_000 ~por ~graph ir in
            if o.Explore.stats.Explore.truncated then
              failwith (Printf.sprintf "explore sweep: %s truncated" name);
            {
              ex_name = name;
              ex_por = por;
              ex_states = o.Explore.stats.Explore.states_explored;
              ex_elapsed_s = o.Explore.stats.Explore.elapsed_s;
            })
          [ false; true ])
      topologies
  in
  let t =
    Damd_util.Table.create [ "exploration"; "por"; "states"; "time"; "states/sec" ]
  in
  let per_sec r =
    if r.ex_elapsed_s > 0. then float_of_int r.ex_states /. r.ex_elapsed_s else 0.
  in
  List.iter
    (fun r ->
      Damd_util.Table.add_row t
        [
          r.ex_name;
          (if r.ex_por then "on" else "off");
          string_of_int r.ex_states;
          Printf.sprintf "%.3f s" r.ex_elapsed_s;
          Printf.sprintf "%.0f" (per_sec r);
        ])
    rows;
  Damd_util.Table.print t;
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("name", Json.String r.ex_name);
             ("por", Json.Bool r.ex_por);
             ("states", Json.Int r.ex_states);
             ("elapsed_s", Json.Float r.ex_elapsed_s);
             ("states_per_sec", Json.Float (per_sec r));
           ])
       rows)

let usage =
  "usage: main.exe [--json FILE] [--quota SECONDS] [--limit N] [--scale] [--explore]"

let () =
  let json_path = ref None in
  let quota = ref 0.5 in
  let limit = ref 300 in
  let scale = ref false in
  let explore = ref false in
  let spec =
    [
      ("--json", Arg.String (fun f -> json_path := Some f),
       "FILE  also write estimates as a BENCH_*.json trajectory file");
      ("--quota", Arg.Set_float quota,
       "SECONDS  per-benchmark time budget (default 0.5)");
      ("--limit", Arg.Set_int limit,
       "N  max samples per benchmark (default 300)");
      ("--scale", Arg.Set scale,
       "  also run the faithful scaling sweep (as:N:2 up to n=10000)");
      ("--explore", Arg.Set explore,
       "  also run the model-checking throughput table (POR on/off)");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  print_endline "== damd benchmarks (Bechamel, OLS time-per-run estimates) ==";
  print_newline ();
  let rows = run_and_report ~quota:!quota ~limit:!limit experiment_tests in
  print_newline ();
  let micro_rows = run_and_report ~quota:!quota ~limit:!limit micro_tests in
  let scaling =
    if !scale then begin
      print_newline ();
      print_endline
        "== faithful protocol at scale (as:N:2, 8 dests, one-shot wall time) ==";
      Some (run_scaling_sweep ())
    end
    else None
  in
  let explore_rows =
    if !explore then begin
      print_newline ();
      print_endline
        "== model checking at scale (full catalogue, one-shot wall time) ==";
      Some (run_explore_sweep ())
    end
    else None
  in
  match !json_path with
  | None -> ()
  | Some path ->
      Damd_util.Json.to_file path
        (json_of_rows ~quota:!quota ~limit:!limit ?scaling ?explore:explore_rows
           (rows @ micro_rows))

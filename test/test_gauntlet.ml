(* Tests for Damd_gauntlet.Campaign: seed-determinism of sampling and
   grading, Theorem 1 on small stock batches, the weakened-bank violation
   oracle, and the greedy shrinker's contract. *)

module Json = Damd_util.Json
module Adversary = Damd_faithful.Adversary
module Biconnect = Damd_graph.Biconnect
module Campaign = Damd_gauntlet.Campaign

let check = Alcotest.check

let test_of_seed_deterministic () =
  (* Sampling is a pure function of the seed — byte-identical descr. *)
  List.iter
    (fun seed ->
      check Alcotest.bool "same descr" true
        (Campaign.of_seed seed = Campaign.of_seed seed))
    [ 0; 1; 42; 123456789; max_int ]

let test_grade_replays_byte_identical () =
  (* The replay guarantee: grading twice yields byte-identical JSON. *)
  let d = Campaign.of_seed 42 in
  let j () = Json.to_string ~indent:2 (Campaign.json_of_graded (Campaign.grade d)) in
  check Alcotest.string "byte-identical replay" (j ()) (j ())

let test_sampled_graphs_biconnected_and_scoped () =
  (* Every sampled campaign: biconnected topology, 1..3 deviants seated
     in range, and no full-neighborhood coalition (every checker-caught
     deviant stays detectable under the topology-aware refinement). *)
  for i = 0 to 19 do
    let d = Campaign.of_seed (Campaign.campaign_seed ~master:7 i) in
    let g = Campaign.graph_of d in
    check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g);
    let n = Damd_graph.Graph.n g in
    let k = List.length d.Campaign.deviants in
    check Alcotest.bool "1..3 deviants" true (k >= 1 && k <= 3);
    let profile = Array.make n Adversary.Faithful in
    List.iter
      (fun (i, dev) ->
        check Alcotest.bool "deviant in range" true (i >= 0 && i < n);
        profile.(i) <- dev)
      d.Campaign.deviants;
    List.iter
      (fun (i, dev) ->
        if Adversary.detectable dev then
          check Alcotest.bool "still detectable in profile" true
            (Adversary.detectable_in
               ~neighbors:(Damd_graph.Graph.neighbors g)
               ~profile i))
      d.Campaign.deviants
  done

let test_stock_batch_no_violation () =
  (* Theorem 1 on a small batch: the stock mechanism never lets a
     sampled deviation both escape and profit (or corrupt the tables). *)
  let graded = Campaign.run_batch ~campaigns:10 ~seed:42 () in
  check Alcotest.int "batch size" 10 (List.length graded);
  List.iter
    (fun gr ->
      check Alcotest.bool "no violation" true
        (gr.Campaign.verdict <> Campaign.Violation))
    graded

let test_weakened_bank_violates () =
  (* The oracle has teeth: with verified clearing disabled, some sampled
     execution deviation must profit undetected. The first ten campaigns
     of master seed 42 are known to contain one. *)
  let graded =
    Campaign.run_batch ~weaken:Campaign.Weaken_settlement ~campaigns:10 ~seed:42 ()
  in
  let violations =
    List.filter (fun gr -> gr.Campaign.verdict = Campaign.Violation) graded
  in
  check Alcotest.bool "at least one violation" true (violations <> []);
  List.iter
    (fun gr ->
      check (Alcotest.option Alcotest.string) "profit kind" (Some "profit")
        gr.Campaign.violation_kind)
    violations;
  (* Shrinking preserves the violation and never grows the campaign. *)
  let gr = List.hd violations in
  let s = Campaign.shrink ~weaken:Campaign.Weaken_settlement gr in
  check Alcotest.bool "shrunk still violates" true
    (s.Campaign.verdict = Campaign.Violation);
  check Alcotest.bool "no more deviants than before" true
    (List.length s.Campaign.descr.Campaign.deviants
    <= List.length gr.Campaign.descr.Campaign.deviants);
  check Alcotest.bool "topology no larger" true
    (Campaign.topology_n s.Campaign.descr.Campaign.topology
    <= Campaign.topology_n gr.Campaign.descr.Campaign.topology)

let test_shrink_identity_on_non_violation () =
  let d = Campaign.of_seed 42 in
  let gr = Campaign.grade d in
  check Alcotest.bool "no violation at seed 42" true
    (gr.Campaign.verdict <> Campaign.Violation);
  check Alcotest.bool "shrink is identity" true (Campaign.shrink gr = gr)

let test_weaken_of_string_roundtrip () =
  List.iter
    (fun w ->
      check Alcotest.bool "round-trips" true
        (Campaign.weaken_of_string (Campaign.weaken_name w) = Some w))
    [
      Campaign.No_weaken;
      Campaign.Weaken_pricing;
      Campaign.Weaken_settlement;
      Campaign.Weaken_all;
    ];
  check Alcotest.bool "unknown rejected" true
    (Campaign.weaken_of_string "bogus" = None)

let test_campaign_seeds_distinct () =
  (* Fork-derived per-index seeds are pairwise distinct and independent
     of batch position. *)
  let seeds = List.init 50 (Campaign.campaign_seed ~master:42) in
  check Alcotest.int "distinct" 50 (List.length (List.sort_uniq compare seeds));
  check Alcotest.int "index stable" (Campaign.campaign_seed ~master:42 7)
    (List.nth seeds 7)

let suites =
  [
    ( "gauntlet.campaign",
      [
        Alcotest.test_case "of_seed deterministic" `Quick test_of_seed_deterministic;
        Alcotest.test_case "grade replays byte-identical" `Quick
          test_grade_replays_byte_identical;
        Alcotest.test_case "sampled campaigns well-formed" `Quick
          test_sampled_graphs_biconnected_and_scoped;
        Alcotest.test_case "stock batch: no violation" `Slow
          test_stock_batch_no_violation;
        Alcotest.test_case "weakened bank violates" `Slow test_weakened_bank_violates;
        Alcotest.test_case "shrink identity on non-violation" `Quick
          test_shrink_identity_on_non_violation;
        Alcotest.test_case "weaken_of_string round-trip" `Quick
          test_weaken_of_string_roundtrip;
        Alcotest.test_case "campaign seeds distinct" `Quick test_campaign_seeds_distinct;
      ] );
  ]

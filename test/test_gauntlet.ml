(* Tests for Damd_gauntlet.Campaign: seed-determinism of sampling and
   grading, Theorem 1 on small stock batches, the weakened-bank violation
   oracle, and the greedy shrinker's contract. *)

module Json = Damd_util.Json
module Adversary = Damd_faithful.Adversary
module Biconnect = Damd_graph.Biconnect
module Campaign = Damd_gauntlet.Campaign

let check = Alcotest.check

let test_of_seed_deterministic () =
  (* Sampling is a pure function of the seed — byte-identical descr. *)
  List.iter
    (fun seed ->
      check Alcotest.bool "same descr" true
        (Campaign.of_seed seed = Campaign.of_seed seed))
    [ 0; 1; 42; 123456789; max_int ]

let test_grade_replays_byte_identical () =
  (* The replay guarantee: grading twice yields byte-identical JSON. *)
  let d = Campaign.of_seed 42 in
  let j () = Json.to_string ~indent:2 (Campaign.json_of_graded (Campaign.grade d)) in
  check Alcotest.string "byte-identical replay" (j ()) (j ())

let test_sampled_graphs_biconnected_and_scoped () =
  (* Every sampled campaign: biconnected topology, 1..3 deviants seated
     in range, and no full-neighborhood coalition (every checker-caught
     deviant stays detectable under the topology-aware refinement). *)
  for i = 0 to 19 do
    let d = Campaign.of_seed (Campaign.campaign_seed ~master:7 i) in
    let g = Campaign.graph_of d in
    check Alcotest.bool "biconnected" true (Biconnect.is_biconnected g);
    let n = Damd_graph.Graph.n g in
    let k = List.length d.Campaign.deviants in
    check Alcotest.bool "1..3 deviants" true (k >= 1 && k <= 3);
    let profile = Array.make n Adversary.Faithful in
    List.iter
      (fun (i, dev) ->
        check Alcotest.bool "deviant in range" true (i >= 0 && i < n);
        profile.(i) <- dev)
      d.Campaign.deviants;
    List.iter
      (fun (i, dev) ->
        if Adversary.detectable dev then
          check Alcotest.bool "still detectable in profile" true
            (Adversary.detectable_in
               ~neighbors:(Damd_graph.Graph.neighbors g)
               ~profile i))
      d.Campaign.deviants
  done

let test_stock_batch_no_violation () =
  (* Theorem 1 on a small batch: the stock mechanism never lets a
     sampled deviation both escape and profit (or corrupt the tables). *)
  let graded = Campaign.run_batch ~campaigns:10 ~seed:42 () in
  check Alcotest.int "batch size" 10 (List.length graded);
  List.iter
    (fun gr ->
      check Alcotest.bool "no violation" true
        (gr.Campaign.verdict <> Campaign.Violation))
    graded

let test_weakened_bank_violates () =
  (* The oracle has teeth: with verified clearing disabled, some sampled
     execution deviation must profit undetected. The first ten campaigns
     of master seed 42 are known to contain one. *)
  let graded =
    Campaign.run_batch ~weaken:Campaign.Weaken_settlement ~campaigns:10 ~seed:42 ()
  in
  let violations =
    List.filter (fun gr -> gr.Campaign.verdict = Campaign.Violation) graded
  in
  check Alcotest.bool "at least one violation" true (violations <> []);
  List.iter
    (fun gr ->
      check (Alcotest.option Alcotest.string) "profit kind" (Some "profit")
        gr.Campaign.violation_kind)
    violations;
  (* Shrinking preserves the violation and never grows the campaign. *)
  let gr = List.hd violations in
  let s = Campaign.shrink ~weaken:Campaign.Weaken_settlement gr in
  check Alcotest.bool "shrunk still violates" true
    (s.Campaign.verdict = Campaign.Violation);
  check Alcotest.bool "no more deviants than before" true
    (List.length s.Campaign.descr.Campaign.deviants
    <= List.length gr.Campaign.descr.Campaign.deviants);
  check Alcotest.bool "topology no larger" true
    (Campaign.topology_n s.Campaign.descr.Campaign.topology
    <= Campaign.topology_n gr.Campaign.descr.Campaign.topology)

let test_shrink_identity_on_non_violation () =
  let d = Campaign.of_seed 42 in
  let gr = Campaign.grade d in
  check Alcotest.bool "no violation at seed 42" true
    (gr.Campaign.verdict <> Campaign.Violation);
  check Alcotest.bool "shrink is identity" true (Campaign.shrink gr = gr)

let test_weaken_of_string_roundtrip () =
  List.iter
    (fun w ->
      check Alcotest.bool "round-trips" true
        (Campaign.weaken_of_string (Campaign.weaken_name w) = Some w))
    [
      Campaign.No_weaken;
      Campaign.Weaken_pricing;
      Campaign.Weaken_settlement;
      Campaign.Weaken_all;
    ];
  check Alcotest.bool "unknown rejected" true
    (Campaign.weaken_of_string "bogus" = None)

let test_campaign_seeds_distinct () =
  (* Fork-derived per-index seeds are pairwise distinct and independent
     of batch position. *)
  let seeds = List.init 50 (Campaign.campaign_seed ~master:42) in
  check Alcotest.int "distinct" 50 (List.length (List.sort_uniq compare seeds));
  check Alcotest.int "index stable" (Campaign.campaign_seed ~master:42 7)
    (List.nth seeds 7)

(* --- Mixed-failure mode: faults, epsilon agents, blame correctness --- *)

module Fault = Damd_sim.Fault

let mixed = { Campaign.faults = true; epsilon = None }

let quiet_perturb =
  { Damd_faithful.Runner.jitter = 0.; dup_p = 0.; drop_p = 0.; drop_budget = 0; perturb_seed = 0 }

let test_mixed_of_seed_deterministic () =
  List.iter
    (fun seed ->
      let a = Campaign.of_seed ~mix:mixed seed in
      check Alcotest.bool "same descr" true (a = Campaign.of_seed ~mix:mixed seed);
      check Alcotest.bool "carries a fault schedule" true (a.Campaign.fault <> None);
      check Alcotest.bool "stock sampling unchanged by the mix draws" true
        ({ a with Campaign.fault = None } = Campaign.of_seed seed
        || a.Campaign.deviants <> (Campaign.of_seed seed).Campaign.deviants))
    [ 0; 1; 42; 123456789 ]

let test_mixed_grade_replays_byte_identical () =
  (* The replay guarantee extends to fault campaigns: the schedule is
     pure data under the seed, so grading twice is byte-identical. *)
  let d = Campaign.of_seed ~mix:mixed 42 in
  let j () =
    Json.to_string ~indent:2 (Campaign.json_of_graded (Campaign.grade d))
  in
  check Alcotest.string "byte-identical replay" (j ()) (j ())

let test_mixed_batch_no_false_accusation () =
  (* The acceptance gate: 100 seeded mixed-failure campaigns, zero
     violations — in particular zero "false-accusation" verdicts, i.e.
     no injected fault ever gets pinned on an honest node. *)
  let graded = Campaign.run_batch ~mix:mixed ~campaigns:100 ~seed:42 () in
  check Alcotest.int "batch size" 100 (List.length graded);
  List.iter
    (fun gr ->
      check Alcotest.bool "no violation under mixed failures" true
        (gr.Campaign.verdict <> Campaign.Violation))
    graded

let knob_descr ~seed fault =
  {
    Campaign.seed;
    topology = Campaign.Mesh (3, 3);
    graph_seed = seed;
    traffic_rate = 1.;
    deviants = [];
    perturb = { quiet_perturb with Damd_faithful.Runner.perturb_seed = seed };
    fault = Some fault;
  }

let check_knob_blameless fault_of_seed =
  List.iter
    (fun seed ->
      let gr = Campaign.grade (knob_descr ~seed (fault_of_seed seed)) in
      check Alcotest.bool "fault alone never a violation" true
        (gr.Campaign.verdict <> Campaign.Violation);
      List.iter
        (fun (_rule, culprit) ->
          check (Alcotest.option Alcotest.int) "no node accused" None culprit)
        gr.Campaign.detections)
    [ 1; 2; 3; 5; 8; 13 ]

let test_loss_knob_accuses_nobody () =
  check_knob_blameless (fun seed ->
      {
        Fault.seed;
        link = Some { Fault.loss_p = 0.05; reorder_p = 0.2; reorder_delay = 1.5 };
        partition = None;
        crash = None;
      })

let test_partition_knob_accuses_nobody () =
  check_knob_blameless (fun seed ->
      {
        Fault.seed;
        link = None;
        partition =
          Some
            {
              Fault.island = [ 0; 1; 3 ];
              part_phase = (if seed mod 2 = 0 then `Costs else `Routing);
              at = 0.5;
              heals_at = 3.0;
            };
        crash = None;
      })

let test_crash_knob_accuses_nobody () =
  check_knob_blameless (fun seed ->
      {
        Fault.seed;
        link = None;
        partition = None;
        crash =
          Some
            {
              Fault.node = seed mod 9;
              crash_phase = (if seed mod 2 = 0 then `Routing else `Pricing);
              at = 1.0;
              recovers_at = 3.0;
            };
      })

let test_epsilon_agents_inactive_on_stock () =
  (* Theorem 1 keeps every unilateral gain <= 0 on the stock bank, so an
     epsilon-rational wrapper (any positive threshold) never activates:
     the campaign grades exactly like an all-faithful run of itself. *)
  let mix = { Campaign.faults = false; epsilon = Some 0.05 } in
  List.iter
    (fun seed ->
      let gr = Campaign.grade (Campaign.of_seed ~mix seed) in
      check Alcotest.bool "has epsilon wrappers" true
        (gr.Campaign.epsilon_active <> []);
      List.iter
        (fun (_i, active) ->
          check Alcotest.bool "inactive on stock" false active)
        gr.Campaign.epsilon_active;
      check Alcotest.bool "no violation" true
        (gr.Campaign.verdict <> Campaign.Violation))
    [ 3; 12; 27 ]

(* Campaign 8 of master seed 42 (replay seed 585031616423906090) is the
   known settlement-weakening escape: three execution deviants profit
   once verified clearing is off. *)
let violating_seed = 585031616423906090

let test_weakened_violation_replays_and_shrinks () =
  let weaken = Campaign.Weaken_settlement in
  let gr = Campaign.grade ~weaken (Campaign.of_seed violating_seed) in
  check Alcotest.bool "violation found" true
    (gr.Campaign.verdict = Campaign.Violation);
  check (Alcotest.option Alcotest.string) "profit kind" (Some "profit")
    gr.Campaign.violation_kind;
  (* --replay byte-identity of the violating campaign *)
  let j () = Json.to_string ~indent:2 (Campaign.json_of_graded gr) in
  let j2 =
    Json.to_string ~indent:2
      (Campaign.json_of_graded
         (Campaign.grade ~weaken (Campaign.of_seed violating_seed)))
  in
  check Alcotest.string "replay byte-identical" (j ()) j2;
  (* shrinker soundness: the minimized campaign re-grades to the same
     verdict class from its descr alone *)
  let s = Campaign.shrink ~weaken gr in
  check Alcotest.bool "shrunk still violates" true
    (s.Campaign.verdict = Campaign.Violation);
  let regraded = Campaign.grade ~weaken s.Campaign.descr in
  check Alcotest.bool "shrunk descr reproduces the violation" true
    (regraded.Campaign.verdict = Campaign.Violation);
  check (Alcotest.option Alcotest.string) "same kind" gr.Campaign.violation_kind
    regraded.Campaign.violation_kind

let test_epsilon_agents_activate_on_weakened_bank () =
  (* Same campaign, deviants wrapped epsilon-rational: the weakened bank
     lets the inner deviations clear their gain threshold, so the
     wrappers activate and the violation reappears. *)
  let mix = { Campaign.faults = false; epsilon = Some 0.05 } in
  let gr =
    Campaign.grade ~weaken:Campaign.Weaken_settlement
      (Campaign.of_seed ~mix violating_seed)
  in
  check Alcotest.bool "violation with epsilon agents" true
    (gr.Campaign.verdict = Campaign.Violation);
  check Alcotest.bool "some wrapper activated" true
    (List.exists snd gr.Campaign.epsilon_active)

let suites =
  [
    ( "gauntlet.campaign",
      [
        Alcotest.test_case "of_seed deterministic" `Quick test_of_seed_deterministic;
        Alcotest.test_case "grade replays byte-identical" `Quick
          test_grade_replays_byte_identical;
        Alcotest.test_case "sampled campaigns well-formed" `Quick
          test_sampled_graphs_biconnected_and_scoped;
        Alcotest.test_case "stock batch: no violation" `Slow
          test_stock_batch_no_violation;
        Alcotest.test_case "weakened bank violates" `Slow test_weakened_bank_violates;
        Alcotest.test_case "shrink identity on non-violation" `Quick
          test_shrink_identity_on_non_violation;
        Alcotest.test_case "weaken_of_string round-trip" `Quick
          test_weaken_of_string_roundtrip;
        Alcotest.test_case "campaign seeds distinct" `Quick test_campaign_seeds_distinct;
      ] );
    ( "gauntlet.mixed",
      [
        Alcotest.test_case "mixed of_seed deterministic" `Quick
          test_mixed_of_seed_deterministic;
        Alcotest.test_case "mixed grade replays byte-identical" `Quick
          test_mixed_grade_replays_byte_identical;
        Alcotest.test_case "100 mixed campaigns: no false accusation" `Slow
          test_mixed_batch_no_false_accusation;
        Alcotest.test_case "loss knob accuses nobody" `Quick
          test_loss_knob_accuses_nobody;
        Alcotest.test_case "partition knob accuses nobody" `Quick
          test_partition_knob_accuses_nobody;
        Alcotest.test_case "crash knob accuses nobody" `Quick
          test_crash_knob_accuses_nobody;
        Alcotest.test_case "epsilon inactive on stock" `Quick
          test_epsilon_agents_inactive_on_stock;
        Alcotest.test_case "weakened violation replays and shrinks" `Slow
          test_weakened_violation_replays_and_shrinks;
        Alcotest.test_case "epsilon activates on weakened bank" `Slow
          test_epsilon_agents_activate_on_weakened_bank;
      ] );
  ]

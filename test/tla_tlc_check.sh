#!/usr/bin/env bash
# Cross-check the emitted TLA+ module with a real TLC run. Gated behind
# DAMD_TLC -- the command that runs TLC, e.g. "tlc" or
# "java -jar /path/to/tla2tools.jar". When unset the check is skipped,
# not failed, so the default test suite carries no Java dependency; the
# byte-for-byte golden diff still guards the emission either way.
set -euo pipefail

tla=$1
cfg=$2

if [ -z "${DAMD_TLC:-}" ]; then
  echo "DAMD_TLC not set; skipping the real TLC run (golden diff still applies)"
  exit 0
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
# TLC insists the file name match the module name.
cp "$tla" "$work/extended_fpss.tla"
cp "$cfg" "$work/extended_fpss.cfg"
cd "$work"
# -deadlock: stall instances wedge the phase barrier by design (that is
# the progress-timeout detection); the claims under check are the
# INVARIANT lines, not deadlock-freedom.
$DAMD_TLC -deadlock -config extended_fpss.cfg extended_fpss.tla
echo "TLC run passed"

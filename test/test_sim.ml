(* Tests for Damd_sim.Engine: delivery semantics, deterministic ordering,
   per-link FIFO, taps (drop / rewrite), timers, accounting, and repeated
   run-to-quiescence — the execution pattern the faithful protocol uses. *)

module Engine = Damd_sim.Engine

let check = Alcotest.check

let test_basic_delivery () =
  let e = Engine.create ~n:2 () in
  let got = ref [] in
  Engine.set_handler e 1 (fun ~sender msg -> got := (sender, msg) :: !got);
  Engine.send e ~src:0 ~dst:1 "hello";
  check Alcotest.bool "quiescent" true (Engine.run e = Engine.Quiescent);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "delivered" [ (0, "hello") ] !got

let test_time_advances_by_latency () =
  let e = Engine.create ~latency:(fun ~src:_ ~dst:_ -> 2.5) ~n:2 () in
  let at = ref 0. in
  Engine.set_handler e 1 (fun ~sender:_ _ -> at := Engine.now e);
  Engine.send e ~src:0 ~dst:1 ();
  ignore (Engine.run e);
  Alcotest.check (Alcotest.float 1e-9) "latency" 2.5 !at

let test_fifo_per_link () =
  let e = Engine.create ~n:2 () in
  let got = ref [] in
  Engine.set_handler e 1 (fun ~sender:_ msg -> got := msg :: !got);
  List.iter (fun m -> Engine.send e ~src:0 ~dst:1 m) [ 1; 2; 3; 4; 5 ];
  ignore (Engine.run e);
  check (Alcotest.list Alcotest.int) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_cascading_sends () =
  (* A ring relay: 0 -> 1 -> 2 -> 0 decrementing a hop counter. *)
  let e = Engine.create ~n:3 () in
  let hops = ref 0 in
  for i = 0 to 2 do
    Engine.set_handler e i (fun ~sender:_ ttl ->
        incr hops;
        if ttl > 0 then Engine.send e ~src:i ~dst:((i + 1) mod 3) (ttl - 1))
  done;
  Engine.send e ~src:0 ~dst:1 9;
  ignore (Engine.run e);
  check Alcotest.int "10 deliveries" 10 !hops

let test_event_limit () =
  (* Two nodes ping-pong forever; the event limit must stop it. *)
  let e = Engine.create ~n:2 () in
  Engine.set_handler e 0 (fun ~sender:_ () -> Engine.send e ~src:0 ~dst:1 ());
  Engine.set_handler e 1 (fun ~sender:_ () -> Engine.send e ~src:1 ~dst:0 ());
  Engine.send e ~src:0 ~dst:1 ();
  check Alcotest.bool "limited" true (Engine.run ~max_events:100 e = Engine.Event_limit)

let test_no_handler_discards () =
  let e = Engine.create ~n:2 () in
  Engine.send e ~src:0 ~dst:1 "lost";
  check Alcotest.bool "quiescent" true (Engine.run e = Engine.Quiescent);
  check Alcotest.int "still counted" 1 (Engine.messages_delivered e)

let test_tap_drop () =
  let e = Engine.create ~n:2 () in
  let got = ref 0 in
  Engine.set_handler e 1 (fun ~sender:_ _ -> incr got);
  Engine.set_tap e (fun ~src:_ ~dst:_ msg -> if msg = "drop" then None else Some msg);
  Engine.send e ~src:0 ~dst:1 "drop";
  Engine.send e ~src:0 ~dst:1 "keep";
  ignore (Engine.run e);
  check Alcotest.int "one delivered" 1 !got;
  check Alcotest.int "one dropped" 1 (Engine.messages_dropped e);
  check Alcotest.int "one sent" 1 (Engine.messages_sent e)

let test_tap_rewrite_and_clear () =
  let e = Engine.create ~n:2 () in
  let got = ref [] in
  Engine.set_handler e 1 (fun ~sender:_ msg -> got := msg :: !got);
  Engine.set_tap e (fun ~src:_ ~dst:_ msg -> Some (msg ^ "!"));
  Engine.send e ~src:0 ~dst:1 "a";
  Engine.clear_tap e;
  Engine.send e ~src:0 ~dst:1 "b";
  ignore (Engine.run e);
  check (Alcotest.list Alcotest.string) "rewrite then clean" [ "a!"; "b" ] (List.rev !got)

let test_timers_interleave () =
  let e = Engine.create ~n:1 () in
  let order = ref [] in
  Engine.set_handler e 0 (fun ~sender:_ tag -> order := tag :: !order);
  Engine.schedule e ~delay:0.5 (fun () -> order := "timer-early" :: !order);
  Engine.send e ~src:0 ~dst:0 "msg-at-1";
  Engine.schedule e ~delay:2.0 (fun () -> order := "timer-late" :: !order);
  ignore (Engine.run e);
  check (Alcotest.list Alcotest.string) "time order"
    [ "timer-early"; "msg-at-1"; "timer-late" ]
    (List.rev !order)

let test_negative_delay_rejected () =
  let e = Engine.create ~n:1 () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.) (fun () -> ()))

let test_out_of_range_send_rejected () =
  let e : unit Engine.t = Engine.create ~n:2 () in
  Alcotest.check_raises "bad dst" (Invalid_argument "Engine.send: node out of range")
    (fun () -> Engine.send e ~src:0 ~dst:7 ())

let test_stats_accounting () =
  let e = Engine.create ~n:3 () in
  Engine.set_size e String.length;
  Engine.set_handler e 1 (fun ~sender:_ _ -> ());
  Engine.set_handler e 2 (fun ~sender:_ _ -> ());
  Engine.send e ~src:0 ~dst:1 "four";
  Engine.send e ~src:0 ~dst:2 "sixsix";
  Engine.send e ~src:1 ~dst:2 "a";
  ignore (Engine.run e);
  check Alcotest.int "sent" 3 (Engine.messages_sent e);
  check Alcotest.int "delivered" 3 (Engine.messages_delivered e);
  check Alcotest.int "bytes" 11 (Engine.bytes_sent e);
  check Alcotest.int "sent by 0" 2 (Engine.sent_by e 0);
  check Alcotest.int "received by 2" 2 (Engine.received_by e 2);
  Engine.reset_stats e;
  check Alcotest.int "reset" 0 (Engine.messages_sent e)

let test_rerun_after_quiescence () =
  (* The faithful protocol's pattern: run to quiescence, act (bank
     checkpoint), inject new messages, run again. Time must persist. *)
  let e = Engine.create ~n:2 () in
  let log = ref [] in
  Engine.set_handler e 1 (fun ~sender:_ msg -> log := (Engine.now e, msg) :: !log);
  Engine.send e ~src:0 ~dst:1 "phase1";
  check Alcotest.bool "first run" true (Engine.run e = Engine.Quiescent);
  Engine.send e ~src:0 ~dst:1 "phase2";
  check Alcotest.bool "second run" true (Engine.run e = Engine.Quiescent);
  match List.rev !log with
  | [ (t1, "phase1"); (t2, "phase2") ] ->
      check Alcotest.bool "time persists" true (t2 > t1)
  | _ -> Alcotest.fail "unexpected log"

let test_deterministic_replay () =
  (* Two identical runs produce identical delivery traces. *)
  let trace () =
    let e = Engine.create ~n:4 () in
    let log = ref [] in
    for i = 0 to 3 do
      Engine.set_handler e i (fun ~sender msg ->
          log := (i, sender, msg) :: !log;
          if msg > 0 then Engine.send e ~src:i ~dst:((i + msg) mod 4) (msg - 1))
    done;
    Engine.send e ~src:0 ~dst:1 5;
    Engine.send e ~src:0 ~dst:2 5;
    ignore (Engine.run e);
    List.rev !log
  in
  check Alcotest.bool "identical traces" true (trace () = trace ())

let test_self_send () =
  let e = Engine.create ~n:1 () in
  let got = ref false in
  Engine.set_handler e 0 (fun ~sender msg ->
      got := sender = 0 && msg = "self");
  Engine.send e ~src:0 ~dst:0 "self";
  ignore (Engine.run e);
  check Alcotest.bool "self delivered" true !got

let test_heterogeneous_latency_ordering () =
  (* A slower link's message arrives after a faster link's later send. *)
  let latency ~src ~dst:_ = if src = 0 then 5.0 else 1.0 in
  let e = Engine.create ~latency ~n:3 () in
  let got = ref [] in
  Engine.set_handler e 2 (fun ~sender msg -> got := (sender, msg) :: !got);
  Engine.send e ~src:0 ~dst:2 "slow";
  Engine.send e ~src:1 ~dst:2 "fast";
  ignore (Engine.run e);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "fast first"
    [ (1, "fast"); (0, "slow") ]
    (List.rev !got)

let test_fifo_preserved_per_link_with_heterogeneous_latency () =
  let latency ~src ~dst:_ = if src = 0 then 3.0 else 1.0 in
  let e = Engine.create ~latency ~n:2 () in
  let got = ref [] in
  Engine.set_handler e 1 (fun ~sender:_ msg -> got := msg :: !got);
  List.iter (fun m -> Engine.send e ~src:0 ~dst:1 m) [ 1; 2; 3 ];
  ignore (Engine.run e);
  check (Alcotest.list Alcotest.int) "per-link fifo" [ 1; 2; 3 ] (List.rev !got)

let test_default_size_is_one_byte () =
  let e = Engine.create ~n:2 () in
  Engine.send e ~src:0 ~dst:1 "whatever";
  check Alcotest.int "one byte" 1 (Engine.bytes_sent e)

let test_run_on_empty_engine () =
  let e : unit Engine.t = Engine.create ~n:0 () in
  check Alcotest.bool "empty quiescent" true (Engine.run e = Engine.Quiescent)

let test_tap_sees_original_sender_and_dst () =
  let e = Engine.create ~n:3 () in
  let observed = ref [] in
  Engine.set_tap e (fun ~src ~dst msg ->
      observed := (src, dst) :: !observed;
      Some msg);
  Engine.send e ~src:1 ~dst:2 ();
  Engine.send e ~src:0 ~dst:1 ();
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "tap observations" [ (1, 2); (0, 1) ]
    (List.rev !observed)

let test_timer_can_send () =
  let e = Engine.create ~n:2 () in
  let got = ref false in
  Engine.set_handler e 1 (fun ~sender:_ () -> got := true);
  Engine.schedule e ~delay:2. (fun () -> Engine.send e ~src:0 ~dst:1 ());
  ignore (Engine.run e);
  check Alcotest.bool "timer-driven send delivered" true !got

let test_equal_time_cross_link_order () =
  (* Three messages on distinct links all arrive at t=1.0; the sequence
     number assigned at enqueue time must break the tie, so delivery
     follows send order — the guarantee gauntlet replay rests on. *)
  let e = Engine.create ~n:4 () in
  let got = ref [] in
  Engine.set_handler e 3 (fun ~sender msg -> got := (sender, msg) :: !got);
  Engine.send e ~src:2 ~dst:3 "c";
  Engine.send e ~src:0 ~dst:3 "a";
  Engine.send e ~src:1 ~dst:3 "b";
  ignore (Engine.run e);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "enqueue order at equal timestamps"
    [ (2, "c"); (0, "a"); (1, "b") ]
    (List.rev !got)

let test_identical_traces_with_timers_and_ties () =
  (* Interleaved cascading sends and a timer, with many equal timestamps
     (every link has latency 1): two independent engines must produce
     identical (time, node, sender, msg) traces and identical processed
     event counts. *)
  let trace () =
    let e = Engine.create ~n:3 () in
    let log = ref [] in
    for i = 0 to 2 do
      Engine.set_handler e i (fun ~sender msg ->
          log := (Engine.now e, i, sender, msg) :: !log;
          if msg > 0 then begin
            Engine.send e ~src:i ~dst:((i + 1) mod 3) (msg - 1);
            Engine.send e ~src:i ~dst:((i + 2) mod 3) (msg - 1)
          end)
    done;
    Engine.schedule e ~delay:1. (fun () ->
        log := (Engine.now e, -1, -1, 99) :: !log);
    Engine.send e ~src:0 ~dst:1 3;
    Engine.send e ~src:0 ~dst:2 3;
    ignore (Engine.run e);
    let p1 = Engine.events_processed e in
    (* Warm-start epoch: [reset_stats] zeroes [events_processed] too, so
       replaying the same sends gives the same per-phase schedule-length
       fingerprint (minus the timer, which is not rescheduled) instead of
       a cumulative count mixing epochs. *)
    Engine.reset_stats e;
    Engine.send e ~src:0 ~dst:1 3;
    Engine.send e ~src:0 ~dst:2 3;
    ignore (Engine.run e);
    check Alcotest.int "warm-start epoch fingerprint" (p1 - 1)
      (Engine.events_processed e);
    (List.rev !log, p1)
  in
  check Alcotest.bool "identical traces and event counts" true
    (trace () = trace ())

let test_dropped_excluded_from_byte_accounting () =
  (* A tap-dropped message must not count toward sent/bytes/sent_by —
     only toward messages_dropped. *)
  let e = Engine.create ~n:2 () in
  Engine.set_size e String.length;
  Engine.set_handler e 1 (fun ~sender:_ _ -> ());
  Engine.set_tap e (fun ~src:_ ~dst:_ msg ->
      if String.length msg > 4 then None else Some msg);
  Engine.send e ~src:0 ~dst:1 "tiny";
  Engine.send e ~src:0 ~dst:1 "dropped!";
  ignore (Engine.run e);
  check Alcotest.int "bytes exclude dropped" 4 (Engine.bytes_sent e);
  check Alcotest.int "sent excludes dropped" 1 (Engine.messages_sent e);
  check Alcotest.int "sent_by excludes dropped" 1 (Engine.sent_by e 0);
  check Alcotest.int "dropped counted" 1 (Engine.messages_dropped e)

let test_reset_stats_keeps_clock_and_processed () =
  (* reset_stats zeroes every counter — including [events_processed],
     which it used to miss, silently mixing epochs across warm-start
     runs — but must not rewind simulated time. *)
  let e = Engine.create ~n:2 () in
  Engine.set_handler e 1 (fun ~sender:_ _ -> ());
  Engine.send e ~src:0 ~dst:1 ();
  ignore (Engine.run e);
  let t1 = Engine.now e in
  check Alcotest.int "one event in epoch 1" 1 (Engine.events_processed e);
  Engine.reset_stats e;
  check Alcotest.int "counters reset" 0 (Engine.messages_sent e);
  check (Alcotest.float 1e-9) "clock untouched" t1 (Engine.now e);
  check Alcotest.int "processed reset with the other counters" 0
    (Engine.events_processed e);
  Engine.send e ~src:0 ~dst:1 ();
  Engine.send e ~src:0 ~dst:1 ();
  ignore (Engine.run e);
  check Alcotest.bool "clock monotone after reset" true (Engine.now e > t1);
  check Alcotest.int "epoch 2 counts only its own events" 2
    (Engine.events_processed e)

let test_event_limit_vs_quiescent_boundary () =
  (* The queue is consulted before the budget: a run that drains on
     exactly its last allowed event is Quiescent (the old budget-first
     check misreported this boundary as Event_limit). Event_limit now
     means events genuinely remain pending, and they stay queued so the
     run resumes. *)
  let fresh () =
    let e = Engine.create ~n:2 () in
    Engine.set_handler e 1 (fun ~sender:_ _ -> ());
    for _ = 1 to 5 do
      Engine.send e ~src:0 ~dst:1 ()
    done;
    e
  in
  let e = fresh () in
  check Alcotest.bool "budget above count quiesces" true
    (Engine.run ~max_events:6 e = Engine.Quiescent);
  let e = fresh () in
  check Alcotest.bool "exact budget quiesces" true
    (Engine.run ~max_events:5 e = Engine.Quiescent);
  check Alcotest.int "all events processed" 5 (Engine.events_processed e);
  let e = fresh () in
  check Alcotest.bool "short budget limits" true
    (Engine.run ~max_events:4 e = Engine.Event_limit);
  check Alcotest.int "only budgeted events processed" 4 (Engine.events_processed e);
  check Alcotest.bool "resumes to quiescence" true
    (Engine.run e = Engine.Quiescent);
  check Alcotest.int "resumed run delivers the remainder" 5
    (Engine.events_processed e)

let test_out_of_range_set_handler_rejected () =
  let e : unit Engine.t = Engine.create ~n:2 () in
  Alcotest.check_raises "bad handler index"
    (Invalid_argument "Engine.set_handler: node out of range") (fun () ->
      Engine.set_handler e 2 (fun ~sender:_ () -> ()));
  Alcotest.check_raises "negative handler index"
    (Invalid_argument "Engine.set_handler: node out of range") (fun () ->
      Engine.set_handler e (-1) (fun ~sender:_ () -> ()))

let test_out_of_range_src_rejected () =
  let e : unit Engine.t = Engine.create ~n:2 () in
  Alcotest.check_raises "bad src" (Invalid_argument "Engine.send: node out of range")
    (fun () -> Engine.send e ~src:(-1) ~dst:1 ())

(* --- fault injection: shaper, down nodes, seeded schedules --- *)

module Fault = Damd_sim.Fault

let test_shaper_lose_delay_and_clear () =
  let e = Engine.create ~n:3 () in
  let got = ref [] in
  for i = 1 to 2 do
    Engine.set_handler e i (fun ~sender:_ msg -> got := (i, msg) :: !got)
  done;
  Engine.set_shaper e (fun ~src:_ ~dst ~now:_ msg ->
      if dst = 1 && msg = "lose" then Engine.Lose
      else if msg = "slow" then Engine.Delay 5.
      else Engine.Pass);
  Engine.send e ~src:0 ~dst:1 "lose";
  Engine.send e ~src:0 ~dst:2 "slow";
  (* same link, sent after "slow", but undelayed: overtakes it *)
  Engine.send e ~src:0 ~dst:2 "fast";
  ignore (Engine.run e);
  check Alcotest.int "shaper Lose counted" 1 (Engine.messages_lost e);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "Delay reorders within the link"
    [ (2, "fast"); (2, "slow") ]
    (List.rev !got);
  Engine.clear_shaper e;
  Engine.send e ~src:0 ~dst:1 "lose";
  ignore (Engine.run e);
  check Alcotest.bool "clear_shaper restores delivery" true
    (List.mem (1, "lose") !got)

let test_down_node_loses_both_directions () =
  let e = Engine.create ~n:2 () in
  let got = ref 0 in
  Engine.set_handler e 0 (fun ~sender:_ () -> incr got);
  Engine.set_handler e 1 (fun ~sender:_ () -> incr got);
  Engine.set_down e 1 true;
  check Alcotest.bool "is_down" true (Engine.is_down e 1);
  Engine.send e ~src:0 ~dst:1 ();
  Engine.send e ~src:1 ~dst:0 ();
  ignore (Engine.run e);
  check Alcotest.int "lost at send and at delivery" 2 (Engine.messages_lost e);
  check Alcotest.int "nothing delivered" 0 !got;
  Engine.all_up e;
  check Alcotest.bool "all_up revives" false (Engine.is_down e 1);
  Engine.send e ~src:0 ~dst:1 ();
  ignore (Engine.run e);
  check Alcotest.int "delivery restored" 1 !got

let test_fault_loss_deterministic () =
  let run_once () =
    let e = Engine.create ~n:4 () in
    let log = ref [] in
    for i = 0 to 3 do
      Engine.set_handler e i (fun ~sender msg ->
          log := (i, sender, msg) :: !log;
          if msg > 0 then Engine.send e ~src:i ~dst:((i + 1) mod 4) (msg - 1))
    done;
    let spec =
      {
        Fault.seed = 77;
        link = Some { Fault.loss_p = 0.3; reorder_p = 0.3; reorder_delay = 2.5 };
        partition = None;
        crash = None;
      }
    in
    ignore (Fault.install e spec);
    Engine.send e ~src:0 ~dst:1 30;
    Engine.send e ~src:2 ~dst:3 30;
    ignore (Engine.run e);
    (List.rev !log, Engine.messages_lost e, Engine.events_processed e)
  in
  let a = run_once () in
  let b = run_once () in
  check Alcotest.bool "same seed, bit-identical trace" true (a = b);
  let _, lost, _ = a in
  check Alcotest.bool "losses actually occurred" true (lost > 0)

let test_fault_crash_window_and_arm_once () =
  let e = Engine.create ~n:2 () in
  let delivered = ref [] in
  Engine.set_handler e 0 (fun ~sender:_ _ -> ());
  Engine.set_handler e 1 (fun ~sender:_ msg -> delivered := msg :: !delivered);
  let spec =
    {
      Fault.seed = 1;
      link = None;
      partition = None;
      crash =
        Some { Fault.node = 1; crash_phase = `Routing; at = 2.; recovers_at = 5. };
    }
  in
  let ctl = Fault.install e spec in
  (* anchored to `Routing: arming `Costs does nothing *)
  Fault.arm e ctl ~phase:`Costs;
  Engine.send e ~src:0 ~dst:1 "costs-phase";
  ignore (Engine.run e);
  check Alcotest.bool "not down before its phase" false (Engine.is_down e 1);
  let crashed = ref (-1.) in
  let recovered = ref (-1.) in
  let t0 = Engine.now e in
  Fault.arm e ctl ~phase:`Routing
    ~on_crash:(fun i ->
      check Alcotest.int "crash callback node" 1 i;
      crashed := Engine.now e)
    ~on_recover:(fun _ -> recovered := Engine.now e);
  (* lands at t0+4, inside the down window [t0+2, t0+5) *)
  Engine.schedule e ~delay:3. (fun () -> Engine.send e ~src:0 ~dst:1 "mid");
  Engine.schedule e ~delay:6. (fun () -> Engine.send e ~src:0 ~dst:1 "after");
  ignore (Engine.run e);
  check (Alcotest.float 1e-9) "crash offset from phase start" (t0 +. 2.) !crashed;
  check (Alcotest.float 1e-9) "recover offset" (t0 +. 5.) !recovered;
  check Alcotest.bool "in-window message lost" true
    (not (List.mem "mid" !delivered));
  check Alcotest.bool "post-recovery message delivered" true
    (List.mem "after" !delivered);
  (* re-arming the same phase (a restart) must not re-inject *)
  Fault.arm e ctl ~phase:`Routing ~on_crash:(fun _ ->
      Alcotest.fail "crash re-armed on restart");
  ignore (Engine.run e)

let test_fault_partition_window_and_heal () =
  let e = Engine.create ~n:4 () in
  let got = ref [] in
  for i = 0 to 3 do
    Engine.set_handler e i (fun ~sender:_ msg -> got := msg :: !got)
  done;
  let spec =
    {
      Fault.seed = 3;
      link = None;
      partition =
        Some { Fault.island = [ 0; 1 ]; part_phase = `Costs; at = 0.; heals_at = 4. };
      crash = None;
    }
  in
  let ctl = Fault.install e spec in
  Fault.arm e ctl ~phase:`Costs;
  Engine.send e ~src:0 ~dst:2 "cross-early";
  Engine.send e ~src:0 ~dst:1 "intra-island";
  Engine.send e ~src:2 ~dst:3 "outside-island";
  Engine.schedule e ~delay:5. (fun () -> Engine.send e ~src:0 ~dst:2 "cross-late");
  ignore (Engine.run e);
  check Alcotest.bool "cut message lost in window" true
    (not (List.mem "cross-early" !got));
  check Alcotest.bool "intra-island passes" true (List.mem "intra-island" !got);
  check Alcotest.bool "outside-island passes" true
    (List.mem "outside-island" !got);
  check Alcotest.bool "link heals" true (List.mem "cross-late" !got);
  check Alcotest.int "exactly the cut message lost" 1 (Engine.messages_lost e)

let test_fault_deactivate_stops_injection () =
  let e = Engine.create ~n:2 () in
  let got = ref 0 in
  Engine.set_handler e 1 (fun ~sender:_ () -> incr got);
  let spec =
    {
      Fault.seed = 5;
      link = Some { Fault.loss_p = 1.; reorder_p = 0.; reorder_delay = 0. };
      partition = None;
      crash = None;
    }
  in
  let ctl = Fault.install e spec in
  Engine.send e ~src:0 ~dst:1 ();
  ignore (Engine.run e);
  check Alcotest.int "total loss while active" 0 !got;
  check Alcotest.bool "active" true (Fault.active ctl);
  Fault.deactivate e ctl;
  Engine.send e ~src:0 ~dst:1 ();
  ignore (Engine.run e);
  check Alcotest.int "delivery restored after deactivate" 1 !got;
  check Alcotest.bool "inactive" false (Fault.active ctl)

let test_fault_validate_rejects_malformed () =
  let e : unit Engine.t = Engine.create ~n:3 () in
  let bad l p c = { Fault.seed = 0; link = l; partition = p; crash = c } in
  List.iter
    (fun spec ->
      check Alcotest.bool "malformed spec rejected" true
        (match Fault.install e spec with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [
      bad (Some { Fault.loss_p = 1.5; reorder_p = 0.; reorder_delay = 0. }) None None;
      bad (Some { Fault.loss_p = 0.1; reorder_p = -0.1; reorder_delay = 0. }) None
        None;
      bad None
        (Some { Fault.island = [ 3 ]; part_phase = `Costs; at = 0.; heals_at = 1. })
        None;
      bad None
        (Some { Fault.island = [ 0 ]; part_phase = `Costs; at = 2.; heals_at = 1. })
        None;
      bad None None
        (Some { Fault.node = -1; crash_phase = `Costs; at = 0.; recovers_at = 1. });
      bad None None
        (Some { Fault.node = 0; crash_phase = `Costs; at = 3.; recovers_at = 1. });
    ]

(* --- obs-layer counter semantics under faults --- *)

module Obs = Damd_obs.Obs
module Metrics = Damd_obs.Metrics

let test_obs_kind_counters_under_faults () =
  (* The three loss classes must stay distinguishable — tap-dropped
     (adversarial), shaper-lost (environment), crashed src/dst — each
     classified per message kind for the obs layer. *)
  let e = Engine.create ~n:4 () in
  Engine.set_obs e (Obs.memory ()) ~kinds:[| "a"; "b" |] ~kind_of:(fun m -> m);
  for i = 0 to 3 do
    Engine.set_handler e i (fun ~sender:_ _ -> ())
  done;
  Engine.set_tap e (fun ~src:_ ~dst msg -> if dst = 2 then None else Some msg);
  Engine.set_shaper e (fun ~src:_ ~dst ~now:_ msg ->
      if dst = 1 && msg = 1 then Engine.Lose else Engine.Pass);
  Engine.set_down e 3 true;
  Engine.send e ~src:0 ~dst:1 0 (* delivered, kind a *);
  Engine.send e ~src:0 ~dst:1 1 (* shaper-lost, kind b *);
  Engine.send e ~src:0 ~dst:2 0 (* tap-dropped, kind a *);
  Engine.send e ~src:0 ~dst:3 1 (* lost at delivery: crashed dst, kind b *);
  Engine.send e ~src:3 ~dst:1 0 (* lost at send: crashed src, kind a *);
  ignore (Engine.run e);
  check Alcotest.int "sent excludes tap-dropped" 4 (Engine.messages_sent e);
  check Alcotest.int "delivered" 1 (Engine.messages_delivered e);
  check Alcotest.int "dropped = tap only" 1 (Engine.messages_dropped e);
  check Alcotest.int "lost = shaper + down-dst + down-src" 3
    (Engine.messages_lost e);
  check Alcotest.int "shaper losses" 1 (Engine.shaper_losses e);
  check Alcotest.int "shaper delays" 0 (Engine.shaper_delays e);
  check Alcotest.bool "queue peak positive" true (Engine.queue_peak e > 0);
  check Alcotest.bool "per-kind counters" true
    (Engine.kind_stats e = [ ("a", 2, 1, 1, 1); ("b", 2, 0, 0, 2) ])

let test_obs_kind_classified_after_rewrite () =
  (* A tap rewrite changes what goes onto the wire: sent/delivered count
     the rewritten kind, while a tap *drop* is attributed to the
     original message's kind (nothing else ever existed). *)
  let e = Engine.create ~n:2 () in
  Engine.set_obs e (Obs.memory ()) ~kinds:[| "a"; "b" |] ~kind_of:(fun m -> m);
  Engine.set_handler e 1 (fun ~sender:_ _ -> ());
  Engine.set_tap e (fun ~src:_ ~dst:_ _ -> Some 1);
  Engine.send e ~src:0 ~dst:1 0;
  ignore (Engine.run e);
  check Alcotest.bool "rewritten kind counted" true
    (Engine.kind_stats e = [ ("a", 0, 0, 0, 0); ("b", 1, 1, 0, 0) ])

let test_reset_stats_zeroes_obs_counters () =
  (* Regression guard for the PR-5 events_processed bug class: every
     counter the obs layer snapshots must be zeroed by reset_stats —
     shaper decisions, queue peak and the per-kind arrays included. *)
  let e = Engine.create ~n:4 () in
  Engine.set_obs e (Obs.memory ()) ~kinds:[| "a"; "b" |] ~kind_of:(fun m -> m);
  for i = 0 to 3 do
    Engine.set_handler e i (fun ~sender:_ _ -> ())
  done;
  Engine.set_shaper e (fun ~src:_ ~dst:_ ~now:_ msg ->
      if msg = 1 then Engine.Lose else Engine.Delay 0.5);
  Engine.send e ~src:0 ~dst:1 0;
  Engine.send e ~src:0 ~dst:1 1;
  ignore (Engine.run e);
  check Alcotest.bool "counters moved" true
    (Engine.messages_sent e > 0 && Engine.shaper_losses e > 0
    && Engine.shaper_delays e > 0 && Engine.queue_peak e > 0);
  Engine.reset_stats e;
  check Alcotest.int "sent" 0 (Engine.messages_sent e);
  check Alcotest.int "delivered" 0 (Engine.messages_delivered e);
  check Alcotest.int "dropped" 0 (Engine.messages_dropped e);
  check Alcotest.int "lost" 0 (Engine.messages_lost e);
  check Alcotest.int "bytes" 0 (Engine.bytes_sent e);
  check Alcotest.int "events processed" 0 (Engine.events_processed e);
  check Alcotest.int "shaper losses" 0 (Engine.shaper_losses e);
  check Alcotest.int "shaper delays" 0 (Engine.shaper_delays e);
  check Alcotest.int "queue peak" 0 (Engine.queue_peak e);
  check Alcotest.bool "per-kind zeroed" true
    (Engine.kind_stats e = [ ("a", 0, 0, 0, 0); ("b", 0, 0, 0, 0) ])

let test_obs_metrics_snapshot () =
  let e = Engine.create ~n:2 () in
  Engine.set_obs e (Obs.memory ()) ~kinds:[| "a" |] ~kind_of:(fun _ -> 0);
  Engine.set_handler e 1 (fun ~sender:_ _ -> ());
  Engine.send e ~src:0 ~dst:1 ();
  ignore (Engine.run e);
  let reg = Metrics.create () in
  Engine.obs_metrics ~prefix:"epoch" e reg;
  let counter name = Metrics.counter_value (Metrics.counter reg name) in
  check Alcotest.int "prefixed sent" 1 (counter "epoch.messages_sent");
  check Alcotest.int "prefixed per-kind" 1 (counter "epoch.delivered.a")

let suites =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
        Alcotest.test_case "latency" `Quick test_time_advances_by_latency;
        Alcotest.test_case "fifo per link" `Quick test_fifo_per_link;
        Alcotest.test_case "cascading sends" `Quick test_cascading_sends;
        Alcotest.test_case "event limit" `Quick test_event_limit;
        Alcotest.test_case "no handler discards" `Quick test_no_handler_discards;
        Alcotest.test_case "tap drop" `Quick test_tap_drop;
        Alcotest.test_case "tap rewrite and clear" `Quick test_tap_rewrite_and_clear;
        Alcotest.test_case "timers interleave" `Quick test_timers_interleave;
        Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
        Alcotest.test_case "out of range rejected" `Quick test_out_of_range_send_rejected;
        Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
        Alcotest.test_case "rerun after quiescence" `Quick test_rerun_after_quiescence;
        Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
        Alcotest.test_case "self send" `Quick test_self_send;
        Alcotest.test_case "heterogeneous latency ordering" `Quick
          test_heterogeneous_latency_ordering;
        Alcotest.test_case "fifo with heterogeneous latency" `Quick
          test_fifo_preserved_per_link_with_heterogeneous_latency;
        Alcotest.test_case "default size" `Quick test_default_size_is_one_byte;
        Alcotest.test_case "empty engine" `Quick test_run_on_empty_engine;
        Alcotest.test_case "tap observes endpoints" `Quick
          test_tap_sees_original_sender_and_dst;
        Alcotest.test_case "timer can send" `Quick test_timer_can_send;
        Alcotest.test_case "equal-time cross-link order" `Quick
          test_equal_time_cross_link_order;
        Alcotest.test_case "identical traces with ties" `Quick
          test_identical_traces_with_timers_and_ties;
        Alcotest.test_case "dropped excluded from bytes" `Quick
          test_dropped_excluded_from_byte_accounting;
        Alcotest.test_case "reset_stats keeps clock" `Quick
          test_reset_stats_keeps_clock_and_processed;
        Alcotest.test_case "event limit boundary" `Quick
          test_event_limit_vs_quiescent_boundary;
        Alcotest.test_case "out of range set_handler" `Quick
          test_out_of_range_set_handler_rejected;
        Alcotest.test_case "out of range src" `Quick
          test_out_of_range_src_rejected;
        Alcotest.test_case "shaper lose/delay/clear" `Quick
          test_shaper_lose_delay_and_clear;
        Alcotest.test_case "down node loses both ways" `Quick
          test_down_node_loses_both_directions;
        Alcotest.test_case "obs kind counters under faults" `Quick
          test_obs_kind_counters_under_faults;
        Alcotest.test_case "obs kind follows tap rewrite" `Quick
          test_obs_kind_classified_after_rewrite;
        Alcotest.test_case "reset_stats zeroes obs counters" `Quick
          test_reset_stats_zeroes_obs_counters;
        Alcotest.test_case "obs_metrics snapshot prefixing" `Quick
          test_obs_metrics_snapshot;
      ] );
    ( "sim.fault",
      [
        Alcotest.test_case "seeded loss deterministic" `Quick
          test_fault_loss_deterministic;
        Alcotest.test_case "crash window arms once" `Quick
          test_fault_crash_window_and_arm_once;
        Alcotest.test_case "partition window heals" `Quick
          test_fault_partition_window_and_heal;
        Alcotest.test_case "deactivate ends injection" `Quick
          test_fault_deactivate_stops_injection;
        Alcotest.test_case "validate rejects malformed" `Quick
          test_fault_validate_rejects_malformed;
      ] );
  ]

(* Tests for Damd_fpss: hand-checked VCG prices on the paper's Figure 1,
   Example 1 reproduced under both pricing schemes, FPSS strategyproofness
   (and the naive baseline's manipulability), execution-phase accounting,
   and the distributed computation's exact agreement with the centralized
   mechanism. *)

module Rng = Damd_util.Rng
module Graph = Damd_graph.Graph
module Dijkstra = Damd_graph.Dijkstra
module Gen = Damd_graph.Gen
module Mechanism = Damd_mech.Mechanism
module Strategyproof = Damd_mech.Strategyproof
module Pricing = Damd_fpss.Pricing
module Naive = Damd_fpss.Naive
module Tables = Damd_fpss.Tables
module Traffic = Damd_fpss.Traffic
module Game = Damd_fpss.Game
module Distributed = Damd_fpss.Distributed

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

let fig1 = lazy (Gen.figure1 ())
let node name = List.assoc name (snd (Lazy.force fig1))
let fig1_tables = lazy (Pricing.compute (fst (Lazy.force fig1)))

(* --- VCG prices on Figure 1, by hand ---
   d(X,Z) = 2 via X-D-C-Z.
   p^C_XZ = c_C + d(-C)(X,Z) - d(X,Z) = 1 + 5 - 2 = 4   (detour X-A-Z)
   p^D_XZ = c_D + d(-D)(X,Z) - d(X,Z) = 1 + 5 - 2 = 4
   d(Z,D) = 1 via Z-C-D.
   p^C_ZD = 1 + d(-C)(Z,D) - 1 = 1 + 6 - 1 = 6          (detour Z-B-D) *)

let test_fig1_price_c_on_xz () =
  let t = Lazy.force fig1_tables in
  match Pricing.price t ~src:(node "X") ~dst:(node "Z") ~transit:(node "C") with
  | Some p -> checkf "p^C_XZ" 4. p
  | None -> Alcotest.fail "missing price"

let test_fig1_price_d_on_xz () =
  let t = Lazy.force fig1_tables in
  match Pricing.price t ~src:(node "X") ~dst:(node "Z") ~transit:(node "D") with
  | Some p -> checkf "p^D_XZ" 4. p
  | None -> Alcotest.fail "missing price"

let test_fig1_price_c_on_zd () =
  let t = Lazy.force fig1_tables in
  match Pricing.price t ~src:(node "Z") ~dst:(node "D") ~transit:(node "C") with
  | Some p -> checkf "p^C_ZD" 6. p
  | None -> Alcotest.fail "missing price"

let test_fig1_no_price_for_endpoints () =
  let t = Lazy.force fig1_tables in
  check Alcotest.bool "no endpoint price" true
    (Pricing.price t ~src:(node "X") ~dst:(node "Z") ~transit:(node "X") = None);
  check (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9)))
    "adjacent pair pays nobody" []
    (Pricing.packet_payments t ~src:(node "B") ~dst:(node "D"))

let test_fig1_premium_nonneg () =
  let g, _ = Lazy.force fig1 in
  let t = Lazy.force fig1_tables in
  for src = 0 to 5 do
    for dst = 0 to 5 do
      List.iter
        (fun (k, _) ->
          match Pricing.premium g t ~src ~dst ~transit:k with
          | Some prem -> check Alcotest.bool "premium >= 0" true (prem >= -1e-9)
          | None -> Alcotest.fail "premium missing")
        (Pricing.packet_payments t ~src ~dst)
    done
  done

let test_naive_prices_are_declared_costs () =
  let g, _ = Lazy.force fig1 in
  let t = Naive.compute g in
  match Tables.price t ~src:(node "X") ~dst:(node "Z") ~transit:(node "C") with
  | Some p -> checkf "declared cost" 1. p
  | None -> Alcotest.fail "missing price"

(* --- Example 1 under both schemes --- *)

let example1_utilities scheme declared_c =
  let g, _ = Lazy.force fig1 in
  let true_costs = Graph.costs g in
  let declared = Array.copy true_costs in
  declared.(node "C") <- declared_c;
  let traffic = Traffic.uniform ~n:6 ~rate:1. in
  (Game.utilities scheme ~base:g ~true_costs ~declared ~traffic).(node "C")

let test_example1_naive_lie_profitable () =
  (* Under declared-cost pricing, C gains by declaring 5 (Example 1). *)
  let truthful = example1_utilities Game.Naive_cost 1. in
  let lying = example1_utilities Game.Naive_cost 5. in
  check Alcotest.bool "naive manipulable" true (lying > truthful +. 1e-9)

let test_example1_vcg_lie_not_profitable () =
  let truthful = example1_utilities Game.Vcg 1. in
  List.iter
    (fun lie ->
      let u = example1_utilities Game.Vcg lie in
      check Alcotest.bool "vcg resists" true (u <= truthful +. 1e-9))
    [ 0.; 0.5; 2.; 3.; 5.; 7.; 100. ]

let test_example1_efficiency_damage () =
  (* The lie degrades true routing efficiency: packets X->Z take a path of
     true cost 5 instead of 2. *)
  let g, _ = Lazy.force fig1 in
  let lied = Graph.with_cost g (node "C") 5. in
  let t = Pricing.compute lied in
  match Tables.path t ~src:(node "X") ~dst:(node "Z") with
  | Some path ->
      let true_cost =
        List.fold_left (fun acc v -> acc +. Graph.cost g v) 0. (Dijkstra.transit_nodes path)
      in
      checkf "true cost of lied-about route" 5. true_cost
  | None -> Alcotest.fail "no path"

(* --- Strategyproofness of the full routing game --- *)

let random_game rng scheme n =
  let g = Gen.erdos_renyi rng ~n ~p:0.35 (Gen.Uniform_int (0, 10)) in
  let traffic = Traffic.uniform ~n ~rate:1. in
  Game.mechanism scheme ~base:g ~traffic

let test_vcg_game_strategyproof_random () =
  let rng = Rng.create 301 in
  for _ = 1 to 5 do
    let m = random_game rng Game.Vcg 8 in
    let r =
      Strategyproof.check ~rng ~profiles:15 ~lies_per_agent:4
        ~sample_profile:(fun rng -> Game.sample_costs rng ~n:8)
        ~sample_lie:Game.sample_lie m
    in
    if not (Strategyproof.is_strategyproof r) then
      Alcotest.failf "VCG violated: max gain %g" r.Strategyproof.max_gain
  done

let test_naive_game_manipulable_random () =
  let rng = Rng.create 302 in
  let found = ref false in
  for _ = 1 to 5 do
    let m = random_game rng Game.Naive_cost 8 in
    let r =
      Strategyproof.check ~rng ~profiles:15 ~lies_per_agent:4
        ~sample_profile:(fun rng -> Game.sample_costs rng ~n:8)
        ~sample_lie:Game.sample_lie m
    in
    if not (Strategyproof.is_strategyproof r) then found := true
  done;
  check Alcotest.bool "naive scheme exploitable" true !found

let test_vcg_price_independent_of_own_declaration () =
  (* While k stays on the LCP, its payment does not move with its own
     declared cost — the heart of VCG strategyproofness. *)
  let rng = Rng.create 303 in
  for _ = 1 to 10 do
    let g = Gen.chordal_ring rng ~n:10 ~chords:5 (Gen.Uniform_int (1, 10)) in
    let t = Pricing.compute g in
    let src = Rng.int rng 10 and dst = Rng.int rng 10 in
    if src <> dst then
      match Tables.path t ~src ~dst with
      | Some path -> (
          match Dijkstra.transit_nodes path with
          | [] -> ()
          | k :: _ -> (
              let p0 = Pricing.price t ~src ~dst ~transit:k in
              (* Lower k's declaration: k certainly stays on the LCP. *)
              let g' = Graph.with_cost g k (Graph.cost g k /. 2.) in
              let t' = Pricing.compute g' in
              match (p0, Pricing.price t' ~src ~dst ~transit:k) with
              | Some a, Some b -> checkf "price unchanged" a b
              | _ -> Alcotest.fail "price disappeared"))
      | None -> Alcotest.fail "disconnected"
  done

(* --- Tables accounting --- *)

let test_transit_load_fig1 () =
  let t = Lazy.force fig1_tables in
  let traffic = Traffic.uniform ~n:6 ~rate:1. in
  (* C transits: X<->Z, D<->Z, A<->C? no (endpoint), and X<->C? no.
     From the LCP structure: C carries (X,Z),(Z,X),(D,Z),(Z,D) at least. *)
  let load_c = Tables.transit_load t traffic (node "C") in
  check Alcotest.bool "C carries at least 4 flows" true (load_c >= 4.);
  (* A carries nothing at true costs: its cost 5 loses to the C-D side. *)
  let load_a = Tables.transit_load t traffic (node "A") in
  checkf "A idle" 0. load_a

let test_income_matches_price_times_load_single_flow () =
  let t = Lazy.force fig1_tables in
  let traffic = Array.make_matrix 6 6 0. in
  traffic.(node "X").(node "Z") <- 3.;
  checkf "income of C" 12. (Tables.income t traffic (node "C"));
  checkf "outlay of X" 24. (Tables.outlay t traffic (node "X"));
  checkf "D also paid" 12. (Tables.income t traffic (node "D"))

let test_transfers_balance () =
  (* Money is conserved between sources and transits: sum(income) =
     sum(outlay), so transfers sum to zero. *)
  let t = Lazy.force fig1_tables in
  let traffic = Traffic.uniform ~n:6 ~rate:2. in
  let transfers = Tables.transfers t traffic in
  checkf "zero sum" 0. (Array.fold_left ( +. ) 0. transfers)

let test_traffic_generators () =
  let rng = Rng.create 304 in
  let u = Traffic.uniform ~n:4 ~rate:2. in
  checkf "uniform total" (2. *. 12.) (Traffic.total u);
  checkf "diagonal zero" 0. u.(1).(1);
  let r = Traffic.random rng ~n:5 ~max_rate:3. in
  checkf "diag" 0. r.(2).(2);
  check Alcotest.bool "bounded" true
    (Array.for_all (Array.for_all (fun x -> x >= 0. && x <= 3.)) r);
  let h = Traffic.hotspot rng ~n:6 ~hotspots:2 ~rate:1. in
  check Alcotest.int "hotspot pairs" (2 * 5) (List.length (Traffic.demand_pairs h));
  let s = Traffic.scale u 0.5 in
  checkf "scaled" (Traffic.total u /. 2.) (Traffic.total s)

(* --- Distributed computation --- *)

let test_distributed_matches_centralized_fig1 () =
  let g, _ = Lazy.force fig1 in
  let d = Distributed.run g in
  let c = Pricing.compute g in
  check Alcotest.bool "routing equal" true (Tables.routing_equal d.Distributed.tables c);
  check Alcotest.bool "prices equal" true (Tables.prices_equal d.Distributed.tables c)

let test_distributed_matches_centralized_random_int_costs () =
  let rng = Rng.create 305 in
  for _ = 1 to 10 do
    let g = Gen.erdos_renyi rng ~n:12 ~p:0.3 (Gen.Uniform_int (0, 10)) in
    let d = Distributed.run g in
    let c = Pricing.compute g in
    check Alcotest.bool "routing equal" true (Tables.routing_equal d.Distributed.tables c);
    (* Integer costs: agreement is exact. *)
    check Alcotest.bool "prices exactly equal" true
      (Tables.prices_equal d.Distributed.tables c)
  done

let test_distributed_matches_centralized_float_costs () =
  let rng = Rng.create 306 in
  for _ = 1 to 5 do
    let g = Gen.waxman rng ~n:12 ~alpha:0.7 ~beta:0.4 (Gen.Uniform_float (0.1, 5.)) in
    let d = Distributed.run g in
    let c = Pricing.compute g in
    check Alcotest.bool "routing equal" true (Tables.routing_equal d.Distributed.tables c);
    check Alcotest.bool "prices within tolerance" true
      (Tables.prices_equal ~tolerance:1e-6 d.Distributed.tables c)
  done

let test_flood_rounds_equal_diameter () =
  let rng = Rng.create 307 in
  for _ = 1 to 5 do
    let g = Gen.chordal_ring rng ~n:16 ~chords:4 (Gen.Uniform_int (1, 5)) in
    let rounds, messages = Distributed.flood_costs g in
    check Alcotest.int "rounds = hop diameter" (Graph.hop_diameter g) rounds;
    check Alcotest.bool "messages positive" true (messages > 0)
  done

let test_distributed_round_counts_reasonable () =
  let rng = Rng.create 308 in
  let g = Gen.erdos_renyi rng ~n:16 ~p:0.25 (Gen.Uniform_int (0, 10)) in
  let d = Distributed.run g in
  check Alcotest.bool "routing rounds bounded by n" true (d.Distributed.rounds_routing <= 16);
  check Alcotest.bool "flood rounds = diameter" true
    (d.Distributed.rounds_flood = Graph.hop_diameter g);
  check Alcotest.bool "messages counted" true (d.Distributed.messages > 0)

let test_distributed_ring () =
  (* A ring has exactly two paths per pair; on a 5-ring with unit costs,
     the 0->2 LCP is 0-1-2 (cost 1) and the detour around node 1 is
     0-4-3-2 (cost 2), so p^1 = 1 + 2 - 1 = 2. *)
  let g = Gen.ring ~n:5 ~costs:[| 1.; 1.; 1.; 1.; 1. |] in
  let d = Distributed.run g in
  match Tables.price d.Distributed.tables ~src:0 ~dst:2 ~transit:1 with
  | Some p -> checkf "ring price" 2. p
  | None -> Alcotest.fail "missing ring price"

let test_warm_start_reconverges_exactly () =
  (* After a single cost change, warm-starting from the old tables reaches
     exactly the new centralized fixpoint, in fewer rounds than cold. *)
  let rng = Rng.create 309 in
  for _ = 1 to 5 do
    let g = Gen.chordal_ring rng ~n:14 ~chords:4 (Gen.Uniform_int (1, 10)) in
    let cold = Distributed.run g in
    let changed = Graph.with_cost g (Rng.int rng 14) (float_of_int (Rng.int_in rng 1 10)) in
    let warm = Distributed.run ~warm_start:cold.Distributed.tables changed in
    let reference = Pricing.compute changed in
    check Alcotest.bool "routing exact" true
      (Tables.routing_equal warm.Distributed.tables reference);
    check Alcotest.bool "prices exact" true
      (Tables.prices_equal warm.Distributed.tables reference)
  done

let test_warm_start_cheaper_on_average () =
  let rng = Rng.create 310 in
  let warm_msgs = ref 0 and cold_msgs = ref 0 in
  for _ = 1 to 8 do
    let g = Gen.chordal_ring rng ~n:16 ~chords:4 (Gen.Uniform_int (1, 10)) in
    let cold0 = Distributed.run g in
    let changed = Graph.with_cost g (Rng.int rng 16) (float_of_int (Rng.int_in rng 1 10)) in
    let warm = Distributed.run ~warm_start:cold0.Distributed.tables changed in
    let cold = Distributed.run changed in
    warm_msgs := !warm_msgs + warm.Distributed.messages;
    cold_msgs := !cold_msgs + cold.Distributed.messages
  done;
  check Alcotest.bool "incremental cheaper" true (!warm_msgs < !cold_msgs)

let test_warm_start_identity_when_unchanged () =
  let g, _ = Lazy.force fig1 in
  let cold = Distributed.run g in
  let warm = Distributed.run ~warm_start:cold.Distributed.tables g in
  check Alcotest.bool "tables unchanged" true
    (Tables.routing_equal warm.Distributed.tables cold.Distributed.tables
    && Tables.prices_equal warm.Distributed.tables cold.Distributed.tables);
  (* Convergence is immediate: the first round discovers no change. *)
  check Alcotest.int "routing converged instantly" 0 warm.Distributed.rounds_routing

(* --- Change-driven fixpoints vs the full-sweep reference ---

   [Distributed.run] recomputes only entries whose neighbor inputs changed;
   [Distributed.run_reference] is the retained full sweep. The two must be
   indistinguishable: byte-identical tables (structural equality over every
   cost, path and price entry) and identical round and message counts. *)

let check_equiv_with_reference name g =
  let d = Distributed.run g in
  let r = Distributed.run_reference g in
  check Alcotest.bool (name ^ ": routing tables byte-identical") true
    (d.Distributed.tables.Tables.routing = r.Distributed.tables.Tables.routing);
  check Alcotest.bool (name ^ ": pricing tables byte-identical") true
    (d.Distributed.tables.Tables.prices = r.Distributed.tables.Tables.prices);
  check Alcotest.int (name ^ ": flood rounds") r.Distributed.rounds_flood
    d.Distributed.rounds_flood;
  check Alcotest.int (name ^ ": routing rounds") r.Distributed.rounds_routing
    d.Distributed.rounds_routing;
  check Alcotest.int (name ^ ": pricing rounds") r.Distributed.rounds_pricing
    d.Distributed.rounds_pricing;
  check Alcotest.int (name ^ ": messages") r.Distributed.messages
    d.Distributed.messages;
  (* And both agree with the centralized mechanism (int costs: exact). *)
  let c = Pricing.compute g in
  check Alcotest.bool (name ^ ": = centralized routing") true
    (Tables.routing_equal d.Distributed.tables c);
  check Alcotest.bool (name ^ ": = centralized prices") true
    (Tables.prices_equal d.Distributed.tables c)

let test_change_driven_equals_reference () =
  let g1, _ = Lazy.force fig1 in
  check_equiv_with_reference "fig1" g1;
  let rng = Rng.create 313 in
  for i = 1 to 3 do
    check_equiv_with_reference
      (Printf.sprintf "chordal%d" i)
      (Gen.chordal_ring rng ~n:16 ~chords:4 (Gen.Uniform_int (1, 10)))
  done;
  check_equiv_with_reference "er32"
    (Gen.erdos_renyi (Rng.create 314) ~n:32 ~p:0.15 (Gen.Uniform_int (0, 10)))

let test_change_driven_equals_reference_warm () =
  (* The ~warm_start path after a cost change: same tables, same rounds,
     same messages as the reference warm start. *)
  let rng = Rng.create 315 in
  for _ = 1 to 4 do
    let g = Gen.chordal_ring rng ~n:16 ~chords:4 (Gen.Uniform_int (1, 10)) in
    let cold = Distributed.run g in
    let cold_ref = Distributed.run_reference g in
    let changed =
      Graph.with_cost g (Rng.int rng 16) (float_of_int (Rng.int_in rng 1 10))
    in
    let warm = Distributed.run ~warm_start:cold.Distributed.tables changed in
    let warm_ref =
      Distributed.run_reference ~warm_start:cold_ref.Distributed.tables changed
    in
    check Alcotest.bool "warm routing byte-identical" true
      (warm.Distributed.tables.Tables.routing
      = warm_ref.Distributed.tables.Tables.routing);
    check Alcotest.bool "warm prices byte-identical" true
      (warm.Distributed.tables.Tables.prices
      = warm_ref.Distributed.tables.Tables.prices);
    check Alcotest.int "warm routing rounds" warm_ref.Distributed.rounds_routing
      warm.Distributed.rounds_routing;
    check Alcotest.int "warm pricing rounds" warm_ref.Distributed.rounds_pricing
      warm.Distributed.rounds_pricing;
    check Alcotest.int "warm messages" warm_ref.Distributed.messages
      warm.Distributed.messages;
    let reference = Pricing.compute changed in
    check Alcotest.bool "warm = centralized" true
      (Tables.routing_equal warm.Distributed.tables reference
      && Tables.prices_equal warm.Distributed.tables reference)
  done

let prop_change_driven_equals_reference =
  QCheck.Test.make ~name:"change-driven = full-sweep reference (tables+counts)"
    ~count:20
    QCheck.(pair small_nat (float_bound_inclusive 1.))
    (fun (seed, p) ->
      let rng = Rng.create (seed + 700) in
      let n = 6 + (seed mod 10) in
      let p = 0.2 +. (p *. 0.4) in
      let g = Gen.erdos_renyi rng ~n ~p (Gen.Uniform_int (0, 10)) in
      let d = Distributed.run g in
      let r = Distributed.run_reference g in
      d.Distributed.tables.Tables.routing = r.Distributed.tables.Tables.routing
      && d.Distributed.tables.Tables.prices = r.Distributed.tables.Tables.prices
      && d.Distributed.rounds_routing = r.Distributed.rounds_routing
      && d.Distributed.rounds_pricing = r.Distributed.rounds_pricing
      && d.Distributed.messages = r.Distributed.messages)

let prop_distributed_equals_centralized =
  QCheck.Test.make ~name:"distributed = centralized on random graphs" ~count:20
    QCheck.(pair small_nat (float_bound_inclusive 1.))
    (fun (seed, p) ->
      let rng = Rng.create (seed + 400) in
      let n = 6 + (seed mod 8) in
      let p = 0.2 +. (p *. 0.4) in
      let g = Gen.erdos_renyi rng ~n ~p (Gen.Uniform_int (0, 10)) in
      let d = Distributed.run g in
      let c = Pricing.compute g in
      Tables.routing_equal d.Distributed.tables c
      && Tables.prices_equal d.Distributed.tables c)

let prop_warm_start_exact =
  QCheck.Test.make ~name:"warm start reaches the exact new fixpoint" ~count:15
    QCheck.(triple small_nat small_nat (int_bound 10))
    (fun (seed, who, new_cost) ->
      let rng = Rng.create (seed + 600) in
      let n = 8 + (seed mod 6) in
      let g = Gen.chordal_ring rng ~n ~chords:(n / 4) (Gen.Uniform_int (1, 10)) in
      let before = Distributed.run g in
      let changed = Graph.with_cost g (who mod n) (float_of_int (max 1 new_cost)) in
      let warm = Distributed.run ~warm_start:before.Distributed.tables changed in
      let reference = Pricing.compute changed in
      Tables.routing_equal warm.Distributed.tables reference
      && Tables.prices_equal warm.Distributed.tables reference)

let prop_vcg_game_no_profitable_lie =
  QCheck.Test.make ~name:"FPSS/VCG: random misreport never gains" ~count:25
    QCheck.(triple small_nat small_nat (int_bound 10))
    (fun (seed, agent, lie) ->
      let rng = Rng.create (seed + 500) in
      let n = 7 in
      let g = Gen.erdos_renyi rng ~n ~p:0.4 (Gen.Uniform_int (0, 10)) in
      let traffic = Traffic.uniform ~n ~rate:1. in
      let m = Game.mechanism Game.Vcg ~base:g ~traffic in
      let true_costs = Graph.costs g in
      let agent = agent mod n in
      let truthful = Mechanism.utility m agent true_costs.(agent) true_costs in
      let reports = Array.copy true_costs in
      reports.(agent) <- float_of_int lie;
      Mechanism.utility m agent true_costs.(agent) reports <= truthful +. 1e-9)

(* --- Sparse flat-array engine vs the dense oracle --- *)

module Sparse = Damd_fpss.Sparse

let check_sparse_matches_dense name g =
  let d = Distributed.run g in
  let sp = Sparse.create g in
  Sparse.run sp;
  let t = Sparse.to_tables sp in
  check Alcotest.bool (name ^ ": sparse routing byte-identical") true
    (t.Tables.routing = d.Distributed.tables.Tables.routing);
  check Alcotest.bool (name ^ ": sparse prices byte-identical") true
    (t.Tables.prices = d.Distributed.tables.Tables.prices)

let test_sparse_full_dests_matches_dense () =
  let g1, _ = Lazy.force fig1 in
  check_sparse_matches_dense "fig1" g1;
  let rng = Rng.create 320 in
  for i = 1 to 3 do
    check_sparse_matches_dense
      (Printf.sprintf "chordal%d" i)
      (Gen.chordal_ring rng ~n:16 ~chords:4 (Gen.Uniform_int (1, 10)))
  done;
  check_sparse_matches_dense "er32"
    (Gen.erdos_renyi (Rng.create 321) ~n:32 ~p:0.15 (Gen.Uniform_int (0, 10)));
  (* Float costs too: the arithmetic per candidate is identical, so even
     float tables agree bit-for-bit. *)
  check_sparse_matches_dense "waxman"
    (Gen.waxman (Rng.create 322) ~n:16 ~alpha:0.7 ~beta:0.4
       (Gen.Uniform_float (0.1, 5.)))

let test_sparse_restricted_dests_slice_dense () =
  (* The per-destination systems are independent, so restricting the
     destination set must reproduce exactly those columns of the dense
     fixpoint. *)
  let rng = Rng.create 323 in
  let g = Gen.chordal_ring rng ~n:20 ~chords:6 (Gen.Uniform_int (1, 10)) in
  let d = Distributed.run g in
  let dests = [| 0; 3; 7; 19 |] in
  let sp = Sparse.create ~dests g in
  Sparse.run sp;
  Array.iter
    (fun dst ->
      for i = 0 to 19 do
        (match d.Distributed.tables.Tables.routing.(i).(dst) with
        | Some e ->
            checkf "sliced dist" e.Dijkstra.cost (Sparse.dist sp i ~dest:dst);
            check
              (Alcotest.option (Alcotest.list Alcotest.int))
              "sliced path" (Some e.Dijkstra.path)
              (Sparse.path sp i ~dest:dst)
        | None ->
            check Alcotest.bool "sliced unreachable" true
              (Sparse.dist sp i ~dest:dst = infinity));
        check
          (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-12)))
          "sliced prices"
          d.Distributed.tables.Tables.prices.(i).(dst)
          (Sparse.prices sp i ~dest:dst)
      done)
    dests;
  (* Asking for a non-destination is a caller error, not silent garbage. *)
  check Alcotest.bool "non-dest rejected" true
    (match Sparse.dist sp 0 ~dest:5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_sparse_equals_dense =
  QCheck.Test.make ~name:"sparse = dense on random graphs" ~count:20
    QCheck.(pair small_nat (float_bound_inclusive 1.))
    (fun (seed, p) ->
      let rng = Rng.create (seed + 800) in
      let n = 6 + (seed mod 10) in
      let p = 0.2 +. (p *. 0.4) in
      let g = Gen.erdos_renyi rng ~n ~p (Gen.Uniform_int (0, 10)) in
      let d = Distributed.run g in
      let sp = Sparse.create g in
      Sparse.run sp;
      let t = Sparse.to_tables sp in
      t.Tables.routing = d.Distributed.tables.Tables.routing
      && t.Tables.prices = d.Distributed.tables.Tables.prices)

let prop_sparse_warm_equals_dense_warm =
  (* Warm-start differential: after a single cost change,
     [Sparse.update_cost] + [rerun] from the stale announced state must
     land on exactly the tables the dense engine reaches from
     [~warm_start] on the same change — on AS-like power-law topologies,
     where the hub/leaf asymmetry makes stale-loop inflation (the
     count-to-infinity walk of a cost increase) most likely. Strictly
     positive costs, as the warm contract requires. *)
  QCheck.Test.make ~name:"sparse warm restart = dense warm start (as_like)"
    ~count:50
    QCheck.(triple small_nat small_nat (int_bound 9))
    (fun (seed, node_pick, new_cost) ->
      let rng = Rng.create (seed + 2200) in
      let n = 12 + (seed mod 12) in
      let g, _ = Gen.as_like rng ~n ~m:2 (Gen.Uniform_int (1, 10)) in
      let sp = Sparse.create g in
      Sparse.run sp;
      let cold = Distributed.run g in
      let i = node_pick mod n in
      let c = float_of_int (1 + new_cost) in
      let changed = Graph.with_cost g i c in
      let warm_dense =
        Distributed.run ~warm_start:cold.Distributed.tables changed
      in
      Sparse.update_cost sp i c;
      Sparse.rerun sp;
      let t = Sparse.to_tables sp in
      t.Tables.routing = warm_dense.Distributed.tables.Tables.routing
      && t.Tables.prices = warm_dense.Distributed.tables.Tables.prices)

let test_sparse_deviation_checkpoints () =
  (* Honest fixpoints have zero residual at every node; a node distorting
     its announcements by delta shows residual exactly delta at itself —
     and only at itself, because every other node's announcement is by
     construction the honest function of its (possibly distorted)
     inputs. *)
  let g, _ = Lazy.force fig1 in
  let sp = Sparse.create g in
  Sparse.run sp;
  for i = 0 to 5 do
    checkf "honest routing residual" 0. (Sparse.routing_deviation sp i);
    checkf "honest pricing residual" 0. (Sparse.pricing_deviation sp i)
  done;
  (* Node C (id 2, the busiest transit) pads every route announcement. *)
  let routing_offsets = Array.make 6 0. in
  routing_offsets.(2) <- 0.5;
  let sp = Sparse.create g in
  Sparse.run ~routing_offsets sp;
  for i = 0 to 5 do
    let r = Sparse.routing_deviation sp i in
    if i = 2 then checkf "distorter residual = delta" 0.5 r
    else checkf "honest mirror stays clean" 0. r
  done;
  (* And a pricing distorter, caught in the pricing checkpoint only. *)
  let pricing_offsets = Array.make 6 0. in
  pricing_offsets.(2) <- 0.75;
  let sp = Sparse.create g in
  Sparse.run ~pricing_offsets sp;
  for i = 0 to 5 do
    checkf "routing stays clean" 0. (Sparse.routing_deviation sp i);
    let r = Sparse.pricing_deviation sp i in
    if i = 2 then checkf "pricing residual = delta" 0.75 r
    else checkf "honest pricing mirror stays clean" 0. r
  done

(* --- Cross-checks between Game and the underlying tables --- *)

let test_game_utilities_match_mechanism () =
  (* Game.utilities at truthful declarations agrees with the Mechanism
     interface's utility for every node. *)
  let g, _ = Lazy.force fig1 in
  let traffic = Traffic.uniform ~n:6 ~rate:1. in
  let m = Game.mechanism Game.Vcg ~base:g ~traffic in
  let true_costs = Graph.costs g in
  let us =
    Game.utilities Game.Vcg ~base:g ~true_costs ~declared:true_costs ~traffic
  in
  for i = 0 to 5 do
    checkf "same utility" (Mechanism.utility m i true_costs.(i) true_costs) us.(i)
  done

let test_naive_and_vcg_agree_on_routing () =
  (* The two schemes differ only in payments: same declared costs, same
     LCPs. *)
  let rng = Rng.create 311 in
  let g = Gen.erdos_renyi rng ~n:10 ~p:0.35 (Gen.Uniform_int (0, 10)) in
  let vcg = Pricing.compute g in
  let naive = Naive.compute g in
  check Alcotest.bool "same routing" true (Tables.routing_equal vcg naive)

let test_vcg_price_at_least_naive () =
  (* p^k = c_k + (detour - direct) >= c_k: VCG never pays below declared
     cost — the premium is the transit's information rent. *)
  let rng = Rng.create 312 in
  let g = Gen.chordal_ring rng ~n:10 ~chords:4 (Gen.Uniform_int (0, 10)) in
  let vcg = Pricing.compute g in
  for src = 0 to 9 do
    for dst = 0 to 9 do
      List.iter
        (fun (k, p) ->
          check Alcotest.bool "price >= declared cost" true
            (p >= Graph.cost g k -. 1e-9))
        (Tables.packet_payments vcg ~src ~dst)
    done
  done

let test_income_zero_for_pure_endpoints () =
  (* A node that transits nothing earns nothing. *)
  let t = Lazy.force fig1_tables in
  let traffic = Traffic.uniform ~n:6 ~rate:1. in
  checkf "A earns nothing at true costs" 0. (Tables.income t traffic (node "A"))

let test_demand_pairs_roundtrip () =
  let traffic = Array.make_matrix 3 3 0. in
  traffic.(0).(2) <- 1.5;
  traffic.(2).(1) <- 0.5;
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int (Alcotest.float 1e-9)))
    "pairs" [ (0, 2, 1.5); (2, 1, 0.5) ]
    (Traffic.demand_pairs traffic)

let suites =
  [
    ( "fpss.pricing",
      [
        Alcotest.test_case "Fig1 p^C_XZ = 4" `Quick test_fig1_price_c_on_xz;
        Alcotest.test_case "Fig1 p^D_XZ = 4" `Quick test_fig1_price_d_on_xz;
        Alcotest.test_case "Fig1 p^C_ZD = 6" `Quick test_fig1_price_c_on_zd;
        Alcotest.test_case "no endpoint prices" `Quick test_fig1_no_price_for_endpoints;
        Alcotest.test_case "premiums non-negative" `Quick test_fig1_premium_nonneg;
        Alcotest.test_case "naive = declared costs" `Quick test_naive_prices_are_declared_costs;
      ] );
    ( "fpss.example1",
      [
        Alcotest.test_case "naive: lie profitable" `Quick test_example1_naive_lie_profitable;
        Alcotest.test_case "vcg: lie not profitable" `Quick test_example1_vcg_lie_not_profitable;
        Alcotest.test_case "lie damages efficiency" `Quick test_example1_efficiency_damage;
      ] );
    ( "fpss.game",
      [
        Alcotest.test_case "VCG strategyproof (random)" `Quick test_vcg_game_strategyproof_random;
        Alcotest.test_case "naive manipulable (random)" `Quick test_naive_game_manipulable_random;
        Alcotest.test_case "price independent of own report" `Quick
          test_vcg_price_independent_of_own_declaration;
        QCheck_alcotest.to_alcotest prop_vcg_game_no_profitable_lie;
      ] );
    ( "fpss.tables",
      [
        Alcotest.test_case "transit load Fig1" `Quick test_transit_load_fig1;
        Alcotest.test_case "income/outlay single flow" `Quick
          test_income_matches_price_times_load_single_flow;
        Alcotest.test_case "transfers zero-sum" `Quick test_transfers_balance;
        Alcotest.test_case "traffic generators" `Quick test_traffic_generators;
        Alcotest.test_case "game = mechanism utilities" `Quick
          test_game_utilities_match_mechanism;
        Alcotest.test_case "naive/vcg same routing" `Quick test_naive_and_vcg_agree_on_routing;
        Alcotest.test_case "vcg price >= declared cost" `Quick test_vcg_price_at_least_naive;
        Alcotest.test_case "idle node earns nothing" `Quick test_income_zero_for_pure_endpoints;
        Alcotest.test_case "demand pairs" `Quick test_demand_pairs_roundtrip;
      ] );
    ( "fpss.distributed",
      [
        Alcotest.test_case "matches centralized (Fig1)" `Quick
          test_distributed_matches_centralized_fig1;
        Alcotest.test_case "matches centralized (int costs)" `Quick
          test_distributed_matches_centralized_random_int_costs;
        Alcotest.test_case "matches centralized (float costs)" `Quick
          test_distributed_matches_centralized_float_costs;
        Alcotest.test_case "flood rounds = diameter" `Quick test_flood_rounds_equal_diameter;
        Alcotest.test_case "round counts reasonable" `Quick
          test_distributed_round_counts_reasonable;
        Alcotest.test_case "ring price" `Quick test_distributed_ring;
        Alcotest.test_case "warm start exact" `Quick test_warm_start_reconverges_exactly;
        Alcotest.test_case "warm start cheaper" `Quick test_warm_start_cheaper_on_average;
        Alcotest.test_case "warm start identity" `Quick test_warm_start_identity_when_unchanged;
        Alcotest.test_case "change-driven = reference (cold)" `Quick
          test_change_driven_equals_reference;
        Alcotest.test_case "change-driven = reference (warm)" `Quick
          test_change_driven_equals_reference_warm;
        QCheck_alcotest.to_alcotest prop_change_driven_equals_reference;
        QCheck_alcotest.to_alcotest prop_warm_start_exact;
        QCheck_alcotest.to_alcotest prop_distributed_equals_centralized;
      ] );
    ( "fpss.sparse",
      [
        Alcotest.test_case "full dests = dense tables" `Quick
          test_sparse_full_dests_matches_dense;
        Alcotest.test_case "restricted dests slice dense" `Quick
          test_sparse_restricted_dests_slice_dense;
        Alcotest.test_case "deviation checkpoints" `Quick
          test_sparse_deviation_checkpoints;
        QCheck_alcotest.to_alcotest prop_sparse_equals_dense;
        QCheck_alcotest.to_alcotest prop_sparse_warm_equals_dense_warm;
      ] );
  ]

(* Tests for Damd_speccheck: the finite spec IR, the IR->closure compiler
   (including the trace-equivalence property against a hand-written
   machine), the static checker suite with its seeded mutations, and the
   lint report driver. *)

module Action = Damd_core.Action
module Sm = Damd_core.State_machine
module Phase = Damd_core.Phase
module Gen = Damd_graph.Gen
module Ir = Damd_speccheck.Ir
module Fpss_spec = Damd_speccheck.Fpss_spec
module Compile = Damd_speccheck.Compile
module Check = Damd_speccheck.Check
module Mutate = Damd_speccheck.Mutate
module Lint = Damd_speccheck.Lint
module Adversary = Damd_faithful.Adversary

let check = Alcotest.check
let ir = Fpss_spec.ir
let fig1 () = fst (Gen.figure1 ())

let finding_ids fs = List.map (fun f -> f.Check.id) fs

(* --- the stock spec is clean ------------------------------------------ *)

let test_stock_ir_clean () =
  let findings = Check.check_ir ~adversary:Adversary.all_labels ir in
  check (Alcotest.list Alcotest.string) "no findings at any severity" []
    (finding_ids findings)

let test_stock_topology_clean () =
  check (Alcotest.list Alcotest.string) "fig1 is biconnected" []
    (finding_ids (Check.check_topology (fig1 ())))

let test_stock_lint_report () =
  let report =
    Lint.run ~adversary:Adversary.all_labels ~graph:(fig1 ()) ~topology:"fig1" ir
  in
  check Alcotest.int "zero errors" 0 (Lint.error_count report);
  check Alcotest.int "exit 0" 0 (Lint.exit_code report);
  check Alcotest.(option string) "no mutation" None report.Lint.mutation;
  check Alcotest.string "spec name" "extended-fpss" report.Lint.spec

(* --- every seeded mutation fires exactly its expected error ----------- *)

let test_mutations_fire () =
  List.iter
    (fun (name, expected_id) ->
      let report =
        Lint.run ~adversary:Adversary.all_labels ~mutation:name
          ~graph:(fig1 ()) ~topology:"fig1" ir
      in
      let errs = Check.errors report.Lint.findings in
      check Alcotest.int (name ^ ": exactly one error") 1 (List.length errs);
      check Alcotest.string (name ^ ": expected id") expected_id
        (List.hd errs).Check.id;
      check Alcotest.int (name ^ ": exit 1") 1 (Lint.exit_code report))
    Mutate.all

let test_mutation_table_consistent () =
  (* [expected] agrees with [all]; unknown names are rejected everywhere. *)
  List.iter
    (fun (name, id) ->
      check Alcotest.(option string) name (Some id) (Mutate.expected name))
    Mutate.all;
  check Alcotest.(option string) "unknown mutation" None
    (Mutate.expected "no-such-mutation");
  check Alcotest.bool "apply rejects unknown" true
    (Mutate.apply "no-such-mutation" (ir, fig1 ()) = None);
  check Alcotest.bool "lint raises on unknown" true
    (try
       ignore
         (Lint.run ~mutation:"no-such-mutation" ~graph:(fig1 ())
            ~topology:"fig1" ir);
       false
     with Invalid_argument _ -> true)

(* --- the compiled machine --------------------------------------------- *)

let machine = Compile.machine ir

let test_compiled_suggested_trace () =
  let steps = Sm.trace ~max_steps:50 machine in
  check Alcotest.int "eleven steps" 11 (List.length steps);
  check Alcotest.string "halts" "halt" (Sm.final_state ~max_steps:50 machine);
  check (Alcotest.list Alcotest.string) "protocol order"
    (List.map (fun (a : Ir.action) -> a.Ir.id) ir.Ir.actions)
    (Compile.suggested_path ir ~max_steps:50)

let test_compiled_follows_specification () =
  check Alcotest.bool "suggested follows itself" true
    (Sm.follows_specification ~max_steps:50 ~strategy:machine.Sm.suggested
       machine);
  check Alcotest.bool "no deviation point" true
    (Sm.deviation_point ~max_steps:50 ~strategy:machine.Sm.suggested machine
    = None)

let test_compiled_deviation_point () =
  (* Swap the routing-forward step for the computation that should come
     one step later: caught at index 2 with the suggested class there. *)
  let strategy s =
    if s = "routing-forward" then Some "recompute-routing"
    else machine.Sm.suggested s
  in
  check Alcotest.bool "deviant flagged" false
    (Sm.follows_specification ~max_steps:50 ~strategy machine);
  match Sm.deviation_point ~max_steps:50 ~strategy machine with
  | Some (2, Some Action.Message_passing) -> ()
  | Some (i, _) -> Alcotest.failf "deviation at %d, expected 2" i
  | None -> Alcotest.fail "no deviation point"

let test_compiled_early_halt () =
  let strategy s = if s = "pricing-forward" then None else machine.Sm.suggested s in
  match Sm.deviation_point ~max_steps:50 ~strategy machine with
  | Some (5, None) -> ()
  | Some (i, _) -> Alcotest.failf "halt detected at %d, expected 5" i
  | None -> Alcotest.fail "early halt not detected"

let test_compiled_self_loop () =
  (* Undefined (state, action) pairs self-loop instead of raising, so a
     deviating strategy still yields a trace for [deviation_point]. *)
  check Alcotest.string "self loop" "cost-announce"
    (machine.Sm.transition "cost-announce" "forward-packets");
  check Alcotest.bool "unknown action is internal" true
    (machine.Sm.classify "no-such-action" = Action.Internal)

(* --- QCheck: the compiler agrees with a hand-written machine ----------- *)

(* The §4.1 chain written out as literal closures, the way the spec was
   expressed before the IR existed. The property pins the compiler to it:
   any strategy produces identical traces on both. *)
let hand_machine : (string, string) Sm.t =
  let chain =
    [
      ("cost-announce", "declare-cost", "cost-flood");
      ("cost-flood", "flood-costs", "routing-forward");
      ("routing-forward", "forward-routing-copies", "routing-compute");
      ("routing-compute", "recompute-routing", "routing-mirror");
      ("routing-mirror", "mirror-routing", "pricing-forward");
      ("pricing-forward", "forward-pricing-copies", "pricing-compute");
      ("pricing-compute", "recompute-pricing", "pricing-mirror");
      ("pricing-mirror", "mirror-pricing", "digest-report");
      ("digest-report", "report-digests", "exec-forward");
      ("exec-forward", "forward-packets", "exec-settle");
      ("exec-settle", "report-payments", "halt");
    ]
  in
  {
    Sm.initial = "cost-announce";
    transition =
      (fun s a ->
        match
          List.find_opt (fun (src, act, _) -> src = s && act = a) chain
        with
        | Some (_, _, dst) -> dst
        | None -> s);
    suggested =
      (fun s ->
        match List.find_opt (fun (src, _, _) -> src = s) chain with
        | Some (_, act, _) -> Some act
        | None -> None);
    classify =
      (function
      | "declare-cost" -> Action.Information_revelation
      | "flood-costs" | "forward-routing-copies" | "forward-pricing-copies"
      | "forward-packets" ->
          Action.Message_passing
      | "recompute-routing" | "mirror-routing" | "recompute-pricing"
      | "mirror-pricing" | "report-digests" | "report-payments" ->
          Action.Computation
      | _ -> Action.Internal);
  }

let action_ids = List.map (fun (a : Ir.action) -> a.Ir.id) ir.Ir.actions

let prop_compiled_equals_hand_written =
  QCheck.Test.make ~name:"IR-compiled trace = hand-written closure trace"
    ~count:200
    QCheck.(
      list_of_size
        (QCheck.Gen.return (List.length ir.Ir.states))
        (int_bound (List.length action_ids)))
    (fun choices ->
      (* One choice per state: an action id to play there, or halt. *)
      let strategy s =
        match
          List.find_opt (fun (s', _) -> s' = s)
            (List.map2 (fun st c -> (st, c)) ir.Ir.states choices)
        with
        | Some (_, c) when c < List.length action_ids ->
            Some (List.nth action_ids c)
        | _ -> None
      in
      Sm.trace ~strategy ~max_steps:30 machine
      = Sm.trace ~strategy ~max_steps:30 hand_machine
      && Sm.trace ~max_steps:30 machine = Sm.trace ~max_steps:30 hand_machine)

(* --- Phase.execute over IR-derived phases ------------------------------ *)

(* Each IR phase becomes a [Phase.t] that advances the compiled machine
   through the phase's member states under the suggested play. *)
let ir_phase ~certify (p : Ir.phase) =
  let run state =
    let rec go s =
      if List.mem s p.Ir.members then
        match machine.Sm.suggested s with
        | Some a -> go (machine.Sm.transition s a)
        | None -> s
      else s
    in
    go state
  in
  { Phase.name = p.Ir.pname; run; certify }

let test_phase_execute_clean () =
  let phases =
    List.map (ir_phase ~certify:(fun _ -> Ok ())) ir.Ir.phases
  in
  match Phase.execute ir.Ir.initial phases with
  | Phase.Completed p ->
      check Alcotest.string "reaches halt" "halt" p.Phase.state;
      check Alcotest.int "no restarts" 0 (Phase.total_restarts p)
  | Phase.Stuck { phase; _ } -> Alcotest.failf "stuck in %s" phase

let test_phase_execute_restart_accounting () =
  (* construction-2b flakes twice before certifying: the outcome completes
     with exactly those two restarts on record, attributed to the phase. *)
  let attempts = ref 0 in
  let phases =
    List.map
      (fun (p : Ir.phase) ->
        let certify _ =
          if p.Ir.pname = "construction-2b" then begin
            incr attempts;
            if !attempts <= 2 then Error "digest mismatch" else Ok ()
          end
          else Ok ()
        in
        ir_phase ~certify p)
      ir.Ir.phases
  in
  match Phase.execute ir.Ir.initial phases with
  | Phase.Completed p ->
      check Alcotest.string "reaches halt" "halt" p.Phase.state;
      check Alcotest.int "two restarts" 2 (Phase.total_restarts p);
      List.iter
        (fun (phase, reason) ->
          check Alcotest.string "restart phase" "construction-2b" phase;
          check Alcotest.string "restart reason" "digest mismatch" reason)
        p.Phase.restarts
  | Phase.Stuck { phase; _ } -> Alcotest.failf "stuck in %s" phase

let test_phase_execute_stuck () =
  (* A persistently failing execution checkpoint is the paper's penalty of
     no progress: Stuck names the phase from the IR. *)
  let phases =
    List.map
      (fun (p : Ir.phase) ->
        let certify _ =
          if p.Ir.pname = "execution" then Error "settlement mismatch"
          else Ok ()
        in
        ir_phase ~certify p)
      ir.Ir.phases
  in
  match Phase.execute ~max_restarts:2 ir.Ir.initial phases with
  | Phase.Completed _ -> Alcotest.fail "expected Stuck"
  | Phase.Stuck { phase; reason; progress } ->
      check Alcotest.string "stuck phase" "execution" phase;
      check Alcotest.string "stuck reason" "settlement mismatch" reason;
      (* the initial attempt plus each of the max_restarts retries failed *)
      check Alcotest.int "restarts recorded" 3 (Phase.total_restarts progress)

(* --- IR helpers -------------------------------------------------------- *)

let test_ir_phase_lookup () =
  List.iter
    (fun (state, pname) ->
      match Ir.phase_of_state ir state with
      | Some p -> check Alcotest.string state pname p.Ir.pname
      | None -> Alcotest.failf "%s in no phase" state)
    [
      ("cost-flood", "construction-1");
      ("routing-mirror", "construction-2a");
      ("digest-report", "construction-2b");
      ("exec-settle", "execution");
    ];
  check Alcotest.bool "halt is terminal, in no phase" true
    (Ir.phase_of_state ir "halt" = None);
  match Ir.phase_of_action ir "report-digests" with
  | Some p -> check Alcotest.string "action phase" "construction-2b" p.Ir.pname
  | None -> Alcotest.fail "report-digests in no phase"

let suites =
  [
    ( "speccheck.check",
      [
        Alcotest.test_case "stock IR clean" `Quick test_stock_ir_clean;
        Alcotest.test_case "stock topology clean" `Quick test_stock_topology_clean;
        Alcotest.test_case "stock lint report" `Quick test_stock_lint_report;
        Alcotest.test_case "mutations fire" `Quick test_mutations_fire;
        Alcotest.test_case "mutation table consistent" `Quick
          test_mutation_table_consistent;
      ] );
    ( "speccheck.compile",
      [
        Alcotest.test_case "suggested trace" `Quick test_compiled_suggested_trace;
        Alcotest.test_case "follows specification" `Quick
          test_compiled_follows_specification;
        Alcotest.test_case "deviation point" `Quick test_compiled_deviation_point;
        Alcotest.test_case "early halt" `Quick test_compiled_early_halt;
        Alcotest.test_case "self loop" `Quick test_compiled_self_loop;
        QCheck_alcotest.to_alcotest prop_compiled_equals_hand_written;
      ] );
    ( "speccheck.phases",
      [
        Alcotest.test_case "clean pass" `Quick test_phase_execute_clean;
        Alcotest.test_case "restart accounting" `Quick
          test_phase_execute_restart_accounting;
        Alcotest.test_case "stuck on persistent failure" `Quick
          test_phase_execute_stuck;
        Alcotest.test_case "phase lookup" `Quick test_ir_phase_lookup;
      ] );
  ]

(* Tests for Damd_speccheck: the finite spec IR, the IR->closure compiler
   (including the trace-equivalence property against a hand-written
   machine), the static checker suite with its seeded mutations, the lint
   report driver, and the flow verifier (taint lattice, differential
   dependency inference, bounded product-machine exploration). *)

module Action = Damd_core.Action
module Sm = Damd_core.State_machine
module Phase = Damd_core.Phase
module Gen = Damd_graph.Gen
module Ir = Damd_speccheck.Ir
module Fpss_spec = Damd_speccheck.Fpss_spec
module Compile = Damd_speccheck.Compile
module Check = Damd_speccheck.Check
module Mutate = Damd_speccheck.Mutate
module Lint = Damd_speccheck.Lint
module Taint = Damd_speccheck.Taint
module Dev = Damd_speccheck.Dev
module Explore = Damd_speccheck.Explore
module Verify = Damd_speccheck.Verify
module Absint = Damd_speccheck.Absint
module Analyze = Damd_speccheck.Analyze
module Adversary = Damd_faithful.Adversary
module Flow = Damd_faithful.Flow

let check = Alcotest.check
let ir = Fpss_spec.ir
let fig1 () = fst (Gen.figure1 ())

let finding_ids fs = List.map (fun f -> f.Check.id) fs

(* --- the stock spec is clean ------------------------------------------ *)

let test_stock_ir_clean () =
  let findings = Check.check_ir ~adversary:Adversary.all_labels ir in
  check (Alcotest.list Alcotest.string) "no findings at any severity" []
    (finding_ids findings)

let test_stock_topology_clean () =
  check (Alcotest.list Alcotest.string) "fig1 is biconnected" []
    (finding_ids (Check.check_topology (fig1 ())))

let test_stock_lint_report () =
  let report =
    Lint.run ~adversary:Adversary.all_labels ~graph:(fig1 ()) ~topology:"fig1" ir
  in
  check Alcotest.int "zero errors" 0 (Lint.error_count report);
  check Alcotest.int "exit 0" 0 (Lint.exit_code report);
  check Alcotest.(option string) "no mutation" None report.Lint.mutation;
  check Alcotest.string "spec name" "extended-fpss" report.Lint.spec

(* --- every seeded mutation fires exactly its expected error ----------- *)

let test_mutations_fire () =
  List.iter
    (fun (name, expected_id) ->
      let report =
        Lint.run ~adversary:Adversary.all_labels ~mutation:name
          ~graph:(fig1 ()) ~topology:"fig1" ir
      in
      let errs = Check.errors report.Lint.findings in
      check Alcotest.int (name ^ ": exactly one error") 1 (List.length errs);
      check Alcotest.string (name ^ ": expected id") expected_id
        (List.hd errs).Check.id;
      check Alcotest.int (name ^ ": exit 1") 1 (Lint.exit_code report))
    Mutate.all

let test_mutation_table_consistent () =
  (* [expected] agrees with [all]; unknown names are rejected everywhere. *)
  List.iter
    (fun (name, id) ->
      check Alcotest.(option string) name (Some id) (Mutate.expected name))
    Mutate.all;
  check Alcotest.(option string) "unknown mutation" None
    (Mutate.expected "no-such-mutation");
  check Alcotest.bool "apply rejects unknown" true
    (Mutate.apply "no-such-mutation" (ir, fig1 ()) = None);
  check Alcotest.bool "lint raises on unknown" true
    (try
       ignore
         (Lint.run ~mutation:"no-such-mutation" ~graph:(fig1 ())
            ~topology:"fig1" ir);
       false
     with Invalid_argument _ -> true)

(* --- the compiled machine --------------------------------------------- *)

let machine = Compile.machine ir

let test_compiled_suggested_trace () =
  let steps = Sm.trace ~max_steps:50 machine in
  check Alcotest.int "eleven steps" 11 (List.length steps);
  check Alcotest.string "halts" "halt" (Sm.final_state ~max_steps:50 machine);
  check (Alcotest.list Alcotest.string) "protocol order"
    (List.map (fun (a : Ir.action) -> a.Ir.id) ir.Ir.actions)
    (Compile.suggested_path ir ~max_steps:50)

let test_compiled_follows_specification () =
  check Alcotest.bool "suggested follows itself" true
    (Sm.follows_specification ~max_steps:50 ~strategy:machine.Sm.suggested
       machine);
  check Alcotest.bool "no deviation point" true
    (Sm.deviation_point ~max_steps:50 ~strategy:machine.Sm.suggested machine
    = None)

let test_compiled_deviation_point () =
  (* Swap the routing-forward step for the computation that should come
     one step later: caught at index 2 with the suggested class there. *)
  let strategy s =
    if s = "routing-forward" then Some "recompute-routing"
    else machine.Sm.suggested s
  in
  check Alcotest.bool "deviant flagged" false
    (Sm.follows_specification ~max_steps:50 ~strategy machine);
  match Sm.deviation_point ~max_steps:50 ~strategy machine with
  | Some (2, Some Action.Message_passing) -> ()
  | Some (i, _) -> Alcotest.failf "deviation at %d, expected 2" i
  | None -> Alcotest.fail "no deviation point"

let test_compiled_early_halt () =
  let strategy s = if s = "pricing-forward" then None else machine.Sm.suggested s in
  match Sm.deviation_point ~max_steps:50 ~strategy machine with
  | Some (5, None) -> ()
  | Some (i, _) -> Alcotest.failf "halt detected at %d, expected 5" i
  | None -> Alcotest.fail "early halt not detected"

let test_compiled_self_loop () =
  (* Undefined (state, action) pairs self-loop instead of raising, so a
     deviating strategy still yields a trace for [deviation_point]. *)
  check Alcotest.string "self loop" "cost-announce"
    (machine.Sm.transition "cost-announce" "forward-packets");
  check Alcotest.bool "unknown action is internal" true
    (machine.Sm.classify "no-such-action" = Action.Internal)

(* --- QCheck: the compiler agrees with a hand-written machine ----------- *)

(* The §4.1 chain written out as literal closures, the way the spec was
   expressed before the IR existed. The property pins the compiler to it:
   any strategy produces identical traces on both. *)
let hand_machine : (string, string) Sm.t =
  let chain =
    [
      ("cost-announce", "declare-cost", "cost-flood");
      ("cost-flood", "flood-costs", "routing-forward");
      ("routing-forward", "forward-routing-copies", "routing-compute");
      ("routing-compute", "recompute-routing", "routing-mirror");
      ("routing-mirror", "mirror-routing", "pricing-forward");
      ("pricing-forward", "forward-pricing-copies", "pricing-compute");
      ("pricing-compute", "recompute-pricing", "pricing-mirror");
      ("pricing-mirror", "mirror-pricing", "digest-report");
      ("digest-report", "report-digests", "exec-forward");
      ("exec-forward", "forward-packets", "exec-settle");
      ("exec-settle", "report-payments", "halt");
    ]
  in
  {
    Sm.initial = "cost-announce";
    transition =
      (fun s a ->
        match
          List.find_opt (fun (src, act, _) -> src = s && act = a) chain
        with
        | Some (_, _, dst) -> dst
        | None -> s);
    suggested =
      (fun s ->
        match List.find_opt (fun (src, _, _) -> src = s) chain with
        | Some (_, act, _) -> Some act
        | None -> None);
    classify =
      (function
      | "declare-cost" -> Action.Information_revelation
      | "flood-costs" | "forward-routing-copies" | "forward-pricing-copies"
      | "forward-packets" ->
          Action.Message_passing
      | "recompute-routing" | "mirror-routing" | "recompute-pricing"
      | "mirror-pricing" | "report-digests" | "report-payments" ->
          Action.Computation
      | _ -> Action.Internal);
  }

let action_ids = List.map (fun (a : Ir.action) -> a.Ir.id) ir.Ir.actions

let prop_compiled_equals_hand_written =
  QCheck.Test.make ~name:"IR-compiled trace = hand-written closure trace"
    ~count:200
    QCheck.(
      list_of_size
        (QCheck.Gen.return (List.length ir.Ir.states))
        (int_bound (List.length action_ids)))
    (fun choices ->
      (* One choice per state: an action id to play there, or halt. *)
      let strategy s =
        match
          List.find_opt (fun (s', _) -> s' = s)
            (List.map2 (fun st c -> (st, c)) ir.Ir.states choices)
        with
        | Some (_, c) when c < List.length action_ids ->
            Some (List.nth action_ids c)
        | _ -> None
      in
      Sm.trace ~strategy ~max_steps:30 machine
      = Sm.trace ~strategy ~max_steps:30 hand_machine
      && Sm.trace ~max_steps:30 machine = Sm.trace ~max_steps:30 hand_machine)

(* --- Phase.execute over IR-derived phases ------------------------------ *)

(* Each IR phase becomes a [Phase.t] that advances the compiled machine
   through the phase's member states under the suggested play. *)
let ir_phase ~certify (p : Ir.phase) =
  let run state =
    let rec go s =
      if List.mem s p.Ir.members then
        match machine.Sm.suggested s with
        | Some a -> go (machine.Sm.transition s a)
        | None -> s
      else s
    in
    go state
  in
  { Phase.name = p.Ir.pname; run; certify }

let test_phase_execute_clean () =
  let phases =
    List.map (ir_phase ~certify:(fun _ -> Ok ())) ir.Ir.phases
  in
  match Phase.execute ir.Ir.initial phases with
  | Phase.Completed p ->
      check Alcotest.string "reaches halt" "halt" p.Phase.state;
      check Alcotest.int "no restarts" 0 (Phase.total_restarts p)
  | Phase.Stuck { phase; _ } -> Alcotest.failf "stuck in %s" phase

let test_phase_execute_restart_accounting () =
  (* construction-2b flakes twice before certifying: the outcome completes
     with exactly those two restarts on record, attributed to the phase. *)
  let attempts = ref 0 in
  let phases =
    List.map
      (fun (p : Ir.phase) ->
        let certify _ =
          if p.Ir.pname = "construction-2b" then begin
            incr attempts;
            if !attempts <= 2 then Error "digest mismatch" else Ok ()
          end
          else Ok ()
        in
        ir_phase ~certify p)
      ir.Ir.phases
  in
  match Phase.execute ir.Ir.initial phases with
  | Phase.Completed p ->
      check Alcotest.string "reaches halt" "halt" p.Phase.state;
      check Alcotest.int "two restarts" 2 (Phase.total_restarts p);
      List.iter
        (fun (phase, reason) ->
          check Alcotest.string "restart phase" "construction-2b" phase;
          check Alcotest.string "restart reason" "digest mismatch" reason)
        p.Phase.restarts
  | Phase.Stuck { phase; _ } -> Alcotest.failf "stuck in %s" phase

let test_phase_execute_stuck () =
  (* A persistently failing execution checkpoint is the paper's penalty of
     no progress: Stuck names the phase from the IR. *)
  let phases =
    List.map
      (fun (p : Ir.phase) ->
        let certify _ =
          if p.Ir.pname = "execution" then Error "settlement mismatch"
          else Ok ()
        in
        ir_phase ~certify p)
      ir.Ir.phases
  in
  match Phase.execute ~max_restarts:2 ir.Ir.initial phases with
  | Phase.Completed _ -> Alcotest.fail "expected Stuck"
  | Phase.Stuck { phase; reason; progress } ->
      check Alcotest.string "stuck phase" "execution" phase;
      check Alcotest.string "stuck reason" "settlement mismatch" reason;
      (* the initial attempt plus each of the max_restarts retries failed *)
      check Alcotest.int "restarts recorded" 3 (Phase.total_restarts progress)

(* --- IR helpers -------------------------------------------------------- *)

let test_ir_phase_lookup () =
  List.iter
    (fun (state, pname) ->
      match Ir.phase_of_state ir state with
      | Some p -> check Alcotest.string state pname p.Ir.pname
      | None -> Alcotest.failf "%s in no phase" state)
    [
      ("cost-flood", "construction-1");
      ("routing-mirror", "construction-2a");
      ("digest-report", "construction-2b");
      ("exec-settle", "execution");
    ];
  check Alcotest.bool "halt is terminal, in no phase" true
    (Ir.phase_of_state ir "halt" = None);
  match Ir.phase_of_action ir "report-digests" with
  | Some p -> check Alcotest.string "action phase" "construction-2b" p.Ir.pname
  | None -> Alcotest.fail "report-digests in no phase"

(* --- multi-phase attribution (the phase_of_action blind spot) ---------- *)

let test_multi_phase_action () =
  (* Stock: report-digests runs in construction-2b only. *)
  check (Alcotest.list Alcotest.string) "stock: single phase"
    [ "construction-2b" ]
    (List.map
       (fun (p : Ir.phase) -> p.Ir.pname)
       (Ir.phases_of_action ir "report-digests"));
  (* An extra transition in the execution phase makes the action span two
     phases: phases_of_action reports both (declaration order),
     phase_of_action keeps the earliest, and the checker warns. *)
  let ir' =
    {
      ir with
      Ir.transitions =
        ir.Ir.transitions
        @ [ { Ir.src = "exec-settle"; act = "report-digests"; dst = "exec-settle" } ];
    }
  in
  check (Alcotest.list Alcotest.string) "spanning: both phases"
    [ "construction-2b"; "execution" ]
    (List.map
       (fun (p : Ir.phase) -> p.Ir.pname)
       (Ir.phases_of_action ir' "report-digests"));
  (match Ir.phase_of_action ir' "report-digests" with
  | Some p -> check Alcotest.string "earliest wins" "construction-2b" p.Ir.pname
  | None -> Alcotest.fail "report-digests in no phase");
  let findings = Check.check_ir ~adversary:Adversary.all_labels ir' in
  check (Alcotest.list Alcotest.string) "exactly the warning"
    [ "multi-phase-action" ] (finding_ids findings);
  check Alcotest.bool "warning, not error" true
    ((List.hd findings).Check.severity = Check.Warning)

(* --- the taint lattice ------------------------------------------------- *)

let test_taint_lattice () =
  let labels = [ Taint.Public; Taint.Received; Taint.Private ] in
  (* the chain, in taint order *)
  check Alcotest.bool "public below received" true
    (Taint.leq Taint.Public Taint.Received);
  check Alcotest.bool "received below private" true
    (Taint.leq Taint.Received Taint.Private);
  check Alcotest.bool "private not below public" false
    (Taint.leq Taint.Private Taint.Public);
  (* join is the lub: commutative, idempotent, an upper bound *)
  List.iter
    (fun a ->
      check Alcotest.bool "idempotent" true (Taint.join a a = a);
      List.iter
        (fun b ->
          check Alcotest.bool "commutative" true
            (Taint.join a b = Taint.join b a);
          check Alcotest.bool "upper bound" true
            (Taint.leq a (Taint.join a b) && Taint.leq b (Taint.join a b)))
        labels)
    labels;
  check Alcotest.string "empty summary is public" "public"
    (Taint.to_string (Taint.summary []));
  check Alcotest.string "private dominates" "private"
    (Taint.to_string
       (Taint.summary [ Ir.Protocol_state; Ir.Private_info ]));
  check Alcotest.string "received without private" "received"
    (Taint.to_string
       (Taint.summary [ Ir.Protocol_state; Ir.Received_messages ]))

(* --- differential flow inference --------------------------------------- *)

let stock_observations = Flow.observations ()

let test_stock_flow_agreement () =
  (* The harness covers the whole catalogue, in catalogue order, and the
     inferred dependency sets match the declarations exactly. *)
  check (Alcotest.list Alcotest.string) "full catalogue coverage"
    (List.map (fun (a : Ir.action) -> a.Ir.id) ir.Ir.actions)
    (List.map (fun (o : Taint.observation) -> o.Taint.action)
       stock_observations);
  check (Alcotest.list Alcotest.string) "declared = observed" []
    (finding_ids (Taint.check ir ~observed:stock_observations))

let test_flow_mismatch () =
  (* An observation with an undeclared dependency is the dangerous
     direction: error. flood-costs declares {received, protocol}; feeding
     it an observed private dependency must trip decl-flow-mismatch (and
     the unexercised protocol declaration rides along as slack). *)
  let observed =
    [ { Taint.action = "flood-costs"; deps = [ Ir.Private_info; Ir.Received_messages ] } ]
  in
  let findings = Taint.check ir ~observed in
  check (Alcotest.list Alcotest.string) "mismatch + slack"
    [ "decl-flow-mismatch"; "decl-flow-slack" ]
    (finding_ids findings);
  let mismatch = List.hd findings in
  check Alcotest.bool "mismatch is an error" true
    (mismatch.Check.severity = Check.Error);
  check Alcotest.string "located at the action" "flood-costs"
    mismatch.Check.location

let test_flow_slack_under_deviation () =
  (* A deviating implementation that ignores a declared input shows up as
     slack: Misroute_packets picks the next hop without consulting the
     routing table, so forward-packets loses its protocol-state flow. *)
  let observed = Flow.observations ~deviation:Adversary.Misroute_packets () in
  match Taint.check ir ~observed with
  | [ f ] ->
      check Alcotest.string "slack id" "decl-flow-slack" f.Check.id;
      check Alcotest.string "at forward-packets" "forward-packets"
        f.Check.location;
      check Alcotest.bool "warning severity" true
        (f.Check.severity = Check.Warning)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* --- bounded product-machine exploration ------------------------------- *)

let stock_outcome = lazy (Explore.run ~graph:(fig1 ()) ir)

let test_explore_stock () =
  let o = Lazy.force stock_outcome in
  check (Alcotest.list Alcotest.string) "no findings" []
    (finding_ids o.Explore.findings);
  check Alcotest.bool "not truncated" false o.Explore.stats.Explore.truncated;
  check Alcotest.int "one verdict per non-faithful label"
    (List.length (List.filter (fun d -> d <> Dev.Faithful) Dev.all))
    (List.length o.Explore.verdicts);
  let exempt, rest =
    List.partition
      (fun (_, v) -> match v with Explore.Exempt _ -> true | _ -> false)
      o.Explore.verdicts
  in
  check
    (Alcotest.list Alcotest.string)
    "exactly the by-design exemptions"
    [ "lying-checker"; "misreport-cost" ]
    (List.sort String.compare
       (List.map (fun (d, _) -> Dev.to_string d) exempt));
  List.iter
    (fun (d, v) ->
      match v with
      | Explore.Detected { depth; _ } ->
          check Alcotest.bool (Dev.to_string d ^ ": positive depth") true
            (depth > 0)
      | _ -> Alcotest.failf "%s not detected" (Dev.to_string d))
    rest

let test_explore_covers_suggested_chain () =
  (* Cross-validation against the compiled machine: every state the
     suggested play visits is covered by some explored scenario. *)
  let o = Lazy.force stock_outcome in
  let rec walk s acc =
    match machine.Sm.suggested s with
    | Some a ->
        let s' = machine.Sm.transition s a in
        walk s' (s' :: acc)
    | None -> List.rev acc
  in
  List.iter
    (fun s ->
      check Alcotest.bool ("covers " ^ s) true
        (List.mem s o.Explore.covered_states))
    (walk ir.Ir.initial [ ir.Ir.initial ])

(* A shared generator of randomly edited IRs: extra transitions,
   overridden suggestions, appended states — the adversarial inputs for
   the totality and differential properties below. *)
let edited_ir (i, j, k) =
  let action_arr = Array.of_list action_ids in
  let state_arr = Array.of_list ir.Ir.states in
  let s_at x = state_arr.(x mod Array.length state_arr) in
  let a_at x = action_arr.(x mod Array.length action_arr) in
  {
    ir with
    Ir.states =
      (if i mod 3 = 0 then ir.Ir.states @ [ "limbo" ] else ir.Ir.states);
    transitions =
      { Ir.src = s_at i; act = a_at j; dst = s_at k } :: ir.Ir.transitions;
    suggested =
      (if k mod 2 = 0 then (s_at k, a_at i) :: ir.Ir.suggested
       else ir.Ir.suggested);
  }

(* QCheck: exploration is total — randomly edited IRs never raise and
   always terminate within the bound. [audit] keeps the packed-key
   encoding honest on every run: each canonical key is cross-checked
   against the structural (unpacked) key, and any collision raises
   [Statepack.Collision], failing the property. This is the
   packed-equals-structural differential. *)
let prop_explore_total =
  QCheck.Test.make ~name:"exploration of edited IRs is total (keys audited)"
    ~count:15
    QCheck.(triple small_nat small_nat small_nat)
    (fun triple ->
      let o = Explore.run ~bound:1500 ~audit:true ~graph:(fig1 ()) (edited_ir triple) in
      o.Explore.stats.Explore.scenarios > 0
      && o.Explore.stats.Explore.states_explored >= 0)

(* --- POR soundness: the reduced exploration proves the same things ----- *)

(* Witness strings record one concrete interleaving, which the reduction
   legitimately changes; verdicts are compared with witnesses erased.
   Depths are NOT erased: equal-length commuting paths are part of the
   soundness argument (DESIGN.md §16), so POR must preserve the BFS
   detection depth exactly. *)
let normalize_verdict = function
  | Explore.Undetected _ -> Explore.Undetected { witness = "" }
  | v -> v

let normalized_verdicts (o : Explore.outcome) =
  List.map (fun (d, v) -> (d, normalize_verdict v)) o.Explore.verdicts

let finding_keys fs =
  List.sort
    (fun (a, b) (c, d) ->
      match String.compare a c with 0 -> String.compare b d | n -> n)
    (List.map (fun f -> (f.Check.id, f.Check.location)) fs)

let prop_por_differential =
  QCheck.Test.make
    ~name:"POR-on = POR-off: identical verdicts and findings" ~count:10
    QCheck.(triple small_nat small_nat small_nat)
    (fun triple ->
      let edited = edited_ir triple in
      let on = Explore.run ~bound:1500 ~por:true ~graph:(fig1 ()) edited in
      let off = Explore.run ~bound:1500 ~por:false ~graph:(fig1 ()) edited in
      (* The soundness claim is about complete explorations: if either
         side hit the bound the verdict sets may legitimately diverge
         (Truncated vs a late detection), so the property degrades to
         totality for that sample. *)
      if on.Explore.stats.Explore.truncated || off.Explore.stats.Explore.truncated
      then true
      else
        normalized_verdicts on = normalized_verdicts off
        && finding_keys on.Explore.findings = finding_keys off.Explore.findings
        && List.sort String.compare on.Explore.covered_states
           = List.sort String.compare off.Explore.covered_states)

(* --- parallel fan-out: domains do not change the outcome --------------- *)

let test_parallel_matches_sequential () =
  (* Scenarios are independent by construction; the merge is deterministic
     in scenario order, so everything except wall-clock must be bit-equal.
     [~domains:4] forces real Domain.spawn even on a single-core runner. *)
  let seq = Explore.run ~domains:1 ~graph:(fig1 ()) ir in
  let par = Explore.run ~domains:4 ~graph:(fig1 ()) ir in
  check Alcotest.bool "verdicts identical (witnesses included)" true
    (seq.Explore.verdicts = par.Explore.verdicts);
  check Alcotest.bool "findings identical" true
    (seq.Explore.findings = par.Explore.findings);
  check (Alcotest.list Alcotest.string) "covered states identical"
    seq.Explore.covered_states par.Explore.covered_states;
  check Alcotest.int "states identical"
    seq.Explore.stats.Explore.states_explored
    par.Explore.stats.Explore.states_explored;
  check Alcotest.int "frontier peak identical"
    seq.Explore.stats.Explore.frontier_peak
    par.Explore.stats.Explore.frontier_peak;
  check Alcotest.bool "neither truncated" false
    (seq.Explore.stats.Explore.truncated
    || par.Explore.stats.Explore.truncated)

(* --- model checking at scale: the 4x4 torus (n = 16) ------------------- *)

let torus_4x4 () =
  let rng = Damd_util.Rng.create 42 in
  Gen.torus ~rows:4 ~cols:4
    ~costs:(Gen.draw_costs rng (Gen.Uniform_int (1, 10)) 16)

let test_explore_torus_scale () =
  (* The full §4.3 catalogue on n=16 — an order of magnitude past the
     seed's fig1 run (16,222 canonical states pre-reduction). POR-off
     pins the raw product size; POR-on must reach the same verdicts
     (same depths, same certifiers) over a far smaller state set. *)
  let on = Explore.run ~bound:1_000_000 ~por:true ~graph:(torus_4x4 ()) ir in
  let off = Explore.run ~bound:1_000_000 ~por:false ~graph:(torus_4x4 ()) ir in
  check Alcotest.bool "POR-off not truncated" false
    off.Explore.stats.Explore.truncated;
  check Alcotest.bool "POR-on not truncated" false
    on.Explore.stats.Explore.truncated;
  check Alcotest.bool "unreduced space is >= 10x the seed's fig1 run" true
    (off.Explore.stats.Explore.states_explored >= 162_220);
  check Alcotest.bool "reduction shrinks the space" true
    (on.Explore.stats.Explore.states_explored
    < off.Explore.stats.Explore.states_explored / 2);
  check Alcotest.bool "POR is actually active at n=16" true
    on.Explore.stats.Explore.por;
  check Alcotest.bool "verdicts agree (witnesses normalized)" true
    (normalized_verdicts on = normalized_verdicts off);
  check (Alcotest.list Alcotest.string) "no findings at n=16" []
    (finding_ids on.Explore.findings);
  List.iter
    (fun (d, v) ->
      match v with
      | Explore.Detected _ | Explore.Exempt _ -> ()
      | _ -> Alcotest.failf "%s not detected at n=16" (Dev.to_string d))
    on.Explore.verdicts

(* --- the TLA+ backend --------------------------------------------------- *)

module Tla = Damd_speccheck.Tla

let test_tla_emission_shape () =
  let m = Tla.emit ir in
  List.iter
    (fun needle ->
      check Alcotest.bool ("module contains " ^ needle) true
        (Astring.String.is_infix ~affix:needle m))
    [
      "MODULE extended_fpss";
      "DetectionComplete";
      "NoFalseAccusation";
      "Checkpoint ==";
      "Deviant ==";
      "NPhases == 4";
      "\"" ^ ir.Ir.initial ^ "\"";
    ];
  (* deterministic: emission is a pure function of the IR *)
  check Alcotest.string "emission is deterministic" m (Tla.emit ir)

let test_tla_target_covered_sets () =
  (* The state-level view of the target mask: miscompute-routing targets
     exactly the routing-computation state, and with an honest
     neighborhood the mirror check covers it (CoveredStates = targets).
     An isolated neighborhood drops the coverage, never the target. *)
  let dev = Dev.Miscompute_routing in
  check (Alcotest.list Alcotest.string) "targets" [ "routing-compute" ]
    (Tla.target_states ir dev);
  check (Alcotest.list Alcotest.string) "covered (honest)"
    [ "routing-compute" ]
    (Tla.covered_states ir dev ~honest:true);
  List.iter
    (fun d ->
      let t = Tla.target_states ir d in
      let c = Tla.covered_states ir d ~honest:true in
      check Alcotest.bool
        (Dev.to_string d ^ ": covered subset of targets")
        true
        (List.for_all (fun s -> List.mem s t) c))
    Dev.all;
  check Alcotest.string "module-name sanitization" "extended_fpss"
    (Tla.sanitize ir.Ir.name)

(* --- the verify driver -------------------------------------------------- *)

let verify ?mutation () =
  Verify.run ~adversary:Adversary.all_labels ?mutation
    ~observed:stock_observations ~graph:(fig1 ()) ~topology:"fig1" ir

let test_verify_stock () =
  let r = verify () in
  check Alcotest.int "zero errors" 0 (Verify.error_count r);
  check Alcotest.int "exit 0" 0 (Verify.exit_code r);
  check Alcotest.bool "detection-complete" true (Verify.detection_complete r);
  check Alcotest.bool "no-false-accusation" true (Verify.no_false_accusation r);
  check (Alcotest.list Alcotest.string) "no findings" []
    (finding_ids r.Verify.findings);
  check Alcotest.int "one flow row per action" (List.length ir.Ir.actions)
    (List.length r.Verify.flow);
  List.iter
    (fun (a, declared, observed) ->
      check Alcotest.bool (a ^ ": declared = observed") true
        (declared = observed))
    r.Verify.flow

let test_verify_mutations_fire () =
  List.iter
    (fun (name, verify_id) ->
      let r = verify ~mutation:name () in
      let ids = finding_ids r.Verify.findings in
      check Alcotest.bool (name ^ ": behavioral finding " ^ verify_id) true
        (List.mem verify_id ids);
      (* the static finding from the lint layer rides along *)
      (match Mutate.expected name with
      | Some static_id ->
          check Alcotest.bool (name ^ ": static finding " ^ static_id) true
            (List.mem static_id ids)
      | None -> Alcotest.failf "%s not in Mutate.all" name);
      check Alcotest.int (name ^ ": exit 1") 1 (Verify.exit_code r);
      check Alcotest.bool (name ^ ": detection-completeness verdict") true
        (Verify.detection_complete r = (verify_id <> "undetected-deviation"));
      check Alcotest.bool (name ^ ": never a false accusation") true
        (Verify.no_false_accusation r))
    Mutate.all_verify

let test_verify_table_consistent () =
  check (Alcotest.list Alcotest.string) "same mutation key set"
    (List.map fst Mutate.all)
    (List.map fst Mutate.all_verify);
  List.iter
    (fun (name, id) ->
      check Alcotest.(option string) name (Some id)
        (Mutate.expected_verify name))
    Mutate.all_verify;
  check Alcotest.(option string) "unknown mutation" None
    (Mutate.expected_verify "no-such-mutation")

(* --- the static analyzer (abstract interpretation) ---------------------- *)

let analyze ?mutation ?(differential = false) () =
  Analyze.run ~adversary:Adversary.all_labels ?mutation ~differential
    ~graph:(fig1 ()) ~topology:"fig1" ir

let test_analyze_stock () =
  let r = analyze () in
  check Alcotest.int "zero errors" 0 (Analyze.error_count r);
  check Alcotest.int "exit 0" 0 (Analyze.exit_code r);
  check (Alcotest.list Alcotest.string) "no findings" []
    (finding_ids r.Analyze.findings);
  check Alcotest.int "zero blind spots" 0 (Analyze.blind_spots r);
  check Alcotest.(option bool) "no differential ran" None
    (Analyze.frontier_sound r);
  check Alcotest.int "one frontier entry per non-faithful label"
    (List.length (List.filter (fun d -> d <> Dev.Faithful) Adversary.all_labels))
    (List.length r.Analyze.result.Absint.frontier);
  check Alcotest.bool "abstract states were explored" true
    (r.Analyze.result.Absint.states_explored > 0);
  (* the paper's by-design exemptions survive the abstraction, and every
     other label gets a positive certified depth *)
  List.iter
    (fun (f : Absint.frontier) ->
      match f.Absint.fr_verdict with
      | Absint.Sexempt _ ->
          check Alcotest.bool
            (Dev.to_string f.Absint.fr_dev ^ ": exemption is by design")
            true
            (List.mem_assoc f.Absint.fr_dev Explore.exemptions)
      | Absint.Scertified { depth; _ } ->
          check Alcotest.bool
            (Dev.to_string f.Absint.fr_dev ^ ": positive static depth")
            true (depth > 0)
      | Absint.Sblind _ | Absint.Struncated ->
          Alcotest.failf "%s not statically certified"
            (Dev.to_string f.Absint.fr_dev))
    r.Analyze.result.Absint.frontier;
  (* flow layer: the only private output on the stock spec is the
     post-settlement payment report — everything pre-settlement is public *)
  List.iter
    (fun (s : Absint.summary) ->
      let expected =
        if s.Absint.sm_action = "report-payments" then Taint.Private
        else Taint.Public
      in
      check Alcotest.bool
        (s.Absint.sm_action ^ ": expected taint") true
        (s.Absint.sm_out = expected))
    r.Analyze.result.Absint.flows

let test_analyze_differential_stock () =
  let r = analyze ~differential:true () in
  check Alcotest.(option bool) "frontier sound vs exploration" (Some true)
    (Analyze.frontier_sound r);
  check (Alcotest.list Alcotest.string) "no findings, no gaps" []
    (finding_ids r.Analyze.findings);
  (* the soundness inequality, label by label: static depth is a lower
     bound on the measured BFS detection depth *)
  let dyn = Lazy.force stock_outcome in
  List.iter
    (fun (f : Absint.frontier) ->
      match
        (f.Absint.fr_verdict, List.assoc_opt f.Absint.fr_dev dyn.Explore.verdicts)
      with
      | Absint.Scertified { depth = ds; _ }, Some (Explore.Detected { depth = dd; _ })
        ->
          check Alcotest.bool
            (Printf.sprintf "%s: static %d <= dynamic %d"
               (Dev.to_string f.Absint.fr_dev) ds dd)
            true (ds <= dd)
      | Absint.Sexempt _, Some (Explore.Exempt _) -> ()
      | v, d ->
          Alcotest.failf "%s: verdict kinds diverge (%s vs %s)"
            (Dev.to_string f.Absint.fr_dev)
            (match v with
            | Absint.Scertified _ -> "certified"
            | Absint.Sblind _ -> "blind"
            | Absint.Sexempt _ -> "exempt"
            | Absint.Struncated -> "truncated")
            (match d with
            | Some (Explore.Detected _) -> "detected"
            | Some (Explore.Undetected _) -> "undetected"
            | Some (Explore.Exempt _) -> "exempt"
            | Some Explore.Truncated -> "truncated"
            | None -> "absent"))
    r.Analyze.result.Absint.frontier

let test_analyze_mutations_fire () =
  List.iter
    (fun (name, analyze_id) ->
      (* differential on: besides firing the expected static finding,
         the frontier must stay sound against the measured exploration
         of the same mutated spec — zero static-frontier-gap anywhere
         in the corpus *)
      let r = analyze ~mutation:name ~differential:true () in
      let ids = finding_ids r.Analyze.findings in
      check Alcotest.bool (name ^ ": static finding " ^ analyze_id) true
        (List.mem analyze_id ids);
      check Alcotest.int (name ^ ": exit 1") 1 (Analyze.exit_code r);
      check Alcotest.bool (name ^ ": no static-frontier-gap") false
        (List.mem "static-frontier-gap" ids);
      check Alcotest.(option bool) (name ^ ": frontier sound") (Some true)
        (Analyze.frontier_sound r))
    Mutate.all_analyze

let test_analyze_flow_only_mutations_invisible_to_lint () =
  (* The whole point of the flow-sensitive upgrade: these three
     mutations keep every syntactic declaration well-formed, so the
     lint layer passes them — only the taint fixpoint sees the leak,
     the laundering chain, or the starved evidence ledger. *)
  List.iter
    (fun name ->
      let r =
        Lint.run ~adversary:Adversary.all_labels ~mutation:name
          ~graph:(fig1 ()) ~topology:"fig1" ir
      in
      check Alcotest.int (name ^ ": lint-clean") 0 (Lint.error_count r);
      let a = analyze ~mutation:name () in
      check Alcotest.int (name ^ ": analyze catches it") 1
        (Analyze.exit_code a))
    [ "launder-private-taint"; "private-digest-channel";
      "starve-checkpoint-evidence" ]

let test_analyze_table_consistent () =
  check (Alcotest.list Alcotest.string) "names cover the analyze corpus"
    (List.map fst Mutate.all_analyze)
    Mutate.names;
  List.iter
    (fun (name, id) ->
      check Alcotest.(option string) name (Some id)
        (Mutate.expected_analyze name);
      check Alcotest.bool (name ^ ": known") true (Mutate.known name))
    Mutate.all_analyze;
  check Alcotest.(option string) "unknown mutation" None
    (Mutate.expected_analyze "no-such-mutation");
  check Alcotest.bool "unknown mutation not known" false
    (Mutate.known "no-such-mutation");
  (* the lint/verify corpora are strict prefixes of the analyze corpus:
     every behavioral mutation also has a static expectation *)
  List.iter
    (fun (name, _) ->
      check Alcotest.bool (name ^ ": has analyze expectation") true
        (Mutate.expected_analyze name <> None))
    Mutate.all

(* QCheck: the differential on randomly edited IRs. Whenever both engines
   complete, the static frontier must stay sound — static depth a lower
   bound wherever Explore detects, and [Sblind] (certifier-blind-spot)
   exactly where Explore reports Undetected. [Absint.differential] is
   that statement; an empty finding list is the pass. *)
let prop_absint_frontier_sound =
  QCheck.Test.make
    ~name:"static frontier sound on edited IRs (differential empty)"
    ~count:15
    QCheck.(triple small_nat small_nat small_nat)
    (fun triple ->
      let edited = edited_ir triple in
      let dyn = Explore.run ~bound:1500 ~graph:(fig1 ()) edited in
      let st = Absint.run ~graph:(fig1 ()) edited in
      if dyn.Explore.stats.Explore.truncated then true
      else
        match Absint.differential st dyn with
        | [] -> true
        | gaps ->
            QCheck.Test.fail_reportf "frontier gaps: %s"
              (String.concat "; "
                 (List.map (fun f -> f.Check.message) gaps)))

let suites =
  [
    ( "speccheck.check",
      [
        Alcotest.test_case "stock IR clean" `Quick test_stock_ir_clean;
        Alcotest.test_case "stock topology clean" `Quick test_stock_topology_clean;
        Alcotest.test_case "stock lint report" `Quick test_stock_lint_report;
        Alcotest.test_case "mutations fire" `Quick test_mutations_fire;
        Alcotest.test_case "mutation table consistent" `Quick
          test_mutation_table_consistent;
      ] );
    ( "speccheck.compile",
      [
        Alcotest.test_case "suggested trace" `Quick test_compiled_suggested_trace;
        Alcotest.test_case "follows specification" `Quick
          test_compiled_follows_specification;
        Alcotest.test_case "deviation point" `Quick test_compiled_deviation_point;
        Alcotest.test_case "early halt" `Quick test_compiled_early_halt;
        Alcotest.test_case "self loop" `Quick test_compiled_self_loop;
        QCheck_alcotest.to_alcotest prop_compiled_equals_hand_written;
      ] );
    ( "speccheck.phases",
      [
        Alcotest.test_case "clean pass" `Quick test_phase_execute_clean;
        Alcotest.test_case "restart accounting" `Quick
          test_phase_execute_restart_accounting;
        Alcotest.test_case "stuck on persistent failure" `Quick
          test_phase_execute_stuck;
        Alcotest.test_case "phase lookup" `Quick test_ir_phase_lookup;
        Alcotest.test_case "multi-phase attribution" `Quick
          test_multi_phase_action;
      ] );
    ( "speccheck.taint",
      [
        Alcotest.test_case "lattice laws" `Quick test_taint_lattice;
        Alcotest.test_case "stock flow agreement" `Quick
          test_stock_flow_agreement;
        Alcotest.test_case "mismatch is an error" `Quick test_flow_mismatch;
        Alcotest.test_case "deviation shows as slack" `Quick
          test_flow_slack_under_deviation;
      ] );
    ( "speccheck.explore",
      [
        Alcotest.test_case "stock product space" `Quick test_explore_stock;
        Alcotest.test_case "covers the suggested chain" `Quick
          test_explore_covers_suggested_chain;
        QCheck_alcotest.to_alcotest prop_explore_total;
        QCheck_alcotest.to_alcotest prop_por_differential;
        Alcotest.test_case "parallel fan-out matches sequential" `Quick
          test_parallel_matches_sequential;
        Alcotest.test_case "4x4 torus at scale (POR on = POR off)" `Slow
          test_explore_torus_scale;
      ] );
    ( "speccheck.tla",
      [
        Alcotest.test_case "emission shape" `Quick test_tla_emission_shape;
        Alcotest.test_case "target and covered sets" `Quick
          test_tla_target_covered_sets;
      ] );
    ( "speccheck.verify",
      [
        Alcotest.test_case "stock report" `Quick test_verify_stock;
        Alcotest.test_case "mutations fire behaviorally" `Quick
          test_verify_mutations_fire;
        Alcotest.test_case "verify table consistent" `Quick
          test_verify_table_consistent;
      ] );
    ( "speccheck.analyze",
      [
        Alcotest.test_case "stock static report" `Quick test_analyze_stock;
        Alcotest.test_case "differential sound on stock" `Quick
          test_analyze_differential_stock;
        Alcotest.test_case "mutations fire statically" `Quick
          test_analyze_mutations_fire;
        Alcotest.test_case "flow-only mutations invisible to lint" `Quick
          test_analyze_flow_only_mutations_invisible_to_lint;
        Alcotest.test_case "analyze table consistent" `Quick
          test_analyze_table_consistent;
        QCheck_alcotest.to_alcotest prop_absint_frontier_sound;
      ] );
  ]

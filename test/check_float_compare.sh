#!/usr/bin/env bash
# Source-level hygiene gate: no polymorphic compare where floats may flow.
#
# Stdlib's structural `compare` on floats silently disagrees with IEEE 754
# (nan handling) and hides the element type from the reader; every sort in
# lib/ must either use a typed comparator (Int.compare, Float.compare,
# String.compare, a named by_* function) or carry a `poly-ok:` comment on
# the same line stating why the polymorphic order is safe (constant
# constructors, int tuples, ...).
#
# Usage: check_float_compare.sh LIB_DIR
set -u

lib_dir="${1:?usage: check_float_compare.sh LIB_DIR}"

# Pattern 1: bare `compare` in comparator position of a sort.
# Pattern 2: bare `compare` applied to record fields (`compare a.cost b.cost`).
pat1='(List|Array|Hashtbl)\.(stable_)?sort(_uniq)?[[:space:]]+compare([^_[:alnum:]]|$)'
pat2='(^|[^._[:alnum:]])compare[[:space:]]+[a-z_][[:alnum:]_]*\.[a-z_]'

status=0
while IFS= read -r hit; do
  case "$hit" in
  *poly-ok:*) ;;
  *)
    echo "bare polymorphic compare (mark '(* poly-ok: why *)' or use a typed comparator):"
    echo "  $hit"
    status=1
    ;;
  esac
done < <(grep -rnE --include='*.ml' -e "$pat1" -e "$pat2" "$lib_dir")

if [ "$status" -eq 0 ]; then
  echo "float-compare lint: clean"
fi
exit "$status"
